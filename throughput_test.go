package reconf

// TestBusThroughputArtifact measures multi-sender message throughput on the
// bus and writes BENCH_bus_throughput.json (scripts/check.sh and `make
// bench` set RECONFIG_BUS_THROUGHPUT_JSON; a plain `go test` run skips it).
//
// The workload is N disjoint sender->sink pairs (N in {1, 4, 16}), each
// sender blasting messages while its sink drains with blocking reads. Under
// the pre-refactor global bus mutex, aggregate throughput *fell* as senders
// were added; with lock-free routing snapshots each pair contends only on
// its own queue lock, so aggregate throughput should grow with sender count
// until the hardware saturates. The per-config numbers (msgs/sec, ns/msg)
// are the "routing overhead" row of EXPERIMENTS.md.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
)

// throughputRun drives one configuration and returns aggregate msgs/sec.
func throughputRun(t *testing.T, senders, perSender int) float64 {
	t.Helper()
	b := bus.New()
	atts := make([]*bus.Attachment, senders)
	sinks := make([]*bus.Attachment, senders)
	for i := 0; i < senders; i++ {
		src := fmt.Sprintf("s%d", i)
		dst := fmt.Sprintf("d%d", i)
		for _, spec := range []bus.InstanceSpec{
			{Name: src, Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
			{Name: dst, Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}},
		} {
			if err := b.AddInstance(spec); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.AddBinding(bus.Endpoint{Instance: src, Interface: "out"}, bus.Endpoint{Instance: dst, Interface: "in"}); err != nil {
			t.Fatal(err)
		}
		var err error
		if atts[i], err = b.Attach(src); err != nil {
			t.Fatal(err)
		}
		if sinks[i], err = b.Attach(dst); err != nil {
			t.Fatal(err)
		}
	}
	payload := make([]byte, 64)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < senders; i++ {
		wg.Add(2)
		go func(a *bus.Attachment) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				if err := a.Write("out", payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(atts[i])
		go func(a *bus.Attachment) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				if _, err := a.Read("in"); err != nil {
					t.Error(err)
					return
				}
			}
		}(sinks[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(senders*perSender) / elapsed.Seconds()
}

func TestBusThroughputArtifact(t *testing.T) {
	out := os.Getenv("RECONFIG_BUS_THROUGHPUT_JSON")
	if out == "" {
		t.Skip("set RECONFIG_BUS_THROUGHPUT_JSON=<path> to emit the throughput artifact")
	}
	const (
		perSender = 25000
		reps      = 3
	)
	type config struct {
		Senders    int     `json:"senders"`
		Messages   int     `json:"messages"`
		MsgsPerSec float64 `json:"msgs_per_sec"`
		NsPerMsg   float64 `json:"ns_per_msg"`
	}
	var configs []config
	for _, senders := range []int{1, 4, 16} {
		// Best of reps, benchmark-style: throughput noise is one-sided
		// (scheduler interference only slows a run down).
		best := 0.0
		for r := 0; r < reps; r++ {
			if mps := throughputRun(t, senders, perSender); mps > best {
				best = mps
			}
		}
		configs = append(configs, config{
			Senders:    senders,
			Messages:   senders * perSender,
			MsgsPerSec: best,
			NsPerMsg:   1e9 / best,
		})
		t.Logf("senders=%d msgs/sec=%.0f ns/msg=%.1f", senders, best, 1e9/best)
	}
	report := map[string]any{
		"workload": fmt.Sprintf("N disjoint sender->sink pairs, %d msgs each, 64-byte payload, best of %d", perSender, reps),
		"configs":  configs,
		"scaling_16_vs_1": map[string]float64{
			"throughput_ratio": configs[2].MsgsPerSec / configs[0].MsgsPerSec,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
