package reconf

// Record/replay acceptance suite: a seeded three-stage pipeline (source ->
// filter -> sink, the filter interpreted and hot-swappable) driven with a
// deterministic workload. The properties under test are the PR's
// acceptance criteria: two recordings of the same seeded run render
// identical canonical logs, a replay reproduces the recorded output
// sequence byte-for-byte, the PreflightReplay gate lets a
// behavior-identical candidate commit and vetoes a divergent one through
// the journaled rollback, and the /record, /replay/{id} and control-plane
// surfaces expose it all.

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/mh"
	"repro/internal/reconfig"
	"repro/internal/replay"
	"repro/internal/state"
)

const pipeSpec = `
module psource {
  source = "./psource" ::
  define interface out pattern = {integer} ::
}

module filter {
  source = "./filter" ::
  use interface in pattern = {^integer} ::
  define interface out pattern = {integer} ::
  reconfiguration point = {R} ::
}

module filterV2 {
  source = "./filterV2" ::
  use interface in pattern = {^integer} ::
  define interface out pattern = {integer} ::
  reconfiguration point = {R} ::
}

module filterBad {
  source = "./filterBad" ::
  use interface in pattern = {^integer} ::
  define interface out pattern = {integer} ::
  reconfiguration point = {R} ::
}

module psink {
  source = "./psink" ::
  use interface in pattern = {^integer} ::
}

module pipe {
  instance psource
  instance filter
  instance psink
  bind "psource out" "filter in"
  bind "filter out" "psink in"
}
`

// filterSrc triples-and-increments each value. filterV2Src computes the
// same function a different way (the replay gate must see identical
// outputs); filterBadSrc drops the increment (the gate must veto it).
const filterSrc = `package filter

func main() {
	var x int
	mh.Init()
	for {
		mh.ReconfigPoint("R")
		mh.Read("in", &x)
		mh.Write("out", x*3+1)
	}
}
`

const filterV2Src = `package filterV2

func main() {
	var x int
	mh.Init()
	for {
		mh.ReconfigPoint("R")
		mh.Read("in", &x)
		mh.Write("out", x+x+x+1)
	}
}
`

const filterBadSrc = `package filterBad

func main() {
	var x int
	mh.Init()
	for {
		mh.ReconfigPoint("R")
		mh.Read("in", &x)
		mh.Write("out", x*3)
	}
}
`

type pipeHarness struct {
	t    *testing.T
	app  *App
	c    codec.Codec
	src  bus.Port
	sink bus.Port
}

func loadPipe(t *testing.T, preflight bool) *pipeHarness {
	t.Helper()
	app, err := Load(Config{
		SpecText: pipeSpec,
		Sources: map[string]ModuleSource{
			"filter":    {Files: map[string]string{"filter.go": filterSrc}},
			"filterV2":  {Files: map[string]string{"filter.go": filterV2Src}},
			"filterBad": {Files: map[string]string{"filter.go": filterBadSrc}},
		},
		Native: map[string]NativeModule{
			// Driven by the test through AttachDriver.
			"psource": func(rt *mh.Runtime) {},
			"psink":   func(rt *mh.Runtime) {},
		},
		SleepUnit:       time.Microsecond,
		StateTimeout:    10 * time.Second,
		RecordBuffer:    1024,
		PreflightReplay: preflight,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Stop)
	h := &pipeHarness{t: t, app: app, c: codec.Default()}
	if err := app.Launch("filter"); err != nil {
		t.Fatal(err)
	}
	if h.src, err = app.AttachDriver("psource"); err != nil {
		t.Fatal(err)
	}
	if h.sink, err = app.AttachDriver("psink"); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *pipeHarness) send(v int) {
	h.t.Helper()
	data, err := h.c.EncodeValue(state.IntValue(int64(v)))
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.src.Write("out", data); err != nil {
		h.t.Fatal(err)
	}
}

func (h *pipeHarness) recv() int {
	h.t.Helper()
	m, err := h.sink.Read("in")
	if err != nil {
		h.t.Fatal(err)
	}
	v, err := h.c.DecodeValue(m.Data)
	if err != nil {
		h.t.Fatal(err)
	}
	return int(v.Int)
}

// drive pushes vals through the pipeline and asserts each filtered result.
func (h *pipeHarness) drive(vals ...int) {
	h.t.Helper()
	for _, v := range vals {
		h.send(v)
	}
	for _, v := range vals {
		if got, want := h.recv(), v*3+1; got != want {
			h.t.Fatalf("filtered %d = %d, want %d", v, got, want)
		}
	}
}

// TestRecordDeterminism: the same seeded run, recorded twice in two fresh
// applications, renders byte-identical canonical logs.
func TestRecordDeterminism(t *testing.T) {
	canonOf := func() string {
		h := loadPipe(t, false)
		h.drive(4, 7, 1, 9, 2)
		return replay.Canonical(h.app.Recorder().Snapshot())
	}
	first, second := canonOf(), canonOf()
	if first == "" {
		t.Fatal("empty canonical log")
	}
	if first != second {
		t.Errorf("two recordings of the same seeded run differ:\n--- run 1\n%s--- run 2\n%s", first, second)
	}
	if !strings.Contains(first, "queue filter.in (5)") || !strings.Contains(first, "queue psink.in (5)") {
		t.Errorf("canonical log missing expected queues:\n%s", first)
	}
}

// TestReplayReproducesRecording: re-running the filter's recorded window
// against its own module reproduces the recorded output sequence exactly.
func TestReplayReproducesRecording(t *testing.T) {
	h := loadPipe(t, false)
	h.drive(3, 8, 5, 12)
	rep, err := h.app.ReplayRecorded("filter", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("replay diverged: %+v", rep)
	}
	if rep.Window != 4 || rep.Consumed != 4 || rep.Expected != 4 || rep.Replayed != 4 {
		t.Errorf("replay report = %+v, want 4 inputs / 4 outputs", rep)
	}
	if rep.Module != "filter" || rep.Instance != "filter" {
		t.Errorf("replay identity = %s/%s", rep.Instance, rep.Module)
	}
}

// TestPreflightReplayCommits: a behavior-identical candidate passes the
// replay gate and the hot swap commits, state carried across.
func TestPreflightReplayCommits(t *testing.T) {
	h := loadPipe(t, true)
	h.drive(2, 6, 11)

	// Release the filter to its next reconfiguration point once the
	// replacement signal is pending.
	go func() {
		time.Sleep(30 * time.Millisecond)
		h.send(40)
	}()
	res, err := h.app.ReplaceTx("filter", reconfig.ReplaceOptions{NewName: "filter2", Module: "filterV2"})
	if err != nil {
		t.Fatalf("behavior-identical candidate was rejected: %v", err)
	}
	if !res.Committed {
		t.Fatalf("gate passed but transaction did not commit: %+v", res)
	}
	if got, want := h.recv(), 40*3+1; got != want {
		t.Errorf("in-flight value after swap = %d, want %d", got, want)
	}
	// The new module serves the stream.
	h.drive(13)
	topo := h.app.Topology()
	if !strings.Contains(topo, "filter2") || strings.Contains(topo, "instance filter (") {
		t.Errorf("topology after commit:\n%s", topo)
	}
}

// TestPreflightReplayRollback: a divergent candidate is vetoed by the
// replay gate before commit; the transaction rolls back through the
// journal, the configuration converges to the pre-transaction snapshot,
// and the old module keeps serving.
func TestPreflightReplayRollback(t *testing.T) {
	h := loadPipe(t, true)
	h.drive(2, 6, 11)
	before := snapshotConfig(t, h.app)

	go func() {
		time.Sleep(30 * time.Millisecond)
		h.send(40)
	}()
	res, err := h.app.ReplaceTx("filter", reconfig.ReplaceOptions{NewName: "filter2", Module: "filterBad"})
	if err == nil {
		t.Fatal("divergent candidate committed")
	}
	if !strings.Contains(err.Error(), "replay gate") || !strings.Contains(err.Error(), "diverges") {
		t.Errorf("error does not name the replay gate: %v", err)
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Errorf("error does not report the rollback: %v", err)
	}
	if res == nil || !res.RolledBack || res.Committed {
		t.Fatalf("tx result = %+v, want rolled back", res)
	}

	// The in-flight release value was processed by the old module (before
	// its state was captured) and must not be lost.
	if got, want := h.recv(), 40*3+1; got != want {
		t.Errorf("in-flight value after rollback = %d, want %d", got, want)
	}
	// Convergence: the configuration equals the pre-transaction snapshot.
	after := snapshotConfig(t, h.app)
	assertSnapshotsEqual(t, before, after)
	// And the resurrected old filter keeps serving new traffic.
	h.drive(21, 34)
}

// assertSnapshotsEqual compares two configuration snapshots field by field
// (pending counts may legitimately differ only by zero entries).
func assertSnapshotsEqual(t *testing.T, before, after cfgSnapshot) {
	t.Helper()
	for name, sig := range before.Instances {
		if after.Instances[name] != sig {
			t.Errorf("instance %s: %q -> %q", name, sig, after.Instances[name])
		}
	}
	for name := range after.Instances {
		if _, ok := before.Instances[name]; !ok {
			t.Errorf("instance %s appeared during rollback", name)
		}
	}
	if strings.Join(before.Bindings, ";") != strings.Join(after.Bindings, ";") {
		t.Errorf("bindings diverged:\nbefore %v\nafter  %v", before.Bindings, after.Bindings)
	}
}

// TestRecordObsEndpoints: /record reports and toggles the ring;
// /replay/{id} replays the current window.
func TestRecordObsEndpoints(t *testing.T) {
	h := loadPipe(t, false)
	base := serveObs(t, h.app)
	h.drive(5, 9)

	code, body := httpGet(t, base+"/record")
	if code != http.StatusOK {
		t.Fatalf("/record returned %d", code)
	}
	var st RecordStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Configured || !st.Enabled || st.Capacity != 1024 || st.Recorded != 4 {
		t.Errorf("/record status = %+v", st)
	}
	found := false
	for _, q := range st.Queues {
		if q.Endpoint == "filter.in" && q.Seq == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("/record queues missing filter.in: %+v", st.Queues)
	}

	code, body = httpGet(t, base+"/record?enable=off")
	if code != http.StatusOK || !strings.Contains(body, `"enabled": false`) {
		t.Errorf("/record?enable=off -> %d %s", code, body)
	}
	h.drive(6)
	if got := h.app.Recorder().Recorded(); got != 4 {
		t.Errorf("recorded while disabled: %d", got)
	}
	code, _ = httpGet(t, base+"/record?enable=on")
	if code != http.StatusOK {
		t.Errorf("/record?enable=on -> %d", code)
	}
	if code, _ := httpGet(t, base+"/record?enable=sideways"); code != http.StatusBadRequest {
		t.Errorf("bad enable value -> %d", code)
	}

	code, body = httpGet(t, base+"/replay/filter")
	if code != http.StatusOK {
		t.Fatalf("/replay/filter returned %d: %s", code, body)
	}
	var rep ReplayReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Errorf("/replay/filter did not reproduce: %+v", rep)
	}
	if code, _ := httpGet(t, base+"/replay/"); code != http.StatusBadRequest {
		t.Errorf("/replay/ without instance -> %d", code)
	}
	if code, _ := httpGet(t, base+"/replay/ghost"); code != http.StatusNotFound {
		t.Errorf("/replay/ghost -> %d", code)
	}
}

// TestRecordObsUnconfigured: toggling recording on an application loaded
// without a record ring conflicts.
func TestRecordObsUnconfigured(t *testing.T) {
	app := loadMonitor(t, 0)
	t.Cleanup(app.Stop)
	base := serveObs(t, app)
	code, body := httpGet(t, base+"/record")
	if code != http.StatusOK || !strings.Contains(body, `"configured": false`) {
		t.Errorf("/record on unconfigured app -> %d %s", code, body)
	}
	if code, _ := httpGet(t, base+"/record?enable=on"); code != http.StatusConflict {
		t.Errorf("enable on unconfigured app -> %d", code)
	}
}

// TestControlRecordReplay: the control plane's record and replay ops.
func TestControlRecordReplay(t *testing.T) {
	h := loadPipe(t, false)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := h.app.ServeControl(l)
	t.Cleanup(func() { srv.Close() })
	c, err := DialControl(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	h.drive(7, 3)

	status, err := c.Record("")
	if err != nil || !strings.Contains(status, `"recorded": 4`) {
		t.Errorf("record status = %q, %v", status, err)
	}
	status, err = c.Record("off")
	if err != nil || !strings.Contains(status, `"enabled": false`) {
		t.Errorf("record off = %q, %v", status, err)
	}
	if _, err := c.Record("on"); err != nil {
		t.Errorf("record on: %v", err)
	}

	rep, err := c.Replay("filter")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, `"match": true`) {
		t.Errorf("control replay report = %s", rep)
	}
	if _, err := c.Replay("ghost"); err == nil {
		t.Error("replay of unknown instance accepted")
	}
}

// TestMhreplayCLIReproduces records a pipeline run to a spill file, then
// drives cmd/mhreplay against it offline — the full record -> spill ->
// replay loop through the shipped binary (acceptance criterion).
func TestMhreplayCLIReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs cmd/mhreplay")
	}
	dir := t.TempDir()
	spill, err := os.Create(filepath.Join(dir, "run.rec"))
	if err != nil {
		t.Fatal(err)
	}

	app, err := Load(Config{
		SpecText: pipeSpec,
		Sources: map[string]ModuleSource{
			"filter":    {Files: map[string]string{"filter.go": filterSrc}},
			"filterV2":  {Files: map[string]string{"filter.go": filterV2Src}},
			"filterBad": {Files: map[string]string{"filter.go": filterBadSrc}},
		},
		Native: map[string]NativeModule{
			"psource": func(rt *mh.Runtime) {},
			"psink":   func(rt *mh.Runtime) {},
		},
		SleepUnit:    time.Microsecond,
		StateTimeout: 10 * time.Second,
		RecordBuffer: 1024,
		RecordSpill:  spill,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &pipeHarness{t: t, app: app, c: codec.Default()}
	if err := app.Launch("filter"); err != nil {
		t.Fatal(err)
	}
	if h.src, err = app.AttachDriver("psource"); err != nil {
		t.Fatal(err)
	}
	if h.sink, err = app.AttachDriver("psink"); err != nil {
		t.Fatal(err)
	}
	h.drive(10, 20, 30)
	app.Stop()
	if err := spill.Close(); err != nil {
		t.Fatal(err)
	}

	// Lay out the spec and module sources the way the CLI expects them.
	specPath := filepath.Join(dir, "app.mil")
	if err := os.WriteFile(specPath, []byte(cliPipeSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	srcRoot := filepath.Join(dir, "modules")
	for mod, src := range map[string]string{"filter": filterSrc} {
		if err := os.MkdirAll(filepath.Join(srcRoot, mod), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(srcRoot, mod, "main.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// -canon prints the deterministic per-queue log.
	out, err := exec.Command("go", "run", "./cmd/mhreplay",
		"-log", spill.Name(), "-canon").CombinedOutput()
	if err != nil {
		t.Fatalf("mhreplay -canon: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "queue filter.in (3)") {
		t.Errorf("-canon output:\n%s", out)
	}

	// Replaying the filter must reproduce the recording and exit 0.
	out, err = exec.Command("go", "run", "./cmd/mhreplay",
		"-log", spill.Name(), "-spec", specPath, "-srcdir", srcRoot, "-inst", "filter").CombinedOutput()
	if err != nil {
		t.Fatalf("mhreplay replay: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "reproduced: replayed output sequence matches the recording") {
		t.Errorf("mhreplay output:\n%s", out)
	}
}

// cliPipeSpec is the offline replay's view of the application: only the
// module under replay needs a runnable source.
const cliPipeSpec = `
module filter {
  source = "./filter" ::
  use interface in pattern = {^integer} ::
  define interface out pattern = {integer} ::
  reconfiguration point = {R} ::
}

module pipe {
  instance filter
}
`
