package reconf

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/fixtures"
	"repro/internal/mh"
	"repro/internal/state"
	"repro/internal/transform"
)

// loadMonitor loads the Figure 2 application with the Figure 3 compute
// source and test-driven display/sensor endpoints (driven directly so the
// tests control timing).
func loadMonitor(t *testing.T, mode transform.CaptureMode) *App {
	t.Helper()
	app, err := Load(Config{
		SpecText: fixtures.MonitorSpec,
		Sources: map[string]ModuleSource{
			"compute": {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
		},
		Native: map[string]NativeModule{
			// Present but unlaunched: the tests drive these instances.
			"display": func(rt *mh.Runtime) {},
			"sensor":  func(rt *mh.Runtime) {},
		},
		Mode:         mode,
		SleepUnit:    time.Microsecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

type driver struct {
	t    testing.TB
	c    codec.Codec
	disp bus.Port
	sens bus.Port
}

func newDriver(t testing.TB, app *App) *driver {
	t.Helper()
	disp, err := app.AttachDriver("display")
	if err != nil {
		t.Fatal(err)
	}
	sens, err := app.AttachDriver("sensor")
	if err != nil {
		t.Fatal(err)
	}
	return &driver{t: t, c: codec.Default(), disp: disp, sens: sens}
}

func (d *driver) request(n int) {
	d.t.Helper()
	data, err := d.c.EncodeValue(state.IntValue(int64(n)))
	if err != nil {
		d.t.Fatal(err)
	}
	if err := d.disp.Write("temper", data); err != nil {
		d.t.Fatal(err)
	}
}

func (d *driver) temperature(v int) {
	d.t.Helper()
	data, err := d.c.EncodeValue(state.IntValue(int64(v)))
	if err != nil {
		d.t.Fatal(err)
	}
	if err := d.sens.Write("out", data); err != nil {
		d.t.Fatal(err)
	}
}

func (d *driver) response() float64 {
	d.t.Helper()
	m, err := d.disp.Read("temper")
	if err != nil {
		d.t.Fatal(err)
	}
	v, err := d.c.DecodeValue(m.Data)
	if err != nil {
		d.t.Fatal(err)
	}
	return v.Float
}

func TestLoadValidation(t *testing.T) {
	base := Config{
		SpecText: fixtures.MonitorSpec,
		Sources: map[string]ModuleSource{
			"compute": {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
		},
		Native: map[string]NativeModule{
			"display": func(rt *mh.Runtime) {},
			"sensor":  func(rt *mh.Runtime) {},
		},
	}
	if _, err := Load(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	bad := base
	bad.SpecText = "module broken {"
	if _, err := Load(bad); err == nil {
		t.Error("broken spec accepted")
	}

	bad = base
	bad.Application = "nope"
	if _, err := Load(bad); err == nil {
		t.Error("unknown application accepted")
	}

	bad = base
	bad.Native = map[string]NativeModule{"display": func(rt *mh.Runtime) {}}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "sensor") {
		t.Errorf("missing implementation: %v", err)
	}

	bad = base
	bad.Native = map[string]NativeModule{
		"display": func(rt *mh.Runtime) {},
		"sensor":  func(rt *mh.Runtime) {},
		"compute": func(rt *mh.Runtime) {},
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "both source and native") {
		t.Errorf("double implementation: %v", err)
	}

	// A native module may not declare points.
	bad = base
	bad.Sources = nil
	bad.Native["compute"] = func(rt *mh.Runtime) {}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "native") {
		t.Errorf("native with points: %v", err)
	}
	delete(bad.Native, "compute")

	// Declared point missing from source.
	noPoint := strings.Replace(fixtures.ComputeSource, `mh.ReconfigPoint("R")`, "", 1)
	bad = base
	bad.Sources = map[string]ModuleSource{
		"compute": {Files: map[string]string{"compute.go": noPoint}},
	}
	if _, err := Load(bad); err == nil {
		t.Error("missing point accepted")
	}
}

func TestModulePreparation(t *testing.T) {
	app := loadMonitor(t, 0)
	comp := app.Module("compute")
	if comp == nil || !comp.Instrumented() {
		t.Fatal("compute not instrumented")
	}
	// Spec mode selected automatically: the Figure 2 state list governs.
	if got := comp.Output.Funcs["compute"].Format; got != "liiF" {
		t.Errorf("compute format = %s (spec mode not applied?)", got)
	}
	if app.Module("display").Instrumented() {
		t.Error("display should not be instrumented")
	}
	if app.Module("ghost") != nil {
		t.Error("ghost module found")
	}
}

// TestMonitorTopologyBeforeAfter is experiment F1 at the facade level.
func TestMonitorTopologyBeforeAfter(t *testing.T) {
	app := loadMonitor(t, 0)
	d := newDriver(t, app)
	if err := app.Launch("compute"); err != nil {
		t.Fatal(err)
	}

	before := app.Topology()
	wantBefore := strings.Join([]string{
		"instance compute (module compute) on machineA",
		"instance display (module display) on machineA",
		"instance sensor (module sensor) on machineA",
		"bind display.temper <-> compute.display",
		"bind sensor.out <-> compute.sensor",
	}, "\n")
	if before != wantBefore {
		t.Errorf("before:\n%s\nwant:\n%s", before, wantBefore)
	}

	// Put compute mid-recursion and move it (Figure 1 right).
	d.request(3)
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(30 * time.Millisecond)
		d.temperature(60)
	}()
	if err := app.Move("compute", "compute2", "machineB"); err != nil {
		t.Fatal(err)
	}
	if err := app.Wait("compute", 5*time.Second); err != nil {
		t.Fatalf("old instance: %v", err)
	}

	after := app.Topology()
	if !strings.Contains(after, "instance compute2 (module compute) on machineB") {
		t.Errorf("after:\n%s", after)
	}
	if strings.Contains(after, "instance compute (") {
		t.Errorf("old instance still present:\n%s", after)
	}

	// The interrupted computation completes exactly.
	d.temperature(70)
	d.temperature(80)
	want := 60.0/3 + 70.0/3 + 80.0/3
	if got := d.response(); got != want {
		t.Errorf("moved computation = %g, want %g", got, want)
	}

	if len(app.Trace()) == 0 {
		t.Error("no primitive trace recorded")
	}
	if rt := app.Runtime("compute2"); rt == nil {
		t.Error("no runtime for clone")
	}
	app.Stop()
}

// TestFullNativePipeline: sensor and display run as native modules; the
// whole application runs hands-off and a move happens under load. Because
// compute discards sensor values between requests (the keep-the-buffer-
// clear path of Figure 3), exact consumption offsets are timing-dependent;
// the invariants are (a) every response is the average of a contiguous
// window of the sensor ramp — so migration never tore a request — and
// (b) all requests are answered, in order.
func TestFullNativePipeline(t *testing.T) {
	const requests = 4
	results := make(chan fixtures.DisplayRequest, requests)
	app, err := Load(Config{
		SpecText: fixtures.MonitorSpec,
		Sources: map[string]ModuleSource{
			"compute": {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
		},
		Native: map[string]NativeModule{
			// The default ramp 50, 51, 52, ... means the average of any
			// contiguous window of 4 is its start value + 1.5.
			"sensor":  fixtures.Sensor(fixtures.SensorConfig{Interval: 1}),
			"display": fixtures.Display(4, requests, 1, results),
		},
		SleepUnit:    100 * time.Microsecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	check := func(r fixtures.DisplayRequest, prev float64) float64 {
		t.Helper()
		start := r.Response - 1.5
		if start < 50 || start != float64(int(start)) {
			t.Errorf("response %v is not a contiguous ramp window average", r.Response)
		}
		if r.Response <= prev {
			t.Errorf("response %v not after %v (reordered or duplicated window)", r.Response, prev)
		}
		return r.Response
	}

	var prev float64
	select {
	case r := <-results:
		prev = check(r, prev)
	case <-time.After(10 * time.Second):
		t.Fatal("first response never arrived")
	}
	if err := app.Move("compute", "compute2", "machineB"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < requests; i++ {
		select {
		case r := <-results:
			prev = check(r, prev)
		case <-time.After(10 * time.Second):
			t.Fatalf("response %d never arrived", i)
		}
	}
}

func TestStopIdempotentAndWaitErrors(t *testing.T) {
	app := loadMonitor(t, 0)
	if err := app.Wait("compute", time.Millisecond); err == nil {
		t.Error("wait for unlaunched instance succeeded")
	}
	if err := app.Launch("compute"); err != nil {
		t.Fatal(err)
	}
	if err := app.Launch("compute"); err == nil {
		t.Error("double launch accepted")
	}
	if app.Runtime("ghost") != nil {
		t.Error("runtime for ghost")
	}
	app.Stop()
	app.Stop() // idempotent
	if err := app.Wait("compute", time.Second); err != nil {
		t.Errorf("post-stop wait: %v", err)
	}
}

func TestLaunchUnknownInstance(t *testing.T) {
	app := loadMonitor(t, 0)
	if err := app.Launch("ghost"); err == nil {
		t.Error("launch ghost accepted")
	}
}

func TestCaptureModesThroughFacade(t *testing.T) {
	for _, mode := range []transform.CaptureMode{CaptureAll, CaptureLive, CaptureSpec} {
		app := loadMonitor(t, mode)
		if got := app.Module("compute").Output; got == nil {
			t.Fatalf("mode %v: not instrumented", mode)
		}
	}
}

func TestInterfacesOf(t *testing.T) {
	spec, err := Load(Config{
		SpecText: fixtures.MonitorSpec,
		Sources: map[string]ModuleSource{
			"compute": {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
		},
		Native: map[string]NativeModule{
			"display": func(rt *mh.Runtime) {},
			"sensor":  func(rt *mh.Runtime) {},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ifaces := InterfacesOf(spec.Spec.Module("compute"))
	if len(ifaces) != 2 || ifaces[0].Dir != bus.InOut || ifaces[1].Dir != bus.In {
		t.Errorf("compute interfaces = %+v", ifaces)
	}
	ifaces = InterfacesOf(spec.Spec.Module("sensor"))
	if len(ifaces) != 1 || ifaces[0].Dir != bus.Out {
		t.Errorf("sensor interfaces = %+v", ifaces)
	}
}
