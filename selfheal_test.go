package reconf

// Chaos suite for the self-healing replica layer: a `replicas 3` worker pool
// between 16 feeders and a collector, with crashes injected through
// internal/faultinject while the feeders keep sending. The acceptance
// criteria under test: zero message loss (a dead member's fenced backlog
// redistributes to survivors within one routing epoch), the supervisor
// restores N=3 from the periodic checkpoints, and recovery time is bounded
// (emitted as BENCH_selfheal_recovery.json by the artifact test).

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/faultinject"
	"repro/internal/mh"
	"repro/internal/state"
)

const chaosSenders = 16

// chaosSpec builds a MIL specification with chaosSenders feeder instances
// fanning in to one replicated worker pool that feeds a collector.
func chaosSpec(policy string) string {
	var sb strings.Builder
	sb.WriteString(`
module feeder {
  source = "./feeder" ::
  define interface out pattern = {integer} ::
}

module worker {
  source = "./worker" ::
  use interface in pattern = {integer} ::
  define interface out pattern = {integer} ::
}

module collector {
  source = "./collector" ::
  use interface in pattern = {integer} ::
}

module chaos {
`)
	for i := 0; i < chaosSenders; i++ {
		fmt.Fprintf(&sb, "  instance feeder as feeder%d\n", i)
	}
	fmt.Fprintf(&sb, "  instance worker as pool replicas 3 policy %s\n", policy)
	sb.WriteString("  instance collector\n")
	for i := 0; i < chaosSenders; i++ {
		fmt.Fprintf(&sb, "  bind \"feeder%d out\" \"pool in\"\n", i)
	}
	sb.WriteString("  bind \"pool out\" \"collector in\"\n}\n")
	return sb.String()
}

// chaosHarness wires the chaos application: the worker module is native and
// consults a faultpoint at the top of every loop iteration, so a test can
// kill any member deterministically. The crash site sits before Read — an
// injected crash never loses a consumed-but-unanswered message, mirroring a
// process that dies between transactions rather than inside one.
type chaosHarness struct {
	t       *testing.T
	app     *App
	faults  *faultinject.Set
	c       codec.Codec
	feeders []bus.Port
	coll    bus.Port
}

func newChaosHarness(t *testing.T, policy string, checkpointInterval int) *chaosHarness {
	t.Helper()
	return newChaosHarnessOpts(t, policy, checkpointInterval, true)
}

// newChaosHarnessOpts optionally leaves the supervisor's poll loop stopped,
// so a test can observe the crash-report mark-out (which runs in the dying
// member's exit path) without a racing rebuild.
func newChaosHarnessOpts(t *testing.T, policy string, checkpointInterval int, startSup bool) *chaosHarness {
	t.Helper()
	h := &chaosHarness{t: t, faults: faultinject.New(), c: codec.Default()}

	worker := func(rt *mh.Runtime) {
		rt.Init()
		var processed, loc int
		if rt.Status() == bus.StatusClone {
			rt.Decode()
			rt.Restore("main", "", &loc, &processed)
			rt.FinishRestore()
		}
		rt.RegisterSnapshot(func() (*state.State, error) {
			st := state.New(rt.Name())
			st.PushFrame(state.Frame{Func: "main", Location: 1,
				Vars: []state.Var{{Name: "processed", Value: state.IntValue(int64(processed))}}})
			return st, nil
		})
		site := "replica.crash." + rt.Name()
		for {
			if h.faults.Fire(site) != nil {
				return // injected crash: the goroutine just dies
			}
			if rt.QueryIfMsgs("in") {
				var n int
				rt.Read("in", &n)
				processed++
				rt.Write("out", n)
			} else {
				rt.Sleep(1)
			}
		}
	}

	app, err := Load(Config{
		SpecText: chaosSpec(policy),
		Native: map[string]NativeModule{
			"worker":    worker,
			"feeder":    func(rt *mh.Runtime) {}, // driven by the test
			"collector": func(rt *mh.Runtime) {},
		},
		SleepUnit:          time.Microsecond,
		CheckpointInterval: checkpointInterval,
		SupervisorPoll:     2 * time.Millisecond,
		StallAfter:         10 * time.Second, // crash reports drive this suite, not stall detection
	})
	if err != nil {
		t.Fatal(err)
	}
	h.app = app
	t.Cleanup(app.Stop)
	app.Bus().SetFaults(h.faults)

	// Launch only the pool members (the feeders and collector are driven
	// directly), then arm the supervisor.
	for i := 1; i <= 3; i++ {
		if err := app.Launch(fmt.Sprintf("pool.%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	sup := app.Supervisor("pool")
	if sup == nil {
		t.Fatal("no supervisor for pool")
	}
	if startSup {
		sup.Start()
	}

	for i := 0; i < chaosSenders; i++ {
		p, err := app.AttachDriver(fmt.Sprintf("feeder%d", i))
		if err != nil {
			t.Fatal(err)
		}
		h.feeders = append(h.feeders, p)
	}
	if h.coll, err = app.AttachDriver("collector"); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *chaosHarness) waitUntil(what string, timeout time.Duration, cond func() bool) {
	h.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	h.t.Fatalf("timed out waiting for %s (stats %+v)", what, h.app.Supervisor("pool").Stats())
}

// run drives the chaos scenario: 16 senders push perSender sequence-tagged
// messages while kills replicas are crashed one after another, each given
// time to recover before the next. Returns the per-kill recovery durations
// (detection to committed rebuild, wall clock).
func (h *chaosHarness) run(perSender, kills int) []time.Duration {
	return h.runBatch(perSender, kills, 1)
}

// runBatch is run with the senders pushing batchSize-message SendBatch
// calls instead of single writes: whole batches race the crash-triggered
// fence-and-redistribute path, and exactly-once must still hold.
// batchSize must divide perSender.
func (h *chaosHarness) runBatch(perSender, kills, batchSize int) []time.Duration {
	h.t.Helper()
	total := chaosSenders * perSender
	sup := h.app.Supervisor("pool")

	// Collector drain: every message carries a unique id; receipt must be
	// exactly-once.
	received := make(chan int, total)
	go func() { //archlint:spawn test collector drain; exits when the collector port closes or all ids arrive
		for i := 0; i < total; i++ {
			m, err := h.coll.Read("in")
			if err != nil {
				return
			}
			v, err := h.c.DecodeValue(m.Data)
			if err != nil {
				return
			}
			received <- int(v.Int)
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < chaosSenders; s++ {
		wg.Add(1)
		go func(s int) { //archlint:spawn test sender; exits after perSender writes, joined via wg
			defer wg.Done()
			for k := 0; k < perSender; k += batchSize {
				batch := make([][]byte, batchSize)
				for j := range batch {
					data, err := h.c.EncodeValue(state.IntValue(int64(s*perSender + k + j)))
					if err != nil {
						h.t.Error(err)
						return
					}
					batch[j] = data
				}
				var err error
				if batchSize == 1 {
					err = h.feeders[s].Write("out", batch[0])
				} else {
					err = h.feeders[s].SendBatch("out", batch)
				}
				if err != nil {
					h.t.Error(err)
					return
				}
				time.Sleep(time.Duration(batchSize) * 300 * time.Microsecond)
			}
		}(s)
	}

	// Kill one live member at a time under load; wait for each rebuild to
	// commit before the next kill so the group never drops below 2.
	recoveries := make([]time.Duration, 0, kills)
	for k := 0; k < kills; k++ {
		st := sup.Status()
		if len(st.Members) == 0 {
			h.t.Fatal("no live members to kill")
		}
		victim := st.Members[k%len(st.Members)].Name
		base := sup.Stats().Recovered
		start := time.Now()
		h.faults.Enable("replica.crash."+victim, faultinject.Point{Action: faultinject.Error, Count: 1})
		h.waitUntil(fmt.Sprintf("recovery of %s", victim), 15*time.Second,
			func() bool { return sup.Stats().Recovered > base })
		recoveries = append(recoveries, time.Since(start))
	}
	wg.Wait()

	// Zero loss, zero duplication: every id arrives exactly once.
	seen := make(map[int]bool, total)
	deadline := time.NewTimer(15 * time.Second)
	defer deadline.Stop()
	for len(seen) < total {
		select {
		case id := <-received:
			if seen[id] {
				h.t.Fatalf("id %d delivered twice", id)
			}
			seen[id] = true
		case <-deadline.C:
			h.t.Fatalf("lost %d of %d messages after %d kills (stats %+v)",
				total-len(seen), total, kills, sup.Stats())
		}
	}

	st := sup.Status()
	if len(st.Members) != 3 {
		h.t.Fatalf("group not restored to 3 members: %+v", st)
	}
	if len(st.Pending) != 0 {
		h.t.Fatalf("corpses still pending after recovery: %v", st.Pending)
	}
	if got := sup.Stats().Recovered; got != int64(kills) {
		h.t.Fatalf("Recovered = %d, want %d", got, kills)
	}
	return recoveries
}

// TestSelfHealChaosKillUnderLoad is the chaos matrix: for each balancing
// policy, crash 3 replicas (one at a time) under sustained 16-sender load
// and require zero loss, zero duplication, and a group healed back to N=3.
// scripts/check.sh runs it under -race.
func TestSelfHealChaosKillUnderLoad(t *testing.T) {
	for _, policy := range []string{bus.PolicyRoundRobin, bus.PolicyLeastQueue} {
		t.Run(policy, func(t *testing.T) {
			h := newChaosHarness(t, policy, 4)
			h.run(50, 3)
		})
		t.Run(policy+"/batched", func(t *testing.T) {
			h := newChaosHarness(t, policy, 4)
			h.runBatch(50, 3, 5)
		})
	}
}

// TestSelfHealSurvivorsAbsorbWithinOneEpoch pins the mark-out granularity:
// a crash report fences and redistributes the dead member's backlog in
// exactly one routing-snapshot publish, and the survivors answer traffic
// alone before any rebuild has run.
func TestSelfHealSurvivorsAbsorbWithinOneEpoch(t *testing.T) {
	// Supervisor poll loop off: mark-out runs in the dying member's exit
	// path, so it is observable without a racing rebuild.
	h := newChaosHarnessOpts(t, bus.PolicyRoundRobin, 4, false)
	sup := h.app.Supervisor("pool")

	send := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			data, err := h.c.EncodeValue(state.IntValue(int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if err := h.feeders[0].Write("out", data); err != nil {
				t.Fatal(err)
			}
		}
	}
	recv := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := h.coll.Read("in"); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Warm up so every member has checkpointed at least once.
	send(24)
	recv(24)

	epochBefore := h.app.Bus().Stats().SnapshotVersion
	h.faults.Enable("replica.crash.pool.1", faultinject.Point{Action: faultinject.Error, Count: 1})
	h.waitUntil("mark-out", 10*time.Second, func() bool { return len(sup.Status().Members) == 2 })
	epochAfter := h.app.Bus().Stats().SnapshotVersion
	if epochAfter != epochBefore+1 {
		t.Errorf("mark-out took %d routing epochs, want 1", epochAfter-epochBefore)
	}

	// Survivors answer traffic alone; nothing has been rebuilt yet.
	send(20)
	recv(20)
	if got := sup.Stats().Recovered; got != 0 {
		t.Fatalf("rebuild ran without the poll loop (Recovered = %d)", got)
	}

	// Now let the supervisor heal.
	sup.Start()
	h.waitUntil("recovery", 10*time.Second, func() bool { return sup.Stats().Recovered == 1 })
}

// TestReplicasObservability exercises the two operator surfaces of the
// supervisor: the /replicas HTTP endpoint and the control plane's
// "replicas" op, after a heal (so the healed generation is visible).
func TestReplicasObservability(t *testing.T) {
	h := newChaosHarness(t, bus.PolicyLeastQueue, 4)
	sup := h.app.Supervisor("pool")
	h.faults.Enable("replica.crash.pool.2", faultinject.Point{Action: faultinject.Error, Count: 1})
	h.waitUntil("heal", 10*time.Second, func() bool { return sup.Stats().Recovered == 1 })

	decode := func(doc string) []map[string]any {
		var sets []map[string]any
		if err := json.Unmarshal([]byte(doc), &sets); err != nil {
			t.Fatalf("bad replicas document: %v\n%s", err, doc)
		}
		return sets
	}
	check := func(surface, doc string) {
		sets := decode(doc)
		if len(sets) != 1 {
			t.Fatalf("%s: %d replica sets, want 1", surface, len(sets))
		}
		set := sets[0]
		if set["group"] != "pool" || set["policy"] != bus.PolicyLeastQueue {
			t.Errorf("%s: group/policy = %v/%v", surface, set["group"], set["policy"])
		}
		members, _ := set["members"].([]any)
		if len(members) != 3 {
			t.Errorf("%s: %d members, want 3", surface, len(members))
		}
		names := make([]string, 0, len(members))
		for _, m := range members {
			names = append(names, m.(map[string]any)["name"].(string))
		}
		sort.Strings(names)
		if strings.Join(names, " ") != "pool.1 pool.3 pool.4" {
			t.Errorf("%s: members = %v", surface, names)
		}
	}

	base := serveObs(t, h.app)
	code, body := httpGet(t, base+"/replicas")
	if code != 200 {
		t.Fatalf("/replicas: status %d", code)
	}
	check("/replicas", body)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := h.app.ServeControl(l)
	defer srv.Close()
	c, err := DialControl(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	doc, err := c.Replicas()
	if err != nil {
		t.Fatal(err)
	}
	check("control replicas", doc)
}

// TestSelfHealDegradedReplicaReplaced is the chaos regression for the
// supervisor's second detection signal: a replica that is alive and
// consuming — so stall detection never fires — but slow and erroring on
// every message. The health checker must judge it Degraded/Critical from
// its windowed error burn, the verdict must be visible on the
// /health/{instance} surface, and once armed the supervisor must mark the
// member out through the health-verdict path (HealthDetected) and rebuild
// the group, leaving the evidence windows in the structured event log.
func TestSelfHealDegradedReplicaReplaced(t *testing.T) {
	var degraded atomic.Value // name of the member currently misbehaving
	degraded.Store("")

	worker := func(rt *mh.Runtime) {
		rt.Init()
		var processed, loc int
		if rt.Status() == bus.StatusClone {
			rt.Decode()
			rt.Restore("main", "", &loc, &processed)
			rt.FinishRestore()
		}
		rt.RegisterSnapshot(func() (*state.State, error) {
			st := state.New(rt.Name())
			st.PushFrame(state.Frame{Func: "main", Location: 1,
				Vars: []state.Var{{Name: "processed", Value: state.IntValue(int64(processed))}}})
			return st, nil
		})
		for {
			if rt.QueryIfMsgs("in") {
				var n int
				rt.Read("in", &n)
				if degraded.Load() == rt.Name() {
					// Slow and erroring, but never crashing: the message is
					// still forwarded, the heartbeat counter keeps moving.
					rt.ReportError()
					time.Sleep(500 * time.Microsecond)
				}
				processed++
				rt.Write("out", n)
			} else {
				rt.Sleep(1)
			}
		}
	}

	app, err := Load(Config{
		SpecText: chaosSpec(bus.PolicyRoundRobin),
		Native: map[string]NativeModule{
			"worker":    worker,
			"feeder":    func(rt *mh.Runtime) {},
			"collector": func(rt *mh.Runtime) {},
		},
		SleepUnit:          time.Microsecond,
		CheckpointInterval: 4,
		SupervisorPoll:     5 * time.Millisecond,
		StallAfter:         10 * time.Second, // only the health verdict may detect here
		TimeseriesWindow:   25 * time.Millisecond,
		TimeseriesWindows:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Stop)
	for i := 1; i <= 3; i++ {
		if err := app.Launch(fmt.Sprintf("pool.%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	sup := app.Supervisor("pool")
	if sup == nil {
		t.Fatal("no supervisor for pool")
	}
	app.Timeseries().Start()

	feeder, err := app.AttachDriver("feeder0")
	if err != nil {
		t.Fatal(err)
	}
	coll, err := app.AttachDriver("collector")
	if err != nil {
		t.Fatal(err)
	}
	c := codec.Default()

	// Sustained background load: the feeder keeps the pool busy while the
	// collector drains, so every window has traffic to judge.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { //archlint:spawn test feeder; exits when stop closes or the port errors out
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			data, err := c.EncodeValue(state.IntValue(int64(i)))
			if err != nil {
				return
			}
			if err := feeder.Write("out", data); err != nil {
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	go func() { //archlint:spawn test collector drain; exits when the collector port closes
		defer wg.Done()
		for {
			if _, err := coll.Read("in"); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() { close(stop); app.Stop(); wg.Wait() })

	// Warm up until every member has windowed history and checkpoints.
	deadline := time.Now().Add(10 * time.Second)
	for app.Timeseries().Rolled() < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	victim := sup.Status().Members[0].Name
	degradedAt := time.Now()
	degraded.Store(victim)

	// With the supervisor not yet armed, the verdict surface alone must
	// flag the member: poll /health/{victim} until Degraded or Critical.
	base := serveObs(t, app)
	var verdict struct {
		Level   string           `json:"level"`
		Reasons []string         `json:"reasons"`
		Windows []map[string]any `json:"evidence,omitempty"`
	}
	flagged := false
	for time.Now().Before(deadline) {
		code, body := httpGet(t, base+"/health/"+victim)
		if code != 200 {
			t.Fatalf("/health/%s: status %d", victim, code)
		}
		if err := json.Unmarshal([]byte(body), &verdict); err != nil {
			t.Fatalf("bad verdict: %v\n%s", err, body)
		}
		if verdict.Level == "degraded" || verdict.Level == "critical" {
			flagged = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !flagged {
		t.Fatalf("/health/%s never left healthy (last verdict %+v)", victim, verdict)
	}

	// Arm the supervisor: the critical verdict must drive a mark-out through
	// the health path and a rebuild back to 3 members, within bounded
	// windows (the waitUntil deadline is ~600 windows; in practice a few).
	sup.Start()
	h := &chaosHarness{t: t, app: app}
	h.waitUntil("health-verdict detection", 15*time.Second,
		func() bool { return sup.Stats().HealthDetected >= 1 })
	h.waitUntil("rebuild after health mark-out", 15*time.Second,
		func() bool { return sup.Stats().Recovered >= 1 })
	detectLatency := time.Since(degradedAt)

	st := sup.Status()
	if len(st.Members) != 3 {
		t.Fatalf("group not restored to 3 members: %+v", st)
	}
	for _, m := range st.Members {
		if m.Name == victim {
			t.Fatalf("degraded member %s still in the group: %+v", victim, st)
		}
	}

	// The event log must carry the verdict transition with its evidence
	// windows, and the recovery that followed it.
	var sawVerdict, sawRecovered bool
	for _, r := range app.Events().Since(0) {
		if r.Source == "supervisor" && r.Instance == victim &&
			(r.Kind == "health_critical" || r.Kind == "health_degraded") {
			if !strings.Contains(r.Detail, "evidence") {
				t.Errorf("health event for %s lacks evidence windows: %s", victim, r.Detail)
			}
			sawVerdict = true
		}
		if r.Source == "supervisor" && r.Kind == "recovered" && r.Instance == victim {
			sawRecovered = true
		}
	}
	if !sawVerdict {
		t.Errorf("no health_* event for %s in the event log", victim)
	}
	if !sawRecovered {
		t.Errorf("no recovered event for %s in the event log", victim)
	}
	t.Logf("degraded %s flagged and replaced in %v (~%d windows)",
		victim, detectLatency, detectLatency/(25*time.Millisecond))
}

// TestSelfHealRecoveryArtifact measures crash-to-recovered latency at three
// checkpoint intervals and writes BENCH_selfheal_recovery.json — the
// measured side of the paper's Discussion claim that checkpointing for
// reconfiguration is a continuous cost traded against recovery time. Gated
// on RECONFIG_SELFHEAL_JSON (scripts/check.sh sets it).
func TestSelfHealRecoveryArtifact(t *testing.T) {
	out := os.Getenv("RECONFIG_SELFHEAL_JSON")
	if out == "" {
		t.Skip("set RECONFIG_SELFHEAL_JSON=<path> to emit the recovery artifact")
	}
	const perSender, kills = 40, 4
	quantile := func(ms []float64, q float64) float64 {
		idx := int(math.Ceil(q*float64(len(ms)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ms) {
			idx = len(ms) - 1
		}
		return ms[idx]
	}
	intervals := []int{2, 8, 32}
	byInterval := map[string]any{}
	for _, interval := range intervals {
		h := newChaosHarness(t, bus.PolicyRoundRobin, interval)
		recov := h.run(perSender, kills)
		ms := make([]float64, 0, len(recov))
		var sum float64
		for _, d := range recov {
			v := float64(d.Microseconds()) / 1000.0
			ms = append(ms, v)
			sum += v
		}
		sort.Float64s(ms)
		// The steady-state side of the tradeoff: captures charged and bytes
		// encoded across the surviving members, against the same workload.
		var checkpoints, bytes, ops int64
		for _, m := range h.app.Supervisor("pool").Status().Members {
			rt := h.app.Runtime(m.Name)
			if rt == nil || rt.Checkpointer() == nil {
				continue
			}
			cs := rt.Checkpointer().Stats()
			checkpoints += cs.Checkpoints
			bytes += cs.Bytes
			ops += cs.Ops
		}
		byInterval[fmt.Sprintf("checkpoint_every_%d_ops", interval)] = map[string]any{
			"recovery_min_ms":   ms[0],
			"recovery_p50_ms":   quantile(ms, 0.50),
			"recovery_p99_ms":   quantile(ms, 0.99),
			"recovery_max_ms":   ms[len(ms)-1],
			"recovery_mean_ms":  sum / float64(len(ms)),
			"checkpoints_taken": checkpoints,
			"checkpoint_bytes":  bytes,
			"ops_observed":      ops,
		}
		h.app.Stop()
	}
	report := map[string]any{
		"benchmark":     "selfheal_recovery",
		"replicas":      3,
		"senders":       chaosSenders,
		"messages":      chaosSenders * perSender,
		"kills":         kills,
		"policy":        bus.PolicyRoundRobin,
		"lost":          0, // h.run fails the test on any loss or duplication
		"by_interval":   byInterval,
		"sleep_unit":    "1us",
		"poll_interval": "2ms",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
