package reconf

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/fixtures"
	"repro/internal/state"
	"repro/internal/transform"
)

// TestCompiledModuleMigration is the reproduction's hardest end-to-end
// claim: the transform's output is real Go. The instrumented compute module
// is emitted as a standalone package, compiled with the Go toolchain, and
// run as two OS processes ("machines") attached to the bus over TCP; the
// module is captured mid-recursion in process 1 and restored in process 2,
// and the answer is exact.
func TestCompiledModuleMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles with the Go toolchain; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}

	out, err := transform.PrepareSource("compute.go", fixtures.ComputeSource, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	files, err := out.Standalone()
	if err != nil {
		t.Fatal(err)
	}

	// Build in a scratch module that replaces repro with this repository.
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gomod := fmt.Sprintf("module genmodule\n\ngo 1.22\n\nrequire repro v0.0.0\n\nreplace repro => %s\n", repoRoot)
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(name)), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bin := filepath.Join(dir, "compute-module")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	build := exec.Command(goBin, "build", "-o", bin, ".")
	build.Dir = dir
	build.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if outp, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build failed: %v\n%s\n---- generated sources ----\n%s",
			err, outp, files["compute.go"])
	}

	// Bus with TCP attachments.
	b := bus.New()
	specOf := func(name, machine, status string) bus.InstanceSpec {
		return bus.InstanceSpec{
			Name: name, Module: "compute", Machine: machine, Status: status,
			Interfaces: []bus.IfaceSpec{
				{Name: "display", Dir: bus.InOut},
				{Name: "sensor", Dir: bus.In},
			},
		}
	}
	for _, spec := range []bus.InstanceSpec{
		{Name: "display", Interfaces: []bus.IfaceSpec{{Name: "temper", Dir: bus.InOut}}},
		{Name: "sensor", Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
		specOf("compute", "machineA", bus.StatusAdd),
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, bd := range [][2]bus.Endpoint{
		{{Instance: "display", Interface: "temper"}, {Instance: "compute", Interface: "display"}},
		{{Instance: "sensor", Interface: "out"}, {Instance: "compute", Interface: "sensor"}},
	} {
		if err := b.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := netListen()
	if err != nil {
		t.Fatal(err)
	}
	srv := bus.NewServer(b, ln)
	defer srv.Close()

	disp, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}
	sens, err := b.Attach("sensor")
	if err != nil {
		t.Fatal(err)
	}
	c := codec.Default()
	sendInt := func(p bus.Port, iface string, v int) {
		t.Helper()
		data, err := c.EncodeValue(state.IntValue(int64(v)))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(iface, data); err != nil {
			t.Fatal(err)
		}
	}

	startProc := func(instance string) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin)
		cmd.Env = append(os.Environ(),
			"MH_BUS_ADDR="+srv.Addr().String(),
			"MH_INSTANCE="+instance,
			"MH_SLEEP_UNIT_MS=1",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", instance, err)
		}
		return cmd
	}

	proc1 := startProc("compute")
	defer proc1.Process.Kill()

	// Serve one request normally.
	sendInt(disp, "temper", 2)
	sendInt(sens, "out", 10)
	sendInt(sens, "out", 30)
	m, err := disp.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.DecodeValue(m.Data)
	if err != nil || v.Float != 20 {
		t.Fatalf("first answer = %v, %v", v, err)
	}

	// Interrupt mid-recursion: request depth 3, let it block on the
	// sensor, signal, feed one value. Over TCP the signal frame and the
	// read response race on the wire (exactly like an asynchronous UNIX
	// signal); pause between them so the flag is set before the module
	// resumes, making the capture land at this request's second level
	// rather than at some later reconfiguration point.
	sendInt(disp, "temper", 3)
	time.Sleep(300 * time.Millisecond)
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	sendInt(sens, "out", 60)
	owner, err := b.AwaitDivulged("compute", 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth() != 3 {
		t.Fatalf("captured depth = %d, want 3:\n%s", st.Depth(), st)
	}
	if err := proc1.Wait(); err != nil {
		t.Fatalf("process 1 exit: %v", err)
	}

	// Clone instance, rebind, install state, start process 2.
	if err := b.AddInstance(specOf("compute2", "machineB", bus.StatusClone)); err != nil {
		t.Fatal(err)
	}
	err = b.Rebind([]bus.BindEdit{
		{Op: "del", From: bus.Endpoint{Instance: "display", Interface: "temper"}, To: bus.Endpoint{Instance: "compute", Interface: "display"}},
		{Op: "add", From: bus.Endpoint{Instance: "display", Interface: "temper"}, To: bus.Endpoint{Instance: "compute2", Interface: "display"}},
		{Op: "del", From: bus.Endpoint{Instance: "sensor", Interface: "out"}, To: bus.Endpoint{Instance: "compute", Interface: "sensor"}},
		{Op: "add", From: bus.Endpoint{Instance: "sensor", Interface: "out"}, To: bus.Endpoint{Instance: "compute2", Interface: "sensor"}},
		{Op: "cq", From: bus.Endpoint{Instance: "compute", Interface: "display"}, To: bus.Endpoint{Instance: "compute2", Interface: "display"}},
		{Op: "cq", From: bus.Endpoint{Instance: "compute", Interface: "sensor"}, To: bus.Endpoint{Instance: "compute2", Interface: "sensor"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.InstallState("compute2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}

	proc2 := startProc("compute2")
	defer proc2.Process.Kill()

	sendInt(sens, "out", 70)
	sendInt(sens, "out", 80)
	m, err = disp.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	v, err = c.DecodeValue(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	want := 60.0/3 + 70.0/3 + 80.0/3
	if v.Float != want {
		t.Errorf("migrated answer = %v, want %v", v.Float, want)
	}

	// Process 2 keeps serving.
	sendInt(disp, "temper", 1)
	sendInt(sens, "out", 55)
	m, err = disp.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	v, _ = c.DecodeValue(m.Data)
	if v.Float != 55 {
		t.Errorf("post-migration answer = %v", v.Float)
	}

	if err := b.DeleteInstance("compute2"); err != nil {
		t.Fatal(err)
	}
	procDone := make(chan error, 1)
	go func() { procDone <- proc2.Wait() }()
	select {
	case <-procDone:
	case <-time.After(10 * time.Second):
		t.Error("process 2 did not exit after instance deletion")
	}
}

// netListen opens a loopback TCP listener.
func netListen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
