package reconf

// TestTraceOverheadArtifact quantifies the cost of causal tracing on the
// message hot path and writes BENCH_trace_overhead.json (scripts/check.sh
// sets RECONFIG_TRACE_OVERHEAD_JSON; a plain `go test` run skips it):
//
//   - message_roundtrip: one bus write+read with tracing disabled
//     (WithMsgTracer(nil)), enabled but unsampled (the default — contexts
//     minted and propagated, nothing recorded), and fully sampled (every
//     delivery lands in the flight recorder). The allocation delta between
//     off and unsampled must be zero: stamping a context is arithmetic and
//     a clock read, mirroring the paper's "a test of a flag" discipline.
//   - flight_recorder: the fixed memory bound of the ring buffer, which is
//     what makes always-on sampling safe to leave enabled.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bus"
	"repro/internal/telemetry/trace"
)

func TestTraceOverheadArtifact(t *testing.T) {
	out := os.Getenv("RECONFIG_TRACE_OVERHEAD_JSON")
	if out == "" {
		t.Skip("set RECONFIG_TRACE_OVERHEAD_JSON=<path> to emit the trace overhead artifact")
	}

	payload := make([]byte, 64)
	roundtrip := func(src, dst bus.Port) func() {
		return func() {
			if err := src.Write("out", payload); err != nil {
				t.Fatal(err)
			}
			if _, err := dst.Read("in"); err != nil {
				t.Fatal(err)
			}
		}
	}

	offSrc, offDst := overheadBusPair(t, bus.WithMsgTracer(nil))
	unsampledSrc, unsampledDst := overheadBusPair(t) // default: mint, never record
	rec := trace.NewRecorder(4096)
	sampledSrc, sampledDst := overheadBusPair(t, bus.WithMsgTracer(trace.NewTracer(1, rec)))

	offNs := benchNs(roundtrip(offSrc, offDst))
	unsampledNs := benchNs(roundtrip(unsampledSrc, unsampledDst))
	sampledNs := benchNs(roundtrip(sampledSrc, sampledDst))

	offAllocs := testing.AllocsPerRun(2000, roundtrip(offSrc, offDst))
	unsampledAllocs := testing.AllocsPerRun(2000, roundtrip(unsampledSrc, unsampledDst))
	allocDelta := unsampledAllocs - offAllocs
	if allocDelta > 0 {
		t.Errorf("unsampled tracing adds %v allocs per message (off=%v unsampled=%v)",
			allocDelta, offAllocs, unsampledAllocs)
	}

	report := map[string]any{
		"benchmark": "trace_overhead",
		"message_roundtrip": map[string]float64{
			"tracing_off_ns_op":        offNs,
			"tracing_unsampled_ns_op":  unsampledNs,
			"tracing_sampled_ns_op":    sampledNs,
			"unsampled_overhead_ns_op": unsampledNs - offNs,
			"sampled_overhead_ns_op":   sampledNs - offNs,
			"trace_allocs_per_msg":     allocDelta,
		},
		"flight_recorder": map[string]int64{
			"capacity_spans":     int64(rec.Cap()),
			"recorded_spans":     rec.Recorded(),
			"memory_bound_bytes": int64(rec.MemoryBound()),
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
