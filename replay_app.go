package reconf

// Record/replay facade: the App-level surface of the record/replay
// subsystem. The bus appends every delivered message to the record ring
// (Config.RecordBuffer); this file turns a recorded window back into
// running code — replaying an instance's inputs against a module body in
// a sandbox (internal/replay/rerun) — and wires the result in three
// places: ReplayRecorded (the offline reproduction behind cmd/mhreplay
// and the /replay/{id} obs endpoint), preflightReplay (the opt-in gate
// ReplaceTx runs between restore_wait and commit), and RecordStatus (the
// /record endpoint and the control plane's record op).

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/mh"
	"repro/internal/replay"
	"repro/internal/replay/rerun"
)

// Recorder returns the application's record log (nil when
// Config.RecordBuffer was 0).
func (a *App) Recorder() *replay.Log { return a.recorder }

// RecordStatus describes the record ring for operators.
type RecordStatus struct {
	Configured  bool              `json:"configured"`
	Enabled     bool              `json:"enabled"`
	Capacity    int               `json:"capacity"`
	Retained    int               `json:"retained"`
	Recorded    uint64            `json:"recorded"`
	MemoryBound int               `json:"memory_bound_bytes"`
	SpillError  string            `json:"spill_error,omitempty"`
	Queues      []replay.QueueSeq `json:"queues,omitempty"`
}

// RecordStatus snapshots the record ring's state.
func (a *App) RecordStatus() RecordStatus {
	st := RecordStatus{
		Configured:  a.recorder != nil,
		Enabled:     a.recorder.Enabled(),
		Capacity:    a.recorder.Cap(),
		Retained:    a.recorder.Len(),
		Recorded:    a.recorder.Recorded(),
		MemoryBound: a.recorder.MemoryBound(),
		Queues:      a.recorder.QueueSeqs(),
	}
	if err := a.recorder.SpillErr(); err != nil {
		st.SpillError = err.Error()
	}
	return st
}

// SetRecording toggles the record ring at runtime (the /record endpoint
// and `reconfigctl record on|off`).
func (a *App) SetRecording(on bool) error {
	if a.recorder == nil {
		return fmt.Errorf("reconf: recording not configured (set Config.RecordBuffer)")
	}
	if on {
		a.recorder.Enable()
	} else {
		a.recorder.Disable()
	}
	return nil
}

// moduleOf resolves the module name behind an instance — the Load-time
// table for originals and replica members, the bus for clones created by
// scripts.
func (a *App) moduleOf(instance string) (string, error) {
	a.mu.Lock()
	mod, ok := a.instMod[instance]
	a.mu.Unlock()
	if ok {
		return mod, nil
	}
	info, err := a.bus.Info(instance)
	if err != nil {
		return "", err
	}
	return info.Module, nil
}

// sandboxModule builds the rerun body for a module: the native function
// directly, or a fresh interpreter over the prepared program. Each call
// returns an independent body — replay runs never share state with the
// live instance or with each other.
func (a *App) sandboxModule(modName string) (rerun.Module, error) {
	a.mu.Lock()
	pm, ok := a.modules[modName]
	a.mu.Unlock()
	if !ok {
		return rerun.Module{}, fmt.Errorf("reconf: no module %s", modName)
	}
	if pm.Native != nil {
		body := pm.Native
		return rerun.Module{Name: modName, Body: func(rt *mh.Runtime) { body(rt) }}, nil
	}
	if pm.Prog == nil {
		return rerun.Module{}, fmt.Errorf("reconf: module %s has no runnable body", modName)
	}
	prog, info := pm.Prog, pm.Info
	return rerun.Module{Name: modName, Body: func(rt *mh.Runtime) {
		_, _ = interp.New(prog, info, rt).Run()
	}}, nil
}

// ReplayReport is the outcome of replaying a recorded window against an
// instance's module.
type ReplayReport struct {
	Instance string `json:"instance"`
	Module   string `json:"module"`
	// Window counts the recorded inputs offered; Consumed how many the
	// module read; Expected the recorded output count; Replayed the
	// replayed output count.
	Window   int `json:"window"`
	Consumed int `json:"consumed"`
	Expected int `json:"expected_outputs"`
	Replayed int `json:"replayed_outputs"`
	// Match is true when the replayed output sequence is byte-identical
	// to the recorded one.
	Match      bool               `json:"match"`
	Divergence *replay.Divergence `json:"divergence,omitempty"`
	// States counts abstract-state checkpoints captured along the run
	// (nonzero only for modules that register a snapshot).
	States int `json:"states,omitempty"`
	// Err reports a non-clean termination of the module body.
	Err string `json:"err,omitempty"`
}

// ReplayRecorded re-runs a recorded window against the named instance's
// own module in-process and diffs the replayed output sequence against
// the recorded one — the reproduction check behind cmd/mhreplay and the
// /replay/{id} obs endpoint. The window defaults to the current ring
// contents when recs is nil.
func (a *App) ReplayRecorded(instance string, recs []replay.Record) (*ReplayReport, error) {
	if recs == nil {
		if a.recorder == nil {
			return nil, fmt.Errorf("reconf: recording not configured (set Config.RecordBuffer)")
		}
		recs = a.recorder.Snapshot()
	}
	modName, err := a.moduleOf(instance)
	if err != nil {
		return nil, err
	}
	mod, err := a.sandboxModule(modName)
	if err != nil {
		return nil, err
	}
	res, err := rerun.Run(instance, recs, mod, rerun.Options{
		Codec:           a.cfg.Codec,
		CheckpointEvery: a.cfg.CheckpointInterval,
		Timeout:         a.cfg.Timeouts.StateMove,
	})
	if err != nil {
		return nil, err
	}
	want := replay.OutputsOf(recs, instance)
	div := replay.DiffOutputs(want, res.Outputs)
	return &ReplayReport{
		Instance:   instance,
		Module:     modName,
		Window:     res.Window,
		Consumed:   res.Consumed,
		Expected:   len(want),
		Replayed:   len(res.Outputs),
		Match:      div == nil && res.Err == "",
		Divergence: div,
		States:     len(res.States),
		Err:        res.Err,
	}, nil
}

// preflightReplay is the replay gate ReplaceTx runs between the clone's
// restore confirmation and commit when Config.PreflightReplay is set: the
// old instance's recorded input window is replayed against the old module
// and the candidate module from identical initial conditions, and any
// divergence in their output sequences vetoes the cutover (the
// transaction aborts through the journaled rollback; the old module keeps
// serving). An empty window passes trivially — there is nothing to vet.
func (a *App) preflightReplay(old, new string) error {
	recs := a.recorder.Snapshot()
	window := replay.InputsTo(recs, old)
	if len(window) == 0 {
		return nil
	}
	oldModName, err := a.moduleOf(old)
	if err != nil {
		return fmt.Errorf("replay gate: %w", err)
	}
	newModName, err := a.moduleOf(new)
	if err != nil {
		return fmt.Errorf("replay gate: %w", err)
	}
	oldMod, err := a.sandboxModule(oldModName)
	if err != nil {
		return fmt.Errorf("replay gate: %w", err)
	}
	newMod, err := a.sandboxModule(newModName)
	if err != nil {
		return fmt.Errorf("replay gate: %w", err)
	}
	opts := rerun.Options{Codec: a.cfg.Codec, Timeout: a.cfg.Timeouts.StateMove}
	oldRes, err := rerun.Run(old, window, oldMod, opts)
	if err != nil {
		return fmt.Errorf("replay gate: old run: %w", err)
	}
	newRes, err := rerun.Run(old, window, newMod, opts)
	if err != nil {
		return fmt.Errorf("replay gate: candidate run: %w", err)
	}
	if newRes.Err != "" {
		return fmt.Errorf("replay gate: candidate %s terminated: %s", newModName, newRes.Err)
	}
	if div := replay.DiffOutputs(oldRes.Outputs, newRes.Outputs); div != nil {
		return fmt.Errorf("replay gate: candidate %s diverges from %s over %d recorded inputs: %s",
			newModName, oldModName, len(window), div)
	}
	return nil
}
