package reconf

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fixtures"
	"repro/internal/mh"
)

// incompatibleV2 has a different procedure shape (extra local, different
// recursion procedure name), so v1's divulged state cannot restore into it.
const incompatibleV2 = `package compute

func main() {
	var n int
	var response float64
	mh.Init()
	for {
		for mh.QueryIfMsgs("display") {
			mh.Read("display", &n)
			tally(n, n, &response)
			mh.Write("display", response)
		}
		mh.Sleep(2)
	}
}

func tally(num int, n int, rp *float64) {
	var temper int
	if n <= 0 {
		*rp = 0.0
		return
	}
	tally(num, n-1, rp)
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`

// TestIncompatibleUpdateFailsLoudly (failure injection): hot-updating to a
// module whose procedures do not match the divulged frames must not
// corrupt anything silently — the clone's restoration aborts with a frame
// mismatch, the update script reports it, and the transaction rolls back:
// the old instance is resurrected from its own divulged state, its queued
// messages are returned, and it finishes the interrupted computation.
func TestIncompatibleUpdateFailsLoudly(t *testing.T) {
	specText := fixtures.MonitorSpec + `
module computeV2 {
  source = "./computeV2" ::
  server interface display pattern = {^integer} returns {float} ::
  use interface sensor pattern = {^integer} ::
  reconfiguration point = {R} ::
}
`
	app, err := Load(Config{
		SpecText: specText,
		Sources: map[string]ModuleSource{
			"compute":   {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
			"computeV2": {Files: map[string]string{"compute.go": incompatibleV2}},
		},
		Native: map[string]NativeModule{
			"display": func(rt *mh.Runtime) {},
			"sensor":  func(rt *mh.Runtime) {},
		},
		SleepUnit:    time.Microsecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	d := newDriver(t, app)
	if err := app.Launch("compute"); err != nil {
		t.Fatal(err)
	}

	// Interrupt mid-recursion, then install the state into the
	// incompatible v2.
	d.request(3)
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(30 * time.Millisecond)
		d.temperature(60)
	}()
	err = app.Update("compute", "compute2", "computeV2")
	if err == nil {
		t.Fatal("incompatible update reported no error")
	}
	if !strings.Contains(err.Error(), "frame") {
		t.Errorf("error %v does not mention the frame mismatch", err)
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Errorf("error %v does not report the rollback", err)
	}

	// The failed clone is gone and the original configuration is back.
	topo := app.Topology()
	if strings.Contains(topo, "compute2") {
		t.Errorf("failed clone still present:\n%s", topo)
	}
	if !strings.Contains(topo, "instance compute (module compute)") {
		t.Errorf("old instance missing after rollback:\n%s", topo)
	}

	// The resurrected old instance still answers traffic: it resumes at
	// its reconfiguration point, reads the queued temperature, and
	// finishes the interrupted computation — nothing was lost.
	d.temperature(70)
	d.temperature(80)
	want := 60.0/3 + 70.0/3 + 80.0/3
	if got := d.response(); got != want {
		t.Errorf("answer after rollback = %g, want %g", got, want)
	}
}

// TestCompatibleUpdateCarriesState is the counterpart: a shape-identical
// v2 accepts the state (the hotswap example's scenario, asserted here).
func TestCompatibleUpdateCarriesState(t *testing.T) {
	v2 := strings.Replace(fixtures.ComputeSource,
		`mh.Write("display", response)`,
		`mh.Write("display", response+1000.0)`, 1)
	specText := fixtures.MonitorSpec + `
module computeV2 {
  source = "./computeV2" ::
  server interface display pattern = {^integer} returns {float} ::
  use interface sensor pattern = {^integer} ::
  reconfiguration point = {R} ::
  state R = {num, n, rp} ::
}
`
	app, err := Load(Config{
		SpecText: specText,
		Sources: map[string]ModuleSource{
			"compute":   {Files: map[string]string{"compute.go": fixtures.ComputeSource}},
			"computeV2": {Files: map[string]string{"compute.go": v2}},
		},
		Native: map[string]NativeModule{
			"display": func(rt *mh.Runtime) {},
			"sensor":  func(rt *mh.Runtime) {},
		},
		SleepUnit:    time.Microsecond,
		StateTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	d := newDriver(t, app)
	if err := app.Launch("compute"); err != nil {
		t.Fatal(err)
	}

	d.request(3)
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(30 * time.Millisecond)
		d.temperature(60)
	}()
	if err := app.Update("compute", "compute2", "computeV2"); err != nil {
		t.Fatal(err)
	}
	d.temperature(70)
	d.temperature(80)
	// v1 built 60/3 of the average; v2 finishes it and adds its marker.
	want := 60.0/3 + 70.0/3 + 80.0/3 + 1000
	if got := d.response(); got != want {
		t.Errorf("updated answer = %g, want %g", got, want)
	}
}
