#!/bin/sh
# Tier-2 verification: static vetting plus race-detector runs of the
# concurrency-heavy packages (the message bus and the quiescence
# protocol). Tier-1 (go build ./... && go test ./...) stays the gate for
# every change; run this before touching the runtime or shipping a PR.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== archlint ./... (self-hosting architectural invariants)"
go run ./cmd/archlint ./...

echo "== go test -race ./internal/bus/... ./internal/quiesce/... ./internal/reconfig/... ./internal/mh/..."
go test -race ./internal/bus/... ./internal/quiesce/... ./internal/reconfig/... ./internal/mh/...

echo "== fault-injection matrix (kill Replace at every failpoint, twice, racy)"
go test -run 'Fault|Rollback|Concurrent' -race -count=2 ./...

echo "== replace latency artifact (with and without injected faults)"
RECONFIG_BENCH_JSON="$PWD/BENCH_reconfig_latency.json" \
	go test -run TestRollbackLatencyArtifact -count=1 .
cat BENCH_reconfig_latency.json

echo "== telemetry overhead artifact (flag test, message path, capture amortization)"
RECONFIG_OVERHEAD_JSON="$PWD/BENCH_overhead.json" \
	go test -run TestOverheadArtifact -count=1 .
cat BENCH_overhead.json

echo "== bus throughput artifact (1/4/16 concurrent senders over routing snapshots)"
# Snapshot the previous run's artifact as the regression baseline; on a
# fresh checkout the first run gates only against the absolute floors.
baseline=$(mktemp)
have_baseline=0
if [ -f BENCH_bus_throughput.json ]; then
	cp BENCH_bus_throughput.json "$baseline"
	have_baseline=1
fi
RECONFIG_BUS_THROUGHPUT_JSON="$PWD/BENCH_bus_throughput.json" \
	go test -run TestBusThroughputArtifact -count=1 .
cat BENCH_bus_throughput.json
if [ "$have_baseline" -eq 0 ]; then
	cp BENCH_bus_throughput.json "$baseline"
fi

echo "== timeseries overhead artifact (roller cost per window, hot path with rollups on/off)"
RECONFIG_TIMESERIES_JSON="$PWD/BENCH_timeseries_overhead.json" \
	go test -run TestTimeseriesOverheadArtifact -count=1 .
cat BENCH_timeseries_overhead.json

echo "== perf regression gate (scaling ratio, single-sender ns/msg, telemetry-on and rollups-on budgets)"
go run ./cmd/perfgate -baseline "$baseline" \
	-current BENCH_bus_throughput.json -overhead BENCH_overhead.json \
	-timeseries BENCH_timeseries_overhead.json
rm -f "$baseline"

echo "== wire overhead artifact (TCP write path allocs/msg, pooled frames and encode buffers)"
RECONFIG_WIRE_OVERHEAD_JSON="$PWD/BENCH_wire_overhead.json" \
	go test -run TestWirePathAllocs -count=1 ./internal/bus/
cat BENCH_wire_overhead.json

echo "== trace overhead artifact (message path: tracing off / unsampled / sampled)"
RECONFIG_TRACE_OVERHEAD_JSON="$PWD/BENCH_trace_overhead.json" \
	go test -run TestTraceOverheadArtifact -count=1 .
cat BENCH_trace_overhead.json

echo "== selfheal chaos matrix (replicas 3, 16 senders, crash-triggered rebuilds, racy)"
go test -run 'TestSelfHeal|TestReplicasObservability' -race -count=1 .

echo "== selfheal recovery artifact (checkpoint interval vs recovery time)"
RECONFIG_SELFHEAL_JSON="$PWD/BENCH_selfheal_recovery.json" \
	go test -race -run TestSelfHealRecoveryArtifact -count=1 .
cat BENCH_selfheal_recovery.json

echo "== record/replay determinism gate (identical logs, exact reproduction, gated cutover, racy)"
go test -run 'TestRecordDeterminism|TestReplayReproduces|TestPreflightReplay|TestSpillGoldenBytes|TestRunReplaysWindow' -race -count=1 ./...

echo "== replay overhead artifact (record off must add 0 allocs/msg; ring memory bound)"
RECONFIG_REPLAY_OVERHEAD_JSON="$PWD/BENCH_replay_overhead.json" \
	go test -run TestReplayOverheadArtifact -count=1 .
cat BENCH_replay_overhead.json

echo "ok"
