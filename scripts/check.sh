#!/bin/sh
# Tier-2 verification: static vetting plus race-detector runs of the
# concurrency-heavy packages (the message bus and the quiescence
# protocol). Tier-1 (go build ./... && go test ./...) stays the gate for
# every change; run this before touching the runtime or shipping a PR.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./internal/bus/... ./internal/quiesce/..."
go test -race ./internal/bus/... ./internal/quiesce/...

echo "ok"
