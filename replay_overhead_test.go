package reconf

// TestReplayOverheadArtifact quantifies what recording costs the message
// path and writes BENCH_replay_overhead.json (scripts/check.sh and `make
// bench` set RECONFIG_REPLAY_OVERHEAD_JSON; a plain `go test` run skips
// it):
//
//   - record_off: one bus write+read with a recorder attached but
//     disabled, against the no-recorder baseline. The disabled hook is one
//     atomic bool load per delivery; its allocation delta per message must
//     be exactly zero.
//   - record_on: the same round trip while every delivery is appended to
//     the ring (payload copy + record allocation — the price of a
//     replayable window).
//   - ring_memory_bound_bytes: the ring's retained-memory bound after the
//     recorded run, pinning the "bounded in-memory ring" claim.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bus"
	"repro/internal/replay"
)

func TestReplayOverheadArtifact(t *testing.T) {
	out := os.Getenv("RECONFIG_REPLAY_OVERHEAD_JSON")
	if out == "" {
		t.Skip("set RECONFIG_REPLAY_OVERHEAD_JSON=<path> to emit the replay overhead artifact")
	}

	payload := make([]byte, 64)
	roundtrip := func(src, dst bus.Port) func() {
		return func() {
			if err := src.Write("out", payload); err != nil {
				t.Fatal(err)
			}
			if _, err := dst.Read("in"); err != nil {
				t.Fatal(err)
			}
		}
	}

	baseSrc, baseDst := overheadBusPair(t)
	offLog := replay.NewLog(4096)
	offSrc, offDst := overheadBusPair(t, bus.WithRecorder(offLog))
	onLog := replay.NewLog(4096)
	onLog.Enable()
	onSrc, onDst := overheadBusPair(t, bus.WithRecorder(onLog))

	baseNs := benchNs(roundtrip(baseSrc, baseDst))
	offNs := benchNs(roundtrip(offSrc, offDst))
	onNs := benchNs(roundtrip(onSrc, onDst))

	baseAllocs := testing.AllocsPerRun(2000, roundtrip(baseSrc, baseDst))
	offAllocs := testing.AllocsPerRun(2000, roundtrip(offSrc, offDst))
	onAllocs := testing.AllocsPerRun(2000, roundtrip(onSrc, onDst))
	offDelta := offAllocs - baseAllocs
	if offDelta > 0 {
		t.Errorf("recording off adds %v allocs per message (off=%v base=%v)",
			offDelta, offAllocs, baseAllocs)
	}

	report := map[string]any{
		"benchmark": "replay_overhead",
		"record_off": map[string]float64{
			"baseline_ns_op":        baseNs,
			"recorder_off_ns_op":    offNs,
			"overhead_ns_op":        offNs - baseNs,
			"record_allocs_per_msg": offDelta,
		},
		"record_on": map[string]float64{
			"recorder_on_ns_op":     onNs,
			"overhead_ns_op":        onNs - baseNs,
			"record_allocs_per_msg": onAllocs - baseAllocs,
		},
		"ring": map[string]float64{
			"capacity":                float64(onLog.Cap()),
			"recorded_total":          float64(onLog.Recorded()),
			"retained":                float64(onLog.Len()),
			"ring_memory_bound_bytes": float64(onLog.MemoryBound()),
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
