package reconf

// The benchmark harness regenerates the paper's quantitative claims
// (see DESIGN.md §3 and EXPERIMENTS.md). The paper's evaluation is
// qualitative, so these benches quantify the Discussion-section cost
// arguments on this reproduction's substrate:
//
//	C1  BenchmarkFlagCheck, BenchmarkSteadyState       — "run-time cost is
//	    merely that of periodically testing the flags"
//	C2  BenchmarkVsCheckpointing                       — pay per reconfig,
//	    not per interval
//	C3  BenchmarkReconfigDelayPlacement                — point placement
//	    governs response latency
//	C4  BenchmarkAtomicityLevels                       — module- vs
//	    statement-level atomicity
//	C5  BenchmarkStackCaptureDepth                     — AR-stack capture
//	    scales with recursion depth
//	A1  BenchmarkCodecs                                — portable vs gob
//	A2  BenchmarkLivenessTrim                          — capture-set modes
//	A3  BenchmarkQueueMove                             — cq cost
//	    (plus BenchmarkBusThroughput, BenchmarkPrepare, BenchmarkMoveEndToEnd)

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/checkpoint"
	"repro/internal/codec"
	"repro/internal/interp"
	"repro/internal/mh"
	"repro/internal/quiesce"
	"repro/internal/state"
	"repro/internal/transform"
)

// ---- helpers ----

func benchBusPair(b *testing.B) (*bus.Bus, bus.Port, bus.Port) {
	b.Helper()
	bb := bus.New()
	for _, spec := range []bus.InstanceSpec{
		{Name: "src", Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
		{Name: "dst", Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}},
	} {
		if err := bb.AddInstance(spec); err != nil {
			b.Fatal(err)
		}
	}
	if err := bb.AddBinding(bus.Endpoint{Instance: "src", Interface: "out"}, bus.Endpoint{Instance: "dst", Interface: "in"}); err != nil {
		b.Fatal(err)
	}
	src, err := bb.Attach("src")
	if err != nil {
		b.Fatal(err)
	}
	dst, err := bb.Attach("dst")
	if err != nil {
		b.Fatal(err)
	}
	return bb, src, dst
}

func benchState(depth, varsPerFrame int) *state.State {
	st := state.New("bench")
	st.Machine = "machineA"
	for i := 0; i < depth; i++ {
		frame := state.Frame{Func: "compute", Location: 3}
		for v := 0; v < varsPerFrame; v++ {
			frame.Vars = append(frame.Vars, state.Var{
				Name:  fmt.Sprintf("v%d", v),
				Value: state.IntValue(int64(i*varsPerFrame + v)),
			})
		}
		st.PushFrame(frame)
	}
	if depth > 0 {
		st.Frames[0].Func = "main"
		st.Frames[0].Location = 1
	}
	return st
}

// ---- C1: flag-testing overhead ----

// BenchmarkFlagCheck measures the compiled cost of one reconfiguration-
// point flag test — the paper's entire steady-state overhead.
func BenchmarkFlagCheck(b *testing.B) {
	bb := bus.New()
	if err := bb.AddInstance(bus.InstanceSpec{Name: "m"}); err != nil {
		b.Fatal(err)
	}
	port, err := bb.Attach("m")
	if err != nil {
		b.Fatal(err)
	}
	rt := mh.New(port)
	rt.Init()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rt.Reconfig() {
			b.Fatal("flag unexpectedly set")
		}
	}
}

// BenchmarkSteadyState compares the original and the instrumented compute
// module serving identical request streams with no reconfiguration — the
// instrumented module's extra cost is exactly the flag tests (C1).
func BenchmarkSteadyState(b *testing.B) {
	run := func(b *testing.B, mode transform.CaptureMode, instrument bool) {
		app := benchMonitorApp(b, mode, instrument)
		defer app.Stop()
		d := benchDriver(b, app)
		if err := app.Launch("compute"); err != nil {
			b.Fatal(err)
		}
		// Warm up one round trip, then pipeline b.N requests so module-
		// side processing cost dominates over request latency noise.
		d.request(2)
		d.temperature(10)
		d.temperature(30)
		if got := d.response(); got != 20 {
			b.Fatalf("warmup response = %v", got)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.request(2)
			d.temperature(10)
			d.temperature(30)
		}
		for i := 0; i < b.N; i++ {
			if got := d.response(); got != 20 {
				b.Fatalf("response = %v", got)
			}
		}
		b.StopTimer()
		if rt := app.Runtime("compute"); rt != nil && instrument {
			b.ReportMetric(float64(rt.FlagChecks)/float64(b.N), "flagchecks/op")
		}
	}
	b.Run("original", func(b *testing.B) { run(b, 0, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, transform.CaptureSpec, true) })
}

// ---- C2: vs checkpointing ----

// BenchmarkVsCheckpointing compares steady-state overhead per operation:
// the paper's approach pays one flag test; checkpointing pays a full state
// snapshot+encode every interval.
func BenchmarkVsCheckpointing(b *testing.B) {
	const stateDepth = 8
	b.Run("reconfig-points", func(b *testing.B) {
		bb := bus.New()
		if err := bb.AddInstance(bus.InstanceSpec{Name: "m"}); err != nil {
			b.Fatal(err)
		}
		port, _ := bb.Attach("m")
		rt := mh.New(port)
		rt.Init()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = rt.Reconfig() // per-op cost: the flag test
		}
	})
	for _, interval := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("checkpoint-every-%d", interval), func(b *testing.B) {
			counter := 0
			cp, err := checkpoint.New(interval, codec.Default(), func() (*state.State, error) {
				st := benchState(stateDepth, 4)
				st.Meta["counter"] = fmt.Sprint(counter)
				return st, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				counter++
				if err := cp.Tick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := cp.Stats()
			if st.Checkpoints > 0 {
				b.ReportMetric(float64(st.Bytes)/float64(b.N), "ckptbytes/op")
			}
		})
	}
}

// ---- C3: reconfiguration delay vs point placement ----

const innerPointSrc = `package worker

func main() {
	var x int
	mh.Init()
	for {
		x = work(x)
	}
}

func work(x int) int {
	for j := 0; j < 64; j++ {
		x = (x*31 + 7) % 1000003
		mh.ReconfigPoint("R")
	}
	return x
}
`

const outerPointSrc = `package worker

func main() {
	var x int
	mh.Init()
	for {
		x = work(x)
	}
}

func work(x int) int {
	for j := 0; j < 64; j++ {
		x = (x*31 + 7) % 1000003
	}
	mh.ReconfigPoint("R")
	return x
}
`

// BenchmarkReconfigDelayPlacement measures the latency from the
// reconfiguration request to state divulgence, with the point inside the
// hot loop (checked every step) versus outside it (checked every 64
// steps): "in order for a module to quickly respond to a reconfiguration
// request, the reconfiguration points must be located within the most
// frequently executed code."
func BenchmarkReconfigDelayPlacement(b *testing.B) {
	for name, src := range map[string]string{"inner": innerPointSrc, "outer": outerPointSrc} {
		b.Run(name, func(b *testing.B) {
			out, err := transform.PrepareSource("worker.go", src, transform.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bb := bus.New()
				if err := bb.AddInstance(bus.InstanceSpec{Name: "w"}); err != nil {
					b.Fatal(err)
				}
				port, err := bb.Attach("w")
				if err != nil {
					b.Fatal(err)
				}
				rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
				in := interp.New(out.Prog, out.Info, rt)
				done := make(chan struct{})
				go func() { in.Run(); close(done) }()
				time.Sleep(2 * time.Millisecond) // let it reach the hot loop
				b.StartTimer()
				if err := bb.SignalReconfig("w"); err != nil {
					b.Fatal(err)
				}
				if _, err := bb.AwaitDivulged("w", 30*time.Second); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				bb.DeleteInstance("w")
				<-done
				b.StartTimer()
			}
		})
	}
}

// ---- C4: atomicity levels ----

// BenchmarkAtomicityLevels measures reconfiguration latency while the
// module is mid-unit: module-level atomicity (quiescence, no
// participation) must wait for the whole unit of work to finish;
// statement-level atomicity (reconfiguration points inside the unit)
// responds at the next point.
func BenchmarkAtomicityLevels(b *testing.B) {
	const unitWork = 5 * time.Millisecond
	const pointEvery = 100 * time.Microsecond

	b.Run("module-level-quiesce", func(b *testing.B) {
		g := quiesce.NewGuard()
		stop := make(chan struct{})
		workerDone := make(chan struct{})
		go func() {
			defer close(workerDone)
			for {
				select {
				case <-stop:
					return
				default:
				}
				g.Enter()
				time.Sleep(unitWork) // the unit is opaque: no points inside
				g.Exit()
			}
		}()
		defer func() { close(stop); g.Release(); <-workerDone }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.Quiesce(30 * time.Second); err != nil {
				b.Fatal(err)
			}
			g.Release()
			time.Sleep(time.Millisecond) // let a unit begin again
		}
	})

	b.Run("statement-level-points", func(b *testing.B) {
		// The unit polls its flag every pointEvery; reconfiguration is
		// acknowledged at the next poll.
		flag := make(chan chan struct{}, 1)
		stop := make(chan struct{})
		workerDone := make(chan struct{})
		go func() {
			defer close(workerDone)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// One unit of work with embedded reconfiguration points.
				for step := time.Duration(0); step < unitWork; step += pointEvery {
					time.Sleep(pointEvery)
					select {
					case ack := <-flag: // the reconfiguration point
						close(ack)
					case <-stop:
						return
					default:
					}
				}
			}
		}()
		defer func() { close(stop); <-workerDone }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ack := make(chan struct{})
			flag <- ack
			<-ack
		}
	})
}

// ---- C5: capture/restore vs stack depth ----

// BenchmarkStackCaptureDepth measures capturing, encoding, decoding and
// restoring an activation-record stack of the given depth, and reports the
// abstract state size.
func BenchmarkStackCaptureDepth(b *testing.B) {
	for _, depth := range []int{1, 8, 64, 256, 1024} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			c := codec.Default()
			st := benchState(depth, 4)
			data, err := c.EncodeState(st)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(data)), "statebytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := c.EncodeState(st)
				if err != nil {
					b.Fatal(err)
				}
				back, err := c.DecodeState(data)
				if err != nil {
					b.Fatal(err)
				}
				if back.Depth() != depth {
					b.Fatal("depth mismatch")
				}
			}
		})
	}
}

// ---- A1: codec ablation ----

// BenchmarkCodecs compares the hand-written portable codec against gob.
func BenchmarkCodecs(b *testing.B) {
	st := benchState(32, 4)
	for _, c := range []codec.Codec{codec.Portable{}, codec.Gob{}} {
		data, err := c.EncodeState(st)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name()+"-encode", func(b *testing.B) {
			b.ReportMetric(float64(len(data)), "bytes")
			for i := 0; i < b.N; i++ {
				if _, err := c.EncodeState(st); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.Name()+"-decode", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.DecodeState(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- A2: liveness-trimmed capture sets ----

// BenchmarkLivenessTrim runs the full mid-recursion capture under each
// capture mode and reports the divulged state size: liveness/spec modes
// carry less than capture-all.
func BenchmarkLivenessTrim(b *testing.B) {
	for _, mode := range []transform.CaptureMode{transform.CaptureAll, transform.CaptureLive, transform.CaptureSpec} {
		b.Run(mode.String(), func(b *testing.B) {
			app := benchMonitorApp(b, mode, true)
			defer app.Stop()
			var stateBytes int64
			app.Bus().Observe(func(e bus.Event) {
				if e.Kind == bus.EventDivulge {
					var n int64
					if _, err := fmt.Sscanf(e.Detail, "%d bytes", &n); err == nil {
						atomic.StoreInt64(&stateBytes, n)
					}
				}
			})
			d := benchDriver(b, app)
			if err := app.Launch("compute"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				old := fmt.Sprintf("compute%d", i)
				next := fmt.Sprintf("compute%d", i+1)
				if i == 0 {
					old = "compute"
				}
				d.request(3)
				time.Sleep(5 * time.Millisecond)
				go func() {
					time.Sleep(2 * time.Millisecond)
					d.temperature(60)
				}()
				if err := app.Move(old, next, "machineB"); err != nil {
					b.Fatal(err)
				}
				d.temperature(70)
				d.temperature(80)
				if got := d.response(); got != 60.0/3+70.0/3+80.0/3 {
					b.Fatalf("answer = %v", got)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(atomic.LoadInt64(&stateBytes)), "statebytes")
		})
	}
}

// ---- A3: queue preservation ----

// BenchmarkQueueMove measures the cq primitive: moving n queued messages to
// the replacement instance.
func BenchmarkQueueMove(b *testing.B) {
	for _, n := range []int{1, 64, 4096} {
		b.Run(fmt.Sprintf("msgs-%d", n), func(b *testing.B) {
			bb := bus.New()
			for _, spec := range []bus.InstanceSpec{
				{Name: "w", Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
				{Name: "a", Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}},
				{Name: "b", Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}},
			} {
				if err := bb.AddInstance(spec); err != nil {
					b.Fatal(err)
				}
			}
			if err := bb.AddBinding(bus.Endpoint{Instance: "w", Interface: "out"}, bus.Endpoint{Instance: "a", Interface: "in"}); err != nil {
				b.Fatal(err)
			}
			w, err := bb.Attach("w")
			if err != nil {
				b.Fatal(err)
			}
			payload := []byte("message")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < n; j++ {
					if err := w.Write("out", payload); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if err := bb.MoveQueue(bus.Endpoint{Instance: "a", Interface: "in"}, bus.Endpoint{Instance: "b", Interface: "in"}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if _, err := bb.DrainQueue(bus.Endpoint{Instance: "b", Interface: "in"}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// ---- substrate: bus throughput ----

// BenchmarkBusThroughput measures message delivery in-process and over the
// TCP attachment, quantifying the heterogeneous-hosts substitution.
func BenchmarkBusThroughput(b *testing.B) {
	payload := make([]byte, 64)
	b.Run("inproc", func(b *testing.B) {
		_, src, dst := benchBusPair(b)
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Write("out", payload); err != nil {
				b.Fatal(err)
			}
			if _, err := dst.Read("in"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		bb, _, _ := benchBusPair(b)
		// Fresh instances for the remote ports.
		for _, spec := range []bus.InstanceSpec{
			{Name: "rsrc", Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
			{Name: "rdst", Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}},
		} {
			if err := bb.AddInstance(spec); err != nil {
				b.Fatal(err)
			}
		}
		if err := bb.AddBinding(bus.Endpoint{Instance: "rsrc", Interface: "out"}, bus.Endpoint{Instance: "rdst", Interface: "in"}); err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := bus.NewServer(bb, l)
		defer srv.Close()
		src, err := bus.DialPort(srv.Addr().String(), "rsrc")
		if err != nil {
			b.Fatal(err)
		}
		defer src.Close()
		dst, err := bus.DialPort(srv.Addr().String(), "rdst")
		if err != nil {
			b.Fatal(err)
		}
		defer dst.Close()
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Write("out", payload); err != nil {
				b.Fatal(err)
			}
			if _, err := dst.Read("in"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- the transformation itself ----

// BenchmarkPrepare measures the whole Prepare pipeline (parse, check,
// graphs, flatten, hoist, liveness, weave, reload) on the compute module.
func BenchmarkPrepare(b *testing.B) {
	src := benchComputeSource()
	for i := 0; i < b.N; i++ {
		if _, err := transform.PrepareSource("compute.go", src, transform.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMoveEndToEnd measures one complete Figure 5 replacement —
// signal, capture mid-recursion, state move, atomic rebind with queue
// transfer, clone launch, old delete — under a live request.
func BenchmarkMoveEndToEnd(b *testing.B) {
	app := benchMonitorApp(b, transform.CaptureSpec, true)
	defer app.Stop()
	d := benchDriver(b, app)
	if err := app.Launch("compute"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := fmt.Sprintf("compute%d", i)
		next := fmt.Sprintf("compute%d", i+1)
		if i == 0 {
			old = "compute"
		}
		b.StopTimer()
		d.request(2)
		time.Sleep(2 * time.Millisecond)
		go func() {
			time.Sleep(time.Millisecond)
			d.temperature(10)
		}()
		b.StartTimer()
		if err := app.Move(old, next, "machineB"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		d.temperature(30)
		if got := d.response(); got != 20 {
			b.Fatalf("answer = %v", got)
		}
		b.StartTimer()
	}
}
