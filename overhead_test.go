package reconf

// TestOverheadArtifact quantifies the Discussion-section cost claims with
// the telemetry subsystem in the loop and writes BENCH_overhead.json
// (scripts/check.sh sets RECONFIG_OVERHEAD_JSON; a plain `go test` run
// skips it):
//
//   - flag_test: the steady-state overhead claim ("merely that of
//     periodically testing the flags") measured with and without a
//     metrics registry attached — instrumentation must not change the
//     claim's order of magnitude.
//   - message_roundtrip: one bus write+read with telemetry enabled
//     (default) and disabled (WithTelemetry(nil)), plus the allocation
//     delta per message, which must be zero.
//   - capture_amortization: the pay-only-on-reconfigure claim — the
//     one-time stack capture + restore cost of a real Replace, expressed
//     as the number of steady-state messages it equals.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bus"
	"repro/internal/mh"
	"repro/internal/reconfig"
	"repro/internal/telemetry"
)

// benchNs times fn via the testing benchmark driver, keeping sub-ns
// precision (NsPerOp truncates to whole nanoseconds).
func benchNs(fn func()) float64 {
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// overheadFlagRuntime builds a lone attached runtime for flag benchmarks.
func overheadFlagRuntime(t *testing.T, opts ...mh.Option) *mh.Runtime {
	t.Helper()
	bb := bus.New()
	if err := bb.AddInstance(bus.InstanceSpec{Name: "m"}); err != nil {
		t.Fatal(err)
	}
	port, err := bb.Attach("m")
	if err != nil {
		t.Fatal(err)
	}
	rt := mh.New(port, opts...)
	rt.Init()
	return rt
}

// overheadBusPair builds a bound src->dst pair on a fresh bus.
func overheadBusPair(t *testing.T, opts ...bus.BusOption) (bus.Port, bus.Port) {
	t.Helper()
	bb := bus.New(opts...)
	for _, spec := range []bus.InstanceSpec{
		{Name: "src", Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
		{Name: "dst", Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}},
	} {
		if err := bb.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := bb.AddBinding(bus.Endpoint{Instance: "src", Interface: "out"}, bus.Endpoint{Instance: "dst", Interface: "in"}); err != nil {
		t.Fatal(err)
	}
	src, err := bb.Attach("src")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := bb.Attach("dst")
	if err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestOverheadArtifact(t *testing.T) {
	out := os.Getenv("RECONFIG_OVERHEAD_JSON")
	if out == "" {
		t.Skip("set RECONFIG_OVERHEAD_JSON=<path> to emit the overhead artifact")
	}

	// Flag test, uninstrumented vs instrumented.
	plain := overheadFlagRuntime(t)
	reg := telemetry.NewRegistry()
	instr := overheadFlagRuntime(t, mh.WithTelemetry(reg))
	var flagSink bool
	plainNs := benchNs(func() { flagSink = plain.Reconfig() })
	instrNs := benchNs(func() { flagSink = instr.Reconfig() })
	_ = flagSink

	// Message round trip, telemetry on (default) vs off.
	payload := make([]byte, 64)
	roundtrip := func(src, dst bus.Port) func() {
		return func() {
			if err := src.Write("out", payload); err != nil {
				t.Fatal(err)
			}
			if _, err := dst.Read("in"); err != nil {
				t.Fatal(err)
			}
		}
	}
	onSrc, onDst := overheadBusPair(t)
	offSrc, offDst := overheadBusPair(t, bus.WithTelemetry(nil))
	onNs := benchNs(roundtrip(onSrc, onDst))
	offNs := benchNs(roundtrip(offSrc, offDst))
	onAllocs := testing.AllocsPerRun(2000, roundtrip(onSrc, onDst))
	offAllocs := testing.AllocsPerRun(2000, roundtrip(offSrc, offDst))
	allocDelta := onAllocs - offAllocs
	if allocDelta > 0 {
		t.Errorf("telemetry adds %v allocs per message (on=%v off=%v)", allocDelta, onAllocs, offAllocs)
	}

	// Capture amortization: a real Replace of the interrupted monitor
	// module, its capture/restore cost read back from the app registry.
	app, _, feed := startInterrupted(t)
	defer app.Stop()
	feed()
	if _, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{NewName: "compute2"}); err != nil {
		t.Fatal(err)
	}
	snap := app.Telemetry().Snapshot()
	capNs := snap.Histograms["mh.compute.capture_ns"].SumNs
	resNs := snap.Histograms["mh.compute2.restore_ns"].SumNs
	if capNs <= 0 || resNs <= 0 {
		t.Fatalf("replace recorded no capture/restore cost: capture=%d restore=%d", capNs, resNs)
	}

	report := map[string]any{
		"benchmark": "telemetry_overhead",
		"flag_test": map[string]float64{
			"uninstrumented_ns_op": plainNs,
			"instrumented_ns_op":   instrNs,
			"overhead_ns_op":       instrNs - plainNs,
		},
		"message_roundtrip": map[string]float64{
			"telemetry_off_ns_op":      offNs,
			"telemetry_on_ns_op":       onNs,
			"overhead_ns_op":           onNs - offNs,
			"telemetry_allocs_per_msg": allocDelta,
		},
		"capture_amortization": map[string]float64{
			"capture_ns":           float64(capNs),
			"restore_ns":           float64(resNs),
			"message_ns_op":        onNs,
			"messages_to_amortize": (float64(capNs) + float64(resNs)) / onNs,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
