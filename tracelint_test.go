package reconf

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestTraceStampingStaysInBusLayer pins the division of labour the trace
// subsystem copies from the paper's transformation: the bus/transport layer
// does the causal bookkeeping, everything above carries contexts opaquely.
// Only internal/bus and the trace package itself may mint or extend trace
// contexts; if this fails, a higher layer started inventing trace IDs and
// causal chains can no longer be trusted.
func TestTraceStampingStaysInBusLayer(t *testing.T) {
	mint := regexp.MustCompile(`\.(MintTrace|ChildSpan|Stamp)\(`)
	allowed := func(path string) bool {
		return strings.HasPrefix(path, "internal/bus/") ||
			strings.HasPrefix(path, "internal/telemetry/trace/")
	}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") || allowed(path) {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if mint.MatchString(line) {
				t.Errorf("%s:%d: mints a trace context outside the bus layer: %s",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
