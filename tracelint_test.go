package reconf

import (
	"testing"

	"repro/internal/archlint"
)

// TestTraceStampingStaysInBusLayer pins the division of labour the trace
// subsystem copies from the paper's transformation: the bus/transport layer
// does the causal bookkeeping, everything above carries contexts opaquely.
// Only internal/bus and the trace package itself may mint or extend trace
// contexts; if this fails, a higher layer started inventing trace IDs and
// causal chains can no longer be trusted.
//
// The check itself is archlint's AL002 pass, which resolves the minting
// methods through go/types — so a comment or string that merely mentions
// MintTrace no longer trips it, and a renamed import no longer evades it.
func TestTraceStampingStaysInBusLayer(t *testing.T) {
	report, err := archlint.Run(archlint.Config{Dir: "."})
	if err != nil {
		t.Fatalf("archlint: %v", err)
	}
	for _, d := range report.ByCode(archlint.CodeTraceMint) {
		t.Errorf("%s", d)
	}
}
