package reconf

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

func TestControlProtocol(t *testing.T) {
	app := loadMonitor(t, 0)
	d := newDriver(t, app)
	if err := app.Launch("compute"); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := app.ServeControl(l)
	defer srv.Close()
	if srv.Addr() == nil {
		t.Fatal("no address")
	}

	c, err := DialControl(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	topo, err := c.Topology()
	if err != nil || !strings.Contains(topo, "instance compute (module compute)") {
		t.Errorf("topology = %q, %v", topo, err)
	}
	insts, err := c.Instances()
	if err != nil || len(insts) != 3 {
		t.Errorf("instances = %v, %v", insts, err)
	}

	// Remote move while the module is mid-recursion.
	d.request(2)
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(30 * time.Millisecond)
		d.temperature(10)
	}()
	tx, err := c.Move("compute", "compute2", "machineB")
	if err != nil {
		t.Fatalf("remote move: %v", err)
	}
	if tx == nil || !tx.Committed || tx.RolledBack || len(tx.Rollback) != 0 {
		t.Errorf("remote move tx report = %+v, want committed with empty rollback", tx)
	}
	if tx != nil && !strings.Contains(tx.Format(), "committed") {
		t.Errorf("tx.Format() = %q, want committed line", tx.Format())
	}
	if tx == nil || tx.TxID == "" {
		t.Fatalf("remote move tx report carries no TxID: %+v", tx)
	}
	if !strings.Contains(tx.Format(), "transaction "+tx.TxID) {
		t.Errorf("tx.Format() missing transaction header:\n%s", tx.Format())
	}

	// The transaction ID resolves to a span timeline over the control plane.
	timeline, err := c.TraceTx(tx.TxID)
	if err != nil {
		t.Fatalf("remote trace %s: %v", tx.TxID, err)
	}
	joined := strings.Join(timeline, "\n")
	for _, want := range []string{tx.TxID, "committed", "quiesce_wait", "state_move", "rebind", "restore_wait", "steps:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("timeline missing %q:\n%s", want, joined)
		}
	}
	if _, err := c.TraceTx("tx-9999"); err == nil {
		t.Error("trace of unknown txid accepted")
	}
	d.temperature(30)
	if got := d.response(); got != 20 {
		t.Errorf("moved computation = %g", got)
	}

	trace, err := c.Trace()
	if err != nil || len(trace) == 0 {
		t.Errorf("trace = %v, %v", trace, err)
	}
	if FormatTrace(trace) == "(no reconfigurations yet)" {
		t.Error("trace formatting")
	}
	if FormatTrace(nil) != "(no reconfigurations yet)" {
		t.Error("empty trace formatting")
	}
	// Stats is a JSON document with bus counters, telemetry, and txids.
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var snap struct {
		Bus struct {
			Delivered int64 `json:"delivered"`
		} `json:"bus"`
		Telemetry struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"telemetry"`
		Transactions []string `json:"transactions"`
	}
	if err := json.Unmarshal([]byte(stats), &snap); err != nil {
		t.Fatalf("stats is not JSON: %v\n%s", err, stats)
	}
	if snap.Bus.Delivered == 0 {
		t.Errorf("stats bus.delivered = 0:\n%s", stats)
	}
	if len(snap.Telemetry.Counters) == 0 {
		t.Errorf("stats telemetry has no counters:\n%s", stats)
	}
	found := false
	for _, id := range snap.Transactions {
		if id == tx.TxID {
			found = true
		}
	}
	if !found {
		t.Errorf("stats transactions %v missing %s", snap.Transactions, tx.TxID)
	}

	// A dry-run plan lists the transactional step sequence.
	steps, err := c.Plan("compute2", "compute3", "machineA", "")
	if err != nil {
		t.Fatalf("remote plan: %v", err)
	}
	joined = strings.Join(steps, "\n")
	for _, want := range []string{"obj_cap", "signal_reconfig", "await_restored", "commit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("plan missing %q:\n%s", want, joined)
		}
	}
	// Planning must not have executed anything.
	if insts, _ := c.Instances(); len(insts) != 3 {
		t.Errorf("plan executed something: instances = %v", insts)
	}

	// Error paths.
	if _, err := c.Move("ghost", "g2", "m"); err == nil {
		t.Error("remote move of ghost accepted")
	}
	if _, err := c.Plan("ghost", "g2", "m", ""); err == nil {
		t.Error("remote plan of ghost accepted")
	}
	if err := c.Remove("ghost"); err == nil {
		t.Error("remote remove of ghost accepted")
	}
	if err := c.Replicate("compute2", "computeB", "machineC"); err != nil {
		t.Errorf("remote replicate: %v", err)
	}
	if err := c.Remove("computeB"); err != nil {
		t.Errorf("remote remove: %v", err)
	}
	if _, err := c.call(ctlRequest{Op: "frobnicate"}); err == nil {
		t.Error("unknown op accepted")
	}
}

// TestControlObservabilityOps exercises the windowed-telemetry ops over
// the control plane: watch renders the per-instance table, timeseries
// serves the rollup listing and one series, health returns a structured
// verdict, and events pages the structured log by cursor.
func TestControlObservabilityOps(t *testing.T) {
	app, d, _ := startInterrupted(t)
	d.temperature(60)
	finishComputation(t, d)

	// Roll two windows by hand rather than waiting out the wall clock.
	app.Timeseries().Roll()
	app.Timeseries().Roll()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := app.ServeControl(l)
	defer srv.Close()
	c, err := DialControl(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tbl, err := c.Watch(0)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	for _, want := range []string{"INSTANCE", "DELIVERED/S", "QDEPTH", "HEALTH", "display", "healthy"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("watch table missing %q:\n%s", want, tbl)
		}
	}
	listing, err := c.Timeseries("", 0)
	if err != nil {
		t.Fatalf("timeseries listing: %v", err)
	}
	var names struct {
		Metrics []string `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(listing), &names); err != nil {
		t.Fatalf("timeseries listing is not JSON: %v\n%s", err, listing)
	}
	metric := "bus.iface.display.temper.delivered"
	found := false
	for _, m := range names.Metrics {
		if m == metric {
			found = true
		}
	}
	if !found {
		t.Fatalf("timeseries listing lacks %s: %v", metric, names.Metrics)
	}
	doc, err := c.Timeseries(metric, 1)
	if err != nil {
		t.Fatalf("timeseries %s: %v", metric, err)
	}
	var series struct {
		Kind   string `json:"kind"`
		Points []struct {
			Value int64 `json:"value"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(doc), &series); err != nil {
		t.Fatalf("timeseries series is not JSON: %v\n%s", err, doc)
	}
	if series.Kind != "counter" || len(series.Points) != 1 {
		t.Errorf("series = kind %s with %d points, want counter with 1 window", series.Kind, len(series.Points))
	}
	if _, err := c.Timeseries("no.such.metric", 0); err == nil {
		t.Error("timeseries of unknown metric accepted")
	}

	verdictDoc, err := c.Health("display", nil)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	var verdict struct {
		Instance string `json:"instance"`
		Level    string `json:"level"`
	}
	if err := json.Unmarshal([]byte(verdictDoc), &verdict); err != nil {
		t.Fatalf("health verdict is not JSON: %v\n%s", err, verdictDoc)
	}
	if verdict.Instance != "display" || verdict.Level == "" {
		t.Errorf("verdict = %+v, want instance display with a level", verdict)
	}
	if _, err := c.Health("ghost", nil); err == nil {
		t.Error("health of unknown instance accepted")
	}

	eventsDoc, err := c.Events(0)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	var events struct {
		Cursor uint64 `json:"cursor"`
		Events []struct {
			Source string `json:"source"`
			Kind   string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(eventsDoc), &events); err != nil {
		t.Fatalf("events is not JSON: %v\n%s", err, eventsDoc)
	}
	sawBus := false
	for _, e := range events.Events {
		if e.Source == "bus" && e.Kind == "add-instance" {
			sawBus = true
		}
	}
	if !sawBus {
		t.Errorf("events lack a bus add-instance record:\n%s", eventsDoc)
	}
	tailDoc, err := c.Events(events.Cursor)
	if err != nil {
		t.Fatalf("events since cursor: %v", err)
	}
	var tail struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(tailDoc), &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) != 0 {
		t.Errorf("events since cursor returned %d records, want 0", len(tail.Events))
	}
}

func TestDialControlFailure(t *testing.T) {
	if _, err := DialControl("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestControlServerCloseIdempotent(t *testing.T) {
	app := loadMonitor(t, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := app.ServeControl(l)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
