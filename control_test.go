package reconf

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

func TestControlProtocol(t *testing.T) {
	app := loadMonitor(t, 0)
	d := newDriver(t, app)
	if err := app.Launch("compute"); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := app.ServeControl(l)
	defer srv.Close()
	if srv.Addr() == nil {
		t.Fatal("no address")
	}

	c, err := DialControl(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	topo, err := c.Topology()
	if err != nil || !strings.Contains(topo, "instance compute (module compute)") {
		t.Errorf("topology = %q, %v", topo, err)
	}
	insts, err := c.Instances()
	if err != nil || len(insts) != 3 {
		t.Errorf("instances = %v, %v", insts, err)
	}

	// Remote move while the module is mid-recursion.
	d.request(2)
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(30 * time.Millisecond)
		d.temperature(10)
	}()
	tx, err := c.Move("compute", "compute2", "machineB")
	if err != nil {
		t.Fatalf("remote move: %v", err)
	}
	if tx == nil || !tx.Committed || tx.RolledBack || len(tx.Rollback) != 0 {
		t.Errorf("remote move tx report = %+v, want committed with empty rollback", tx)
	}
	if tx != nil && !strings.Contains(tx.Format(), "committed") {
		t.Errorf("tx.Format() = %q, want committed line", tx.Format())
	}
	if tx == nil || tx.TxID == "" {
		t.Fatalf("remote move tx report carries no TxID: %+v", tx)
	}
	if !strings.Contains(tx.Format(), "transaction "+tx.TxID) {
		t.Errorf("tx.Format() missing transaction header:\n%s", tx.Format())
	}

	// The transaction ID resolves to a span timeline over the control plane.
	timeline, err := c.TraceTx(tx.TxID)
	if err != nil {
		t.Fatalf("remote trace %s: %v", tx.TxID, err)
	}
	joined := strings.Join(timeline, "\n")
	for _, want := range []string{tx.TxID, "committed", "quiesce_wait", "state_move", "rebind", "restore_wait", "steps:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("timeline missing %q:\n%s", want, joined)
		}
	}
	if _, err := c.TraceTx("tx-9999"); err == nil {
		t.Error("trace of unknown txid accepted")
	}
	d.temperature(30)
	if got := d.response(); got != 20 {
		t.Errorf("moved computation = %g", got)
	}

	trace, err := c.Trace()
	if err != nil || len(trace) == 0 {
		t.Errorf("trace = %v, %v", trace, err)
	}
	if FormatTrace(trace) == "(no reconfigurations yet)" {
		t.Error("trace formatting")
	}
	if FormatTrace(nil) != "(no reconfigurations yet)" {
		t.Error("empty trace formatting")
	}
	// Stats is a JSON document with bus counters, telemetry, and txids.
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var snap struct {
		Bus struct {
			Delivered int64 `json:"delivered"`
		} `json:"bus"`
		Telemetry struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"telemetry"`
		Transactions []string `json:"transactions"`
	}
	if err := json.Unmarshal([]byte(stats), &snap); err != nil {
		t.Fatalf("stats is not JSON: %v\n%s", err, stats)
	}
	if snap.Bus.Delivered == 0 {
		t.Errorf("stats bus.delivered = 0:\n%s", stats)
	}
	if len(snap.Telemetry.Counters) == 0 {
		t.Errorf("stats telemetry has no counters:\n%s", stats)
	}
	found := false
	for _, id := range snap.Transactions {
		if id == tx.TxID {
			found = true
		}
	}
	if !found {
		t.Errorf("stats transactions %v missing %s", snap.Transactions, tx.TxID)
	}

	// A dry-run plan lists the transactional step sequence.
	steps, err := c.Plan("compute2", "compute3", "machineA", "")
	if err != nil {
		t.Fatalf("remote plan: %v", err)
	}
	joined = strings.Join(steps, "\n")
	for _, want := range []string{"obj_cap", "signal_reconfig", "await_restored", "commit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("plan missing %q:\n%s", want, joined)
		}
	}
	// Planning must not have executed anything.
	if insts, _ := c.Instances(); len(insts) != 3 {
		t.Errorf("plan executed something: instances = %v", insts)
	}

	// Error paths.
	if _, err := c.Move("ghost", "g2", "m"); err == nil {
		t.Error("remote move of ghost accepted")
	}
	if _, err := c.Plan("ghost", "g2", "m", ""); err == nil {
		t.Error("remote plan of ghost accepted")
	}
	if err := c.Remove("ghost"); err == nil {
		t.Error("remote remove of ghost accepted")
	}
	if err := c.Replicate("compute2", "computeB", "machineC"); err != nil {
		t.Errorf("remote replicate: %v", err)
	}
	if err := c.Remove("computeB"); err != nil {
		t.Errorf("remote remove: %v", err)
	}
	if _, err := c.call(ctlRequest{Op: "frobnicate"}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestDialControlFailure(t *testing.T) {
	if _, err := DialControl("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestControlServerCloseIdempotent(t *testing.T) {
	app := loadMonitor(t, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := app.ServeControl(l)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
