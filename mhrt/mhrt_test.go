package mhrt

import (
	"net"
	"testing"
	"time"

	"repro/internal/bus"
)

func startBus(t *testing.T) (*bus.Bus, *bus.Server) {
	t.Helper()
	b := bus.New()
	if err := b.AddInstance(bus.InstanceSpec{
		Name: "w", Machine: "m1",
		Interfaces: []bus.IfaceSpec{{Name: "io", Dir: bus.InOut}},
	}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := bus.NewServer(b, l)
	t.Cleanup(func() { srv.Close() })
	return b, srv
}

func TestFromEnv(t *testing.T) {
	_, srv := startBus(t)

	t.Setenv(EnvBusAddr, "")
	t.Setenv(EnvInstance, "")
	if _, err := FromEnv(); err == nil {
		t.Error("empty env accepted")
	}

	t.Setenv(EnvBusAddr, srv.Addr().String())
	t.Setenv(EnvInstance, "w")
	t.Setenv(EnvSleepUnit, "nope")
	if _, err := FromEnv(); err == nil {
		t.Error("bad sleep unit accepted")
	}

	t.Setenv(EnvSleepUnit, "2")
	rt, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Status() != bus.StatusAdd {
		t.Errorf("status = %s", rt.Status())
	}

	// Instance is now attached; a second attach fails.
	t.Setenv(EnvInstance, "w")
	if _, err := FromEnv(); err == nil {
		t.Error("double attach accepted")
	}
}

func TestAttach(t *testing.T) {
	_, srv := startBus(t)
	rt, err := Attach(srv.Addr().String(), "w")
	if err != nil {
		t.Fatal(err)
	}
	rt.Init()
	if rt.Err() != nil {
		t.Fatal(rt.Err())
	}
	if _, err := Attach("127.0.0.1:1", "w"); err == nil {
		t.Error("dead bus accepted")
	}
}

func TestMainCleanExitOnDelete(t *testing.T) {
	b, srv := startBus(t)
	rt, err := Attach(srv.Addr().String(), "w")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		Main(rt, func() {
			rt.Init()
			for {
				rt.Sleep(1)
			}
		})
	}()
	time.Sleep(50 * time.Millisecond)
	if err := b.DeleteInstance("w"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Main did not return after instance deletion")
	}
}
