// Package mhrt is the public runtime that compiled, standalone module
// binaries link against. cmd/mhgen -standalone emits a bootstrap that binds
// the module's mh identifier to a runtime attached over TCP:
//
//	var mh = mhrt.MustFromEnv()
//
//	func main() { mhrt.Main(mh, mhModuleMain) }
//
// The process connects to the software bus named by MH_BUS_ADDR as the
// instance named by MH_INSTANCE, exactly like a POLYLITH module process
// joining the bus on its host.
package mhrt

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/bus"
	"repro/internal/mh"
	"repro/internal/telemetry"
)

// MH is the participation runtime type (the mh_* primitive set).
type MH = mh.Runtime

// Env variable names consumed by FromEnv.
const (
	EnvBusAddr   = "MH_BUS_ADDR"
	EnvInstance  = "MH_INSTANCE"
	EnvSleepUnit = "MH_SLEEP_UNIT_MS"
	// EnvTelemetry, when set to a non-empty value other than "0", gives the
	// runtime a metrics registry (flag-check counts, capture/restore
	// timings); Main dumps its JSON snapshot to stderr at module exit.
	EnvTelemetry = "MH_TELEMETRY"
)

// FromEnv attaches to the bus named by the environment and returns the
// module's runtime.
func FromEnv() (*MH, error) {
	addr := os.Getenv(EnvBusAddr)
	instance := os.Getenv(EnvInstance)
	if addr == "" || instance == "" {
		return nil, fmt.Errorf("mhrt: %s and %s must be set", EnvBusAddr, EnvInstance)
	}
	// Validate the whole environment before attaching, so a configuration
	// error does not claim the instance's one attachment slot.
	opts := []mh.Option{}
	if ms := os.Getenv(EnvSleepUnit); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("mhrt: bad %s=%q", EnvSleepUnit, ms)
		}
		opts = append(opts, mh.WithSleepUnit(time.Duration(n)*time.Millisecond))
	}
	if tv := os.Getenv(EnvTelemetry); tv != "" && tv != "0" {
		opts = append(opts, mh.WithTelemetry(telemetry.NewRegistry()))
	}
	port, err := bus.DialPort(addr, instance)
	if err != nil {
		return nil, err
	}
	return mh.New(port, opts...), nil
}

// MustFromEnv is FromEnv, exiting the process on failure.
func MustFromEnv() *MH {
	rt, err := FromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return rt
}

// Attach connects to a bus server directly (for hosts that do not use the
// environment convention).
func Attach(addr, instance string, opts ...mh.Option) (*MH, error) {
	port, err := bus.DialPort(addr, instance)
	if err != nil {
		return nil, err
	}
	return mh.New(port, opts...), nil
}

// Main runs a module body as the process's main loop: the paper's SIGHUP is
// forwarded into the runtime's reconfiguration flag, a Termination unwind
// (state divulged, or instance deleted) exits cleanly, and any recorded
// runtime error exits nonzero.
func Main(rt *MH, body func()) {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP)
	defer signal.Stop(sigs)
	go func() { //archlint:spawn SIGHUP forwarder; exits when signal.Stop closes sigs
		for range sigs {
			rt.RequestReconfig()
		}
	}()
	term := mh.Run(body)
	dumpTelemetry(rt)
	if err := rt.Err(); err != nil && !errors.Is(err, bus.ErrStopped) {
		fmt.Fprintln(os.Stderr, "module error:", err)
		os.Exit(1)
	}
	if term != nil {
		fmt.Fprintln(os.Stderr, "module terminated:", term.Reason)
	}
}

// dumpTelemetry writes the runtime's metrics snapshot to stderr as one JSON
// line, when telemetry is enabled (MH_TELEMETRY). The per-process dump is
// how a standalone module binary reports its flag-check count and state
// timings back to whoever launched it.
func dumpTelemetry(rt *MH) {
	reg := rt.Telemetry()
	if reg == nil {
		return
	}
	if data, err := json.Marshal(reg.Snapshot()); err == nil {
		fmt.Fprintln(os.Stderr, "mh telemetry:", string(data))
	}
}
