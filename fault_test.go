package reconf

// Fault-injection matrix for the transactional replacement script: kill a
// Replace at every failpoint and assert the rollback converges — the
// application is left answering traffic through the original module with
// instances, bindings, and queued messages equal to the pre-transaction
// snapshot. The paper's claim is that reconfiguration is transparent to the
// application; these tests extend that to *failed* reconfigurations.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/faultinject"
	"repro/internal/reconfig"
)

// cfgSnapshot captures everything a rollback must restore: the instance set
// (with module, machine, and status), the binding set, and the
// queued-message count per receiving interface.
type cfgSnapshot struct {
	Instances map[string]string
	Bindings  []string
	Pending   map[string]int
}

func snapshotConfig(t *testing.T, app *App) cfgSnapshot {
	t.Helper()
	s := cfgSnapshot{Instances: map[string]string{}, Pending: map[string]int{}}
	for _, name := range app.Bus().Instances() {
		info, err := app.Bus().Info(name)
		if err != nil {
			t.Fatal(err)
		}
		s.Instances[name] = fmt.Sprintf("%s/%s/%s", info.Module, info.Machine, info.Status)
		for ifc, n := range info.Pending {
			s.Pending[name+"."+ifc] = n
		}
	}
	for _, b := range app.Bus().Bindings() {
		x, y := b.A.String(), b.B.String()
		if y < x {
			x, y = y, x
		}
		s.Bindings = append(s.Bindings, x+"|"+y)
	}
	sort.Strings(s.Bindings)
	return s
}

// startInterrupted loads the monitor, launches compute, and interrupts it
// mid-recursion (a three-reading request with no temperatures yet), so real
// partial state is in flight when a reconfiguration begins. The returned
// feed sends the first temperature shortly after the caller starts the
// script, releasing the module to reach its next reconfiguration point.
func startInterrupted(t *testing.T) (*App, *driver, func()) {
	t.Helper()
	app := loadMonitor(t, 0)
	t.Cleanup(app.Stop)
	d := newDriver(t, app)
	if err := app.Launch("compute"); err != nil {
		t.Fatal(err)
	}
	d.request(3)
	time.Sleep(50 * time.Millisecond)
	feed := func() {
		go func() {
			time.Sleep(30 * time.Millisecond)
			d.temperature(60)
		}()
	}
	return app, d, feed
}

// finishComputation drives the two remaining readings and checks the full
// three-reading average: the first temperature (60) must have survived the
// reconfiguration — whether carried in divulged state or returned to the
// queue — or the sum comes out wrong.
func finishComputation(t *testing.T, d *driver) {
	t.Helper()
	d.temperature(70)
	d.temperature(80)
	want := 60.0/3 + 70.0/3 + 80.0/3
	if got := d.response(); got != want {
		t.Errorf("answer after reconfiguration = %g, want %g", got, want)
	}
}

// TestReplaceRollbackFaultMatrix kills Replace at every pre-commit failpoint
// and asserts full convergence back to the pre-transaction configuration.
func TestReplaceRollbackFaultMatrix(t *testing.T) {
	cases := []struct {
		site      string
		action    faultinject.Action
		stateMove time.Duration // 0 = config default
	}{
		{"bus.addinstance", faultinject.Error, 0},
		{"bus.signal", faultinject.Error, 0},
		// A dropped signal is a lost SIGHUP: the caller saw success, the
		// module never heard. The transaction aborts on the state-move
		// timeout and retracts the (never-delivered) request.
		{"bus.signal", faultinject.Drop, 1200 * time.Millisecond},
		{"bus.awaitdivulged", faultinject.Error, 0},
		{"bus.installstate", faultinject.Error, 0},
		{"bus.rebind", faultinject.Error, 0},
		{"bus.attach", faultinject.Error, 0},
		{"reconfig.launch", faultinject.Error, 0},
		{"bus.awaitrestored", faultinject.Error, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_%s", tc.site, tc.action), func(t *testing.T) {
			t.Parallel()
			app, d, feed := startInterrupted(t)
			pre := snapshotConfig(t, app)

			faults := faultinject.New()
			faults.Enable(tc.site, faultinject.Point{Action: tc.action, Count: 1})
			app.Bus().SetFaults(faults)

			feed()
			res, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{
				NewName:  "compute2",
				Timeouts: reconfig.Timeouts{StateMove: tc.stateMove},
			})
			if err == nil {
				t.Fatalf("replace succeeded despite fault at %s", tc.site)
			}
			if !strings.Contains(err.Error(), "rolled back") {
				t.Errorf("error %v does not report the rollback", err)
			}
			if tc.action == faultinject.Error && !errors.Is(err, faultinject.ErrInjected) {
				t.Errorf("error %v does not wrap the injected fault", err)
			}
			if faults.Fired(tc.site) == 0 {
				t.Fatalf("failpoint %s never fired", tc.site)
			}
			if res == nil || !res.RolledBack || res.Committed {
				t.Fatalf("result = %+v, want rolled back and uncommitted", res)
			}
			if len(res.Steps) == 0 {
				t.Error("no step trace on the failed transaction")
			}
			for _, step := range res.Rollback {
				if step.Err != "" {
					t.Errorf("compensation %s failed: %s", step.Action, step.Err)
				}
			}

			// The configuration converges back to the pre-transaction
			// snapshot (the released module may still be consuming the
			// in-flight temperature, so poll briefly).
			deadline := time.Now().Add(5 * time.Second)
			for {
				got := snapshotConfig(t, app)
				if reflect.DeepEqual(got, pre) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("configuration did not converge:\n got %+v\nwant %+v", got, pre)
				}
				time.Sleep(10 * time.Millisecond)
			}

			// And the original module finishes the interrupted computation.
			finishComputation(t, d)
		})
	}
}

// TestReplaceFaultFreeEmptyRollback is the acceptance criterion's other
// half: a successful replacement commits with an empty rollback report.
func TestReplaceFaultFreeEmptyRollback(t *testing.T) {
	app, d, feed := startInterrupted(t)
	feed()
	res, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{NewName: "compute2"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.RolledBack || len(res.Rollback) != 0 || res.Err != nil {
		t.Fatalf("result = %+v, want committed with empty rollback", res)
	}
	steps := strings.Join(res.Steps, "\n")
	for _, want := range []string{"await_restored compute2", "chg_obj compute del"} {
		if !strings.Contains(steps, want) {
			t.Errorf("step trace missing %q:\n%s", want, steps)
		}
	}
	topo := app.Topology()
	if !strings.Contains(topo, "instance compute2 (module compute)") {
		t.Errorf("replacement missing from topology:\n%s", topo)
	}
	if strings.Contains(topo, "instance compute (") {
		t.Errorf("old instance survived a committed replace:\n%s", topo)
	}
	finishComputation(t, d)
}

// TestReplacePostCommitFaultCompletesForward arms a failpoint past the
// commit point: the replacement must NOT roll back — the clone is already
// authoritative — and the cleanup failure is reported for the operator.
func TestReplacePostCommitFaultCompletesForward(t *testing.T) {
	app, d, feed := startInterrupted(t)
	faults := faultinject.New()
	faults.Enable("bus.deleteinstance", faultinject.Point{Action: faultinject.Error, Count: 1})
	app.Bus().SetFaults(faults)

	feed()
	res, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{NewName: "compute2"})
	if err == nil {
		t.Fatal("cleanup failure not reported")
	}
	if !strings.Contains(err.Error(), "cleanup failed") {
		t.Errorf("error %v does not identify the failure as post-commit cleanup", err)
	}
	if !res.Committed || res.RolledBack {
		t.Fatalf("result = %+v, want committed despite cleanup failure", res)
	}
	// Traffic flows through the replacement.
	finishComputation(t, d)
}

// TestConcurrentReplaceFailsFast hammers Replace from two goroutines (run
// under -race): exactly one wins; the loser fails fast with ErrReconfigBusy
// (or ErrNoInstance, if it arrived after the winner renamed the target).
func TestConcurrentReplaceFailsFast(t *testing.T) {
	app, d, feed := startInterrupted(t)
	feed()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = app.ReplaceTx("compute", reconfig.ReplaceOptions{
				NewName: fmt.Sprintf("compute%d", i+2),
			})
		}(i)
	}
	wg.Wait()

	var winners int
	for _, err := range errs {
		if err == nil {
			winners++
			continue
		}
		if !errors.Is(err, reconfig.ErrReconfigBusy) && !errors.Is(err, bus.ErrNoInstance) {
			t.Errorf("loser error = %v, want ErrReconfigBusy or ErrNoInstance", err)
		}
	}
	if winners != 1 {
		t.Fatalf("%d concurrent replaces succeeded, want exactly 1 (errors: %v)", winners, errs)
	}
	finishComputation(t, d)
}

// TestRollbackLatencyArtifact measures replace latency with and without an
// injected fault and writes BENCH_reconfig_latency.json. Gated on the
// RECONFIG_BENCH_JSON environment variable (scripts/check.sh sets it); a
// plain `go test` run skips it.
func TestRollbackLatencyArtifact(t *testing.T) {
	out := os.Getenv("RECONFIG_BENCH_JSON")
	if out == "" {
		t.Skip("set RECONFIG_BENCH_JSON=<path> to emit the latency artifact")
	}
	const samples = 20
	measure := func(site string) []float64 {
		ms := make([]float64, 0, samples)
		for i := 0; i < samples; i++ {
			app, _, feed := startInterrupted(t)
			if site != "" {
				f := faultinject.New()
				f.Enable(site, faultinject.Point{Action: faultinject.Error, Count: 1})
				app.Bus().SetFaults(f)
			}
			feed()
			start := time.Now()
			_, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{NewName: "compute2"})
			ms = append(ms, float64(time.Since(start).Microseconds())/1000.0)
			if site == "" && err != nil {
				t.Fatal(err)
			}
			if site != "" && err == nil {
				t.Fatalf("fault at %s did not abort", site)
			}
			app.Stop()
		}
		sort.Float64s(ms)
		return ms
	}
	// quantile reads the ceil-rank order statistic from a sorted sample.
	quantile := func(ms []float64, q float64) float64 {
		idx := int(math.Ceil(q*float64(len(ms)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ms) {
			idx = len(ms) - 1
		}
		return ms[idx]
	}
	stats := func(ms []float64) map[string]float64 {
		var sum float64
		for _, v := range ms {
			sum += v
		}
		return map[string]float64{
			"min_ms":  ms[0],
			"p50_ms":  quantile(ms, 0.50),
			"p95_ms":  quantile(ms, 0.95),
			"p99_ms":  quantile(ms, 0.99),
			"max_ms":  ms[len(ms)-1],
			"mean_ms": sum / float64(len(ms)),
		}
	}
	report := map[string]any{
		"benchmark":       "replace_latency",
		"samples":         samples,
		"fault_free":      stats(measure("")),
		"rollback_rebind": stats(measure("bus.rebind")),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestRollbackQueueGaugeMatchesDrainable pins the queue-depth telemetry
// against the ground truth after a fault-injected rollback. The gauge reads
// the ring's lock-free occupancy arithmetic (produced minus consumed plus
// the carried front list); QueuedMessages walks the actual drainable
// contents, skipping tombstoned slots. A rollback is the hard case: the
// backlog was fenced, moved to the clone, and moved back by compensation,
// so any slot the fence tombstoned along the way must not be counted.
func TestRollbackQueueGaugeMatchesDrainable(t *testing.T) {
	app, d, feed := startInterrupted(t)

	faults := faultinject.New()
	faults.Enable("bus.rebind", faultinject.Point{Action: faultinject.Error, Count: 1})
	app.Bus().SetFaults(faults)

	feed()
	res, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{NewName: "compute2"})
	if err == nil || res == nil || !res.RolledBack {
		t.Fatalf("replace = %+v, %v; want fault-injected rollback", res, err)
	}

	// The released module keeps consuming, so gauge and walk race benignly;
	// poll until they agree for every receiving interface at once.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mismatch := ""
		snap := app.Telemetry().Snapshot()
		for _, name := range app.Bus().Instances() {
			qms, err := app.Bus().QueuedMessages(name)
			if err != nil {
				t.Fatal(err)
			}
			drainable := map[string]int64{}
			for _, qm := range qms {
				drainable[qm.Endpoint.Interface]++
			}
			info, err := app.Bus().Info(name)
			if err != nil {
				t.Fatal(err)
			}
			for ifc := range info.Pending {
				gauge := snap.Gauges["bus.iface."+name+"."+ifc+".queue_depth"]
				if gauge != drainable[ifc] {
					mismatch = fmt.Sprintf("%s.%s: gauge %d, drainable %d", name, ifc, gauge, drainable[ifc])
				}
			}
		}
		if mismatch == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue_depth gauge diverged from drainable contents: %s", mismatch)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// And the rollback left a live, correct configuration behind.
	finishComputation(t, d)
}
