package reconf

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// This file is the HTTP observability surface of an App — the pull
// counterpart of the reconfigctl push protocol (control.go). Four endpoints:
//
//	/metrics     the full telemetry registry plus the bus activity counters,
//	             in the Prometheus text exposition format
//	/healthz     liveness/readiness: 200 "ok", or 503 "reconfiguring" while
//	/readyz      a transactional reconfiguration is in flight (in this
//	             single-process reproduction the two collapse to one signal)
//	/traces      the flight recorder's retained delivery spans, as JSON
//	/trace/{id}  one causal chain ("tx-0001" renders a transaction's span
//	             timeline; a numeric ID returns that message trace's spans)
//	/replicas    every supervised replica group: live members with heartbeat
//	             and backlog, corpses awaiting rebuild, supervision counters
//	/record      the record ring's status; ?enable=on|off toggles recording
//	/replay/{id} replay the recorded window against instance id's module
//	             in-process and report whether the outputs reproduce
type ObsServer struct {
	srv *http.Server
	l   net.Listener
}

// ServeObs starts serving the observability endpoints on l. Close the
// returned server to stop.
func (a *App) ServeObs(l net.Listener) *ObsServer {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealth)
	mux.HandleFunc("/readyz", a.handleHealth)
	mux.HandleFunc("/traces", a.handleTraces)
	mux.HandleFunc("/trace/", a.handleTrace)
	mux.HandleFunc("/replicas", a.handleReplicas)
	mux.HandleFunc("/record", a.handleRecord)
	mux.HandleFunc("/replay/", a.handleReplay)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(l) }() //archlint:spawn HTTP server; exits when srv.Close is called
	return &ObsServer{srv: srv, l: l}
}

// Addr returns the listener address.
func (o *ObsServer) Addr() net.Addr { return o.l.Addr() }

// Close stops the server and closes the listener.
func (o *ObsServer) Close() error { return o.srv.Close() }

func (a *App) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := a.bus.Stats()
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"bus_delivered_total", st.Delivered},
		{"bus_dropped_total", st.Dropped},
		{"bus_rebinds_total", st.Rebinds},
		{"bus_signals_total", st.Signals},
		{"bus_moves_total", st.Moves},
	} {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.v)
	}
	fmt.Fprintf(w, "# TYPE bus_snapshot_version gauge\nbus_snapshot_version %d\n", st.SnapshotVersion)
	if rec := a.FlightRecorder(); rec != nil {
		fmt.Fprintf(w, "# TYPE trace_recorder_spans gauge\ntrace_recorder_spans %d\n", rec.Len())
		fmt.Fprintf(w, "# TYPE trace_recorder_recorded_total counter\ntrace_recorder_recorded_total %d\n", rec.Recorded())
		fmt.Fprintf(w, "# TYPE trace_recorder_memory_bound_bytes gauge\ntrace_recorder_memory_bound_bytes %d\n", rec.MemoryBound())
	}
	telemetry.WritePrometheus(w, a.Telemetry())
}

func (a *App) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if a.prims.ReconfigActive() {
		http.Error(w, "reconfiguring", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (a *App) handleTraces(w http.ResponseWriter, _ *http.Request) {
	spans := a.FlightRecorder().Snapshot()
	if spans == nil {
		spans = []*trace.SpanRecord{}
	}
	writeJSON(w, spans)
}

func (a *App) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/trace/")
	if strings.HasPrefix(id, "tx-") {
		lines, err := a.TraceTx(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"id": id, "timeline": lines})
		return
	}
	// Quiesce annotations render message trace IDs as 0x-prefixed hex so
	// they can't be misread as the decimal form the JSON spans use; accept
	// both, plus bare hex as a convenience for IDs with letters in them.
	var n uint64
	var err error
	if rest, isHex := strings.CutPrefix(id, "0x"); isHex {
		n, err = strconv.ParseUint(rest, 16, 64)
	} else {
		n, err = strconv.ParseUint(id, 10, 64)
		if err != nil {
			n, err = strconv.ParseUint(id, 16, 64)
		}
	}
	if err != nil {
		http.Error(w, "bad trace id: "+id, http.StatusBadRequest)
		return
	}
	spans := a.FlightRecorder().ByTrace(n)
	if len(spans) == 0 {
		http.Error(w, fmt.Sprintf("no retained spans for trace %d", n), http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"trace_id": n, "spans": spans})
}

func (a *App) handleReplicas(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, a.ReplicaSets())
}

func (a *App) handleRecord(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("enable") {
	case "":
	case "on", "true", "1":
		if err := a.SetRecording(true); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	case "off", "false", "0":
		if err := a.SetRecording(false); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	default:
		http.Error(w, "enable must be on or off", http.StatusBadRequest)
		return
	}
	writeJSON(w, a.RecordStatus())
}

func (a *App) handleReplay(w http.ResponseWriter, r *http.Request) {
	inst := strings.TrimPrefix(r.URL.Path, "/replay/")
	if inst == "" {
		http.Error(w, "usage: /replay/{instance}", http.StatusBadRequest)
		return
	}
	rep, err := a.ReplayRecorded(inst, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, rep)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
