package reconf

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bus"
	"repro/internal/telemetry"
	"repro/internal/telemetry/evlog"
	"repro/internal/telemetry/trace"
)

// This file is the HTTP observability surface of an App — the pull
// counterpart of the reconfigctl push protocol (control.go). Endpoints:
//
//	/metrics     the full telemetry registry plus the bus activity counters,
//	             in the Prometheus text exposition format with per-instance
//	             labels (bus_iface_delivered{instance,interface}, ...)
//	/healthz     liveness/readiness: 200 "ok", or 503 "reconfiguring" while
//	/readyz      a transactional reconfiguration is in flight (in this
//	             single-process reproduction the two collapse to one signal)
//	/traces      the flight recorder's retained delivery spans, as JSON
//	/trace/{id}  one causal chain ("tx-0001" renders a transaction's span
//	             timeline; a numeric ID returns that message trace's spans)
//	/replicas    every supervised replica group: live members with heartbeat
//	             and backlog, corpses awaiting rebuild, supervision counters
//	/record      the record ring's status; ?enable=on|off toggles recording
//	/replay/{id} replay the recorded window against instance id's module
//	             in-process and report whether the outputs reproduce
//	/timeseries  windowed rollups: no params lists metric names; ?metric=
//	             returns its windows (?window= caps how many)
//	/health/{i}  instance i's structured verdict (?baseline=a,b overrides
//	             the default peer baseline)
//	/events      the structured event log from ?since= (exclusive cursor);
//	             ?wait=seconds long-polls for fresh events
//	/debug/pprof runtime profiling, only when enabled with WithPprof
type ObsServer struct {
	srv *http.Server
	l   net.Listener
}

// ObsOption configures ServeObs.
type ObsOption func(*obsConfig)

type obsConfig struct {
	pprof bool
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the obs mux. Off
// by default: profiling endpoints expose stacks and heap contents, so they
// are opt-in (polybus -pprof).
func WithPprof() ObsOption {
	return func(c *obsConfig) { c.pprof = true }
}

// ServeObs starts serving the observability endpoints on l. Close the
// returned server to stop.
func (a *App) ServeObs(l net.Listener, opts ...ObsOption) *ObsServer {
	var cfg obsConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealth)
	mux.HandleFunc("/readyz", a.handleHealth)
	mux.HandleFunc("/traces", a.handleTraces)
	mux.HandleFunc("/trace/", a.handleTrace)
	mux.HandleFunc("/replicas", a.handleReplicas)
	mux.HandleFunc("/record", a.handleRecord)
	mux.HandleFunc("/replay/", a.handleReplay)
	mux.HandleFunc("/timeseries", a.handleTimeseries)
	mux.HandleFunc("/health/", a.handleInstanceHealth)
	mux.HandleFunc("/events", a.handleEvents)
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Slowloris hardening: a client must finish its headers and body
	// promptly. WriteTimeout leaves room for the /events long-poll (capped
	// at maxEventWait) plus response transfer.
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      maxEventWait + 30*time.Second,
	}
	go func() { _ = srv.Serve(l) }() //archlint:spawn HTTP server; exits when srv.Close is called
	return &ObsServer{srv: srv, l: l}
}

// Addr returns the listener address.
func (o *ObsServer) Addr() net.Addr { return o.l.Addr() }

// Close stops the server and closes the listener.
func (o *ObsServer) Close() error { return o.srv.Close() }

func (a *App) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := a.bus.Stats()
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"bus_delivered_total", st.Delivered},
		{"bus_dropped_total", st.Dropped},
		{"bus_rebinds_total", st.Rebinds},
		{"bus_signals_total", st.Signals},
		{"bus_moves_total", st.Moves},
	} {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.v)
	}
	fmt.Fprintf(w, "# TYPE bus_snapshot_version gauge\nbus_snapshot_version %d\n", st.SnapshotVersion)
	if rec := a.FlightRecorder(); rec != nil {
		fmt.Fprintf(w, "# TYPE trace_recorder_spans gauge\ntrace_recorder_spans %d\n", rec.Len())
		fmt.Fprintf(w, "# TYPE trace_recorder_recorded_total counter\ntrace_recorder_recorded_total %d\n", rec.Recorded())
		fmt.Fprintf(w, "# TYPE trace_recorder_memory_bound_bytes gauge\ntrace_recorder_memory_bound_bytes %d\n", rec.MemoryBound())
	}
	telemetry.WritePrometheus(w, a.Telemetry(), bus.PromLabelRules()...)
}

func (a *App) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if a.prims.ReconfigActive() {
		http.Error(w, "reconfiguring", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (a *App) handleTraces(w http.ResponseWriter, _ *http.Request) {
	spans := a.FlightRecorder().Snapshot()
	if spans == nil {
		spans = []*trace.SpanRecord{}
	}
	writeJSON(w, spans)
}

func (a *App) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/trace/")
	if strings.HasPrefix(id, "tx-") {
		lines, err := a.TraceTx(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"id": id, "timeline": lines})
		return
	}
	// Quiesce annotations render message trace IDs as 0x-prefixed hex so
	// they can't be misread as the decimal form the JSON spans use; accept
	// both, plus bare hex as a convenience for IDs with letters in them.
	var n uint64
	var err error
	if rest, isHex := strings.CutPrefix(id, "0x"); isHex {
		n, err = strconv.ParseUint(rest, 16, 64)
	} else {
		n, err = strconv.ParseUint(id, 10, 64)
		if err != nil {
			n, err = strconv.ParseUint(id, 16, 64)
		}
	}
	if err != nil {
		http.Error(w, "bad trace id: "+id, http.StatusBadRequest)
		return
	}
	spans := a.FlightRecorder().ByTrace(n)
	if len(spans) == 0 {
		http.Error(w, fmt.Sprintf("no retained spans for trace %d", n), http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"trace_id": n, "spans": spans})
}

func (a *App) handleReplicas(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, a.ReplicaSets())
}

func (a *App) handleRecord(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("enable") {
	case "":
	case "on", "true", "1":
		if err := a.SetRecording(true); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	case "off", "false", "0":
		if err := a.SetRecording(false); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	default:
		http.Error(w, "enable must be on or off", http.StatusBadRequest)
		return
	}
	writeJSON(w, a.RecordStatus())
}

func (a *App) handleReplay(w http.ResponseWriter, r *http.Request) {
	inst := strings.TrimPrefix(r.URL.Path, "/replay/")
	if inst == "" {
		http.Error(w, "usage: /replay/{instance}", http.StatusBadRequest)
		return
	}
	rep, err := a.ReplayRecorded(inst, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, rep)
}

// handleTimeseries serves windowed rollups. Without ?metric= it lists the
// live series names; with one it returns the metric's retained windows,
// optionally capped by ?window= (a count of trailing windows).
func (a *App) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		writeJSON(w, map[string]any{
			"window_ns": int64(a.roller.Window()),
			"windows":   a.roller.Depth(),
			"rolled":    a.roller.Rolled(),
			"metrics":   a.roller.Names(),
		})
		return
	}
	k := 0
	for _, key := range []string{"window", "windows"} {
		if v := q.Get(key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "window must be a non-negative window count", http.StatusBadRequest)
				return
			}
			k = n
		}
	}
	s, ok := a.roller.Query(metric, k)
	if !ok {
		http.Error(w, "no series for metric "+metric, http.StatusNotFound)
		return
	}
	writeJSON(w, s)
}

// handleInstanceHealth serves /health/{instance}: the structured verdict
// with its evidence windows. ?baseline=a,b overrides the default baseline
// (the instance's live replica-group peers).
func (a *App) handleInstanceHealth(w http.ResponseWriter, r *http.Request) {
	inst := strings.TrimPrefix(r.URL.Path, "/health/")
	if inst == "" {
		http.Error(w, "usage: /health/{instance}", http.StatusBadRequest)
		return
	}
	var baseline []string
	if b := r.URL.Query().Get("baseline"); b != "" {
		for _, p := range strings.Split(b, ",") {
			if p = strings.TrimSpace(p); p != "" {
				baseline = append(baseline, p)
			}
		}
	}
	if _, err := a.bus.Info(inst); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, a.Health(inst, baseline))
}

// maxEventWait caps the /events long-poll, keeping every request bounded
// well under the server's WriteTimeout.
const maxEventWait = 30 * time.Second

// handleEvents serves the structured event log from an exclusive cursor:
// /events?since=N returns records with seq > N. ?wait=seconds long-polls
// until a fresh record arrives or the wait elapses (empty list).
func (a *App) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "since must be an event cursor", http.StatusBadRequest)
			return
		}
		since = n
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil || secs < 0 {
			http.Error(w, "wait must be non-negative seconds", http.StatusBadRequest)
			return
		}
		wait = time.Duration(secs * float64(time.Second))
		if wait > maxEventWait {
			wait = maxEventWait
		}
	}
	recs := a.events.Since(since)
	if len(recs) == 0 && wait > 0 {
		recs = a.events.Wait(since, wait)
	}
	if recs == nil {
		recs = []evlog.Record{}
	}
	writeJSON(w, map[string]any{
		"cursor": a.events.Cursor(),
		"events": recs,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The usual cause is a client hanging up mid-response; the error
		// is invisible to the client either way, so log it.
		log.Printf("obs: encode response: %v", err)
	}
}
