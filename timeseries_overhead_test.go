package reconf

// TestTimeseriesOverheadArtifact quantifies the windowed-telemetry cost
// model and writes BENCH_timeseries_overhead.json (scripts/check.sh sets
// RECONFIG_TIMESERIES_JSON; a plain `go test` run skips it):
//
//   - roller: the per-window cost of closing every series — the whole
//     price of rollups, paid once per window off the hot path — plus the
//     ring's fixed memory bound.
//   - message_roundtrip: one bus write+read with the rollup roller
//     stopped and with it running on a 1ms window against the same
//     registry. The roller reads the registry's atomics without touching
//     any message-path lock, so the roundtrip must neither slow down
//     (cmd/perfgate holds it under the 300 ns budget) nor allocate
//     (allocs_per_msg_delta must be exactly zero).

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/telemetry"
	"repro/internal/telemetry/timeseries"
)

func TestTimeseriesOverheadArtifact(t *testing.T) {
	out := os.Getenv("RECONFIG_TIMESERIES_JSON")
	if out == "" {
		t.Skip("set RECONFIG_TIMESERIES_JSON=<path> to emit the timeseries overhead artifact")
	}

	// Roller cost per window over a registry populated like a mid-sized
	// application: 32 instances, each with the bus's per-interface series.
	reg := telemetry.NewRegistry()
	for i := 0; i < 32; i++ {
		prefix := fmt.Sprintf("bus.iface.inst%d.in", i)
		reg.Counter(prefix + ".sent").Add(int64(i))
		reg.Counter(prefix + ".delivered").Add(int64(i))
		reg.Gauge(prefix + ".queue_depth").Set(int64(i % 7))
		h := reg.Histogram(prefix + ".delivery_latency_ns")
		for j := 0; j < 100; j++ {
			h.ObserveNs(int64(1000 + i*j))
		}
	}
	roller := timeseries.New(reg, timeseries.Config{Window: time.Second, Windows: 120})
	roller.Roll() // populate the series map before measuring steady state
	rollNs := benchNs(func() { roller.Roll() })

	// Message roundtrip against a telemetry-carrying bus, rollups off.
	payload := make([]byte, 64)
	pair := func() (bus.Port, bus.Port, *bus.Bus) {
		t.Helper()
		bb := bus.New()
		for _, spec := range []bus.InstanceSpec{
			{Name: "src", Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
			{Name: "dst", Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}},
		} {
			if err := bb.AddInstance(spec); err != nil {
				t.Fatal(err)
			}
		}
		if err := bb.AddBinding(bus.Endpoint{Instance: "src", Interface: "out"}, bus.Endpoint{Instance: "dst", Interface: "in"}); err != nil {
			t.Fatal(err)
		}
		src, err := bb.Attach("src")
		if err != nil {
			t.Fatal(err)
		}
		dst, err := bb.Attach("dst")
		if err != nil {
			t.Fatal(err)
		}
		return src, dst, bb
	}
	roundtrip := func(src, dst bus.Port) func() {
		return func() {
			if err := src.Write("out", payload); err != nil {
				t.Fatal(err)
			}
			if _, err := dst.Read("in"); err != nil {
				t.Fatal(err)
			}
		}
	}

	offSrc, offDst, _ := pair()
	offNs := benchNs(roundtrip(offSrc, offDst))
	offAllocs := testing.AllocsPerRun(2000, roundtrip(offSrc, offDst))

	// Rollups on: a roller sampling the same registry every 1ms, live for
	// the whole measurement.
	onSrc, onDst, onBus := pair()
	live := timeseries.New(onBus.Telemetry(), timeseries.Config{Window: time.Millisecond, Windows: 120})
	live.Start()
	defer live.Stop()
	onNs := benchNs(roundtrip(onSrc, onDst))
	onAllocs := testing.AllocsPerRun(2000, roundtrip(onSrc, onDst))
	if live.Rolled() == 0 {
		t.Error("roller never rolled during the measurement: the rollups-on number is meaningless")
	}

	allocDelta := onAllocs - offAllocs
	if allocDelta != 0 {
		t.Errorf("rollups add %v allocs per message (on=%v off=%v), want exactly 0",
			allocDelta, onAllocs, offAllocs)
	}

	report := map[string]any{
		"benchmark": "timeseries_overhead",
		"roller": map[string]any{
			"ns_per_roll":        rollNs,
			"metrics":            len(roller.Names()),
			"windows":            roller.Depth(),
			"window":             roller.Window().String(),
			"memory_bound_bytes": roller.MemoryBound(),
		},
		"message_roundtrip": map[string]float64{
			"rollups_off_ns_op":    offNs,
			"rollups_on_ns_op":     onNs,
			"overhead_ns_op":       onNs - offNs,
			"allocs_per_msg_on":    onAllocs,
			"allocs_per_msg_delta": allocDelta,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
