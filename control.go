package reconf

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bus"
	"repro/internal/reconfig"
	"repro/internal/telemetry"
	"repro/internal/telemetry/evlog"
	"repro/internal/telemetry/health"
)

// The control protocol lets an operator tool (cmd/reconfigctl) drive
// reconfigurations against a running application from another process:
// one gob-framed request/response pair per operation.

type ctlRequest struct {
	Op      string // topology|instances|move|replace|update|replicate|remove|plan|trace|stats|replicas|record|replay|watch|timeseries|health|events
	Inst    string // instance name; for "trace", an optional transaction ID; for "record", on|off|"" (status); for "watch"/"events", a numeric argument; for "timeseries", a metric name
	NewName string // for "health", a comma-separated baseline override; for "timeseries", a window count
	Machine string
	Module  string
}

type ctlResponse struct {
	Err  string
	Text string
	List []string
	Tx   *TxReport // replacement ops: the transaction's step/rollback report
}

// TxReport mirrors reconfig.TxResult across the control connection: the
// forward step trace, whether the transaction committed, and the
// compensations replayed if it rolled back.
type TxReport struct {
	TxID       string // tracer transaction ID, usable with `reconfigctl trace <txid>`
	Steps      []string
	Committed  bool
	RolledBack bool
	Rollback   []TxRollbackStep
	Err        string
}

// TxRollbackStep is one compensation of a rolled-back transaction.
type TxRollbackStep struct {
	Action string
	Err    string
}

func txReport(res *reconfig.TxResult) *TxReport {
	if res == nil {
		return nil
	}
	r := &TxReport{TxID: res.TxID, Steps: res.Steps, Committed: res.Committed, RolledBack: res.RolledBack}
	for _, s := range res.Rollback {
		r.Rollback = append(r.Rollback, TxRollbackStep{Action: s.Action, Err: s.Err})
	}
	if res.Err != nil {
		r.Err = res.Err.Error()
	}
	return r
}

// Format renders the report for operator display.
func (r *TxReport) Format() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	if r.TxID != "" {
		fmt.Fprintf(&b, "transaction %s\n", r.TxID)
	}
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	switch {
	case r.Committed:
		fmt.Fprintf(&b, "committed\n")
	case r.RolledBack:
		fmt.Fprintf(&b, "rolled back:\n")
		for _, s := range r.Rollback {
			if s.Err != "" {
				fmt.Fprintf(&b, "  %s FAILED: %s\n", s.Action, s.Err)
			} else {
				fmt.Fprintf(&b, "  %s\n", s.Action)
			}
		}
	}
	if r.Err != "" {
		fmt.Fprintf(&b, "error: %s\n", r.Err)
	}
	return b.String()
}

// statsSnapshot is the JSON document returned by the "stats" control op:
// coarse bus counters, the full telemetry registry snapshot (per-interface
// message counters, queue-depth gauges, capture/restore histograms), and
// the transaction IDs with retained span timelines.
type statsSnapshot struct {
	Bus          bus.Stats          `json:"bus"`
	Telemetry    telemetry.Snapshot `json:"telemetry"`
	Transactions []string           `json:"transactions,omitempty"`
}

// ControlServer serves control requests for one App.
type ControlServer struct {
	app *App
	l   net.Listener

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	closeOnce sync.Once
}

// ServeControl starts a control server on l.
func (a *App) ServeControl(l net.Listener) *ControlServer {
	s := &ControlServer{app: a, l: l, conns: map[net.Conn]struct{}{}}
	go s.acceptLoop() //archlint:spawn accept loop; exits when the listener closes
	return s
}

// Addr returns the listener address.
func (s *ControlServer) Addr() net.Addr { return s.l.Addr() }

// Close stops the server. Idempotent.
func (s *ControlServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		err = s.l.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	return err
}

func (s *ControlServer) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serve(conn) //archlint:spawn per-connection handler; exits on conn close, tracked in s.conns
	}
}

func (s *ControlServer) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req ctlRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		if err := enc.Encode(s.handle(req)); err != nil {
			return
		}
	}
}

func (s *ControlServer) handle(req ctlRequest) ctlResponse {
	a := s.app
	fail := func(err error) ctlResponse { return ctlResponse{Err: err.Error()} }
	switch req.Op {
	case "topology":
		return ctlResponse{Text: a.Topology()}
	case "instances":
		return ctlResponse{List: a.bus.Instances()}
	case "move":
		return s.replaceTx(req.Inst, reconfig.ReplaceOptions{NewName: req.NewName, Machine: req.Machine})
	case "replace":
		return s.replaceTx(req.Inst, reconfig.ReplaceOptions{NewName: req.NewName, Machine: req.Machine, Module: req.Module})
	case "update":
		return s.replaceTx(req.Inst, reconfig.ReplaceOptions{NewName: req.NewName, Module: req.Module})
	case "plan":
		steps, err := a.PlanReplace(req.Inst, reconfig.ReplaceOptions{NewName: req.NewName, Machine: req.Machine, Module: req.Module})
		if err != nil {
			return fail(err)
		}
		return ctlResponse{List: steps}
	case "replicate":
		if err := a.Replicate(req.Inst, req.NewName, req.Machine); err != nil {
			return fail(err)
		}
	case "remove":
		if err := a.Remove(req.Inst); err != nil {
			return fail(err)
		}
	case "trace":
		// Without an argument the op returns the primitive audit trail;
		// with a transaction ID it returns that transaction's span timeline.
		if req.Inst != "" {
			lines, err := a.TraceTx(req.Inst)
			if err != nil {
				return fail(err)
			}
			return ctlResponse{List: lines}
		}
		return ctlResponse{List: a.Trace()}
	case "stats":
		// Sort the transaction list: map-backed telemetry fields already
		// marshal with sorted keys, and golden tests want the whole stats
		// document byte-stable across runs.
		txids := a.prims.Tracer().IDs()
		sort.Strings(txids)
		data, err := json.MarshalIndent(statsSnapshot{
			Bus:          a.bus.Stats(),
			Telemetry:    a.Telemetry().Snapshot(),
			Transactions: txids,
		}, "", "  ")
		if err != nil {
			return fail(err)
		}
		return ctlResponse{Text: string(data)}
	case "replicas":
		data, err := json.MarshalIndent(a.ReplicaSets(), "", "  ")
		if err != nil {
			return fail(err)
		}
		return ctlResponse{Text: string(data)}
	case "record":
		switch req.Inst {
		case "":
		case "on":
			if err := a.SetRecording(true); err != nil {
				return fail(err)
			}
		case "off":
			if err := a.SetRecording(false); err != nil {
				return fail(err)
			}
		default:
			return ctlResponse{Err: fmt.Sprintf("reconf: record: want on, off or empty, got %q", req.Inst)}
		}
		data, err := json.MarshalIndent(a.RecordStatus(), "", "  ")
		if err != nil {
			return fail(err)
		}
		return ctlResponse{Text: string(data)}
	case "replay":
		rep, err := a.ReplayRecorded(req.Inst, nil)
		if err != nil {
			return fail(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fail(err)
		}
		return ctlResponse{Text: string(data)}
	case "watch":
		k := 0
		if req.Inst != "" {
			n, err := strconv.Atoi(req.Inst)
			if err != nil || n < 0 {
				return ctlResponse{Err: fmt.Sprintf("reconf: watch: window count must be a non-negative integer, got %q", req.Inst)}
			}
			k = n
		}
		return ctlResponse{Text: a.WatchTable(k)}
	case "timeseries":
		if req.Inst == "" {
			data, err := json.MarshalIndent(map[string]any{
				"window_ns": int64(a.roller.Window()),
				"windows":   a.roller.Depth(),
				"rolled":    a.roller.Rolled(),
				"metrics":   a.roller.Names(),
			}, "", "  ")
			if err != nil {
				return fail(err)
			}
			return ctlResponse{Text: string(data)}
		}
		k := 0
		if req.NewName != "" {
			n, err := strconv.Atoi(req.NewName)
			if err != nil || n < 0 {
				return ctlResponse{Err: fmt.Sprintf("reconf: timeseries: window count must be a non-negative integer, got %q", req.NewName)}
			}
			k = n
		}
		series, ok := a.roller.Query(req.Inst, k)
		if !ok {
			return ctlResponse{Err: fmt.Sprintf("reconf: timeseries: no series for metric %q", req.Inst)}
		}
		data, err := json.MarshalIndent(series, "", "  ")
		if err != nil {
			return fail(err)
		}
		return ctlResponse{Text: string(data)}
	case "health":
		if _, err := a.bus.Info(req.Inst); err != nil {
			return fail(err)
		}
		var baseline []string
		for _, p := range strings.Split(req.NewName, ",") {
			if p = strings.TrimSpace(p); p != "" {
				baseline = append(baseline, p)
			}
		}
		data, err := json.MarshalIndent(a.Health(req.Inst, baseline), "", "  ")
		if err != nil {
			return fail(err)
		}
		return ctlResponse{Text: string(data)}
	case "events":
		var since uint64
		if req.Inst != "" {
			n, err := strconv.ParseUint(req.Inst, 10, 64)
			if err != nil {
				return ctlResponse{Err: fmt.Sprintf("reconf: events: cursor must be a non-negative integer, got %q", req.Inst)}
			}
			since = n
		}
		recs := a.events.Since(since)
		if recs == nil {
			recs = []evlog.Record{}
		}
		data, err := json.MarshalIndent(map[string]any{
			"cursor": a.events.Cursor(),
			"events": recs,
		}, "", "  ")
		if err != nil {
			return fail(err)
		}
		return ctlResponse{Text: string(data)}
	default:
		return ctlResponse{Err: fmt.Sprintf("reconf: unknown control op %q", req.Op)}
	}
	return ctlResponse{Text: "ok"}
}

// WatchTable renders the operator's one-screen view of the windowed
// telemetry: per instance, the delivery rate, queued backlog, error rate,
// sustained p99 delivery latency and health verdict over the last k rolled
// windows (default 5). Served by the "watch" control op for
// `reconfigctl watch`.
func (a *App) WatchTable(k int) string {
	if k <= 0 {
		k = 5
	}
	snap := a.Telemetry().Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "window=%s rolled=%d\n", a.roller.Window(), a.roller.Rolled())
	fmt.Fprintf(&b, "%-24s %12s %8s %10s %12s  %s\n",
		"INSTANCE", "DELIVERED/S", "QDEPTH", "ERR/S", "P99", "HEALTH")
	for _, inst := range a.bus.Instances() {
		ws := health.InstanceWindows(a.roller, inst, k)
		var delivered, errs, latObs, p99, spanNs int64
		for _, w := range ws {
			delivered += w.Delivered
			errs += w.Errors
			latObs += w.LatObs
			if w.P99Ns > p99 {
				p99 = w.P99Ns
			}
			spanNs += w.EndNs - w.StartNs
		}
		secs := float64(spanNs) / 1e9
		rate := func(v int64) float64 {
			if secs <= 0 {
				return 0
			}
			return float64(v) / secs
		}
		p99s := "-"
		if latObs > 0 {
			p99s = time.Duration(p99).String()
		}
		fmt.Fprintf(&b, "%-24s %12.1f %8d %10.2f %12s  %s\n",
			inst, rate(delivered), queueDepth(snap, inst), rate(errs), p99s, a.Health(inst, nil).Level)
	}
	return strings.TrimRight(b.String(), "\n")
}

// queueDepth sums the live queue-depth gauges attributed to inst. Instance
// names may contain dots ("pool.1"), so the dotless interface segment is
// peeled off the right-hand side before comparing.
func queueDepth(snap telemetry.Snapshot, inst string) int64 {
	var total int64
	for name, v := range snap.Gauges {
		rest := strings.TrimPrefix(name, "bus.iface.")
		if rest == name || !strings.HasSuffix(rest, ".queue_depth") {
			continue
		}
		rest = strings.TrimSuffix(rest, ".queue_depth")
		if i := strings.LastIndexByte(rest, '.'); i > 0 && rest[:i] == inst {
			total += v
		}
	}
	return total
}

// replaceTx runs a replacement-family script and ships the transaction
// report alongside the outcome, so the operator tool can show the step
// trace and any rollback even for a failed reconfiguration.
func (s *ControlServer) replaceTx(inst string, opts reconfig.ReplaceOptions) ctlResponse {
	res, err := s.app.ReplaceTx(inst, opts)
	resp := ctlResponse{Tx: txReport(res)}
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.Text = "ok"
	}
	return resp
}

// ControlClient drives a remote application.
type ControlClient struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	mu   sync.Mutex
}

// DialControl connects to a control server.
func DialControl(addr string, timeout time.Duration) (*ControlClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("reconf: dial control %s: %w", addr, err)
	}
	return &ControlClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close releases the connection.
func (c *ControlClient) Close() error { return c.conn.Close() }

func (c *ControlClient) call(req ctlRequest) (ctlResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return ctlResponse{}, fmt.Errorf("reconf: control send: %w", err)
	}
	var resp ctlResponse
	if err := c.dec.Decode(&resp); err != nil {
		return ctlResponse{}, fmt.Errorf("reconf: control recv: %w", err)
	}
	if resp.Err != "" {
		// The response still carries any transaction report.
		return resp, fmt.Errorf("reconf: control: %s", resp.Err)
	}
	return resp, nil
}

// Topology fetches the remote Figure 1 view.
func (c *ControlClient) Topology() (string, error) {
	resp, err := c.call(ctlRequest{Op: "topology"})
	return resp.Text, err
}

// Instances lists remote instances.
func (c *ControlClient) Instances() ([]string, error) {
	resp, err := c.call(ctlRequest{Op: "instances"})
	return resp.List, err
}

// Move relocates an instance remotely.
func (c *ControlClient) Move(inst, newName, machine string) (*TxReport, error) {
	resp, err := c.call(ctlRequest{Op: "move", Inst: inst, NewName: newName, Machine: machine})
	return resp.Tx, err
}

// Replace runs the replacement script remotely.
func (c *ControlClient) Replace(inst, newName, machine, module string) (*TxReport, error) {
	resp, err := c.call(ctlRequest{Op: "replace", Inst: inst, NewName: newName, Machine: machine, Module: module})
	return resp.Tx, err
}

// Update swaps a module implementation remotely.
func (c *ControlClient) Update(inst, newName, module string) (*TxReport, error) {
	resp, err := c.call(ctlRequest{Op: "update", Inst: inst, NewName: newName, Module: module})
	return resp.Tx, err
}

// Plan fetches the step sequence a replacement would perform, without
// executing it.
func (c *ControlClient) Plan(inst, newName, machine, module string) ([]string, error) {
	resp, err := c.call(ctlRequest{Op: "plan", Inst: inst, NewName: newName, Machine: machine, Module: module})
	return resp.List, err
}

// Replicate adds a replica remotely.
func (c *ControlClient) Replicate(inst, newName, machine string) error {
	_, err := c.call(ctlRequest{Op: "replicate", Inst: inst, NewName: newName, Machine: machine})
	return err
}

// Remove deletes an instance remotely.
func (c *ControlClient) Remove(inst string) error {
	_, err := c.call(ctlRequest{Op: "remove", Inst: inst})
	return err
}

// Trace fetches the remote primitive audit trail.
func (c *ControlClient) Trace() ([]string, error) {
	resp, err := c.call(ctlRequest{Op: "trace"})
	return resp.List, err
}

// TraceTx fetches the span timeline of one remote transaction by ID.
func (c *ControlClient) TraceTx(txid string) ([]string, error) {
	resp, err := c.call(ctlRequest{Op: "trace", Inst: txid})
	return resp.List, err
}

// Stats fetches the remote statistics snapshot as an indented JSON
// document (see statsSnapshot).
func (c *ControlClient) Stats() (string, error) {
	resp, err := c.call(ctlRequest{Op: "stats"})
	return resp.Text, err
}

// Replicas fetches the remote replica-group health snapshot as an indented
// JSON document (see reconfig.ReplicaSetStatus).
func (c *ControlClient) Replicas() (string, error) {
	resp, err := c.call(ctlRequest{Op: "replicas"})
	return resp.Text, err
}

// Record drives the remote record ring: mode "on"/"off" toggles it, ""
// just fetches status. Returns the status as indented JSON (see
// RecordStatus).
func (c *ControlClient) Record(mode string) (string, error) {
	resp, err := c.call(ctlRequest{Op: "record", Inst: mode})
	return resp.Text, err
}

// Replay replays the remote record ring's window against an instance's
// module in-process on the remote side and returns the reproduction
// report as indented JSON (see ReplayReport).
func (c *ControlClient) Replay(inst string) (string, error) {
	resp, err := c.call(ctlRequest{Op: "replay", Inst: inst})
	return resp.Text, err
}

// Watch fetches the remote per-instance telemetry table aggregated over
// the last k rolled windows (k <= 0 uses the server default).
func (c *ControlClient) Watch(k int) (string, error) {
	req := ctlRequest{Op: "watch"}
	if k > 0 {
		req.Inst = strconv.Itoa(k)
	}
	resp, err := c.call(req)
	return resp.Text, err
}

// Timeseries fetches windowed rollups as indented JSON: with an empty
// metric, the series listing; otherwise that metric's retained windows,
// optionally capped to the trailing k (k <= 0 returns all retained).
func (c *ControlClient) Timeseries(metric string, k int) (string, error) {
	req := ctlRequest{Op: "timeseries", Inst: metric}
	if k > 0 {
		req.NewName = strconv.Itoa(k)
	}
	resp, err := c.call(req)
	return resp.Text, err
}

// Health fetches an instance's structured health verdict as indented JSON.
// An empty baseline defaults to the instance's live replica-group peers.
func (c *ControlClient) Health(inst string, baseline []string) (string, error) {
	resp, err := c.call(ctlRequest{Op: "health", Inst: inst, NewName: strings.Join(baseline, ",")})
	return resp.Text, err
}

// Events fetches the structured event log after the exclusive cursor as
// indented JSON ({cursor, events}).
func (c *ControlClient) Events(since uint64) (string, error) {
	req := ctlRequest{Op: "events"}
	if since > 0 {
		req.Inst = strconv.FormatUint(since, 10)
	}
	resp, err := c.call(req)
	return resp.Text, err
}

// FormatTrace renders a trace for operator display.
func FormatTrace(trace []string) string {
	if len(trace) == 0 {
		return "(no reconfigurations yet)"
	}
	return strings.Join(trace, "\n")
}
