package reconf

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/reconfig"
)

// TestQuiesceAnnotatedWithQueuedTraces is the acceptance criterion for
// quiesce correlation: a committed replacement whose quiesce found messages
// queued toward the old module shows their trace IDs and ages on the
// quiesce_wait span of `reconfigctl trace <txid>`.
func TestQuiesceAnnotatedWithQueuedTraces(t *testing.T) {
	app, d, feed := startInterrupted(t)

	// A second display request queues at the busy module — the replacement's
	// quiesce will be waiting behind it.
	d.request(1)

	feed()
	res, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{NewName: "compute2"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.TxID == "" {
		t.Fatalf("replace result = %+v", res)
	}
	lines, err := app.TraceTx(res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	timeline := strings.Join(lines, "\n")
	if !strings.Contains(timeline, "quiesce_wait") {
		t.Fatalf("timeline has no quiesce_wait span:\n%s", timeline)
	}
	if !strings.Contains(timeline, "queued compute.display trace=") {
		t.Errorf("quiesce_wait not annotated with the queued message's trace:\n%s", timeline)
	}
	if !strings.Contains(timeline, "age=") {
		t.Errorf("queued-message annotation carries no age:\n%s", timeline)
	}
	finishComputation(t, d)
}

// TestQueueDepthGaugesConsistentAfterRollback pins gauge consistency across
// cq/rmq transfers and rebind rollback: after a fault-injected rollback
// (fault fires after the queues moved to the clone, so the compensation
// moves them back), every queue_depth gauge equals the actual queue length
// and no gauge survives for the deleted clone.
func TestQueueDepthGaugesConsistentAfterRollback(t *testing.T) {
	app, d, feed := startInterrupted(t)
	pre := snapshotConfig(t, app)

	faults := faultinject.New()
	faults.Enable("bus.awaitrestored", faultinject.Point{Action: faultinject.Error, Count: 1})
	app.Bus().SetFaults(faults)

	feed()
	res, err := app.ReplaceTx("compute", reconfig.ReplaceOptions{NewName: "compute2"})
	if err == nil || res == nil || !res.RolledBack {
		t.Fatalf("replace = %+v, %v; want rollback", res, err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for !reflect.DeepEqual(snapshotConfig(t, app), pre) {
		if time.Now().After(deadline) {
			t.Fatal("configuration did not converge after rollback")
		}
		time.Sleep(10 * time.Millisecond)
	}

	gauges := app.Telemetry().Snapshot().Gauges
	checked := 0
	for _, name := range app.Bus().Instances() {
		info, err := app.Bus().Info(name)
		if err != nil {
			t.Fatal(err)
		}
		for iface, depth := range info.Pending {
			key := fmt.Sprintf("bus.iface.%s.%s.queue_depth", name, iface)
			got, ok := gauges[key]
			if !ok {
				t.Errorf("no gauge %s", key)
				continue
			}
			if got != int64(depth) {
				t.Errorf("%s = %d, actual queue length %d", key, got, depth)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no queue_depth gauges found")
	}
	for key := range gauges {
		if strings.HasPrefix(key, "bus.iface.compute2.") {
			t.Errorf("gauge %s survived the clone's rollback deletion", key)
		}
	}
	finishComputation(t, d)
}
