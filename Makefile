# Tier-1: the gate every change must pass (see ROADMAP.md).
.PHONY: test
test:
	go build ./... && go test ./...

# Architectural invariants: the self-hosting archlint run (AL001-AL014:
# trace confinement, locking discipline, snapshot protocol, hot-path
# allocations, journaled mutations, spawn sites, layering, record-append
# confinement, observability-ring write confinement).
.PHONY: lint
lint:
	go run ./cmd/archlint ./...

# Tier-2: static vetting + race-detector runs of the concurrency-heavy
# packages. Run before touching bus/quiesce or shipping a PR.
.PHONY: check
check:
	./scripts/check.sh

# Benchmark artifacts: replace latency, steady-state overhead, multi-sender
# bus throughput, trace overhead, record/replay overhead, and windowed
# rollup overhead, written as BENCH_*.json in the repo root.
.PHONY: bench
bench:
	RECONFIG_BENCH_JSON="$(CURDIR)/BENCH_reconfig_latency.json" \
		go test -run TestRollbackLatencyArtifact -count=1 .
	RECONFIG_OVERHEAD_JSON="$(CURDIR)/BENCH_overhead.json" \
		go test -run TestOverheadArtifact -count=1 .
	RECONFIG_BUS_THROUGHPUT_JSON="$(CURDIR)/BENCH_bus_throughput.json" \
		go test -run TestBusThroughputArtifact -count=1 .
	RECONFIG_TRACE_OVERHEAD_JSON="$(CURDIR)/BENCH_trace_overhead.json" \
		go test -run TestTraceOverheadArtifact -count=1 .
	RECONFIG_REPLAY_OVERHEAD_JSON="$(CURDIR)/BENCH_replay_overhead.json" \
		go test -run TestReplayOverheadArtifact -count=1 .
	RECONFIG_TIMESERIES_JSON="$(CURDIR)/BENCH_timeseries_overhead.json" \
		go test -run TestTimeseriesOverheadArtifact -count=1 .
