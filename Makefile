# Tier-1: the gate every change must pass (see ROADMAP.md).
.PHONY: test
test:
	go build ./... && go test ./...

# Tier-2: static vetting + race-detector runs of the concurrency-heavy
# packages. Run before touching bus/quiesce or shipping a PR.
.PHONY: check
check:
	./scripts/check.sh
