package reconf

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes each example binary end to end and checks its
// headline output, so the documented entry points cannot rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Go toolchain; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	cases := []struct {
		dir   string
		wants []string
	}{
		{"./examples/quickstart", []string{
			"moving compute to machineB",
			"instance compute2 (module compute) on machineB",
			"await_divulged compute",
			"await_restored compute2",
		}},
		{"./examples/monitor", []string{
			"reconfiguration graph (Figure 6)",
			"edge 4: compute -> reconfig (point R",
			`mh.Restore("compute", "liiF", &mhLoc, &num, &n, rp)`,
			"instance compute2 (module compute) on machineB",
		}},
		{"./examples/hotswap", []string{
			"updating stats -> statsV2",
			"instance stats2 (module statsV2)",
			"v2 serving",
		}},
		{"./examples/pipeline", []string{
			"replay reproduced the recorded window for filter",
			"hot-swapped filter -> filter2 (replay gate passed)",
			"replay gate rejected filterBad",
			"rolled back before commit; filter2 keeps serving",
			"all 60 values correct through the hot swap and the vetoed swap",
			"recording disabled via control plane",
		}},
		{"./examples/selfheal", []string{
			"worker pool: 3 replicas, policy roundrobin",
			"killing pool.2 under load",
			"restored from checkpoint",
			"healed: members [pool.1 pool.3 pool.4]",
			"zero messages lost: 200/200",
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			ctxDone := time.After(90 * time.Second)
			cmd := exec.Command(goBin, "run", tc.dir)
			cmd.Dir = "."
			outCh := make(chan struct {
				out []byte
				err error
			}, 1)
			go func() {
				out, err := cmd.CombinedOutput()
				outCh <- struct {
					out []byte
					err error
				}{out, err}
			}()
			select {
			case res := <-outCh:
				if res.err != nil {
					t.Fatalf("%s failed: %v\n%s", tc.dir, res.err, res.out)
				}
				for _, want := range tc.wants {
					if !strings.Contains(string(res.out), want) {
						t.Errorf("%s output missing %q:\n%s", tc.dir, want, res.out)
					}
				}
			case <-ctxDone:
				if cmd.Process != nil {
					cmd.Process.Kill()
				}
				t.Fatalf("%s timed out", tc.dir)
			}
		})
	}
}
