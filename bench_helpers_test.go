package reconf

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fixtures"
	"repro/internal/mh"
	"repro/internal/transform"
)

func benchComputeSource() string { return fixtures.ComputeSource }

// benchMonitorApp loads the monitor application for benchmarking. With
// instrument=false it strips the reconfiguration point from both the
// specification and the source, yielding the unprepared original module.
func benchMonitorApp(tb testing.TB, mode transform.CaptureMode, instrument bool) *App {
	tb.Helper()
	specText := fixtures.MonitorSpec
	src := fixtures.ComputeSource
	if !instrument {
		specText = strings.Replace(specText, "reconfiguration point = {R} ::", "", 1)
		specText = strings.Replace(specText, "state R = {num, n, rp} ::", "", 1)
		src = strings.Replace(src, "\tmh.ReconfigPoint(\"R\")\n", "", 1)
	}
	app, err := Load(Config{
		SpecText: specText,
		Sources: map[string]ModuleSource{
			"compute": {Files: map[string]string{"compute.go": src}},
		},
		Native: map[string]NativeModule{
			"display": func(rt *mh.Runtime) {},
			"sensor":  func(rt *mh.Runtime) {},
		},
		Mode:         mode,
		SleepUnit:    time.Microsecond,
		StateTimeout: 30 * time.Second,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return app
}

func benchDriver(tb testing.TB, app *App) *driver {
	tb.Helper()
	return newDriver(tb, app)
}
