package codec

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/state"
)

func sampleState() *state.State {
	s := state.New("compute")
	s.Machine = "machineA"
	s.Frames = []state.Frame{
		{Func: "main", Location: 1, Vars: []state.Var{
			{Name: "n", Value: state.IntValue(5)},
			{Name: "response", Value: state.FloatValue(0)},
		}},
		{Func: "compute", Location: 3, Vars: []state.Var{
			{Name: "num", Value: state.IntValue(5)},
			{Name: "n", Value: state.IntValue(3)},
			{Name: "rp", Value: state.FloatValue(12.75)},
		}},
		{Func: "compute", Location: 4, Vars: []state.Var{
			{Name: "num", Value: state.IntValue(5)},
			{Name: "n", Value: state.IntValue(2)},
			{Name: "rp", Value: state.FloatValue(12.75)},
			{Name: "temper", Value: state.IntValue(68)},
		}},
	}
	s.Heap = []state.HeapObject{
		{Key: "window", Value: state.ListValue(state.IntValue(67), state.IntValue(70))},
	}
	s.Meta["origin"] = "machineA"
	s.Meta["reason"] = "move"
	return s
}

func allCodecs() []Codec { return []Codec{Portable{}, Gob{}} }

func TestByName(t *testing.T) {
	for _, name := range []string{"portable", "gob", ""} {
		c, err := ByName(name)
		if err != nil || c == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("xml"); err == nil {
		t.Error("unknown codec accepted")
	}
	if Default().Name() != "portable" {
		t.Errorf("Default() = %s", Default().Name())
	}
}

func TestStateRoundTrip(t *testing.T) {
	for _, c := range allCodecs() {
		t.Run(c.Name(), func(t *testing.T) {
			in := sampleState()
			data, err := c.EncodeState(in)
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.DecodeState(data)
			if err != nil {
				t.Fatal(err)
			}
			if !in.Equal(out) {
				t.Errorf("round trip mismatch:\nin:  %s\nout: %s", in, out)
			}
		})
	}
}

func TestEncodeNilState(t *testing.T) {
	for _, c := range allCodecs() {
		if _, err := c.EncodeState(nil); err == nil {
			t.Errorf("%s: nil state accepted", c.Name())
		}
	}
}

func TestValueRoundTripAllKinds(t *testing.T) {
	vals := []state.Value{
		state.BoolValue(true),
		state.BoolValue(false),
		state.IntValue(0),
		state.IntValue(-1),
		state.IntValue(math.MaxInt64),
		state.IntValue(math.MinInt64),
		state.FloatValue(0),
		state.FloatValue(math.Inf(1)),
		state.FloatValue(math.Inf(-1)),
		state.FloatValue(math.NaN()),
		state.FloatValue(-0.0),
		state.StringValue(""),
		state.StringValue("héllo\x00world"),
		state.ListValue(),
		state.ListValue(state.IntValue(1), state.StringValue("x")),
		state.StructValue("Pt", state.Field{Name: "X", Value: state.IntValue(1)}),
		state.StructValue("Empty"),
		state.ListValue(state.ListValue(state.ListValue(state.BoolValue(true)))),
	}
	for _, c := range allCodecs() {
		for _, v := range vals {
			data, err := c.EncodeValue(v)
			if err != nil {
				t.Errorf("%s: encode %v: %v", c.Name(), v, err)
				continue
			}
			back, err := c.DecodeValue(data)
			if err != nil {
				t.Errorf("%s: decode %v: %v", c.Name(), v, err)
				continue
			}
			if !v.Equal(back) {
				t.Errorf("%s: %v round-tripped to %v", c.Name(), v, back)
			}
		}
	}
}

func TestEncodeInvalidValue(t *testing.T) {
	if _, err := (Portable{}).EncodeValue(state.Value{}); err == nil {
		t.Error("invalid kind accepted")
	}
	deep := state.IntValue(1)
	for i := 0; i < maxDepth+2; i++ {
		deep = state.ListValue(deep)
	}
	if _, err := (Portable{}).EncodeValue(deep); err == nil {
		t.Error("over-deep value accepted")
	}
}

func TestPortableDecodeErrors(t *testing.T) {
	c := Portable{}
	good, err := c.EncodeState(sampleState())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("XXXX"), good[4:]...)
		if _, err := c.DecodeState(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		// Every strict prefix must fail cleanly, never panic.
		for i := 4; i < len(good); i++ {
			if _, err := c.DecodeState(good[:i]); err == nil {
				t.Fatalf("prefix of %d bytes decoded successfully", i)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte{}, good...), 0x01)
		if _, err := c.DecodeState(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("unknown kind byte", func(t *testing.T) {
		if _, err := c.DecodeValue([]byte{0xEE}); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad bool byte", func(t *testing.T) {
		if _, err := c.DecodeValue([]byte{byte(state.KindBool), 7}); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("huge string length", func(t *testing.T) {
		var buf bytes.Buffer
		buf.WriteByte(byte(state.KindString))
		buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}) // uvarint ≫ maxStringLen
		if _, err := c.DecodeValue(buf.Bytes()); !errors.Is(err, ErrLimit) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("huge list length", func(t *testing.T) {
		var buf bytes.Buffer
		buf.WriteByte(byte(state.KindList))
		buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
		if _, err := c.DecodeValue(buf.Bytes()); !errors.Is(err, ErrLimit) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("value trailing garbage", func(t *testing.T) {
		data, err := c.EncodeValue(state.IntValue(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DecodeValue(append(data, 0)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
}

func TestGobDecodeCorrupt(t *testing.T) {
	c := Gob{}
	if _, err := c.DecodeState([]byte("not gob")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("got %v", err)
	}
	if _, err := c.DecodeValue([]byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("got %v", err)
	}
}

func TestPortableDeterministic(t *testing.T) {
	// Two encodings of the same state must be byte-identical (metadata maps
	// are sorted), so state can be hashed/compared on the wire.
	c := Portable{}
	a, err := c.EncodeState(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.EncodeState(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("portable encoding is not deterministic")
	}
}

func TestValidateFormat(t *testing.T) {
	vals := []state.Value{state.IntValue(1), state.IntValue(2), state.FloatValue(3)}
	if err := ValidateFormat("iiF", vals); err != nil {
		t.Errorf("iiF rejected: %v", err)
	}
	// 'l' is the paper's long; also accepted for ints.
	if err := ValidateFormat("llF", vals); err != nil {
		t.Errorf("llF rejected: %v", err)
	}
	if err := ValidateFormat("ii", vals); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := ValidateFormat("iiX", vals); err == nil {
		t.Error("unknown specifier accepted")
	}
	if err := ValidateFormat("iFi", vals); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestFormatFor(t *testing.T) {
	f, err := FormatFor([]state.Value{
		state.IntValue(1), state.FloatValue(2), state.StringValue("x"),
		state.BoolValue(true), state.ListValue(), state.StructValue("T"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f != "iFsbLS" {
		t.Errorf("FormatFor = %q", f)
	}
	if _, err := FormatFor([]state.Value{{}}); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	c := Portable{}
	in := sampleState()
	if err := WriteTo(&buf, c, in); err != nil {
		t.Fatal(err)
	}
	// Append a second state to prove framing separates them.
	in2 := sampleState()
	in2.Module = "other"
	if err := WriteTo(&buf, c, in2); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	readFull := func(b []byte) error { _, err := io.ReadFull(br, b); return err }
	out, err := ReadFrom(br, c, readFull)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(out) {
		t.Error("framed round trip mismatch")
	}
	out2, err := ReadFrom(br, c, readFull)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Module != "other" {
		t.Errorf("second frame module = %s", out2.Module)
	}
	if _, err := ReadFrom(br, c, readFull); err == nil {
		t.Error("read past end succeeded")
	}
}

// randomValue builds a random abstract value of bounded depth for the
// property tests.
func randomValue(r *rand.Rand, depth int) state.Value {
	k := r.Intn(6)
	if depth <= 0 {
		k = r.Intn(4) // scalars only at the leaves
	}
	switch k {
	case 0:
		return state.BoolValue(r.Intn(2) == 0)
	case 1:
		return state.IntValue(int64(r.Uint64()))
	case 2:
		return state.FloatValue(math.Float64frombits(r.Uint64()))
	case 3:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return state.StringValue(string(b))
	case 4:
		n := r.Intn(4)
		elems := make([]state.Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return state.Value{Kind: state.KindList, List: elems}
	default:
		n := r.Intn(3)
		fields := make([]state.Field, n)
		for i := range fields {
			fields[i] = state.Field{Name: string(rune('A' + i)), Value: randomValue(r, depth-1)}
		}
		return state.Value{Kind: state.KindStruct, Type: "T", Fields: fields}
	}
}

// TestValueRoundTripProperty: for arbitrary abstract values, encode/decode
// must be the identity under both codecs, and the two codecs must agree.
func TestValueRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		v := randomValue(r, 3)
		for _, c := range allCodecs() {
			data, err := c.EncodeValue(v)
			if err != nil {
				t.Fatalf("%s encode: %v (value %v)", c.Name(), err, v)
			}
			back, err := c.DecodeValue(data)
			if err != nil {
				t.Fatalf("%s decode: %v (value %v)", c.Name(), err, v)
			}
			if !v.Equal(back) {
				t.Fatalf("%s: %v != %v", c.Name(), v, back)
			}
		}
	}
}

// TestPortableFuzzSafety: decoding random garbage must never panic and must
// return an error or a structurally valid value.
func TestPortableFuzzSafety(t *testing.T) {
	c := Portable{}
	f := func(data []byte) bool {
		v, err := c.DecodeValue(data)
		if err != nil {
			return true
		}
		// Re-encoding a successfully decoded value must succeed.
		_, err = c.EncodeValue(v)
		return err == nil
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	g := func(data []byte) bool {
		s, err := c.DecodeState(data)
		if err != nil {
			return true
		}
		_, err = c.EncodeState(s)
		return err == nil
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

// TestCrossCodecEquivalence: a state encoded by one codec and decoded, then
// re-encoded by the other, must describe the same abstract state.
func TestCrossCodecEquivalence(t *testing.T) {
	in := sampleState()
	p, g := Portable{}, Gob{}
	pd, err := p.EncodeState(in)
	if err != nil {
		t.Fatal(err)
	}
	viaPortable, err := p.DecodeState(pd)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := g.EncodeState(viaPortable)
	if err != nil {
		t.Fatal(err)
	}
	viaGob, err := g.DecodeState(gd)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(viaGob) {
		t.Error("state changed crossing codecs")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]string{"z": "1", "a": "2", "m": "3"}
	if got := sortedKeys(m); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Errorf("sortedKeys = %v", got)
	}
	if got := sortedKeys(nil); len(got) != 0 {
		t.Errorf("sortedKeys(nil) = %v", got)
	}
}
