package codec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/state"
)

// Portable is the hand-written self-describing binary codec. The format:
//
//	state   := magic(4) version(uvarint) module(str) machine(str)
//	           nframes(uvarint) frame* nheap(uvarint) heap* nmeta(uvarint) meta*
//	frame   := func(str) location(varint) nvars(uvarint) var*
//	var     := name(str) value
//	heap    := key(str) value
//	meta    := key(str) val(str)
//	value   := kind(1) payload
//	payload := bool: 1 byte | int: zigzag varint | float: 8-byte BE IEEE bits
//	           | string: str | list: n(uvarint) value*
//	           | struct: type(str) n(uvarint) (name(str) value)*
//	str     := len(uvarint) bytes
//
// All multi-byte quantities are either varints or big-endian, so the stream
// is identical on every architecture — the "abstract format" the paper
// requires.
type Portable struct{}

var _ Codec = Portable{}

var portableMagic = [4]byte{'M', 'H', 'S', 'T'}

// Name implements Codec.
func (Portable) Name() string { return "portable" }

// EncodeState implements Codec.
func (Portable) EncodeState(s *state.State) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("codec: nil state")
	}
	var buf bytes.Buffer
	buf.Write(portableMagic[:])
	w := newWriter(&buf)
	w.uvarint(uint64(s.Version))
	w.str(s.Module)
	w.str(s.Machine)
	w.uvarint(uint64(len(s.Frames)))
	for _, f := range s.Frames {
		w.str(f.Func)
		w.varint(int64(f.Location))
		w.uvarint(uint64(len(f.Vars)))
		for _, v := range f.Vars {
			w.str(v.Name)
			if err := w.value(v.Value, 0); err != nil {
				return nil, err
			}
		}
	}
	w.uvarint(uint64(len(s.Heap)))
	for _, h := range s.Heap {
		w.str(h.Key)
		if err := w.value(h.Value, 0); err != nil {
			return nil, err
		}
	}
	w.uvarint(uint64(len(s.Meta)))
	for _, k := range sortedKeys(s.Meta) {
		w.str(k)
		w.str(s.Meta[k])
	}
	return buf.Bytes(), nil
}

// DecodeState implements Codec.
func (Portable) DecodeState(data []byte) (*state.State, error) {
	if len(data) < len(portableMagic) || !bytes.Equal(data[:4], portableMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r := newReader(data[4:])
	s := &state.State{Meta: map[string]string{}}
	ver, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	s.Version = int(ver)
	if s.Module, err = r.str(); err != nil {
		return nil, err
	}
	if s.Machine, err = r.str(); err != nil {
		return nil, err
	}
	nframes, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nframes > maxFrames {
		return nil, fmt.Errorf("%w: %d frames", ErrLimit, nframes)
	}
	s.Frames = make([]state.Frame, nframes)
	for i := range s.Frames {
		f := &s.Frames[i]
		if f.Func, err = r.str(); err != nil {
			return nil, err
		}
		loc, err := r.varint()
		if err != nil {
			return nil, err
		}
		f.Location = int(loc)
		nvars, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nvars > maxVars {
			return nil, fmt.Errorf("%w: %d vars", ErrLimit, nvars)
		}
		f.Vars = make([]state.Var, nvars)
		for j := range f.Vars {
			if f.Vars[j].Name, err = r.str(); err != nil {
				return nil, err
			}
			if f.Vars[j].Value, err = r.value(0); err != nil {
				return nil, err
			}
		}
	}
	nheap, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nheap > maxVars {
		return nil, fmt.Errorf("%w: %d heap objects", ErrLimit, nheap)
	}
	if nheap > 0 {
		s.Heap = make([]state.HeapObject, nheap)
		for i := range s.Heap {
			if s.Heap[i].Key, err = r.str(); err != nil {
				return nil, err
			}
			if s.Heap[i].Value, err = r.value(0); err != nil {
				return nil, err
			}
		}
	}
	nmeta, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nmeta > maxVars {
		return nil, fmt.Errorf("%w: %d meta entries", ErrLimit, nmeta)
	}
	for i := uint64(0); i < nmeta; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.str()
		if err != nil {
			return nil, err
		}
		s.Meta[k] = v
	}
	if r.rem() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.rem())
	}
	return s, nil
}

// EncodeValue implements Codec.
func (Portable) EncodeValue(v state.Value) ([]byte, error) {
	var buf bytes.Buffer
	w := newWriter(&buf)
	if err := w.value(v, 0); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeValue implements Codec.
func (Portable) DecodeValue(data []byte) (state.Value, error) {
	r := newReader(data)
	v, err := r.value(0)
	if err != nil {
		return state.Value{}, err
	}
	if r.rem() != 0 {
		return state.Value{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.rem())
	}
	return v, nil
}

// ---- low-level writer ----

type writer struct {
	w   *bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func newWriter(buf *bytes.Buffer) *writer { return &writer{w: buf} }

func (w *writer) uvarint(u uint64) {
	n := binary.PutUvarint(w.tmp[:], u)
	w.w.Write(w.tmp[:n])
}

func (w *writer) varint(i int64) {
	n := binary.PutVarint(w.tmp[:], i)
	w.w.Write(w.tmp[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.w.WriteString(s)
}

func (w *writer) value(v state.Value, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("codec: value nested deeper than %d", maxDepth)
	}
	w.w.WriteByte(byte(v.Kind))
	switch v.Kind {
	case state.KindBool:
		if v.Bool {
			w.w.WriteByte(1)
		} else {
			w.w.WriteByte(0)
		}
	case state.KindInt:
		w.varint(v.Int)
	case state.KindFloat:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Float))
		w.w.Write(b[:])
	case state.KindString:
		w.str(v.Str)
	case state.KindList:
		w.uvarint(uint64(len(v.List)))
		for _, e := range v.List {
			if err := w.value(e, depth+1); err != nil {
				return err
			}
		}
	case state.KindStruct:
		w.str(v.Type)
		w.uvarint(uint64(len(v.Fields)))
		for _, f := range v.Fields {
			w.str(f.Name)
			if err := w.value(f.Value, depth+1); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("codec: cannot encode value of kind %v", v.Kind)
	}
	return nil
}

// ---- low-level reader ----

type reader struct {
	data []byte
	off  int
}

func newReader(data []byte) *reader { return &reader{data: data} }

func (r *reader) rem() int { return len(r.data) - r.off }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, ErrTruncated
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.rem() < n {
		return nil, ErrTruncated
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: uvarint overflow", ErrCorrupt)
	}
	r.off += n
	return u, nil
}

func (r *reader) varint() (int64, error) {
	i, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
	}
	r.off += n
	return i, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string of %d bytes", ErrLimit, n)
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) value(depth int) (state.Value, error) {
	if depth > maxDepth {
		return state.Value{}, fmt.Errorf("%w: value nested deeper than %d", ErrLimit, maxDepth)
	}
	kb, err := r.byte()
	if err != nil {
		return state.Value{}, err
	}
	v := state.Value{Kind: state.Kind(kb)}
	switch v.Kind {
	case state.KindBool:
		b, err := r.byte()
		if err != nil {
			return state.Value{}, err
		}
		if b > 1 {
			return state.Value{}, fmt.Errorf("%w: bool byte %d", ErrCorrupt, b)
		}
		v.Bool = b == 1
	case state.KindInt:
		if v.Int, err = r.varint(); err != nil {
			return state.Value{}, err
		}
	case state.KindFloat:
		b, err := r.take(8)
		if err != nil {
			return state.Value{}, err
		}
		v.Float = math.Float64frombits(binary.BigEndian.Uint64(b))
	case state.KindString:
		if v.Str, err = r.str(); err != nil {
			return state.Value{}, err
		}
	case state.KindList:
		n, err := r.uvarint()
		if err != nil {
			return state.Value{}, err
		}
		if n > maxListLen {
			return state.Value{}, fmt.Errorf("%w: list of %d", ErrLimit, n)
		}
		if n > 0 {
			v.List = make([]state.Value, n)
			for i := range v.List {
				if v.List[i], err = r.value(depth + 1); err != nil {
					return state.Value{}, err
				}
			}
		}
	case state.KindStruct:
		if v.Type, err = r.str(); err != nil {
			return state.Value{}, err
		}
		n, err := r.uvarint()
		if err != nil {
			return state.Value{}, err
		}
		if n > maxVars {
			return state.Value{}, fmt.Errorf("%w: struct of %d fields", ErrLimit, n)
		}
		if n > 0 {
			v.Fields = make([]state.Field, n)
			for i := range v.Fields {
				if v.Fields[i].Name, err = r.str(); err != nil {
					return state.Value{}, err
				}
				if v.Fields[i].Value, err = r.value(depth + 1); err != nil {
					return state.Value{}, err
				}
			}
		}
	default:
		return state.Value{}, fmt.Errorf("%w: unknown kind byte %d", ErrCorrupt, kb)
	}
	return v, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort: metadata maps are tiny and this avoids an import.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// WriteTo streams an encoded state to w with a length prefix, for TCP
// transports that need framing.
func WriteTo(w io.Writer, c Codec, s *state.State) error {
	data, err := c.EncodeState(s)
	if err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(data)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadFrom reads one length-prefixed encoded state from r.
func ReadFrom(r io.ByteReader, c Codec, readFull func([]byte) error) (*state.State, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxStringLen*4 {
		return nil, fmt.Errorf("%w: framed state of %d bytes", ErrLimit, n)
	}
	buf := make([]byte, n)
	if err := readFull(buf); err != nil {
		return nil, err
	}
	return c.DecodeState(buf)
}
