package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/state"
)

// Gob serializes abstract state with encoding/gob. Gob streams are
// self-describing and machine-independent, so they satisfy the paper's
// abstract-format requirement; the Portable codec exists because POLYLITH
// shipped its own coercion layer and because the two make an instructive
// ablation (experiment A1).
type Gob struct{}

var _ Codec = Gob{}

// Name implements Codec.
func (Gob) Name() string { return "gob" }

// EncodeState implements Codec.
func (Gob) EncodeState(s *state.State) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("codec: nil state")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("codec: gob encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState implements Codec.
func (Gob) DecodeState(data []byte) (*state.State, error) {
	var s state.State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: gob decode state: %v", ErrCorrupt, err)
	}
	if s.Meta == nil {
		s.Meta = map[string]string{}
	}
	return &s, nil
}

// EncodeValue implements Codec.
func (Gob) EncodeValue(v state.Value) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("codec: gob encode value: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeValue implements Codec.
func (Gob) DecodeValue(data []byte) (state.Value, error) {
	var v state.Value
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return state.Value{}, fmt.Errorf("%w: gob decode value: %v", ErrCorrupt, err)
	}
	return v, nil
}
