// Package codec serializes abstract process state (and bus messages) into
// machine-independent byte streams.
//
// Section 1.2 of the paper requires that "the characterization of the
// process state must be in an abstract, not machine-specific, format" so
// that modules can be moved across heterogeneous hosts. POLYLITH realized
// this with its own coercion layer; we provide two interchangeable codecs
// behind one interface:
//
//   - Portable: a hand-written, self-describing binary format (varint
//     integers, IEEE-754 big-endian floats, length-prefixed strings) with
//     hard decode limits. This is the default and the closest analogue of
//     POLYLITH's wire representation.
//   - Gob: encoding/gob, the stdlib's self-describing stream format.
//
// The two are benchmarked against each other in the top-level harness
// (experiment A1 in DESIGN.md).
package codec

import (
	"errors"
	"fmt"

	"repro/internal/state"
)

// Codec converts abstract state to and from bytes. Implementations must be
// safe for concurrent use.
type Codec interface {
	// Name identifies the codec ("portable", "gob").
	Name() string
	// EncodeState serializes s.
	EncodeState(s *state.State) ([]byte, error)
	// DecodeState parses a serialized state.
	DecodeState(data []byte) (*state.State, error)
	// EncodeValue serializes a single abstract value (bus message payload).
	EncodeValue(v state.Value) ([]byte, error)
	// DecodeValue parses a single abstract value.
	DecodeValue(data []byte) (state.Value, error)
}

// Decode limits guard against corrupt or hostile input.
const (
	maxStringLen = 1 << 24 // 16 MiB per string
	maxListLen   = 1 << 20
	maxFrames    = 1 << 16
	maxVars      = 1 << 12
	maxDepth     = 64
)

// Errors shared by the codec implementations.
var (
	// ErrTruncated indicates the input ended mid-value.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrCorrupt indicates structurally invalid input.
	ErrCorrupt = errors.New("codec: corrupt input")
	// ErrLimit indicates input exceeding a decode limit.
	ErrLimit = errors.New("codec: decode limit exceeded")
)

// ByName returns the named codec. Known names are "portable" and "gob".
func ByName(name string) (Codec, error) {
	switch name {
	case "portable", "":
		return Portable{}, nil
	case "gob":
		return Gob{}, nil
	default:
		return nil, fmt.Errorf("codec: unknown codec %q", name)
	}
}

// Default is the codec used when none is specified.
func Default() Codec { return Portable{} }

// ValidateFormat checks a Polylith-style format string ("iiF", "llF", ...)
// against a list of values, returning an error on arity or kind mismatch.
// The paper's mh_capture/mh_restore calls carry such strings; they are
// redundant with the self-describing encoding but retained as a programmer-
// visible contract, exactly as in Figure 4.
func ValidateFormat(format string, vals []state.Value) error {
	runes := []rune(format)
	if len(runes) != len(vals) {
		return fmt.Errorf("codec: format %q describes %d values, got %d", format, len(runes), len(vals))
	}
	for i, r := range runes {
		want, ok := state.KindForFormatRune(r)
		if !ok {
			return fmt.Errorf("codec: format %q has unknown specifier %q at %d", format, r, i)
		}
		if vals[i].Kind != want {
			return fmt.Errorf("codec: format %q position %d wants %v, got %v", format, i, want, vals[i].Kind)
		}
	}
	return nil
}

// FormatFor derives the format string describing vals.
func FormatFor(vals []state.Value) (string, error) {
	out := make([]rune, len(vals))
	for i, v := range vals {
		r, ok := v.Kind.FormatRune()
		if !ok {
			return "", fmt.Errorf("codec: value %d has unencodable kind %v", i, v.Kind)
		}
		out[i] = r
	}
	return string(out), nil
}
