package reconfig

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bus"
)

// ErrReconfigBusy reports that another transactional reconfiguration is in
// progress on the same primitive set. Scripts fail fast rather than
// interleave: the paper's model has a single reconfiguration authority.
var ErrReconfigBusy = errors.New("reconfig: another reconfiguration is in progress")

// Timeouts bounds every wait a transactional script performs. The zero
// value of any field means its default (30s, the classic mh timeout).
type Timeouts struct {
	// StateMove bounds the wait for the old module to reach a
	// reconfiguration point and divulge its state.
	StateMove time.Duration
	// RestoreAck bounds the wait for the launched clone to confirm its
	// restoration — the transaction's commit gate.
	RestoreAck time.Duration
	// Rollback bounds each waiting compensation during an abort (chiefly
	// the resurrected module's restore confirmation).
	Rollback time.Duration
	// Quiesce bounds quiescence waits in the no-participation baseline.
	Quiesce time.Duration
}

// DefaultTimeouts returns the standard bounds.
func DefaultTimeouts() Timeouts {
	const d = 30 * time.Second
	return Timeouts{StateMove: d, RestoreAck: d, Rollback: d, Quiesce: d}
}

// WithDefaults fills zero fields from DefaultTimeouts.
func (t Timeouts) WithDefaults() Timeouts {
	d := DefaultTimeouts()
	if t.StateMove <= 0 {
		t.StateMove = d.StateMove
	}
	if t.RestoreAck <= 0 {
		t.RestoreAck = d.RestoreAck
	}
	if t.Rollback <= 0 {
		t.Rollback = d.Rollback
	}
	if t.Quiesce <= 0 {
		t.Quiesce = d.Quiesce
	}
	return t
}

// divulgeGrace is how long an aborting transaction waits for a divulge that
// may already be in flight before concluding the old module never captured.
// A module signaled just before the abort may be past its flag check; its
// state then arrives within the grace window and the abort resurrects it
// instead of cancelling.
const divulgeGrace = 250 * time.Millisecond

// replacePlan is the precomputed forward path of one replacement: the clone
// specification, the atomic rebinding batch (queue moves included, queue
// drops excluded — those are destructive and run after the commit point),
// the old module's receiving interfaces, and the audit-trace lines the
// batch construction corresponds to.
type replacePlan struct {
	spec  bus.InstanceSpec
	edits []bus.BindEdit
	recv  []string
	lines []string
}

// buildReplacePlan computes the plan from the live configuration without
// mutating anything. Both the transaction and the dry-run use it.
func buildReplacePlan(b *bus.Bus, info bus.InstanceInfo, old string, opts ReplaceOptions) (*replacePlan, error) {
	plan := &replacePlan{}
	plan.spec = bus.InstanceSpec{
		Name:       opts.NewName,
		Module:     info.Module,
		Machine:    info.Machine,
		Status:     bus.StatusClone,
		Interfaces: info.Interfaces,
		Attrs:      map[string]string{},
	}
	for k, v := range info.Attrs {
		plan.spec.Attrs[k] = v
	}
	for k, v := range opts.Attrs {
		plan.spec.Attrs[k] = v
	}
	if opts.Machine != "" {
		plan.spec.Machine = opts.Machine
	}
	if opts.Module != "" {
		plan.spec.Module = opts.Module
	}

	// For every interface, replace bindings to the old instance with
	// bindings to the new one and move the old instance's queued messages
	// across ("cq"). Bindings on bidirectional interfaces surface both as
	// a destination and as a source; each is rebound once.
	plan.lines = append(plan.lines, "bind_cap")
	rebound := map[string]bool{}
	bindKey := func(a, b bus.Endpoint) string {
		if b.String() < a.String() {
			a, b = b, a
		}
		return a.String() + "|" + b.String()
	}
	edit := func(op string, from, to bus.Endpoint) {
		plan.edits = append(plan.edits, bus.BindEdit{Op: op, From: from, To: to})
		plan.lines = append(plan.lines, fmt.Sprintf("edit_bind %s %s %s", op, from, to))
	}
	for _, ifc := range info.Interfaces {
		oldEp := bus.Endpoint{Instance: old, Interface: ifc.Name}
		newEp := bus.Endpoint{Instance: opts.NewName, Interface: ifc.Name}
		if ifc.Dir.Sends() {
			dests, err := b.IfDest(oldEp)
			if err != nil {
				return nil, fmt.Errorf("reconfig: struct_ifdest %s: %w", oldEp, err)
			}
			plan.lines = append(plan.lines, fmt.Sprintf("struct_ifdest %s -> %d", oldEp, len(dests)))
			for _, d := range dests {
				if rebound[bindKey(oldEp, d)] {
					continue
				}
				rebound[bindKey(oldEp, d)] = true
				edit("del", oldEp, d)
				edit("add", newEp, d)
			}
		}
		if ifc.Dir.Receives() {
			sources, err := b.IfSources(oldEp)
			if err != nil {
				return nil, fmt.Errorf("reconfig: struct_ifsources %s: %w", oldEp, err)
			}
			plan.lines = append(plan.lines, fmt.Sprintf("struct_ifsources %s -> %d", oldEp, len(sources)))
			for _, s := range sources {
				if rebound[bindKey(s, oldEp)] {
					continue
				}
				rebound[bindKey(s, oldEp)] = true
				edit("del", s, oldEp)
				edit("add", s, newEp)
			}
			edit("cq", oldEp, newEp)
			plan.recv = append(plan.recv, ifc.Name)
		}
	}
	return plan, nil
}

// inverseEdits returns the batch that undoes edits: reverse order, add and
// del swapped, queue moves reversed. Queue drops never appear in a
// transactional batch (they are post-commit), so every edit has an inverse.
func inverseEdits(edits []bus.BindEdit) []bus.BindEdit {
	inv := make([]bus.BindEdit, 0, len(edits))
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		switch e.Op {
		case "add":
			inv = append(inv, bus.BindEdit{Op: "del", From: e.From, To: e.To})
		case "del":
			inv = append(inv, bus.BindEdit{Op: "add", From: e.From, To: e.To})
		case "cq":
			inv = append(inv, bus.BindEdit{Op: "cq", From: e.To, To: e.From})
		}
	}
	return inv
}

// oldRelease carries what the abort path knows about the old module: whether
// it already divulged (in which case it has exited and must be
// resurrected), its encoded state, and its pre-transaction status.
type oldRelease struct {
	divulged   bool
	state      []byte
	origStatus string
}

// releaseOld returns the old module to service during an abort.
//
// If the module never divulged, the reconfiguration request is retracted
// (SignalCancel) and the module, which never left its main loop, resumes
// untouched. A module signaled just before the abort may already be
// capturing, so a short grace wait for its state precedes the decision;
// a divulge that lands after the grace window is an inherent race — the
// cancel arrives at a module that has already exited and is lost.
//
// If the module did divulge, it has exited: it is resurrected as a clone of
// itself — the instance is reset, its own divulged state is reinstalled,
// and the module is relaunched to restore itself and resume at the
// reconfiguration point where it stopped. Its status then returns to the
// pre-transaction value.
func releaseOld(p *Primitives, launcher Launcher, old string, st *oldRelease, t Timeouts) error {
	if !st.divulged {
		if owner, err := p.bus.AwaitDivulged(old, divulgeGrace); err == nil {
			st.divulged = true
			st.state = owner.Data()
		}
	}
	if !st.divulged {
		return p.bus.CancelReconfig(old)
	}
	if launcher == nil {
		return fmt.Errorf("reconfig: release %s: module divulged but no launcher to resurrect it", old)
	}
	if err := p.bus.ResetForRelaunch(old); err != nil {
		return err
	}
	if err := p.bus.InstallState(old, st.state); err != nil {
		return err
	}
	if err := launcher.Launch(old); err != nil {
		return err
	}
	if err := p.bus.AwaitRestored(old, t.Rollback); err != nil {
		return err
	}
	return p.bus.SetStatus(old, st.origStatus)
}

// ReplaceTx performs the Figure 5 replacement script as a transaction.
//
// Each forward primitive journals its compensating inverse; any step
// failure replays the journal in reverse — restore the bindings and return
// the moved queue contents (inverse rebind), release the old module (cancel
// the request, or resurrect it from its divulged state), delete the clone —
// leaving the application answering traffic through the original module
// with the pre-transaction configuration.
//
// The commit point is the clone's restore confirmation: only a replacement
// that demonstrably answers for its state runs the destructive tail
// (dropping the old module's residual queue and deleting it). Destructive
// steps are thereby never journaled and never need compensation.
func ReplaceTx(p *Primitives, launcher Launcher, old string, opts ReplaceOptions) (*TxResult, error) {
	res := &TxResult{}
	fail := func(err error) (*TxResult, error) {
		res.Err = err
		return res, err
	}
	if opts.NewName == "" {
		return fail(fmt.Errorf("reconfig: replace %s: NewName required", old))
	}
	if opts.NewName == old {
		return fail(fmt.Errorf("reconfig: replace %s: NewName must differ", old))
	}
	t := opts.Timeouts.WithDefaults()
	if opts.Timeout > 0 {
		t.StateMove = opts.Timeout
	}
	if !p.txMu.TryLock() {
		return fail(fmt.Errorf("reconfig: replace %s: %w", old, ErrReconfigBusy))
	}
	defer p.txMu.Unlock()
	p.active.Store(true)
	defer p.active.Store(false)

	// Open the span timeline for this transaction. With no tracer attached
	// every tx call below is a no-op and TxID stays empty.
	tx := p.tracer.Begin(fmt.Sprintf("replace %s -> %s", old, opts.NewName))
	res.TxID = tx.ID()

	mark := p.traceMark()
	j := &journal{}
	abort := func(stepErr error) (*TxResult, error) {
		tx.StartSpan("rollback")
		res.Steps = p.traceSince(mark)
		res.Err = stepErr
		res.RolledBack = true
		res.Rollback = j.rollback()
		// A failed script must never leave a module frozen: release any
		// quiescence guard the caller holds around the reconfiguration.
		for _, g := range opts.Guards {
			if g != nil && g.Holding() {
				g.Release()
				res.Rollback = append(res.Rollback, RollbackStep{Action: "release_guard"})
			}
		}
		tx.Finish("rolled-back", res.Steps)
		return res, fmt.Errorf("reconfig: replace %s rolled back: %w", old, stepErr)
	}

	// Access the old module's current specification and precompute the
	// whole forward path from it.
	tx.StartSpan("plan")
	info, err := p.ObjCap(old)
	if err != nil {
		return abort(err)
	}
	plan, err := buildReplacePlan(p.bus, info, old, opts)
	if err != nil {
		return abort(err)
	}

	// Register the clone.
	tx.StartSpan("add_clone")
	if err := p.AddObj(plan.spec); err != nil {
		return abort(err)
	}
	j.record("delete_clone", func() error { return p.bus.DeleteInstance(opts.NewName) })
	for _, line := range plan.lines {
		p.log("%s", line)
	}

	// Ask the old module to divulge at its next reconfiguration point and
	// wait for its state. The quiesce_wait span is the paper's interruption
	// latency: the old module runs until its next reconfiguration point.
	st := &oldRelease{origStatus: info.Status}
	tx.StartSpan("quiesce_wait")
	if err := p.SignalReconfig(old); err != nil {
		return abort(err)
	}
	j.record("release_old", func() error { return releaseOld(p, launcher, old, st, t) })
	// Snapshot what the quiesce is waiting on: the messages still queued
	// toward the old module, with their trace IDs and in-flight ages, so
	// `trace <txid>` can explain a long quiesce_wait span.
	if qm, err := p.bus.QueuedMessages(old); err == nil {
		const maxNotes = 16
		for i, m := range qm {
			if i == maxNotes {
				tx.Annotate(fmt.Sprintf("... and %d more queued messages", len(qm)-maxNotes))
				break
			}
			if m.Trace.Valid() {
				tx.Annotate(fmt.Sprintf("queued %s trace=0x%x age=%.3fms", m.Endpoint, m.Trace.TraceID, float64(m.AgeNs)/1e6))
			} else {
				tx.Annotate(fmt.Sprintf("queued %s (untraced)", m.Endpoint))
			}
		}
	}
	data, err := p.AwaitDivulged(old, t.StateMove)
	if err != nil {
		return abort(err)
	}
	st.divulged, st.state = true, data
	tx.StartSpan("state_move")
	if err := p.InstallState(opts.NewName, data); err != nil {
		return abort(err)
	}

	// Apply the rebinding commands all at once, then start the clone.
	tx.StartSpan("rebind")
	batch := &BindBatch{edits: plan.edits}
	if err := p.Rebind(batch); err != nil {
		return abort(err)
	}
	j.record("inverse_rebind", func() error { return p.bus.Rebind(inverseEdits(plan.edits)) })
	tx.StartSpan("launch")
	if err := p.ChgObj(launcher, opts.NewName, "add"); err != nil {
		return abort(err)
	}

	// Commit gate: the clone must confirm it rebuilt the divulged state
	// and resumed before the old configuration is destroyed.
	tx.StartSpan("restore_wait")
	if err := p.AwaitRestored(opts.NewName, t.RestoreAck); err != nil {
		return abort(err)
	}

	// Health note: record the windowed candidate-vs-incumbent verdict in
	// the transaction trace while both instances still exist. This is the
	// paper's "operator observes the replacement" step landing in the
	// span timeline rather than on a terminal.
	if opts.HealthNote != nil {
		tx.StartSpan("health_check")
		tx.Annotate("health_check " + opts.HealthNote(old, opts.NewName))
	}

	// Pre-flight gate: the restored clone is vetted against recorded
	// traffic (or whatever check the caller supplied) while every step is
	// still journaled — a veto aborts through the same rollback as any
	// step failure, so a divergent candidate never reaches commit.
	if opts.Preflight != nil {
		tx.StartSpan("preflight_replay")
		if err := p.bus.Faults().Fire("reconfig.preflight"); err != nil {
			return abort(fmt.Errorf("preflight %s -> %s: %w", old, opts.NewName, err))
		}
		if err := opts.Preflight(old, opts.NewName); err != nil {
			return abort(fmt.Errorf("preflight %s -> %s: %w", old, opts.NewName, err))
		}
	}
	j.discard()
	res.Committed = true
	tx.StartSpan("commit_tail")

	// Destructive tail: drop what remains in the old module's queues and
	// delete it. Failures here cannot (and must not) roll the replacement
	// back; they are reported for operator cleanup.
	var tailErr error
	for _, name := range plan.recv {
		if _, err := p.DrainQueue(bus.Endpoint{Instance: old, Interface: name}); err != nil && tailErr == nil {
			tailErr = err
		}
	}
	if err := p.ChgObj(nil, old, "del"); err != nil && tailErr == nil {
		tailErr = err
	}
	res.Steps = p.traceSince(mark)
	tx.Finish("committed", res.Steps)
	if tailErr != nil {
		res.Err = fmt.Errorf("reconfig: replace %s committed, cleanup failed: %w", old, tailErr)
		return res, res.Err
	}
	return res, nil
}

// PlanReplace returns the forward step sequence ReplaceTx would perform,
// without executing any of it — the dry-run behind reconfigctl's -dry-run.
// The "commit" line marks the commit point: a failure above it rolls back;
// the destructive steps below it only run after the clone confirms.
func PlanReplace(p *Primitives, old string, opts ReplaceOptions) ([]string, error) {
	if opts.NewName == "" {
		return nil, fmt.Errorf("reconfig: plan replace %s: NewName required", old)
	}
	if opts.NewName == old {
		return nil, fmt.Errorf("reconfig: plan replace %s: NewName must differ", old)
	}
	info, err := p.bus.Info(old)
	if err != nil {
		return nil, fmt.Errorf("reconfig: plan replace %s: %w", old, err)
	}
	plan, err := buildReplacePlan(p.bus, info, old, opts)
	if err != nil {
		return nil, err
	}
	steps := []string{
		fmt.Sprintf("obj_cap %s", old),
		fmt.Sprintf("add_obj %s (module %s, machine %s, status %s)",
			plan.spec.Name, plan.spec.Module, plan.spec.Machine, plan.spec.Status),
	}
	steps = append(steps, plan.lines...)
	steps = append(steps,
		fmt.Sprintf("signal_reconfig %s", old),
		fmt.Sprintf("await_divulged %s", old),
		fmt.Sprintf("install_state %s", opts.NewName),
		fmt.Sprintf("rebind (%d edits)", len(plan.edits)),
		fmt.Sprintf("chg_obj %s add", opts.NewName),
		fmt.Sprintf("await_restored %s", opts.NewName),
		"commit",
	)
	for _, name := range plan.recv {
		steps = append(steps, fmt.Sprintf("drain_queue %s", bus.Endpoint{Instance: old, Interface: name}))
	}
	steps = append(steps, fmt.Sprintf("chg_obj %s del", old))
	return steps, nil
}
