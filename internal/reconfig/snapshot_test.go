package reconfig

import (
	"reflect"
	"testing"

	"repro/internal/bus"
)

// TestRebindSnapshotEpochs pins the reconfiguration layer's contract with
// the bus's routing snapshots: every applied batch publishes exactly one
// successor epoch, a rejected batch publishes nothing, and the journal's
// inverse batch restores the pre-transaction topology under a *fresh*
// epoch — rollback installs a prior snapshot, it does not rewind the
// version counter.
func TestRebindSnapshotEpochs(t *testing.T) {
	w := newMonitorWorld(t)
	p := w.p
	if err := p.AddObj(bus.InstanceSpec{
		Name: "compute2", Module: "compute", Machine: "machineB", Status: bus.StatusClone,
		Interfaces: []bus.IfaceSpec{{Name: "display", Dir: bus.InOut}, {Name: "sensor", Dir: bus.In}},
	}); err != nil {
		t.Fatal(err)
	}

	preBindings := w.b.Bindings()
	preVersion := w.b.Routing().Version()

	// The Figure 5 rebind of a replacement: move both bindings and carry
	// the queued messages over.
	batch := p.BindCap()
	p.EditBind(batch, "del", bus.Endpoint{Instance: "display", Interface: "temper"}, bus.Endpoint{Instance: "compute", Interface: "display"})
	p.EditBind(batch, "add", bus.Endpoint{Instance: "display", Interface: "temper"}, bus.Endpoint{Instance: "compute2", Interface: "display"})
	p.EditBind(batch, "del", bus.Endpoint{Instance: "sensor", Interface: "out"}, bus.Endpoint{Instance: "compute", Interface: "sensor"})
	p.EditBind(batch, "add", bus.Endpoint{Instance: "sensor", Interface: "out"}, bus.Endpoint{Instance: "compute2", Interface: "sensor"})
	p.EditBind(batch, "cq", bus.Endpoint{Instance: "compute", Interface: "display"}, bus.Endpoint{Instance: "compute2", Interface: "display"})
	if err := p.Rebind(batch); err != nil {
		t.Fatal(err)
	}
	mid := w.b.Routing().Version()
	if mid != preVersion+1 {
		t.Fatalf("rebind published %d epochs, want exactly 1 (version %d -> %d)", mid-preVersion, preVersion, mid)
	}

	// A batch that fails validation must leave both the topology and the
	// epoch untouched — no phantom snapshot for a rejected transaction.
	bad := p.BindCap()
	p.EditBind(bad, "del", bus.Endpoint{Instance: "display", Interface: "temper"}, bus.Endpoint{Instance: "compute2", Interface: "display"})
	p.EditBind(bad, "add", bus.Endpoint{Instance: "display", Interface: "temper"}, bus.Endpoint{Instance: "nosuch", Interface: "in"})
	if err := p.Rebind(bad); err == nil {
		t.Fatal("rebind with unknown target succeeded")
	}
	if v := w.b.Routing().Version(); v != mid {
		t.Fatalf("failed rebind moved the epoch: %d -> %d", mid, v)
	}

	// The abort path: applying the journal's inverse batch restores the
	// pre-transaction bindings exactly, on a newer snapshot.
	if err := p.Rebind(&BindBatch{edits: inverseEdits(batch.edits)}); err != nil {
		t.Fatal(err)
	}
	if got := w.b.Bindings(); !reflect.DeepEqual(got, preBindings) {
		t.Fatalf("inverse rebind did not restore bindings:\n got %v\nwant %v", got, preBindings)
	}
	if v := w.b.Routing().Version(); v != mid+1 {
		t.Fatalf("inverse rebind version = %d, want %d", v, mid+1)
	}
}
