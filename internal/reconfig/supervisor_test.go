package reconfig

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/mh"
	"repro/internal/state"
)

// replicaWorld is the supervisor test harness: a 3-member replica group
// "pool" of accumulator workers between a source and a sink, with host-side
// kill/wedge switches standing in for real crashes.
type replicaWorld struct {
	t   *testing.T
	b   *bus.Bus
	p   *Primitives
	sup *Supervisor
	c   codec.Codec
	src bus.Port
	snk bus.Port

	mu          sync.Mutex
	killed      map[string]bool
	wedged      map[string]bool
	failRestore bool // clones die before confirming their restoration
	now         time.Time
}

func newReplicaWorld(t *testing.T) *replicaWorld {
	t.Helper()
	b := bus.New()
	w := &replicaWorld{
		t: t, b: b, p: NewPrimitives(b), c: codec.Default(),
		killed: map[string]bool{}, wedged: map[string]bool{},
		now: time.Unix(1000, 0),
	}
	shape := []bus.IfaceSpec{{Name: "in", Dir: bus.In}, {Name: "out", Dir: bus.Out}}
	if err := b.AddGroup("pool", bus.PolicyRoundRobin, shape); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"pool.1", "pool.2", "pool.3"} {
		if err := b.AddInstance(bus.InstanceSpec{Name: m, Module: "worker", Interfaces: shape}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddGroupMember("pool", m); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddInstance(bus.InstanceSpec{Name: "src", Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(bus.InstanceSpec{Name: "snk", Interfaces: []bus.IfaceSpec{{Name: "in", Dir: bus.In}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(bus.Endpoint{Instance: "src", Interface: "out"}, bus.Endpoint{Instance: "pool", Interface: "in"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(bus.Endpoint{Instance: "pool", Interface: "out"}, bus.Endpoint{Instance: "snk", Interface: "in"}); err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(w.p, w, SupervisorConfig{
		Group:      "pool",
		StallAfter: 100 * time.Millisecond,
		Timeouts:   Timeouts{RestoreAck: 2 * time.Second},
		Now:        w.clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.sup = sup
	for _, m := range []string{"pool.1", "pool.2", "pool.3"} {
		if err := w.Launch(m); err != nil {
			t.Fatal(err)
		}
	}
	if w.src, err = b.Attach("src"); err != nil {
		t.Fatal(err)
	}
	if w.snk, err = b.Attach("snk"); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *replicaWorld) clock() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

func (w *replicaWorld) advance(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.now = w.now.Add(d)
}

func (w *replicaWorld) flag(m map[string]bool, name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return m[name]
}

func (w *replicaWorld) setFlag(m map[string]bool, name string, v bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m[name] = v
}

// Launch implements Launcher: each worker is an accumulator that checkpoints
// every 2 operations into the supervisor.
func (w *replicaWorld) Launch(name string) error {
	port, err := w.b.Attach(name)
	if err != nil {
		return err
	}
	rt := mh.New(port,
		mh.WithSleepUnit(time.Microsecond),
		mh.WithLogWriter(nil),
		mh.WithCheckpoint(2, w.sup.Checkpoint))
	w.sup.RegisterHeartbeat(name, rt.Ops)
	go func() { //archlint:spawn test replica worker; exits on kill switch or instance delete
		w.runWorker(name, rt)
	}()
	return nil
}

func (w *replicaWorld) runWorker(name string, rt *mh.Runtime) {
	killed := false
	mh.Run(func() {
		rt.Init()
		var sum, loc int
		if rt.Status() == bus.StatusClone {
			if w.failRestoring() {
				return // crash before confirming restoration
			}
			rt.Decode()
			rt.Restore("main", "", &loc, &sum)
			rt.FinishRestore()
		}
		rt.RegisterSnapshot(func() (*state.State, error) {
			st := state.New(name)
			st.PushFrame(state.Frame{Func: "main", Location: 1,
				Vars: []state.Var{{Name: "sum", Value: state.IntValue(int64(sum))}}})
			return st, nil
		})
		for {
			if w.flag(w.killed, name) {
				killed = true
				return
			}
			if w.flag(w.wedged, name) {
				rt.Sleep(1) // alive but consuming nothing: a stall
				continue
			}
			if rt.QueryIfMsgs("in") {
				var n int
				rt.Read("in", &n)
				sum += n
				rt.Write("out", sum)
			} else {
				rt.Sleep(1)
			}
		}
	})
	// A clone that died before confirming must still unblock the
	// coordinator's restore wait.
	rt.ConfirmRestoreOutcome(errors.New("worker exited before restoring"))
	if killed {
		w.sup.ReportExit(name, errors.New("killed"))
	}
}

func (w *replicaWorld) failRestoring() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failRestore
}

func (w *replicaWorld) send(n int) {
	w.t.Helper()
	data, err := w.c.EncodeValue(state.IntValue(int64(n)))
	if err != nil {
		w.t.Fatal(err)
	}
	if err := w.src.Write("out", data); err != nil {
		w.t.Fatal(err)
	}
}

// awaitSink blocks until the sink has received n more messages.
func (w *replicaWorld) awaitSink(n int) {
	w.t.Helper()
	for i := 0; i < n; i++ {
		if _, err := w.snk.Read("in"); err != nil {
			w.t.Fatal(err)
		}
	}
}

// waitFor polls cond (interleaved with supervisor polls) until it holds.
func (w *replicaWorld) waitFor(what string, cond func() bool) {
	w.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		w.sup.Poll()
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	w.t.Fatalf("timed out waiting for %s (stats %+v, members %v)", what, w.sup.Stats(), w.members())
}

func (w *replicaWorld) members() []string {
	ms, err := w.b.GroupMembers("pool")
	if err != nil {
		w.t.Fatal(err)
	}
	return ms
}

func TestSupervisorHealsCrashedReplica(t *testing.T) {
	w := newReplicaWorld(t)
	for i := 1; i <= 9; i++ {
		w.send(i)
	}
	w.awaitSink(9) // every member has processed and checkpointed
	w.setFlag(w.killed, "pool.2", true)
	w.waitFor("crash recovery", func() bool { return w.sup.Stats().Recovered == 1 })

	ms := w.members()
	if len(ms) != 3 {
		t.Fatalf("members after heal = %v", ms)
	}
	for _, m := range ms {
		if m == "pool.2" {
			t.Fatal("dead member still in group")
		}
	}
	// The group keeps answering traffic through the healed set.
	for i := 0; i < 6; i++ {
		w.send(1)
	}
	w.awaitSink(6)
	st := w.sup.Status()
	if st.Policy != bus.PolicyRoundRobin || len(st.Members) != 3 || len(st.Pending) != 0 {
		t.Errorf("status = %+v", st)
	}
	if st.Stats.Failed != 0 {
		t.Errorf("unexpected failed rebuilds: %+v", st.Stats)
	}
}

func TestSupervisorFlappingDoesNotOverlapTransactions(t *testing.T) {
	w := newReplicaWorld(t)
	for i := 1; i <= 6; i++ {
		w.send(i)
	}
	w.awaitSink(6)

	// An operator reconfiguration is in flight: the supervisor's rebuild
	// must be refused (ErrReconfigBusy) and retried, never overlapped.
	w.p.txMu.Lock()
	w.setFlag(w.killed, "pool.1", true)
	w.waitFor("mark-out", func() bool { return len(w.members()) == 2 })
	// Duplicate crash reports for a member already being handled are inert.
	w.sup.ReportExit("pool.1", errors.New("flap"))
	w.sup.ReportExit("pool.1", errors.New("flap again"))

	w.waitFor("busy retries", func() bool { return w.sup.Stats().RetriesBusy >= 2 })
	st := w.sup.Stats()
	if st.Detected != 1 {
		t.Errorf("Detected = %d, want 1 (flap reports deduplicated)", st.Detected)
	}
	if st.Recovered != 0 {
		t.Error("rebuild committed while another reconfiguration held the lock")
	}
	// No clone instance leaked from the refused attempts.
	for _, name := range w.b.Instances() {
		if name != "pool.2" && name != "pool.3" && name != "pool.1" && name != "src" && name != "snk" {
			t.Errorf("leaked instance %s", name)
		}
	}

	w.p.txMu.Unlock()
	w.waitFor("recovery after release", func() bool { return w.sup.Stats().Recovered == 1 })
	if ms := w.members(); len(ms) != 3 {
		t.Fatalf("members = %v", ms)
	}
	for i := 0; i < 6; i++ {
		w.send(1)
	}
	w.awaitSink(6)
}

func TestSupervisorStallDetectionFakeClock(t *testing.T) {
	w := newReplicaWorld(t)
	for i := 1; i <= 6; i++ {
		w.send(i)
	}
	w.awaitSink(6)

	// Baseline poll: records every member's heartbeat at t0.
	w.sup.Poll()
	if got := w.sup.Stats().Detected; got != 0 {
		t.Fatalf("false positive before stall: Detected = %d", got)
	}

	// Wedge pool.3: its goroutine stays alive but consumes nothing, so its
	// share of the round-robin fan-in backs up.
	w.setFlag(w.wedged, "pool.3", true)
	for i := 0; i < 12; i++ {
		w.send(1)
	}
	// The survivors drain their 8 before the next poll, so only the wedged
	// member shows a still counter with queued input.
	w.awaitSink(8)
	// Inside the stall window nothing is declared dead yet.
	w.advance(50 * time.Millisecond)
	w.sup.Poll()
	if got := w.sup.Stats().Detected; got != 0 {
		t.Fatalf("stall declared inside the window: Detected = %d", got)
	}
	// Past the window the wedged member (stalled counter + queued input)
	// is marked out and rebuilt; idle-but-healthy members are not.
	w.advance(200 * time.Millisecond)
	w.waitFor("stall recovery", func() bool { return w.sup.Stats().Recovered == 1 })
	for _, m := range w.members() {
		if m == "pool.3" {
			t.Fatal("wedged member still in group")
		}
	}
	if got := w.sup.Stats().Detected; got != 1 {
		t.Errorf("Detected = %d, want 1", got)
	}
	// No message was lost: the wedged member's backlog drained to the
	// survivors at mark-out.
	w.awaitSink(4)
}

func TestSupervisorReplicaDyingDuringRecoveryConverges(t *testing.T) {
	w := newReplicaWorld(t)
	for i := 1; i <= 6; i++ {
		w.send(i)
	}
	w.awaitSink(6)

	w.mu.Lock()
	w.failRestore = true
	w.mu.Unlock()
	w.setFlag(w.killed, "pool.2", true)
	w.waitFor("failed rebuild", func() bool { return w.sup.Stats().Failed >= 1 })
	if len(w.members()) != 2 {
		t.Fatalf("members during failed recovery = %v", w.members())
	}
	if w.sup.Stats().Recovered != 0 {
		t.Fatal("recovery reported success while clones were dying")
	}

	// The fault clears; the next poll's attempt (fresh generation name)
	// converges back to 3 members.
	w.mu.Lock()
	w.failRestore = false
	w.mu.Unlock()
	w.waitFor("convergence", func() bool { return w.sup.Stats().Recovered == 1 })
	if ms := w.members(); len(ms) != 3 {
		t.Fatalf("members = %v", ms)
	}
	st := w.sup.Status()
	if len(st.Pending) != 0 {
		t.Errorf("pending after convergence: %v", st.Pending)
	}
	if st.Stats.LastError != "" {
		t.Errorf("LastError not cleared: %q", st.Stats.LastError)
	}
	for i := 0; i < 6; i++ {
		w.send(1)
	}
	w.awaitSink(6)
}
