package reconfig

import (
	"time"

	"repro/internal/bus"
	"repro/internal/quiesce"
)

// ReplaceOptions parameterizes the replacement script. The paper: "This
// reconfiguration script is easily parameterized to accept a module name
// and attributes. The parameterized reconfiguration script could be used to
// replace a module in any application, provided the module had been
// prepared to participate during reconfiguration."
type ReplaceOptions struct {
	// NewName names the replacement instance (required: instance names
	// are unique while both exist).
	NewName string
	// Machine places the replacement; empty keeps the old placement —
	// i.e. in-place replacement for maintenance; a different machine is
	// the paper's migration.
	Machine string
	// Module optionally substitutes a different module implementation
	// (software maintenance: v2 replacing v1). Empty keeps the module.
	Module string
	// Timeout bounds the wait for the old module to reach a
	// reconfiguration point and divulge. It predates Timeouts and, when
	// set, overrides Timeouts.StateMove.
	Timeout time.Duration
	// Timeouts bounds every wait of the transaction; zero fields take
	// DefaultTimeouts.
	Timeouts Timeouts
	// Attrs optionally extends the new instance's attributes.
	Attrs map[string]string
	// Guards lists quiescence guards the caller holds around the
	// reconfiguration. An aborting transaction releases any still held,
	// so a failed script never leaves a module frozen.
	Guards []*quiesce.Guard
	// Preflight, when set, runs between the clone's restore confirmation
	// and the commit point — the last moment the transaction is still
	// fully reversible. A non-nil error vetoes the cutover: the
	// transaction aborts through the journaled rollback and the old
	// module keeps running. The record/replay subsystem wires its
	// replay-the-recorded-tail gate here (Config.PreflightReplay).
	Preflight func(old, new string) error
	// HealthNote, when set, is evaluated alongside Preflight and its
	// result recorded as a health_check span note in the transaction
	// trace — the candidate-vs-incumbent verdict an operator reads from
	// `reconfigctl trace <txid>`. Purely observational: it never vetoes
	// (use Preflight for that).
	HealthNote func(old, new string) string
}

// Replace performs the Figure 5 reconfiguration script: replace instance
// old with a new instance carrying the old one's state, rebinding all its
// interfaces and preserving queued messages. It runs as a transaction (see
// ReplaceTx); on any step failure the original configuration is restored
// and the old module keeps running.
func Replace(p *Primitives, launcher Launcher, old string, opts ReplaceOptions) error {
	_, err := ReplaceTx(p, launcher, old, opts)
	return err
}

// Move relocates an instance to another machine — the Section 2
// reconfiguration ("the compute module has been relocated to another
// machine"). It is Replace with only the MACHINE attribute changed.
func Move(p *Primitives, launcher Launcher, inst, newName, machine string, timeout time.Duration) error {
	return Replace(p, launcher, inst, ReplaceOptions{
		NewName: newName,
		Machine: machine,
		Timeout: timeout,
	})
}

// Update replaces an instance's implementation with a new module version
// (software maintenance), carrying the state across. The new module must
// accept the old module's abstract state (same procedures and capture
// sets at the reconfiguration points).
func Update(p *Primitives, launcher Launcher, inst, newName, newModule string, timeout time.Duration) error {
	return Replace(p, launcher, inst, ReplaceOptions{
		NewName: newName,
		Module:  newModule,
		Timeout: timeout,
	})
}

// Replicate adds a fresh (stateless) second instance of the same module and
// binds it to the same peers, fanning incoming traffic out to both — the
// replication activity of the SURGEON work the paper builds on. No module
// participation is required: the replica starts from scratch.
func Replicate(p *Primitives, launcher Launcher, inst, replicaName, machine string) error {
	info, err := p.ObjCap(inst)
	if err != nil {
		return err
	}
	spec := bus.InstanceSpec{
		Name:       replicaName,
		Module:     info.Module,
		Machine:    info.Machine,
		Status:     bus.StatusAdd,
		Interfaces: info.Interfaces,
	}
	if machine != "" {
		spec.Machine = machine
	}
	if err := p.AddObj(spec); err != nil {
		return err
	}
	batch := p.BindCap()
	added := map[string]bool{}
	for _, ifc := range info.Interfaces {
		oldEp := bus.Endpoint{Instance: inst, Interface: ifc.Name}
		newEp := bus.Endpoint{Instance: replicaName, Interface: ifc.Name}
		if ifc.Dir.Sends() {
			dests, err := p.StructIfDest(oldEp)
			if err != nil {
				return err
			}
			for _, d := range dests {
				key := newEp.String() + "|" + d.String()
				if added[key] {
					continue
				}
				added[key] = true
				p.EditBind(batch, "add", newEp, d)
			}
		}
		if ifc.Dir.Receives() {
			sources, err := p.StructIfSources(oldEp)
			if err != nil {
				return err
			}
			for _, s := range sources {
				key := newEp.String() + "|" + s.String()
				if added[key] {
					continue
				}
				added[key] = true
				p.EditBind(batch, "add", s, newEp)
			}
		}
	}
	if err := p.Rebind(batch); err != nil {
		return err
	}
	return p.ChgObj(launcher, replicaName, "add")
}

// Remove deletes an instance and its bindings (the delete activity).
func Remove(p *Primitives, inst string) error {
	return p.ChgObj(nil, inst, "del")
}
