package reconfig

import (
	"fmt"
	"time"

	"repro/internal/bus"
)

// ReplaceOptions parameterizes the replacement script. The paper: "This
// reconfiguration script is easily parameterized to accept a module name
// and attributes. The parameterized reconfiguration script could be used to
// replace a module in any application, provided the module had been
// prepared to participate during reconfiguration."
type ReplaceOptions struct {
	// NewName names the replacement instance (required: instance names
	// are unique while both exist).
	NewName string
	// Machine places the replacement; empty keeps the old placement —
	// i.e. in-place replacement for maintenance; a different machine is
	// the paper's migration.
	Machine string
	// Module optionally substitutes a different module implementation
	// (software maintenance: v2 replacing v1). Empty keeps the module.
	Module string
	// Timeout bounds the wait for the old module to reach a
	// reconfiguration point and divulge (default 30s).
	Timeout time.Duration
	// Attrs optionally extends the new instance's attributes.
	Attrs map[string]string
}

// Replace performs the Figure 5 reconfiguration script: replace instance
// old with a new instance carrying the old one's state, rebinding all its
// interfaces and preserving queued messages.
func Replace(p *Primitives, launcher Launcher, old string, opts ReplaceOptions) error {
	if opts.NewName == "" {
		return fmt.Errorf("reconfig: replace %s: NewName required", old)
	}
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}

	// Access the old module's current specification.
	info, err := p.ObjCap(old)
	if err != nil {
		return err
	}
	spec := bus.InstanceSpec{
		Name:       opts.NewName,
		Module:     info.Module,
		Machine:    info.Machine,
		Status:     bus.StatusClone,
		Interfaces: info.Interfaces,
		Attrs:      map[string]string{},
	}
	for k, v := range info.Attrs {
		spec.Attrs[k] = v
	}
	for k, v := range opts.Attrs {
		spec.Attrs[k] = v
	}
	if opts.Machine != "" {
		spec.Machine = opts.Machine
	}
	if opts.Module != "" {
		spec.Module = opts.Module
	}
	if err := p.AddObj(spec); err != nil {
		return err
	}

	// Prepare the rebinding commands: for every interface, replace
	// bindings to the old instance with bindings to the new one; move the
	// old instance's queued messages across ("cq") and clear what remains
	// ("rmq"). Bindings on bidirectional interfaces surface both as a
	// destination and as a source; each is rebound once.
	batch := p.BindCap()
	rebound := map[string]bool{}
	bindKey := func(a, b bus.Endpoint) string {
		if b.String() < a.String() {
			a, b = b, a
		}
		return a.String() + "|" + b.String()
	}
	for _, ifc := range info.Interfaces {
		oldEp := bus.Endpoint{Instance: old, Interface: ifc.Name}
		newEp := bus.Endpoint{Instance: opts.NewName, Interface: ifc.Name}
		if ifc.Dir.Sends() {
			dests, err := p.StructIfDest(oldEp)
			if err != nil {
				return err
			}
			for _, d := range dests {
				if rebound[bindKey(oldEp, d)] {
					continue
				}
				rebound[bindKey(oldEp, d)] = true
				p.EditBind(batch, "del", oldEp, d)
				p.EditBind(batch, "add", newEp, d)
			}
		}
		if ifc.Dir.Receives() {
			sources, err := p.StructIfSources(oldEp)
			if err != nil {
				return err
			}
			for _, s := range sources {
				if rebound[bindKey(s, oldEp)] {
					continue
				}
				rebound[bindKey(s, oldEp)] = true
				p.EditBind(batch, "del", s, oldEp)
				p.EditBind(batch, "add", s, newEp)
			}
			p.EditBind(batch, "cq", oldEp, newEp)
			p.EditBind(batch, "rmq", oldEp, bus.Endpoint{})
		}
	}

	// Get state from the old module and send it to the new one; the
	// binding commands apply all at once afterwards.
	if err := p.ObjStateMove(old, "encode", opts.NewName, "decode", opts.Timeout); err != nil {
		return err
	}
	if err := p.Rebind(batch); err != nil {
		return err
	}
	// Start up the new module, remove the old.
	if err := p.ChgObj(launcher, opts.NewName, "add"); err != nil {
		return err
	}
	if err := p.ChgObj(nil, old, "del"); err != nil {
		return err
	}
	return nil
}

// Move relocates an instance to another machine — the Section 2
// reconfiguration ("the compute module has been relocated to another
// machine"). It is Replace with only the MACHINE attribute changed.
func Move(p *Primitives, launcher Launcher, inst, newName, machine string, timeout time.Duration) error {
	return Replace(p, launcher, inst, ReplaceOptions{
		NewName: newName,
		Machine: machine,
		Timeout: timeout,
	})
}

// Update replaces an instance's implementation with a new module version
// (software maintenance), carrying the state across. The new module must
// accept the old module's abstract state (same procedures and capture
// sets at the reconfiguration points).
func Update(p *Primitives, launcher Launcher, inst, newName, newModule string, timeout time.Duration) error {
	return Replace(p, launcher, inst, ReplaceOptions{
		NewName: newName,
		Module:  newModule,
		Timeout: timeout,
	})
}

// Replicate adds a fresh (stateless) second instance of the same module and
// binds it to the same peers, fanning incoming traffic out to both — the
// replication activity of the SURGEON work the paper builds on. No module
// participation is required: the replica starts from scratch.
func Replicate(p *Primitives, launcher Launcher, inst, replicaName, machine string) error {
	info, err := p.ObjCap(inst)
	if err != nil {
		return err
	}
	spec := bus.InstanceSpec{
		Name:       replicaName,
		Module:     info.Module,
		Machine:    info.Machine,
		Status:     bus.StatusAdd,
		Interfaces: info.Interfaces,
	}
	if machine != "" {
		spec.Machine = machine
	}
	if err := p.AddObj(spec); err != nil {
		return err
	}
	batch := p.BindCap()
	added := map[string]bool{}
	for _, ifc := range info.Interfaces {
		oldEp := bus.Endpoint{Instance: inst, Interface: ifc.Name}
		newEp := bus.Endpoint{Instance: replicaName, Interface: ifc.Name}
		if ifc.Dir.Sends() {
			dests, err := p.StructIfDest(oldEp)
			if err != nil {
				return err
			}
			for _, d := range dests {
				key := newEp.String() + "|" + d.String()
				if added[key] {
					continue
				}
				added[key] = true
				p.EditBind(batch, "add", newEp, d)
			}
		}
		if ifc.Dir.Receives() {
			sources, err := p.StructIfSources(oldEp)
			if err != nil {
				return err
			}
			for _, s := range sources {
				key := newEp.String() + "|" + s.String()
				if added[key] {
					continue
				}
				added[key] = true
				p.EditBind(batch, "add", s, newEp)
			}
		}
	}
	if err := p.Rebind(batch); err != nil {
		return err
	}
	return p.ChgObj(launcher, replicaName, "add")
}

// Remove deletes an instance and its bindings (the delete activity).
func Remove(p *Primitives, inst string) error {
	return p.ChgObj(nil, inst, "del")
}
