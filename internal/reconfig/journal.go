package reconfig

// The reconfiguration journal gives scripts transactional behavior without
// a persistent log: as each forward primitive succeeds, the script records
// the compensating action that undoes it. On a step failure the journal is
// replayed in reverse order, returning the application to its
// pre-transaction configuration; on commit it is discarded. Destructive
// steps (deleting the old module, dropping its remaining queue) are
// sequenced after the commit point, so no compensation ever needs to
// recreate lost state.

// RollbackStep records one compensating action replayed during an abort.
type RollbackStep struct {
	// Action names the compensation ("inverse_rebind", "release_old",
	// "delete_clone", "release_guard").
	Action string
	// Err is the compensation's own failure, empty when it succeeded.
	// A failed compensation does not stop the replay: the remaining
	// inverses still run, and every failure is reported.
	Err string
}

// TxResult is the outcome of one transactional reconfiguration script.
type TxResult struct {
	// TxID is the transaction's identifier in the reconfiguration tracer
	// ("tx-0001"); reconfigctl trace <txid> renders the matching span
	// timeline. Empty when the primitive set has no tracer.
	TxID string
	// Steps is the primitive audit trace of the forward path, in order —
	// including any steps performed before the failing one.
	Steps []string
	// Committed reports that the transaction passed its commit point: the
	// replacement is live and the old configuration will not return.
	Committed bool
	// RolledBack reports that compensations were replayed.
	RolledBack bool
	// Rollback lists the compensations replayed on abort, in execution
	// order. Empty for a clean commit.
	Rollback []RollbackStep
	// Err is the step failure that triggered the abort, or — for a
	// committed transaction — a non-fatal failure in the destructive
	// tail. Nil for a fully clean commit.
	Err error
}

// Failed reports whether the transaction aborted.
func (r *TxResult) Failed() bool { return r != nil && !r.Committed && r.Err != nil }

type journalEntry struct {
	action string
	undo   func() error
}

// journal accumulates compensating actions as the forward path of a
// transaction progresses.
type journal struct {
	entries []journalEntry
}

// record notes the compensation for a forward step that just succeeded.
func (j *journal) record(action string, undo func() error) {
	j.entries = append(j.entries, journalEntry{action: action, undo: undo})
}

// rollback replays the recorded compensations in reverse order. Replay is
// best-effort: a failing compensation is reported in its step and the rest
// still run, maximizing how much of the old configuration is recovered.
func (j *journal) rollback() []RollbackStep {
	steps := make([]RollbackStep, 0, len(j.entries))
	for i := len(j.entries) - 1; i >= 0; i-- {
		e := j.entries[i]
		step := RollbackStep{Action: e.action}
		if err := e.undo(); err != nil {
			step.Err = err.Error()
		}
		steps = append(steps, step)
	}
	j.entries = nil
	return steps
}

// discard forgets the journal at the commit point.
func (j *journal) discard() { j.entries = nil }
