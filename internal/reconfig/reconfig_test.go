package reconfig

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/interp"
	"repro/internal/mh"
	"repro/internal/state"
	"repro/internal/transform"
)

const computeSrc = `package compute

func main() {
	var n int
	var response float64
	mh.Init()
	for {
		for mh.QueryIfMsgs("display") {
			mh.Read("display", &n)
			compute(n, n, &response)
			mh.Write("display", response)
		}
		if mh.QueryIfMsgs("sensor") {
			compute(1, 1, &response)
		}
		mh.Sleep(2)
	}
}

func compute(num int, n int, rp *float64) {
	var temper int
	if n <= 0 {
		*rp = 0.0
		return
	}
	compute(num, n-1, rp)
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`

// monitorWorld is the full Figure 1 application with an interpreter-backed
// compute module and a launcher that can start clones of it.
type monitorWorld struct {
	t    *testing.T
	b    *bus.Bus
	p    *Primitives
	out  *transform.Output
	disp bus.Port
	sens bus.Port
	c    codec.Codec
	done map[string]chan error
}

func newMonitorWorld(t *testing.T) *monitorWorld {
	t.Helper()
	out, err := transform.PrepareSource("compute.go", computeSrc, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	w := &monitorWorld{t: t, b: b, p: NewPrimitives(b), out: out, c: codec.Default(), done: map[string]chan error{}}
	for _, spec := range []bus.InstanceSpec{
		{Name: "display", Module: "display", Machine: "machineA",
			Interfaces: []bus.IfaceSpec{{Name: "temper", Dir: bus.InOut}}},
		{Name: "sensor", Module: "sensor", Machine: "machineA",
			Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
		{Name: "compute", Module: "compute", Machine: "machineA",
			Interfaces: []bus.IfaceSpec{{Name: "display", Dir: bus.InOut}, {Name: "sensor", Dir: bus.In}}},
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, bd := range [][2]bus.Endpoint{
		{{Instance: "display", Interface: "temper"}, {Instance: "compute", Interface: "display"}},
		{{Instance: "sensor", Interface: "out"}, {Instance: "compute", Interface: "sensor"}},
	} {
		if err := b.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	if w.disp, err = b.Attach("display"); err != nil {
		t.Fatal(err)
	}
	if w.sens, err = b.Attach("sensor"); err != nil {
		t.Fatal(err)
	}
	return w
}

// Launch implements Launcher by running the instrumented compute module in
// an interpreter goroutine.
func (w *monitorWorld) Launch(instance string) error {
	port, err := w.b.Attach(instance)
	if err != nil {
		return err
	}
	rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
	in := interp.New(w.out.Prog, w.out.Info, rt)
	done := make(chan error, 1)
	w.done[instance] = done
	go func() {
		_, err := in.Run()
		done <- err
	}()
	return nil
}

func (w *monitorWorld) sendInt(p bus.Port, iface string, v int) {
	w.t.Helper()
	data, err := w.c.EncodeValue(state.IntValue(int64(v)))
	if err != nil {
		w.t.Fatal(err)
	}
	if err := p.Write(iface, data); err != nil {
		w.t.Fatal(err)
	}
}

func (w *monitorWorld) readFloat() float64 {
	w.t.Helper()
	m, err := w.disp.Read("temper")
	if err != nil {
		w.t.Fatal(err)
	}
	v, err := w.c.DecodeValue(m.Data)
	if err != nil {
		w.t.Fatal(err)
	}
	return v.Float
}

// topology renders the instance/binding view (experiment F1's golden).
func (w *monitorWorld) topology() string {
	var lines []string
	for _, name := range w.b.Instances() {
		info, err := w.b.Info(name)
		if err != nil {
			continue
		}
		lines = append(lines, fmt.Sprintf("instance %s (module %s) on %s", name, info.Module, info.Machine))
	}
	for _, bd := range w.b.Bindings() {
		lines = append(lines, fmt.Sprintf("bind %s <-> %s", bd.A, bd.B))
	}
	return strings.Join(lines, "\n")
}

// TestMonitorTopologyBeforeAfter + TestReplaceScriptPrimitiveTrace +
// the end-to-end move: experiments F1, F5 and E1 at the script level.
func TestMoveModuleScript(t *testing.T) {
	w := newMonitorWorld(t)
	if err := w.Launch("compute"); err != nil {
		t.Fatal(err)
	}

	before := w.topology()
	wantBefore := strings.Join([]string{
		"instance compute (module compute) on machineA",
		"instance display (module display) on machineA",
		"instance sensor (module sensor) on machineA",
		"bind display.temper <-> compute.display",
		"bind sensor.out <-> compute.sensor",
	}, "\n")
	if before != wantBefore {
		t.Errorf("topology before:\n%s\nwant:\n%s", before, wantBefore)
	}

	// Put the module mid-recursion, as in Section 2.
	w.sendInt(w.disp, "temper", 3)
	time.Sleep(50 * time.Millisecond)

	// The script itself signals via ObjStateMove; feed the sensor so the
	// module reaches the reconfiguration point after the signal. Feed it
	// slightly after the script starts.
	go func() {
		time.Sleep(30 * time.Millisecond)
		w.sendInt(w.sens, "out", 60)
	}()
	w.p.ResetTrace()
	if err := Move(w.p, w, "compute", "compute2", "machineB", 10*time.Second); err != nil {
		t.Fatalf("Move: %v", err)
	}

	// The old module exited cleanly.
	select {
	case err := <-w.done["compute"]:
		if err != nil {
			t.Fatalf("old module failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("old module did not exit")
	}

	after := w.topology()
	wantAfter := strings.Join([]string{
		"instance compute2 (module compute) on machineB",
		"instance display (module display) on machineA",
		"instance sensor (module sensor) on machineA",
		"bind compute2.display <-> display.temper",
		"bind sensor.out <-> compute2.sensor",
	}, "\n")
	if after != wantAfter {
		t.Errorf("topology after:\n%s\nwant:\n%s", after, wantAfter)
	}

	// The interrupted computation completes exactly on machineB.
	w.sendInt(w.sens, "out", 70)
	w.sendInt(w.sens, "out", 80)
	want := 60.0/3 + 70.0/3 + 80.0/3
	if got := w.readFloat(); got != want {
		t.Errorf("moved computation = %g, want %g", got, want)
	}

	// Figure 5's primitive sequence (trace golden), in its transactional
	// form: objstate_move is decomposed into signal/await/install so each
	// third can journal its compensation; the queue drops ("rmq", now
	// drain_queue) are deferred past the commit point (await_restored).
	// The display binding is bidirectional; it surfaces under both ifdest
	// and ifsources and is rebound once.
	trace := w.p.Trace()
	wantTrace := []string{
		"obj_cap compute",
		"add_obj compute2 (module compute, machine machineB, status clone)",
		"bind_cap",
		"struct_ifdest compute.display -> 1",
		"edit_bind del compute.display display.temper",
		"edit_bind add compute2.display display.temper",
		"struct_ifsources compute.display -> 1",
		"edit_bind cq compute.display compute2.display",
		"struct_ifsources compute.sensor -> 1",
		"edit_bind del sensor.out compute.sensor",
		"edit_bind add sensor.out compute2.sensor",
		"edit_bind cq compute.sensor compute2.sensor",
		"signal_reconfig compute",
		"await_divulged compute",
		"install_state compute2",
		"rebind (6 edits)",
		"chg_obj compute2 add",
		"await_restored compute2",
		"drain_queue compute.display",
		"drain_queue compute.sensor",
		"chg_obj compute del",
	}
	if !reflect.DeepEqual(trace, wantTrace) {
		t.Errorf("primitive trace:\n%s\nwant:\n%s",
			strings.Join(trace, "\n"), strings.Join(wantTrace, "\n"))
	}
}

// TestQueueMoveNoLoss (experiment A3): requests queued at the old instance
// during reconfiguration are served by the replacement.
func TestQueueMoveNoLoss(t *testing.T) {
	w := newMonitorWorld(t)
	if err := w.Launch("compute"); err != nil {
		t.Fatal(err)
	}

	// One in-flight request (depth 2) plus two queued requests that the
	// old module will never see.
	w.sendInt(w.disp, "temper", 2)
	time.Sleep(50 * time.Millisecond)
	w.sendInt(w.disp, "temper", 1)
	w.sendInt(w.disp, "temper", 1)

	go func() {
		time.Sleep(30 * time.Millisecond)
		w.sendInt(w.sens, "out", 10)
	}()
	if err := Move(w.p, w, "compute", "compute2", "machineB", 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Finish the interrupted request, then the two queued ones.
	w.sendInt(w.sens, "out", 30)
	if got := w.readFloat(); got != 10.0/2+30.0/2 {
		t.Errorf("interrupted request = %g", got)
	}
	w.sendInt(w.sens, "out", 50)
	if got := w.readFloat(); got != 50 {
		t.Errorf("queued request 1 = %g", got)
	}
	w.sendInt(w.sens, "out", 70)
	if got := w.readFloat(); got != 70 {
		t.Errorf("queued request 2 = %g", got)
	}
}

// TestUpdateScript: software maintenance — v2 replaces v1 mid-computation
// and inherits its state (experiment for the Update script).
func TestUpdateScript(t *testing.T) {
	w := newMonitorWorld(t)
	if err := w.Launch("compute"); err != nil {
		t.Fatal(err)
	}
	w.sendInt(w.disp, "temper", 2)
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(30 * time.Millisecond)
		w.sendInt(w.sens, "out", 40)
	}()
	if err := Update(w.p, w, "compute", "computeV2", "compute", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	info, err := w.b.Info("computeV2")
	if err != nil || info.Module != "compute" {
		t.Fatalf("v2 info = %+v, %v", info, err)
	}
	w.sendInt(w.sens, "out", 60)
	if got := w.readFloat(); got != 40.0/2+60.0/2 {
		t.Errorf("updated module answered %g", got)
	}
}

// TestReplicateScript: a stateless replica joins the application and both
// instances receive fanned-out traffic.
func TestReplicateScript(t *testing.T) {
	w := newMonitorWorld(t)
	if err := w.Launch("compute"); err != nil {
		t.Fatal(err)
	}
	if err := Replicate(w.p, w, "compute", "computeB", "machineB"); err != nil {
		t.Fatal(err)
	}
	info, err := w.b.Info("computeB")
	if err != nil || info.Machine != "machineB" || info.Status != bus.StatusAdd {
		t.Fatalf("replica info = %+v, %v", info, err)
	}
	// A display request now reaches both instances (fan-out), so two
	// responses come back for one request.
	w.sendInt(w.disp, "temper", 1)
	w.sendInt(w.sens, "out", 42) // each replica gets a copy? no: sensor fan-out duplicates too
	w.sendInt(w.sens, "out", 42)
	got1 := w.readFloat()
	got2 := w.readFloat()
	if got1 != 42 || got2 != 42 {
		t.Errorf("replicated answers = %g, %g", got1, got2)
	}
	if err := Remove(w.p, "computeB"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.b.Info("computeB"); err == nil {
		t.Error("replica still present after Remove")
	}
}

func TestReplaceValidation(t *testing.T) {
	w := newMonitorWorld(t)
	if err := Replace(w.p, w, "compute", ReplaceOptions{}); err == nil {
		t.Error("missing NewName accepted")
	}
	if err := Replace(w.p, w, "ghost", ReplaceOptions{NewName: "g2"}); err == nil {
		t.Error("unknown instance accepted")
	}
	// Duplicate new name.
	if err := Replace(w.p, w, "compute", ReplaceOptions{NewName: "display", Timeout: time.Second}); err == nil {
		t.Error("duplicate new name accepted")
	}
}

func TestReplaceTimesOutWithoutParticipation(t *testing.T) {
	// The compute module is registered but never launched: it cannot
	// reach a reconfiguration point, so the state move times out and the
	// script fails (module-level atomicity would be needed instead).
	w := newMonitorWorld(t)
	err := Replace(w.p, w, "compute", ReplaceOptions{NewName: "c2", Timeout: 50 * time.Millisecond})
	if err == nil || !errors.Is(err, bus.ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestChgObjValidation(t *testing.T) {
	w := newMonitorWorld(t)
	if err := w.p.ChgObj(nil, "compute", "add"); err == nil {
		t.Error("add without launcher accepted")
	}
	if err := w.p.ChgObj(nil, "compute", "frobnicate"); err == nil {
		t.Error("unknown op accepted")
	}
	bad := LauncherFunc(func(string) error { return errors.New("boom") })
	if err := w.p.ChgObj(bad, "compute", "add"); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("launcher failure: %v", err)
	}
}

func TestPrimitiveErrors(t *testing.T) {
	b := bus.New()
	p := NewPrimitives(b)
	if _, err := p.ObjCap("ghost"); err == nil {
		t.Error("obj_cap ghost accepted")
	}
	if _, err := p.StructIfDest(bus.Endpoint{Instance: "ghost", Interface: "x"}); err == nil {
		t.Error("ifdest ghost accepted")
	}
	if _, err := p.StructIfSources(bus.Endpoint{Instance: "ghost", Interface: "x"}); err == nil {
		t.Error("ifsources ghost accepted")
	}
	if err := p.AddObj(bus.InstanceSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if err := p.ObjStateMove("ghost", "e", "x", "d", time.Millisecond); err == nil {
		t.Error("state move from ghost accepted")
	}
	batch := p.BindCap()
	p.EditBind(batch, "add", bus.Endpoint{Instance: "a", Interface: "b"}, bus.Endpoint{Instance: "c", Interface: "d"})
	if err := p.Rebind(batch); err == nil {
		t.Error("rebind with unknown endpoints accepted")
	}
	if p.Bus() != b {
		t.Error("Bus() identity")
	}
	if len(p.StructObjNames()) != 0 {
		t.Error("expected no instances")
	}
	if len(p.Trace()) == 0 {
		t.Error("trace empty despite operations")
	}
}
