// Package reconfig implements the application-level reconfiguration layer:
// the primitive operations of Figure 5 (the mh_* control calls added to
// POLYLITH by the authors' earlier ICDCS '91 work), and the parameterized
// reconfiguration scripts — Replace, Move, Replicate — that compose them.
//
// Every primitive appends a line to an audit trace, so a script's primitive
// sequence can be golden-tested against Figure 5 and inspected by
// operators (cmd/reconfigctl prints it).
package reconfig

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bus"
	"repro/internal/telemetry"
)

// Launcher starts the runtime of a registered module instance. The facade
// supplies one that attaches an interpreter; cmd/polybus supplies one that
// tracks TCP-attached processes.
type Launcher interface {
	// Launch begins executing the named instance's module body.
	Launch(instance string) error
}

// LauncherFunc adapts a function to Launcher.
type LauncherFunc func(instance string) error

// Launch implements Launcher.
func (f LauncherFunc) Launch(instance string) error { return f(instance) }

// Primitives exposes the reconfiguration primitive set over one bus.
type Primitives struct {
	bus *bus.Bus

	// txMu serializes transactional scripts: concurrent reconfigurations
	// of one application are refused with ErrReconfigBusy rather than
	// interleaved (the paper assumes one reconfiguration at a time).
	txMu sync.Mutex

	mu    sync.Mutex
	trace []string

	// tracer assigns each transactional script a transaction ID and records
	// its span timeline (quiesce wait, state move, rebind, restore wait,
	// commit or rollback) for reconfigctl trace <txid>.
	tracer *telemetry.Tracer

	// active mirrors txMu for lock-free observation: true while a
	// transactional script holds the lock. The readiness probe (/readyz)
	// reads it to report "reconfiguring" without contending for txMu.
	active atomic.Bool
}

// NewPrimitives wraps a bus. Transaction span durations aggregate into the
// bus's telemetry registry (reconfig.span.*_ns, reconfig.tx_total_ns).
func NewPrimitives(b *bus.Bus) *Primitives {
	p := &Primitives{bus: b, tracer: telemetry.NewTracer(0)}
	p.tracer.SetRegistry(b.Telemetry())
	return p
}

// ReconfigActive reports whether a transactional reconfiguration is in
// flight right now.
func (p *Primitives) ReconfigActive() bool { return p.active.Load() }

// Bus returns the underlying bus.
func (p *Primitives) Bus() *bus.Bus { return p.bus }

// Tracer returns the reconfiguration tracer (retained span timelines keyed
// by transaction ID).
func (p *Primitives) Tracer() *telemetry.Tracer { return p.tracer }

func (p *Primitives) log(format string, args ...any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trace = append(p.trace, fmt.Sprintf(format, args...))
}

// Trace returns the primitive audit trail so far.
func (p *Primitives) Trace() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.trace))
	copy(out, p.trace)
	return out
}

// ResetTrace clears the audit trail.
func (p *Primitives) ResetTrace() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trace = nil
}

// traceMark returns the current trace length, so a transaction can later
// extract just its own primitive lines with traceSince.
func (p *Primitives) traceMark() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.trace)
}

// traceSince returns the trace lines appended after mark.
func (p *Primitives) traceSince(mark int) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if mark > len(p.trace) {
		return nil
	}
	out := make([]string, len(p.trace)-mark)
	copy(out, p.trace[mark:])
	return out
}

// ObjCap retrieves the current specification of an instance (mh_obj_cap).
// It reflects the live configuration, which may have changed dynamically
// since the application was described.
func (p *Primitives) ObjCap(name string) (bus.InstanceInfo, error) {
	info, err := p.bus.Info(name)
	if err != nil {
		return bus.InstanceInfo{}, fmt.Errorf("reconfig: obj_cap %s: %w", name, err)
	}
	p.log("obj_cap %s", name)
	return info, nil
}

// StructObjNames lists the live instances (mh_struct_objnames).
func (p *Primitives) StructObjNames() []string {
	names := p.bus.Instances()
	p.log("struct_objnames -> %d", len(names))
	return names
}

// StructIfDest lists where messages written on e are delivered
// (mh_struct_ifdest).
func (p *Primitives) StructIfDest(e bus.Endpoint) ([]bus.Endpoint, error) {
	out, err := p.bus.IfDest(e)
	if err != nil {
		return nil, fmt.Errorf("reconfig: struct_ifdest %s: %w", e, err)
	}
	p.log("struct_ifdest %s -> %d", e, len(out))
	return out, nil
}

// StructIfSources lists whose writes are delivered to e
// (mh_struct_ifsources).
func (p *Primitives) StructIfSources(e bus.Endpoint) ([]bus.Endpoint, error) {
	out, err := p.bus.IfSources(e)
	if err != nil {
		return nil, fmt.Errorf("reconfig: struct_ifsources %s: %w", e, err)
	}
	p.log("struct_ifsources %s -> %d", e, len(out))
	return out, nil
}

// BindBatch accumulates binding edits to apply atomically (mh_bind_cap).
type BindBatch struct {
	edits []bus.BindEdit
}

// BindCap creates an empty binding batch.
func (p *Primitives) BindCap() *BindBatch {
	p.log("bind_cap")
	return &BindBatch{}
}

// EditBind appends one edit (mh_edit_bind). op is "add", "del", "cq" or
// "rmq".
func (p *Primitives) EditBind(b *BindBatch, op string, from, to bus.Endpoint) {
	b.edits = append(b.edits, bus.BindEdit{Op: op, From: from, To: to})
	if op == "rmq" {
		p.log("edit_bind %s %s", op, from)
	} else {
		p.log("edit_bind %s %s %s", op, from, to)
	}
}

// Rebind applies the batch atomically (mh_rebind).
func (p *Primitives) Rebind(b *BindBatch) error {
	if err := p.bus.Rebind(b.edits); err != nil {
		return fmt.Errorf("reconfig: rebind: %w", err)
	}
	p.log("rebind (%d edits)", len(b.edits))
	return nil
}

// AddObj registers a new instance (the "add object" half of the primitive
// set; it does not start the module — ChgObj "add" does).
func (p *Primitives) AddObj(spec bus.InstanceSpec) error {
	if err := p.bus.AddInstance(spec); err != nil {
		return fmt.Errorf("reconfig: add_obj %s: %w", spec.Name, err)
	}
	p.log("add_obj %s (module %s, machine %s, status %s)", spec.Name, spec.Module, spec.Machine, spec.Status)
	return nil
}

// ObjStateMove signals old to divulge its state at the next reconfiguration
// point, waits for the state, and installs it into dst
// (mh_objstate_move(&old, "encode", &new, "decode")).
func (p *Primitives) ObjStateMove(old, srcIface, dst, dstIface string, timeout time.Duration) error {
	if err := p.bus.MoveState(old, srcIface, dst, dstIface, timeout); err != nil {
		return fmt.Errorf("reconfig: objstate_move %s -> %s: %w", old, dst, err)
	}
	p.log("objstate_move %s.%s -> %s.%s", old, srcIface, dst, dstIface)
	return nil
}

// SignalReconfig asks an instance to divulge at its next reconfiguration
// point — the first third of mh_objstate_move, split out so the
// transactional script can journal a compensation (cancel or resurrect)
// before committing to the wait.
func (p *Primitives) SignalReconfig(name string) error {
	if err := p.bus.SignalReconfig(name); err != nil {
		return fmt.Errorf("reconfig: signal_reconfig %s: %w", name, err)
	}
	p.log("signal_reconfig %s", name)
	return nil
}

// AwaitDivulged waits for a signaled instance to surrender its encoded
// state (the middle of mh_objstate_move).
func (p *Primitives) AwaitDivulged(name string, timeout time.Duration) ([]byte, error) {
	owner, err := p.bus.AwaitDivulged(name, timeout)
	if err != nil {
		return nil, fmt.Errorf("reconfig: await_divulged %s: %w", name, err)
	}
	p.log("await_divulged %s", name)
	return owner.Data(), nil
}

// InstallState hands encoded state to a clone instance (the last third of
// mh_objstate_move).
func (p *Primitives) InstallState(name string, data []byte) error {
	if err := p.bus.InstallState(name, data); err != nil {
		return fmt.Errorf("reconfig: install_state %s: %w", name, err)
	}
	p.log("install_state %s", name)
	return nil
}

// AwaitRestored waits for a launched clone to confirm its restoration. The
// transactional script gates the destructive tail of a replacement on it.
func (p *Primitives) AwaitRestored(name string, timeout time.Duration) error {
	if err := p.bus.AwaitRestored(name, timeout); err != nil {
		return fmt.Errorf("reconfig: await_restored %s: %w", name, err)
	}
	p.log("await_restored %s", name)
	return nil
}

// DrainQueue discards the messages still queued at e (the "rmq" command).
// The transactional script runs it after the commit point — a queue must
// only be dropped once its replacement demonstrably answers traffic.
func (p *Primitives) DrainQueue(e bus.Endpoint) (int, error) {
	n, err := p.bus.DrainQueue(e)
	if err != nil {
		return 0, fmt.Errorf("reconfig: drain_queue %s: %w", e, err)
	}
	p.log("drain_queue %s", e)
	return n, nil
}

// JoinGroup admits an instance into a replica group — one copy-on-write
// snapshot publish; racing senders keep the old member set until it lands.
func (p *Primitives) JoinGroup(group, member string) error {
	if err := p.bus.AddGroupMember(group, member); err != nil {
		return fmt.Errorf("reconfig: join_group %s %s: %w", group, member, err)
	}
	p.log("join_group %s %s", group, member)
	return nil
}

// LeaveGroup revokes an instance's group membership, fencing its queues and
// redistributing its backlog to the surviving members. The supervisor runs
// it the moment a member is detected dead, before any rebuild.
func (p *Primitives) LeaveGroup(group, member string) error {
	if err := p.bus.RemoveGroupMember(group, member); err != nil {
		return fmt.Errorf("reconfig: leave_group %s %s: %w", group, member, err)
	}
	p.log("leave_group %s %s", group, member)
	return nil
}

// ChgObj changes an instance's lifecycle (mh_chg_obj): "add" starts the
// module via the launcher, "del" removes it from the bus.
func (p *Primitives) ChgObj(launcher Launcher, name, op string) error {
	switch op {
	case "add":
		if launcher == nil {
			return fmt.Errorf("reconfig: chg_obj add %s: no launcher", name)
		}
		if err := p.bus.Faults().Fire("reconfig.launch"); err != nil {
			return fmt.Errorf("reconfig: chg_obj add %s: %w", name, err)
		}
		if err := launcher.Launch(name); err != nil {
			return fmt.Errorf("reconfig: chg_obj add %s: %w", name, err)
		}
	case "del":
		if err := p.bus.DeleteInstance(name); err != nil {
			return fmt.Errorf("reconfig: chg_obj del %s: %w", name, err)
		}
	default:
		return fmt.Errorf("reconfig: chg_obj: unknown op %q", op)
	}
	p.log("chg_obj %s %s", name, op)
	return nil
}
