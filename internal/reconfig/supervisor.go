package reconfig

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry/evlog"
	"repro/internal/telemetry/health"
)

// Supervisor watches one replica group and heals member crashes without
// operator intervention. It composes three existing mechanisms:
//
//   - failure detection — a per-member heartbeat (the mh runtime's operation
//     counter) plus queue-depth stall detection: a member whose counter has
//     not advanced for StallAfter *while input is queued at it* is wedged;
//     a member whose host reports its goroutine exited is crashed;
//   - immediate mark-out — the dead member leaves the routing group
//     (LeaveGroup) the moment death is detected, so traffic drains to the
//     survivors within one routing epoch;
//   - journaled rebuild — ReplaceFromCheckpointTx rebuilds the member from
//     its newest periodic checkpoint under the same transaction machinery as
//     operator-driven replacement. A failed rebuild rolls back and is
//     retried on a later poll with a fresh generation name; a rebuild
//     refused with ErrReconfigBusy (an operator reconfiguration is in
//     flight) is likewise retried — never overlapped.
//
// Replacement members are named <group>.<generation> with a monotonically
// increasing generation, so a flapping member can be rebuilt repeatedly
// without name collisions.
type Supervisor struct {
	p        *Primitives
	launcher Launcher
	cfg      SupervisorConfig

	mu         sync.Mutex
	probes     map[string]*replicaProbe
	ckpts      map[string][]byte    // newest checkpoint per member
	newest     []byte               // newest checkpoint from any member
	pending    map[string]time.Time // dead members awaiting rebuild -> detection time
	lastHealth map[string]health.Level
	gen        int
	stats      SupervisorStats

	pollMu sync.Mutex // serializes Poll (detection + blocking rebuild)
	stop   chan struct{}
	done   chan struct{}
}

// SupervisorConfig parameterizes a Supervisor.
type SupervisorConfig struct {
	// Group is the replica group to supervise (required).
	Group string
	// PollInterval is the detector's period under Start (default 50ms).
	PollInterval time.Duration
	// StallAfter is how long a member's operation counter may sit still
	// with input queued before it is declared wedged (default 3x
	// PollInterval).
	StallAfter time.Duration
	// Timeouts bounds the rebuild transaction's waits.
	Timeouts Timeouts
	// Now supplies the clock (default time.Now); tests inject a fake.
	Now func() time.Time
	// Health, when set, arms the verdict-based detector: a member whose
	// windowed verdict (against its live peers as baseline) is Critical is
	// marked out and rebuilt exactly like a crash — the second failure
	// signal for modules that degrade without dying.
	Health *health.Checker
	// Events, when set, receives structured supervision events (detection,
	// health transitions with evidence windows, recovery outcomes).
	Events *evlog.Log
}

// SupervisorStats counts supervision activity.
type SupervisorStats struct {
	// Polls is the number of detection passes.
	Polls int64
	// Detected counts members declared dead (crash reports and stalls).
	Detected int64
	// Recovered counts committed rebuilds.
	Recovered int64
	// RetriesBusy counts rebuilds refused by an in-flight reconfiguration
	// (ErrReconfigBusy) and left pending for the next poll.
	RetriesBusy int64
	// Failed counts rebuild transactions that rolled back.
	Failed int64
	// HealthDetected counts members marked out on a Critical health
	// verdict (a subset of Detected).
	HealthDetected int64
	// LastError is the most recent rebuild failure, "" when none.
	LastError string
}

// replicaProbe is the failure detector's per-member view. stalledSince is
// when the member was first observed with a still counter AND queued input;
// it resets on any progress or an empty queue, so a member is declared dead
// only when the condition *persists* for StallAfter — a survivor that just
// inherited a dead peer's backlog is not misread as stalled.
type replicaProbe struct {
	ops          func() int64
	lastOps      int64
	stalledSince time.Time
}

// NewSupervisor builds a supervisor over an existing replica group.
func NewSupervisor(p *Primitives, launcher Launcher, cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Group == "" {
		return nil, errors.New("reconfig: supervisor: group required")
	}
	if _, err := p.bus.GroupMembers(cfg.Group); err != nil {
		return nil, fmt.Errorf("reconfig: supervisor: %w", err)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = 3 * cfg.PollInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Supervisor{
		p:          p,
		launcher:   launcher,
		cfg:        cfg,
		probes:     map[string]*replicaProbe{},
		ckpts:      map[string][]byte{},
		pending:    map[string]time.Time{},
		lastHealth: map[string]health.Level{},
	}
	// Replica health gauges, evaluated at scrape time (no poll-path cost):
	// live member count and corpses awaiting rebuild.
	reg := p.bus.Telemetry()
	reg.GaugeFunc("selfheal."+cfg.Group+".members", func() int64 {
		members, err := p.bus.GroupMembers(cfg.Group)
		if err != nil {
			return 0
		}
		return int64(len(members))
	})
	reg.GaugeFunc("selfheal."+cfg.Group+".pending", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.pending))
	})
	return s, nil
}

// Checkpoint stores a member's newest encoded checkpoint. Its signature
// matches mh.CheckpointSink, so a host passes sup.Checkpoint directly to
// mh.WithCheckpoint; it stores and returns without blocking the module.
func (s *Supervisor) Checkpoint(instance string, encoded []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ckpts[instance] = encoded
	s.newest = encoded
}

// RegisterHeartbeat arms stall detection for a member: ops must be readable
// from the supervisor's goroutine (the mh runtime's Ops method is).
func (s *Supervisor) RegisterHeartbeat(member string, ops func() int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes[member] = &replicaProbe{ops: ops}
}

// ReportExit reports that a member's module goroutine exited. Hosts call it
// when a replica crashes; the member is marked out of the group immediately
// and rebuilt on the next poll.
func (s *Supervisor) ReportExit(member string, cause error) {
	s.mu.Lock()
	dead := s.markDeadLocked(member)
	s.mu.Unlock()
	if dead {
		detail := "exit"
		if cause != nil {
			detail = cause.Error()
		}
		s.p.log("selfheal detect %s (%s)", member, detail)
		s.event("detect_exit", member, detail)
	}
}

// event appends one supervision record to the structured event log (a
// no-op when no log is configured — Append is nil-safe).
func (s *Supervisor) event(kind, inst, detail string) {
	s.cfg.Events.Append(evlog.Record{
		Source:   "supervisor",
		Kind:     kind,
		Instance: inst,
		Detail:   detail,
	})
}

// eventVerdict records a health-level transition with the full verdict —
// evidence windows included — as the event detail, so the log shows *why*
// the supervisor acted, not just that it did.
func (s *Supervisor) eventVerdict(inst string, v health.Verdict) {
	if s.cfg.Events == nil {
		return
	}
	detail, err := json.Marshal(v)
	if err != nil {
		detail = []byte(v.Summary())
	}
	s.event("health_"+v.Level.String(), inst, string(detail))
}

// markDeadLocked marks a member out of the group (idempotently) and queues
// its rebuild. Returns false if the member was already being handled.
func (s *Supervisor) markDeadLocked(member string) bool {
	if _, handling := s.pending[member]; handling {
		return false
	}
	members, err := s.p.bus.GroupMembers(s.cfg.Group)
	if err != nil {
		return false
	}
	inGroup := false
	for _, m := range members {
		if m == member {
			inGroup = true
			break
		}
	}
	if !inGroup {
		return false
	}
	if err := s.p.LeaveGroup(s.cfg.Group, member); err != nil {
		return false
	}
	delete(s.probes, member)
	delete(s.lastHealth, member)
	s.pending[member] = s.cfg.Now()
	s.stats.Detected++
	return true
}

// healthPassLocked evaluates every live member's verdict against its peers
// and returns the members judged Critical. Level transitions (in either
// direction) are recorded in the event log with their evidence windows.
func (s *Supervisor) healthPassLocked(names []string) []string {
	if s.cfg.Health == nil {
		return nil
	}
	var critical []string
	for _, name := range names {
		if _, dead := s.pending[name]; dead {
			continue
		}
		peers := make([]string, 0, len(names)-1)
		for _, p := range names {
			if p != name {
				if _, dead := s.pending[p]; !dead {
					peers = append(peers, p)
				}
			}
		}
		v := s.cfg.Health.Check(name, peers)
		if prev := s.lastHealth[name]; v.Level != prev {
			s.lastHealth[name] = v.Level
			s.eventVerdict(name, v)
		}
		if v.Level == health.Critical {
			critical = append(critical, name)
		}
	}
	return critical
}

// Poll runs one detection-and-rebuild pass: stalled members are marked out,
// then every pending corpse gets one rebuild attempt. Start calls it
// periodically; fake-clock tests call it directly.
func (s *Supervisor) Poll() {
	s.pollMu.Lock()
	defer s.pollMu.Unlock()

	now := s.cfg.Now()
	s.mu.Lock()
	s.stats.Polls++
	// Probe in sorted order: map iteration order would otherwise make the
	// detection order (and the audit log) differ between identical runs
	// when several members stall in one poll.
	names := make([]string, 0, len(s.probes))
	for name := range s.probes {
		names = append(names, name)
	}
	sort.Strings(names)
	var stalled []string
	for _, name := range names {
		pr := s.probes[name]
		cur := pr.ops()
		queued := 0
		info, err := s.p.bus.Info(name)
		if err == nil {
			for _, n := range info.Pending {
				queued += n
			}
		}
		// A still counter is only suspicious while the member has work it
		// is failing to consume (or its instance vanished entirely).
		if cur != pr.lastOps || (err == nil && queued == 0) {
			pr.lastOps = cur
			pr.stalledSince = time.Time{}
			continue
		}
		if pr.stalledSince.IsZero() {
			pr.stalledSince = now
			continue
		}
		if now.Sub(pr.stalledSince) >= s.cfg.StallAfter {
			stalled = append(stalled, name)
		}
	}
	for _, name := range stalled {
		if s.markDeadLocked(name) {
			s.p.log("selfheal detect %s (stalled)", name)
			s.event("detect_stall", name, "")
		}
	}
	// Second signal: members that are alive and consuming but behaving
	// badly — sustained error burn or latency blowout against their peers.
	for _, name := range s.healthPassLocked(names) {
		if s.markDeadLocked(name) {
			s.stats.HealthDetected++
			s.p.log("selfheal detect %s (health critical)", name)
		}
	}
	corpses := make([]string, 0, len(s.pending))
	for name := range s.pending {
		corpses = append(corpses, name)
	}
	sort.Strings(corpses)
	s.mu.Unlock()

	for _, dead := range corpses {
		s.rebuild(dead)
	}
}

// rebuild runs one ReplaceFromCheckpointTx attempt for a dead member. The
// member stays pending on any failure — including ErrReconfigBusy, which
// guarantees the supervisor never overlaps an in-flight reconfiguration —
// and is retried on the next poll with a fresh generation name.
func (s *Supervisor) rebuild(dead string) {
	s.mu.Lock()
	detected := s.pending[dead]
	ckpt := s.ckpts[dead]
	if ckpt == nil {
		ckpt = s.newest
	}
	if ckpt == nil {
		s.stats.LastError = fmt.Sprintf("selfheal %s: no checkpoint from any member yet", dead)
		s.mu.Unlock()
		return
	}
	newName := s.nextNameLocked()
	s.mu.Unlock()

	_, err := ReplaceFromCheckpointTx(s.p, s.launcher, s.cfg.Group, dead, newName, ckpt, s.cfg.Timeouts)

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		delete(s.pending, dead)
		s.ckpts[newName] = ckpt
		delete(s.ckpts, dead)
		s.stats.Recovered++
		s.stats.LastError = ""
		s.p.bus.Telemetry().Histogram("selfheal.recovery_ns").Observe(s.cfg.Now().Sub(detected))
		s.event("recovered", dead, "rebuilt as "+newName)
	case errors.Is(err, ErrReconfigBusy):
		s.stats.RetriesBusy++
	default:
		s.stats.Failed++
		s.stats.LastError = err.Error()
		s.event("rebuild_failed", dead, err.Error())
	}
}

// nextNameLocked allocates the next free <group>.<generation> name.
func (s *Supervisor) nextNameLocked() string {
	for {
		s.gen++
		name := fmt.Sprintf("%s.%d", s.cfg.Group, s.gen)
		if _, err := s.p.bus.Info(name); err != nil {
			return name
		}
	}
}

// Start launches the periodic detector. Stop halts it.
func (s *Supervisor) Start() {
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop() //archlint:spawn supervisor poll loop; exits when Stop closes the stop channel
}

func (s *Supervisor) loop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Poll()
		}
	}
}

// Stop halts the periodic detector and waits for the loop to exit. A no-op
// if Start was never called.
func (s *Supervisor) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

// Stats returns a copy of the supervision counters.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ReplicaStatus is one member's health snapshot.
type ReplicaStatus struct {
	Name string `json:"name"`
	// Ops is the heartbeat counter (0 when no heartbeat is registered).
	Ops int64 `json:"ops"`
	// Queued is the member's total pending input.
	Queued int `json:"queued"`
	// CheckpointBytes is the size of the member's newest checkpoint.
	CheckpointBytes int `json:"checkpoint_bytes"`
}

// ReplicaSetStatus is the supervisor's external view, served by /replicas.
type ReplicaSetStatus struct {
	Group   string          `json:"group"`
	Policy  string          `json:"policy"`
	Members []ReplicaStatus `json:"members"`
	// Pending lists dead members whose rebuild has not yet committed.
	Pending []string        `json:"pending,omitempty"`
	Stats   SupervisorStats `json:"stats"`
}

// Status snapshots the supervised group: live members with their heartbeat
// and backlog, corpses awaiting rebuild, and the counters.
func (s *Supervisor) Status() ReplicaSetStatus {
	out := ReplicaSetStatus{Group: s.cfg.Group}
	for _, g := range s.p.bus.Routing().Groups() {
		if g.Name == s.cfg.Group {
			out.Policy = g.Policy
			for _, m := range g.Members {
				st := ReplicaStatus{Name: m}
				if info, err := s.p.bus.Info(m); err == nil {
					for _, n := range info.Pending {
						st.Queued += n
					}
				}
				s.mu.Lock()
				if pr, ok := s.probes[m]; ok {
					st.Ops = pr.ops()
				}
				st.CheckpointBytes = len(s.ckpts[m])
				s.mu.Unlock()
				out.Members = append(out.Members, st)
			}
		}
	}
	s.mu.Lock()
	for name := range s.pending {
		out.Pending = append(out.Pending, name)
	}
	sort.Strings(out.Pending)
	out.Stats = s.stats
	s.mu.Unlock()
	return out
}
