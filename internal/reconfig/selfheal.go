package reconfig

import (
	"fmt"

	"repro/internal/bus"
)

// ReplaceFromCheckpointTx rebuilds a crashed replica-group member as a
// transaction. It is the Figure 5 replacement script with one substitution:
// a crashed module can divulge nothing, so the newest periodic checkpoint of
// its abstract state (internal/checkpoint, published through the mh runtime)
// stands in for the divulged state. The paper's Discussion rejects paying
// the checkpoint cost for *planned* reconfiguration; a crash is the case
// where there is no reconfiguration point left to reach, which is exactly
// when the baseline earns its keep.
//
// Preconditions: the dead member has already been marked out of its group
// (the supervisor does this the moment death is detected, so traffic drains
// to the survivors), but its instance still exists on the bus.
//
// Forward path: clone the dead member's specification under newName, install
// the checkpoint, launch, and wait for the clone's restore confirmation —
// the commit gate, as in ReplaceTx. Any failure before it replays the
// journal (delete the clone) and leaves the group running on the survivors;
// the supervisor retries with a fresh generation name. The destructive tail
// moves the dead member's residual queued messages to the clone (non-empty
// only when the member died with no surviving peer to drain to), admits the
// clone into the group, and deletes the corpse.
func ReplaceFromCheckpointTx(p *Primitives, launcher Launcher, group, dead, newName string, ckpt []byte, t Timeouts) (*TxResult, error) {
	res := &TxResult{}
	fail := func(err error) (*TxResult, error) {
		res.Err = err
		return res, err
	}
	if newName == "" || newName == dead {
		return fail(fmt.Errorf("reconfig: selfheal %s: replacement name %q invalid", dead, newName))
	}
	if len(ckpt) == 0 {
		return fail(fmt.Errorf("reconfig: selfheal %s: no checkpoint to rebuild from", dead))
	}
	t = t.WithDefaults()
	if !p.txMu.TryLock() {
		return fail(fmt.Errorf("reconfig: selfheal %s: %w", dead, ErrReconfigBusy))
	}
	defer p.txMu.Unlock()
	p.active.Store(true)
	defer p.active.Store(false)

	tx := p.tracer.Begin(fmt.Sprintf("selfheal %s -> %s (group %s)", dead, newName, group))
	res.TxID = tx.ID()
	mark := p.traceMark()
	j := &journal{}
	abort := func(stepErr error) (*TxResult, error) {
		tx.StartSpan("rollback")
		res.Steps = p.traceSince(mark)
		res.Err = stepErr
		res.RolledBack = true
		res.Rollback = j.rollback()
		tx.Finish("rolled-back", res.Steps)
		return res, fmt.Errorf("reconfig: selfheal %s rolled back: %w", dead, stepErr)
	}

	// Clone the dead member's specification. Its instance is still
	// registered — only its group membership was revoked.
	tx.StartSpan("plan")
	info, err := p.ObjCap(dead)
	if err != nil {
		return abort(err)
	}
	spec := bus.InstanceSpec{
		Name:       newName,
		Module:     info.Module,
		Machine:    info.Machine,
		Status:     bus.StatusClone,
		Interfaces: info.Interfaces,
		Attrs:      map[string]string{},
	}
	for k, v := range info.Attrs {
		spec.Attrs[k] = v
	}
	tx.StartSpan("add_clone")
	if err := p.AddObj(spec); err != nil {
		return abort(err)
	}
	j.record("delete_clone", func() error { return p.bus.DeleteInstance(newName) })

	// The checkpoint stands in for divulged state.
	tx.StartSpan("state_move")
	if err := p.InstallState(newName, ckpt); err != nil {
		return abort(err)
	}
	tx.StartSpan("launch")
	if err := p.ChgObj(launcher, newName, "add"); err != nil {
		return abort(err)
	}

	// Commit gate: the clone must confirm it rebuilt the checkpointed state.
	tx.StartSpan("restore_wait")
	if err := p.AwaitRestored(newName, t.RestoreAck); err != nil {
		return abort(err)
	}
	j.discard()
	res.Committed = true
	tx.StartSpan("commit_tail")

	// Destructive tail: recover any messages still fenced at the corpse,
	// admit the clone to the group, delete the corpse. Failures here cannot
	// roll the heal back; they are reported for operator cleanup.
	var tailErr error
	batch := p.BindCap()
	for _, ifc := range info.Interfaces {
		if !ifc.Dir.Receives() {
			continue
		}
		p.EditBind(batch, "cq",
			bus.Endpoint{Instance: dead, Interface: ifc.Name},
			bus.Endpoint{Instance: newName, Interface: ifc.Name})
	}
	if len(batch.edits) > 0 {
		if err := p.Rebind(batch); err != nil {
			tailErr = err
		}
	}
	if err := p.JoinGroup(group, newName); err != nil && tailErr == nil {
		tailErr = err
	}
	if err := p.ChgObj(nil, dead, "del"); err != nil && tailErr == nil {
		tailErr = err
	}
	res.Steps = p.traceSince(mark)
	tx.Finish("committed", res.Steps)
	if tailErr != nil {
		res.Err = fmt.Errorf("reconfig: selfheal %s committed, cleanup failed: %w", dead, tailErr)
		return res, res.Err
	}
	return res, nil
}
