package checkpoint

import (
	"errors"
	"testing"

	"repro/internal/codec"
	"repro/internal/state"
)

func snapOf(counter *int) Snapshot {
	return func() (*state.State, error) {
		st := state.New("m")
		st.PushFrame(state.Frame{Func: "main", Location: 1, Vars: []state.Var{
			{Name: "counter", Value: state.IntValue(int64(*counter))},
		}})
		return st, nil
	}
}

func TestNewValidation(t *testing.T) {
	counter := 0
	if _, err := New(0, nil, snapOf(&counter)); err == nil {
		t.Error("interval 0 accepted")
	}
	if _, err := New(1, nil, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	cp, err := New(1, nil, snapOf(&counter))
	if err != nil || cp == nil {
		t.Fatalf("New: %v", err)
	}
}

func TestCheckpointEveryInterval(t *testing.T) {
	counter := 0
	cp, err := New(3, codec.Default(), snapOf(&counter))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		counter = i
		if err := cp.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	st := cp.Stats()
	if st.Ops != 10 {
		t.Errorf("Ops = %d", st.Ops)
	}
	// Checkpoints at op 3, 6, 9.
	if st.Checkpoints != 3 {
		t.Errorf("Checkpoints = %d", st.Checkpoints)
	}
	if st.Bytes <= 0 {
		t.Errorf("Bytes = %d", st.Bytes)
	}
	if cp.LatestSize() <= 0 {
		t.Error("no latest checkpoint")
	}
	// One op (op 10) since the last checkpoint: restore replays 1.
	if cp.PendingOps() != 1 {
		t.Errorf("PendingOps = %d", cp.PendingOps())
	}
	restored, replay, err := cp.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if replay != 1 {
		t.Errorf("replay = %d", replay)
	}
	v, ok := restored.Frames[0].Var("counter")
	if !ok || v.Int != 9 {
		t.Errorf("restored counter = %v (rolled back to op 9)", v)
	}
	if got := cp.Stats(); got.Restores != 1 || got.Replayed != 1 {
		t.Errorf("restore stats = %+v", got)
	}
}

func TestRestoreBeforeAnyCheckpoint(t *testing.T) {
	counter := 0
	cp, err := New(100, nil, snapOf(&counter))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cp.Restore(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v", err)
	}
}

func TestSnapshotFailurePropagates(t *testing.T) {
	boom := errors.New("boom")
	cp, err := New(1, nil, func() (*state.State, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Tick(); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

// TestWorkLostGrowsWithInterval quantifies the rollback cost the paper's
// approach avoids: the larger the checkpoint interval, the more completed
// work a reconfiguration discards.
func TestWorkLostGrowsWithInterval(t *testing.T) {
	for _, interval := range []int{1, 5, 25} {
		counter := 0
		cp, err := New(interval, nil, snapOf(&counter))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 99; i++ {
			counter = i
			if err := cp.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		wantPending := 99 % interval
		if cp.PendingOps() != wantPending {
			t.Errorf("interval %d: pending = %d, want %d", interval, cp.PendingOps(), wantPending)
		}
		wantCheckpoints := int64(99 / interval)
		if cp.Stats().Checkpoints != wantCheckpoints {
			t.Errorf("interval %d: checkpoints = %d, want %d", interval, cp.Stats().Checkpoints, wantCheckpoints)
		}
	}
}

// TestConcurrentTickAndRestore pins the concurrency contract: the module
// thread Ticks while a supervisor goroutine reads Latest/Stats/PendingOps
// and Restores. Run under -race (scripts/check.sh does).
func TestConcurrentTickAndRestore(t *testing.T) {
	counter := 0
	cp, err := New(2, codec.Default(), snapOf(&counter))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { //archlint:spawn test reader goroutine; joined via done channel
		defer close(done)
		for i := 0; i < 500; i++ {
			cp.Latest()
			cp.LatestSize()
			cp.Stats()
			cp.PendingOps()
			if _, _, err := cp.Restore(); err != nil && !errors.Is(err, ErrNoCheckpoint) {
				t.Errorf("Restore: %v", err)
				return
			}
		}
	}()
	for i := 1; i <= 1000; i++ {
		counter = i
		if err := cp.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if cp.Latest() == nil {
		t.Error("no checkpoint after 1000 ticks at interval 2")
	}
	if st := cp.Stats(); st.Checkpoints != 500 {
		t.Errorf("Checkpoints = %d, want 500", st.Checkpoints)
	}
}
