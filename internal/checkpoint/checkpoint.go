// Package checkpoint implements the baseline the paper's Discussion argues
// against: periodic full-state checkpointing with rollback restore.
//
// "Our approach does not use checkpointing, in which the entire state of
// the process is saved periodically, and execution is rolled back to the
// most recent checkpoint in order to restore the process. [...] The cost of
// capturing the process state is paid only when a reconfiguration is
// performed, instead of at regular intervals during execution."
//
// The Checkpointer charges the full capture+encode cost every interval
// operations; a reconfiguration restores the latest checkpoint and must
// re-execute (replay) the operations performed since it was taken.
// Experiment C2 sweeps the interval and compares steady-state overhead and
// work lost at reconfiguration against the reconfiguration-point approach,
// whose steady-state cost is one flag test per point execution.
package checkpoint

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/state"
)

// ErrNoCheckpoint indicates a restore before any checkpoint was taken.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint taken")

// Snapshot produces the module's full abstract state on demand.
type Snapshot func() (*state.State, error)

// Stats counts checkpointing activity.
type Stats struct {
	// Ops is the number of operations observed.
	Ops int64
	// Checkpoints is the number of snapshots taken.
	Checkpoints int64
	// Bytes is the total encoded checkpoint volume.
	Bytes int64
	// Replayed is the total operations re-executed after restores.
	Replayed int64
	// Restores counts restorations.
	Restores int64
}

// Checkpointer snapshots a module's state every Interval operations. It is
// safe for concurrent use: the module thread Ticks while a supervisor reads
// Latest/Stats or Restores from another goroutine.
type Checkpointer struct {
	interval int
	codec    codec.Codec
	snapshot Snapshot

	mu        sync.Mutex
	sinceLast int
	last      []byte
	stats     Stats
}

// New builds a checkpointer. interval is the number of operations between
// snapshots (≥1); snapshot renders the module state.
func New(interval int, c codec.Codec, snap Snapshot) (*Checkpointer, error) {
	if interval < 1 {
		return nil, fmt.Errorf("checkpoint: interval %d < 1", interval)
	}
	if snap == nil {
		return nil, errors.New("checkpoint: nil snapshot function")
	}
	if c == nil {
		c = codec.Default()
	}
	return &Checkpointer{interval: interval, codec: c, snapshot: snap}, nil
}

// Tick records one completed operation, taking a checkpoint when the
// interval elapses. This is the steady-state cost the paper's approach
// avoids.
func (cp *Checkpointer) Tick() error {
	cp.mu.Lock()
	cp.stats.Ops++
	cp.sinceLast++
	if cp.sinceLast < cp.interval {
		cp.mu.Unlock()
		return nil
	}
	cp.sinceLast = 0
	cp.mu.Unlock()
	// The snapshot runs outside the lock: it calls back into module code,
	// and the module thread is the only Ticker, so sinceLast cannot race
	// past the interval while the capture is in flight.
	st, err := cp.snapshot()
	if err != nil {
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	data, err := cp.codec.EncodeState(st)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	cp.mu.Lock()
	cp.last = data
	cp.stats.Checkpoints++
	cp.stats.Bytes += int64(len(data))
	cp.mu.Unlock()
	return nil
}

// Checkpoint forces an immediate snapshot, off the interval schedule. The
// mh runtime takes one at snapshot registration so a replica is recoverable
// from birth, before its first interval elapses. Like Tick, it must be
// called from the module thread (the snapshot calls into module code).
func (cp *Checkpointer) Checkpoint() error {
	st, err := cp.snapshot()
	if err != nil {
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	data, err := cp.codec.EncodeState(st)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	cp.mu.Lock()
	cp.last = data
	cp.sinceLast = 0
	cp.stats.Checkpoints++
	cp.stats.Bytes += int64(len(data))
	cp.mu.Unlock()
	return nil
}

// PendingOps reports the operations performed since the last checkpoint —
// the work a restore loses and must replay.
func (cp *Checkpointer) PendingOps() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.sinceLast
}

// Restore returns the most recent checkpoint and the number of operations
// that must be replayed on top of it. The caller re-executes them.
func (cp *Checkpointer) Restore() (*state.State, int, error) {
	cp.mu.Lock()
	last := cp.last
	replay := cp.sinceLast
	cp.mu.Unlock()
	if last == nil {
		return nil, 0, ErrNoCheckpoint
	}
	st, err := cp.codec.DecodeState(last)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: decode: %w", err)
	}
	cp.mu.Lock()
	cp.stats.Restores++
	cp.stats.Replayed += int64(replay)
	cp.mu.Unlock()
	return st, replay, nil
}

// Latest returns the newest encoded checkpoint, or nil if none was taken.
// The supervisor publishes these bytes as the stand-in for a crashed
// replica's divulged state. The returned slice must not be mutated.
func (cp *Checkpointer) Latest() []byte {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.last
}

// Stats returns a copy of the counters.
func (cp *Checkpointer) Stats() Stats {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.stats
}

// LatestSize returns the encoded size of the newest checkpoint (0 if none).
func (cp *Checkpointer) LatestSize() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.last)
}
