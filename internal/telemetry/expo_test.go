package telemetry

import (
	"strings"
	"testing"
)

// labelEveryDotted is a test rule: "lbl.<instance>.<metric>" becomes
// "test_<metric>{instance=...}", with the instance allowed to contain any
// bytes a spec file could smuggle in.
func labelEveryDotted(name string) (string, []Label) {
	if !strings.HasPrefix(name, "lbl.") {
		return "", nil
	}
	rest := strings.TrimPrefix(name, "lbl.")
	i := strings.LastIndexByte(rest, '.')
	if i <= 0 {
		return "", nil
	}
	return "test_" + rest[i+1:], []Label{{Name: "instance", Value: rest[:i]}}
}

// TestWritePrometheusLabelGolden pins the exact exposition output for
// labeled rendering: family grouping with a single TYPE line, flat metrics
// first, label values escaped per the Prometheus text format (backslash,
// double quote and newline escaped; other UTF-8 passes through).
func TestWritePrometheusLabelGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain.count").Add(3)
	r.Counter("lbl.display.sent").Add(7)
	r.Counter(`lbl.quo"te.sent`).Add(1)
	r.Counter(`lbl.back\slash.sent`).Add(2)
	r.Counter("lbl.new\nline.sent").Add(4)
	r.Counter("lbl.жмых.sent").Add(5)
	r.Gauge("lbl.display.depth").Set(9)

	var b strings.Builder
	WritePrometheus(&b, r, labelEveryDotted)

	const want = `# TYPE plain_count counter
plain_count 3
# TYPE test_depth gauge
test_depth{instance="display"} 9
# TYPE test_sent counter
test_sent{instance="back\\slash"} 2
test_sent{instance="display"} 7
test_sent{instance="new\nline"} 4
test_sent{instance="quo\"te"} 1
test_sent{instance="жмых"} 5
`
	if got := b.String(); got != want {
		t.Fatalf("labeled exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusLabeledHistogram pins the labeled histogram shape:
// per-series buckets carry the rule labels merged with le, and _sum/_count
// carry the labels alone.
func TestWritePrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lbl.worker.latency")
	h.ObserveNs(1) // bucket 1 (le="1")
	h.ObserveNs(3) // bucket 2 (le="3")

	var b strings.Builder
	WritePrometheus(&b, r, labelEveryDotted)

	const want = `# TYPE test_latency histogram
test_latency_bucket{instance="worker",le="0"} 0
test_latency_bucket{instance="worker",le="1"} 1
test_latency_bucket{instance="worker",le="3"} 2
test_latency_bucket{instance="worker",le="+Inf"} 2
test_latency_sum{instance="worker"} 4
test_latency_count{instance="worker"} 2
`
	if got := b.String(); got != want {
		t.Fatalf("labeled histogram mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusNoRules keeps the legacy flat rendering byte-stable
// when no rules are passed.
func TestWritePrometheusNoRules(t *testing.T) {
	r := NewRegistry()
	r.Counter("bus.iface.a.req.sent").Add(2)
	r.Gauge("g").Set(1)

	var b strings.Builder
	WritePrometheus(&b, r)

	const want = `# TYPE bus_iface_a_req_sent counter
bus_iface_a_req_sent 2
# TYPE g gauge
g 1
`
	if got := b.String(); got != want {
		t.Fatalf("flat exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
