// Package timeseries turns the registry's cumulative atomics into bounded
// windowed history: a background roller samples every counter, gauge and
// histogram once per window (default 1s) and stores per-window deltas —
// counter increments, gauge samples, and windowed histogram quantiles
// computed from bucket-count differences — in a fixed ring of windows
// (default 120, so two minutes of 1s history).
//
// The design constraint is the same one the paper applies to the
// reconfiguration flag test: the steady state must not pay for the
// capability. The roller reads the registry's existing atomics off the hot
// path; send/deliver code is untouched and stays zero allocations per
// message (enforced by TestTimeseriesOverheadArtifact and cmd/perfgate).
// Readers (the /timeseries endpoint, the health checker, reconfigctl
// watch) take the roller's mutex, which no message path ever touches.
package timeseries

import (
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Kind names the metric kind of a series.
type Kind string

// Series kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// HistWindow summarizes one window of histogram observations: the delta of
// the cumulative bucket counts across the window, reduced to count, sum and
// interpolated quantiles.
type HistWindow struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// Point is one window of one series. Value carries the counter delta or
// gauge sample; Hist is set for histogram series instead.
type Point struct {
	StartNs int64       `json:"start_ns"`
	EndNs   int64       `json:"end_ns"`
	Value   int64       `json:"value,omitempty"`
	Hist    *HistWindow `json:"hist,omitempty"`
}

// Series is the windowed history of one metric, oldest window first.
type Series struct {
	Metric   string  `json:"metric"`
	Kind     Kind    `json:"kind"`
	WindowNs int64   `json:"window_ns"`
	Points   []Point `json:"points"`
}

// Config parameterizes a Roller.
type Config struct {
	// Window is the rollup period (default 1s).
	Window time.Duration
	// Windows is the ring depth in windows (default 120, minimum 2).
	Windows int
	// Now supplies the clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

// series is one metric's ring state. A series exists for exactly the
// contiguous run of rolls [first..last]; a metric absent from the registry
// at a roll (Unregister) is dropped and re-registers as a fresh series.
type series struct {
	kind  Kind
	first uint64 // roll number (1-based) of the first recorded window
	vals  []int64
	hist  []HistWindow

	// Cumulative state for delta computation (counters and histograms).
	cum        int64
	cumSum     int64
	cumBuckets [telemetry.NumBuckets]int64
}

// Roller owns the window ring. Roll (called by the background loop, or
// directly by fake-clock tests) closes the current window for every
// registered metric; Query serves bounded history per metric.
type Roller struct {
	reg    *telemetry.Registry
	window time.Duration
	n      int
	now    func() time.Time

	mu     sync.Mutex
	rolled uint64 // completed windows; window j lives at ring index (j-1)%n
	starts []int64
	ends   []int64
	series map[string]*series
	lastNs int64 // start of the currently open window

	stop chan struct{}
	done chan struct{}
}

// New builds a roller over reg. The first window opens at construction
// time; nothing is recorded until the first Roll.
func New(reg *telemetry.Registry, cfg Config) *Roller {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 120
	}
	if cfg.Windows < 2 {
		cfg.Windows = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Roller{
		reg:    reg,
		window: cfg.Window,
		n:      cfg.Windows,
		now:    cfg.Now,
		starts: make([]int64, cfg.Windows),
		ends:   make([]int64, cfg.Windows),
		series: map[string]*series{},
		lastNs: cfg.Now().UnixNano(),
	}
}

// Window returns the rollup period.
func (r *Roller) Window() time.Duration {
	if r == nil {
		return 0
	}
	return r.window
}

// Depth returns the ring depth in windows.
func (r *Roller) Depth() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Roll closes the current window: every registered metric gets one point
// (counter delta, gauge sample, or windowed histogram stats). Metrics that
// left the registry since the last roll are dropped. Safe on nil.
func (r *Roller) Roll() {
	if r == nil {
		return
	}
	nowNs := r.now().UnixNano()

	// Read every metric before taking r.mu: gauge functions may take other
	// locks (the bus's, for queue depths), and none of this touches a hot
	// path — it is one pass per window.
	h := r.reg.Handles()
	cvals := make(map[string]int64, len(h.Counters))
	for name, c := range h.Counters {
		cvals[name] = c.Load()
	}
	gvals := make(map[string]int64, len(h.Gauges)+len(h.GaugeFns))
	for name, g := range h.Gauges {
		gvals[name] = g.Load()
	}
	for name, fn := range h.GaugeFns {
		gvals[name] = fn()
	}
	type histSnap struct {
		buckets [telemetry.NumBuckets]int64
		sum     int64
	}
	hvals := make(map[string]histSnap, len(h.Histograms))
	for name, hist := range h.Histograms {
		hvals[name] = histSnap{buckets: hist.Buckets(), sum: hist.Sum()}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.rolled++
	idx := int((r.rolled - 1) % uint64(r.n))
	r.starts[idx] = r.lastNs
	r.ends[idx] = nowNs
	r.lastNs = nowNs

	for name, val := range cvals {
		s := r.ensureLocked(name, KindCounter)
		delta := val - s.cum
		if delta < 0 {
			// The counter was re-registered under the same name mid-window;
			// treat the new cumulative value as the window's delta.
			delta = val
		}
		s.cum = val
		s.vals[idx] = delta
	}
	for name, val := range gvals {
		s := r.ensureLocked(name, KindGauge)
		s.vals[idx] = val
	}
	for name, snap := range hvals {
		s := r.ensureLocked(name, KindHistogram)
		var delta [telemetry.NumBuckets]int64
		var count int64
		reset := false
		for i := range snap.buckets {
			d := snap.buckets[i] - s.cumBuckets[i]
			if d < 0 {
				reset = true
				break
			}
			delta[i] = d
			count += d
		}
		sum := snap.sum - s.cumSum
		if reset || sum < 0 {
			delta = snap.buckets
			count = 0
			for _, d := range delta {
				count += d
			}
			sum = snap.sum
		}
		s.cumBuckets = snap.buckets
		s.cumSum = snap.sum
		s.hist[idx] = HistWindow{
			Count: count,
			SumNs: sum,
			P50Ns: telemetry.BucketQuantile(&delta, count, 0.50),
			P95Ns: telemetry.BucketQuantile(&delta, count, 0.95),
			P99Ns: telemetry.BucketQuantile(&delta, count, 0.99),
		}
	}

	// Drop series for metrics gone from the registry, keeping every live
	// series contiguous through the current roll (the query path relies on
	// [first..rolled] being fully recorded).
	for name, s := range r.series {
		switch s.kind {
		case KindCounter:
			if _, ok := cvals[name]; ok {
				continue
			}
		case KindGauge:
			if _, ok := gvals[name]; ok {
				continue
			}
		case KindHistogram:
			if _, ok := hvals[name]; ok {
				continue
			}
		}
		delete(r.series, name)
	}
}

// ensureLocked returns the live series for name, creating (or re-typing, if
// a name changed kind across an unregister) as needed.
func (r *Roller) ensureLocked(name string, kind Kind) *series {
	s := r.series[name]
	if s == nil || s.kind != kind {
		s = &series{kind: kind, first: r.rolled}
		if kind == KindHistogram {
			s.hist = make([]HistWindow, r.n)
		} else {
			s.vals = make([]int64, r.n)
		}
		r.series[name] = s
	}
	return s
}

// Query returns the last k windows of one metric, oldest first (all
// retained windows when k <= 0). The second result is false for unknown
// metrics. Safe on nil.
func (r *Roller) Query(metric string, k int) (Series, bool) {
	if r == nil {
		return Series{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[metric]
	if !ok {
		return Series{}, false
	}
	out := Series{Metric: metric, Kind: s.kind, WindowNs: int64(r.window)}
	lo := s.first
	if r.rolled >= uint64(r.n) && lo <= r.rolled-uint64(r.n) {
		lo = r.rolled - uint64(r.n) + 1
	}
	if k > 0 && r.rolled >= uint64(k) && lo <= r.rolled-uint64(k) {
		lo = r.rolled - uint64(k) + 1
	}
	for j := lo; j <= r.rolled; j++ {
		idx := int((j - 1) % uint64(r.n))
		p := Point{StartNs: r.starts[idx], EndNs: r.ends[idx]}
		if s.kind == KindHistogram {
			hw := s.hist[idx]
			p.Hist = &hw
		} else {
			p.Value = s.vals[idx]
		}
		out.Points = append(out.Points, p)
	}
	return out, true
}

// Names returns the sorted names of every live series.
func (r *Roller) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for name := range r.series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Rolled returns the number of completed windows.
func (r *Roller) Rolled() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rolled
}

// MemoryBound returns the ring's current retained memory in bytes: the
// window timestamp rings plus every series' value or histogram ring. It
// grows only with the metric population, never with time — the per-metric
// cost is fixed at Windows entries.
func (r *Roller) MemoryBound() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	const histWindowBytes = 5 * 8
	total := 2 * r.n * 8
	for _, s := range r.series {
		if s.kind == KindHistogram {
			total += r.n * histWindowBytes
		} else {
			total += r.n * 8
		}
	}
	return total
}

// Start launches the background roller goroutine. Stop halts it.
func (r *Roller) Start() {
	if r == nil || r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.loop() //archlint:spawn timeseries roller; exits when Stop closes the stop channel
}

func (r *Roller) loop() {
	defer close(r.done)
	t := time.NewTicker(r.window)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Roll()
		}
	}
}

// Stop halts the background roller and waits for it to exit. A no-op if
// Start was never called. Safe on nil.
func (r *Roller) Stop() {
	if r == nil || r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop = nil
}
