package timeseries

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock is a manually advanced clock for deterministic window edges.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns) }
func (c *fakeClock) advance(d time.Duration) { c.ns += int64(d) }

func newTestRoller(windows int) (*Roller, *telemetry.Registry, *fakeClock) {
	reg := telemetry.NewRegistry()
	clk := &fakeClock{ns: 1_000_000_000}
	r := New(reg, Config{Window: time.Second, Windows: windows, Now: clk.now})
	return r, reg, clk
}

func TestCounterDeltas(t *testing.T) {
	r, reg, clk := newTestRoller(8)
	c := reg.Counter("app.requests")
	c.Add(10)
	clk.advance(time.Second)
	r.Roll()
	c.Add(5)
	clk.advance(time.Second)
	r.Roll()
	clk.advance(time.Second)
	r.Roll() // idle window

	s, ok := r.Query("app.requests", 0)
	if !ok {
		t.Fatal("series not found")
	}
	if s.Kind != KindCounter {
		t.Fatalf("kind = %s, want counter", s.Kind)
	}
	want := []int64{10, 5, 0}
	if len(s.Points) != len(want) {
		t.Fatalf("got %d points, want %d", len(s.Points), len(want))
	}
	for i, w := range want {
		if s.Points[i].Value != w {
			t.Errorf("window %d delta = %d, want %d", i, s.Points[i].Value, w)
		}
	}
	// Window edges are contiguous.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].StartNs != s.Points[i-1].EndNs {
			t.Errorf("window %d start %d != previous end %d", i, s.Points[i].StartNs, s.Points[i-1].EndNs)
		}
	}
}

func TestGaugeSamplesAndGaugeFunc(t *testing.T) {
	r, reg, clk := newTestRoller(8)
	g := reg.Gauge("app.depth")
	depth := int64(7)
	reg.GaugeFunc("app.computed", func() int64 { return depth })

	g.Set(3)
	clk.advance(time.Second)
	r.Roll()
	g.Set(9)
	depth = 11
	clk.advance(time.Second)
	r.Roll()

	s, _ := r.Query("app.depth", 0)
	if s.Points[0].Value != 3 || s.Points[1].Value != 9 {
		t.Errorf("gauge samples = %d,%d want 3,9", s.Points[0].Value, s.Points[1].Value)
	}
	s, _ = r.Query("app.computed", 0)
	if s.Points[0].Value != 7 || s.Points[1].Value != 11 {
		t.Errorf("gauge-func samples = %d,%d want 7,11", s.Points[0].Value, s.Points[1].Value)
	}
}

func TestHistogramWindows(t *testing.T) {
	r, reg, clk := newTestRoller(8)
	h := reg.Histogram("app.latency_ns")
	for i := 0; i < 100; i++ {
		h.ObserveNs(1000)
	}
	clk.advance(time.Second)
	r.Roll()
	for i := 0; i < 100; i++ {
		h.ObserveNs(1_000_000)
	}
	clk.advance(time.Second)
	r.Roll()

	s, ok := r.Query("app.latency_ns", 0)
	if !ok || s.Kind != KindHistogram {
		t.Fatalf("missing histogram series (ok=%v kind=%s)", ok, s.Kind)
	}
	w0, w1 := s.Points[0].Hist, s.Points[1].Hist
	if w0.Count != 100 || w1.Count != 100 {
		t.Fatalf("window counts = %d,%d want 100,100", w0.Count, w1.Count)
	}
	// The second window's quantiles must reflect only the second window's
	// population: 1ms-scale, not 1us-scale.
	if w1.P99Ns < 500_000 {
		t.Errorf("second window p99 = %dns, want ~1ms (windowing leaked the first window in)", w1.P99Ns)
	}
	if w0.P99Ns > 10_000 {
		t.Errorf("first window p99 = %dns, want ~1us", w0.P99Ns)
	}
	if w1.SumNs != 100*1_000_000 {
		t.Errorf("second window sum = %d, want %d", w1.SumNs, 100*1_000_000)
	}
}

func TestRingBound(t *testing.T) {
	r, reg, clk := newTestRoller(4)
	c := reg.Counter("app.requests")
	for i := 1; i <= 10; i++ {
		c.Add(int64(i))
		clk.advance(time.Second)
		r.Roll()
	}
	s, _ := r.Query("app.requests", 0)
	if len(s.Points) != 4 {
		t.Fatalf("retained %d windows, want ring depth 4", len(s.Points))
	}
	// The last four deltas are 7, 8, 9, 10.
	for i, want := range []int64{7, 8, 9, 10} {
		if s.Points[i].Value != want {
			t.Errorf("point %d = %d, want %d", i, s.Points[i].Value, want)
		}
	}
	// Query with k smaller than retention trims from the oldest side.
	s, _ = r.Query("app.requests", 2)
	if len(s.Points) != 2 || s.Points[0].Value != 9 || s.Points[1].Value != 10 {
		t.Errorf("Query(2) = %+v, want deltas 9,10", s.Points)
	}
}

func TestUnregisterDropsSeries(t *testing.T) {
	r, reg, clk := newTestRoller(4)
	reg.Counter("bus.iface.x.req.delivered").Add(3)
	clk.advance(time.Second)
	r.Roll()
	if _, ok := r.Query("bus.iface.x.req.delivered", 0); !ok {
		t.Fatal("series missing before unregister")
	}
	reg.Unregister("bus.iface.x.")
	clk.advance(time.Second)
	r.Roll()
	if _, ok := r.Query("bus.iface.x.req.delivered", 0); ok {
		t.Error("series survived unregister + roll")
	}
	// Re-registering the same name starts a fresh series with reset deltas.
	reg.Counter("bus.iface.x.req.delivered").Add(2)
	clk.advance(time.Second)
	r.Roll()
	s, ok := r.Query("bus.iface.x.req.delivered", 0)
	if !ok || len(s.Points) != 1 || s.Points[0].Value != 2 {
		t.Errorf("re-registered series = %+v, want single window delta 2", s.Points)
	}
}

func TestMemoryBoundFixed(t *testing.T) {
	r, reg, clk := newTestRoller(16)
	for i := 0; i < 10; i++ {
		reg.Counter("c" + string(rune('a'+i))).Inc()
	}
	reg.Histogram("h").ObserveNs(1)
	clk.advance(time.Second)
	r.Roll()
	bound := r.MemoryBound()
	if bound <= 0 {
		t.Fatal("zero memory bound")
	}
	// Rolling more windows must not grow the bound: it is population-, not
	// time-proportional.
	for i := 0; i < 100; i++ {
		clk.advance(time.Second)
		r.Roll()
	}
	if got := r.MemoryBound(); got != bound {
		t.Errorf("memory bound grew with time: %d -> %d", bound, got)
	}
}

func TestStartStop(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("c").Inc()
	r := New(reg, Config{Window: time.Millisecond, Windows: 8})
	r.Start()
	defer r.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for r.Rolled() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("background roller made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	at := r.Rolled()
	time.Sleep(5 * time.Millisecond)
	if r.Rolled() != at {
		t.Error("roller still rolling after Stop")
	}
}
