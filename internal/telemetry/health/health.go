// Package health turns windowed per-instance telemetry into structured
// verdicts. It reads the time-series roller's history — delivery counts,
// delivery-latency p99s, and module error counts attributed to one
// instance — and compares a candidate against an incumbent baseline with
// burn-rate-style thresholds: a verdict worsens only when both a short
// recent span and the longer evaluation span agree, so a single bad window
// neither pages nor rolls anything back.
//
// This is the paper's "operator observes the replacement" step made
// mechanical: the supervisor consumes Critical verdicts as a second
// stall/crash signal, ReplaceTx records the candidate-vs-incumbent
// comparison as a health_check span note, and /health/{instance} serves
// the same verdict with its evidence windows to a human.
package health

import (
	"fmt"
	"strings"

	"repro/internal/telemetry/timeseries"
)

// Level is the verdict severity.
type Level int

// Verdict levels, from best to worst.
const (
	Healthy Level = iota
	Degraded
	Critical
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return "healthy"
	}
}

// MarshalJSON renders the level as its string name.
func (l Level) MarshalJSON() ([]byte, error) {
	return []byte(`"` + l.String() + `"`), nil
}

// Window is one evaluation window of one instance: delivery and error
// deltas plus the worst delivery-latency p99 across the instance's
// receiving interfaces.
type Window struct {
	StartNs   int64 `json:"start_ns"`
	EndNs     int64 `json:"end_ns"`
	Delivered int64 `json:"delivered"`
	Errors    int64 `json:"errors"`
	P99Ns     int64 `json:"p99_ns,omitempty"`
	LatObs    int64 `json:"latency_observations,omitempty"`
}

// Verdict is the structured health judgment for one instance.
type Verdict struct {
	Instance string   `json:"instance"`
	Baseline []string `json:"baseline,omitempty"`
	Level    Level    `json:"level"`
	Reasons  []string `json:"reasons,omitempty"`
	// Evidence holds the windows the judgment was made on, oldest first.
	Evidence []Window `json:"evidence,omitempty"`
	// BaselineP99Ns is the incumbent latency reference (0 if none).
	BaselineP99Ns int64 `json:"baseline_p99_ns,omitempty"`
	// ErrorRate and ShortErrorRate are the long- and short-span rates.
	ErrorRate      float64 `json:"error_rate"`
	ShortErrorRate float64 `json:"short_error_rate"`
}

// Summary renders the verdict as one line for span notes and CLI output.
func (v Verdict) Summary() string {
	s := fmt.Sprintf("%s %s err_rate=%.3f short=%.3f windows=%d",
		v.Instance, v.Level, v.ErrorRate, v.ShortErrorRate, len(v.Evidence))
	if len(v.Reasons) > 0 {
		s += " (" + strings.Join(v.Reasons, "; ") + ")"
	}
	return s
}

// Config sets the verdict thresholds. Zero values take the documented
// defaults.
type Config struct {
	// Span is how many trailing windows the long-span rates cover
	// (default 8); ShortSpan is the recent burn span (default 3).
	Span      int
	ShortSpan int
	// MinWindows is the minimum recorded windows before any non-Healthy
	// verdict (default 3). MinSamples is the minimum delivered+errors
	// events across the span (default 20); below it the verdict stays
	// Healthy with an "insufficient data" reason.
	MinWindows int
	MinSamples int
	// Error-rate thresholds. Degraded when the long-span rate crosses
	// DegradedErrorRate (default 0.05); Critical when the short span burns
	// at CriticalErrorRate (default 0.25) while the long span confirms at
	// DegradedErrorRate — the two-window agreement is what makes it a
	// burn-rate test rather than a point alarm.
	DegradedErrorRate float64
	CriticalErrorRate float64
	// Latency thresholds, as multiples of the baseline p99 (defaults 3x
	// Degraded, 8x Critical). Skipped when no baseline peer has latency
	// history.
	DegradedLatencyFactor float64
	CriticalLatencyFactor float64
}

func (c Config) withDefaults() Config {
	if c.Span <= 0 {
		c.Span = 8
	}
	if c.ShortSpan <= 0 {
		c.ShortSpan = 3
	}
	if c.ShortSpan > c.Span {
		c.ShortSpan = c.Span
	}
	if c.MinWindows <= 0 {
		c.MinWindows = 3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.DegradedErrorRate <= 0 {
		c.DegradedErrorRate = 0.05
	}
	if c.CriticalErrorRate <= 0 {
		c.CriticalErrorRate = 0.25
	}
	if c.DegradedLatencyFactor <= 0 {
		c.DegradedLatencyFactor = 3
	}
	if c.CriticalLatencyFactor <= 0 {
		c.CriticalLatencyFactor = 8
	}
	return c
}

// Checker evaluates instances against a roller's windowed history.
type Checker struct {
	roller *timeseries.Roller
	cfg    Config
}

// NewChecker builds a checker over r. Safe to call with a nil roller: the
// checker then always returns Healthy "no history" verdicts.
func NewChecker(r *timeseries.Roller, cfg Config) *Checker {
	return &Checker{roller: r, cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (c *Checker) Config() Config {
	if c == nil {
		return Config{}.withDefaults()
	}
	return c.cfg
}

// metricClass classifies a registry metric name as belonging to instance
// inst. Instance names may contain dots ("pool.1"), so bus metrics are
// matched by peeling the dotless interface and metric segments off the
// right-hand side.
type metricClass int

const (
	classNone metricClass = iota
	classDelivered
	classLatency
	classErrors
)

func classify(name, inst string) metricClass {
	if name == "mh."+inst+".errors" {
		return classErrors
	}
	const busPrefix = "bus.iface."
	if !strings.HasPrefix(name, busPrefix) {
		return classNone
	}
	rest := strings.TrimPrefix(name, busPrefix)
	var class metricClass
	switch {
	case strings.HasSuffix(rest, ".delivered"):
		rest = strings.TrimSuffix(rest, ".delivered")
		class = classDelivered
	case strings.HasSuffix(rest, ".delivery_latency_ns"):
		rest = strings.TrimSuffix(rest, ".delivery_latency_ns")
		class = classLatency
	default:
		return classNone
	}
	// rest is now "<inst>.<iface>" with a dotless iface segment.
	i := strings.LastIndexByte(rest, '.')
	if i <= 0 || rest[:i] != inst {
		return classNone
	}
	return class
}

// InstanceWindows aggregates the last k windows of every metric attributed
// to inst into per-window totals, oldest first. Series are aligned by
// window end timestamp (every series shares the roller's window ring).
func InstanceWindows(r *timeseries.Roller, inst string, k int) []Window {
	if r == nil {
		return nil
	}
	agg := map[int64]*Window{}
	get := func(p timeseries.Point) *Window {
		w := agg[p.EndNs]
		if w == nil {
			w = &Window{StartNs: p.StartNs, EndNs: p.EndNs}
			agg[p.EndNs] = w
		}
		return w
	}
	for _, name := range r.Names() {
		class := classify(name, inst)
		if class == classNone {
			continue
		}
		s, ok := r.Query(name, k)
		if !ok {
			continue
		}
		for _, p := range s.Points {
			w := get(p)
			switch class {
			case classDelivered:
				w.Delivered += p.Value
			case classErrors:
				w.Errors += p.Value
			case classLatency:
				if p.Hist != nil {
					w.LatObs += p.Hist.Count
					if p.Hist.P99Ns > w.P99Ns {
						w.P99Ns = p.Hist.P99Ns
					}
				}
			}
		}
	}
	out := make([]Window, 0, len(agg))
	for _, w := range agg {
		out = append(out, *w)
	}
	sortWindows(out)
	return out
}

func sortWindows(ws []Window) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].EndNs < ws[j-1].EndNs; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

func errorRate(ws []Window) float64 {
	var errs, ops int64
	for _, w := range ws {
		errs += w.Errors
		ops += w.Delivered
	}
	if ops < errs {
		// Errors without matching deliveries (a module erroring before any
		// traffic counts) still saturate the rate at 1.
		ops = errs
	}
	if ops == 0 {
		return 0
	}
	return float64(errs) / float64(ops)
}

// worstSustainedP99 returns the smallest p99 among trailing windows that
// have latency observations — i.e. the level the instance never dropped
// below — and how many such windows there were. Using the minimum makes
// the latency test a sustained one: a single slow window cannot cross it.
func worstSustainedP99(ws []Window) (int64, int) {
	var minP99 int64
	n := 0
	for _, w := range ws {
		if w.LatObs == 0 {
			continue
		}
		if n == 0 || w.P99Ns < minP99 {
			minP99 = w.P99Ns
		}
		n++
	}
	return minP99, n
}

// baselineP99 pools the peers' windows and returns the highest per-window
// p99 any peer exhibited — the most latitude the incumbents themselves
// needed — as the latency reference.
func baselineP99(r *timeseries.Roller, peers []string, k int) int64 {
	var base int64
	for _, peer := range peers {
		for _, w := range InstanceWindows(r, peer, k) {
			if w.LatObs > 0 && w.P99Ns > base {
				base = w.P99Ns
			}
		}
	}
	return base
}

// Check evaluates inst against the pooled baseline peers (typically the
// incumbent replicas of its group, or the instance it is replacing) and
// returns a structured verdict with its evidence windows. Safe on a nil
// checker or roller.
func (c *Checker) Check(inst string, baseline []string) Verdict {
	v := Verdict{Instance: inst, Baseline: baseline, Level: Healthy}
	if c == nil || c.roller == nil {
		v.Reasons = append(v.Reasons, "no windowed history (roller disabled)")
		return v
	}
	cfg := c.cfg
	wins := InstanceWindows(c.roller, inst, cfg.Span)
	v.Evidence = wins
	if len(wins) < cfg.MinWindows {
		v.Reasons = append(v.Reasons, fmt.Sprintf("insufficient data: %d windows < %d", len(wins), cfg.MinWindows))
		return v
	}

	var samples int64
	for _, w := range wins {
		samples += w.Delivered + w.Errors
	}
	if samples < int64(cfg.MinSamples) {
		v.Reasons = append(v.Reasons, fmt.Sprintf("insufficient data: %d samples < %d", samples, cfg.MinSamples))
		return v
	}

	short := wins
	if len(short) > cfg.ShortSpan {
		short = short[len(short)-cfg.ShortSpan:]
	}
	v.ErrorRate = errorRate(wins)
	v.ShortErrorRate = errorRate(short)

	// Error burn rate: short and long spans must agree before escalating.
	switch {
	case v.ShortErrorRate >= cfg.CriticalErrorRate && v.ErrorRate >= cfg.DegradedErrorRate:
		v.Level = Critical
		v.Reasons = append(v.Reasons, fmt.Sprintf("error burn: short rate %.3f >= %.2f with span rate %.3f >= %.2f",
			v.ShortErrorRate, cfg.CriticalErrorRate, v.ErrorRate, cfg.DegradedErrorRate))
	case v.ErrorRate >= cfg.DegradedErrorRate:
		v.Level = Degraded
		v.Reasons = append(v.Reasons, fmt.Sprintf("error rate %.3f >= %.2f over %d windows",
			v.ErrorRate, cfg.DegradedErrorRate, len(wins)))
	}

	// Latency vs incumbent baseline, only when both sides have history.
	base := baselineP99(c.roller, baseline, cfg.Span)
	v.BaselineP99Ns = base
	if base > 0 {
		sustained, n := worstSustainedP99(short)
		if n >= min(cfg.ShortSpan, 2) {
			switch {
			case float64(sustained) >= float64(base)*cfg.CriticalLatencyFactor:
				v.Level = Critical
				v.Reasons = append(v.Reasons, fmt.Sprintf("sustained p99 %dns >= %.0fx baseline %dns over %d windows",
					sustained, cfg.CriticalLatencyFactor, base, n))
			case float64(sustained) >= float64(base)*cfg.DegradedLatencyFactor:
				if v.Level < Degraded {
					v.Level = Degraded
				}
				v.Reasons = append(v.Reasons, fmt.Sprintf("sustained p99 %dns >= %.0fx baseline %dns over %d windows",
					sustained, cfg.DegradedLatencyFactor, base, n))
			}
		}
	}

	if v.Level == Healthy && len(v.Reasons) == 0 {
		v.Reasons = append(v.Reasons, fmt.Sprintf("error rate %.3f, %d samples over %d windows", v.ErrorRate, samples, len(wins)))
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
