package health

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/timeseries"
)

type fixture struct {
	reg    *telemetry.Registry
	roller *timeseries.Roller
	ns     int64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{reg: telemetry.NewRegistry(), ns: 1_000_000_000}
	f.roller = timeseries.New(f.reg, timeseries.Config{
		Window:  time.Second,
		Windows: 32,
		Now:     func() time.Time { return time.Unix(0, f.ns) },
	})
	return f
}

func (f *fixture) roll() {
	f.ns += int64(time.Second)
	f.roller.Roll()
}

// traffic records one window of activity for an instance: delivered
// messages on iface "req", errors, and a latency population.
func (f *fixture) traffic(inst string, delivered, errors int64, latNs int64, latN int) {
	f.reg.Counter("bus.iface." + inst + ".req.delivered").Add(delivered)
	if errors > 0 {
		f.reg.Counter("mh." + inst + ".errors").Add(errors)
	}
	h := f.reg.Histogram("bus.iface." + inst + ".req.delivery_latency_ns")
	for i := 0; i < latN; i++ {
		h.ObserveNs(latNs)
	}
}

func TestHealthyInstance(t *testing.T) {
	f := newFixture(t)
	c := NewChecker(f.roller, Config{})
	for i := 0; i < 6; i++ {
		f.traffic("worker.1", 50, 0, 1000, 50)
		f.roll()
	}
	v := c.Check("worker.1", nil)
	if v.Level != Healthy {
		t.Fatalf("level = %s, want healthy: %s", v.Level, v.Summary())
	}
	if len(v.Evidence) == 0 {
		t.Error("healthy verdict carries no evidence windows")
	}
}

func TestInsufficientDataStaysHealthy(t *testing.T) {
	f := newFixture(t)
	c := NewChecker(f.roller, Config{})
	// Terrible error rate, but only one window and 4 samples.
	f.traffic("cand", 2, 2, 0, 0)
	f.roll()
	v := c.Check("cand", nil)
	if v.Level != Healthy {
		t.Fatalf("level = %s, want healthy while under min data", v.Level)
	}
	if len(v.Reasons) == 0 || !strings.Contains(v.Reasons[0], "insufficient data") {
		t.Errorf("reasons = %v, want insufficient-data", v.Reasons)
	}
}

func TestDegradedOnErrorRate(t *testing.T) {
	f := newFixture(t)
	c := NewChecker(f.roller, Config{})
	for i := 0; i < 8; i++ {
		f.traffic("cand", 100, 10, 0, 0) // 9% error rate, below the 25% burn
		f.roll()
	}
	v := c.Check("cand", nil)
	if v.Level != Degraded {
		t.Fatalf("level = %s, want degraded: %s", v.Level, v.Summary())
	}
	if v.ErrorRate < 0.05 {
		t.Errorf("error rate = %.3f, want >= 0.05", v.ErrorRate)
	}
}

func TestCriticalOnErrorBurn(t *testing.T) {
	f := newFixture(t)
	c := NewChecker(f.roller, Config{})
	// Clean history, then three windows burning at 50%.
	for i := 0; i < 5; i++ {
		f.traffic("cand", 100, 0, 0, 0)
		f.roll()
	}
	for i := 0; i < 3; i++ {
		f.traffic("cand", 100, 50, 0, 0)
		f.roll()
	}
	v := c.Check("cand", nil)
	if v.Level != Critical {
		t.Fatalf("level = %s, want critical: %s", v.Level, v.Summary())
	}
	if v.ShortErrorRate < 0.25 {
		t.Errorf("short rate = %.3f, want >= 0.25", v.ShortErrorRate)
	}
}

func TestSingleBadWindowDoesNotEscalate(t *testing.T) {
	f := newFixture(t)
	c := NewChecker(f.roller, Config{})
	for i := 0; i < 7; i++ {
		f.traffic("cand", 100, 0, 0, 0)
		f.roll()
	}
	// One bad window: 30% errors. The long span dilutes it well below 5%.
	f.traffic("cand", 100, 30, 0, 0)
	f.roll()
	v := c.Check("cand", nil)
	if v.Level != Healthy {
		t.Fatalf("level = %s after one bad window, want healthy: %s", v.Level, v.Summary())
	}
}

func TestLatencyVsBaseline(t *testing.T) {
	f := newFixture(t)
	c := NewChecker(f.roller, Config{})
	for i := 0; i < 6; i++ {
		f.traffic("incumbent", 100, 0, 10_000, 100) // ~10us baseline
		f.traffic("cand", 100, 0, 1_000_000, 100)   // ~1ms sustained
		f.roll()
	}
	v := c.Check("cand", []string{"incumbent"})
	if v.Level != Critical {
		t.Fatalf("level = %s, want critical on 100x sustained p99: %s", v.Level, v.Summary())
	}
	if v.BaselineP99Ns == 0 {
		t.Error("baseline p99 not recorded in verdict")
	}
	// The incumbent itself stays healthy against the candidate-free check.
	if got := c.Check("incumbent", nil); got.Level != Healthy {
		t.Errorf("incumbent level = %s, want healthy", got.Level)
	}
}

func TestLatencySkippedWithoutBaseline(t *testing.T) {
	f := newFixture(t)
	c := NewChecker(f.roller, Config{})
	for i := 0; i < 6; i++ {
		f.traffic("cand", 100, 0, 5_000_000, 100)
		f.roll()
	}
	v := c.Check("cand", nil)
	if v.Level != Healthy {
		t.Fatalf("level = %s, want healthy with no baseline to compare against", v.Level)
	}
}

func TestDottedInstanceNamesDoNotCrossMatch(t *testing.T) {
	f := newFixture(t)
	c := NewChecker(f.roller, Config{})
	for i := 0; i < 6; i++ {
		f.traffic("pool.1", 100, 50, 0, 0) // erroring replica
		f.traffic("pool", 100, 0, 0, 0)    // distinct healthy instance
		f.roll()
	}
	if v := c.Check("pool.1", nil); v.Level == Healthy {
		t.Errorf("pool.1 = healthy, want degraded/critical: %s", v.Summary())
	}
	if v := c.Check("pool", nil); v.Level != Healthy {
		t.Errorf("pool = %s, its replica's errors leaked across the name boundary: %s", v.Level, v.Summary())
	}
	// "pool.1"'s windows must not include "pool"'s deliveries.
	wins := InstanceWindows(f.roller, "pool.1", 0)
	for _, w := range wins {
		if w.Delivered > 100 {
			t.Fatalf("window delivered = %d, cross-instance aggregation", w.Delivered)
		}
	}
}

func TestNilCheckerAndRoller(t *testing.T) {
	var c *Checker
	if v := c.Check("x", nil); v.Level != Healthy {
		t.Error("nil checker verdict not healthy")
	}
	c2 := NewChecker(nil, Config{})
	if v := c2.Check("x", nil); v.Level != Healthy {
		t.Error("nil-roller checker verdict not healthy")
	}
	if InstanceWindows(nil, "x", 0) != nil {
		t.Error("nil roller windows not nil")
	}
}

func TestVerdictJSONLevel(t *testing.T) {
	b, err := Critical.MarshalJSON()
	if err != nil || string(b) != `"critical"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
}
