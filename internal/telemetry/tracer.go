package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Span is one timed phase of a reconfiguration transaction (quiesce wait,
// divulge wait, state move, rebind, restore ack, commit or rollback).
// Notes carry span-scoped annotations — e.g. the trace IDs and ages of the
// messages a quiesce wait found queued toward its target.
type Span struct {
	Name  string
	Start time.Time
	End   time.Time
	Notes []string
}

// Duration returns the span's length (0 while it is still open).
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Trace is the span timeline of one transactional reconfiguration,
// correlated by transaction ID with the journal's step trace.
type Trace struct {
	ID      string
	Op      string // e.g. "replace compute -> compute2"
	Begin   time.Time
	End     time.Time // zero while running
	Outcome string    // "committed", "rolled-back", or "running"
	Spans   []Span
	// Steps is the primitive audit trail of the same transaction (the
	// TxResult step trace), attached at Finish so one artifact carries both
	// the when (spans) and the what (primitives).
	Steps []string
}

// Timeline renders the trace for operator display: a header, one line per
// span with offset and duration, then the correlated primitive steps.
func (t *Trace) Timeline() []string {
	if t == nil {
		return nil
	}
	end := t.End
	if end.IsZero() && len(t.Spans) > 0 {
		end = t.Spans[len(t.Spans)-1].End
	}
	total := "running"
	if !end.IsZero() {
		total = fmt.Sprintf("total %.3fms", float64(end.Sub(t.Begin).Microseconds())/1000.0)
	}
	lines := []string{fmt.Sprintf("%s %s: %s (%s)", t.ID, t.Op, t.Outcome, total)}
	for _, s := range t.Spans {
		off := float64(s.Start.Sub(t.Begin).Microseconds()) / 1000.0
		if s.End.IsZero() {
			lines = append(lines, fmt.Sprintf("  +%9.3fms  %-14s (open)", off, s.Name))
		} else {
			dur := float64(s.Duration().Microseconds()) / 1000.0
			lines = append(lines, fmt.Sprintf("  +%9.3fms  %-14s %9.3fms", off, s.Name, dur))
		}
		for _, note := range s.Notes {
			lines = append(lines, "      - "+note)
		}
	}
	if len(t.Steps) > 0 {
		lines = append(lines, "  steps:")
		for _, step := range t.Steps {
			lines = append(lines, "    "+step)
		}
	}
	return lines
}

// Tracer assigns transaction IDs and retains the most recent traces in a
// bounded ring. All methods are safe for concurrent use and on a nil
// receiver (Begin then returns a nil *TxTrace, whose methods are no-ops —
// tracing disabled).
type Tracer struct {
	mu     sync.Mutex
	nextID int64
	max    int
	order  []string // oldest first
	traces map[string]*Trace
	clock  func() time.Time
	reg    *Registry // span-duration histograms (nil = no aggregation)
}

// NewTracer returns a tracer retaining the max most recent traces
// (default 64 when max <= 0).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = 64
	}
	return &Tracer{max: max, traces: map[string]*Trace{}, clock: time.Now}
}

// SetRegistry attaches a metrics registry: each Finish then observes every
// closed span's duration into the "reconfig.span.<name>_ns" histogram and
// the whole transaction into "reconfig.tx_total_ns", so the latency
// distribution of reconfigurations is available as aggregate buckets (the
// /metrics endpoint) alongside the per-transaction timelines.
func (t *Tracer) SetRegistry(reg *Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg = reg
}

// SetClock overrides the tracer's time source (tests pin it for
// deterministic timelines).
func (t *Tracer) SetClock(fn func() time.Time) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = fn
}

// Begin opens a new trace for one transaction and returns its builder.
func (t *Tracer) Begin(op string) *TxTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := fmt.Sprintf("tx-%04d", t.nextID)
	tr := &Trace{ID: id, Op: op, Begin: t.clock(), Outcome: "running"}
	t.traces[id] = tr
	t.order = append(t.order, id)
	for len(t.order) > t.max {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
	return &TxTrace{tracer: t, trace: tr}
}

// Get returns a copy of the trace with the given transaction ID.
func (t *Tracer) Get(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[id]
	if !ok {
		return nil, false
	}
	cp := *tr
	cp.Spans = append([]Span(nil), tr.Spans...)
	for i := range cp.Spans {
		cp.Spans[i].Notes = append([]string(nil), cp.Spans[i].Notes...)
	}
	cp.Steps = append([]string(nil), tr.Steps...)
	return &cp, true
}

// IDs returns the retained transaction IDs, oldest first.
func (t *Tracer) IDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// TxTrace builds one transaction's trace. It is owned by the single
// goroutine running the transaction (the paper's model has one
// reconfiguration authority); methods are nil-safe no-ops so instrumented
// code runs unchanged with tracing disabled.
type TxTrace struct {
	tracer *Tracer
	trace  *Trace
	open   bool // a span is in progress
}

// ID returns the transaction ID ("" when tracing is disabled).
func (b *TxTrace) ID() string {
	if b == nil {
		return ""
	}
	return b.trace.ID
}

// StartSpan closes any open span and opens a new one.
func (b *TxTrace) StartSpan(name string) {
	if b == nil {
		return
	}
	b.tracer.mu.Lock()
	defer b.tracer.mu.Unlock()
	now := b.tracer.clock()
	b.endOpenLocked(now)
	b.trace.Spans = append(b.trace.Spans, Span{Name: name, Start: now})
	b.open = true
}

// EndSpan closes the currently open span, if any.
func (b *TxTrace) EndSpan() {
	if b == nil {
		return
	}
	b.tracer.mu.Lock()
	defer b.tracer.mu.Unlock()
	b.endOpenLocked(b.tracer.clock())
}

func (b *TxTrace) endOpenLocked(now time.Time) {
	if !b.open {
		return
	}
	b.trace.Spans[len(b.trace.Spans)-1].End = now
	b.open = false
}

// Annotate appends a note to the currently open span (a no-op between
// spans, with tracing disabled, or on nil). The quiesce wait uses it to
// record which queued messages — trace IDs and ages — it is waiting on.
func (b *TxTrace) Annotate(note string) {
	if b == nil {
		return
	}
	b.tracer.mu.Lock()
	defer b.tracer.mu.Unlock()
	if !b.open {
		return
	}
	s := &b.trace.Spans[len(b.trace.Spans)-1]
	s.Notes = append(s.Notes, note)
}

// Finish closes the trace with its outcome ("committed" or "rolled-back")
// and attaches the correlated primitive step trace.
func (b *TxTrace) Finish(outcome string, steps []string) {
	if b == nil {
		return
	}
	b.tracer.mu.Lock()
	defer b.tracer.mu.Unlock()
	now := b.tracer.clock()
	b.endOpenLocked(now)
	b.trace.End = now
	b.trace.Outcome = outcome
	b.trace.Steps = append([]string(nil), steps...)
	if reg := b.tracer.reg; reg != nil {
		for _, s := range b.trace.Spans {
			if !s.End.IsZero() {
				reg.Histogram("reconfig.span." + s.Name + "_ns").Observe(s.Duration())
			}
		}
		reg.Histogram("reconfig.tx_total_ns").Observe(now.Sub(b.trace.Begin))
	}
}
