package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric, counters and gauges
// as single samples, histograms as cumulative `_bucket{le="..."}` series
// plus `_sum` and `_count`. Dotted metric names are sanitized to the
// Prometheus charset (dots and other invalid runes become underscores).
//
// The power-of-two buckets expose exactly: bucket index i holds integer
// nanosecond values 2^(i-1) <= v < 2^i (index 0 holds v <= 0), so the
// inclusive upper bound of bucket i is 2^i - 1 and the rendered le labels
// are 0, 1, 3, 7, 15, ... — cumulative counts are exact, not approximated.
func WritePrometheus(w io.Writer, r *Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	// Evaluate computed gauges outside the registry lock (they may take the
	// bus's queue locks), then merge with stored gauges for one sorted pass.
	gvals := make(map[string]int64, len(gauges)+len(gaugeFns))
	for k, g := range gauges {
		gvals[k] = g.Load()
	}
	for k, fn := range gaugeFns {
		gvals[k] = fn()
	}

	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name].Load())
	}
	gnames := make([]string, 0, len(gvals))
	for k := range gvals {
		gnames = append(gnames, k)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, gvals[name])
	}
	for _, name := range sortedKeys(hists) {
		writePromHistogram(w, promName(name), hists[name])
	}
}

func writePromHistogram(w io.Writer, pn string, h *Histogram) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	last := 0
	for i := 0; i < numBuckets; i++ {
		if h.counts[i].Load() != 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += h.counts[i].Load()
		le := (uint64(1) << uint(i)) - 1 // inclusive upper bound; 0 for bucket 0
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, le, cum)
	}
	total := h.count.Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, total)
	fmt.Fprintf(w, "%s_sum %d\n", pn, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", pn, total)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// promName maps a dotted registry name onto the Prometheus metric-name
// charset [a-zA-Z0-9_:] (leading digits get an underscore prefix).
func promName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
