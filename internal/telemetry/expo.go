package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label is one Prometheus label pair. Values are escaped at render time,
// so callers pass raw strings (instance names may contain quotes or
// backslashes; they come from user spec files).
type Label struct {
	Name  string
	Value string
}

// LabelRule maps a flat dotted registry name onto a labeled metric family.
// A rule returns the family name (already in the Prometheus charset) and
// the label set, or an empty family to decline. The first matching rule
// wins; unmatched metrics render flat under their sanitized dotted name as
// before. Rules must keep one metric kind per family.
type LabelRule func(name string) (family string, labels []Label)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric, counters and gauges
// as single samples, histograms as cumulative `_bucket{le="..."}` series
// plus `_sum` and `_count`. Dotted metric names are sanitized to the
// Prometheus charset (dots and other invalid runes become underscores).
// Metrics matched by a LabelRule render as labeled series grouped per
// family (after the flat metrics), which is what gives per-instance
// attribution in a scrape: bus_iface_delivered{instance="...",...}.
//
// The power-of-two buckets expose exactly: bucket index i holds integer
// nanosecond values 2^(i-1) <= v < 2^i (index 0 holds v <= 0), so the
// inclusive upper bound of bucket i is 2^i - 1 and the rendered le labels
// are 0, 1, 3, 7, 15, ... — cumulative counts are exact, not approximated.
func WritePrometheus(w io.Writer, r *Registry, rules ...LabelRule) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	// Evaluate computed gauges outside the registry lock (they may take the
	// bus's queue locks), then merge with stored gauges for one sorted pass.
	gvals := make(map[string]int64, len(gauges)+len(gaugeFns))
	for k, g := range gauges {
		gvals[k] = g.Load()
	}
	for k, fn := range gaugeFns {
		gvals[k] = fn()
	}

	match := func(name string) (string, string) {
		for _, rule := range rules {
			if family, labels := rule(name); family != "" {
				return family, renderLabels(labels)
			}
		}
		return "", ""
	}

	// family -> sorted labeled samples, accumulated while the flat metrics
	// render, then emitted per family after them.
	type sample struct {
		labels string
		value  int64
		hist   *Histogram
	}
	families := map[string]*struct {
		kind    string
		samples []sample
	}{}
	add := func(family, kind, labels string, v int64, h *Histogram) {
		f := families[family]
		if f == nil {
			f = &struct {
				kind    string
				samples []sample
			}{kind: kind}
			families[family] = f
		}
		f.samples = append(f.samples, sample{labels: labels, value: v, hist: h})
	}

	for _, name := range sortedKeys(counters) {
		if family, labels := match(name); family != "" {
			add(family, "counter", labels, counters[name].Load(), nil)
			continue
		}
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name].Load())
	}
	gnames := make([]string, 0, len(gvals))
	for k := range gvals {
		gnames = append(gnames, k)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		if family, labels := match(name); family != "" {
			add(family, "gauge", labels, gvals[name], nil)
			continue
		}
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, gvals[name])
	}
	for _, name := range sortedKeys(hists) {
		if family, labels := match(name); family != "" {
			add(family, "histogram", labels, 0, hists[name])
			continue
		}
		writePromHistogram(w, promName(name), "", hists[name])
	}

	for _, family := range sortedKeys(families) {
		f := families[family]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		if f.kind == "histogram" {
			fmt.Fprintf(w, "# TYPE %s histogram\n", family)
			for _, s := range f.samples {
				writePromHistogramSeries(w, family, s.labels, s.hist)
			}
			continue
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", family, f.kind)
		for _, s := range f.samples {
			fmt.Fprintf(w, "%s{%s} %d\n", family, s.labels, s.value)
		}
	}
}

// renderLabels renders a label set as `k1="v1",k2="v2"` with values escaped
// per the exposition format: backslash, double quote and newline become
// \\, \" and \n. Everything else (including non-ASCII UTF-8) passes
// through — label values are free-form UTF-8.
func renderLabels(labels []Label) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func writePromHistogram(w io.Writer, pn, labels string, h *Histogram) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	writePromHistogramSeries(w, pn, labels, h)
}

// writePromHistogramSeries writes one histogram's bucket/sum/count series,
// merging any pre-rendered labels with the per-bucket le label.
func writePromHistogramSeries(w io.Writer, pn, labels string, h *Histogram) {
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	last := 0
	for i := 0; i < numBuckets; i++ {
		if h.counts[i].Load() != 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += h.counts[i].Load()
		le := (uint64(1) << uint(i)) - 1 // inclusive upper bound; 0 for bucket 0
		fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", pn, sep, le, cum)
	}
	total := h.count.Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", pn, sep, total)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %d\n", pn, labels, h.sum.Load())
		fmt.Fprintf(w, "%s_count{%s} %d\n", pn, labels, total)
	} else {
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.sum.Load())
		fmt.Fprintf(w, "%s_count %d\n", pn, total)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// promName maps a dotted registry name onto the Prometheus metric-name
// charset [a-zA-Z0-9_:] (leading digits get an underscore prefix).
func promName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
