// Package telemetry is the reproduction's observability substrate: a
// dependency-free metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms) and a reconfiguration tracer that turns each
// transactional script run into a span timeline keyed by transaction ID.
//
// The paper's Discussion section argues costs qualitatively — the
// per-reconfiguration-point flag test is "negligible", state capture costs
// nothing until a reconfiguration happens. This package is what lets the
// repository *measure* those claims on live traffic (BENCH_overhead.json,
// EXPERIMENTS.md "Discussion claims, measured") and what an operator reads
// through `reconfigctl stats` and `reconfigctl trace <txid>`.
//
// Fast-path discipline: Counter.Inc, Gauge.Set and Histogram.Observe are
// single atomic operations with no allocation, and every method is safe on
// a nil receiver (a no-op), so instrumented code never branches on "is
// telemetry enabled" — it holds possibly-nil metric pointers resolved once,
// off the hot path.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//archlint:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//archlint:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current count (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. The zero value is ready to use;
// all methods are safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
//
//archlint:hotpath
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta (negative to decrease).
//
//archlint:hotpath
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics. Names are flat dotted paths
// ("bus.iface.compute.request.delivered"); the registry get-or-creates on
// lookup so instrumentation sites need no registration ceremony. Lookup
// takes a mutex and may allocate — resolve metric pointers once, at
// instance-construction time, never per message. All methods are safe on a
// nil receiver: a nil *Registry hands out nil metrics, which are no-ops,
// so "telemetry disabled" is just a nil registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() int64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a computed gauge: fn is evaluated at snapshot time.
// Use it for values that already live elsewhere (queue depths), so the hot
// path pays nothing. Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named latency histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Unregister removes every metric whose name starts with prefix and returns
// how many were removed. The bus uses it to drop per-interface metrics when
// an instance is deleted. Code still holding a removed counter may keep
// incrementing it harmlessly; it just no longer appears in snapshots.
func (r *Registry) Unregister(prefix string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name := range r.counters {
		if hasPrefix(name, prefix) {
			delete(r.counters, name)
			n++
		}
	}
	for name := range r.gauges {
		if hasPrefix(name, prefix) {
			delete(r.gauges, name)
			n++
		}
	}
	for name := range r.gaugeFns {
		if hasPrefix(name, prefix) {
			delete(r.gaugeFns, name)
			n++
		}
	}
	for name := range r.hists {
		if hasPrefix(name, prefix) {
			delete(r.hists, name)
			n++
		}
	}
	return n
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Snapshot is a point-in-time, JSON-marshalable view of a registry. Under
// concurrent writers the snapshot is internally consistent per metric (each
// value is one atomic load) but not across metrics — standard for a live
// metrics endpoint.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Computed gauges are evaluated
// here, outside any hot path. Returns a zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	// Evaluate outside the registry lock: gauge functions may take other
	// locks (the bus's, for queue depths).
	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(gaugeFns)),
		Histograms: make(map[string]HistogramStats, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Load()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Load()
	}
	for k, fn := range gaugeFns {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Stats()
	}
	return s
}

// Handles is a live view of a registry's metric handles by name. The maps
// are fresh copies (safe to iterate without the registry lock) but the
// handles are the live metrics: loading through them reads the same atomics
// the hot paths write. The time-series roller re-fetches this once per
// window, off every message path.
type Handles struct {
	Counters   map[string]*Counter
	Gauges     map[string]*Gauge
	GaugeFns   map[string]func() int64
	Histograms map[string]*Histogram
}

// Handles returns the current metric handles. Returns zero-value Handles on
// a nil registry.
func (r *Registry) Handles() Handles {
	if r == nil {
		return Handles{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := Handles{
		Counters:   make(map[string]*Counter, len(r.counters)),
		Gauges:     make(map[string]*Gauge, len(r.gauges)),
		GaugeFns:   make(map[string]func() int64, len(r.gaugeFns)),
		Histograms: make(map[string]*Histogram, len(r.hists)),
	}
	for k, v := range r.counters {
		h.Counters[k] = v
	}
	for k, v := range r.gauges {
		h.Gauges[k] = v
	}
	for k, v := range r.gaugeFns {
		h.GaugeFns[k] = v
	}
	for k, v := range r.hists {
		h.Histograms[k] = v
	}
	return h
}

// Names returns the sorted names of all registered metrics (tests and the
// operator surface use it).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFns)+len(r.hists))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.gaugeFns {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
