package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers int64 nanosecond durations: bucket i holds values v
// with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i; bucket 0 holds v <= 0.
// 64 buckets cover the full int64 range, so Observe never branches on
// overflow.
const numBuckets = 64

// NumBuckets is the exported bucket count, for consumers (the time-series
// roller) that difference raw bucket snapshots across windows.
const NumBuckets = numBuckets

// Histogram is a fixed-bucket latency histogram with power-of-two bucket
// boundaries. Observe is a handful of atomic operations and never
// allocates; percentile estimates are computed at snapshot time by linear
// interpolation within the containing bucket, so they carry the bucket's
// relative error (at most 2x, in practice much less for clustered
// populations). The zero value is ready to use; all methods are safe on a
// nil receiver.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0; 0 sentinel = unset
	max    atomic.Int64
}

// Observe records one duration.
//
//archlint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveNs(int64(d))
}

// ObserveNs records one duration given in nanoseconds.
//
//archlint:hotpath
func (h *Histogram) ObserveNs(ns int64) {
	if h == nil {
		return
	}
	idx := 0
	if ns > 0 {
		idx = bits.Len64(uint64(ns))
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= ns {
			break
		}
		// min==0 means "unset" (a true 0 observation lands in bucket 0 and
		// the sentinel stores 0 anyway, the correct minimum).
		if h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the cumulative sum of observed nanoseconds (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns a copy of the raw power-of-two bucket counters. The copy
// is one atomic load per bucket — consistent per bucket, not across buckets
// — which is exactly what windowed delta rollups need: differencing two
// snapshots of a monotone counter is safe per bucket.
func (h *Histogram) Buckets() [NumBuckets]int64 {
	var out [NumBuckets]int64
	if h == nil {
		return out
	}
	for i := 0; i < numBuckets; i++ {
		out[i] = h.counts[i].Load()
	}
	return out
}

// BucketQuantile estimates the q-th quantile of a standalone power-of-two
// bucket count array (e.g. a windowed delta of two Buckets snapshots) by
// the same linear interpolation Quantile uses. total must be the sum of
// counts; returns 0 when total <= 0.
func BucketQuantile(counts *[NumBuckets]int64, total int64, q float64) int64 {
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		c := counts[i]
		if c <= 0 {
			continue
		}
		if cum+c >= rank {
			if i == 0 {
				return 0
			}
			lower := int64(1) << (i - 1)
			upper := int64(1) << i
			if i == 1 {
				lower = 1
			}
			pos := float64(rank-cum) / float64(c)
			return lower + int64(pos*float64(upper-lower))
		}
		cum += c
	}
	return 0
}

// Quantile estimates the q-th quantile (q in [0,1]) in nanoseconds by
// linear interpolation within the containing power-of-two bucket. Returns 0
// with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		// Concurrent writers can grow count between the loads; clamp.
		rank = total
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == 0 {
				return 0
			}
			lower := int64(1) << (i - 1)
			upper := int64(1) << i
			if i == 1 {
				lower = 1
			}
			pos := float64(rank-cum) / float64(c)
			return lower + int64(pos*float64(upper-lower))
		}
		cum += c
	}
	// Writers raced the scan; report the maximum seen.
	return h.max.Load()
}

// HistogramStats is the JSON-marshalable summary of a histogram.
type HistogramStats struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MinNs int64 `json:"min_ns"`
	MaxNs int64 `json:"max_ns"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// Stats summarizes the histogram with count, sum, min/max, and the p50,
// p95 and p99 estimates.
func (h *Histogram) Stats() HistogramStats {
	if h == nil || h.count.Load() == 0 {
		return HistogramStats{}
	}
	return HistogramStats{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		MinNs: h.min.Load(),
		MaxNs: h.max.Load(),
		P50Ns: h.Quantile(0.50),
		P95Ns: h.Quantile(0.95),
		P99Ns: h.Quantile(0.99),
	}
}
