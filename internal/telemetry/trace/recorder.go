package trace

import (
	"sort"
	"sync/atomic"
	"unsafe"
)

// SpanRecord is one completed delivery span: a message's life from the
// send that stamped it to the read that consumed it.
type SpanRecord struct {
	// Seq is the recorder's global sequence number, assigned at Record;
	// snapshots sort by it, oldest first.
	Seq     uint64 `json:"seq"`
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Parent  uint64 `json:"parent,omitempty"`
	Hops    uint32 `json:"hops"`
	From    string `json:"from"`
	To      string `json:"to"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
}

// DurationNs returns the span length in nanoseconds.
func (s *SpanRecord) DurationNs() int64 { return s.EndNs - s.StartNs }

// Recorder is the flight recorder: a fixed-size lock-free ring of the most
// recent sampled delivery spans. Writers pay one atomic increment and one
// atomic pointer store — no lock, no coordination with readers — and the
// memory bound is fixed at construction (capacity slots; old spans are
// overwritten). The zero-capacity recorder is not useful; NewRecorder
// enforces a minimum.
type Recorder struct {
	slots  []atomic.Pointer[SpanRecord]
	cursor atomic.Uint64
}

// NewRecorder returns a recorder retaining the capacity most recent spans
// (minimum 16, default 4096 when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{slots: make([]atomic.Pointer[SpanRecord], capacity)}
}

// Cap returns the recorder's fixed capacity (0 on nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Len returns the number of spans currently retained (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Recorded returns the total number of spans ever recorded (0 on nil).
func (r *Recorder) Recorded() int64 {
	if r == nil {
		return 0
	}
	return int64(r.cursor.Load())
}

// MemoryBound returns the recorder's worst-case retained memory in bytes:
// the slot array plus one SpanRecord per slot (string payloads are bounded
// by endpoint-name length and excluded; they are interned by the bus).
func (r *Recorder) MemoryBound() int {
	if r == nil {
		return 0
	}
	per := int(unsafe.Sizeof(SpanRecord{})) + int(unsafe.Sizeof(atomic.Pointer[SpanRecord]{}))
	return len(r.slots) * per
}

// Record stores one span, overwriting the oldest when the ring is full.
// Safe for concurrent use; the caller must not mutate s afterwards.
func (r *Recorder) Record(s *SpanRecord) {
	if r == nil {
		return
	}
	seq := r.cursor.Add(1)
	s.Seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(s)
}

// Snapshot returns the retained spans sorted by sequence, oldest first.
// Under concurrent writers the snapshot is a consistent set of recently
// published records, not an atomic cut — standard for a flight recorder.
func (r *Recorder) Snapshot() []*SpanRecord {
	if r == nil {
		return nil
	}
	out := make([]*SpanRecord, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ByTrace returns the retained spans of one trace, oldest first.
func (r *Recorder) ByTrace(traceID uint64) []*SpanRecord {
	var out []*SpanRecord
	for _, s := range r.Snapshot() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}
