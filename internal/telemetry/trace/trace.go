// Package trace is the message-level causal-tracing layer of the
// reproduction: Dapper-style trace contexts stamped onto bus messages and a
// fixed-size lock-free flight recorder for completed delivery spans.
//
// The paper's Discussion section argues the transformation's steady-state
// cost is "a test of a flag", and that reconfiguration delay is dominated
// by waiting for the module to reach a reconfiguration point. Per-process
// aggregates (the telemetry registry) can quantify the first claim but not
// explain the second: they cannot show *which in-flight messages* a quiesce
// is waiting on, nor follow one request across bindings and machines. A
// trace context that the bus mints on first send and the module runtime
// carries across receive→send makes the causal chain observable end to end
// — with the same division of labour as the paper's transformation: the
// runtime does the bookkeeping, module code is untouched.
//
// Cost discipline mirrors the flag test. With sampling off the tracer
// stamps contexts (two atomic adds, no clock read) and records nothing:
// zero allocations on the message hot path. Only a sampled trace (head
// sampling, decided at mint and propagated in the flags) pays for the
// wall-clock timestamp and allocates a span record at delivery.
package trace

import (
	"sync/atomic"
	"time"
)

// FlagSampled marks a context whose delivery spans are recorded. The
// decision is made head-based at mint time and propagates with the context,
// so one causal chain is either recorded whole or not at all.
const FlagSampled uint32 = 1

// Context is the causal identity a message carries: which trace it belongs
// to, which span the carrying send is, which span caused it, and how many
// hops it has taken. The zero value means "untraced".
type Context struct {
	// TraceID identifies the causal chain; every message derived from the
	// same root request shares it. 0 means no context.
	TraceID uint64
	// SpanID identifies this message's send.
	SpanID uint64
	// Parent is the span this send was caused by (0 for a root send).
	Parent uint64
	// Hops counts receive→send handoffs since the root send.
	Hops uint32
	// Flags carries the sampling decision (FlagSampled).
	Flags uint32
	// SentNs is the wall-clock nanosecond timestamp of the send; delivery
	// spans and quiesce-age snapshots derive from it. It is stamped only on
	// sampled contexts — the clock read is the single largest cost of a
	// stamp, so unsampled traffic skips it (SentNs stays 0 and consumers
	// degrade: quiesce age reports -1, delivery spans are never recorded
	// for unsampled contexts anyway).
	SentNs int64
}

// Valid reports whether the context carries a trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Sampled reports whether delivery spans of this trace are recorded.
func (c Context) Sampled() bool { return c.Flags&FlagSampled != 0 }

// Tracer mints and extends trace contexts and owns the flight recorder.
// All methods are safe for concurrent use and on a nil receiver (tracing
// disabled: Stamp returns the zero Context).
type Tracer struct {
	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64

	// sampleEvery is the head-sampling rate: every sampleEvery-th minted
	// trace is sampled (1 = all, 0 = none). Immutable after construction.
	sampleEvery uint64

	rec *Recorder
}

// NewTracer returns a tracer sampling every sampleEvery-th new trace into
// rec (sampleEvery <= 0 or rec == nil disables recording; contexts are
// still minted and propagated).
func NewTracer(sampleEvery int, rec *Recorder) *Tracer {
	t := &Tracer{rec: rec}
	if sampleEvery > 0 && rec != nil {
		t.sampleEvery = uint64(sampleEvery)
	}
	return t
}

// Recorder returns the tracer's flight recorder (nil when sampling is
// disabled or on a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// MintTrace opens a new causal chain: a fresh trace ID, a root span, and
// the head-based sampling decision. Only the bus/transport layer may call
// it (pinned by a lint test) — module code never mints trace IDs.
//
//archlint:hotpath
func (t *Tracer) MintTrace() Context {
	if t == nil {
		return Context{}
	}
	id := t.nextTrace.Add(1)
	c := Context{
		TraceID: id,
		SpanID:  t.nextSpan.Add(1),
	}
	if t.sampleEvery != 0 && id%t.sampleEvery == 0 {
		c.Flags = FlagSampled
		c.SentNs = time.Now().UnixNano()
	}
	return c
}

// ChildSpan extends an existing chain across one receive→send handoff: the
// trace ID and sampling decision are inherited, the sending span becomes
// the parent, and the hop count increments.
//
//archlint:hotpath
func (t *Tracer) ChildSpan(parent Context) Context {
	if t == nil {
		return Context{}
	}
	c := Context{
		TraceID: parent.TraceID,
		SpanID:  t.nextSpan.Add(1),
		Parent:  parent.SpanID,
		Hops:    parent.Hops + 1,
		Flags:   parent.Flags,
	}
	if c.Flags&FlagSampled != 0 {
		c.SentNs = time.Now().UnixNano()
	}
	return c
}

// Stamp is the single entry point the bus write path uses: extend the
// carried context when there is one, mint a root otherwise.
//
//archlint:hotpath
func (t *Tracer) Stamp(parent Context) Context {
	if parent.Valid() {
		return t.ChildSpan(parent)
	}
	return t.MintTrace()
}

// StampBatch stamps a batch of n sends with one span-counter reservation:
// a single atomic add claims n consecutive span ids, so the per-message
// cost of a batched send is plain arithmetic. It returns the context of
// the batch's FIRST message; message i of the batch carries the same
// context with SpanID+uint64(i). Span ids stay globally unique and mint
// order still agrees with emission order, which is what replay's
// OutputsOf sorts by.
//
// With a valid parent every message is a sibling child span of that
// parent (one receive→send hop fanning out n sends). Without a parent the
// batch opens one causal chain — one trace id, n root sibling spans — so
// the burst is sampled (or not) as a unit.
//
//archlint:hotpath
func (t *Tracer) StampBatch(parent Context, n int) Context {
	if t == nil {
		return Context{}
	}
	if n < 1 {
		n = 1
	}
	last := t.nextSpan.Add(uint64(n))
	c := Context{SpanID: last - uint64(n) + 1}
	if parent.Valid() {
		c.TraceID = parent.TraceID
		c.Parent = parent.SpanID
		c.Hops = parent.Hops + 1
		c.Flags = parent.Flags
	} else {
		id := t.nextTrace.Add(1)
		c.TraceID = id
		if t.sampleEvery != 0 && id%t.sampleEvery == 0 {
			c.Flags = FlagSampled
		}
	}
	if c.Flags&FlagSampled != 0 {
		c.SentNs = time.Now().UnixNano()
	}
	return c
}

// RecordDelivery records one completed delivery span — a message stamped
// with ctx, sent by from, consumed by to at endNs — into the flight
// recorder. It is a no-op unless the context is sampled and a recorder is
// attached, and is safe on a nil tracer (a sampled context can arrive over
// TCP at a bus whose own tracing is off).
func (t *Tracer) RecordDelivery(ctx Context, from, to string, endNs int64) {
	if t == nil || t.rec == nil || !ctx.Sampled() {
		return
	}
	t.rec.Record(&SpanRecord{
		TraceID: ctx.TraceID,
		SpanID:  ctx.SpanID,
		Parent:  ctx.Parent,
		Hops:    ctx.Hops,
		From:    from,
		To:      to,
		StartNs: ctx.SentNs,
		EndNs:   endNs,
	})
}
