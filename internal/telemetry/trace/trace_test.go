package trace

import (
	"sync"
	"testing"
)

func TestMintAndChild(t *testing.T) {
	tr := NewTracer(1, NewRecorder(64))
	root := tr.MintTrace()
	if !root.Valid() || !root.Sampled() {
		t.Fatalf("root = %+v, want valid and sampled at rate 1", root)
	}
	if root.Hops != 0 || root.Parent != 0 {
		t.Errorf("root hops/parent = %d/%d, want 0/0", root.Hops, root.Parent)
	}
	if root.SentNs == 0 {
		t.Error("root SentNs not stamped")
	}
	child := tr.ChildSpan(root)
	if child.TraceID != root.TraceID {
		t.Errorf("child trace %d, want inherited %d", child.TraceID, root.TraceID)
	}
	if child.Parent != root.SpanID || child.Hops != 1 {
		t.Errorf("child parent/hops = %d/%d, want %d/1", child.Parent, child.Hops, root.SpanID)
	}
	if !child.Sampled() {
		t.Error("sampling decision did not propagate to the child")
	}
	if child.SpanID == root.SpanID {
		t.Error("child did not get a fresh span ID")
	}
}

func TestStampMintsOrExtends(t *testing.T) {
	tr := NewTracer(0, nil)
	root := tr.Stamp(Context{})
	if !root.Valid() {
		t.Fatal("Stamp of zero context did not mint")
	}
	if root.Sampled() {
		t.Error("sampleEvery=0 must never sample")
	}
	child := tr.Stamp(root)
	if child.TraceID != root.TraceID || child.Parent != root.SpanID {
		t.Errorf("Stamp of valid context did not extend: %+v from %+v", child, root)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if c := tr.Stamp(Context{}); c.Valid() {
		t.Errorf("nil tracer minted %+v", c)
	}
	tr.RecordDelivery(Context{TraceID: 1, Flags: FlagSampled}, "a", "b", 1)
	if tr.Recorder() != nil {
		t.Error("nil tracer has a recorder")
	}
}

func TestSamplingRate(t *testing.T) {
	tr := NewTracer(4, NewRecorder(64))
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr.MintTrace().Sampled() {
			sampled++
		}
	}
	if sampled != 25 {
		t.Errorf("sampled %d of 100 at rate 4, want 25", sampled)
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	r := NewRecorder(16)
	for i := 1; i <= 40; i++ {
		r.Record(&SpanRecord{TraceID: uint64(i)})
	}
	if r.Len() != 16 || r.Recorded() != 40 {
		t.Fatalf("len=%d recorded=%d, want 16/40", r.Len(), r.Recorded())
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot has %d spans, want 16", len(snap))
	}
	// Oldest retained is record 25, newest 40, in order.
	for i, s := range snap {
		if want := uint64(25 + i); s.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, s.Seq, want)
		}
	}
}

func TestRecorderByTrace(t *testing.T) {
	tr := NewTracer(1, NewRecorder(64))
	a := tr.MintTrace()
	b := tr.MintTrace()
	tr.RecordDelivery(a, "x.out", "y.in", a.SentNs+10)
	tr.RecordDelivery(tr.ChildSpan(a), "y.out", "z.in", a.SentNs+20)
	tr.RecordDelivery(b, "x.out", "y.in", b.SentNs+10)
	got := tr.Recorder().ByTrace(a.TraceID)
	if len(got) != 2 {
		t.Fatalf("trace %d has %d spans, want 2", a.TraceID, len(got))
	}
	if got[0].To != "y.in" || got[1].From != "y.out" || got[1].Hops != 1 {
		t.Errorf("spans out of causal order: %+v", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(&SpanRecord{TraceID: 1})
			}
		}()
	}
	wg.Wait()
	if r.Recorded() != 4000 {
		t.Fatalf("recorded %d, want 4000", r.Recorded())
	}
	if got := len(r.Snapshot()); got != 128 {
		t.Fatalf("snapshot has %d spans, want full ring 128", got)
	}
}

func TestMemoryBoundFixed(t *testing.T) {
	r := NewRecorder(1024)
	bound := r.MemoryBound()
	if bound <= 0 {
		t.Fatal("no memory bound")
	}
	for i := 0; i < 10_000; i++ {
		r.Record(&SpanRecord{TraceID: uint64(i)})
	}
	if r.MemoryBound() != bound {
		t.Errorf("memory bound moved under load: %d -> %d", bound, r.MemoryBound())
	}
}
