// Package evlog is the structured event log: a bounded lock-free ring of
// topology, transaction, supervisor and self-heal events with monotonic
// cursors. Producers (the app's bus-observer bridge, the supervisor, the
// reconfiguration transaction) append from their existing asynchronous
// paths — the bus already fans events out through per-observer mailboxes,
// so no message hot path ever touches the log. Consumers read by cursor
// (`GET /events?since=N` long-polls via Wait), so an operator tailing the
// log sees each event exactly once even across reconnects, and a slow
// reader loses old events rather than stalling writers.
//
// The ring is the same shape as the trace flight recorder: a cursor
// allocates sequence numbers with one atomic add, and each record is
// published with one atomic pointer store into slot (seq-1) % cap. Readers
// sort a snapshot by sequence; records overwritten mid-snapshot simply
// drop out.
package evlog

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Record is one event. Seq is assigned by Append and is strictly
// monotonic; it doubles as the consumer cursor.
type Record struct {
	Seq      uint64   `json:"seq"`
	TimeNs   int64    `json:"time_ns"`
	Source   string   `json:"source"`             // "bus", "supervisor", "tx"
	Kind     string   `json:"kind"`               // e.g. "add_instance", "health_degraded"
	Instance string   `json:"instance,omitempty"` // subject instance or group
	Detail   string   `json:"detail,omitempty"`
	TraceIDs []uint64 `json:"trace_ids,omitempty"`
}

// Log is the bounded event ring. All methods are safe on a nil receiver,
// so "event log disabled" is just a nil *Log.
type Log struct {
	slots  []atomic.Pointer[Record]
	cursor atomic.Uint64

	// notify is closed and replaced on every append; long-pollers capture
	// the current channel before checking the cursor so a concurrent append
	// can never slip between check and wait.
	mu     sync.Mutex
	notify chan struct{}
}

// NewLog returns a log retaining the last capacity events (default 1024,
// minimum 16).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	if capacity < 16 {
		capacity = 16
	}
	return &Log{
		slots:  make([]atomic.Pointer[Record], capacity),
		notify: make(chan struct{}),
	}
}

// Append records one event, assigning its sequence number and stamping
// TimeNs if unset. It is lock-free with respect to other appenders (the
// notification swap takes a mutex no reader's fast path holds) and safe on
// a nil log.
func (l *Log) Append(rec Record) uint64 {
	if l == nil {
		return 0
	}
	seq := l.cursor.Add(1)
	rec.Seq = seq
	if rec.TimeNs == 0 {
		rec.TimeNs = time.Now().UnixNano()
	}
	l.slots[(seq-1)%uint64(len(l.slots))].Store(&rec)

	l.mu.Lock()
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
	return seq
}

// Since returns every retained record with Seq > after, oldest first.
func (l *Log) Since(after uint64) []Record {
	if l == nil {
		return nil
	}
	out := make([]Record, 0, len(l.slots))
	for i := range l.slots {
		p := l.slots[i].Load()
		if p != nil && p.Seq > after {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Wait blocks until at least one record with Seq > after exists (returning
// all of them) or timeout elapses (returning nil). A long-poll primitive:
// the notification channel is captured before the cursor check, so an
// append racing the check wakes the waiter rather than being missed.
func (l *Log) Wait(after uint64, timeout time.Duration) []Record {
	if l == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		l.mu.Lock()
		ch := l.notify
		l.mu.Unlock()
		if recs := l.Since(after); len(recs) > 0 {
			return recs
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return nil
		}
	}
}

// Cursor returns the sequence number of the newest event (0 when empty).
func (l *Log) Cursor() uint64 {
	if l == nil {
		return 0
	}
	return l.cursor.Load()
}

// Cap returns the ring capacity in events.
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// MemoryBound returns the fixed upper bound, in bytes, of the ring's slot
// array plus fully populated records (excluding variable-length strings).
func (l *Log) MemoryBound() int {
	if l == nil {
		return 0
	}
	var rec Record
	per := int(unsafe.Sizeof(l.slots[0])) + int(unsafe.Sizeof(rec))
	return per * len(l.slots)
}
