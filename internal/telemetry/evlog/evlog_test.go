package evlog

import (
	"sync"
	"testing"
	"time"
)

func TestAppendAssignsMonotonicSeq(t *testing.T) {
	l := NewLog(64)
	for i := 0; i < 5; i++ {
		seq := l.Append(Record{Source: "test", Kind: "tick"})
		if seq != uint64(i+1) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	recs := l.Since(0)
	if len(recs) != 5 {
		t.Fatalf("Since(0) = %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d", i, r.Seq)
		}
		if r.TimeNs == 0 {
			t.Errorf("record %d missing timestamp", i)
		}
	}
}

func TestSinceCursor(t *testing.T) {
	l := NewLog(64)
	for i := 0; i < 10; i++ {
		l.Append(Record{Kind: "e"})
	}
	recs := l.Since(7)
	if len(recs) != 3 || recs[0].Seq != 8 {
		t.Fatalf("Since(7) = %+v, want seqs 8..10", recs)
	}
	if got := l.Since(10); len(got) != 0 {
		t.Errorf("Since(cursor) = %d records, want 0", len(got))
	}
	if l.Cursor() != 10 {
		t.Errorf("Cursor = %d, want 10", l.Cursor())
	}
}

func TestRingOverwrite(t *testing.T) {
	l := NewLog(16)
	for i := 0; i < 40; i++ {
		l.Append(Record{Kind: "e"})
	}
	recs := l.Since(0)
	if len(recs) != 16 {
		t.Fatalf("retained %d records, want ring cap 16", len(recs))
	}
	if recs[0].Seq != 25 || recs[15].Seq != 40 {
		t.Errorf("retained seqs %d..%d, want 25..40", recs[0].Seq, recs[15].Seq)
	}
}

func TestWaitWakesOnAppend(t *testing.T) {
	l := NewLog(16)
	l.Append(Record{Kind: "old"})
	done := make(chan []Record, 1)
	go func() { done <- l.Wait(1, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	l.Append(Record{Kind: "fresh"})
	select {
	case recs := <-done:
		if len(recs) != 1 || recs[0].Kind != "fresh" {
			t.Fatalf("Wait returned %+v, want the fresh record", recs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on append")
	}
}

func TestWaitTimesOut(t *testing.T) {
	l := NewLog(16)
	start := time.Now()
	if recs := l.Wait(0, 20*time.Millisecond); recs != nil {
		t.Fatalf("Wait on empty log = %+v, want nil", recs)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("Wait returned before the timeout")
	}
}

func TestWaitReturnsImmediatelyWhenBehind(t *testing.T) {
	l := NewLog(16)
	l.Append(Record{Kind: "e"})
	start := time.Now()
	recs := l.Wait(0, 5*time.Second)
	if len(recs) != 1 {
		t.Fatalf("Wait = %d records, want 1", len(recs))
	}
	if time.Since(start) > time.Second {
		t.Error("Wait blocked although records were already available")
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := NewLog(256)
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(Record{Kind: "e"})
			}
		}()
	}
	wg.Wait()
	if l.Cursor() != writers*per {
		t.Fatalf("cursor = %d, want %d", l.Cursor(), writers*per)
	}
	recs := l.Since(writers*per - 256)
	if len(recs) != 256 {
		t.Fatalf("retained %d records, want 256", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("gap in retained seqs: %d -> %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestNilLog(t *testing.T) {
	var l *Log
	if seq := l.Append(Record{}); seq != 0 {
		t.Error("nil Append returned nonzero seq")
	}
	if l.Since(0) != nil || l.Wait(0, time.Millisecond) != nil {
		t.Error("nil reads returned records")
	}
	if l.Cursor() != 0 || l.Cap() != 0 || l.MemoryBound() != 0 {
		t.Error("nil accessors returned nonzero")
	}
}

func TestMemoryBound(t *testing.T) {
	l := NewLog(1024)
	if l.MemoryBound() <= 0 {
		t.Fatal("zero memory bound")
	}
	before := l.MemoryBound()
	for i := 0; i < 5000; i++ {
		l.Append(Record{Kind: "e"})
	}
	if l.MemoryBound() != before {
		t.Error("memory bound changed with appends; must be fixed at construction")
	}
}
