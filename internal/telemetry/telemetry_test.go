package telemetry

import (
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	if c := r.Counter("x"); c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	if g := r.Gauge("x"); g != nil {
		t.Fatalf("nil registry returned non-nil gauge")
	}
	if h := r.Histogram("x"); h != nil {
		t.Fatalf("nil registry returned non-nil histogram")
	}
	r.GaugeFunc("x", func() int64 { return 1 })
	if n := r.Unregister("x"); n != 0 {
		t.Fatalf("nil registry Unregister = %d, want 0", n)
	}
	if names := r.Names(); names != nil {
		t.Fatalf("nil registry Names = %v, want nil", names)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}

	// Nil metric handles are no-ops, the contract instrumented code relies on.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatalf("nil counter Load != 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Load() != 0 {
		t.Fatalf("nil gauge Load != 0")
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	h.ObserveNs(42)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram not empty")
	}
	if (h.Stats() != HistogramStats{}) {
		t.Fatalf("nil histogram stats not zero")
	}

	var tr *Tracer
	b := tr.Begin("noop")
	if b != nil {
		t.Fatalf("nil tracer Begin returned non-nil builder")
	}
	b.StartSpan("x")
	b.EndSpan()
	b.Finish("committed", nil)
	if b.ID() != "" {
		t.Fatalf("nil TxTrace ID = %q, want empty", b.ID())
	}
	if _, ok := tr.Get("tx-0001"); ok {
		t.Fatalf("nil tracer Get returned ok")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c2 := r.Counter("a.b")
	if c1 != c2 {
		t.Fatalf("Counter not idempotent")
	}
	c1.Add(7)
	if got := r.Counter("a.b").Load(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	r.Gauge("g").Set(-3)
	r.GaugeFunc("fn", func() int64 { return 11 })
	r.Histogram("h").ObserveNs(100)

	snap := r.Snapshot()
	if snap.Counters["a.b"] != 7 || snap.Gauges["g"] != -3 || snap.Gauges["fn"] != 11 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	if snap.Histograms["h"].Count != 1 {
		t.Fatalf("histogram snapshot mismatch: %+v", snap.Histograms["h"])
	}
	want := []string{"a.b", "fn", "g", "h"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}

	// Snapshot must be JSON-marshalable: it is the control plane's payload.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}
}

func TestUnregisterPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("bus.iface.comp.in.delivered").Inc()
	r.Counter("bus.iface.comp.out.sent").Inc()
	r.GaugeFunc("bus.iface.comp.in.queue_depth", func() int64 { return 0 })
	r.Histogram("mh.comp.capture_ns").ObserveNs(5)
	r.Counter("bus.iface.other.in.delivered").Inc()

	if n := r.Unregister("bus.iface.comp."); n != 3 {
		t.Fatalf("Unregister removed %d, want 3", n)
	}
	names := r.Names()
	for _, name := range names {
		if strings.HasPrefix(name, "bus.iface.comp.") {
			t.Fatalf("name %q survived Unregister", name)
		}
	}
	if len(names) != 2 {
		t.Fatalf("Names after Unregister = %v, want 2 entries", names)
	}
}

// TestSnapshotConcurrent drives writers on all metric kinds while snapshots
// are taken; run under -race this is the data-race proof for the registry.
func TestSnapshotConcurrent(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h")
			for n := int64(1); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(n)
				h.ObserveNs(n%1000 + 1)
				// Concurrent get-or-create churn on distinct names too.
				r.Counter("churn").Inc()
			}
		}(i)
	}
	for r.Counter("c").Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	var last Snapshot
	for i := 0; i < 50; i++ {
		last = r.Snapshot()
	}
	close(stop)
	wg.Wait()
	final := r.Snapshot()
	if final.Counters["c"] < last.Counters["c"] {
		t.Fatalf("counter went backwards: %d then %d", last.Counters["c"], final.Counters["c"])
	}
	if final.Counters["c"] == 0 {
		t.Fatalf("no counter progress under concurrency")
	}
	h := final.Histograms["h"]
	if h.Count == 0 || h.MinNs < 1 || h.MaxNs > 1024 {
		t.Fatalf("histogram stats out of range: %+v", h)
	}
	if h.P50Ns < h.MinNs || h.P99Ns > 2*h.MaxNs {
		t.Fatalf("percentiles inconsistent: %+v", h)
	}
}

// TestHistogramPercentiles checks the percentile estimates against known
// distributions. Buckets are powers of two, so estimates carry at most the
// containing bucket's width of error; assert relative tolerance 2x.
func TestHistogramPercentiles(t *testing.T) {
	within2x := func(got, want int64) bool {
		if want == 0 {
			return got == 0
		}
		return got >= want/2 && got <= want*2
	}

	t.Run("uniform", func(t *testing.T) {
		h := &Histogram{}
		// 1..10000 uniformly: true p50=5000, p95=9500, p99=9900.
		for i := int64(1); i <= 10000; i++ {
			h.ObserveNs(i)
		}
		if h.Count() != 10000 {
			t.Fatalf("count = %d", h.Count())
		}
		for _, tc := range []struct {
			q    float64
			want int64
		}{{0.50, 5000}, {0.95, 9500}, {0.99, 9900}} {
			got := h.Quantile(tc.q)
			if !within2x(got, tc.want) {
				t.Errorf("q%.2f = %d, want within 2x of %d", tc.q, got, tc.want)
			}
		}
		st := h.Stats()
		if st.MinNs != 1 || st.MaxNs != 10000 {
			t.Errorf("min/max = %d/%d, want 1/10000", st.MinNs, st.MaxNs)
		}
		if st.SumNs != 10000*10001/2 {
			t.Errorf("sum = %d, want %d", st.SumNs, int64(10000*10001/2))
		}
	})

	t.Run("bimodal", func(t *testing.T) {
		h := &Histogram{}
		// 95% fast (~100ns), 5% slow (~1ms): p50 in the fast mode, p99 in
		// the slow mode — the shape that matters for a latency histogram.
		for i := 0; i < 950; i++ {
			h.ObserveNs(100)
		}
		for i := 0; i < 50; i++ {
			h.ObserveNs(1_000_000)
		}
		if got := h.Quantile(0.50); !within2x(got, 100) {
			t.Errorf("p50 = %d, want ~100", got)
		}
		if got := h.Quantile(0.99); !within2x(got, 1_000_000) {
			t.Errorf("p99 = %d, want ~1ms", got)
		}
	})

	t.Run("exponential", func(t *testing.T) {
		h := &Histogram{}
		rng := rand.New(rand.NewSource(1))
		// Exponential with mean 10µs: true p50 = mean*ln2 ≈ 6931ns,
		// p95 ≈ 29957ns, p99 ≈ 46052ns.
		for i := 0; i < 100000; i++ {
			h.ObserveNs(int64(rng.ExpFloat64() * 10000))
		}
		for _, tc := range []struct {
			q    float64
			want int64
		}{{0.50, 6931}, {0.95, 29957}, {0.99, 46052}} {
			got := h.Quantile(tc.q)
			if !within2x(got, tc.want) {
				t.Errorf("q%.2f = %d, want within 2x of %d", tc.q, got, tc.want)
			}
		}
	})

	t.Run("edge cases", func(t *testing.T) {
		h := &Histogram{}
		if h.Quantile(0.5) != 0 {
			t.Errorf("empty histogram quantile != 0")
		}
		h.ObserveNs(0) // lands in bucket 0
		if got := h.Quantile(0.5); got != 0 {
			t.Errorf("all-zero quantile = %d", got)
		}
		h2 := &Histogram{}
		h2.ObserveNs(777)
		for _, q := range []float64{-1, 0, 0.5, 1, 2} {
			if got := h2.Quantile(q); !within2x(got, 777) {
				t.Errorf("single-sample q%v = %d, want ~777", q, got)
			}
		}
	})
}

// TestFastPathZeroAlloc is the tentpole's zero-allocation guarantee:
// Counter.Inc, Gauge.Set and Histogram.Observe must not allocate, including
// through nil receivers (telemetry disabled).
func TestFastPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(9) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveNs(12345) }); n != 0 {
		t.Errorf("Histogram.ObserveNs allocates %v/op", n)
	}
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() { nc.Inc(); ng.Set(1); nh.ObserveNs(1) }); n != 0 {
		t.Errorf("nil fast path allocates %v/op", n)
	}
}

func TestTracerTimeline(t *testing.T) {
	tr := NewTracer(8)
	now := time.Unix(100, 0)
	tr.SetClock(func() time.Time {
		now = now.Add(5 * time.Millisecond)
		return now
	})

	b := tr.Begin("replace compute -> compute2")
	if b.ID() != "tx-0001" {
		t.Fatalf("ID = %q, want tx-0001", b.ID())
	}
	b.StartSpan("quiesce_wait")
	b.StartSpan("divulge_wait") // implicitly ends quiesce_wait
	b.EndSpan()
	b.StartSpan("rebind")
	b.Finish("committed", []string{"obj_cap compute", "rebind 4 edits"})

	got, ok := tr.Get("tx-0001")
	if !ok {
		t.Fatalf("Get missed tx-0001")
	}
	if got.Outcome != "committed" {
		t.Fatalf("outcome = %q", got.Outcome)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(got.Spans))
	}
	for i, s := range got.Spans {
		if s.End.IsZero() || !s.End.After(s.Start) {
			t.Fatalf("span %d not closed: %+v", i, s)
		}
	}
	if len(got.Steps) != 2 {
		t.Fatalf("steps = %v", got.Steps)
	}

	lines := got.Timeline()
	if len(lines) != 1+3+1+2 {
		t.Fatalf("timeline lines = %d:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	head := lines[0]
	for _, want := range []string{"tx-0001", "replace compute -> compute2", "committed", "total"} {
		if !strings.Contains(head, want) {
			t.Errorf("header %q missing %q", head, want)
		}
	}
	for _, want := range []string{"quiesce_wait", "divulge_wait", "rebind"} {
		if !strings.Contains(strings.Join(lines, "\n"), want) {
			t.Errorf("timeline missing span %q", want)
		}
	}
	if !strings.Contains(lines[4], "steps:") || !strings.Contains(lines[5], "obj_cap compute") {
		t.Errorf("steps section malformed:\n%s", strings.Join(lines, "\n"))
	}

	// The copy from Get is detached from later tracer writes.
	got.Steps[0] = "mutated"
	again, _ := tr.Get("tx-0001")
	if again.Steps[0] != "obj_cap compute" {
		t.Fatalf("Get returned aliased trace")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Begin("op").Finish("committed", nil)
	}
	ids := tr.IDs()
	if len(ids) != 3 {
		t.Fatalf("IDs = %v, want 3 entries", ids)
	}
	if ids[0] != "tx-0003" || ids[2] != "tx-0005" {
		t.Fatalf("IDs = %v, want tx-0003..tx-0005", ids)
	}
	if _, ok := tr.Get("tx-0001"); ok {
		t.Fatalf("evicted trace still retrievable")
	}
	if _, ok := tr.Get("tx-0005"); !ok {
		t.Fatalf("latest trace missing")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				b := tr.Begin("op")
				b.StartSpan("s")
				b.Finish("committed", []string{"step"})
				tr.IDs()
				if id := b.ID(); id != "" {
					tr.Get(id)
				}
			}
		}()
	}
	wg.Wait()
	if len(tr.IDs()) != 16 {
		t.Fatalf("retained %d traces, want 16", len(tr.IDs()))
	}
}
