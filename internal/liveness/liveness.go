// Package liveness implements live-variable data-flow analysis over
// flattened module procedures.
//
// Section 3 of the paper: "At a reconfiguration point, data-flow analysis
// could be used to determine the set of live variables" — the authors left
// automatic capture-set derivation as future work and had the programmer
// list the variables in the configuration specification. This package
// implements that analysis, so the transform can capture only what is live
// at each reconfiguration-graph edge (experiment A2 measures the state-size
// effect against the conservative all-locals capture).
//
// The analysis runs on the *flattened* form (internal/flatten), where every
// statement of a procedure is at the top level and control transfers are
// explicit: plain fallthrough, `goto L`, `if cond { goto L }` and `return`.
// That makes the control-flow graph one node per top-level statement.
//
// Soundness notes:
//   - a variable whose address is taken anywhere in the procedure is pinned
//     always-live (writes through the pointer alias it);
//   - stores through pointers, slice elements and struct fields are treated
//     as uses of the base variable, not definitions (partial updates keep
//     the rest of the object live).
package liveness

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"repro/internal/lang"
)

// Options tunes the analysis precision.
type Options struct {
	// MHOutParams models the participation runtime's out-parameters
	// precisely: an `&x` argument in an out-parameter position of an mh
	// primitive (mh.Read(iface, &x)) is a *definition* of x, not a use,
	// and does not pin x as address-taken (the runtime fills the pointee
	// and does not retain the address). The transform keeps the
	// conservative default; the static analyzer (internal/analyze) enables
	// this so that capture lists like the paper's Figure 2 {num, n, rp} —
	// which omit variables refilled by the re-executed mh.Read — check as
	// sound.
	MHOutParams bool
}

// Analysis holds per-statement liveness for one flattened procedure.
type Analysis struct {
	Fn    *lang.Func
	Stmts []ast.Stmt // top-level statements, labels unwrapped

	liveIn  []map[string]bool
	liveOut []map[string]bool
	pinned  map[string]bool // address-taken variables
	index   map[ast.Stmt]int
	opts    Options
}

// Analyze computes liveness for the named (flattened) function with the
// default (conservative) options.
func Analyze(prog *lang.Program, info *lang.Info, name string) (*Analysis, error) {
	return AnalyzeOpts(prog, info, name, Options{})
}

// AnalyzeOpts computes liveness for the named (flattened) function.
func AnalyzeOpts(prog *lang.Program, info *lang.Info, name string, opts Options) (*Analysis, error) {
	fn, ok := prog.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("liveness: no function %s", name)
	}
	a := &Analysis{Fn: fn, pinned: map[string]bool{}, index: map[ast.Stmt]int{}, opts: opts}

	// Collect top-level statements and label targets.
	labels := map[string]int{}
	for _, s := range fn.Decl.Body.List {
		inner := s
		for {
			ls, ok := inner.(*ast.LabeledStmt)
			if !ok {
				break
			}
			labels[ls.Label.Name] = len(a.Stmts)
			inner = ls.Stmt
		}
		a.index[s] = len(a.Stmts)
		a.index[inner] = len(a.Stmts)
		a.Stmts = append(a.Stmts, inner)
	}

	// Address-taken pinning. With MHOutParams, `&x` directly in an
	// out-parameter slot of an mh primitive does not pin: the runtime
	// writes the pointee and never retains the address.
	exempt := map[*ast.UnaryExpr]bool{}
	if opts.MHOutParams {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range mhOutParamArgs(call) {
				if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					exempt[ue] = true
				}
			}
			return true
		})
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND || exempt[ue] {
			return true
		}
		if base := baseIdent(ue.X); base != nil {
			if d := info.VarOf(base); d != nil {
				a.pinned[d.Name] = true
			}
		}
		return true
	})

	n := len(a.Stmts)
	succ := make([][]int, n)
	for i, s := range a.Stmts {
		sc, err := successors(s, i, n, labels)
		if err != nil {
			return nil, fmt.Errorf("liveness: %s: %w", name, err)
		}
		succ[i] = sc
	}

	use := make([]map[string]bool, n)
	def := make([]map[string]bool, n)
	for i, s := range a.Stmts {
		use[i], def[i] = usesAndDefs(info, s, opts)
	}

	a.liveIn = make([]map[string]bool, n)
	a.liveOut = make([]map[string]bool, n)
	for i := range a.liveIn {
		a.liveIn[i] = map[string]bool{}
		a.liveOut[i] = map[string]bool{}
	}
	// Backward fixpoint.
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := map[string]bool{}
			for _, s := range succ[i] {
				for v := range a.liveIn[s] {
					out[v] = true
				}
			}
			in := map[string]bool{}
			for v := range out {
				if !def[i][v] {
					in[v] = true
				}
			}
			for v := range use[i] {
				in[v] = true
			}
			if !sameSet(out, a.liveOut[i]) || !sameSet(in, a.liveIn[i]) {
				a.liveOut[i] = out
				a.liveIn[i] = in
				changed = true
			}
		}
	}
	return a, nil
}

func sameSet(x, y map[string]bool) bool {
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if !y[k] {
			return false
		}
	}
	return true
}

// successors computes the control-flow successors of flat statement i.
func successors(s ast.Stmt, i, n int, labels map[string]int) ([]int, error) {
	next := func() []int {
		if i+1 < n {
			return []int{i + 1}
		}
		return nil
	}
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return nil, nil
	case *ast.BranchStmt:
		if st.Tok != token.GOTO {
			return nil, fmt.Errorf("unflattened branch %s at statement %d", st.Tok, i)
		}
		idx, ok := labels[st.Label.Name]
		if !ok {
			return nil, fmt.Errorf("goto to unknown label %s", st.Label.Name)
		}
		return []int{idx}, nil
	case *ast.IfStmt:
		// Flat form: the body is a sequence ending in goto/return, with no
		// internal labels. Conservative handling: successors are the
		// fallthrough plus every goto target inside; if the body cannot
		// exit normally (ends in goto/return) that is still safe
		// (over-approximation only adds edges).
		out := next()
		ast.Inspect(st, func(nd ast.Node) bool {
			if br, ok := nd.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
				if idx, ok := labels[br.Label.Name]; ok {
					out = append(out, idx)
				}
			}
			return true
		})
		return out, nil
	default:
		return next(), nil
	}
}

// usesAndDefs extracts the used and defined variables of one flat
// statement.
func usesAndDefs(info *lang.Info, s ast.Stmt, opts Options) (use, def map[string]bool) {
	use = map[string]bool{}
	def = map[string]bool{}
	addUses := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if opts.MHOutParams {
				if call, ok := n.(*ast.CallExpr); ok {
					if outDefs := mhCallUsesAndDefs(info, call, use, def); outDefs {
						return false
					}
				}
			}
			if id, ok := n.(*ast.Ident); ok {
				if d := info.VarOf(id); d != nil {
					use[d.Name] = true
				}
			}
			return true
		})
	}
	switch st := s.(type) {
	case *ast.AssignStmt:
		for i, rhs := range st.Rhs {
			// `_ = x` with a bare identifier is a pure discard (the
			// compile-time "use" has no runtime read); skip it so dead
			// variables silenced this way stay dead.
			if i < len(st.Lhs) && len(st.Lhs) == len(st.Rhs) {
				if lid, ok := st.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
					if _, bare := rhs.(*ast.Ident); bare {
						continue
					}
				}
			}
			addUses(rhs)
		}
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
					// op-assign reads the target too
					if d := info.VarOf(id); d != nil {
						use[d.Name] = true
					}
				}
				if d := info.VarOf(id); d != nil && d.Name != "_" {
					def[d.Name] = true
				}
				continue
			}
			// Indirect target (x[i], *p, x.F): uses of everything in it,
			// no definition.
			addUses(lhs)
		}
	case *ast.IncDecStmt:
		addUses(st.X)
		if id, ok := st.X.(*ast.Ident); ok {
			if d := info.VarOf(id); d != nil {
				def[d.Name] = true
			}
		}
	case *ast.ExprStmt:
		addUses(st.X)
	case *ast.IfStmt:
		addUses(st.Cond)
		for _, inner := range st.Body.List {
			u, _ := usesAndDefs(info, inner, opts)
			for v := range u {
				use[v] = true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			addUses(r)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						addUses(v)
					}
					for _, id := range vs.Names {
						if d := info.VarOf(id); d != nil && len(vs.Values) > 0 {
							def[d.Name] = true
						}
					}
				}
			}
		}
	}
	return use, def
}

// mhOutParamArgs returns the arguments of an mh-primitive call that the
// runtime writes through (out-parameters): mh.Read(iface, &x...) fills
// every argument after the interface name; mh.Restore(fn, format, &loc,
// &vars...) fills everything after the format string. Returns nil for any
// other call.
func mhOutParamArgs(call *ast.CallExpr) []ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok || recv.Name != lang.MHName {
		return nil
	}
	switch sel.Sel.Name {
	case "Read":
		if len(call.Args) > 1 {
			return call.Args[1:]
		}
	case "Restore":
		if len(call.Args) > 2 {
			return call.Args[2:]
		}
	}
	return nil
}

// mhCallUsesAndDefs handles an mh call with out-parameters: `&x` in an
// out slot is a definition of x; every other argument contributes uses.
// Out-arguments that are not a plain `&ident` (e.g. &x.f, &x[i]) are
// partial updates and count as uses of the base variable. Reports whether
// the call was handled (true only for out-parameter primitives).
func mhCallUsesAndDefs(info *lang.Info, call *ast.CallExpr, use, def map[string]bool) bool {
	outs := mhOutParamArgs(call)
	if outs == nil {
		return false
	}
	isOut := map[ast.Expr]bool{}
	for _, o := range outs {
		isOut[o] = true
	}
	for _, arg := range call.Args {
		if isOut[arg] {
			if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if id, ok := ue.X.(*ast.Ident); ok {
					if d := info.VarOf(id); d != nil {
						def[d.Name] = true
					}
					continue
				}
			}
		}
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if d := info.VarOf(id); d != nil {
					use[d.Name] = true
				}
			}
			return true
		})
	}
	return true
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IndexOf returns the flat index of a top-level statement (either the
// labeled wrapper or the inner statement), or -1.
func (a *Analysis) IndexOf(s ast.Stmt) int {
	if i, ok := a.index[s]; ok {
		return i
	}
	return -1
}

// LiveAfter returns the sorted variables live immediately after statement
// i, with address-taken variables pinned in.
func (a *Analysis) LiveAfter(i int) []string {
	return a.sorted(a.liveOut[i])
}

// LiveBefore returns the sorted variables live immediately before
// statement i, with address-taken variables pinned in.
func (a *Analysis) LiveBefore(i int) []string {
	return a.sorted(a.liveIn[i])
}

// Pinned reports whether the variable is address-taken (always captured).
func (a *Analysis) Pinned(name string) bool { return a.pinned[name] }

func (a *Analysis) sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set)+len(a.pinned))
	seen := map[string]bool{}
	for v := range set {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for v := range a.pinned {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
