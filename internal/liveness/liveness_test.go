package liveness

import (
	"go/ast"
	"reflect"
	"strings"
	"testing"

	"repro/internal/flatten"
	"repro/internal/lang"
)

// loadFlat parses, checks, flattens every function, and reloads.
func loadFlat(t *testing.T, src string) (*lang.Program, *lang.Info) {
	t.Helper()
	prog, err := lang.ParseSource("mod.go", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range prog.FuncOrder {
		if _, err := flatten.Function(prog, info, name); err != nil {
			t.Fatal(err)
		}
		flatten.PruneLabels(prog.Funcs[name].Decl, nil)
	}
	nprog, ninfo, err := lang.Reload(prog)
	if err != nil {
		t.Fatal(err)
	}
	return nprog, ninfo
}

// markerIndex finds the flat index of the mh.ReconfigPoint call.
func markerIndex(t *testing.T, a *Analysis, info *lang.Info, fn string) int {
	t.Helper()
	pts := info.PointsIn(fn)
	if len(pts) != 1 {
		t.Fatalf("expected 1 point in %s, got %d", fn, len(pts))
	}
	idx := a.IndexOf(pts[0].Stmt)
	if idx < 0 {
		t.Fatal("marker statement not found in flat list")
	}
	return idx
}

func TestDeadVariableOmitted(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() { work() }
func work() {
	a := 1
	b := 2
	c := 3
	mh.ReconfigPoint("R")
	b = 10
	mh.Write("out", a+b)
	_ = c
}
`)
	a, err := Analyze(prog, info, "work")
	if err != nil {
		t.Fatal(err)
	}
	idx := markerIndex(t, a, info, "work")
	live := a.LiveAfter(idx)
	// a is read after the point; b is overwritten before its next read
	// (dead at the point); c is only discarded.
	if !reflect.DeepEqual(live, []string{"a"}) {
		t.Errorf("live at R = %v, want [a]", live)
	}
}

func TestLoopCarriedVariableLive(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() { work() }
func work() {
	total := 0
	for i := 0; i < 10; i++ {
		mh.ReconfigPoint("R")
		total += i
	}
	mh.Write("out", total)
}
`)
	a, err := Analyze(prog, info, "work")
	if err != nil {
		t.Fatal(err)
	}
	idx := markerIndex(t, a, info, "work")
	live := a.LiveAfter(idx)
	// Both the accumulator and the loop counter are live across the
	// point (the counter via the back edge).
	if !reflect.DeepEqual(live, []string{"i", "total"}) {
		t.Errorf("live at R = %v, want [i total]", live)
	}
}

func TestAddressTakenPinned(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() { work() }
func work() {
	x := 1
	y := 2
	bump(&x)
	mh.ReconfigPoint("R")
	mh.Write("out", y)
}
func bump(p *int) { *p = *p + 1 }
`)
	a, err := Analyze(prog, info, "work")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Pinned("x") {
		t.Error("address-taken x not pinned")
	}
	idx := markerIndex(t, a, info, "work")
	live := a.LiveAfter(idx)
	// x is dead by data flow but pinned by the address-taken rule.
	if !reflect.DeepEqual(live, []string{"x", "y"}) {
		t.Errorf("live at R = %v, want [x y]", live)
	}
}

func TestPointerParamStaysLive(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() {
	var r float64
	work(3, &r)
}
func work(n int, rp *float64) {
	var temper int
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(n)
}
`)
	a, err := Analyze(prog, info, "work")
	if err != nil {
		t.Fatal(err)
	}
	idx := markerIndex(t, a, info, "work")
	live := a.LiveAfter(idx)
	// n and rp are read after the point; temper is written before read
	// (dead), though &temper pins it.
	want := []string{"n", "rp", "temper"}
	if !reflect.DeepEqual(live, want) {
		t.Errorf("live at R = %v, want %v", live, want)
	}
}

func TestLiveAfterCallSite(t *testing.T) {
	// The capture set for a call edge is what is live at the resume
	// point: here `result` flows into the write, `scratch` does not.
	prog, info := loadFlat(t, `package p
func main() {
	scratch := 5
	result := 0
	helper(&result)
	mh.Write("out", result)
	_ = scratch
}
func helper(p *int) {
	mh.ReconfigPoint("R")
	*p = 42
}
`)
	a, err := Analyze(prog, info, "main")
	if err != nil {
		t.Fatal(err)
	}
	// Find the helper call statement.
	callIdx := -1
	for i, s := range a.Stmts {
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "helper" {
					callIdx = i
				}
			}
		}
	}
	if callIdx < 0 {
		t.Fatal("helper call not found")
	}
	live := a.LiveAfter(callIdx)
	// result is pinned (address taken) and read; scratch is dead.
	if !reflect.DeepEqual(live, []string{"result"}) {
		t.Errorf("live after call = %v, want [result]", live)
	}
}

func TestBranchJoinLiveness(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() { work(1) }
func work(k int) {
	a := 1
	b := 2
	mh.ReconfigPoint("R")
	if k > 0 {
		mh.Write("out", a)
	} else {
		mh.Write("out", b)
	}
}
`)
	a, err := Analyze(prog, info, "work")
	if err != nil {
		t.Fatal(err)
	}
	idx := markerIndex(t, a, info, "work")
	live := a.LiveAfter(idx)
	// Either branch may run: a, b and k are all live.
	if !reflect.DeepEqual(live, []string{"a", "b", "k"}) {
		t.Errorf("live at R = %v", live)
	}
}

func TestIndirectStoresAreUses(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() { work() }
func work() {
	s := make([]int, 3)
	i := 1
	mh.ReconfigPoint("R")
	s[i] = 9
	mh.Write("out", s[0])
}
`)
	a, err := Analyze(prog, info, "work")
	if err != nil {
		t.Fatal(err)
	}
	idx := markerIndex(t, a, info, "work")
	live := a.LiveAfter(idx)
	// s[i] = 9 uses both s and i and does not kill s.
	if !reflect.DeepEqual(live, []string{"i", "s"}) {
		t.Errorf("live at R = %v, want [i s]", live)
	}
}

func TestComputeModuleLiveness(t *testing.T) {
	// The monitor compute procedure: at R, num / n / rp are live (rp via
	// pin + use, num and n in the average update); temper is pinned only.
	prog, info := loadFlat(t, `package compute
func main() {
	var n int
	var response float64
	mh.Init()
	for {
		for mh.QueryIfMsgs("display") {
			mh.Read("display", &n)
			compute(n, n, &response)
			mh.Write("display", response)
		}
		if mh.QueryIfMsgs("sensor") {
			compute(1, 1, &response)
		}
		mh.Sleep(2)
	}
}
func compute(num int, n int, rp *float64) {
	var temper int
	if n <= 0 {
		*rp = 0.0
		return
	}
	compute(num, n-1, rp)
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`)
	a, err := Analyze(prog, info, "compute")
	if err != nil {
		t.Fatal(err)
	}
	idx := markerIndex(t, a, info, "compute")
	live := a.LiveAfter(idx)
	want := []string{"num", "rp", "temper"}
	if !reflect.DeepEqual(live, want) {
		t.Errorf("live at R = %v, want %v", live, want)
	}

	// In main, at the first compute call's resume point, n and response
	// are live (response is written through the pointer and then read).
	am, err := Analyze(prog, info, "main")
	if err != nil {
		t.Fatal(err)
	}
	callIdx := -1
	for i, s := range am.Stmts {
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "compute" {
					callIdx = i
					break
				}
			}
		}
	}
	if callIdx < 0 {
		t.Fatal("compute call not found in flattened main")
	}
	live = am.LiveAfter(callIdx)
	if !reflect.DeepEqual(live, []string{"n", "response"}) {
		t.Errorf("live after compute call = %v, want [n response]", live)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() {}
`)
	if _, err := Analyze(prog, info, "ghost"); err == nil {
		t.Error("unknown function accepted")
	}

	// Unflattened input (a raw for loop) is rejected by the successor
	// computation only if a non-goto branch appears at top level; build
	// one directly.
	prog2, err := lang.ParseSource("mod.go", `package p
func main() {
	for i := 0; i < 3; i++ {
		break
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	info2, err := lang.Check(prog2)
	if err != nil {
		t.Fatal(err)
	}
	// A for statement at top level is treated as an opaque statement with
	// fallthrough successor — Analyze tolerates it (no panic) since only
	// flat forms matter in the pipeline.
	if _, err := Analyze(prog2, info2, "main"); err != nil {
		t.Logf("non-flat input reported: %v", err)
	}
}

func TestIndexOfMissing(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() { mh.Init() }
`)
	a, err := Analyze(prog, info, "main")
	if err != nil {
		t.Fatal(err)
	}
	if a.IndexOf(nil) != -1 {
		t.Error("IndexOf(nil) should be -1")
	}
	if len(a.Stmts) == 0 {
		t.Fatal("no statements")
	}
	if a.IndexOf(a.Stmts[0]) != 0 {
		t.Error("IndexOf(first) != 0")
	}
}

func TestMHOutParamOption(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() { work(3) }
func work(n int) {
	var temper int
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	mh.Write("out", temper+n)
}
`)
	// Default (transform) semantics: &temper counts as a use and pins
	// temper, so it appears in the capture set at R.
	a, err := Analyze(prog, info, "work")
	if err != nil {
		t.Fatal(err)
	}
	idx := markerIndex(t, a, info, "work")
	if live := a.LiveAfter(idx); !reflect.DeepEqual(live, []string{"n", "temper"}) {
		t.Errorf("default live at R = %v, want [n temper]", live)
	}
	if !a.Pinned("temper") {
		t.Error("default analysis should pin temper")
	}

	// With MHOutParams the mh.Read out-argument is a definition: temper is
	// neither pinned nor live across the point.
	ao, err := AnalyzeOpts(prog, info, "work", Options{MHOutParams: true})
	if err != nil {
		t.Fatal(err)
	}
	idx = markerIndex(t, ao, info, "work")
	if live := ao.LiveAfter(idx); !reflect.DeepEqual(live, []string{"n"}) {
		t.Errorf("MHOutParams live at R = %v, want [n]", live)
	}
	if ao.Pinned("temper") {
		t.Error("MHOutParams analysis should not pin temper")
	}
}

func TestMHOutParamExemptsOnlyMHCalls(t *testing.T) {
	// The exemption is scoped to mh out-parameter slots: an address that
	// also escapes to an ordinary call stays pinned.
	prog, info := loadFlat(t, `package p
func main() { work() }
func work() {
	var x int
	bump(&x)
	mh.ReconfigPoint("R")
	mh.Read("in", &x)
	mh.Write("out", x)
}
func bump(p *int) { *p = *p + 1 }
`)
	ao, err := AnalyzeOpts(prog, info, "work", Options{MHOutParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ao.Pinned("x") {
		t.Error("x escapes via bump(&x) and must stay pinned")
	}
}

func TestGotoIntoLoopBody(t *testing.T) {
	// A goto that jumps into a loop body exercises label resolution across
	// the lowered loop: the back edge and the entry edge must both reach
	// Body, keeping the loop-carried state live at the jump.
	prog, info := loadFlat(t, `package p
func main() { work() }
func work() {
	x := 1
	s := 0
	i := 0
	goto Body
	for i = 0; i < 3; i = i + 1 {
	Body:
		s = s + x
	}
	mh.ReconfigPoint("R")
	mh.Write("out", s)
}
`)
	a, err := Analyze(prog, info, "work")
	if err != nil {
		t.Fatal(err)
	}
	gotoIdx := -1
	for i, s := range a.Stmts {
		if br, ok := s.(*ast.BranchStmt); ok && br.Label != nil && br.Label.Name == "Body" {
			gotoIdx = i
			break
		}
	}
	if gotoIdx < 0 {
		t.Fatal("goto Body not found in flat list")
	}
	// Entering at Body runs s = s + x, then the post statement and the
	// condition: all three variables are live at the jump.
	if live := a.LiveBefore(gotoIdx); !reflect.DeepEqual(live, []string{"i", "s", "x"}) {
		t.Errorf("live before goto = %v, want [i s x]", live)
	}
	idx := markerIndex(t, a, info, "work")
	if live := a.LiveAfter(idx); !reflect.DeepEqual(live, []string{"s"}) {
		t.Errorf("live at R = %v, want [s]", live)
	}
}

func TestStringsSortedDeterministic(t *testing.T) {
	prog, info := loadFlat(t, `package p
func main() { work() }
func work() {
	z := 1
	a := 2
	m := 3
	mh.ReconfigPoint("R")
	mh.Write("out", z+a+m)
}
`)
	a, err := Analyze(prog, info, "work")
	if err != nil {
		t.Fatal(err)
	}
	idx := markerIndex(t, a, info, "work")
	live := a.LiveAfter(idx)
	if strings.Join(live, ",") != "a,m,z" {
		t.Errorf("live = %v, want sorted [a m z]", live)
	}
}
