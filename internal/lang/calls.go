package lang

import "go/ast"

// mhArity describes one mh primitive's call shape for the checker. Variadic
// tails are described by tail: "ptr" (pointer-typed values), "val"
// (capturable values), or "" (fixed arity).
type mhArity struct {
	fixed   []Type // leading fixed parameter types (nil entry = any capturable)
	tail    string
	results []Type
}

// mhAPI lists every mh primitive callable from module programs, both the
// programmer-facing communication calls and the calls emitted by the source
// transformation (Figure 4's slanted-typeface statements).
var mhAPI = map[string]mhArity{
	// Programmer-facing.
	"Init":          {},
	"Status":        {results: []Type{StringType}},
	"Read":          {fixed: []Type{StringType}, tail: "ptr"},
	"Write":         {fixed: []Type{StringType}, tail: "val"},
	"QueryIfMsgs":   {fixed: []Type{StringType}, results: []Type{BoolType}},
	"Sleep":         {fixed: []Type{IntType}},
	"ReconfigPoint": {fixed: []Type{StringType}},
	"Log":           {tail: "val"},

	// Emitted by the transformation.
	"Reconfig":             {results: []Type{BoolType}},
	"ClearReconfig":        {},
	"CaptureStack":         {results: []Type{BoolType}},
	"SetCaptureStack":      {fixed: []Type{BoolType}},
	"Restoring":            {results: []Type{BoolType}},
	"SetRestoring":         {fixed: []Type{BoolType}},
	"InstallSignalHandler": {},
	"Capture":              {fixed: []Type{StringType, StringType}, tail: "val"},
	"Encode":               {},
	"Decode":               {},
	"Restore":              {fixed: []Type{StringType, StringType}, tail: "ptr"},
	"FinishRestore":        {},
}

// checkCall validates a call expression and returns its result type: nil
// for void calls (legal only as statements), a Type for single results, or
// a Tuple. stmtCtx reports whether the call is an expression statement.
func (c *checker) checkCall(call *ast.CallExpr, stmtCtx bool) Type {
	if call.Ellipsis.IsValid() {
		c.errorf(call.Pos(), "... call arguments are not in the subset")
		return nil
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == MHName {
			return c.checkMHCall(call, fun.Sel.Name, stmtCtx)
		}
		c.errorf(call.Pos(), "only mh.<primitive> calls may use a selector")
		return nil
	case *ast.Ident:
		return c.checkNamedCall(call, fun, stmtCtx)
	case *ast.ArrayType:
		// Conversion like []int(x) — not in the subset.
		c.errorf(call.Pos(), "slice conversions are not in the subset")
		return nil
	default:
		c.errorf(call.Pos(), "call target %T is not in the subset", call.Fun)
		return nil
	}
}

func (c *checker) checkNamedCall(call *ast.CallExpr, fun *ast.Ident, stmtCtx bool) Type {
	switch fun.Name {
	case "int", "float64":
		if len(call.Args) != 1 {
			c.errorf(call.Pos(), "%s conversion takes one argument", fun.Name)
			return nil
		}
		at := c.checkExpr(call.Args[0], nil)
		if at != nil && !isNumeric(at) {
			c.errorf(call.Args[0].Pos(), "cannot convert %s to %s", at, fun.Name)
			return nil
		}
		if fun.Name == "int" {
			return IntType
		}
		return FloatType
	case "len", "cap":
		if len(call.Args) != 1 {
			c.errorf(call.Pos(), "%s takes one argument", fun.Name)
			return nil
		}
		at := c.checkExpr(call.Args[0], nil)
		switch at.(type) {
		case Slice:
			return IntType
		case Basic:
			if fun.Name == "len" && at.Equal(StringType) {
				return IntType
			}
		case nil:
			return nil
		}
		c.errorf(call.Pos(), "%s of %s is not in the subset", fun.Name, typeName(at))
		return nil
	case "append":
		if len(call.Args) < 2 {
			c.errorf(call.Pos(), "append needs a slice and at least one element")
			return nil
		}
		st := c.checkExpr(call.Args[0], nil)
		sl, ok := st.(Slice)
		if !ok {
			if st != nil {
				c.errorf(call.Args[0].Pos(), "append requires a slice, got %s", st)
			}
			return nil
		}
		for _, a := range call.Args[1:] {
			at := c.checkExpr(a, sl.Elem)
			if at != nil && !assignable(at, sl.Elem) {
				c.errorf(a.Pos(), "appending %s to %s", at, sl)
			}
		}
		return sl
	case "make":
		if len(call.Args) < 2 || len(call.Args) > 3 {
			c.errorf(call.Pos(), "make takes a slice type and 1 or 2 sizes")
			return nil
		}
		t, err := c.prog.ResolveType(call.Args[0])
		if err != nil {
			c.errs = append(c.errs, err.(*Error))
			return nil
		}
		sl, ok := t.(Slice)
		if !ok {
			c.errorf(call.Pos(), "make of %s is not in the subset", t)
			return nil
		}
		c.info.Types[call.Args[0]] = sl
		for _, a := range call.Args[1:] {
			c.intIndex(a)
		}
		return sl
	}
	// User-defined function.
	fn, ok := c.prog.Funcs[fun.Name]
	if !ok {
		if _, isStruct := c.prog.Structs[fun.Name]; isStruct {
			c.errorf(call.Pos(), "struct conversions are not in the subset; use a composite literal")
			return nil
		}
		c.errorf(call.Pos(), "call to undefined function %s", fun.Name)
		return nil
	}
	if len(call.Args) != len(fn.Params) {
		c.errorf(call.Pos(), "%s takes %d arguments, got %d", fn.Name, len(fn.Params), len(call.Args))
		return nil
	}
	for i, a := range call.Args {
		at := c.checkExpr(a, fn.Params[i].Type)
		if at != nil && !assignable(at, fn.Params[i].Type) {
			c.errorf(a.Pos(), "argument %d of %s: %s is not %s", i+1, fn.Name, at, fn.Params[i].Type)
		}
	}
	switch len(fn.Results) {
	case 0:
		if !stmtCtx {
			c.errorf(call.Pos(), "%s returns no value", fn.Name)
		}
		return nil
	case 1:
		return fn.Results[0]
	default:
		return Tuple{Elems: fn.Results}
	}
}

func (c *checker) checkMHCall(call *ast.CallExpr, name string, stmtCtx bool) Type {
	sig, ok := mhAPI[name]
	if !ok {
		c.errorf(call.Pos(), "unknown mh primitive %s", name)
		return nil
	}
	if len(call.Args) < len(sig.fixed) || (sig.tail == "" && len(call.Args) != len(sig.fixed)) {
		c.errorf(call.Pos(), "mh.%s: wrong argument count", name)
		return nil
	}
	for i, want := range sig.fixed {
		at := c.checkExpr(call.Args[i], want)
		if at != nil && want != nil && !assignable(at, want) {
			c.errorf(call.Args[i].Pos(), "mh.%s argument %d: %s is not %s", name, i+1, at, want)
		}
	}
	for _, a := range call.Args[len(sig.fixed):] {
		at := c.checkExpr(a, nil)
		if at == nil {
			continue
		}
		switch sig.tail {
		case "ptr":
			if _, ok := at.(Pointer); !ok {
				c.errorf(a.Pos(), "mh.%s: argument must be a pointer (use &x), got %s", name, at)
			}
		case "val":
			if _, ok := at.(Tuple); ok {
				c.errorf(a.Pos(), "mh.%s: multi-value call as argument", name)
			}
		}
	}
	switch len(sig.results) {
	case 0:
		if !stmtCtx {
			c.errorf(call.Pos(), "mh.%s returns no value", name)
		}
		return nil
	case 1:
		return sig.results[0]
	default:
		return Tuple{Elems: sig.results}
	}
}

// CallTargets returns the user-defined functions that fn calls, each with
// the call expression, in source order. Used by the call-graph builder.
func CallTargets(prog *Program, fn *Func) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isFn := prog.Funcs[id.Name]; isFn {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}

// IsNumLiteral reports whether e is a numeric literal expression (possibly
// parenthesized/negated) — expressions the flattener and the transform's
// dummy-argument analysis may treat as side-effect-free constants.
func IsNumLiteral(e ast.Expr) bool { return isUntypedNumLit(e) }
