package lang

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"repro/internal/state"
)

// Tuple is the type of a multi-value function result. It appears only as
// the momentary type of a call consumed by a multi-assignment or return.
type Tuple struct{ Elems []Type }

// String implements Type.
func (t Tuple) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Equal implements Type.
func (t Tuple) Equal(o Type) bool {
	ot, ok := o.(Tuple)
	if !ok || len(ot.Elems) != len(t.Elems) {
		return false
	}
	for i := range t.Elems {
		if !t.Elems[i].Equal(ot.Elems[i]) {
			return false
		}
	}
	return true
}

// Kind implements Type. Tuples never enter the abstract state.
func (t Tuple) Kind() state.Kind { return state.KindInvalid }

// Point is a reconfiguration point found in the source: a statement of the
// form mh.ReconfigPoint("R"). The paper's programmer "inserts a label R
// into the source code"; a bare Go label would be rejected by the compiler
// as unused, so the module language marks points with this no-op call,
// which the transform replaces with the capture block and label.
type Point struct {
	Label string
	Func  string
	Call  *ast.CallExpr // the marker call
	Stmt  *ast.ExprStmt // the statement wrapping it
}

// Info is the checker's output: types, definitions and uses, per-function
// variables, labels, and reconfiguration points.
type Info struct {
	Types    map[ast.Expr]Type
	Defs     map[*ast.Ident]*VarDef
	Uses     map[*ast.Ident]*VarDef
	FuncVars map[string][]*VarDef // params then locals, in declaration order
	Labels   map[string][]string
	Points   []Point
}

// TypeOf returns the recorded type of an expression, or nil.
func (i *Info) TypeOf(e ast.Expr) Type { return i.Types[e] }

// VarOf resolves an identifier to its variable definition (def or use).
func (i *Info) VarOf(id *ast.Ident) *VarDef {
	if d, ok := i.Defs[id]; ok {
		return d
	}
	return i.Uses[id]
}

// PointsIn returns the reconfiguration points located in the named function.
func (i *Info) PointsIn(fn string) []Point {
	var out []Point
	for _, p := range i.Points {
		if p.Func == fn {
			out = append(out, p)
		}
	}
	return out
}

// Check type-checks a module program against the subset rules and returns
// the collected information. All violations are reported together.
func Check(p *Program) (*Info, error) {
	c := &checker{
		prog: p,
		info: &Info{
			Types:    map[ast.Expr]Type{},
			Defs:     map[*ast.Ident]*VarDef{},
			Uses:     map[*ast.Ident]*VarDef{},
			FuncVars: map[string][]*VarDef{},
			Labels:   map[string][]string{},
		},
	}
	for _, name := range p.FuncOrder {
		c.checkFunc(p.Funcs[name])
	}
	c.checkPointLabels()
	if len(c.errs) > 0 {
		return nil, c.errs
	}
	return c.info, nil
}

// MHName is the identifier module programs use for the participation
// runtime (mh.Read, mh.Write, ...).
const MHName = "mh"

type checker struct {
	prog *Program
	info *Info
	errs ErrorList

	fn     *Func
	scopes []map[string]*VarDef
	labels map[string]bool
	loops  int
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: c.prog.Fset.Position(pos), Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*VarDef{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *checker) top() map[string]*VarDef {
	return c.scopes[len(c.scopes)-1]
}

func (c *checker) lookup(name string) *VarDef {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d, ok := c.scopes[i][name]; ok {
			return d
		}
	}
	return nil
}

func (c *checker) declare(id *ast.Ident, t Type, isParam bool) *VarDef {
	if id.Name == MHName {
		c.errorf(id.Pos(), "%s is reserved for the participation runtime", MHName)
	}
	if id.Name == "_" {
		d := &VarDef{Name: "_", Type: t, Ident: id}
		c.info.Defs[id] = d
		return d
	}
	if _, dup := c.top()[id.Name]; dup {
		c.errorf(id.Pos(), "%s redeclared in this block", id.Name)
	}
	d := &VarDef{Name: id.Name, Type: t, IsParam: isParam, Ident: id}
	c.top()[id.Name] = d
	c.info.Defs[id] = d
	c.info.FuncVars[c.fn.Name] = append(c.info.FuncVars[c.fn.Name], d)
	return d
}

func (c *checker) checkFunc(fn *Func) {
	c.fn = fn
	c.scopes = nil
	c.labels = map[string]bool{}
	c.loops = 0
	c.push()
	defer c.pop()

	// Pre-collect labels so forward gotos resolve.
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.LabeledStmt:
			if c.labels[l.Label.Name] {
				c.errorf(l.Pos(), "label %s redeclared", l.Label.Name)
			}
			c.labels[l.Label.Name] = true
			c.info.Labels[fn.Name] = append(c.info.Labels[fn.Name], l.Label.Name)
		case *ast.FuncLit:
			return false
		}
		return true
	})

	for _, p := range fn.Params {
		if _, dup := c.top()[p.Name]; dup {
			c.errorf(p.Ident.Pos(), "parameter %s redeclared", p.Name)
			continue
		}
		c.top()[p.Name] = p
		c.info.Defs[p.Ident] = p
		c.info.FuncVars[fn.Name] = append(c.info.FuncVars[fn.Name], p)
	}
	c.checkBlock(fn.Decl.Body)
}

func (c *checker) checkBlock(b *ast.BlockStmt) {
	c.push()
	for _, s := range b.List {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.DeclStmt:
		c.checkDecl(st)
	case *ast.AssignStmt:
		c.checkAssign(st)
	case *ast.IncDecStmt:
		t := c.checkExpr(st.X, nil)
		if !isNumeric(t) {
			c.errorf(st.Pos(), "%s requires a numeric operand, got %s", st.Tok, typeName(t))
		}
		c.requireLvalue(st.X)
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			c.errorf(st.Pos(), "expression statement must be a call")
			return
		}
		c.checkCall(call, true)
		if label, ok := reconfigPointLabel(call); ok {
			c.info.Points = append(c.info.Points, Point{Label: label, Func: c.fn.Name, Call: call, Stmt: st})
		}
	case *ast.IfStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		c.requireBool(st.Cond)
		c.checkBlock(st.Body)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
		c.pop()
	case *ast.ForStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.requireBool(st.Cond)
		}
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.loops++
		c.checkBlock(st.Body)
		c.loops--
		c.pop()
	case *ast.RangeStmt:
		c.checkRange(st)
	case *ast.SwitchStmt:
		c.checkSwitch(st)
	case *ast.BranchStmt:
		c.checkBranch(st)
	case *ast.LabeledStmt:
		c.checkStmt(st.Stmt)
	case *ast.ReturnStmt:
		c.checkReturn(st)
	case *ast.BlockStmt:
		c.checkBlock(st)
	case *ast.EmptyStmt:
	default:
		c.errorf(s.Pos(), "statement %T is not in the module subset (no go/defer/select/channels/maps)", s)
	}
}

func (c *checker) checkDecl(st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		c.errorf(st.Pos(), "only var declarations are allowed inside functions")
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		var declared Type
		if vs.Type != nil {
			t, err := c.prog.ResolveType(vs.Type)
			if err != nil {
				c.errs = append(c.errs, err.(*Error))
				continue
			}
			declared = t
		}
		if len(vs.Values) == 0 {
			if declared == nil {
				c.errorf(vs.Pos(), "var declaration needs a type or initializer")
				continue
			}
			for _, id := range vs.Names {
				c.declare(id, declared, false)
			}
			continue
		}
		if len(vs.Values) != len(vs.Names) {
			c.errorf(vs.Pos(), "var declaration arity mismatch (tuple initialization is only allowed with :=)")
			continue
		}
		for i, id := range vs.Names {
			vt := c.checkExpr(vs.Values[i], declared)
			if declared != nil {
				if vt != nil && !assignable(vt, declared) {
					c.errorf(vs.Values[i].Pos(), "cannot initialize %s (%s) with %s", id.Name, declared, typeName(vt))
				}
				c.declare(id, declared, false)
			} else {
				if vt == nil {
					continue
				}
				c.declare(id, vt, false)
			}
		}
	}
}

func (c *checker) checkAssign(st *ast.AssignStmt) {
	switch st.Tok {
	case token.DEFINE:
		// Multi-value form: a, b := f().
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			rt := c.checkExpr(st.Rhs[0], nil)
			tup, ok := rt.(Tuple)
			if !ok || len(tup.Elems) != len(st.Lhs) {
				c.errorf(st.Pos(), "cannot destructure %s into %d variables", typeName(rt), len(st.Lhs))
				return
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					c.errorf(lhs.Pos(), ":= target must be an identifier")
					continue
				}
				c.declare(id, tup.Elems[i], false)
			}
			return
		}
		if len(st.Lhs) != len(st.Rhs) {
			c.errorf(st.Pos(), ":= arity mismatch")
			return
		}
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				c.errorf(lhs.Pos(), ":= target must be an identifier")
				continue
			}
			t := c.checkExpr(st.Rhs[i], nil)
			if t == nil {
				continue
			}
			if _, isTuple := t.(Tuple); isTuple {
				c.errorf(st.Rhs[i].Pos(), "multi-value call in single assignment")
				continue
			}
			c.declare(id, t, false)
		}
	case token.ASSIGN:
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			rt := c.checkExpr(st.Rhs[0], nil)
			tup, ok := rt.(Tuple)
			if !ok || len(tup.Elems) != len(st.Lhs) {
				c.errorf(st.Pos(), "cannot assign %s to %d targets", typeName(rt), len(st.Lhs))
				return
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				lt := c.checkExpr(lhs, nil)
				c.requireLvalue(lhs)
				if lt != nil && !assignable(tup.Elems[i], lt) {
					c.errorf(lhs.Pos(), "cannot assign %s to %s", tup.Elems[i], lt)
				}
			}
			return
		}
		if len(st.Lhs) != len(st.Rhs) {
			c.errorf(st.Pos(), "assignment arity mismatch")
			return
		}
		for i, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				// Discard assignment: only the RHS is checked.
				c.checkExpr(st.Rhs[i], nil)
				continue
			}
			lt := c.checkExpr(lhs, nil)
			c.requireLvalue(lhs)
			rt := c.checkExpr(st.Rhs[i], lt)
			if lt != nil && rt != nil && !assignable(rt, lt) {
				c.errorf(st.Rhs[i].Pos(), "cannot assign %s to %s", rt, lt)
			}
		}
	default: // op-assign: +=, -=, ...
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			c.errorf(st.Pos(), "compound assignment must have one operand")
			return
		}
		lt := c.checkExpr(st.Lhs[0], nil)
		c.requireLvalue(st.Lhs[0])
		rt := c.checkExpr(st.Rhs[0], lt)
		if lt == nil || rt == nil {
			return
		}
		if !assignable(rt, lt) {
			c.errorf(st.Pos(), "invalid %s: %s and %s", st.Tok, lt, rt)
			return
		}
		op := assignOpToBinary(st.Tok)
		if !binaryDefined(op, lt) {
			c.errorf(st.Pos(), "operator %s not defined on %s", op, lt)
		}
	}
}

func (c *checker) checkRange(st *ast.RangeStmt) {
	c.push()
	defer c.pop()
	if st.Tok == token.ASSIGN {
		c.errorf(st.Pos(), "range with = is not in the subset; use :=")
		return
	}
	rt := c.checkExpr(st.X, nil)
	sl, ok := rt.(Slice)
	if !ok {
		c.errorf(st.X.Pos(), "range requires a slice, got %s", typeName(rt))
		return
	}
	if st.Key != nil {
		id, ok := st.Key.(*ast.Ident)
		if !ok {
			c.errorf(st.Key.Pos(), "range key must be an identifier")
			return
		}
		c.declare(id, IntType, false)
	}
	if st.Value != nil {
		id, ok := st.Value.(*ast.Ident)
		if !ok {
			c.errorf(st.Value.Pos(), "range value must be an identifier")
			return
		}
		c.declare(id, sl.Elem, false)
	}
	c.loops++
	c.checkBlock(st.Body)
	c.loops--
}

func (c *checker) checkSwitch(st *ast.SwitchStmt) {
	c.push()
	defer c.pop()
	if st.Init != nil {
		c.checkStmt(st.Init)
	}
	var tagType Type
	if st.Tag != nil {
		tagType = c.checkExpr(st.Tag, nil)
		if tagType != nil && !isComparable(tagType) {
			c.errorf(st.Tag.Pos(), "switch tag must be a comparable basic type, got %s", tagType)
		}
	}
	seenDefault := false
	c.loops++ // switch is breakable
	for _, clause := range st.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			c.errorf(clause.Pos(), "malformed switch clause")
			continue
		}
		if cc.List == nil {
			if seenDefault {
				c.errorf(cc.Pos(), "duplicate default case")
			}
			seenDefault = true
		}
		for _, e := range cc.List {
			if st.Tag != nil {
				et := c.checkExpr(e, tagType)
				if et != nil && tagType != nil && !assignable(et, tagType) {
					c.errorf(e.Pos(), "case type %s does not match switch tag %s", et, tagType)
				}
			} else {
				c.requireBool(e)
			}
		}
		c.push()
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				c.errorf(s.Pos(), "fallthrough is not in the module subset")
				continue
			}
			c.checkStmt(s)
		}
		c.pop()
	}
	c.loops--
}

func (c *checker) checkBranch(st *ast.BranchStmt) {
	switch st.Tok {
	case token.GOTO:
		if st.Label == nil || !c.labels[st.Label.Name] {
			c.errorf(st.Pos(), "goto to undeclared label")
		}
	case token.BREAK, token.CONTINUE:
		if st.Label != nil && !c.labels[st.Label.Name] {
			c.errorf(st.Pos(), "%s to undeclared label %s", st.Tok, st.Label.Name)
		}
		if c.loops == 0 {
			c.errorf(st.Pos(), "%s outside loop or switch", st.Tok)
		}
	case token.FALLTHROUGH:
		c.errorf(st.Pos(), "fallthrough is not in the module subset")
	}
}

func (c *checker) checkReturn(st *ast.ReturnStmt) {
	want := c.fn.Results
	if len(st.Results) == 0 {
		if len(want) != 0 {
			c.errorf(st.Pos(), "function %s must return %d values", c.fn.Name, len(want))
		}
		return
	}
	if len(st.Results) != len(want) {
		c.errorf(st.Pos(), "function %s returns %d values, want %d", c.fn.Name, len(st.Results), len(want))
		return
	}
	for i, e := range st.Results {
		t := c.checkExpr(e, want[i])
		if t != nil && !assignable(t, want[i]) {
			c.errorf(e.Pos(), "cannot return %s as %s", t, want[i])
		}
	}
}

func (c *checker) requireBool(e ast.Expr) {
	t := c.checkExpr(e, BoolType)
	if t != nil && !t.Equal(BoolType) {
		c.errorf(e.Pos(), "condition must be bool, got %s", t)
	}
}

func (c *checker) requireLvalue(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if c.lookup(x.Name) == nil {
			// already reported by checkExpr
		}
	case *ast.StarExpr, *ast.IndexExpr:
	case *ast.SelectorExpr:
		c.requireLvalue(x.X)
	case *ast.ParenExpr:
		c.requireLvalue(x.X)
	default:
		c.errorf(e.Pos(), "not an assignable expression")
	}
}

// checkExpr type-checks e and records its type. hint propagates the
// expected type into untyped numeric literals (so `f + 1` works with f
// float64, matching Go's untyped constants).
func (c *checker) checkExpr(e ast.Expr, hint Type) Type {
	t := c.exprType(e, hint)
	if t != nil {
		c.info.Types[e] = t
	}
	return t
}

func (c *checker) exprType(e ast.Expr, hint Type) Type {
	switch x := e.(type) {
	case *ast.BasicLit:
		return c.litType(x, hint)
	case *ast.Ident:
		switch x.Name {
		case "true", "false":
			return BoolType
		case "_":
			c.errorf(x.Pos(), "cannot use _ as a value")
			return nil
		case MHName:
			c.errorf(x.Pos(), "mh may only be used as mh.<primitive>(...)")
			return nil
		}
		d := c.lookup(x.Name)
		if d == nil {
			c.errorf(x.Pos(), "undeclared variable %s", x.Name)
			return nil
		}
		c.info.Uses[x] = d
		return d.Type
	case *ast.ParenExpr:
		return c.checkExpr(x.X, hint)
	case *ast.UnaryExpr:
		return c.unaryType(x, hint)
	case *ast.BinaryExpr:
		return c.binaryType(x, hint)
	case *ast.CallExpr:
		return c.checkCall(x, false)
	case *ast.IndexExpr:
		xt := c.checkExpr(x.X, nil)
		c.intIndex(x.Index)
		switch tt := xt.(type) {
		case Slice:
			return tt.Elem
		case nil:
			return nil
		default:
			c.errorf(x.Pos(), "cannot index %s", xt)
			return nil
		}
	case *ast.SliceExpr:
		if x.Slice3 {
			c.errorf(x.Pos(), "3-index slices are not in the subset")
			return nil
		}
		xt := c.checkExpr(x.X, nil)
		if x.Low != nil {
			c.intIndex(x.Low)
		}
		if x.High != nil {
			c.intIndex(x.High)
		}
		switch xt.(type) {
		case Slice:
			return xt
		case Basic:
			if xt.Equal(StringType) {
				return StringType
			}
		case nil:
			return nil
		}
		c.errorf(x.Pos(), "cannot slice %s", xt)
		return nil
	case *ast.StarExpr:
		xt := c.checkExpr(x.X, nil)
		pt, ok := xt.(Pointer)
		if !ok {
			if xt != nil {
				c.errorf(x.Pos(), "cannot dereference %s", xt)
			}
			return nil
		}
		return pt.Elem
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && id.Name == MHName {
			c.errorf(x.Pos(), "mh primitives must be called")
			return nil
		}
		xt := c.checkExpr(x.X, nil)
		if xt == nil {
			return nil
		}
		// Auto-deref one pointer level, like Go.
		if pt, ok := xt.(Pointer); ok {
			xt = pt.Elem
		}
		st, ok := xt.(*Struct)
		if !ok {
			c.errorf(x.Pos(), "%s has no fields", xt)
			return nil
		}
		ft := st.Field(x.Sel.Name)
		if ft == nil {
			c.errorf(x.Sel.Pos(), "%s has no field %s", st.Name, x.Sel.Name)
			return nil
		}
		return ft
	case *ast.CompositeLit:
		return c.compositeType(x)
	default:
		c.errorf(e.Pos(), "expression %T is not in the module subset", e)
		return nil
	}
}

func (c *checker) litType(lit *ast.BasicLit, hint Type) Type {
	switch lit.Kind {
	case token.INT:
		if hint != nil && hint.Equal(FloatType) {
			return FloatType
		}
		if _, err := strconv.ParseInt(lit.Value, 0, 64); err != nil {
			c.errorf(lit.Pos(), "integer literal out of range: %s", lit.Value)
			return nil
		}
		return IntType
	case token.FLOAT:
		return FloatType
	case token.STRING:
		if _, err := strconv.Unquote(lit.Value); err != nil {
			c.errorf(lit.Pos(), "bad string literal")
			return nil
		}
		return StringType
	default:
		c.errorf(lit.Pos(), "%s literals are not in the subset", lit.Kind)
		return nil
	}
}

func (c *checker) unaryType(x *ast.UnaryExpr, hint Type) Type {
	switch x.Op {
	case token.SUB, token.ADD:
		t := c.checkExpr(x.X, hint)
		if t != nil && !isNumeric(t) {
			c.errorf(x.Pos(), "operator %s requires a numeric operand", x.Op)
			return nil
		}
		return t
	case token.NOT:
		t := c.checkExpr(x.X, BoolType)
		if t != nil && !t.Equal(BoolType) {
			c.errorf(x.Pos(), "operator ! requires bool")
			return nil
		}
		return BoolType
	case token.AND:
		t := c.checkExpr(x.X, nil)
		if t == nil {
			return nil
		}
		c.requireLvalue(x.X)
		if _, nested := t.(Pointer); nested {
			c.errorf(x.Pos(), "pointer-to-pointer values are not in the subset")
			return nil
		}
		return Pointer{Elem: t}
	default:
		c.errorf(x.Pos(), "unary operator %s is not in the subset", x.Op)
		return nil
	}
}

func (c *checker) binaryType(x *ast.BinaryExpr, hint Type) Type {
	// Type the non-literal side first so untyped literals can adopt it.
	var lt, rt Type
	operandHint := hint
	if isComparison(x.Op) || x.Op == token.LAND || x.Op == token.LOR {
		operandHint = nil
	}
	if isUntypedNumLit(x.X) && !isUntypedNumLit(x.Y) {
		rt = c.checkExpr(x.Y, operandHint)
		lt = c.checkExpr(x.X, rt)
	} else {
		lt = c.checkExpr(x.X, operandHint)
		h := operandHint
		if lt != nil {
			h = lt
		}
		rt = c.checkExpr(x.Y, h)
	}
	if lt == nil || rt == nil {
		return nil
	}
	switch x.Op {
	case token.LAND, token.LOR:
		if !lt.Equal(BoolType) || !rt.Equal(BoolType) {
			c.errorf(x.Pos(), "operator %s requires bool operands", x.Op)
			return nil
		}
		return BoolType
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		if !lt.Equal(rt) {
			c.errorf(x.Pos(), "comparison of mismatched types %s and %s", lt, rt)
			return nil
		}
		if !isComparable(lt) {
			c.errorf(x.Pos(), "%s is not comparable", lt)
			return nil
		}
		if (x.Op != token.EQL && x.Op != token.NEQ) && lt.Equal(BoolType) {
			c.errorf(x.Pos(), "bool supports only == and !=")
			return nil
		}
		return BoolType
	default:
		if !lt.Equal(rt) {
			c.errorf(x.Pos(), "operator %s on mismatched types %s and %s", x.Op, lt, rt)
			return nil
		}
		if !binaryDefined(x.Op, lt) {
			c.errorf(x.Pos(), "operator %s not defined on %s", x.Op, lt)
			return nil
		}
		return lt
	}
}

func (c *checker) compositeType(x *ast.CompositeLit) Type {
	if x.Type == nil {
		c.errorf(x.Pos(), "composite literal needs an explicit type")
		return nil
	}
	t, err := c.prog.ResolveType(x.Type)
	if err != nil {
		c.errs = append(c.errs, err.(*Error))
		return nil
	}
	switch tt := t.(type) {
	case Slice:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.errorf(kv.Pos(), "keyed slice literals are not in the subset")
				continue
			}
			et := c.checkExpr(el, tt.Elem)
			if et != nil && !assignable(et, tt.Elem) {
				c.errorf(el.Pos(), "slice element %s is not %s", et, tt.Elem)
			}
		}
		return tt
	case *Struct:
		keyed := len(x.Elts) > 0
		if len(x.Elts) > 0 {
			_, keyed = x.Elts[0].(*ast.KeyValueExpr)
		}
		if keyed {
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					c.errorf(el.Pos(), "mixed keyed and positional struct literal")
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					c.errorf(kv.Pos(), "struct literal key must be a field name")
					continue
				}
				ft := tt.Field(key.Name)
				if ft == nil {
					c.errorf(kv.Pos(), "%s has no field %s", tt.Name, key.Name)
					continue
				}
				vt := c.checkExpr(kv.Value, ft)
				if vt != nil && !assignable(vt, ft) {
					c.errorf(kv.Value.Pos(), "field %s: %s is not %s", key.Name, vt, ft)
				}
			}
		} else if len(x.Elts) > 0 {
			if len(x.Elts) != len(tt.Fields) {
				c.errorf(x.Pos(), "%s literal needs %d values", tt.Name, len(tt.Fields))
				return tt
			}
			for i, el := range x.Elts {
				vt := c.checkExpr(el, tt.Fields[i].Type)
				if vt != nil && !assignable(vt, tt.Fields[i].Type) {
					c.errorf(el.Pos(), "field %s: %s is not %s", tt.Fields[i].Name, vt, tt.Fields[i].Type)
				}
			}
		}
		return tt
	default:
		c.errorf(x.Pos(), "composite literal of %s is not in the subset", t)
		return nil
	}
}

func (c *checker) intIndex(e ast.Expr) {
	t := c.checkExpr(e, IntType)
	if t != nil && !t.Equal(IntType) {
		c.errorf(e.Pos(), "index must be int, got %s", t)
	}
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func isUntypedNumLit(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.INT || x.Kind == token.FLOAT
	case *ast.ParenExpr:
		return isUntypedNumLit(x.X)
	case *ast.UnaryExpr:
		return (x.Op == token.SUB || x.Op == token.ADD) && isUntypedNumLit(x.X)
	}
	return false
}

func isNumeric(t Type) bool {
	b, ok := t.(Basic)
	return ok && (b.B == Int || b.B == Float64)
}

func isComparable(t Type) bool {
	_, ok := t.(Basic)
	return ok
}

func assignable(from, to Type) bool {
	if from == nil || to == nil {
		return false
	}
	return from.Equal(to)
}

func binaryDefined(op token.Token, t Type) bool {
	b, ok := t.(Basic)
	if !ok {
		return false
	}
	switch op {
	case token.ADD:
		return b.B == Int || b.B == Float64 || b.B == String
	case token.SUB, token.MUL, token.QUO:
		return b.B == Int || b.B == Float64
	case token.REM, token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
		return b.B == Int
	default:
		return false
	}
}

func assignOpToBinary(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	default:
		return token.ILLEGAL
	}
}

func typeName(t Type) string {
	if t == nil {
		return "<error>"
	}
	return t.String()
}

// reconfigPointLabel recognizes the marker call mh.ReconfigPoint("R").
func reconfigPointLabel(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ReconfigPoint" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != MHName {
		return "", false
	}
	if len(call.Args) != 1 {
		return "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	label, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return label, true
}

func (c *checker) checkPointLabels() {
	seen := map[string]*Point{}
	for i := range c.info.Points {
		pt := &c.info.Points[i]
		if pt.Label == "" {
			c.errorf(pt.Call.Pos(), "reconfiguration point with empty label")
			continue
		}
		if prev, dup := seen[pt.Label]; dup {
			c.errorf(pt.Call.Pos(), "reconfiguration point %s already declared in %s", pt.Label, prev.Func)
			continue
		}
		seen[pt.Label] = pt
	}
}
