package lang

import (
	"strings"
	"testing"

	"repro/internal/state"
)

// computeSrc is the Figure 3 compute module in the module language. The
// reconfiguration point R is marked with mh.ReconfigPoint (a bare label
// would be rejected by Go as unused).
const computeSrc = `package compute

func main() {
	var n int
	var response float64
	mh.Init()
	for {
		for mh.QueryIfMsgs("display") {
			mh.Read("display", &n)
			compute(n, n, &response)
			mh.Write("display", response)
		}
		if mh.QueryIfMsgs("sensor") {
			compute(1, 1, &response)
		}
		mh.Sleep(2)
	}
}

func compute(num int, n int, rp *float64) {
	var temper int
	if n <= 0 {
		*rp = 0.0
		return
	}
	compute(num, n-1, rp)
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`

func mustCheck(t *testing.T, src string) (*Program, *Info) {
	t.Helper()
	prog, err := ParseSource("mod.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, info
}

func checkErr(t *testing.T, src string, wantSubstr string) {
	t.Helper()
	prog, err := ParseSource("mod.go", src)
	if err == nil {
		_, err = Check(prog)
	}
	if err == nil {
		t.Fatalf("no error for source:\n%s", src)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Errorf("error %q does not mention %q", err.Error(), wantSubstr)
	}
}

func TestCheckComputeModule(t *testing.T) {
	prog, info := mustCheck(t, computeSrc)
	if prog.Package != "compute" {
		t.Errorf("package = %s", prog.Package)
	}
	if len(prog.FuncOrder) != 2 || prog.FuncOrder[0] != "main" || prog.FuncOrder[1] != "compute" {
		t.Errorf("FuncOrder = %v", prog.FuncOrder)
	}
	fn := prog.Funcs["compute"]
	if len(fn.Params) != 3 {
		t.Fatalf("compute params = %d", len(fn.Params))
	}
	if !fn.Params[2].Type.Equal(Pointer{Elem: FloatType}) {
		t.Errorf("rp type = %s", fn.Params[2].Type)
	}
	pts := info.PointsIn("compute")
	if len(pts) != 1 || pts[0].Label != "R" {
		t.Fatalf("points = %+v", pts)
	}
	if len(info.PointsIn("main")) != 0 {
		t.Error("main should have no points")
	}
	// main's vars: n, response. compute's: num, n, rp, temper.
	mainVars := info.FuncVars["main"]
	if len(mainVars) != 2 || mainVars[0].Name != "n" || mainVars[1].Name != "response" {
		t.Errorf("main vars = %v", varNames(mainVars))
	}
	compVars := info.FuncVars["compute"]
	if got := varNames(compVars); !equalStrings(got, []string{"num", "n", "rp", "temper"}) {
		t.Errorf("compute vars = %v", got)
	}
	if !compVars[0].IsParam || compVars[3].IsParam {
		t.Error("param flags wrong")
	}
}

func varNames(vars []*VarDef) []string {
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = v.Name
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTypeBasics(t *testing.T) {
	if IntType.String() != "int" || FloatType.String() != "float64" ||
		BoolType.String() != "bool" || StringType.String() != "string" {
		t.Error("basic type names wrong")
	}
	sl := Slice{Elem: IntType}
	if sl.String() != "[]int" || !sl.Equal(Slice{Elem: IntType}) || sl.Equal(Slice{Elem: FloatType}) {
		t.Error("slice type identity wrong")
	}
	pt := Pointer{Elem: FloatType}
	if pt.String() != "*float64" || pt.Kind() != state.KindFloat {
		t.Error("pointer type wrong")
	}
	st := &Struct{Name: "P", Fields: []StructField{{Name: "X", Type: IntType}}}
	if st.Kind() != state.KindStruct || st.Field("X") == nil || st.Field("Y") != nil {
		t.Error("struct type wrong")
	}
	if !strings.Contains(st.Describe(), "X int") {
		t.Errorf("Describe = %s", st.Describe())
	}
	if IntType.Kind() != state.KindInt || BoolType.Kind() != state.KindBool ||
		StringType.Kind() != state.KindString || sl.Kind() != state.KindList {
		t.Error("kind mapping wrong")
	}
	tup := Tuple{Elems: []Type{IntType, FloatType}}
	if tup.String() != "(int, float64)" || !tup.Equal(Tuple{Elems: []Type{IntType, FloatType}}) {
		t.Error("tuple type wrong")
	}
	if tup.Equal(IntType) || tup.Equal(Tuple{Elems: []Type{IntType}}) {
		t.Error("tuple equality wrong")
	}
}

func TestZeroValue(t *testing.T) {
	if v := ZeroValue(IntType); v.Kind != state.KindInt || v.Int != 0 {
		t.Errorf("zero int = %v", v)
	}
	if v := ZeroValue(StringType); v.Kind != state.KindString {
		t.Errorf("zero string = %v", v)
	}
	if v := ZeroValue(Slice{Elem: IntType}); v.Kind != state.KindList || len(v.List) != 0 {
		t.Errorf("zero slice = %v", v)
	}
	if v := ZeroValue(Pointer{Elem: FloatType}); v.Kind != state.KindFloat {
		t.Errorf("zero pointer = %v", v)
	}
	st := &Struct{Name: "P", Fields: []StructField{{Name: "X", Type: IntType}, {Name: "S", Type: StringType}}}
	v := ZeroValue(st)
	if v.Kind != state.KindStruct || len(v.Fields) != 2 || v.Fields[0].Name != "X" {
		t.Errorf("zero struct = %v", v)
	}
}

func TestFormatRune(t *testing.T) {
	cases := map[string]Type{
		"i": IntType, "F": FloatType, "b": BoolType, "s": StringType,
		"L": Slice{Elem: IntType}, "S": &Struct{Name: "P"},
	}
	for want, typ := range cases {
		r, ok := FormatRune(typ)
		if !ok || string(r) != want {
			t.Errorf("FormatRune(%s) = %q %t, want %s", typ, r, ok, want)
		}
	}
}

func TestCheckRichProgram(t *testing.T) {
	src := `package rich

type Point struct {
	X int
	Y float64
}

func main() {
	var pts []Point
	pts = append(pts, Point{X: 1, Y: 2.5}, Point{3, 4.0})
	total := 0.0
	for i, p := range pts {
		total = total + p.Y + float64(i)
	}
	s := make([]int, 2, 4)
	s[0] = len(pts)
	s = s[0:1]
	name := "pts: " + itoa(len(pts))
	q, r := divmod(7, 2)
	switch q {
	case 3:
		total += float64(r)
	default:
		total -= 1
	}
	if total > 0 && name != "" {
		mh.Write("out", total)
	}
	_ = cap(s)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var out string
	for n > 0 {
		d := n % 10
		out = string_digit(d) + out
		n = n / 10
	}
	return out
}

func string_digit(d int) string {
	var digits []string
	digits = append(digits, "0", "1", "2", "3", "4", "5", "6", "7", "8", "9")
	return digits[d]
}

func divmod(a int, b int) (int, int) {
	return a / b, a % b
}
`
	_, info := mustCheck(t, src)
	if len(info.Points) != 0 {
		t.Error("spurious points")
	}
}

func TestLiteralAdoptsFloatHint(t *testing.T) {
	src := `package p
func main() {
	var f float64
	f = f + 1
	f = 2 * f
	var g float64 = 3
	f = g - 1
	mh.Write("out", f)
}
`
	mustCheck(t, src)
}

func TestSubsetViolations(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no main", `package p
func helper() {}`, "no main function"},
		{"goroutine", `package p
func main() { go f() }
func f() {}`, "not in the module subset"},
		{"defer", `package p
func main() { defer f() }
func f() {}`, "not in the module subset"},
		{"map type", `package p
func main() { var m map[string]int; _ = m }`, "unsupported type"},
		{"chan type", `package p
func main() { var c chan int; _ = c }`, "unsupported type"},
		{"func lit", `package p
func main() { f := func() {}; f() }`, "not in the module subset"},
		{"import", `package p
import "fmt"
func main() { fmt.Println() }`, "imports are not allowed"},
		{"method", `package p
type T struct{ X int }
func (t T) M() {}
func main() {}`, "methods are not allowed"},
		{"pkg var", `package p
var x int
func main() {}`, "package-level"},
		{"array", `package p
func main() { var a [3]int; _ = a }`, "fixed-size arrays"},
		{"ptr to ptr", `package p
func main() { var p **int; _ = p }`, "pointer-to-pointer"},
		{"undeclared", `package p
func main() { x = 1 }`, "undeclared variable"},
		{"redeclared", `package p
func main() { var x int; var x int; _ = x }`, "redeclared"},
		{"type mismatch", `package p
func main() { var x int; x = "s" }`, "cannot assign"},
		{"cond not bool", `package p
func main() { if 1 { } }`, "condition must be bool"},
		{"mixed arith", `package p
func main() { var i int; var f float64; f = f + i }`, "mismatched types"},
		{"undefined func", `package p
func main() { nope() }`, "undefined function"},
		{"arity", `package p
func main() { f(1) }
func f(a int, b int) {}`, "takes 2 arguments"},
		{"void in expr", `package p
func main() { x := f(); _ = x }
func f() {}`, "returns no value"},
		{"return arity", `package p
func main() {}
func f() int { return }`, "must return 1"},
		{"return type", `package p
func main() {}
func f() int { return "s" }`, "cannot return"},
		{"bad goto", `package p
func main() { goto L }`, "undeclared label"},
		{"break outside", `package p
func main() { break }`, "outside loop"},
		{"fallthrough", `package p
func main() { switch { default: fallthrough } }`, "fallthrough"},
		{"bool ordering", `package p
func main() { var a bool; var b bool; if a < b {} }`, "only == and !="},
		{"mod float", `package p
func main() { var f float64; f = f % f }`, "not defined on float64"},
		{"mh reserved", `package p
func main() { var mh int; _ = mh }`, "reserved"},
		{"mh value", `package p
func main() { x := mh; _ = x }`, "mh"},
		{"read non-ptr", `package p
func main() { var n int; mh.Read("in", n) }`, "must be a pointer"},
		{"unknown mh", `package p
func main() { mh.Frobnicate() }`, "unknown mh primitive"},
		{"mh arg type", `package p
func main() { mh.Sleep("long") }`, "mh.Sleep"},
		{"point dup", `package p
func main() { mh.ReconfigPoint("R") }
func f() { mh.ReconfigPoint("R") }`, "already declared"},
		{"index non int", `package p
func main() { var s []int; var f float64; _ = s[f] }`, "index must be int"},
		{"index non slice", `package p
func main() { var n int; _ = n[0] }`, "cannot index"},
		{"deref non ptr", `package p
func main() { var n int; _ = *n }`, "cannot dereference"},
		{"field on non struct", `package p
func main() { var n int; _ = n.X }`, "has no fields"},
		{"unknown field", `package p
type T struct{ X int }
func main() { var t T; _ = t.Y }`, "has no field Y"},
		{"named results", `package p
func main() {}
func f() (x int) { return 0 }`, "named results"},
		{"unnamed params", `package p
func main() {}
func f(int) {}`, "parameters must be named"},
		{"append non slice", `package p
func main() { var n int; _ = append(n, 1) }`, "append requires a slice"},
		{"make non slice", `package p
func main() { _ = make(int, 1) }`, "make of int"},
		{"3-index slice", `package p
func main() { var s []int; _ = s[0:1:2] }`, "3-index"},
		{"string conv", `package p
func main() { var n int; _ = string(n) }`, "undefined function string"},
		{"tuple misuse", `package p
func main() { x := f(); _ = x }
func f() (int, int) { return 1, 2 }`, "multi-value call"},
		{"destructure arity", `package p
func main() { a, b, c := f(); _ = a; _ = b; _ = c }
func f() (int, int) { return 1, 2 }`, "cannot destructure"},
		{"const decl", `package p
func main() { const k = 1; _ = k }`, "only var declarations"},
		{"struct redecl", `package p
type T struct{}
type T struct{}
func main() {}`, "redeclared"},
		{"var no type", `package p
func main() { var x; _ = x }`, "parse"},
		{"assign to literal", `package p
func main() { 1 = 2 }`, "not an assignable expression"},
		{"label redeclared", `package p
func main() {
	L: for { break L }
	L: for { break L }
}`, "label L redeclared"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			checkErr(t, tt.src, tt.want)
		})
	}
}

func TestGotoAndLabels(t *testing.T) {
	src := `package p
func main() {
	var i int
loop:
	if i < 10 {
		i++
		goto loop
	}
outer:
	for {
		for {
			break outer
		}
	}
	mh.Write("out", i)
}
`
	_, info := mustCheck(t, src)
	labels := info.Labels["main"]
	if !equalStrings(labels, []string{"loop", "outer"}) {
		t.Errorf("labels = %v", labels)
	}
}

func TestMultiFileProgram(t *testing.T) {
	prog, err := ParseFiles(map[string]string{
		"a.go": "package m\nfunc main() { helper() }",
		"b.go": "package m\nfunc helper() {}",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFiles(map[string]string{
		"a.go": "package m1\nfunc main() {}",
		"b.go": "package m2\nfunc f() {}",
	}); err == nil || !strings.Contains(err.Error(), "mixed packages") {
		t.Errorf("mixed packages: %v", err)
	}
}

func TestInfoLookups(t *testing.T) {
	prog, info := mustCheck(t, computeSrc)
	fn := prog.Funcs["compute"]
	// The declaring ident of a param maps to its def.
	p0 := fn.Params[0]
	if info.VarOf(p0.Ident) != p0 {
		t.Error("VarOf(param ident) broken")
	}
	if info.TypeOf(nil) != nil {
		t.Error("TypeOf(nil) should be nil")
	}
}

func TestErrorListRendering(t *testing.T) {
	var l ErrorList
	if l.Error() != "lang: no errors" {
		t.Error("empty list")
	}
	l = append(l, &Error{Msg: "one"})
	if !strings.Contains(l.Error(), "one") {
		t.Error("single")
	}
	l = append(l, &Error{Msg: "two"})
	if !strings.Contains(l.Error(), "two") {
		t.Error("multi")
	}
}

func TestMultipleErrorsCollected(t *testing.T) {
	src := `package p
func main() {
	x = 1
	y = 2
}`
	prog, err := ParseSource("mod.go", src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatal("no error")
	}
	el, ok := err.(ErrorList)
	if !ok || len(el) < 2 {
		t.Errorf("expected multiple errors, got %v", err)
	}
}

func TestCallTargets(t *testing.T) {
	prog, _ := mustCheck(t, computeSrc)
	calls := CallTargets(prog, prog.Funcs["main"])
	if len(calls) != 2 {
		t.Errorf("main calls = %d, want 2 (two compute calls)", len(calls))
	}
	calls = CallTargets(prog, prog.Funcs["compute"])
	if len(calls) != 1 {
		t.Errorf("compute calls = %d, want 1 (the recursion)", len(calls))
	}
}

func TestIsNumLiteral(t *testing.T) {
	prog, _ := mustCheck(t, `package p
func main() { f(1, -2, (3), 2.5) }
func f(a int, b int, c int, d float64) {}
`)
	calls := CallTargets(prog, prog.Funcs["main"])
	for _, a := range calls[0].Args {
		if !IsNumLiteral(a) {
			t.Errorf("arg %v not recognized as literal", a)
		}
	}
}
