package lang

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
)

// VarDef is one declared variable (parameter or local) of a function.
type VarDef struct {
	Name    string
	Type    Type
	IsParam bool
	Ident   *ast.Ident // declaring identifier (nil for synthesized vars)
}

// Func is one module procedure.
type Func struct {
	Name    string
	Decl    *ast.FuncDecl
	Params  []*VarDef
	Results []Type
}

// Program is a parsed module program: the source files of one module.
type Program struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Package string
	Funcs   map[string]*Func
	Structs map[string]*Struct
	// FuncOrder lists function names in declaration order.
	FuncOrder []string
}

// Error reports a language violation with its source position.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("lang: %s: %s", e.Pos, e.Msg)
	}
	return "lang: " + e.Msg
}

// ErrorList aggregates checker errors.
type ErrorList []*Error

// Error implements error, rendering at most the first few messages.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "lang: no errors"
	case 1:
		return l[0].Error()
	default:
		s := l[0].Error()
		for _, e := range l[1:] {
			s += "\n" + e.Error()
		}
		return s
	}
}

// ParseFiles parses named source texts into a Program (without checking).
// Sources map file name to content.
func ParseFiles(sources map[string]string) (*Program, error) {
	fset := token.NewFileSet()
	p := &Program{
		Fset:    fset,
		Funcs:   map[string]*Func{},
		Structs: map[string]*Struct{},
	}
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parser.ParseFile(fset, name, sources[name], parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lang: parse %s: %w", name, err)
		}
		if p.Package == "" {
			p.Package = file.Name.Name
		} else if p.Package != file.Name.Name {
			return nil, fmt.Errorf("lang: mixed packages %s and %s", p.Package, file.Name.Name)
		}
		p.Files = append(p.Files, file)
	}
	if err := p.collectDecls(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseSource parses a single-file program.
func ParseSource(name, src string) (*Program, error) {
	return ParseFiles(map[string]string{name: src})
}

func (p *Program) errorf(pos token.Pos, format string, args ...any) *Error {
	return &Error{Pos: p.Fset.Position(pos), Msg: fmt.Sprintf(format, args...)}
}

// collectDecls gathers package-level functions and struct types. Struct
// resolution is two-pass so structs may reference each other by name.
func (p *Program) collectDecls() error {
	// Pass 1: struct names.
	type pendingStruct struct {
		spec *ast.TypeSpec
		st   *ast.StructType
	}
	var pending []pendingStruct
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return p.errorf(ts.Pos(), "type %s: only struct types are allowed", ts.Name.Name)
				}
				if _, dup := p.Structs[ts.Name.Name]; dup {
					return p.errorf(ts.Pos(), "type %s redeclared", ts.Name.Name)
				}
				p.Structs[ts.Name.Name] = &Struct{Name: ts.Name.Name}
				pending = append(pending, pendingStruct{spec: ts, st: st})
			}
		}
	}
	// Pass 2: struct fields.
	for _, ps := range pending {
		out := p.Structs[ps.spec.Name.Name]
		for _, field := range ps.st.Fields.List {
			ft, err := p.ResolveType(field.Type)
			if err != nil {
				return err
			}
			if len(field.Names) == 0 {
				return p.errorf(field.Pos(), "struct %s: embedded fields are not allowed", out.Name)
			}
			for _, n := range field.Names {
				out.Fields = append(out.Fields, StructField{Name: n.Name, Type: ft})
			}
		}
	}
	// Pass 3: functions.
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil {
					return p.errorf(d.Pos(), "method %s: methods are not allowed", d.Name.Name)
				}
				if d.Body == nil {
					return p.errorf(d.Pos(), "function %s has no body", d.Name.Name)
				}
				if _, dup := p.Funcs[d.Name.Name]; dup {
					return p.errorf(d.Pos(), "function %s redeclared", d.Name.Name)
				}
				fn := &Func{Name: d.Name.Name, Decl: d}
				if d.Type.TypeParams != nil {
					return p.errorf(d.Pos(), "function %s: type parameters are not allowed", d.Name.Name)
				}
				for _, field := range d.Type.Params.List {
					pt, err := p.ResolveType(field.Type)
					if err != nil {
						return err
					}
					if len(field.Names) == 0 {
						return p.errorf(field.Pos(), "function %s: parameters must be named", d.Name.Name)
					}
					for _, n := range field.Names {
						fn.Params = append(fn.Params, &VarDef{Name: n.Name, Type: pt, IsParam: true, Ident: n})
					}
				}
				if d.Type.Results != nil {
					for _, field := range d.Type.Results.List {
						if len(field.Names) > 0 {
							return p.errorf(field.Pos(), "function %s: named results are not allowed", d.Name.Name)
						}
						rt, err := p.ResolveType(field.Type)
						if err != nil {
							return err
						}
						fn.Results = append(fn.Results, rt)
					}
				}
				p.Funcs[d.Name.Name] = fn
				p.FuncOrder = append(p.FuncOrder, d.Name.Name)
			case *ast.GenDecl:
				switch d.Tok {
				case token.TYPE:
					// handled above
				case token.IMPORT:
					return p.errorf(d.Pos(), "imports are not allowed in module programs")
				case token.VAR, token.CONST:
					return p.errorf(d.Pos(), "package-level %s declarations are not allowed", d.Tok)
				}
			}
		}
	}
	if _, ok := p.Funcs["main"]; !ok {
		return &Error{Msg: "module program has no main function"}
	}
	return nil
}

// ResolveType converts a type expression to a module-subset Type.
func (p *Program) ResolveType(expr ast.Expr) (Type, error) {
	switch t := expr.(type) {
	case *ast.Ident:
		switch t.Name {
		case "int":
			return IntType, nil
		case "float64":
			return FloatType, nil
		case "bool":
			return BoolType, nil
		case "string":
			return StringType, nil
		default:
			if st, ok := p.Structs[t.Name]; ok {
				return st, nil
			}
			return nil, p.errorf(t.Pos(), "unknown type %s (module subset: int, float64, bool, string, []T, *T, named structs)", t.Name)
		}
	case *ast.ArrayType:
		if t.Len != nil {
			return nil, p.errorf(t.Pos(), "fixed-size arrays are not allowed; use slices")
		}
		elem, err := p.ResolveType(t.Elt)
		if err != nil {
			return nil, err
		}
		return Slice{Elem: elem}, nil
	case *ast.StarExpr:
		elem, err := p.ResolveType(t.X)
		if err != nil {
			return nil, err
		}
		if _, nested := elem.(Pointer); nested {
			return nil, p.errorf(t.Pos(), "pointer-to-pointer types are not allowed")
		}
		return Pointer{Elem: elem}, nil
	default:
		return nil, p.errorf(expr.Pos(), "unsupported type expression %T", expr)
	}
}
