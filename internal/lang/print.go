package lang

import (
	"bytes"
	"fmt"
	"go/format"
	"go/printer"
)

// FormatProgram renders every file of the program back to source, keyed by
// file name. Synthesized AST nodes (from flattening/instrumentation) carry
// no positions, so the output is normalized through go/format — which also
// guarantees the result is syntactically valid Go.
func FormatProgram(p *Program) (map[string]string, error) {
	out := make(map[string]string, len(p.Files))
	for _, file := range p.Files {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, p.Fset, file); err != nil {
			return nil, fmt.Errorf("lang: print %s: %w", file.Name.Name, err)
		}
		src, err := format.Source(buf.Bytes())
		if err != nil {
			return nil, fmt.Errorf("lang: format %s: %w\n%s", file.Name.Name, err, buf.String())
		}
		name := p.Fset.Position(file.Pos()).Filename
		if name == "" {
			name = file.Name.Name + ".go"
		}
		out[name] = string(src)
	}
	return out, nil
}

// FormatSingle renders a single-file program to source.
func FormatSingle(p *Program) (string, error) {
	files, err := FormatProgram(p)
	if err != nil {
		return "", err
	}
	if len(files) != 1 {
		return "", fmt.Errorf("lang: program has %d files, want 1", len(files))
	}
	for _, src := range files {
		return src, nil
	}
	return "", nil
}

// Reload prints a (possibly mutated) program and parses + checks the result
// afresh, returning the new program and info. This is how passes that
// rewrite the AST re-establish a consistent view.
func Reload(p *Program) (*Program, *Info, error) {
	files, err := FormatProgram(p)
	if err != nil {
		return nil, nil, err
	}
	np, err := ParseFiles(files)
	if err != nil {
		return nil, nil, fmt.Errorf("lang: reload: %w", err)
	}
	info, err := Check(np)
	if err != nil {
		return nil, nil, fmt.Errorf("lang: reload check: %w", err)
	}
	return np, info, nil
}
