// Package lang defines the module language of the reproduction: the
// statically-scoped, single-threaded Go subset that module programs
// (Figure 3) are written in, together with a parser front end and a type
// checker.
//
// The paper assumes "a module is written in a statically-scoped language and
// has a single thread of control" (Section 1). Our module language is a Go
// subset chosen so that (a) every module program is also a valid Go program
// against the real mh runtime, and (b) the subset is small enough to
// interpret and analyze precisely:
//
//   - types: int, float64, bool, string, []T, *T, and package-level named
//     struct types;
//   - declarations: var with explicit type and/or initializer, :=, const
//     (untyped literal only), type (struct only);
//   - statements: assignment (including n-ary and op-assign), if/else, for
//     (all three forms and range over slices/strings), switch (tagged and
//     tagless), break/continue (optionally labeled), goto/labels, return,
//     inc/dec, expression statements (calls);
//   - expressions: literals, identifiers, unary/binary operators, calls to
//     package functions and to the mh API, conversions int()/float64()/
//     string(), len/cap/append, index, slice expressions, selector on struct
//     values, &x, *p, composite literals for slices and structs;
//   - no goroutines, channels, closures, function values, maps, interfaces,
//     methods, defer, or imports other than the implicit mh runtime.
//
// The checker (check.go) enforces the subset and produces the type and
// def/use information that control-flow flattening, liveness analysis, the
// source transformation and the interpreter all share.
package lang

import (
	"fmt"
	"strings"

	"repro/internal/state"
)

// Type is a module-subset type.
type Type interface {
	// String renders Go syntax for the type.
	String() string
	// Equal reports structural equality.
	Equal(Type) bool
	// Kind maps the type to its abstract-state kind.
	Kind() state.Kind
}

// BasicKind enumerates the scalar types.
type BasicKind int

// Scalar types of the module subset.
const (
	Int BasicKind = iota + 1
	Float64
	Bool
	String
)

// Basic is a scalar type.
type Basic struct{ B BasicKind }

// Predefined basic types.
var (
	IntType    = Basic{B: Int}
	FloatType  = Basic{B: Float64}
	BoolType   = Basic{B: Bool}
	StringType = Basic{B: String}
)

// String implements Type.
func (b Basic) String() string {
	switch b.B {
	case Int:
		return "int"
	case Float64:
		return "float64"
	case Bool:
		return "bool"
	case String:
		return "string"
	default:
		return fmt.Sprintf("basic(%d)", int(b.B))
	}
}

// Equal implements Type.
func (b Basic) Equal(o Type) bool {
	ob, ok := o.(Basic)
	return ok && ob.B == b.B
}

// Kind implements Type.
func (b Basic) Kind() state.Kind {
	switch b.B {
	case Int:
		return state.KindInt
	case Float64:
		return state.KindFloat
	case Bool:
		return state.KindBool
	case String:
		return state.KindString
	default:
		return state.KindInvalid
	}
}

// Slice is []Elem.
type Slice struct{ Elem Type }

// String implements Type.
func (s Slice) String() string { return "[]" + s.Elem.String() }

// Equal implements Type.
func (s Slice) Equal(o Type) bool {
	os, ok := o.(Slice)
	return ok && s.Elem.Equal(os.Elem)
}

// Kind implements Type.
func (s Slice) Kind() state.Kind { return state.KindList }

// Pointer is *Elem. In the module subset pointers appear as parameters (the
// paper's out-parameters, e.g. rp *float64 in compute) and as &x arguments.
type Pointer struct{ Elem Type }

// String implements Type.
func (p Pointer) String() string { return "*" + p.Elem.String() }

// Equal implements Type.
func (p Pointer) Equal(o Type) bool {
	op, ok := o.(Pointer)
	return ok && p.Elem.Equal(op.Elem)
}

// Kind implements Type. A pointer is captured by pointee value (Section 3:
// addresses never enter the abstract state), so its abstract kind is the
// pointee's.
func (p Pointer) Kind() state.Kind { return p.Elem.Kind() }

// StructField is one field of a named struct type.
type StructField struct {
	Name string
	Type Type
}

// Struct is a package-level named struct type.
type Struct struct {
	Name   string
	Fields []StructField
}

// String implements Type.
func (s *Struct) String() string { return s.Name }

// Equal implements Type.
func (s *Struct) Equal(o Type) bool {
	os, ok := o.(*Struct)
	return ok && os.Name == s.Name
}

// Kind implements Type.
func (s *Struct) Kind() state.Kind { return state.KindStruct }

// Field returns the named field's type, or nil.
func (s *Struct) Field(name string) Type {
	for _, f := range s.Fields {
		if f.Name == name {
			return f.Type
		}
	}
	return nil
}

// Describe renders a struct with its fields (for diagnostics).
func (s *Struct) Describe() string {
	var b strings.Builder
	b.WriteString("struct " + s.Name + " {")
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(f.Name + " " + f.Type.String())
	}
	b.WriteString("}")
	return b.String()
}

// FormatRune returns the Polylith format character for a type, used when
// the transform builds mh_capture/mh_restore format strings.
func FormatRune(t Type) (rune, bool) {
	r, ok := t.Kind().FormatRune()
	return r, ok
}

// ZeroValue returns the abstract zero value of a type (what a restored
// dummy argument carries, and what var declarations initialize to).
func ZeroValue(t Type) state.Value {
	switch tt := t.(type) {
	case Basic:
		switch tt.B {
		case Int:
			return state.IntValue(0)
		case Float64:
			return state.FloatValue(0)
		case Bool:
			return state.BoolValue(false)
		case String:
			return state.StringValue("")
		}
	case Slice:
		return state.Value{Kind: state.KindList}
	case Pointer:
		return ZeroValue(tt.Elem)
	case *Struct:
		v := state.Value{Kind: state.KindStruct, Type: tt.Name}
		for _, f := range tt.Fields {
			v.Fields = append(v.Fields, state.Field{Name: f.Name, Value: ZeroValue(f.Type)})
		}
		return v
	}
	return state.Value{}
}
