package interp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/codec"
	"repro/internal/lang"
	"repro/internal/mh"
	"repro/internal/state"
)

func loadProgram(t *testing.T, src string) (*lang.Program, *lang.Info) {
	t.Helper()
	prog, err := lang.ParseSource("mod.go", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, info
}

func pureInterp(t *testing.T, src string) *Interp {
	t.Helper()
	prog, info := loadProgram(t, src)
	return New(prog, info, nil, WithMaxSteps(1_000_000))
}

func callOne(t *testing.T, in *Interp, fn string, args ...any) any {
	t.Helper()
	res, err := in.Call(fn, args...)
	if err != nil {
		t.Fatalf("Call(%s): %v", fn, err)
	}
	if len(res) != 1 {
		t.Fatalf("Call(%s) returned %d values", fn, len(res))
	}
	return res[0]
}

func TestPureFunctions(t *testing.T) {
	in := pureInterp(t, `package p

func main() {}

func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2)
}

func sumTo(n int) int {
	total := 0
	for i := 1; i <= n; i++ {
		total += i
	}
	return total
}

func classify(n int) string {
	switch {
	case n < 0:
		return "neg"
	case n == 0:
		return "zero"
	}
	switch n % 2 {
	case 0:
		return "even"
	default:
		return "odd"
	}
}

func gcd(a int, b int) int {
loop:
	if b == 0 {
		return a
	}
	a, b = b, a%b
	goto loop
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

func divmod(a int, b int) (int, int) {
	return a / b, a % b
}

func useDivmod(a int, b int) int {
	q, r := divmod(a, b)
	return q*1000 + r
}

func swap(p *int, q *int) {
	tmp := *p
	*p = *q
	*q = tmp
}

func swapped(a int, b int) int {
	swap(&a, &b)
	return a*10 + b
}

func nested(n int) int {
	count := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j > i {
				continue outer
			}
			if count > 100 {
				break outer
			}
			count++
		}
	}
	return count
}

func mkslice(n int) int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i*i)
	}
	total := 0
	for _, v := range s {
		total += v
	}
	return total + len(s) + cap(s)
}

func floats(x float64) float64 {
	y := x / 4
	return float64(int(y)) + 0.5
}
`)
	tests := []struct {
		fn   string
		args []any
		want any
	}{
		{"fib", []any{10}, 55},
		{"sumTo", []any{100}, 5050},
		{"classify", []any{-3}, "neg"},
		{"classify", []any{0}, "zero"},
		{"classify", []any{4}, "even"},
		{"classify", []any{7}, "odd"},
		{"gcd", []any{48, 36}, 12},
		{"join", []any{[]any{"a", "b", "c"}, "-"}, "a-b-c"},
		{"useDivmod", []any{17, 5}, 3002},
		{"swapped", []any{3, 7}, 73},
		{"nested", []any{5}, 15},
		{"mkslice", []any{4}, 14 + 4 + 4},
		{"floats", []any{10.0}, 2.5},
	}
	for _, tt := range tests {
		got := callOne(t, in, tt.fn, tt.args...)
		if got != tt.want {
			t.Errorf("%s(%v) = %v, want %v", tt.fn, tt.args, got, tt.want)
		}
	}
}

func TestStructSemantics(t *testing.T) {
	in := pureInterp(t, `package p

type Point struct {
	X int
	Y int
}

type Box struct {
	P Point
	N int
}

func main() {}

func valueCopy() int {
	a := Point{X: 1, Y: 2}
	b := a
	b.X = 100
	return a.X*1000 + b.X
}

func fieldPointer() int {
	a := Point{X: 1, Y: 2}
	bump(&a)
	return a.X
}

func bump(p *Point) {
	p.X = p.X + 10
}

func nestedMutate() int {
	b := Box{P: Point{X: 5, Y: 6}, N: 7}
	b.P.X = 50
	return b.P.X + b.N
}

func sliceOfStructs() int {
	var pts []Point
	pts = append(pts, Point{1, 2}, Point{3, 4})
	pts[1].Y = 40
	q := pts[0]
	q.X = 99
	return pts[0].X*100 + pts[1].Y
}

func passByValue(p Point) int {
	p.X = 42
	return p.X
}

func caller() int {
	a := Point{X: 7}
	r := passByValue(a)
	return a.X*100 + r
}
`)
	tests := []struct {
		fn   string
		want int
	}{
		{"valueCopy", 1100},
		{"fieldPointer", 11},
		{"nestedMutate", 57},
		{"sliceOfStructs", 140},
		{"caller", 742},
	}
	for _, tt := range tests {
		if got := callOne(t, in, tt.fn); got != tt.want {
			t.Errorf("%s() = %v, want %d", tt.fn, got, tt.want)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	in := pureInterp(t, `package p
func main() {}
func div(a int, b int) int { return a / b }
func mod(a int, b int) int { return a % b }
func idx(s []int, i int) int { return s[i] }
func deref() int {
	var p *int
	return *p
}
func spin() int {
	for {
	}
}
func shift(n int) int { return 1 << n }
`)
	cases := []struct {
		fn   string
		args []any
		want string
	}{
		{"div", []any{1, 0}, "division by zero"},
		{"mod", []any{1, 0}, "modulo by zero"},
		{"idx", []any{[]any{1, 2}, 5}, "out of range"},
		{"deref", nil, "nil"},
		{"spin", nil, "step limit"},
		{"shift", []any{200}, "shift count"},
	}
	for _, tt := range cases {
		_, err := in.Call(tt.fn, tt.args...)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: error = %v, want mention of %q", tt.fn, err, tt.want)
		}
	}
}

func TestMHWithoutRuntime(t *testing.T) {
	in := pureInterp(t, `package p
func main() { mh.Init() }
`)
	_, err := in.Run()
	if err == nil || !strings.Contains(err.Error(), "no runtime") {
		t.Errorf("err = %v", err)
	}
}

// ---- bus-attached module tests ----

// originalComputeSrc is Figure 3 verbatim in the module language.
const originalComputeSrc = `package compute

func main() {
	var n int
	var response float64
	mh.Init()
	for {
		for mh.QueryIfMsgs("display") {
			mh.Read("display", &n)
			compute(n, n, &response)
			mh.Write("display", response)
		}
		if mh.QueryIfMsgs("sensor") {
			compute(1, 1, &response)
		}
		mh.Sleep(2)
	}
}

func compute(num int, n int, rp *float64) {
	var temper int
	if n <= 0 {
		*rp = 0.0
		return
	}
	compute(num, n-1, rp)
	mh.ReconfigPoint("R")
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`

// instrumentedComputeSrc is Figure 4 in the module language: the flattened,
// capture/restore-woven form that internal/transform generates. Kept
// literal here as the executable specification of the transform's output.
const instrumentedComputeSrc = `package compute

func main() {
	var n int
	var response float64
	var mhLoc int
	mh.Init()
	if mh.Status() == "clone" {
		mh.Decode()
	}
	if mh.Restoring() {
		mh.Restore("main", "iiF", &mhLoc, &n, &response)
		if mhLoc == 1 {
			goto L1
		}
		if mhLoc == 2 {
			goto L2
		}
	}
loop:
	if !mh.QueryIfMsgs("display") {
		goto afterRequests
	}
	mh.Read("display", &n)
L1:
	compute(n, n, &response)
	if mh.CaptureStack() {
		mh.Capture("main", "llF", 1, n, response)
		mh.Encode()
		return
	}
	mh.Write("display", response)
	goto loop
afterRequests:
	if !mh.QueryIfMsgs("sensor") {
		goto idle
	}
L2:
	compute(1, 1, &response)
	if mh.CaptureStack() {
		mh.Capture("main", "llF", 2, n, response)
		mh.Encode()
		return
	}
idle:
	mh.Sleep(1)
	goto loop
}

func compute(num int, n int, rp *float64) {
	var temper int
	var mhLoc int
	if mh.Restoring() {
		mh.Restore("compute", "iiiF", &mhLoc, &num, &n, rp)
		if mhLoc == 3 {
			goto L3
		}
		if mhLoc == 4 {
			mh.SetRestoring(false)
			mh.InstallSignalHandler()
			goto R
		}
	}
	if n <= 0 {
		*rp = 0.0
		return
	}
L3:
	compute(num, n-1, rp)
	if mh.CaptureStack() {
		mh.Capture("compute", "lllF", 3, num, n, *rp)
		return
	}
	if mh.Reconfig() {
		mh.ClearReconfig()
		mh.SetCaptureStack(true)
		mh.Capture("compute", "lllF", 4, num, n, *rp)
		return
	}
R:
	mh.Read("sensor", &temper)
	*rp = *rp + float64(temper)/float64(num)
}
`

func computeSpec(name, machine, status string) bus.InstanceSpec {
	return bus.InstanceSpec{
		Name: name, Module: "compute", Machine: machine, Status: status,
		Interfaces: []bus.IfaceSpec{
			{Name: "display", Dir: bus.InOut},
			{Name: "sensor", Dir: bus.In},
		},
	}
}

type monitorHarness struct {
	t    *testing.T
	b    *bus.Bus
	disp bus.Port
	sens bus.Port
	c    codec.Codec
}

func newMonitorHarness(t *testing.T) *monitorHarness {
	t.Helper()
	b := bus.New()
	for _, spec := range []bus.InstanceSpec{
		{Name: "display", Module: "display", Machine: "m1",
			Interfaces: []bus.IfaceSpec{{Name: "temper", Dir: bus.InOut}}},
		{Name: "sensor", Module: "sensor", Machine: "m1",
			Interfaces: []bus.IfaceSpec{{Name: "out", Dir: bus.Out}}},
		computeSpec("compute", "machineA", bus.StatusAdd),
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	binds := [][2]bus.Endpoint{
		{{Instance: "display", Interface: "temper"}, {Instance: "compute", Interface: "display"}},
		{{Instance: "sensor", Interface: "out"}, {Instance: "compute", Interface: "sensor"}},
	}
	for _, bd := range binds {
		if err := b.AddBinding(bd[0], bd[1]); err != nil {
			t.Fatal(err)
		}
	}
	disp, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}
	sens, err := b.Attach("sensor")
	if err != nil {
		t.Fatal(err)
	}
	return &monitorHarness{t: t, b: b, disp: disp, sens: sens, c: codec.Default()}
}

func (h *monitorHarness) startModule(src, instance string) (*mh.Runtime, chan runResult) {
	h.t.Helper()
	prog, info := loadProgram(h.t, src)
	port, err := h.b.Attach(instance)
	if err != nil {
		h.t.Fatal(err)
	}
	rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
	in := New(prog, info, rt)
	done := make(chan runResult, 1)
	go func() {
		term, err := in.Run()
		done <- runResult{term: term, err: err}
	}()
	return rt, done
}

type runResult struct {
	term *mh.Termination
	err  error
}

func (h *monitorHarness) sendInt(p bus.Port, iface string, v int) {
	h.t.Helper()
	data, err := h.c.EncodeValue(state.IntValue(int64(v)))
	if err != nil {
		h.t.Fatal(err)
	}
	if err := p.Write(iface, data); err != nil {
		h.t.Fatal(err)
	}
}

func (h *monitorHarness) readFloat() float64 {
	h.t.Helper()
	m, err := h.disp.Read("temper")
	if err != nil {
		h.t.Fatal(err)
	}
	v, err := h.c.DecodeValue(m.Data)
	if err != nil {
		h.t.Fatal(err)
	}
	if v.Kind != state.KindFloat {
		h.t.Fatalf("reply kind = %v", v.Kind)
	}
	return v.Float
}

// TestMonitorComputeRuns (experiment F3): the original Figure 3 module
// serves averaging requests through the interpreter.
func TestMonitorComputeRuns(t *testing.T) {
	h := newMonitorHarness(t)
	_, done := h.startModule(originalComputeSrc, "compute")

	h.sendInt(h.disp, "temper", 3)
	h.sendInt(h.sens, "out", 60)
	h.sendInt(h.sens, "out", 70)
	h.sendInt(h.sens, "out", 80)
	want := 60.0/3 + 70.0/3 + 80.0/3
	if got := h.readFloat(); got != want {
		t.Errorf("average = %g, want %g", got, want)
	}

	// An untransformed module ignores reconfiguration signals (module-
	// level atomicity: it cannot participate).
	if err := h.b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	h.sendInt(h.disp, "temper", 1)
	h.sendInt(h.sens, "out", 50)
	if got := h.readFloat(); got != 50 {
		t.Errorf("post-signal average = %g, want 50", got)
	}

	if err := h.b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Errorf("module error: %v", res.err)
		}
		if res.term == nil {
			t.Error("expected termination after delete")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("module did not stop")
	}
}

// TestMoveDuringRecursionInterpreted (experiment E1): the full Section 2
// scenario executed from program text — the instrumented module is moved to
// machineB mid-recursion and the displayed average is exact.
func TestMoveDuringRecursionInterpreted(t *testing.T) {
	h := newMonitorHarness(t)
	rt, done := h.startModule(instrumentedComputeSrc, "compute")

	// Request an average of 3; the module recurses and blocks reading the
	// empty sensor queue at the innermost level.
	h.sendInt(h.disp, "temper", 3)
	time.Sleep(50 * time.Millisecond)
	if err := h.b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	h.sendInt(h.sens, "out", 60)

	owner, err := h.b.AwaitDivulged("compute", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("module failed: %v", res.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("module did not exit after divulging")
	}
	if rt.Err() != nil {
		t.Fatal(rt.Err())
	}

	st, err := h.c.DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth() != 3 {
		t.Fatalf("captured %d frames, want 3:\n%s", st.Depth(), st)
	}
	if st.Machine != "machineA" {
		t.Errorf("state machine = %s", st.Machine)
	}

	// Clone on machineB; atomic rebind with queue transfer; install; run.
	if err := h.b.AddInstance(computeSpec("compute2", "machineB", bus.StatusClone)); err != nil {
		t.Fatal(err)
	}
	err = h.b.Rebind([]bus.BindEdit{
		{Op: "del", From: bus.Endpoint{Instance: "display", Interface: "temper"}, To: bus.Endpoint{Instance: "compute", Interface: "display"}},
		{Op: "add", From: bus.Endpoint{Instance: "display", Interface: "temper"}, To: bus.Endpoint{Instance: "compute2", Interface: "display"}},
		{Op: "del", From: bus.Endpoint{Instance: "sensor", Interface: "out"}, To: bus.Endpoint{Instance: "compute", Interface: "sensor"}},
		{Op: "add", From: bus.Endpoint{Instance: "sensor", Interface: "out"}, To: bus.Endpoint{Instance: "compute2", Interface: "sensor"}},
		{Op: "cq", From: bus.Endpoint{Instance: "compute", Interface: "display"}, To: bus.Endpoint{Instance: "compute2", Interface: "display"}},
		{Op: "cq", From: bus.Endpoint{Instance: "compute", Interface: "sensor"}, To: bus.Endpoint{Instance: "compute2", Interface: "sensor"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.b.InstallState("compute2", owner.Data()); err != nil {
		t.Fatal(err)
	}
	if err := h.b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}

	rt2, done2 := h.startModule(instrumentedComputeSrc, "compute2")
	h.sendInt(h.sens, "out", 70)
	h.sendInt(h.sens, "out", 80)
	want := 60.0/3 + 70.0/3 + 80.0/3
	if got := h.readFloat(); got != want {
		t.Errorf("moved computation = %g, want %g", got, want)
	}

	// The clone serves fresh requests and reacts to a second
	// reconfiguration request (its handler was reinstalled on restore).
	h.sendInt(h.disp, "temper", 2)
	h.sendInt(h.sens, "out", 10)
	h.sendInt(h.sens, "out", 30)
	if got := h.readFloat(); got != 20 {
		t.Errorf("fresh request = %g, want 20", got)
	}

	time.Sleep(20 * time.Millisecond)
	h.sendInt(h.disp, "temper", 1)
	time.Sleep(20 * time.Millisecond)
	if err := h.b.SignalReconfig("compute2"); err != nil {
		t.Fatal(err)
	}
	// The pending request completes with the next sensor value; the flag
	// is then tested the next time the reconfiguration point executes,
	// which the second value triggers via the keep-sensor-clear path.
	h.sendInt(h.sens, "out", 5)
	h.sendInt(h.sens, "out", 99)
	if _, err := h.b.AwaitDivulged("compute2", 5*time.Second); err != nil {
		t.Fatalf("second divulge: %v", err)
	}
	select {
	case res := <-done2:
		if res.err != nil {
			t.Fatalf("clone failed: %v", res.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("clone did not exit after second divulge")
	}
	if rt2.Err() != nil {
		t.Fatal(rt2.Err())
	}
}

// TestInstrumentedIdlePath: a reconfiguration requested while the module is
// idling (no request in flight) captures at reconfiguration point reached
// through the keep-sensor-clear path (edge 2).
func TestInstrumentedIdlePath(t *testing.T) {
	h := newMonitorHarness(t)
	rt, done := h.startModule(instrumentedComputeSrc, "compute")

	time.Sleep(30 * time.Millisecond)
	if err := h.b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	// The idle loop only reaches R via the sensor-clearing branch, which
	// needs a pending sensor value.
	h.sendInt(h.sens, "out", 42)

	owner, err := h.b.AwaitDivulged("compute", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.c.DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	// Stack: main@2 + compute@4 (depth 1 recursion for the single value).
	if st.Depth() != 2 {
		t.Errorf("depth = %d:\n%s", st.Depth(), st)
	}
	if st.Frames[0].Location != 2 {
		t.Errorf("main resumed at %d, want edge 2", st.Frames[0].Location)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("module did not exit")
	}
	_ = rt
}
