// Package interp is a tree-walking interpreter for the module language
// (internal/lang): it executes module programs — original or transformed —
// as bus-attached, single-threaded modules entirely in-process.
//
// The interpreter exists for two reasons. First, it makes the whole
// distributed application of the paper hermetic: every example and test
// runs the real program text, the real bus, and the real capture/restore
// protocol without shelling out to a compiler. Second, it is the oracle for
// the semantics-preservation property tests: a program, its flattened form,
// and its instrumented form must be observationally equivalent, and the
// interpreter is where that is checked.
//
// Module programs remain valid Go: anything the interpreter runs can also
// be compiled against the real mh runtime (cmd/mhgen emits such packages).
package interp

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/state"
)

// Runtime values:
//
//	int            -> Go int
//	float64        -> Go float64
//	bool, string   -> Go bool, string
//	[]T            -> []any (reference semantics, like Go slices)
//	struct         -> *structVal (value semantics enforced by copyVal)
//	*T             -> cell (an assignable location)

// structVal is a struct value. It is heap-allocated so interior pointers
// (&t.X) work; value semantics are restored by copying at every store.
type structVal struct {
	typ    string
	names  []string
	fields []any
}

func (s *structVal) fieldIndex(name string) int {
	for i, n := range s.names {
		if n == name {
			return i
		}
	}
	return -1
}

// cell is an assignable storage location — what a pointer value denotes and
// what the environment maps variables to.
type cell interface {
	get() any
	set(any)
}

// varCell is a plain variable slot.
type varCell struct{ v any }

func (c *varCell) get() any  { return c.v }
func (c *varCell) set(v any) { c.v = v }

// sliceCell aliases one element of a slice.
type sliceCell struct {
	s []any
	i int
}

func (c sliceCell) get() any  { return c.s[c.i] }
func (c sliceCell) set(v any) { c.s[c.i] = v }

// fieldCell aliases one field of a struct value.
type fieldCell struct {
	sv *structVal
	i  int
}

func (c fieldCell) get() any  { return c.sv.fields[c.i] }
func (c fieldCell) set(v any) { c.sv.fields[c.i] = v }

// copyVal deep-copies struct values so that stores have Go's value
// semantics; scalars, slices (reference types in Go) and pointers pass
// through.
func copyVal(v any) any {
	sv, ok := v.(*structVal)
	if !ok {
		return v
	}
	out := &structVal{typ: sv.typ, names: sv.names, fields: make([]any, len(sv.fields))}
	for i, f := range sv.fields {
		out.fields[i] = copyVal(f)
	}
	return out
}

// zeroValue builds the runtime zero value of a type.
func zeroValue(t lang.Type) any {
	switch tt := t.(type) {
	case lang.Basic:
		switch tt.B {
		case lang.Int:
			return 0
		case lang.Float64:
			return 0.0
		case lang.Bool:
			return false
		case lang.String:
			return ""
		}
	case lang.Slice:
		return []any(nil)
	case lang.Pointer:
		return cell(nil)
	case *lang.Struct:
		sv := &structVal{typ: tt.Name}
		for _, f := range tt.Fields {
			sv.names = append(sv.names, f.Name)
			sv.fields = append(sv.fields, zeroValue(f.Type))
		}
		return sv
	}
	return nil
}

// toAbstract converts a runtime value to its abstract (state.Value) form.
// Pointers are dereferenced — addresses never leave the module.
func toAbstract(v any) (state.Value, error) {
	switch x := v.(type) {
	case int:
		return state.IntValue(int64(x)), nil
	case float64:
		return state.FloatValue(x), nil
	case bool:
		return state.BoolValue(x), nil
	case string:
		return state.StringValue(x), nil
	case []any:
		out := state.Value{Kind: state.KindList, List: make([]state.Value, len(x))}
		for i, e := range x {
			ev, err := toAbstract(e)
			if err != nil {
				return state.Value{}, err
			}
			out.List[i] = ev
		}
		return out, nil
	case *structVal:
		out := state.Value{Kind: state.KindStruct, Type: x.typ}
		for i, f := range x.fields {
			fv, err := toAbstract(f)
			if err != nil {
				return state.Value{}, err
			}
			out.Fields = append(out.Fields, state.Field{Name: x.names[i], Value: fv})
		}
		return out, nil
	case cell:
		if x == nil {
			return state.Value{}, fmt.Errorf("interp: cannot capture nil pointer")
		}
		return toAbstract(x.get())
	default:
		return state.Value{}, fmt.Errorf("interp: cannot capture value of type %T", v)
	}
}

// fromAbstract converts an abstract value into the runtime value of type t.
func fromAbstract(v state.Value, t lang.Type) (any, error) {
	switch tt := t.(type) {
	case lang.Basic:
		switch tt.B {
		case lang.Int:
			if v.Kind != state.KindInt {
				return nil, kindErr(v, t)
			}
			return int(v.Int), nil
		case lang.Float64:
			if v.Kind != state.KindFloat {
				return nil, kindErr(v, t)
			}
			return v.Float, nil
		case lang.Bool:
			if v.Kind != state.KindBool {
				return nil, kindErr(v, t)
			}
			return v.Bool, nil
		case lang.String:
			if v.Kind != state.KindString {
				return nil, kindErr(v, t)
			}
			return v.Str, nil
		}
	case lang.Slice:
		if v.Kind != state.KindList {
			return nil, kindErr(v, t)
		}
		out := make([]any, len(v.List))
		for i, e := range v.List {
			ev, err := fromAbstract(e, tt.Elem)
			if err != nil {
				return nil, err
			}
			out[i] = ev
		}
		return out, nil
	case lang.Pointer:
		// A pointer's abstract form is its pointee value; installing it
		// needs an existing cell, which the caller handles.
		return fromAbstract(v, tt.Elem)
	case *lang.Struct:
		if v.Kind != state.KindStruct {
			return nil, kindErr(v, t)
		}
		sv := &structVal{typ: tt.Name}
		for _, f := range tt.Fields {
			sv.names = append(sv.names, f.Name)
			var got *state.Value
			for i := range v.Fields {
				if v.Fields[i].Name == f.Name {
					got = &v.Fields[i].Value
					break
				}
			}
			if got == nil {
				return nil, fmt.Errorf("interp: abstract struct %s lacks field %s", tt.Name, f.Name)
			}
			fv, err := fromAbstract(*got, f.Type)
			if err != nil {
				return nil, err
			}
			sv.fields = append(sv.fields, fv)
		}
		return sv, nil
	}
	return nil, fmt.Errorf("interp: cannot restore into type %s", t)
}

func kindErr(v state.Value, t lang.Type) error {
	return fmt.Errorf("interp: abstract %s value does not fit %s", v.Kind, t)
}

// formatValue renders a runtime value for error messages and traces.
func formatValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "<nil>"
	case string:
		return fmt.Sprintf("%q", x)
	case []any:
		s := "["
		for i, e := range x {
			if i > 0 {
				s += " "
			}
			s += formatValue(e)
		}
		return s + "]"
	case *structVal:
		s := x.typ + "{"
		for i, f := range x.fields {
			if i > 0 {
				s += " "
			}
			s += x.names[i] + ":" + formatValue(f)
		}
		return s + "}"
	case cell:
		if x == nil {
			return "<nil ptr>"
		}
		return "&" + formatValue(x.get())
	default:
		return fmt.Sprintf("%v", x)
	}
}
