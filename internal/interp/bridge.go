package interp

import (
	"go/ast"

	"repro/internal/codec"
	"repro/internal/lang"
	"repro/internal/state"
)

// evalMHCall bridges mh.<primitive>(...) calls to the participation
// runtime. The checker guarantees shapes; the bridge converts between
// runtime values and abstract values.
func (in *Interp) evalMHCall(env *env, call *ast.CallExpr, name string) any {
	if in.rt == nil {
		in.failf(call.Pos(), "mh.%s called but no runtime is attached", name)
	}
	rt := in.rt
	before := rt.Err()
	result := in.dispatchMH(env, call, name)
	// A recorded runtime error means the module misbehaved; surface it
	// immediately rather than computing on garbage. Fatal errors already
	// unwound as a Termination panic and never reach this check.
	if err := rt.Err(); err != nil && err != before {
		in.failf(call.Pos(), "mh.%s: %v", name, err)
	}
	return result
}

func (in *Interp) dispatchMH(env *env, call *ast.CallExpr, name string) any {
	rt := in.rt
	argString := func(i int) string {
		v := in.eval(env, call.Args[i])
		s, ok := v.(string)
		if !ok {
			in.failf(call.Args[i].Pos(), "mh.%s argument %d is %s, want string", name, i+1, formatValue(v))
		}
		return s
	}

	switch name {
	case "Init":
		rt.Init()
	case "Status":
		return rt.Status()
	case "ReconfigPoint":
		// The untransformed marker is a no-op; the transform replaces it
		// with a capture block.
		_ = argString(0)
	case "Sleep":
		rt.Sleep(in.evalInt(env, call.Args[0]))
	case "Log":
		vals := make([]any, len(call.Args))
		for i, a := range call.Args {
			v := in.eval(env, a)
			if c, ok := v.(cell); ok && c != nil {
				v = c.get()
			}
			if s, ok := v.(string); ok {
				vals[i] = s
			} else {
				vals[i] = formatValue(v)
			}
		}
		rt.Log(vals...)
	case "QueryIfMsgs":
		return rt.QueryIfMsgs(argString(0))
	case "Reconfig":
		return rt.Reconfig()
	case "ClearReconfig":
		rt.ClearReconfig()
	case "CaptureStack":
		return rt.CaptureStack()
	case "SetCaptureStack":
		rt.SetCaptureStack(in.evalBool(env, call.Args[0]))
	case "Restoring":
		return rt.Restoring()
	case "SetRestoring":
		rt.SetRestoring(in.evalBool(env, call.Args[0]))
	case "InstallSignalHandler":
		rt.InstallSignalHandler()
	case "Encode":
		rt.Encode()
	case "Decode":
		rt.Decode()
	case "FinishRestore":
		rt.FinishRestore()
	case "Read":
		in.bridgeRead(env, call, argString(0))
	case "Write":
		in.bridgeWrite(env, call, argString(0))
	case "Capture":
		in.bridgeCapture(env, call, argString(0), argString(1))
	case "Restore":
		in.bridgeRestore(env, call, argString(0), argString(1))
	default:
		in.failf(call.Pos(), "unknown mh primitive %s", name)
	}
	return nil
}

func (in *Interp) bridgeRead(env *env, call *ast.CallExpr, iface string) {
	ptrs := call.Args[1:]
	cells := make([]cell, len(ptrs))
	elems := make([]lang.Type, len(ptrs))
	for i, a := range ptrs {
		v := in.eval(env, a)
		c, ok := v.(cell)
		if !ok || c == nil {
			in.failf(a.Pos(), "mh.Read argument is not a pointer")
		}
		cells[i] = c
		pt, ok := in.info.TypeOf(a).(lang.Pointer)
		if !ok {
			in.failf(a.Pos(), "mh.Read argument has no pointer type info")
		}
		elems[i] = pt.Elem
	}
	v, ok := in.rt.ReadAbstract(iface)
	if !ok {
		return // recorded error surfaces via the deferred check
	}
	if len(cells) == 1 {
		in.installAbstract(call, v, elems[0], cells[0])
		return
	}
	if v.Kind != state.KindList || len(v.List) != len(cells) {
		in.failf(call.Pos(), "mh.Read on %s: message arity %d does not match %d pointers", iface, len(v.List), len(cells))
	}
	for i, c := range cells {
		in.installAbstract(call, v.List[i], elems[i], c)
	}
}

func (in *Interp) installAbstract(call *ast.CallExpr, v state.Value, t lang.Type, c cell) {
	rv, err := fromAbstract(v, t)
	if err != nil {
		in.failf(call.Pos(), "%v", err)
	}
	c.set(rv)
}

func (in *Interp) bridgeWrite(env *env, call *ast.CallExpr, iface string) {
	vals := call.Args[1:]
	if len(vals) == 1 {
		av, err := toAbstract(in.eval(env, vals[0]))
		if err != nil {
			in.failf(call.Pos(), "%v", err)
		}
		in.rt.WriteAbstract(iface, av)
		return
	}
	out := state.Value{Kind: state.KindList, Type: "tuple", List: make([]state.Value, len(vals))}
	for i, a := range vals {
		av, err := toAbstract(in.eval(env, a))
		if err != nil {
			in.failf(a.Pos(), "%v", err)
		}
		out.List[i] = av
	}
	in.rt.WriteAbstract(iface, out)
}

func (in *Interp) bridgeCapture(env *env, call *ast.CallExpr, fn, format string) {
	args := call.Args[2:]
	if len(args) == 0 {
		in.failf(call.Pos(), "mh.Capture without a location")
	}
	loc, ok := in.eval(env, args[0]).(int)
	if !ok {
		in.failf(args[0].Pos(), "mh.Capture location must be int")
	}
	vars := make([]state.Var, 0, len(args)-1)
	avs := make([]state.Value, 0, len(args))
	avs = append(avs, state.IntValue(int64(loc)))
	for _, a := range args[1:] {
		av, err := toAbstract(in.eval(env, a))
		if err != nil {
			in.failf(a.Pos(), "%v", err)
		}
		vars = append(vars, state.Var{Name: exprName(a), Value: av})
		avs = append(avs, av)
	}
	if err := codec.ValidateFormat(format, avs); err != nil {
		in.failf(call.Pos(), "mh.Capture %s: %v", fn, err)
	}
	in.rt.CaptureAbstract(fn, loc, vars)
}

func (in *Interp) bridgeRestore(env *env, call *ast.CallExpr, fn, format string) {
	args := call.Args[2:]
	if len(args) == 0 {
		in.failf(call.Pos(), "mh.Restore without a location pointer")
	}
	frame, ok := in.rt.NextRestoreFrame(fn)
	if !ok {
		return
	}
	if len(args)-1 != len(frame.Vars) {
		in.failf(call.Pos(), "mh.Restore %s: frame has %d vars, %d pointers supplied", fn, len(frame.Vars), len(args)-1)
	}
	if format != "" {
		avs := make([]state.Value, 0, len(frame.Vars)+1)
		avs = append(avs, state.IntValue(int64(frame.Location)))
		for _, v := range frame.Vars {
			avs = append(avs, v.Value)
		}
		if err := codec.ValidateFormat(format, avs); err != nil {
			in.failf(call.Pos(), "mh.Restore %s: %v", fn, err)
		}
	}
	locCell := in.cellArg(env, call.Args[2])
	locCell.set(frame.Location)
	for i, a := range args[1:] {
		c := in.cellArg(env, a)
		pt, ok := in.info.TypeOf(a).(lang.Pointer)
		if !ok {
			in.failf(a.Pos(), "mh.Restore argument has no pointer type info")
		}
		in.installAbstract(call, frame.Vars[i].Value, pt.Elem, c)
	}
}

func (in *Interp) cellArg(env *env, a ast.Expr) cell {
	v := in.eval(env, a)
	c, ok := v.(cell)
	if !ok || c == nil {
		in.failf(a.Pos(), "argument is not a pointer")
	}
	return c
}

// exprName renders a short name for a captured expression (the variable
// name for idents, a best-effort rendering otherwise).
func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return exprName(x.X)
	case *ast.ParenExpr:
		return exprName(x.X)
	case *ast.SelectorExpr:
		return exprName(x.X) + "." + x.Sel.Name
	default:
		return "expr"
	}
}
