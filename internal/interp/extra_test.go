package interp

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/mh"
)

// TestMoreLanguageCoverage exercises corners of the module language the
// main tests do not reach.
func TestMoreLanguageCoverage(t *testing.T) {
	in := pureInterp(t, `package p

type Pair struct {
	A int
	B int
}

func main() {}

func opAssigns(x int) int {
	x += 3
	x -= 1
	x *= 4
	x /= 2
	x %= 100
	x <<= 2
	x >>= 1
	x &= 255
	x |= 16
	x ^= 3
	return x
}

func stringOps(s string) int {
	t := s + "!"
	u := t[1:3]
	total := len(u) + len(t)
	if "abc" < "abd" {
		total += 100
	}
	return total
}

func sliceOps() int {
	s := []int{5, 6, 7, 8}
	sub := s[1:3]
	sub[0] = 60 // aliases s[1]
	s = append(s, 9)
	total := 0
	for _, v := range s {
		total += v
	}
	return total + cap(sub)
}

func pairSwap(p Pair) Pair {
	p.A, p.B = p.B, p.A
	return p
}

func usePair() int {
	p := pairSwap(Pair{A: 1, B: 2})
	q := &p
	q.A += 10
	return p.A*100 + p.B
}

func multiBranchGoto(n int) int {
	r := 0
	if n > 5 {
		goto big
	}
	r = 1
	goto done
big:
	r = 2
done:
	return r
}

func negatives(x int) int {
	y := -x
	z := +y
	if !(z > 0) {
		return -1
	}
	return z
}

func tagSwitchInit(n int) int {
	switch m := n * 2; m {
	case 4:
		return 40
	case 6:
		return 60
	}
	return 0
}
`)
	tests := []struct {
		fn   string
		args []any
		want any
	}{
		{"opAssigns", []any{10}, ((((10+3-1)*4/2%100)<<2>>1)&255 | 16) ^ 3},
		{"stringOps", []any{"hey"}, 2 + 4 + 100},
		{"sliceOps", nil, 5 + 60 + 7 + 8 + 9 + 3},
		{"usePair", nil, 1201},
		{"multiBranchGoto", []any{3}, 1},
		{"multiBranchGoto", []any{9}, 2},
		{"negatives", []any{-5}, 5},
		{"tagSwitchInit", []any{2}, 40},
		{"tagSwitchInit", []any{3}, 60},
		{"tagSwitchInit", []any{5}, 0},
	}
	for _, tt := range tests {
		if got := callOne(t, in, tt.fn, tt.args...); got != tt.want {
			t.Errorf("%s(%v) = %v, want %v", tt.fn, tt.args, got, tt.want)
		}
	}
}

// TestInterpretedModuleOverTCP runs the instrumented compute module through
// the interpreter attached to the bus over TCP — the Port interface is
// transport-agnostic, so the module behaves identically to in-process.
func TestInterpretedModuleOverTCP(t *testing.T) {
	h := newMonitorHarness(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := bus.NewServer(h.b, l)
	defer srv.Close()

	prog, info := loadProgram(t, instrumentedComputeSrc)
	port, err := bus.DialPort(srv.Addr().String(), "compute")
	if err != nil {
		t.Fatal(err)
	}
	defer port.Close()
	rt := mh.New(port, mh.WithSleepUnit(time.Microsecond))
	in := New(prog, info, rt)
	done := make(chan runResult, 1)
	go func() {
		term, err := in.Run()
		done <- runResult{term: term, err: err}
	}()

	h.sendInt(h.disp, "temper", 2)
	h.sendInt(h.sens, "out", 10)
	h.sendInt(h.sens, "out", 30)
	if got := h.readFloat(); got != 20 {
		t.Errorf("TCP-attached module answered %g", got)
	}

	// Reconfigure over TCP: signal while blocked, allow the frame to
	// land, then unblock.
	h.sendInt(h.disp, "temper", 2)
	time.Sleep(50 * time.Millisecond)
	if err := h.b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	h.sendInt(h.sens, "out", 40)
	owner, err := h.b.AwaitDivulged("compute", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.c.DecodeState(owner.Data())
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth() != 2 {
		t.Errorf("depth = %d\n%s", st.Depth(), st)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("module did not exit")
	}
}

// TestLogBridging: mh.Log output is tagged and printable from interpreted
// modules.
func TestLogBridging(t *testing.T) {
	var buf strings.Builder
	b := bus.New()
	if err := b.AddInstance(bus.InstanceSpec{Name: "m"}); err != nil {
		t.Fatal(err)
	}
	port, err := b.Attach("m")
	if err != nil {
		t.Fatal(err)
	}
	rt := mh.New(port, mh.WithLogWriter(&buf))
	prog, info := loadProgram(t, `package p
func main() {
	x := 42
	s := "txt"
	p := &x
	mh.Log("value", x, s, p)
}
`)
	in := New(prog, info, rt)
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[m] value 42 txt 42") {
		t.Errorf("log output = %q", out)
	}
}
