package interp

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"strconv"

	"repro/internal/lang"
	"repro/internal/mh"
)

// Interp executes one module program against one participation runtime.
type Interp struct {
	prog     *lang.Program
	info     *lang.Info
	rt       *mh.Runtime
	maxSteps int64
	steps    int64
}

// Option configures the interpreter.
type Option func(*Interp)

// WithMaxSteps bounds the number of executed statements (0 = unbounded).
// Tests use it to catch accidental non-termination.
func WithMaxSteps(n int64) Option { return func(in *Interp) { in.maxSteps = n } }

// New builds an interpreter for a checked program. rt may be nil for pure
// programs that never touch mh (the property-test harness).
func New(prog *lang.Program, info *lang.Info, rt *mh.Runtime, opts ...Option) *Interp {
	in := &Interp{prog: prog, info: info, rt: rt}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Error is a module runtime error (index out of range, division by zero,
// step limit, ...).
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("interp: %s: %s", e.Pos, e.Msg)
	}
	return "interp: " + e.Msg
}

func (in *Interp) failf(pos token.Pos, format string, args ...any) {
	panic(&Error{Pos: in.prog.Fset.Position(pos), Msg: fmt.Sprintf(format, args...)})
}

// Run executes the program's main procedure. A clean exit (main returned or
// the runtime unwound with a Termination, e.g. after divulging state or
// being deleted) yields a nil error; the Termination, if any, is returned.
func (in *Interp) Run() (term *mh.Termination, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			switch v := rec.(type) {
			case mh.Termination:
				term = &v
			case *Error:
				err = v
			default:
				panic(rec)
			}
		}
	}()
	in.steps = 0
	_, callErr := in.call("main", nil, token.NoPos)
	return term, callErr
}

// Call invokes a named function with runtime values (int, float64, bool,
// string, []any, *structVal) and returns its results. Used by tests and the
// equivalence harness.
func (in *Interp) Call(fn string, args ...any) (results []any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			switch v := rec.(type) {
			case mh.Termination:
				err = v
			case *Error:
				err = v
			default:
				panic(rec)
			}
		}
	}()
	in.steps = 0
	return in.call(fn, args, token.NoPos)
}

func (in *Interp) call(name string, args []any, pos token.Pos) ([]any, error) {
	fn, ok := in.prog.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("interp: no function %s", name)
	}
	if len(args) != len(fn.Params) {
		return nil, fmt.Errorf("interp: %s takes %d arguments, got %d", name, len(fn.Params), len(args))
	}
	env := &env{in: in, fn: fn}
	env.push()
	for i, p := range fn.Params {
		env.declare(p.Name, copyVal(args[i]))
	}
	fl := in.execStmts(env, fn.Decl.Body.List)
	switch fl.kind {
	case flowNone, flowReturn:
		return fl.results, nil
	case flowGoto:
		in.failf(pos, "goto %s escaped function %s", fl.label, name)
	}
	return nil, nil
}

// ---- environments ----

type env struct {
	in     *Interp
	fn     *lang.Func
	scopes []map[string]cell
}

func (e *env) push() { e.scopes = append(e.scopes, map[string]cell{}) }
func (e *env) pop()  { e.scopes = e.scopes[:len(e.scopes)-1] }

func (e *env) declare(name string, v any) {
	if name == "_" {
		return
	}
	e.scopes[len(e.scopes)-1][name] = &varCell{v: v}
}

func (e *env) lookup(name string) cell {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if c, ok := e.scopes[i][name]; ok {
			return c
		}
	}
	return nil
}

// ---- control flow ----

type flowKind int

const (
	flowNone flowKind = iota
	flowReturn
	flowBreak
	flowContinue
	flowGoto
)

type flow struct {
	kind    flowKind
	label   string
	results []any
}

var flowNorm = flow{}

// execStmts runs a statement list, resolving gotos whose labels are
// declared at this level.
func (in *Interp) execStmts(env *env, list []ast.Stmt) flow {
	labels := map[string]int{}
	for i, s := range list {
		for ls, ok := s.(*ast.LabeledStmt); ok; ls, ok = s.(*ast.LabeledStmt) {
			labels[ls.Label.Name] = i
			s = ls.Stmt
		}
	}
	pc := 0
	for pc < len(list) {
		fl := in.execStmt(env, list[pc])
		switch fl.kind {
		case flowNone:
			pc++
		case flowGoto:
			if idx, ok := labels[fl.label]; ok {
				pc = idx
			} else {
				return fl
			}
		default:
			return fl
		}
	}
	return flowNorm
}

func (in *Interp) step(s ast.Stmt) {
	in.steps++
	if in.maxSteps > 0 && in.steps > in.maxSteps {
		in.failf(s.Pos(), "step limit of %d exceeded (non-terminating program?)", in.maxSteps)
	}
}

func (in *Interp) execStmt(env *env, s ast.Stmt) flow {
	in.step(s)
	switch st := s.(type) {
	case *ast.LabeledStmt:
		return in.execLabeled(env, st)
	case *ast.DeclStmt:
		in.execDecl(env, st)
		return flowNorm
	case *ast.AssignStmt:
		in.execAssign(env, st)
		return flowNorm
	case *ast.IncDecStmt:
		c := in.lvalue(env, st.X)
		switch v := c.get().(type) {
		case int:
			if st.Tok == token.INC {
				c.set(v + 1)
			} else {
				c.set(v - 1)
			}
		case float64:
			if st.Tok == token.INC {
				c.set(v + 1)
			} else {
				c.set(v - 1)
			}
		default:
			in.failf(st.Pos(), "%s on non-numeric %s", st.Tok, formatValue(v))
		}
		return flowNorm
	case *ast.ExprStmt:
		in.eval(env, st.X)
		return flowNorm
	case *ast.IfStmt:
		env.push()
		defer env.pop()
		if st.Init != nil {
			if fl := in.execStmt(env, st.Init); fl.kind != flowNone {
				return fl
			}
		}
		if in.evalBool(env, st.Cond) {
			return in.execBlock(env, st.Body)
		}
		if st.Else != nil {
			return in.execStmt(env, st.Else)
		}
		return flowNorm
	case *ast.ForStmt:
		return in.execFor(env, st, "")
	case *ast.RangeStmt:
		return in.execRange(env, st, "")
	case *ast.SwitchStmt:
		return in.execSwitch(env, st, "")
	case *ast.BranchStmt:
		switch st.Tok {
		case token.GOTO:
			return flow{kind: flowGoto, label: st.Label.Name}
		case token.BREAK:
			fl := flow{kind: flowBreak}
			if st.Label != nil {
				fl.label = st.Label.Name
			}
			return fl
		case token.CONTINUE:
			fl := flow{kind: flowContinue}
			if st.Label != nil {
				fl.label = st.Label.Name
			}
			return fl
		}
		in.failf(st.Pos(), "unsupported branch %s", st.Tok)
	case *ast.ReturnStmt:
		fl := flow{kind: flowReturn}
		for _, e := range st.Results {
			v := in.eval(env, e)
			if tup, ok := v.(tupleVal); ok {
				for _, tv := range tup {
					fl.results = append(fl.results, copyVal(tv))
				}
				continue
			}
			fl.results = append(fl.results, copyVal(v))
		}
		return fl
	case *ast.BlockStmt:
		return in.execBlock(env, st)
	case *ast.EmptyStmt:
		return flowNorm
	}
	in.failf(s.Pos(), "unsupported statement %T", s)
	return flowNorm
}

func (in *Interp) execBlock(env *env, b *ast.BlockStmt) flow {
	env.push()
	defer env.pop()
	return in.execStmts(env, b.List)
}

func (in *Interp) execLabeled(env *env, ls *ast.LabeledStmt) flow {
	switch inner := ls.Stmt.(type) {
	case *ast.ForStmt:
		return in.execFor(env, inner, ls.Label.Name)
	case *ast.RangeStmt:
		return in.execRange(env, inner, ls.Label.Name)
	case *ast.SwitchStmt:
		return in.execSwitch(env, inner, ls.Label.Name)
	default:
		return in.execStmt(env, ls.Stmt)
	}
}

func (in *Interp) execFor(env *env, st *ast.ForStmt, label string) flow {
	env.push()
	defer env.pop()
	if st.Init != nil {
		if fl := in.execStmt(env, st.Init); fl.kind != flowNone {
			return fl
		}
	}
	for {
		in.step(st)
		if st.Cond != nil && !in.evalBool(env, st.Cond) {
			return flowNorm
		}
		fl := in.execBlock(env, st.Body)
		switch fl.kind {
		case flowNone, flowContinue:
			if fl.kind == flowContinue && fl.label != "" && fl.label != label {
				return fl
			}
		case flowBreak:
			if fl.label == "" || fl.label == label {
				return flowNorm
			}
			return fl
		default:
			return fl
		}
		if st.Post != nil {
			if fl := in.execStmt(env, st.Post); fl.kind != flowNone {
				return fl
			}
		}
	}
}

func (in *Interp) execRange(env *env, st *ast.RangeStmt, label string) flow {
	xv := in.eval(env, st.X)
	sl, ok := xv.([]any)
	if !ok && xv != nil {
		in.failf(st.X.Pos(), "range over non-slice %s", formatValue(xv))
	}
	env.push()
	defer env.pop()
	for i := 0; i < len(sl); i++ {
		in.step(st)
		env.push()
		if st.Key != nil {
			env.declare(st.Key.(*ast.Ident).Name, i)
		}
		if st.Value != nil {
			env.declare(st.Value.(*ast.Ident).Name, copyVal(sl[i]))
		}
		fl := in.execBlock(env, st.Body)
		env.pop()
		switch fl.kind {
		case flowNone, flowContinue:
			if fl.kind == flowContinue && fl.label != "" && fl.label != label {
				return fl
			}
		case flowBreak:
			if fl.label == "" || fl.label == label {
				return flowNorm
			}
			return fl
		default:
			return fl
		}
	}
	return flowNorm
}

func (in *Interp) execSwitch(env *env, st *ast.SwitchStmt, label string) flow {
	env.push()
	defer env.pop()
	if st.Init != nil {
		if fl := in.execStmt(env, st.Init); fl.kind != flowNone {
			return fl
		}
	}
	var tag any
	hasTag := st.Tag != nil
	if hasTag {
		tag = in.eval(env, st.Tag)
	}
	var chosen *ast.CaseClause
	var deflt *ast.CaseClause
	for _, clause := range st.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			if hasTag {
				if in.equalValues(tag, in.eval(env, e), e.Pos()) {
					chosen = cc
					break
				}
			} else if in.evalBool(env, e) {
				chosen = cc
				break
			}
		}
		if chosen != nil {
			break
		}
	}
	if chosen == nil {
		chosen = deflt
	}
	if chosen == nil {
		return flowNorm
	}
	env.push()
	fl := in.execStmts(env, chosen.Body)
	env.pop()
	if fl.kind == flowBreak && (fl.label == "" || fl.label == label) {
		return flowNorm
	}
	return fl
}

func (in *Interp) execDecl(env *env, st *ast.DeclStmt) {
	gd := st.Decl.(*ast.GenDecl)
	for _, spec := range gd.Specs {
		vs := spec.(*ast.ValueSpec)
		var declared lang.Type
		if vs.Type != nil {
			t, err := in.prog.ResolveType(vs.Type)
			if err != nil {
				in.failf(vs.Pos(), "%v", err)
			}
			declared = t
		}
		for i, id := range vs.Names {
			if len(vs.Values) > i {
				env.declare(id.Name, copyVal(in.eval(env, vs.Values[i])))
			} else {
				env.declare(id.Name, zeroValue(declared))
			}
		}
	}
}

func (in *Interp) execAssign(env *env, st *ast.AssignStmt) {
	switch st.Tok {
	case token.DEFINE:
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			v := in.eval(env, st.Rhs[0])
			tup, ok := v.(tupleVal)
			if !ok || len(tup) != len(st.Lhs) {
				in.failf(st.Pos(), "cannot destructure %s", formatValue(v))
			}
			for i, lhs := range st.Lhs {
				env.declare(lhs.(*ast.Ident).Name, copyVal(tup[i]))
			}
			return
		}
		for i, lhs := range st.Lhs {
			env.declare(lhs.(*ast.Ident).Name, copyVal(in.eval(env, st.Rhs[i])))
		}
	case token.ASSIGN:
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			v := in.eval(env, st.Rhs[0])
			tup, ok := v.(tupleVal)
			if !ok || len(tup) != len(st.Lhs) {
				in.failf(st.Pos(), "cannot destructure %s", formatValue(v))
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				in.lvalue(env, lhs).set(copyVal(tup[i]))
			}
			return
		}
		// Go evaluates all RHS before assigning (a, b = b, a works).
		vals := make([]any, len(st.Rhs))
		for i, rhs := range st.Rhs {
			vals[i] = copyVal(in.eval(env, rhs))
		}
		for i, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			in.lvalue(env, lhs).set(vals[i])
		}
	default: // op-assign
		c := in.lvalue(env, st.Lhs[0])
		op := assignOpBinary(st.Tok)
		v := in.binop(op, c.get(), in.eval(env, st.Rhs[0]), st.Pos())
		c.set(v)
	}
}

func assignOpBinary(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	default:
		return token.ILLEGAL
	}
}

// ---- lvalues ----

func (in *Interp) lvalue(env *env, e ast.Expr) cell {
	switch x := e.(type) {
	case *ast.Ident:
		c := env.lookup(x.Name)
		if c == nil {
			in.failf(x.Pos(), "undeclared variable %s", x.Name)
		}
		return c
	case *ast.ParenExpr:
		return in.lvalue(env, x.X)
	case *ast.StarExpr:
		v := in.eval(env, x.X)
		c, ok := v.(cell)
		if !ok || c == nil {
			in.failf(x.Pos(), "dereference of nil or non-pointer %s", formatValue(v))
		}
		return c
	case *ast.IndexExpr:
		xv := in.eval(env, x.X)
		sl, ok := xv.([]any)
		if !ok {
			in.failf(x.Pos(), "index of non-slice %s", formatValue(xv))
		}
		i := in.evalInt(env, x.Index)
		if i < 0 || i >= len(sl) {
			in.failf(x.Pos(), "index %d out of range [0:%d]", i, len(sl))
		}
		return sliceCell{s: sl, i: i}
	case *ast.SelectorExpr:
		sv := in.structOperand(env, x.X)
		idx := sv.fieldIndex(x.Sel.Name)
		if idx < 0 {
			in.failf(x.Sel.Pos(), "%s has no field %s", sv.typ, x.Sel.Name)
		}
		return fieldCell{sv: sv, i: idx}
	}
	in.failf(e.Pos(), "not an assignable expression")
	return nil
}

// structOperand resolves the struct value an expression denotes, following
// one pointer level (Go's auto-deref in selectors).
func (in *Interp) structOperand(env *env, e ast.Expr) *structVal {
	v := in.eval(env, e)
	if c, ok := v.(cell); ok {
		if c == nil {
			in.failf(e.Pos(), "field access through nil pointer")
		}
		v = c.get()
	}
	sv, ok := v.(*structVal)
	if !ok {
		in.failf(e.Pos(), "field access on non-struct %s", formatValue(v))
	}
	return sv
}

// tupleVal carries a multi-value call result between expressions.
type tupleVal []any

// ---- expressions ----

func (in *Interp) eval(env *env, e ast.Expr) any {
	switch x := e.(type) {
	case *ast.BasicLit:
		return in.evalLit(x)
	case *ast.Ident:
		switch x.Name {
		case "true":
			return true
		case "false":
			return false
		}
		c := env.lookup(x.Name)
		if c == nil {
			in.failf(x.Pos(), "undeclared variable %s", x.Name)
		}
		return c.get()
	case *ast.ParenExpr:
		return in.eval(env, x.X)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			switch v := in.eval(env, x.X).(type) {
			case int:
				return -v
			case float64:
				return -v
			default:
				in.failf(x.Pos(), "negation of %s", formatValue(v))
			}
		case token.ADD:
			return in.eval(env, x.X)
		case token.NOT:
			return !in.evalBool(env, x.X)
		case token.AND:
			return cell(in.lvalue(env, x.X))
		}
		in.failf(x.Pos(), "unsupported unary %s", x.Op)
	case *ast.BinaryExpr:
		if x.Op == token.LAND {
			return in.evalBool(env, x.X) && in.evalBool(env, x.Y)
		}
		if x.Op == token.LOR {
			return in.evalBool(env, x.X) || in.evalBool(env, x.Y)
		}
		return in.binop(x.Op, in.eval(env, x.X), in.eval(env, x.Y), x.Pos())
	case *ast.CallExpr:
		return in.evalCall(env, x)
	case *ast.IndexExpr:
		xv := in.eval(env, x.X)
		sl, ok := xv.([]any)
		if !ok {
			in.failf(x.Pos(), "index of non-slice %s", formatValue(xv))
		}
		i := in.evalInt(env, x.Index)
		if i < 0 || i >= len(sl) {
			in.failf(x.Pos(), "index %d out of range [0:%d]", i, len(sl))
		}
		return sl[i]
	case *ast.SliceExpr:
		return in.evalSlice(env, x)
	case *ast.StarExpr:
		v := in.eval(env, x.X)
		c, ok := v.(cell)
		if !ok || c == nil {
			in.failf(x.Pos(), "dereference of nil or non-pointer %s", formatValue(v))
		}
		return c.get()
	case *ast.SelectorExpr:
		sv := in.structOperand(env, x.X)
		idx := sv.fieldIndex(x.Sel.Name)
		if idx < 0 {
			in.failf(x.Sel.Pos(), "%s has no field %s", sv.typ, x.Sel.Name)
		}
		return sv.fields[idx]
	case *ast.CompositeLit:
		return in.evalComposite(env, x)
	}
	in.failf(e.Pos(), "unsupported expression %T", e)
	return nil
}

func (in *Interp) evalLit(lit *ast.BasicLit) any {
	switch lit.Kind {
	case token.INT:
		// The checker records FloatType when an untyped int literal
		// adopted a float context (f + 1).
		if t := in.info.TypeOf(lit); t != nil && t.Equal(lang.FloatType) {
			f, _ := strconv.ParseFloat(lit.Value, 64)
			return f
		}
		n, err := strconv.ParseInt(lit.Value, 0, 64)
		if err != nil {
			in.failf(lit.Pos(), "bad int literal %s", lit.Value)
		}
		return int(n)
	case token.FLOAT:
		f, err := strconv.ParseFloat(lit.Value, 64)
		if err != nil {
			in.failf(lit.Pos(), "bad float literal %s", lit.Value)
		}
		return f
	case token.STRING:
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			in.failf(lit.Pos(), "bad string literal")
		}
		return s
	}
	in.failf(lit.Pos(), "unsupported literal %s", lit.Kind)
	return nil
}

func (in *Interp) evalBool(env *env, e ast.Expr) bool {
	v := in.eval(env, e)
	b, ok := v.(bool)
	if !ok {
		in.failf(e.Pos(), "condition is %s, not bool", formatValue(v))
	}
	return b
}

func (in *Interp) evalInt(env *env, e ast.Expr) int {
	v := in.eval(env, e)
	i, ok := v.(int)
	if !ok {
		in.failf(e.Pos(), "%s is not an int", formatValue(v))
	}
	return i
}

func (in *Interp) equalValues(a, b any, pos token.Pos) bool {
	switch av := a.(type) {
	case int:
		bv, ok := b.(int)
		return ok && av == bv
	case float64:
		bv, ok := b.(float64)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	default:
		in.failf(pos, "values of type %T are not comparable", a)
		return false
	}
}

func (in *Interp) binop(op token.Token, a, b any, pos token.Pos) any {
	switch av := a.(type) {
	case int:
		bv, ok := b.(int)
		if !ok {
			in.failf(pos, "mixed operands %s and %s", formatValue(a), formatValue(b))
		}
		switch op {
		case token.ADD:
			return av + bv
		case token.SUB:
			return av - bv
		case token.MUL:
			return av * bv
		case token.QUO:
			if bv == 0 {
				in.failf(pos, "integer division by zero")
			}
			return av / bv
		case token.REM:
			if bv == 0 {
				in.failf(pos, "integer modulo by zero")
			}
			return av % bv
		case token.AND:
			return av & bv
		case token.OR:
			return av | bv
		case token.XOR:
			return av ^ bv
		case token.AND_NOT:
			return av &^ bv
		case token.SHL:
			if bv < 0 || bv > 63 {
				in.failf(pos, "shift count %d out of range", bv)
			}
			return av << bv
		case token.SHR:
			if bv < 0 || bv > 63 {
				in.failf(pos, "shift count %d out of range", bv)
			}
			return av >> bv
		case token.EQL:
			return av == bv
		case token.NEQ:
			return av != bv
		case token.LSS:
			return av < bv
		case token.LEQ:
			return av <= bv
		case token.GTR:
			return av > bv
		case token.GEQ:
			return av >= bv
		}
	case float64:
		bv, ok := b.(float64)
		if !ok {
			in.failf(pos, "mixed operands %s and %s", formatValue(a), formatValue(b))
		}
		switch op {
		case token.ADD:
			return av + bv
		case token.SUB:
			return av - bv
		case token.MUL:
			return av * bv
		case token.QUO:
			return av / bv
		case token.EQL:
			return av == bv
		case token.NEQ:
			return av != bv
		case token.LSS:
			return av < bv
		case token.LEQ:
			return av <= bv
		case token.GTR:
			return av > bv
		case token.GEQ:
			return av >= bv
		}
	case string:
		bv, ok := b.(string)
		if !ok {
			in.failf(pos, "mixed operands %s and %s", formatValue(a), formatValue(b))
		}
		switch op {
		case token.ADD:
			return av + bv
		case token.EQL:
			return av == bv
		case token.NEQ:
			return av != bv
		case token.LSS:
			return av < bv
		case token.LEQ:
			return av <= bv
		case token.GTR:
			return av > bv
		case token.GEQ:
			return av >= bv
		}
	case bool:
		bv, ok := b.(bool)
		if !ok {
			in.failf(pos, "mixed operands %s and %s", formatValue(a), formatValue(b))
		}
		switch op {
		case token.EQL:
			return av == bv
		case token.NEQ:
			return av != bv
		}
	}
	in.failf(pos, "operator %s not defined on %s", op, formatValue(a))
	return nil
}

func (in *Interp) evalSlice(env *env, x *ast.SliceExpr) any {
	xv := in.eval(env, x.X)
	lo := 0
	if x.Low != nil {
		lo = in.evalInt(env, x.Low)
	}
	switch v := xv.(type) {
	case []any:
		hi := len(v)
		if x.High != nil {
			hi = in.evalInt(env, x.High)
		}
		if lo < 0 || hi < lo || hi > cap(v) {
			in.failf(x.Pos(), "slice bounds [%d:%d] out of range (len %d cap %d)", lo, hi, len(v), cap(v))
		}
		return v[lo:hi]
	case string:
		hi := len(v)
		if x.High != nil {
			hi = in.evalInt(env, x.High)
		}
		if lo < 0 || hi < lo || hi > len(v) {
			in.failf(x.Pos(), "string bounds [%d:%d] out of range (len %d)", lo, hi, len(v))
		}
		return v[lo:hi]
	default:
		in.failf(x.Pos(), "slice of %s", formatValue(xv))
		return nil
	}
}

func (in *Interp) evalComposite(env *env, x *ast.CompositeLit) any {
	t, err := in.prog.ResolveType(x.Type)
	if err != nil {
		in.failf(x.Pos(), "%v", err)
	}
	switch tt := t.(type) {
	case lang.Slice:
		out := make([]any, 0, len(x.Elts))
		for _, el := range x.Elts {
			out = append(out, copyVal(in.eval(env, el)))
		}
		return out
	case *lang.Struct:
		sv := zeroValue(tt).(*structVal)
		if len(x.Elts) == 0 {
			return sv
		}
		if _, keyed := x.Elts[0].(*ast.KeyValueExpr); keyed {
			for _, el := range x.Elts {
				kv := el.(*ast.KeyValueExpr)
				idx := sv.fieldIndex(kv.Key.(*ast.Ident).Name)
				sv.fields[idx] = copyVal(in.eval(env, kv.Value))
			}
		} else {
			for i, el := range x.Elts {
				sv.fields[i] = copyVal(in.eval(env, el))
			}
		}
		return sv
	}
	in.failf(x.Pos(), "unsupported composite literal")
	return nil
}

func (in *Interp) evalCall(env *env, call *ast.CallExpr) any {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return in.evalMHCall(env, call, fun.Sel.Name)
	case *ast.Ident:
		switch fun.Name {
		case "int":
			switch v := in.eval(env, call.Args[0]).(type) {
			case int:
				return v
			case float64:
				return int(v)
			default:
				in.failf(call.Pos(), "int() of %s", formatValue(v))
			}
		case "float64":
			switch v := in.eval(env, call.Args[0]).(type) {
			case int:
				return float64(v)
			case float64:
				return v
			default:
				in.failf(call.Pos(), "float64() of %s", formatValue(v))
			}
		case "len":
			switch v := in.eval(env, call.Args[0]).(type) {
			case []any:
				return len(v)
			case string:
				return len(v)
			default:
				in.failf(call.Pos(), "len of %s", formatValue(v))
			}
		case "cap":
			switch v := in.eval(env, call.Args[0]).(type) {
			case []any:
				return cap(v)
			default:
				in.failf(call.Pos(), "cap of %s", formatValue(v))
			}
		case "append":
			base := in.eval(env, call.Args[0])
			sl, _ := base.([]any)
			for _, a := range call.Args[1:] {
				sl = append(sl, copyVal(in.eval(env, a)))
			}
			return sl
		case "make":
			n := in.evalInt(env, call.Args[1])
			capN := n
			if len(call.Args) == 3 {
				capN = in.evalInt(env, call.Args[2])
			}
			if n < 0 || capN < n {
				in.failf(call.Pos(), "make with invalid sizes %d, %d", n, capN)
			}
			t, err := in.prog.ResolveType(call.Args[0])
			if err != nil {
				in.failf(call.Pos(), "%v", err)
			}
			elem := t.(lang.Slice).Elem
			out := make([]any, n, capN)
			for i := range out {
				out[i] = zeroValue(elem)
			}
			return out
		default:
			return in.evalUserCall(env, call, fun.Name)
		}
	}
	in.failf(call.Pos(), "unsupported call")
	return nil
}

func (in *Interp) evalUserCall(env *env, call *ast.CallExpr, name string) any {
	args := make([]any, len(call.Args))
	for i, a := range call.Args {
		args[i] = in.eval(env, a)
	}
	results, err := in.call(name, args, call.Pos())
	if err != nil {
		var ie *Error
		if errors.As(err, &ie) {
			panic(ie)
		}
		in.failf(call.Pos(), "%v", err)
	}
	switch len(results) {
	case 0:
		return nil
	case 1:
		return results[0]
	default:
		return tupleVal(results)
	}
}
