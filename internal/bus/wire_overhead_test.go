package bus

import (
	"encoding/json"
	"os"
	"testing"
)

// Wire-path allocation ceilings. A single remote Write is one gob frame
// each way; with the frame structs and encode buffers pooled (tcp.go) the
// whole client+server roundtrip costs ~14 allocations, dominated by gob's
// per-value decode work. A 16-message SendBatch amortizes the frame and
// reply to ~4 allocations per message. The ceilings leave headroom for
// runtime/gob version drift while still catching a lost pool (dropping
// frame pooling costs ~3 allocs/msg, an unpooled encode buffer ~2 more).
const (
	maxWireAllocsPerMsg        = 20.0
	maxBatchedWireAllocsPerMsg = 6.0
	wireBatchSize              = 16
)

// TestWirePathAllocs pins the allocation cost of the TCP transport's write
// path and, when RECONFIG_WIRE_OVERHEAD_JSON is set (scripts/check.sh),
// emits the measured numbers as a benchmark artifact.
func TestWirePathAllocs(t *testing.T) {
	_, s := startServer(t)
	disp := dial(t, s, "display")
	comp := dial(t, s, "compute")
	payload := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	drain := func() {
		t.Helper()
		for {
			if _, ok, err := comp.TryRead("display"); err != nil {
				t.Fatal(err)
			} else if !ok {
				return
			}
		}
	}

	single := testing.AllocsPerRun(2000, func() {
		if err := disp.Write("temper", payload); err != nil {
			t.Fatal(err)
		}
	})
	drain()

	batch := make([][]byte, wireBatchSize)
	for i := range batch {
		batch[i] = payload
	}
	perBatch := testing.AllocsPerRun(200, func() {
		if err := disp.SendBatch("temper", batch); err != nil {
			t.Fatal(err)
		}
	})
	drain()
	batched := perBatch / wireBatchSize

	if single > maxWireAllocsPerMsg {
		t.Errorf("single remote Write = %.1f allocs/msg, ceiling %.0f — a frame or encode-buffer pool is gone",
			single, maxWireAllocsPerMsg)
	}
	if batched > maxBatchedWireAllocsPerMsg {
		t.Errorf("batched remote write = %.2f allocs/msg (batch %d), ceiling %.0f",
			batched, wireBatchSize, maxBatchedWireAllocsPerMsg)
	}
	if batched >= single {
		t.Errorf("batching does not amortize: %.2f allocs/msg batched vs %.1f single", batched, single)
	}
	t.Logf("wire path: single %.1f allocs/msg, batched %.2f allocs/msg (batch %d)",
		single, batched, wireBatchSize)

	out := os.Getenv("RECONFIG_WIRE_OVERHEAD_JSON")
	if out == "" {
		return
	}
	artifact := map[string]any{
		"benchmark": "wire_overhead",
		"workload":  "remote Write / 16-message SendBatch roundtrips, 64-byte payload, client+server allocs",
		"single_write": map[string]any{
			"allocs_per_msg": single, "ceiling": maxWireAllocsPerMsg,
		},
		"batched_write": map[string]any{
			"allocs_per_msg": batched, "batch_size": wireBatchSize, "ceiling": maxBatchedWireAllocsPerMsg,
		},
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
