package bus

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// This file adds *replica groups* to the routing layer: a group is a
// logical, bindable name whose receiving interfaces fan in to N live member
// instances, load-balanced per message by a pluggable policy. The member
// set is part of the copy-on-write routing table, so a membership change is
// one successor-snapshot publish — atomic under racing senders and
// epoch-fenced exactly like a rebind. That is what makes crash recovery
// lossless: marking a dead member out fences its queues at the outgoing
// epoch, so a sender that resolved the old member set is refused at the
// queue and retries against the successor, while the already-queued
// messages are drained and redistributed to the survivors.

// Load-balancing policies. PolicyRoundRobin rotates deliveries across the
// members; PolicyLeastQueue routes each message to the member with the
// shallowest receive queue. The strings match the MIL "policy" keyword.
const (
	PolicyRoundRobin = "roundrobin"
	PolicyLeastQueue = "leastqueue"
)

// replicaGroup is the persistent identity of a group, shared across routing
// snapshots the way instance objects are: the name, interface shape and
// policy are immutable after AddGroup, and the round-robin cursor is an
// atomic so the lock-free delivery path can advance it.
type replicaGroup struct {
	name   string
	policy string
	ifaces []IfaceSpec
	rr     atomic.Uint64
}

// groupEntry is a group's membership inside one routing snapshot. Entries
// are immutable after build; membership edits copy-on-write a successor
// entry into the draft.
type groupEntry struct {
	g       *replicaGroup
	members []string // sorted
}

// with returns a copy of the entry with a member added.
func (ge *groupEntry) with(member string) *groupEntry {
	members := make([]string, 0, len(ge.members)+1)
	members = append(members, ge.members...)
	members = append(members, member)
	sort.Strings(members)
	return &groupEntry{g: ge.g, members: members}
}

// without returns a copy of the entry with a member removed.
func (ge *groupEntry) without(member string) *groupEntry {
	members := make([]string, 0, len(ge.members))
	for _, m := range ge.members {
		if m != member {
			members = append(members, m)
		}
	}
	return &groupEntry{g: ge.g, members: members}
}

func (ge *groupEntry) has(member string) bool {
	for _, m := range ge.members {
		if m == member {
			return true
		}
	}
	return false
}

// groupRoute is the precomputed delivery fan-in of one receiving group
// endpoint in one snapshot: the live members' interface entries, resolved
// at build time so the hot path does no map lookups. All route sets bound
// to the same group endpoint share one groupRoute.
type groupRoute struct {
	g       *replicaGroup
	iface   string
	members []*iface
}

// deliverGroup picks one live member by the group's policy and pushes the
// message to its queue. A stale fence surfaces as errStaleRoute so the
// caller retries through writeSlow against the successor snapshot (the
// member set may have changed); a closed member queue is skipped in favor
// of the next member. With no deliverable member the message is dropped
// like a write to a deleted instance, and ErrQueueClosed reports it.
//
//archlint:hotpath
func (b *Bus) deliverGroup(gr *groupRoute, msg Message, version uint64) error {
	n := len(gr.members)
	if n == 0 {
		return ErrQueueClosed
	}
	var start int
	if gr.g.policy == PolicyLeastQueue {
		bestLen := -1
		for i := 0; i < n; i++ {
			l := gr.members[i].queue.length()
			if bestLen == -1 || l < bestLen {
				start, bestLen = i, l
			}
		}
	} else {
		start = int((gr.g.rr.Add(1) - 1) % uint64(n))
	}
	for k := 0; k < n; k++ {
		m := gr.members[(start+k)%n]
		switch err := m.queue.pushRouted(msg, version); err {
		case nil:
			m.delivered.Inc()
			return nil
		case errStaleRoute:
			return errStaleRoute
		default: // closed: try the next member
		}
	}
	return ErrQueueClosed
}

// deliverGroupLocked is deliverGroup for the slow path: the caller holds
// b.mu, so no membership change can fence a queue concurrently and a plain
// push suffices. version is the snapshot the caller re-resolved against,
// recorded as the delivery epoch.
func (b *Bus) deliverGroupLocked(gr *groupRoute, msg Message, version uint64) error {
	n := len(gr.members)
	if n == 0 {
		return ErrQueueClosed
	}
	var start int
	if gr.g.policy == PolicyLeastQueue {
		bestLen := -1
		for i := 0; i < n; i++ {
			l := gr.members[i].queue.length()
			if bestLen == -1 || l < bestLen {
				start, bestLen = i, l
			}
		}
	} else {
		start = int((gr.g.rr.Add(1) - 1) % uint64(n))
	}
	for k := 0; k < n; k++ {
		m := gr.members[(start+k)%n]
		if m.queue.push(msg, version) == nil {
			m.delivered.Inc()
			return nil
		}
	}
	return ErrQueueClosed
}

// AddGroup registers a replica group: a logical name bindings may target,
// whose receiving interfaces load-balance across the group's members under
// the given policy ("" defaults to round-robin). The group starts empty;
// AddGroupMember admits instances whose interface sets match ifaces.
func (b *Bus) AddGroup(name, policy string, ifaces []IfaceSpec) error {
	if name == "" {
		return fmt.Errorf("bus: group with empty name")
	}
	switch policy {
	case "":
		policy = PolicyRoundRobin
	case PolicyRoundRobin, PolicyLeastQueue:
	default:
		return fmt.Errorf("bus: group %s: unknown policy %q", name, policy)
	}
	g := &replicaGroup{name: name, policy: policy, ifaces: append([]IfaceSpec(nil), ifaces...)}
	return b.edit(func(d *topologyDraft) error {
		if _, dup := d.instances[name]; dup {
			return fmt.Errorf("%w: %s names an instance", ErrDupInstance, name)
		}
		if _, dup := d.groups[name]; dup {
			return fmt.Errorf("%w: group %s", ErrDupInstance, name)
		}
		d.groups[name] = &groupEntry{g: g}
		d.events = append(d.events, Event{Kind: EventAddGroup, Instance: name, Detail: "policy " + policy})
		return nil
	})
}

// AddGroupMember admits an existing instance into a group. The instance
// must declare every group interface with the same direction. The join is
// one copy-on-write snapshot publish: senders racing it keep delivering to
// the old member set until the successor is visible.
func (b *Bus) AddGroupMember(group, member string) error {
	return b.edit(func(d *topologyDraft) error {
		ge, ok := d.groups[group]
		if !ok {
			return fmt.Errorf("%w: group %s", ErrNoInstance, group)
		}
		in, ok := d.instances[member]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoInstance, member)
		}
		for _, is := range ge.g.ifaces {
			ifc, ok := in.ifaces[is.Name]
			if !ok || ifc.spec.Dir != is.Dir {
				return fmt.Errorf("bus: group %s: member %s does not declare interface %s %s",
					group, member, is.Name, is.Dir)
			}
		}
		if ge.has(member) {
			return fmt.Errorf("bus: group %s already has member %s", group, member)
		}
		d.groups[group] = ge.with(member)
		d.events = append(d.events, Event{Kind: EventJoinGroup, Instance: member, Detail: "group " + group})
		return nil
	})
}

// GroupMembers returns the current live members of a group, sorted.
func (b *Bus) GroupMembers(name string) ([]string, error) {
	ge, ok := b.routing.Load().groups[name]
	if !ok {
		return nil, fmt.Errorf("%w: group %s", ErrNoInstance, name)
	}
	return append([]string(nil), ge.members...), nil
}

// GroupInfo describes one replica group in a routing snapshot.
type GroupInfo struct {
	Name    string      `json:"name"`
	Policy  string      `json:"policy"`
	Members []string    `json:"members"`
	Ifaces  []IfaceSpec `json:"-"`
}

// Groups returns the snapshot's replica groups, sorted by name.
func (v RoutingView) Groups() []GroupInfo {
	out := make([]GroupInfo, 0, len(v.t.groups))
	for name, ge := range v.t.groups {
		out = append(out, GroupInfo{
			Name:    name,
			Policy:  ge.g.policy,
			Members: append([]string(nil), ge.members...),
			Ifaces:  append([]IfaceSpec(nil), ge.g.ifaces...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
