package bus

import (
	"fmt"
	"sync"
	"time"
)

// EventKind enumerates observable bus events.
type EventKind int

// Bus events, in rough lifecycle order.
const (
	EventAddInstance EventKind = iota + 1
	EventDeleteInstance
	EventAddBinding
	EventDeleteBinding
	EventRebind
	EventMoveQueue
	EventDrainQueue
	EventSignal
	EventDivulge
	EventInstallState
	EventMoveState
	EventRestoreAck
	EventRelaunch
)

var eventNames = map[EventKind]string{
	EventAddInstance:    "add-instance",
	EventDeleteInstance: "delete-instance",
	EventAddBinding:     "add-binding",
	EventDeleteBinding:  "delete-binding",
	EventRebind:         "rebind",
	EventMoveQueue:      "move-queue",
	EventDrainQueue:     "drain-queue",
	EventSignal:         "signal",
	EventDivulge:        "divulge",
	EventInstallState:   "install-state",
	EventMoveState:      "move-state",
	EventRestoreAck:     "restore-ack",
	EventRelaunch:       "relaunch",
}

// String names the event kind.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one observable bus action.
type Event struct {
	Time     time.Time
	Kind     EventKind
	Instance string
	Detail   string
}

// String renders "kind instance detail".
func (e Event) String() string {
	s := e.Kind.String()
	if e.Instance != "" {
		s += " " + e.Instance
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Recorder collects bus events, for golden tests and the reconfiguration
// audit trail.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder; attach it with bus.Observe(r.Record).
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends an event (the Observe callback).
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Strings returns the recorded events rendered without timestamps.
func (r *Recorder) Strings() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.events))
	for i, e := range r.events {
		out[i] = e.String()
	}
	return out
}

// Reset discards recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}
