package bus

import (
	"fmt"
	"sync"
	"time"
)

// EventKind enumerates observable bus events.
type EventKind int

// Bus events, in rough lifecycle order.
const (
	EventAddInstance EventKind = iota + 1
	EventDeleteInstance
	EventAddBinding
	EventDeleteBinding
	EventRebind
	EventMoveQueue
	EventDrainQueue
	EventSignal
	EventDivulge
	EventInstallState
	EventMoveState
	EventRestoreAck
	EventRelaunch
	EventAddGroup
	EventJoinGroup
	EventLeaveGroup

	// numEventKinds bounds the enum for exhaustiveness tests; keep it last.
	numEventKinds
)

var eventNames = map[EventKind]string{
	EventAddInstance:    "add-instance",
	EventDeleteInstance: "delete-instance",
	EventAddBinding:     "add-binding",
	EventDeleteBinding:  "delete-binding",
	EventRebind:         "rebind",
	EventMoveQueue:      "move-queue",
	EventDrainQueue:     "drain-queue",
	EventSignal:         "signal",
	EventDivulge:        "divulge",
	EventInstallState:   "install-state",
	EventMoveState:      "move-state",
	EventRestoreAck:     "restore-ack",
	EventRelaunch:       "relaunch",
	EventAddGroup:       "add-group",
	EventJoinGroup:      "join-group",
	EventLeaveGroup:     "leave-group",
}

// String names the event kind.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one observable bus action. TraceIDs carries the distinct trace
// IDs of the messages a queue transfer (cq/rmq) touched, so the event log
// and the flight recorder correlate on the same identifiers; it is kept out
// of String() to leave the rendered audit trail stable.
type Event struct {
	Time     time.Time
	Kind     EventKind
	Instance string
	Detail   string
	TraceIDs []uint64
}

// String renders "kind instance detail".
func (e Event) String() string {
	s := e.Kind.String()
	if e.Instance != "" {
		s += " " + e.Instance
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// observerQueue is one observer's mailbox. Emitters append under the queue
// lock and return; a drain goroutine is spawned on demand and exits when the
// mailbox empties, so a slow observer delays only its own deliveries and an
// idle bus holds no goroutines. Events are delivered in emission order.
type observerQueue struct {
	fn      func(Event)
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Event
	active  bool // a drain goroutine is running
}

func newObserverQueue(fn func(Event)) *observerQueue {
	o := &observerQueue{fn: fn}
	o.cond = sync.NewCond(&o.mu)
	return o
}

func (o *observerQueue) enqueue(e Event) {
	o.mu.Lock()
	o.pending = append(o.pending, e)
	if !o.active {
		o.active = true
		go o.drain() //archlint:spawn observer drain; exits when the queue empties or closes
	}
	o.mu.Unlock()
}

func (o *observerQueue) drain() {
	for {
		o.mu.Lock()
		if len(o.pending) == 0 {
			o.active = false
			o.cond.Broadcast()
			o.mu.Unlock()
			return
		}
		e := o.pending[0]
		o.pending = o.pending[1:]
		o.mu.Unlock()
		o.fn(e) // outside the lock: the callback may be arbitrarily slow
	}
}

// sync blocks until the mailbox is empty and the drain goroutine has parked.
func (o *observerQueue) sync() {
	o.mu.Lock()
	for o.active {
		o.cond.Wait()
	}
	o.mu.Unlock()
}

// Recorder collects bus events, for golden tests and the reconfiguration
// audit trail.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder; attach it with bus.Observe(r.Record).
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends an event (the Observe callback).
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Strings returns the recorded events rendered without timestamps.
func (r *Recorder) Strings() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.events))
	for i, e := range r.events {
		out[i] = e.String()
	}
	return out
}

// Reset discards recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}
