package bus

// Recording tests: the bus appends every consumed message to the record
// ring from the destination queue's consumer drain (pop/tryPop), where
// slot-claim order is delivery order, so the recorded per-queue sequence is
// the queue's true delivery order. These tests pin that invariant plus the
// payload-fidelity and epoch-stamping properties the replay subsystem
// depends on.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/replay"
)

func recordedBus(t *testing.T, capacity int) (*Bus, *replay.Log) {
	t.Helper()
	log := replay.NewLog(capacity)
	log.Enable()
	b := New(WithRecorder(log))
	for _, spec := range []InstanceSpec{
		{Name: "src", Module: "srcmod", Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}},
		{Name: "dst", Module: "dstmod", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}},
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddBinding(Endpoint{"src", "out"}, Endpoint{"dst", "in"}); err != nil {
		t.Fatal(err)
	}
	return b, log
}

// TestRecordMatchesDeliveryOrder sends from concurrent writers and asserts
// the recorded QSeq order is exactly the order the receiver reads — the
// core guarantee of recording under the queue lock.
func TestRecordMatchesDeliveryOrder(t *testing.T) {
	b, log := recordedBus(t, 4096)
	src := attach(t, b, "src")
	dst := attach(t, b, "dst")

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) { //archlint:spawn test writer; joined via wg below
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := src.Write("out", []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var read []string
	for i := 0; i < writers*perWriter; i++ {
		m, err := dst.Read("in")
		if err != nil {
			t.Fatal(err)
		}
		read = append(read, string(m.Data))
	}

	recs := replay.InputsTo(log.Snapshot(), "dst")
	if len(recs) != len(read) {
		t.Fatalf("recorded %d deliveries, read %d", len(recs), len(read))
	}
	for i, r := range recs {
		if r.QSeq != uint64(i+1) {
			t.Fatalf("record %d: qseq=%d, want gapless %d", i, r.QSeq, i+1)
		}
		if string(r.Data) != read[i] {
			t.Fatalf("record %d: recorded %q, receiver read %q — recorded order diverges from delivery order",
				i, r.Data, read[i])
		}
		if r.From != "src.out" || r.To != "dst.in" {
			t.Errorf("record %d endpoints: %s -> %s", i, r.From, r.To)
		}
	}
}

// TestRecordPayloadAndEpoch pins payload byte-fidelity, the routing-epoch
// stamp, and the trace context carried on each record.
func TestRecordPayloadAndEpoch(t *testing.T) {
	b, log := recordedBus(t, 64)
	src := attach(t, b, "src")
	dst := attach(t, b, "dst")

	payload := []byte{0x00, 0xFF, 0x7F, 'g', 'o', 'b'}
	if err := src.Write("out", payload); err != nil {
		t.Fatal(err)
	}
	m, err := dst.Read("in")
	if err != nil {
		t.Fatal(err)
	}
	recs := log.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("recorded %d, want 1", len(recs))
	}
	r := recs[0]
	if string(r.Data) != string(m.Data) || string(r.Data) != string(payload) {
		t.Errorf("recorded payload %x, delivered %x, sent %x", r.Data, m.Data, payload)
	}
	if r.Epoch != b.Stats().SnapshotVersion {
		t.Errorf("recorded epoch %d, routing snapshot version %d", r.Epoch, b.Stats().SnapshotVersion)
	}
	if r.Trace != m.Trace {
		t.Errorf("recorded trace %+v, delivered trace %+v", r.Trace, m.Trace)
	}
	if !r.Trace.Valid() {
		t.Error("bus did not stamp a trace context on the recorded delivery")
	}
}

// TestRecordDisabledAndNil: a disabled log records nothing; a bus without
// a recorder delivers normally.
func TestRecordDisabledAndNil(t *testing.T) {
	b, log := recordedBus(t, 64)
	src := attach(t, b, "src")
	dst := attach(t, b, "dst")
	log.Disable()
	if err := src.Write("out", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Read("in"); err != nil {
		t.Fatal(err)
	}
	if log.Recorded() != 0 {
		t.Errorf("disabled log recorded %d", log.Recorded())
	}
	log.Enable()
	if err := src.Write("out", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if log.Recorded() != 0 {
		t.Errorf("log recorded %d undelivered messages", log.Recorded())
	}
	if _, err := dst.Read("in"); err != nil {
		t.Fatal(err)
	}
	if log.Recorded() != 1 {
		t.Errorf("re-enabled log recorded %d, want 1", log.Recorded())
	}

	// No recorder configured: Recorder() is nil and delivery works.
	plain := testBus(t)
	if plain.Recorder() != nil {
		t.Error("unconfigured bus reports a recorder")
	}
	s := attach(t, plain, "sensor")
	c := attach(t, plain, "compute")
	if err := s.Write("out", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("sensor"); err != nil {
		t.Fatal(err)
	}
}

// TestRecordGroupDeliveries: fan-in to a replica group records each
// consumed delivery against the member queue that actually served it, and
// the redistributed backlog of a removed member is recorded — once, at the
// survivor that eventually consumes it, never at the abandoned member.
func TestRecordGroupDeliveries(t *testing.T) {
	log := replay.NewLog(4096)
	log.Enable()
	b := New(WithRecorder(log))
	shape := []IfaceSpec{{Name: "in", Dir: In}, {Name: "out", Dir: Out}}
	if err := b.AddGroup("pool", PolicyRoundRobin, shape); err != nil {
		t.Fatal(err)
	}
	members := []string{"pool.1", "pool.2"}
	for _, m := range members {
		if err := b.AddInstance(InstanceSpec{Name: m, Interfaces: shape}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddGroupMember("pool", m); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddInstance(InstanceSpec{Name: "feeder", Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(Endpoint{"feeder", "out"}, Endpoint{"pool", "in"}); err != nil {
		t.Fatal(err)
	}
	feeder := attach(t, b, "feeder")
	m1 := attach(t, b, "pool.1")
	m2 := attach(t, b, "pool.2")
	const n = 10
	for i := 0; i < n; i++ {
		if err := feeder.Write("out", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Round robin splits the fan-in evenly; consume each member's share so
	// the consumer-side hook records it.
	for i := 0; i < n/2; i++ {
		if _, err := m1.Read("in"); err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Read("in"); err != nil {
			t.Fatal(err)
		}
	}
	perMember := map[string]int{}
	for _, r := range log.Snapshot() {
		perMember[r.To]++
	}
	if perMember["pool.1.in"]+perMember["pool.2.in"] != n {
		t.Errorf("group deliveries recorded = %+v, want %d total", perMember, n)
	}
	if perMember["pool.1.in"] == 0 || perMember["pool.2.in"] == 0 {
		t.Errorf("roundrobin fan-in not visible in records: %+v", perMember)
	}

	// Queue a backlog on both members, then remove pool.2: its unconsumed
	// messages redistribute to the survivor and are recorded when the
	// survivor consumes them — exactly once each, against pool.1.
	const backlog = 4
	for i := 0; i < backlog; i++ {
		if err := feeder.Write("out", []byte{byte(n + i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := len(replay.InputsTo(log.Snapshot(), "pool.1"))
	if err := b.RemoveGroupMember("pool", "pool.2"); err != nil {
		t.Fatal(err)
	}
	if got := len(replay.InputsTo(log.Snapshot(), "pool.1")); got != before {
		t.Errorf("redistribution alone recorded %d deliveries before consumption", got-before)
	}
	for i := 0; i < backlog; i++ {
		if _, err := m1.Read("in"); err != nil {
			t.Fatal(err)
		}
	}
	after := len(replay.InputsTo(log.Snapshot(), "pool.1"))
	if after-before != backlog {
		t.Errorf("survivor recorded %d redistributed deliveries, want %d", after-before, backlog)
	}
	if got := len(replay.InputsTo(log.Snapshot(), "pool.2")); got != n/2 {
		t.Errorf("removed member records grew after removal: %d, want %d", got, n/2)
	}
}
