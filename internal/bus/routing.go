package bus

import (
	"errors"
	"fmt"
	"sort"
)

// This file is the *routing* layer of the bus — the first of the three
// layers the package decomposes into:
//
//	routing   (this file)  — who talks to whom: instances, interfaces and
//	                         bindings held in an immutable snapshot
//	                         (routingTable) behind an atomic pointer. The
//	                         data plane reads it lock-free; every topology
//	                         change builds and publishes a successor
//	                         copy-on-write.
//	queueing  (queue.go)   — per-endpoint message FIFOs owned by the
//	                         snapshot entries, each with its own small
//	                         lock; the only lock a steady-state message
//	                         ever takes.
//	transport (attach.go,  — how module runtimes reach the bus: in-process
//	           tcp.go)       attachments and the TCP wire protocol, both
//	                         consulting the snapshot, never the writer
//	                         lock.
//
// The split realizes the paper's cost model at the substrate level: the
// steady-state Send/Deliver path pays one atomic load plus one per-queue
// lock, while reconfiguration — the rare writer — pays the full snapshot
// rebuild under Bus.mu. Rolling a failed topology edit back is installing
// a prior snapshot (with a fresh epoch).

// errStaleRoute reports a routed push that resolved its target from a
// snapshot that a topology change has since invalidated for that queue.
// The writer retries against the current snapshot (write → writeSlow); the
// sentinel never escapes the package.
var errStaleRoute = errors.New("bus: route resolved from a stale snapshot")

// routeSet is the precomputed delivery fan-out of one sending endpoint.
type routeSet struct {
	src     *iface
	targets []*iface
}

// routingTable is one immutable topology snapshot. Everything reachable
// from it is either itself immutable (the maps and slices, an instance's
// interface set) or owns its own fine-grained lock (message queues, the
// per-instance runtime state). A table is never mutated after publish;
// version increases by exactly one per published successor.
type routingTable struct {
	version   uint64
	instances map[string]*instance
	bindings  []Binding

	// routes maps every *sending* endpoint to its delivery targets,
	// precomputed at build time so the hot path does no binding scan and
	// allocates nothing.
	routes map[Endpoint]routeSet
}

// lookup resolves an endpoint to its interface entry.
func (t *routingTable) lookup(e Endpoint) (*iface, error) {
	in, ok := t.instances[e.Instance]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, e.Instance)
	}
	ifc, ok := in.ifaces[e.Interface]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInterface, e)
	}
	return ifc, nil
}

// route returns the delivery target when a message written on from is
// carried by the binding bd: the opposite endpoint, if it receives.
func (t *routingTable) route(bd Binding, from Endpoint) (Endpoint, bool) {
	var other Endpoint
	switch from {
	case bd.A:
		other = bd.B
	case bd.B:
		other = bd.A
	default:
		return Endpoint{}, false
	}
	ifc, err := t.lookup(other)
	if err != nil || !ifc.spec.Dir.Receives() {
		return Endpoint{}, false
	}
	return other, true
}

// draft opens a mutable working copy of the table for the editor. Instance
// objects are shared (their interface sets are immutable and their runtime
// state is independently locked); only the topology containers are copied.
func (t *routingTable) draft() *topologyDraft {
	insts := make(map[string]*instance, len(t.instances))
	for name, in := range t.instances {
		insts[name] = in
	}
	binds := make([]Binding, len(t.bindings))
	copy(binds, t.bindings)
	return &topologyDraft{instances: insts, bindings: binds}
}

// topologyDraft is the editor's mutable view between a draft() and a
// build(). It exists only while the writer lock is held and is discarded
// whole on any validation failure, which is what makes multi-edit
// operations (Rebind) atomic: either the built successor is published or
// the previous snapshot simply remains current.
type topologyDraft struct {
	instances map[string]*instance
	bindings  []Binding

	// events collects the observer events the edits correspond to; the
	// caller emits them only after the successor snapshot is published, so
	// a failed edit leaves no phantom trail.
	events []Event
}

// build freezes the draft into a published-ready snapshot, precomputing
// the route sets.
func (d *topologyDraft) build(version uint64) *routingTable {
	t := &routingTable{
		version:   version,
		instances: d.instances,
		bindings:  d.bindings,
		routes:    make(map[Endpoint]routeSet),
	}
	for name, in := range d.instances {
		for ifName, ifc := range in.ifaces {
			if !ifc.spec.Dir.Sends() {
				continue
			}
			from := Endpoint{Instance: name, Interface: ifName}
			rs := routeSet{src: ifc}
			for _, bd := range t.bindings {
				if other, ok := t.route(bd, from); ok {
					tgt, _ := t.lookup(other)
					rs.targets = append(rs.targets, tgt)
				}
			}
			t.routes[from] = rs
		}
	}
	return t
}

func (d *topologyDraft) lookup(e Endpoint) (*iface, error) {
	in, ok := d.instances[e.Instance]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, e.Instance)
	}
	ifc, ok := in.ifaces[e.Interface]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInterface, e)
	}
	return ifc, nil
}

// addBinding validates and appends a binding, recording the event.
func (d *topologyDraft) addBinding(a, c Endpoint) error {
	ia, err := d.lookup(a)
	if err != nil {
		return err
	}
	ic, err := d.lookup(c)
	if err != nil {
		return err
	}
	if !(ia.spec.Dir.Sends() && ic.spec.Dir.Receives()) && !(ic.spec.Dir.Sends() && ia.spec.Dir.Receives()) {
		return fmt.Errorf("%w: %s (%s) <-> %s (%s)", ErrDirection, a, ia.spec.Dir, c, ic.spec.Dir)
	}
	for _, bd := range d.bindings {
		if (bd.A == a && bd.B == c) || (bd.A == c && bd.B == a) {
			return fmt.Errorf("bus: binding %s <-> %s already exists", a, c)
		}
	}
	d.bindings = append(d.bindings, Binding{A: a, B: c})
	d.events = append(d.events, Event{Kind: EventAddBinding, Detail: a.String() + " <-> " + c.String()})
	return nil
}

// deleteBinding removes the binding between two endpoints (in either
// orientation), recording the event.
func (d *topologyDraft) deleteBinding(a, c Endpoint) error {
	for i, bd := range d.bindings {
		if (bd.A == a && bd.B == c) || (bd.A == c && bd.B == a) {
			d.bindings = append(d.bindings[:i], d.bindings[i+1:]...)
			d.events = append(d.events, Event{Kind: EventDeleteBinding, Detail: a.String() + " <-> " + c.String()})
			return nil
		}
	}
	return fmt.Errorf("%w: %s <-> %s", ErrNoBinding, a, c)
}

// RoutingView is the narrow read-only surface of the routing layer: an
// immutable, point-in-time view of the topology. A view never changes
// after it is taken — two calls to Bus.Routing() around a reconfiguration
// observe distinct versions — so callers can correlate observations with
// snapshot epochs (the control plane's stats report the live version as
// snapshot_version).
type RoutingView struct {
	t *routingTable
}

// Version returns the snapshot's epoch. It increases by one for every
// published topology change, including the fresh-epoch republish a failed
// Rebind uses to install the prior topology.
func (v RoutingView) Version() uint64 { return v.t.version }

// Instances returns the sorted names of the snapshot's instances.
func (v RoutingView) Instances() []string {
	names := make([]string, 0, len(v.t.instances))
	for n := range v.t.instances {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bindings returns the snapshot's bindings, deterministically sorted by
// endpoint pair.
func (v RoutingView) Bindings() []Binding {
	out := make([]Binding, len(v.t.bindings))
	copy(out, v.t.bindings)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A.String() != out[j].A.String() {
			return out[i].A.String() < out[j].A.String()
		}
		return out[i].B.String() < out[j].B.String()
	})
	return out
}

// Targets returns the endpoints a message written on e would be delivered
// to under this snapshot (the precomputed fan-out the data plane uses).
func (v RoutingView) Targets(e Endpoint) []Endpoint {
	var out []Endpoint
	for _, bd := range v.t.bindings {
		if other, ok := v.t.route(bd, e); ok {
			out = append(out, other)
		}
	}
	return out
}

// Routing returns the current topology snapshot. The view is immutable;
// reload it to observe later reconfigurations.
func (b *Bus) Routing() RoutingView { return RoutingView{t: b.routing.Load()} }
