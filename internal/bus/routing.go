package bus

import (
	"errors"
	"fmt"
	"sort"
)

// This file is the *routing* layer of the bus — the first of the three
// layers the package decomposes into:
//
//	routing   (this file)  — who talks to whom: instances, interfaces and
//	                         bindings held in an immutable snapshot
//	                         (routingTable) behind an atomic pointer. The
//	                         data plane reads it lock-free; every topology
//	                         change builds and publishes a successor
//	                         copy-on-write.
//	queueing  (queue.go)   — per-endpoint message FIFOs owned by the
//	                         snapshot entries, each with its own small
//	                         lock; the only lock a steady-state message
//	                         ever takes.
//	transport (attach.go,  — how module runtimes reach the bus: in-process
//	           tcp.go)       attachments and the TCP wire protocol, both
//	                         consulting the snapshot, never the writer
//	                         lock.
//
// The split realizes the paper's cost model at the substrate level: the
// steady-state Send/Deliver path pays one atomic load plus one per-queue
// lock, while reconfiguration — the rare writer — pays the full snapshot
// rebuild under Bus.mu. Rolling a failed topology edit back is installing
// a prior snapshot (with a fresh epoch).

// errStaleRoute reports a routed push that resolved its target from a
// snapshot that a topology change has since invalidated for that queue.
// The writer retries against the current snapshot (write → writeSlow); the
// sentinel never escapes the package.
var errStaleRoute = errors.New("bus: route resolved from a stale snapshot")

// target is one delivery destination in a precomputed route set: either a
// single receiving interface or a replica group the bus load-balances over.
// Exactly one field is non-nil.
type target struct {
	ifc   *iface
	group *groupRoute
}

// sameTarget reports whether two targets denote the same destination across
// snapshots: interface entries are shared between snapshots, and group
// targets compare by the persistent group identity plus interface name
// (their groupRoute entries are rebuilt per snapshot).
func sameTarget(a, c target) bool {
	if a.ifc != nil || c.ifc != nil {
		return a.ifc == c.ifc
	}
	return a.group.g == c.group.g && a.group.iface == c.group.iface
}

// routeSet is the precomputed delivery fan-out of one sending endpoint.
type routeSet struct {
	src     *iface
	targets []target
}

// routingTable is one immutable topology snapshot. Everything reachable
// from it is either itself immutable (the maps and slices, an instance's
// interface set, a group's membership entry) or owns its own fine-grained
// lock (message queues, the per-instance runtime state). A table is never
// mutated after publish; version increases by exactly one per published
// successor.
type routingTable struct {
	version   uint64
	instances map[string]*instance
	groups    map[string]*groupEntry
	bindings  []Binding

	// routes maps every *sending* endpoint to its delivery targets,
	// precomputed at build time so the hot path does no binding scan and
	// allocates nothing.
	routes map[Endpoint]routeSet
}

// lookup resolves an endpoint to its interface entry.
func (t *routingTable) lookup(e Endpoint) (*iface, error) {
	in, ok := t.instances[e.Instance]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, e.Instance)
	}
	ifc, ok := in.ifaces[e.Interface]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInterface, e)
	}
	return ifc, nil
}

// opposite returns the far side of a binding relative to from, without
// judging whether it can receive.
func opposite(bd Binding, from Endpoint) (Endpoint, bool) {
	switch from {
	case bd.A:
		return bd.B, true
	case bd.B:
		return bd.A, true
	default:
		return Endpoint{}, false
	}
}

// receives reports whether an endpoint can consume messages: an instance
// interface with a receiving direction, or a receiving group interface.
func (t *routingTable) receives(e Endpoint) bool {
	if ge, ok := t.groups[e.Instance]; ok {
		for _, is := range ge.g.ifaces {
			if is.Name == e.Interface {
				return is.Dir.Receives()
			}
		}
		return false
	}
	ifc, err := t.lookup(e)
	return err == nil && ifc.spec.Dir.Receives()
}

// route returns the delivery target when a message written on from is
// carried by the binding bd: the opposite endpoint, if it receives.
func (t *routingTable) route(bd Binding, from Endpoint) (Endpoint, bool) {
	other, ok := opposite(bd, from)
	if !ok || !t.receives(other) {
		return Endpoint{}, false
	}
	return other, true
}

// draft opens a mutable working copy of the table for the editor. Instance
// objects and group entries are shared (their interface sets and member
// lists are immutable; a membership edit replaces the entry); only the
// topology containers are copied.
func (t *routingTable) draft() *topologyDraft {
	insts := make(map[string]*instance, len(t.instances))
	for name, in := range t.instances {
		insts[name] = in
	}
	groups := make(map[string]*groupEntry, len(t.groups))
	for name, ge := range t.groups {
		groups[name] = ge
	}
	binds := make([]Binding, len(t.bindings))
	copy(binds, t.bindings)
	return &topologyDraft{instances: insts, groups: groups, bindings: binds}
}

// topologyDraft is the editor's mutable view between a draft() and a
// build(). It exists only while the writer lock is held and is discarded
// whole on any validation failure, which is what makes multi-edit
// operations (Rebind) atomic: either the built successor is published or
// the previous snapshot simply remains current.
type topologyDraft struct {
	instances map[string]*instance
	groups    map[string]*groupEntry
	bindings  []Binding

	// events collects the observer events the edits correspond to; the
	// caller emits them only after the successor snapshot is published, so
	// a failed edit leaves no phantom trail.
	events []Event
}

// build freezes the draft into a published-ready snapshot, precomputing
// the route sets. Group endpoints resolve to shared groupRoute entries so
// every sender bound to the same group sees one coherent member list; a
// group member additionally inherits the bindings of its group endpoint,
// which is what routes a member's replies back along a binding that names
// the group.
func (d *topologyDraft) build(version uint64) *routingTable {
	t := &routingTable{
		version:   version,
		instances: d.instances,
		groups:    d.groups,
		bindings:  d.bindings,
		routes:    make(map[Endpoint]routeSet),
	}
	groupRoutes := map[Endpoint]*groupRoute{}
	for gname, ge := range t.groups {
		for _, is := range ge.g.ifaces {
			if !is.Dir.Receives() {
				continue
			}
			gr := &groupRoute{g: ge.g, iface: is.Name}
			for _, m := range ge.members {
				if in, ok := t.instances[m]; ok {
					if ifc, ok := in.ifaces[is.Name]; ok && ifc.queue != nil {
						gr.members = append(gr.members, ifc)
					}
				}
			}
			groupRoutes[Endpoint{Instance: gname, Interface: is.Name}] = gr
		}
	}
	memberOf := map[string]string{}
	for gname, ge := range t.groups {
		for _, m := range ge.members {
			memberOf[m] = gname
		}
	}
	for name, in := range d.instances {
		for ifName, ifc := range in.ifaces {
			if !ifc.spec.Dir.Sends() {
				continue
			}
			from := Endpoint{Instance: name, Interface: ifName}
			rs := routeSet{src: ifc}
			addFor := func(match Endpoint) {
				for _, bd := range t.bindings {
					other, ok := opposite(bd, match)
					if !ok {
						continue
					}
					if gr, isGroup := groupRoutes[other]; isGroup {
						rs.targets = append(rs.targets, target{group: gr})
						continue
					}
					if tgt, err := t.lookup(other); err == nil && tgt.spec.Dir.Receives() {
						rs.targets = append(rs.targets, target{ifc: tgt})
					}
				}
			}
			addFor(from)
			if g, ok := memberOf[name]; ok {
				addFor(Endpoint{Instance: g, Interface: ifName})
			}
			t.routes[from] = rs
		}
	}
	return t
}

func (d *topologyDraft) lookup(e Endpoint) (*iface, error) {
	in, ok := d.instances[e.Instance]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, e.Instance)
	}
	ifc, ok := in.ifaces[e.Interface]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInterface, e)
	}
	return ifc, nil
}

// endpointDir resolves the direction of a binding endpoint, which may name
// an instance interface or a group interface.
func (d *topologyDraft) endpointDir(e Endpoint) (Direction, bool, error) {
	if ge, ok := d.groups[e.Instance]; ok {
		for _, is := range ge.g.ifaces {
			if is.Name == e.Interface {
				return is.Dir, true, nil
			}
		}
		return 0, true, fmt.Errorf("%w: %s", ErrNoInterface, e)
	}
	ifc, err := d.lookup(e)
	if err != nil {
		return 0, false, err
	}
	return ifc.spec.Dir, false, nil
}

// addBinding validates and appends a binding, recording the event. Either
// side may name a replica group, but not both: group-to-group bindings have
// no sending identity to load-balance from.
func (d *topologyDraft) addBinding(a, c Endpoint) error {
	da, aGroup, err := d.endpointDir(a)
	if err != nil {
		return err
	}
	dc, cGroup, err := d.endpointDir(c)
	if err != nil {
		return err
	}
	if aGroup && cGroup {
		return fmt.Errorf("bus: binding %s <-> %s connects two groups", a, c)
	}
	if !(da.Sends() && dc.Receives()) && !(dc.Sends() && da.Receives()) {
		return fmt.Errorf("%w: %s (%s) <-> %s (%s)", ErrDirection, a, da, c, dc)
	}
	for _, bd := range d.bindings {
		if (bd.A == a && bd.B == c) || (bd.A == c && bd.B == a) {
			return fmt.Errorf("bus: binding %s <-> %s already exists", a, c)
		}
	}
	d.bindings = append(d.bindings, Binding{A: a, B: c})
	d.events = append(d.events, Event{Kind: EventAddBinding, Detail: a.String() + " <-> " + c.String()})
	return nil
}

// deleteBinding removes the binding between two endpoints (in either
// orientation), recording the event.
func (d *topologyDraft) deleteBinding(a, c Endpoint) error {
	for i, bd := range d.bindings {
		if (bd.A == a && bd.B == c) || (bd.A == c && bd.B == a) {
			d.bindings = append(d.bindings[:i], d.bindings[i+1:]...)
			d.events = append(d.events, Event{Kind: EventDeleteBinding, Detail: a.String() + " <-> " + c.String()})
			return nil
		}
	}
	return fmt.Errorf("%w: %s <-> %s", ErrNoBinding, a, c)
}

// RoutingView is the narrow read-only surface of the routing layer: an
// immutable, point-in-time view of the topology. A view never changes
// after it is taken — two calls to Bus.Routing() around a reconfiguration
// observe distinct versions — so callers can correlate observations with
// snapshot epochs (the control plane's stats report the live version as
// snapshot_version).
type RoutingView struct {
	t *routingTable
}

// Version returns the snapshot's epoch. It increases by one for every
// published topology change, including the fresh-epoch republish a failed
// Rebind uses to install the prior topology.
func (v RoutingView) Version() uint64 { return v.t.version }

// Instances returns the sorted names of the snapshot's instances.
func (v RoutingView) Instances() []string {
	names := make([]string, 0, len(v.t.instances))
	for n := range v.t.instances {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bindings returns the snapshot's bindings, deterministically sorted by
// endpoint pair.
func (v RoutingView) Bindings() []Binding {
	out := make([]Binding, len(v.t.bindings))
	copy(out, v.t.bindings)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A.String() != out[j].A.String() {
			return out[i].A.String() < out[j].A.String()
		}
		return out[i].B.String() < out[j].B.String()
	})
	return out
}

// Targets returns the endpoints a message written on e would be delivered
// to under this snapshot (the precomputed fan-out the data plane uses).
func (v RoutingView) Targets(e Endpoint) []Endpoint {
	var out []Endpoint
	for _, bd := range v.t.bindings {
		if other, ok := v.t.route(bd, e); ok {
			out = append(out, other)
		}
	}
	return out
}

// Routing returns the current topology snapshot. The view is immutable;
// reload it to observe later reconfigurations.
func (b *Bus) Routing() RoutingView { return RoutingView{t: b.routing.Load()} }
