package bus

import "time"

// Port is the capability a module runtime holds on its bus instance. Both
// in-process attachments (Attachment) and TCP attachments (RemotePort)
// implement it, so the mh runtime is transport-agnostic — a module behaves
// identically whether it shares the bus's process or runs on another
// "machine".
type Port interface {
	// Name returns the instance name.
	Name() string
	// Machine returns the hosting machine label.
	Machine() string
	// Status returns StatusAdd or StatusClone (mh_getstatus).
	Status() string
	// Write emits data on the named interface (mh_write).
	Write(iface string, data []byte) error
	// SendBatch emits a batch of messages on the named interface in one
	// routing pass, amortizing the per-send fixed costs. Batch order is
	// emission order; equivalent to calling Write per payload.
	SendBatch(iface string, batch [][]byte) error
	// Read blocks for the next message on the named interface (mh_read).
	Read(iface string) (Message, error)
	// TryRead returns a pending message without blocking.
	TryRead(iface string) (Message, bool, error)
	// Pending counts queued messages (mh_query_ifmsgs).
	Pending(iface string) (int, error)
	// TakeSignal returns a pending control signal without blocking.
	TakeSignal() (Signal, bool)
	// Divulge surrenders captured state to the bus (mh_encode).
	Divulge(data []byte) error
	// AwaitState blocks until state is installed (mh_decode).
	AwaitState(timeout time.Duration) ([]byte, error)
	// Done reports whether the instance has been deleted.
	Done() bool
}

var _ Port = (*Attachment)(nil)

// TracedWriter is the optional capability a Port may offer for causal
// tracing: Write carrying the parent TraceContext of the message being
// responded to. The mh runtime type-asserts for it — a Port without it
// (e.g. a test stub) simply breaks the causal chain at that hop, it does
// not fail.
type TracedWriter interface {
	// WriteTraced emits data on the named interface, stamped as a causal
	// child of parent (a zero parent mints a new root, like Write).
	WriteTraced(iface string, data []byte, parent TraceContext) error
}

var _ TracedWriter = (*Attachment)(nil)
var _ TracedWriter = (*RemotePort)(nil)

// BatchTracedWriter is the optional capability pairing SendBatch with a
// causal parent, the batched analogue of TracedWriter: the mh runtime's
// write-batching window type-asserts for it when flushing. Every message
// of the batch becomes a sibling child span of parent.
type BatchTracedWriter interface {
	// WriteBatchTraced emits a batch on the named interface, each message
	// stamped as a causal child of parent (a zero parent opens one fresh
	// chain for the whole burst).
	WriteBatchTraced(iface string, batch [][]byte, parent TraceContext) error
}

var _ BatchTracedWriter = (*Attachment)(nil)
var _ BatchTracedWriter = (*RemotePort)(nil)
