package bus

// Unit tests for the robustness machinery under internal/bus: dial retry
// with backoff, per-call RPC timeouts, the restore-confirmation RPC, and
// queue restoration when a rebinding batch fails mid-application.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestDialRetriesThroughTransientFault(t *testing.T) {
	_, s := startServer(t)
	faults := faultinject.New()
	faults.Enable("tcp.dial", faultinject.Point{Action: faultinject.Error, Count: 1})
	p, err := DialPortWith(s.Addr().String(), "compute", DialOptions{
		Retries: 2,
		Backoff: 5 * time.Millisecond,
		Faults:  faults,
	})
	if err != nil {
		t.Fatalf("dial with one transient fault and two retries failed: %v", err)
	}
	defer p.Close()
	if faults.Fired("tcp.dial") != 1 {
		t.Errorf("tcp.dial fired %d times, want 1 (Count:1 disarms after the fault)", faults.Fired("tcp.dial"))
	}
	if p.Name() != "compute" {
		t.Errorf("attached as %q", p.Name())
	}
}

func TestDialExhaustsRetries(t *testing.T) {
	faults := faultinject.New()
	faults.Enable("tcp.dial", faultinject.Point{Action: faultinject.Error})
	_, err := DialPortWith("127.0.0.1:1", "compute", DialOptions{
		Retries: 2,
		Backoff: time.Millisecond,
		Faults:  faults,
	})
	if err == nil {
		t.Fatal("dial succeeded with a permanent fault")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error %v does not wrap the injected fault", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("error %v does not count the attempts", err)
	}
}

func TestDialNoRetryByDefault(t *testing.T) {
	if _, err := DialPort("127.0.0.1:1", "compute"); err == nil {
		t.Fatal("dial to a closed port succeeded")
	} else if !strings.Contains(err.Error(), "1 attempts") {
		t.Errorf("error %v shows more than one attempt without Retries", err)
	}
}

func TestRemoteCallFaultInjection(t *testing.T) {
	_, s := startServer(t)
	faults := faultinject.New()
	p, err := DialPortWith(s.Addr().String(), "compute", DialOptions{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	faults.Enable("tcp.call", faultinject.Point{Action: faultinject.Error, Count: 1})
	if _, err := p.Pending("display"); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("faulted rpc error = %v", err)
	}
	// The fault was transient: the next call goes through.
	if n, err := p.Pending("display"); err != nil || n != 0 {
		t.Errorf("rpc after transient fault = %d, %v", n, err)
	}
}

func TestRemoteCallTimeout(t *testing.T) {
	_, s := startServer(t)
	p, err := DialPortWith(s.Addr().String(), "compute", DialOptions{CallTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Read on an empty queue blocks server-side; the client bound surfaces
	// it as a timeout instead of a stall.
	start := time.Now()
	_, err = p.Read("sensor")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("blocked read error = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestRemoteConfirmRestore(t *testing.T) {
	b, s := startServer(t)
	p := dial(t, s, "compute")
	if err := p.ConfirmRestore(nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AwaitRestored("compute", time.Second); err != nil {
		t.Errorf("AwaitRestored after remote confirmation: %v", err)
	}
}

func TestRemoteConfirmRestoreFailure(t *testing.T) {
	b, s := startServer(t)
	p := dial(t, s, "compute")
	if err := p.ConfirmRestore(errors.New("frame mismatch at level 2")); err != nil {
		t.Fatal(err)
	}
	err := b.AwaitRestored("compute", time.Second)
	if err == nil || !strings.Contains(err.Error(), "frame mismatch at level 2") {
		t.Errorf("AwaitRestored = %v, want the remote restore failure", err)
	}
}

// TestRebindRestoresMovedQueues: a batch that moves queued messages and then
// fails must put the messages back where they were — the transaction layer
// depends on this to guarantee no message loss on rollback.
func TestRebindRestoresMovedQueues(t *testing.T) {
	b := testBus(t)
	if err := b.AddInstance(InstanceSpec{
		Name: "compute2", Module: "compute", Status: StatusClone,
		Interfaces: []IfaceSpec{{Name: "display", Dir: InOut}, {Name: "sensor", Dir: In}},
	}); err != nil {
		t.Fatal(err)
	}
	disp, err := b.Attach("display")
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range []string{"q1", "q2"} {
		if err := disp.Write("temper", []byte(payload)); err != nil {
			t.Fatal(err)
		}
	}

	err = b.Rebind([]BindEdit{
		{Op: "cq", From: Endpoint{"compute", "display"}, To: Endpoint{"compute2", "display"}},
		{Op: "del", From: Endpoint{"ghost", "x"}, To: Endpoint{"ghost", "y"}},
	})
	if err == nil {
		t.Fatal("failing batch succeeded")
	}

	info, err := b.Info("compute")
	if err != nil {
		t.Fatal(err)
	}
	if info.Pending["display"] != 2 {
		t.Fatalf("after failed rebind, compute.display holds %d messages, want 2", info.Pending["display"])
	}
	if info2, _ := b.Info("compute2"); info2.Pending["display"] != 0 {
		t.Errorf("after failed rebind, compute2.display holds %d messages, want 0", info2.Pending["display"])
	}
	// Content survived in order, not just the count.
	comp, err := b.Attach("compute")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"q1", "q2"} {
		m, err := comp.Read("display")
		if err != nil || string(m.Data) != want {
			t.Fatalf("restored message = %q, %v; want %q", m.Data, err, want)
		}
	}
}

func TestSignalDropIsSilent(t *testing.T) {
	b := testBus(t)
	faults := faultinject.New()
	faults.Enable("bus.signal", faultinject.Point{Action: faultinject.Drop, Count: 1})
	b.SetFaults(faults)
	comp, err := b.Attach("compute")
	if err != nil {
		t.Fatal(err)
	}
	// The dropped signal reports success but never arrives.
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatalf("dropped signal surfaced an error: %v", err)
	}
	select {
	case sig := <-comp.Signals():
		t.Fatalf("dropped signal was delivered: %v", sig)
	case <-time.After(50 * time.Millisecond):
	}
	// Dropping still validates the target.
	if err := b.SignalReconfig("ghost"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("signal to ghost = %v", err)
	}
	// Disarmed now: delivery resumes.
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	select {
	case sig := <-comp.Signals():
		if sig.Kind != SignalReconfig {
			t.Errorf("signal kind = %v", sig.Kind)
		}
	case <-time.After(time.Second):
		t.Error("signal after disarm never arrived")
	}
}
