package bus

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRebindVsSend hammers the lock-free write path from 16
// goroutines while a reconfigurer keeps flipping every sender's binding
// between two receivers (del+add per sender plus a cq carrying the queued
// backlog across, the Figure-5 shape of a replacement rebind). It asserts
// the refactor's two hot-path guarantees:
//
//   - exactly-once: every message lands at exactly one receiver exactly
//     once, no matter how many snapshot flips it races;
//   - epoch fencing: each Rebind publishes a strictly newer snapshot, and
//     after the final flip no message can reach the stale receiver — its
//     queue stays empty while fresh traffic lands at the current one.
func TestConcurrentRebindVsSend(t *testing.T) {
	const (
		senders   = 16
		perSender = 500
		flips     = 40 // even, so traffic ends bound to r1
	)
	b := New()
	receivers := []string{"r1", "r2"}
	for _, r := range receivers {
		if err := b.AddInstance(InstanceSpec{Name: r, Interfaces: []IfaceSpec{{Name: "in", Dir: In}}}); err != nil {
			t.Fatal(err)
		}
	}
	sendNames := make([]string, senders)
	for i := range sendNames {
		sendNames[i] = fmt.Sprintf("s%d", i)
		if err := b.AddInstance(InstanceSpec{Name: sendNames[i], Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddBinding(Endpoint{sendNames[i], "out"}, Endpoint{"r1", "in"}); err != nil {
			t.Fatal(err)
		}
	}
	atts := make([]*Attachment, senders)
	for i, n := range sendNames {
		a, err := b.Attach(n)
		if err != nil {
			t.Fatal(err)
		}
		atts[i] = a
	}
	sinks := make([]*Attachment, len(receivers))
	for i, r := range receivers {
		a, err := b.Attach(r)
		if err != nil {
			t.Fatal(err)
		}
		sinks[i] = a
	}

	// Senders: every message encodes (sender, seq). The topology always
	// binds each sender to exactly one receiver, so Write must never fail —
	// a racing flip only reroutes it through the slow path.
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(id int, a *Attachment) {
			defer wg.Done()
			payload := make([]byte, 8)
			binary.BigEndian.PutUint32(payload[0:4], uint32(id))
			for seq := 0; seq < perSender; seq++ {
				binary.BigEndian.PutUint32(payload[4:8], uint32(seq))
				if err := a.Write("out", payload); err != nil {
					t.Errorf("sender %d seq %d: %v", id, seq, err)
					return
				}
				payload = make([]byte, 8)
				binary.BigEndian.PutUint32(payload[0:4], uint32(id))
			}
		}(i, atts[i])
	}

	// Reconfigurer: flip all senders r1 <-> r2 in one atomic batch, with a
	// cq carrying the backlog. Every publish must advance the epoch.
	flipDone := make(chan struct{})
	go func() {
		defer close(flipDone)
		last := b.Routing().Version()
		for f := 0; f < flips; f++ {
			oldR, newR := receivers[f%2], receivers[(f+1)%2]
			edits := make([]BindEdit, 0, senders*2+1)
			for _, s := range sendNames {
				edits = append(edits,
					BindEdit{Op: "del", From: Endpoint{s, "out"}, To: Endpoint{oldR, "in"}},
					BindEdit{Op: "add", From: Endpoint{s, "out"}, To: Endpoint{newR, "in"}},
				)
			}
			edits = append(edits, BindEdit{Op: "cq", From: Endpoint{oldR, "in"}, To: Endpoint{newR, "in"}})
			if err := b.Rebind(edits); err != nil {
				t.Errorf("flip %d: %v", f, err)
				return
			}
			if v := b.Routing().Version(); v <= last {
				t.Errorf("flip %d: snapshot version did not advance (%d -> %d)", f, last, v)
				return
			} else {
				last = v
			}
		}
	}()

	// Collector: poll both receivers until every message is accounted for.
	seen := make(map[uint64]int, senders*perSender)
	total := 0
	deadline := time.Now().Add(30 * time.Second)
	for total < senders*perSender {
		if time.Now().After(deadline) {
			t.Fatalf("collector timed out: %d/%d messages", total, senders*perSender)
		}
		progressed := false
		for _, sink := range sinks {
			for {
				m, ok, err := sink.TryRead("in")
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				key := binary.BigEndian.Uint64(m.Data)
				seen[key]++
				total++
				progressed = true
			}
		}
		if !progressed {
			time.Sleep(100 * time.Microsecond)
		}
	}
	wg.Wait()
	<-flipDone
	if t.Failed() {
		t.FailNow()
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("message sender=%d seq=%d delivered %d times", key>>32, key&0xffffffff, n)
		}
	}
	if len(seen) != senders*perSender {
		t.Fatalf("expected %d distinct messages, got %d", senders*perSender, len(seen))
	}

	// Epoch check: flips ended with everything bound to r1. A final round
	// of markers must land only at r1; the stale receiver's queue stays
	// empty — no write that raced the last flip may have leaked there.
	for qn := 0; ; qn++ {
		n, err := sinks[1].Pending("in")
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("stale receiver r2 holds %d messages after final rebind", n)
		}
		if qn == 1 {
			break
		}
		for i, a := range atts {
			marker := make([]byte, 8)
			binary.BigEndian.PutUint32(marker[0:4], uint32(i))
			binary.BigEndian.PutUint32(marker[4:8], uint32(perSender))
			if err := a.Write("out", marker); err != nil {
				t.Fatalf("marker write %d: %v", i, err)
			}
		}
		for got := 0; got < senders; {
			m, err := sinks[0].Read("in")
			if err != nil {
				t.Fatal(err)
			}
			if binary.BigEndian.Uint32(m.Data[4:8]) != perSender {
				t.Fatalf("unexpected non-marker message after drain: %x", m.Data)
			}
			got++
		}
	}
}
