package bus

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/replay"
)

// TestConcurrentRebindVsSend hammers the lock-free write path from 16
// goroutines while a reconfigurer keeps flipping every sender's binding
// between two receivers (del+add per sender plus a cq carrying the queued
// backlog across, the Figure-5 shape of a replacement rebind). It asserts
// the refactor's two hot-path guarantees:
//
//   - exactly-once: every message lands at exactly one receiver exactly
//     once, no matter how many snapshot flips it races;
//   - epoch fencing: each Rebind publishes a strictly newer snapshot, and
//     after the final flip no message can reach the stale receiver — its
//     queue stays empty while fresh traffic lands at the current one.
func TestConcurrentRebindVsSend(t *testing.T) {
	const (
		senders   = 16
		perSender = 500
		flips     = 40 // even, so traffic ends bound to r1
	)
	b := New()
	receivers := []string{"r1", "r2"}
	for _, r := range receivers {
		if err := b.AddInstance(InstanceSpec{Name: r, Interfaces: []IfaceSpec{{Name: "in", Dir: In}}}); err != nil {
			t.Fatal(err)
		}
	}
	sendNames := make([]string, senders)
	for i := range sendNames {
		sendNames[i] = fmt.Sprintf("s%d", i)
		if err := b.AddInstance(InstanceSpec{Name: sendNames[i], Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddBinding(Endpoint{sendNames[i], "out"}, Endpoint{"r1", "in"}); err != nil {
			t.Fatal(err)
		}
	}
	atts := make([]*Attachment, senders)
	for i, n := range sendNames {
		a, err := b.Attach(n)
		if err != nil {
			t.Fatal(err)
		}
		atts[i] = a
	}
	sinks := make([]*Attachment, len(receivers))
	for i, r := range receivers {
		a, err := b.Attach(r)
		if err != nil {
			t.Fatal(err)
		}
		sinks[i] = a
	}

	// Senders: every message encodes (sender, seq). The topology always
	// binds each sender to exactly one receiver, so Write must never fail —
	// a racing flip only reroutes it through the slow path.
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(id int, a *Attachment) {
			defer wg.Done()
			payload := make([]byte, 8)
			binary.BigEndian.PutUint32(payload[0:4], uint32(id))
			for seq := 0; seq < perSender; seq++ {
				binary.BigEndian.PutUint32(payload[4:8], uint32(seq))
				if err := a.Write("out", payload); err != nil {
					t.Errorf("sender %d seq %d: %v", id, seq, err)
					return
				}
				payload = make([]byte, 8)
				binary.BigEndian.PutUint32(payload[0:4], uint32(id))
			}
		}(i, atts[i])
	}

	// Reconfigurer: flip all senders r1 <-> r2 in one atomic batch, with a
	// cq carrying the backlog. Every publish must advance the epoch.
	flipDone := make(chan struct{})
	go func() {
		defer close(flipDone)
		last := b.Routing().Version()
		for f := 0; f < flips; f++ {
			oldR, newR := receivers[f%2], receivers[(f+1)%2]
			edits := make([]BindEdit, 0, senders*2+1)
			for _, s := range sendNames {
				edits = append(edits,
					BindEdit{Op: "del", From: Endpoint{s, "out"}, To: Endpoint{oldR, "in"}},
					BindEdit{Op: "add", From: Endpoint{s, "out"}, To: Endpoint{newR, "in"}},
				)
			}
			edits = append(edits, BindEdit{Op: "cq", From: Endpoint{oldR, "in"}, To: Endpoint{newR, "in"}})
			if err := b.Rebind(edits); err != nil {
				t.Errorf("flip %d: %v", f, err)
				return
			}
			if v := b.Routing().Version(); v <= last {
				t.Errorf("flip %d: snapshot version did not advance (%d -> %d)", f, last, v)
				return
			} else {
				last = v
			}
		}
	}()

	// Collector: poll both receivers until every message is accounted for.
	seen := make(map[uint64]int, senders*perSender)
	total := 0
	deadline := time.Now().Add(30 * time.Second)
	for total < senders*perSender {
		if time.Now().After(deadline) {
			t.Fatalf("collector timed out: %d/%d messages", total, senders*perSender)
		}
		progressed := false
		for _, sink := range sinks {
			for {
				m, ok, err := sink.TryRead("in")
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				key := binary.BigEndian.Uint64(m.Data)
				seen[key]++
				total++
				progressed = true
			}
		}
		if !progressed {
			time.Sleep(100 * time.Microsecond)
		}
	}
	wg.Wait()
	<-flipDone
	if t.Failed() {
		t.FailNow()
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("message sender=%d seq=%d delivered %d times", key>>32, key&0xffffffff, n)
		}
	}
	if len(seen) != senders*perSender {
		t.Fatalf("expected %d distinct messages, got %d", senders*perSender, len(seen))
	}

	// Epoch check: flips ended with everything bound to r1. A final round
	// of markers must land only at r1; the stale receiver's queue stays
	// empty — no write that raced the last flip may have leaked there.
	for qn := 0; ; qn++ {
		n, err := sinks[1].Pending("in")
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("stale receiver r2 holds %d messages after final rebind", n)
		}
		if qn == 1 {
			break
		}
		for i, a := range atts {
			marker := make([]byte, 8)
			binary.BigEndian.PutUint32(marker[0:4], uint32(i))
			binary.BigEndian.PutUint32(marker[4:8], uint32(perSender))
			if err := a.Write("out", marker); err != nil {
				t.Fatalf("marker write %d: %v", i, err)
			}
		}
		for got := 0; got < senders; {
			m, err := sinks[0].Read("in")
			if err != nil {
				t.Fatal(err)
			}
			if binary.BigEndian.Uint32(m.Data[4:8]) != perSender {
				t.Fatalf("unexpected non-marker message after drain: %x", m.Data)
			}
			got++
		}
	}
}

// TestConcurrentRebindVsSendBatched is the batched-sender arm of the race
// above: 16 goroutines push their traffic through SendBatch (8-message
// batches share one ring-claim loop and, per batch element, race the same
// epoch fences the single-message path does) while the reconfigurer keeps
// flipping every binding. With recording enabled it asserts, beyond
// exactly-once:
//
//   - per-queue recorded order is drained order: the consumer-drain record
//     hook must serialize with batched producers, so each sink's record
//     sequence equals the byte sequence TryRead observed, gapless;
//   - epoch fencing holds for whole batches: after the final flip a batch
//     from every sender lands only at the current receiver.
func TestConcurrentRebindVsSendBatched(t *testing.T) {
	const (
		senders   = 16
		batchSize = 8
		batches   = 64 // perSender = 512
		flips     = 40 // even, so traffic ends bound to r1
	)
	perSender := batchSize * batches
	log := replay.NewLog(2 * senders * perSender)
	log.Enable()
	b := New(WithRecorder(log))
	receivers := []string{"r1", "r2"}
	for _, r := range receivers {
		if err := b.AddInstance(InstanceSpec{Name: r, Interfaces: []IfaceSpec{{Name: "in", Dir: In}}}); err != nil {
			t.Fatal(err)
		}
	}
	sendNames := make([]string, senders)
	for i := range sendNames {
		sendNames[i] = fmt.Sprintf("s%d", i)
		if err := b.AddInstance(InstanceSpec{Name: sendNames[i], Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddBinding(Endpoint{sendNames[i], "out"}, Endpoint{"r1", "in"}); err != nil {
			t.Fatal(err)
		}
	}
	atts := make([]*Attachment, senders)
	for i, n := range sendNames {
		atts[i] = attach(t, b, n)
	}
	sinks := make([]*Attachment, len(receivers))
	for i, r := range receivers {
		sinks[i] = attach(t, b, r)
	}

	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(id int, a *Attachment) { //archlint:spawn test sender; joined via wg below
			defer wg.Done()
			for bn := 0; bn < batches; bn++ {
				batch := make([][]byte, batchSize)
				for j := range batch {
					p := make([]byte, 8)
					binary.BigEndian.PutUint32(p[0:4], uint32(id))
					binary.BigEndian.PutUint32(p[4:8], uint32(bn*batchSize+j))
					batch[j] = p
				}
				if err := a.SendBatch("out", batch); err != nil {
					t.Errorf("sender %d batch %d: %v", id, bn, err)
					return
				}
			}
		}(i, atts[i])
	}

	flipDone := make(chan struct{})
	go func() { //archlint:spawn test reconfigurer; joined via flipDone below
		defer close(flipDone)
		for f := 0; f < flips; f++ {
			oldR, newR := receivers[f%2], receivers[(f+1)%2]
			edits := make([]BindEdit, 0, senders*2+1)
			for _, s := range sendNames {
				edits = append(edits,
					BindEdit{Op: "del", From: Endpoint{s, "out"}, To: Endpoint{oldR, "in"}},
					BindEdit{Op: "add", From: Endpoint{s, "out"}, To: Endpoint{newR, "in"}},
				)
			}
			edits = append(edits, BindEdit{Op: "cq", From: Endpoint{oldR, "in"}, To: Endpoint{newR, "in"}})
			if err := b.Rebind(edits); err != nil {
				t.Errorf("flip %d: %v", f, err)
				return
			}
		}
	}()

	// Collector: drain both sinks, remembering each sink's byte-level
	// drain order for the record comparison.
	seen := make(map[uint64]int, senders*perSender)
	drained := make([][]string, len(receivers))
	total := 0
	deadline := time.Now().Add(30 * time.Second)
	for total < senders*perSender {
		if time.Now().After(deadline) {
			t.Fatalf("collector timed out: %d/%d messages", total, senders*perSender)
		}
		progressed := false
		for si, sink := range sinks {
			for {
				m, ok, err := sink.TryRead("in")
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				seen[binary.BigEndian.Uint64(m.Data)]++
				drained[si] = append(drained[si], string(m.Data))
				total++
				progressed = true
			}
		}
		if !progressed {
			time.Sleep(100 * time.Microsecond)
		}
	}
	wg.Wait()
	<-flipDone
	if t.Failed() {
		t.FailNow()
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("message sender=%d seq=%d delivered %d times", key>>32, key&0xffffffff, n)
		}
	}
	if len(seen) != senders*perSender {
		t.Fatalf("expected %d distinct messages, got %d", senders*perSender, len(seen))
	}

	// Recorded-order == drained-order, per destination queue. The record
	// hook runs at consumption, so each sink's record sequence must be
	// byte-identical to what its TryRead loop observed, with gapless QSeq.
	snap := log.Snapshot()
	for si, r := range receivers {
		recs := replay.InputsTo(snap, r)
		if len(recs) != len(drained[si]) {
			t.Fatalf("%s: recorded %d deliveries, drained %d", r, len(recs), len(drained[si]))
		}
		for i, rec := range recs {
			if rec.QSeq != uint64(i+1) {
				t.Fatalf("%s record %d: qseq=%d, want gapless %d", r, i, rec.QSeq, i+1)
			}
			if string(rec.Data) != drained[si][i] {
				t.Fatalf("%s record %d: recorded order diverges from drained order", r, i)
			}
		}
	}

	// Epoch check: a post-flip batch from every sender lands only at r1.
	for i, a := range atts {
		batch := make([][]byte, batchSize)
		for j := range batch {
			p := make([]byte, 8)
			binary.BigEndian.PutUint32(p[0:4], uint32(i))
			binary.BigEndian.PutUint32(p[4:8], uint32(perSender+j))
			batch[j] = p
		}
		if err := a.SendBatch("out", batch); err != nil {
			t.Fatalf("marker batch %d: %v", i, err)
		}
	}
	for got := 0; got < senders*batchSize; got++ {
		if _, err := sinks[0].Read("in"); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := sinks[1].Pending("in"); err != nil || n != 0 {
		t.Fatalf("stale receiver r2 holds %d messages after final rebind (err=%v)", n, err)
	}
}
