// Package bus implements the software-bus substrate of the reproduction: a
// faithful, in-memory-plus-TCP analogue of the POLYLITH software toolbus the
// paper builds on (Section 1.1).
//
// A Bus hosts module *instances*. Each instance owns a set of named,
// directional *interfaces*; *bindings* connect interfaces of different
// instances; message passing is asynchronous, buffered at the bus in
// per-interface FIFO queues. The bus also carries the control plane needed
// for dynamic reconfiguration: reconfiguration signals, state divulge/
// install boxes, dynamic add/delete of instances and bindings, atomic
// rebinding batches, and queue transfer (the "cq"/"rmq" commands of
// Figure 5).
//
// The package is layered (see routing.go for the full picture): this file
// holds the Bus facade and the *control plane* — every topology mutation is
// a snapshot writer serialized by Bus.mu that publishes a successor
// routingTable — while the data plane (write, Attachment reads) runs
// lock-free against the current snapshot plus one per-queue lock.
//
// The bus never interprets payloads: messages are opaque byte strings
// produced by a codec.Codec, which is what makes the system heterogeneous in
// the paper's sense — every datum that crosses the bus is in the abstract
// format.
package bus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Direction describes which way messages flow on an interface, derived from
// the MIL role (client/server are bidirectional, define is outgoing, use is
// incoming).
type Direction int

// Interface directions.
const (
	In Direction = iota + 1
	Out
	InOut
)

// String returns "in", "out" or "inout".
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Receives reports whether the interface can consume messages.
func (d Direction) Receives() bool { return d == In || d == InOut }

// Sends reports whether the interface can emit messages.
func (d Direction) Sends() bool { return d == Out || d == InOut }

// Endpoint names one interface of one instance.
type Endpoint struct {
	Instance  string
	Interface string
}

// String renders "instance.interface".
func (e Endpoint) String() string { return e.Instance + "." + e.Interface }

// TraceContext is the causal-tracing context a message carries (see
// repro/internal/telemetry/trace). The alias keeps the wire format and the
// Port-facing API inside this package.
type TraceContext = trace.Context

// Message is one datum in flight: who sent it, the codec-encoded payload,
// and the trace context the bus stamped at send. The zero Trace means
// untraced; gob omits it from the wire, so frames from peers without
// tracing decode unchanged (and vice versa).
type Message struct {
	From  Endpoint
	Data  []byte
	Trace TraceContext
}

// IfaceSpec declares one interface when registering an instance.
type IfaceSpec struct {
	Name string
	Dir  Direction
}

// InstanceSpec declares a module instance.
type InstanceSpec struct {
	Name       string
	Module     string // module specification name
	Machine    string // logical machine hosting the instance
	Status     string // "add" for an original, "clone" for a restoration
	Interfaces []IfaceSpec
	Attrs      map[string]string
}

// Statuses used by the paper: an original module sees "add"; a module
// created to receive moved state sees "clone" (mh_getstatus in Figure 4).
const (
	StatusAdd   = "add"
	StatusClone = "clone"
)

// Lifecycle phases of an instance on the bus.
type Phase int

// Instance phases. Added instances exist but have no attached runtime;
// Running instances have an attachment; Divulged instances have surrendered
// their state; Deleted instances are gone.
const (
	PhaseAdded Phase = iota + 1
	PhaseRunning
	PhaseDivulged
	PhaseDeleted
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseAdded:
		return "added"
	case PhaseRunning:
		return "running"
	case PhaseDivulged:
		return "divulged"
	case PhaseDeleted:
		return "deleted"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Errors reported by bus operations.
var (
	// ErrNoInstance indicates an operation on an unknown instance.
	ErrNoInstance = errors.New("bus: no such instance")
	// ErrDupInstance indicates AddInstance with a name already in use.
	ErrDupInstance = errors.New("bus: duplicate instance")
	// ErrNoInterface indicates an endpoint naming an undeclared interface.
	ErrNoInterface = errors.New("bus: no such interface")
	// ErrUnbound indicates a write on an interface with no receiving binding.
	ErrUnbound = errors.New("bus: interface not bound")
	// ErrDirection indicates a read on a non-receiving or write on a
	// non-sending interface.
	ErrDirection = errors.New("bus: interface direction does not permit operation")
	// ErrAlreadyAttached indicates a second Attach for one instance.
	ErrAlreadyAttached = errors.New("bus: instance already attached")
	// ErrNoBinding indicates deleting a binding that does not exist.
	ErrNoBinding = errors.New("bus: no such binding")
	// ErrTimeout indicates an await that expired.
	ErrTimeout = errors.New("bus: timed out")
	// ErrStopped indicates the instance was deleted while blocked.
	ErrStopped = errors.New("bus: instance stopped")
)

// Binding connects two endpoints. Routing is symmetric: a message written on
// either endpoint is delivered to the other side if (and only if) the other
// side receives. This matches POLYLITH client/server pairs, where replies
// flow back along the binding that carried the request.
type Binding struct {
	A Endpoint
	B Endpoint
}

type iface struct {
	spec  IfaceSpec
	queue *msgQueue // incoming messages, nil for pure-Out interfaces

	// Telemetry handles resolved once at AddInstance; nil (no-op) when the
	// bus runs with telemetry disabled, so the write path never branches.
	sent      *telemetry.Counter
	delivered *telemetry.Counter
	// latency attributes delivery latency (send-stamp to read) to this
	// receiving endpoint. Observed only for sampled messages, which are the
	// only ones carrying a send timestamp — the unsampled hot path is
	// untouched.
	latency *telemetry.Histogram
}

// instance is one module instance. The identity fields (name, interface
// set, signal and done channels) are immutable after AddInstance and are
// shared freely across routing snapshots; the runtime state below mu is
// mutable and guarded per-instance, so no data-plane or control-plane
// operation on one instance contends with traffic on another.
type instance struct {
	ifaces  map[string]*iface
	signals chan Signal
	done    chan struct{} // closed on delete

	mu         sync.Mutex
	spec       InstanceSpec // Status is rewritten by rollback paths
	phase      Phase
	attached   bool
	stateBox   *stateBox
	restoreBox chan error // restore confirmation (ConfirmRestore/AwaitRestored)
}

func (in *instance) status() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.spec.Status
}

func (in *instance) setPhase(p Phase) {
	in.mu.Lock()
	in.phase = p
	in.mu.Unlock()
}

func (in *instance) stateBoxRef() *stateBox {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stateBox
}

func (in *instance) restoreBoxRef() chan error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.restoreBox
}

// Bus is the software bus. All methods are safe for concurrent use.
//
// mu is the control-plane writer lock: it serializes topology changes
// (instance/binding edits, rebinds, queue transfers) and the slow retry
// path of write. The steady-state data plane never takes it — it loads the
// current routing snapshot atomically and touches only per-queue locks.
type Bus struct {
	mu      sync.Mutex
	routing atomic.Pointer[routingTable]

	stats    busStats
	clock    func() time.Time
	faults   atomic.Pointer[faultinject.Set]
	telem    *telemetry.Registry
	tracer   *trace.Tracer
	recorder *replay.Log

	// Observers have their own lock: emit may run with or without b.mu held,
	// and observer registration must not race the dispatch snapshot.
	obsMu     sync.Mutex
	observers []*observerQueue
	obsClosed bool
}

// busStats holds the activity counters as atomics so the lock-free write
// path can account deliveries without a lock.
type busStats struct {
	delivered atomic.Int64
	dropped   atomic.Int64
	rebinds   atomic.Int64
	signals   atomic.Int64
	moves     atomic.Int64
}

// Stats counts bus activity, for the benchmark harness. SnapshotVersion is
// the epoch of the current routing snapshot: it increases by one per
// published topology change, so the control plane can correlate traffic
// counters with reconfiguration activity.
type Stats struct {
	Delivered       int64  `json:"delivered"`
	Dropped         int64  `json:"dropped"`
	Rebinds         int64  `json:"rebinds"`
	Signals         int64  `json:"signals"`
	Moves           int64  `json:"moves"` // queue moves
	SnapshotVersion uint64 `json:"snapshot_version"`
}

// BusOption configures a Bus at construction.
type BusOption func(*Bus)

// WithTelemetry sets the bus's metrics registry. Passing nil disables bus
// telemetry entirely: every metric handle resolves to nil and the hot paths
// degrade to no-ops (this is how the overhead benchmark measures the
// uninstrumented baseline).
func WithTelemetry(reg *telemetry.Registry) BusOption {
	return func(b *Bus) { b.telem = reg }
}

// WithMsgTracer sets the bus's message tracer. The default (an unsampled
// tracer) stamps causal contexts but records nothing; a sampling tracer
// additionally records delivery spans into its flight recorder. Passing nil
// disables stamping entirely — messages carry the zero TraceContext — which
// is the baseline arm of the trace-overhead benchmark.
func WithMsgTracer(tr *trace.Tracer) BusOption {
	return func(b *Bus) { b.tracer = tr }
}

// WithRecorder sets the bus's record/replay log: while the log is enabled,
// every delivered message is appended — under the destination queue's lock,
// so the recorded per-queue sequence is the queue's total delivery order.
// The default (nil) resolves every append handle to a no-op; a disabled log
// costs one atomic load per delivery and allocates nothing.
func WithRecorder(l *replay.Log) BusOption {
	return func(b *Bus) { b.recorder = l }
}

// New creates an empty bus. Failpoints default to the process-wide set
// configured by the FAULTPOINTS environment variable (usually empty).
// Telemetry is on by default with a fresh registry; override with
// WithTelemetry.
func New(opts ...BusOption) *Bus {
	b := &Bus{
		clock:  time.Now,
		telem:  telemetry.NewRegistry(),
		tracer: trace.NewTracer(0, nil),
	}
	b.faults.Store(faultinject.Default())
	b.routing.Store((&topologyDraft{instances: map[string]*instance{}, groups: map[string]*groupEntry{}}).build(1))
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Telemetry returns the bus's metrics registry (nil when disabled).
func (b *Bus) Telemetry() *telemetry.Registry { return b.telem }

// MsgTracer returns the bus's message tracer (nil when stamping is
// disabled).
func (b *Bus) MsgTracer() *trace.Tracer { return b.tracer }

// Recorder returns the bus's record/replay log (nil when recording was
// never configured).
func (b *Bus) Recorder() *replay.Log { return b.recorder }

// SetFaults overrides the bus's fault-injection set (tests arm their own so
// parallel tests do not share failpoints). A nil set disables injection.
func (b *Bus) SetFaults(s *faultinject.Set) { b.faults.Store(s) }

// Faults returns the bus's fault-injection set (possibly nil).
func (b *Bus) Faults() *faultinject.Set { return b.faults.Load() }

// fire consults the fault-injection set at a site (a Delay point sleeps;
// Fire is nil-receiver safe, so a disabled set costs one atomic load).
func (b *Bus) fire(site string) error {
	return b.faults.Load().Fire(site)
}

// Observe registers a callback invoked for every bus event. Dispatch is
// asynchronous with per-observer FIFO ordering: each observer gets its own
// mailbox drained by an on-demand goroutine, so a slow observer delays only
// itself — it can never block bus operations or other observers. Call
// SyncObservers to wait for all queued events to be delivered.
func (b *Bus) Observe(fn func(Event)) {
	b.obsMu.Lock()
	defer b.obsMu.Unlock()
	if b.obsClosed {
		return
	}
	b.observers = append(b.observers, newObserverQueue(fn))
}

// Close shuts down event dispatch: every event emitted before the call is
// delivered, the observer mailboxes drain, their goroutines terminate, and
// later emits are dropped. Close is idempotent and does not affect the data
// plane — attachments keep working, which lets an owner close observers
// before tearing instances down.
func (b *Bus) Close() {
	b.obsMu.Lock()
	if b.obsClosed {
		b.obsMu.Unlock()
		return
	}
	b.obsClosed = true
	obs := b.observers
	b.observers = nil
	b.obsMu.Unlock()
	for _, o := range obs {
		o.sync()
	}
}

// SyncObservers blocks until every event emitted before the call has been
// delivered to every observer. Tests use it to make the asynchronous
// dispatch observable deterministically.
func (b *Bus) SyncObservers() {
	b.obsMu.Lock()
	obs := append([]*observerQueue(nil), b.observers...)
	b.obsMu.Unlock()
	for _, o := range obs {
		o.sync()
	}
}

func (b *Bus) emit(e Event) {
	e.Time = b.clock()
	b.obsMu.Lock()
	if b.obsClosed {
		b.obsMu.Unlock()
		return
	}
	obs := b.observers
	b.obsMu.Unlock()
	for _, o := range obs {
		o.enqueue(e)
	}
}

// Stats returns a snapshot of the activity counters.
func (b *Bus) Stats() Stats {
	return Stats{
		Delivered:       b.stats.delivered.Load(),
		Dropped:         b.stats.dropped.Load(),
		Rebinds:         b.stats.rebinds.Load(),
		Signals:         b.stats.signals.Load(),
		Moves:           b.stats.moves.Load(),
		SnapshotVersion: b.routing.Load().version,
	}
}

// editLocked runs fn against a draft of the current snapshot and, if fn
// succeeds, publishes the built successor and emits the events the edits
// recorded. On error nothing is published and no event is emitted — the
// previous snapshot simply remains current. Callers hold b.mu.
func (b *Bus) editLocked(fn func(d *topologyDraft) error) error {
	cur := b.routing.Load()
	d := cur.draft()
	if err := fn(d); err != nil {
		return err
	}
	b.routing.Store(d.build(cur.version + 1))
	for _, e := range d.events {
		b.emit(e)
	}
	return nil
}

// edit is editLocked behind the writer lock — the narrow doorway every
// topology change goes through.
func (b *Bus) edit(fn func(d *topologyDraft) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.editLocked(fn)
}

// AddInstance registers a module instance. The instance exists (its queues
// accept messages) but has no runtime until Attach.
func (b *Bus) AddInstance(spec InstanceSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("bus: instance with empty name")
	}
	if spec.Status == "" {
		spec.Status = StatusAdd
	}
	if err := b.fire("bus.addinstance"); err != nil {
		return fmt.Errorf("bus: add instance %s: %w", spec.Name, err)
	}
	in := &instance{
		spec:       spec,
		phase:      PhaseAdded,
		ifaces:     map[string]*iface{},
		signals:    make(chan Signal, 16),
		stateBox:   newStateBox(),
		restoreBox: make(chan error, 1),
		done:       make(chan struct{}),
	}
	for _, is := range spec.Interfaces {
		if is.Name == "" {
			return fmt.Errorf("bus: instance %s declares unnamed interface", spec.Name)
		}
		if _, dup := in.ifaces[is.Name]; dup {
			return fmt.Errorf("bus: instance %s declares interface %s twice", spec.Name, is.Name)
		}
		ifc := &iface{spec: is}
		if is.Dir.Receives() {
			ifc.queue = newMsgQueue()
		}
		in.ifaces[is.Name] = ifc
	}
	return b.edit(func(d *topologyDraft) error {
		if _, dup := d.instances[spec.Name]; dup {
			return fmt.Errorf("%w: %s", ErrDupInstance, spec.Name)
		}
		if _, dup := d.groups[spec.Name]; dup {
			return fmt.Errorf("%w: %s names a group", ErrDupInstance, spec.Name)
		}
		// Resolve telemetry handles once, after validation, off the message
		// path. On a telemetry-free bus these stay nil and the counters are
		// no-ops.
		for name, ifc := range in.ifaces {
			prefix := "bus.iface." + spec.Name + "." + name
			if ifc.spec.Dir.Sends() {
				ifc.sent = b.telem.Counter(prefix + ".sent")
			}
			if ifc.spec.Dir.Receives() {
				ifc.delivered = b.telem.Counter(prefix + ".delivered")
				ifc.latency = b.telem.Histogram(prefix + ".delivery_latency_ns")
				q := ifc.queue
				b.telem.GaugeFunc(prefix+".queue_depth", func() int64 {
					return int64(q.length())
				})
				// The record handle is interned per endpoint, so a clone
				// reusing a name (rollback resurrect) continues the same
				// recorded delivery sequence. Nil recorder → nil handle →
				// no-op appends.
				q.rec = b.recorder.Queue(spec.Name, name)
			}
		}
		d.instances[spec.Name] = in
		d.events = append(d.events, Event{Kind: EventAddInstance, Instance: spec.Name, Detail: spec.Machine})
		return nil
	})
}

// DeleteInstance removes an instance, closing its queues and waking any
// blocked reader with ErrStopped. Bindings touching the instance are
// removed. The instance's queues are fenced before the successor snapshot
// is published, so a concurrent writer holding the old snapshot retries
// against the new topology instead of posting to a dead queue.
func (b *Bus) DeleteInstance(name string) error {
	if err := b.fire("bus.deleteinstance"); err != nil {
		return fmt.Errorf("bus: delete instance %s: %w", name, err)
	}
	b.mu.Lock()
	cur := b.routing.Load()
	in, ok := cur.instances[name]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	for _, ifc := range in.ifaces {
		if ifc.queue != nil {
			ifc.queue.detach(cur.version)
		}
	}
	d := cur.draft()
	delete(d.instances, name)
	for gname, ge := range d.groups {
		if ge.has(name) {
			d.groups[gname] = ge.without(name)
		}
	}
	kept := d.bindings[:0]
	for _, bd := range d.bindings {
		if bd.A.Instance != name && bd.B.Instance != name {
			kept = append(kept, bd)
		}
	}
	d.bindings = kept
	b.routing.Store(d.build(cur.version + 1))
	in.setPhase(PhaseDeleted)
	close(in.done)
	for _, ifc := range in.ifaces {
		if ifc.queue != nil {
			ifc.queue.close()
		}
	}
	in.stateBoxRef().close()
	b.mu.Unlock()
	b.telem.Unregister("bus.iface." + name + ".")
	b.emit(Event{Kind: EventDeleteInstance, Instance: name})
	return nil
}

// RemoveGroupMember takes an instance out of its group, immediately
// redistributing its queued traffic to the surviving members — the mark-out
// step of crash recovery. The ordering guarantees zero message loss under
// racing senders: the member's receiving queues are fenced at the current
// epoch first, so a sender that resolved the outgoing member set is refused
// at the queue and retries via the slow path against the successor snapshot
// (which no longer lists the member); only then are the fenced queues
// drained and their messages re-queued across the survivors. With no
// survivor the messages are left queued at the (fenced) member, where a
// later queue move — the supervisor's replace transaction — still carries
// them to the rebuilt replica.
func (b *Bus) RemoveGroupMember(group, member string) error {
	b.mu.Lock()
	cur := b.routing.Load()
	ge, ok := cur.groups[group]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: group %s", ErrNoInstance, group)
	}
	if !ge.has(member) {
		b.mu.Unlock()
		return fmt.Errorf("bus: group %s has no member %s", group, member)
	}
	in := cur.instances[member] // members always exist in their snapshot
	for _, ifc := range in.ifaces {
		if ifc.queue != nil {
			ifc.queue.detach(cur.version)
		}
	}
	d := cur.draft()
	d.groups[group] = ge.without(member)
	next := d.build(cur.version + 1)
	b.routing.Store(next)

	requeued := 0
	nge := next.groups[group]
	for ifName, ifc := range in.ifaces {
		if ifc.queue == nil {
			continue
		}
		orphans := ifc.queue.drain()
		if len(orphans) == 0 {
			continue
		}
		var survivors []*iface
		for _, m := range nge.members {
			if sin, ok := next.instances[m]; ok {
				if sifc, ok := sin.ifaces[ifName]; ok && sifc.queue != nil {
					survivors = append(survivors, sifc)
				}
			}
		}
		if len(survivors) == 0 {
			ifc.queue.restore(orphans, next.version)
			continue
		}
		for i, m := range orphans {
			if survivors[i%len(survivors)].queue.push(m, next.version) == nil {
				requeued++
			}
		}
	}
	b.stats.moves.Add(int64(requeued))
	b.mu.Unlock()
	b.emit(Event{Kind: EventLeaveGroup, Instance: member,
		Detail: fmt.Sprintf("group %s (%d msgs requeued)", group, requeued)})
	return nil
}

// Attach claims the runtime slot of an instance, transitioning it to
// PhaseRunning. Exactly one attachment per instance is allowed.
func (b *Bus) Attach(name string) (*Attachment, error) {
	if err := b.fire("bus.attach"); err != nil {
		return nil, fmt.Errorf("bus: attach %s: %w", name, err)
	}
	in, ok := b.routing.Load().instances[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.phase == PhaseDeleted {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	if in.attached {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyAttached, name)
	}
	in.attached = true
	in.phase = PhaseRunning
	return &Attachment{bus: b, inst: in}, nil
}

// AddBinding connects two endpoints. Both must exist, and at least one side
// must send while the other receives.
func (b *Bus) AddBinding(a, c Endpoint) error {
	return b.edit(func(d *topologyDraft) error {
		return d.addBinding(a, c)
	})
}

// DeleteBinding removes the binding between two endpoints (in either
// orientation).
func (b *Bus) DeleteBinding(a, c Endpoint) error {
	return b.edit(func(d *topologyDraft) error {
		return d.deleteBinding(a, c)
	})
}

// MoveQueue transfers all pending messages queued at from to the queue at
// to, preserving order — the "cq" command of Figure 5, which carries
// in-flight messages across a module replacement.
func (b *Bus) MoveQueue(from, to Endpoint) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	rt := b.routing.Load()
	moved, err := b.moveQueueLocked(rt, from, to)
	if err != nil {
		return err
	}
	b.stats.moves.Add(int64(len(moved)))
	b.emit(Event{Kind: EventMoveQueue, Detail: fmt.Sprintf("%s -> %s (%d msgs)", from, to, len(moved)), TraceIDs: traceIDsOf(moved)})
	return nil
}

// moveQueueLocked drains from's queue into to's under the writer lock and
// returns the moved messages. The topology is untouched: messages arriving
// after the drain keep landing at from, exactly as before the refactor.
func (b *Bus) moveQueueLocked(rt *routingTable, from, to Endpoint) ([]Message, error) {
	fi, err := rt.lookup(from)
	if err != nil {
		return nil, err
	}
	ti, err := rt.lookup(to)
	if err != nil {
		return nil, err
	}
	if fi.queue == nil || ti.queue == nil {
		return nil, fmt.Errorf("%w: queue move needs receiving interfaces (%s -> %s)", ErrDirection, from, to)
	}
	moved := fi.queue.drain()
	if err := ti.queue.pushAll(moved, rt.version); err != nil {
		return nil, fmt.Errorf("bus: move queue %s -> %s: %w", from, to, err)
	}
	return moved, nil
}

// DrainQueue discards all pending messages at the endpoint — the "rmq"
// command. It returns the number discarded.
func (b *Bus) DrainQueue(e Endpoint) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ifc, err := b.routing.Load().lookup(e)
	if err != nil {
		return 0, err
	}
	if ifc.queue == nil {
		return 0, fmt.Errorf("%w: %s does not receive", ErrDirection, e)
	}
	dropped := ifc.queue.drain()
	b.emit(Event{Kind: EventDrainQueue, Detail: fmt.Sprintf("%s (%d msgs)", e, len(dropped)), TraceIDs: traceIDsOf(dropped)})
	return len(dropped), nil
}

// traceIDsOf collects the distinct nonzero trace IDs of a message batch, in
// first-seen order, capped at 8 — enough for event-log correlation without
// unbounded event payloads.
func traceIDsOf(msgs []Message) []uint64 {
	var ids []uint64
	for _, m := range msgs {
		id := m.Trace.TraceID
		if id == 0 {
			continue
		}
		dup := false
		for _, seen := range ids {
			if seen == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		ids = append(ids, id)
		if len(ids) == 8 {
			break
		}
	}
	return ids
}

// BindEdit is one entry of an atomic rebinding batch, mirroring the
// mh_edit_bind commands of Figure 5. Op is "add", "del", "cq" (move queued
// messages From→To) or "rmq" (discard queued messages at From).
type BindEdit struct {
	Op   string
	From Endpoint
	To   Endpoint
}

// Rebind applies a batch of binding edits atomically: either all edits
// apply, or none. This is the mh_rebind of Figure 5: "the rebinding
// commands are applied all at once, after the old module has divulged its
// state".
//
// Atomicity has two halves under the snapshot model. Binding edits are
// staged on a draft and published as one successor snapshot, so a failed
// batch leaves the current snapshot — and the observable Bindings() —
// untouched, with no phantom events. Queue edits (cq/rmq) are applied
// between fencing and publish: every queue the batch invalidates is
// detached at the current epoch first, so a concurrent writer that resolved
// its route from the outgoing snapshot is refused at the queue and retries
// against the successor — no message is lost to an abandoned queue and none
// lands on a stale route after the rebind commits. A batch whose queue
// transfer fails restores the saved queue contents and republishes the
// prior topology under a fresh epoch.
func (b *Bus) Rebind(edits []BindEdit) error {
	if err := b.fire("bus.rebind"); err != nil {
		return fmt.Errorf("bus: rebind: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.routing.Load()

	// Phase 0: validate queue edits up front and snapshot the contents of
	// every queue a cq/rmq touches, for rollback.
	qsaved := map[*msgQueue][]Message{}
	snap := func(e Endpoint) error {
		ifc, err := cur.lookup(e)
		if err != nil {
			return err
		}
		if ifc.queue == nil {
			return fmt.Errorf("%w: %s does not receive", ErrDirection, e)
		}
		if _, done := qsaved[ifc.queue]; !done {
			qsaved[ifc.queue] = ifc.queue.snapshot()
		}
		return nil
	}
	for _, e := range edits {
		if e.Op != "cq" && e.Op != "rmq" {
			continue
		}
		if err := snap(e.From); err != nil {
			return fmt.Errorf("bus: rebind %s: %w", e.Op, err)
		}
		if e.Op == "cq" {
			if err := snap(e.To); err != nil {
				return fmt.Errorf("bus: rebind cq: %w", err)
			}
		}
	}

	// Phase 1: stage the binding edits on a draft. Any failure discards the
	// draft whole — nothing has been published or mutated.
	d := cur.draft()
	for i, e := range edits {
		var err error
		switch e.Op {
		case "add":
			err = d.addBinding(e.From, e.To)
		case "del":
			err = d.deleteBinding(e.From, e.To)
		case "cq", "rmq": // validated in phase 0, applied in phase 2
		default:
			err = fmt.Errorf("bus: unknown rebind op %q", e.Op)
		}
		if err != nil {
			return fmt.Errorf("bus: rebind edit %d (%s %s %s): %w", i, e.Op, e.From, e.To, err)
		}
	}

	// Phase 2: fence every queue the batch invalidates — the receiving
	// sides of deleted bindings and the sources of queue transfers — then
	// apply the transfers. Refused writers block on b.mu in writeSlow and
	// re-resolve against the successor published below.
	for _, e := range edits {
		switch e.Op {
		case "del":
			for _, ep := range []Endpoint{e.From, e.To} {
				if ifc, err := cur.lookup(ep); err == nil && ifc.queue != nil {
					ifc.queue.detach(cur.version)
				}
			}
		case "cq", "rmq":
			if ifc, err := cur.lookup(e.From); err == nil {
				ifc.queue.detach(cur.version)
			}
		}
	}
	moves := 0
	for _, e := range edits {
		switch e.Op {
		case "cq":
			fi, _ := cur.lookup(e.From)
			ti, _ := cur.lookup(e.To)
			moved := fi.queue.drain()
			if err := ti.queue.pushAll(moved, cur.version+1); err != nil {
				for q, items := range qsaved {
					q.restore(items, cur.version+1)
				}
				// Republish the prior topology under a fresh epoch so the
				// queues fenced above re-admit routed traffic.
				b.routing.Store(cur.draft().build(cur.version + 1))
				return fmt.Errorf("bus: rebind cq %s -> %s: %w", e.From, e.To, err)
			}
			moves += len(moved)
			d.events = append(d.events, Event{Kind: EventMoveQueue, Detail: fmt.Sprintf("%s -> %s (%d msgs)", e.From, e.To, len(moved)), TraceIDs: traceIDsOf(moved)})
		case "rmq":
			fi, _ := cur.lookup(e.From)
			dropped := fi.queue.drain()
			d.events = append(d.events, Event{Kind: EventDrainQueue, Detail: fmt.Sprintf("%s (%d msgs)", e.From, len(dropped)), TraceIDs: traceIDsOf(dropped)})
		}
	}
	b.routing.Store(d.build(cur.version + 1))
	b.stats.rebinds.Add(1)
	b.stats.moves.Add(int64(moves))
	for _, ev := range d.events {
		b.emit(ev)
	}
	b.emit(Event{Kind: EventRebind, Detail: fmt.Sprintf("%d edits", len(edits))})
	return nil
}

// SignalReconfig delivers a reconfiguration signal to the instance — the
// analogue of the paper's SIGHUP, which sets mh_reconfig in the module's
// signal handler. Extra signals beyond the runtime's buffer are dropped,
// matching UNIX signal coalescing.
func (b *Bus) SignalReconfig(name string) error {
	return b.Signal(name, Signal{Kind: SignalReconfig})
}

// CancelReconfig retracts a pending reconfiguration request: the module's
// runtime clears its mh_reconfig flag when the cancel signal is polled. The
// transaction layer sends it when a reconfiguration aborts before the
// module divulged. The retraction is best-effort, with UNIX-signal
// semantics: a module already past its flag check captures anyway (the
// abort path then restores it from the divulged state instead).
func (b *Bus) CancelReconfig(name string) error {
	return b.Signal(name, Signal{Kind: SignalCancel})
}

// Signal delivers an arbitrary control signal to the instance. The
// "bus.signal" failpoint can drop the delivery (a lost SIGHUP): the caller
// observes success but the module never learns of the request.
func (b *Bus) Signal(name string, s Signal) error {
	dropped := false
	if err := b.fire("bus.signal"); err != nil {
		if !errors.Is(err, faultinject.ErrDropped) {
			return fmt.Errorf("bus: signal %s: %w", name, err)
		}
		dropped = true
	}
	in, ok := b.routing.Load().instances[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	b.stats.signals.Add(1)
	if dropped {
		return nil
	}
	select {
	case in.signals <- s:
	default: // coalesce like a UNIX signal
	}
	b.emit(Event{Kind: EventSignal, Instance: name, Detail: s.Kind.String()})
	return nil
}

// AwaitDivulged blocks until the named instance divulges its state (via its
// attachment) or the timeout expires.
func (b *Bus) AwaitDivulged(name string, timeout time.Duration) (st *stateOwner, err error) {
	if err := b.fire("bus.awaitdivulged"); err != nil {
		return nil, fmt.Errorf("bus: await state of %s: %w", name, err)
	}
	in, ok := b.routing.Load().instances[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	data, err := in.stateBoxRef().await(timeout, in.done)
	if err != nil {
		return nil, fmt.Errorf("bus: await state of %s: %w", name, err)
	}
	return &stateOwner{data: data}, nil
}

// InstallState hands encoded state to the named (clone) instance; its
// runtime retrieves it with Attachment.AwaitState.
func (b *Bus) InstallState(name string, data []byte) error {
	if err := b.fire("bus.installstate"); err != nil {
		return fmt.Errorf("bus: install state into %s: %w", name, err)
	}
	in, ok := b.routing.Load().instances[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	if err := in.stateBoxRef().put(data); err != nil {
		return fmt.Errorf("bus: install state into %s: %w", name, err)
	}
	b.emit(Event{Kind: EventInstallState, Instance: name, Detail: fmt.Sprintf("%d bytes", len(data))})
	return nil
}

// AwaitRestored blocks until the named (clone) instance confirms its state
// restoration — nil for success, or the restoration error — or the timeout
// expires. The transaction layer gates the destructive tail of a
// replacement on it: the old module is only deleted once the new one is
// demonstrably live.
func (b *Bus) AwaitRestored(name string, timeout time.Duration) error {
	if err := b.fire("bus.awaitrestored"); err != nil {
		return fmt.Errorf("bus: await restore of %s: %w", name, err)
	}
	in, ok := b.routing.Load().instances[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-in.restoreBoxRef():
		if err != nil {
			return fmt.Errorf("bus: restore of %s failed: %w", name, err)
		}
		return nil
	case <-in.done:
		return fmt.Errorf("bus: await restore of %s: %w", name, ErrStopped)
	case <-timer.C:
		return fmt.Errorf("bus: await restore of %s: %w", name, ErrTimeout)
	}
}

// ResetForRelaunch prepares a divulged instance to be launched again as a
// clone of itself: its runtime slot is released, its status becomes
// StatusClone so the relaunched program performs a restoration, and its
// state and restore boxes are fresh. The reconfiguration abort path uses it
// to resurrect an old module that already surrendered its state — the
// divulged state is reinstalled and the module resumes from its
// reconfiguration point. Queues and bindings are untouched.
func (b *Bus) ResetForRelaunch(name string) error {
	in, ok := b.routing.Load().instances[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	in.mu.Lock()
	in.spec.Status = StatusClone
	in.attached = false
	in.phase = PhaseAdded
	in.stateBox = newStateBox()
	in.restoreBox = make(chan error, 1)
	in.mu.Unlock()
	b.emit(Event{Kind: EventRelaunch, Instance: name})
	return nil
}

// SetStatus rewrites an instance's status attribute. The abort path uses it
// to return a resurrected module to its original "add" status once the
// restoration is confirmed, so the rolled-back configuration matches the
// pre-transaction one.
func (b *Bus) SetStatus(name, status string) error {
	in, ok := b.routing.Load().instances[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	in.mu.Lock()
	in.spec.Status = status
	in.mu.Unlock()
	return nil
}

// MoveState performs the paper's mh_objstate_move: signal old to divulge its
// state, wait for it, and install the encoded state into new. The srcIface
// and dstIface arguments are kept for fidelity with the primitive's
// signature ("encode"/"decode" in Figure 5) but route through the state box.
func (b *Bus) MoveState(old, srcIface, newName, dstIface string, timeout time.Duration) error {
	if err := b.SignalReconfig(old); err != nil {
		return err
	}
	owner, err := b.AwaitDivulged(old, timeout)
	if err != nil {
		return err
	}
	_ = srcIface
	_ = dstIface
	if err := b.InstallState(newName, owner.data); err != nil {
		return err
	}
	b.emit(Event{Kind: EventMoveState, Instance: old, Detail: "-> " + newName})
	return nil
}

// stateOwner wraps divulged encoded state.
type stateOwner struct{ data []byte }

// Data returns the encoded state bytes.
func (s *stateOwner) Data() []byte { return s.data }

// ---- introspection (mh_struct_* in Figure 5) ----

// InstanceInfo is the bus's current view of an instance, corresponding to
// the module specification mh_obj_cap retrieves.
type InstanceInfo struct {
	Name       string
	Module     string
	Machine    string
	Status     string
	Phase      Phase
	Interfaces []IfaceSpec
	Attrs      map[string]string
	Pending    map[string]int // queued message count per receiving interface
}

// Instances returns the sorted names of all live instances
// (mh_struct_objnames).
func (b *Bus) Instances() []string {
	return b.Routing().Instances()
}

// Info returns the current specification of an instance (mh_obj_cap).
func (b *Bus) Info(name string) (InstanceInfo, error) {
	in, ok := b.routing.Load().instances[name]
	if !ok {
		return InstanceInfo{}, fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	in.mu.Lock()
	status := in.spec.Status
	phase := in.phase
	in.mu.Unlock()
	info := InstanceInfo{
		Name:    in.spec.Name,
		Module:  in.spec.Module,
		Machine: in.spec.Machine,
		Status:  status,
		Phase:   phase,
		Pending: map[string]int{},
	}
	if len(in.spec.Attrs) > 0 {
		info.Attrs = make(map[string]string, len(in.spec.Attrs))
		for k, v := range in.spec.Attrs {
			info.Attrs[k] = v
		}
	}
	names := make([]string, 0, len(in.ifaces))
	for n := range in.ifaces {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ifc := in.ifaces[n]
		info.Interfaces = append(info.Interfaces, ifc.spec)
		if ifc.queue != nil {
			info.Pending[n] = ifc.queue.length()
		}
	}
	return info, nil
}

// QueuedMessage describes one message pending at a receiving interface:
// where it waits, the trace context it carries, and how long it has been in
// flight (AgeNs is -1 when the message carries no send timestamp, i.e. it
// was written on a bus with stamping disabled).
type QueuedMessage struct {
	Endpoint Endpoint
	Trace    TraceContext
	AgeNs    int64
}

// QueuedMessages snapshots the messages still queued toward an instance,
// oldest first per interface, interfaces in name order. The reconfiguration
// layer calls it when a Replace enters its quiesce wait, so the transaction
// trace can show which in-flight traffic the quiesce waited on.
func (b *Bus) QueuedMessages(name string) ([]QueuedMessage, error) {
	in, ok := b.routing.Load().instances[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	now := b.clock().UnixNano()
	names := make([]string, 0, len(in.ifaces))
	for n := range in.ifaces {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []QueuedMessage
	for _, n := range names {
		ifc := in.ifaces[n]
		if ifc.queue == nil {
			continue
		}
		for _, m := range ifc.queue.snapshot() {
			qm := QueuedMessage{Endpoint: Endpoint{Instance: name, Interface: n}, Trace: m.Trace, AgeNs: -1}
			if m.Trace.SentNs != 0 {
				qm.AgeNs = now - m.Trace.SentNs
			}
			out = append(out, qm)
		}
	}
	return out, nil
}

// Bindings returns a copy of all current bindings, deterministically sorted
// by endpoint pair.
func (b *Bus) Bindings() []Binding {
	return b.Routing().Bindings()
}

// IfDest returns the endpoints that messages written on e are delivered to
// (mh_struct_ifdest). Results follow binding creation order, which the
// reconfiguration planner relies on for stable plans.
func (b *Bus) IfDest(e Endpoint) ([]Endpoint, error) {
	rt := b.routing.Load()
	if _, err := rt.lookup(e); err != nil {
		return nil, err
	}
	var out []Endpoint
	for _, bd := range rt.bindings {
		if other, ok := rt.route(bd, e); ok {
			out = append(out, other)
		}
	}
	return out, nil
}

// IfSources returns the endpoints whose writes are delivered to e
// (mh_struct_ifsources), in binding creation order.
func (b *Bus) IfSources(e Endpoint) ([]Endpoint, error) {
	rt := b.routing.Load()
	ifc, err := rt.lookup(e)
	if err != nil {
		return nil, err
	}
	if !ifc.spec.Dir.Receives() {
		return nil, nil
	}
	var out []Endpoint
	for _, bd := range rt.bindings {
		var other Endpoint
		switch e {
		case bd.A:
			other = bd.B
		case bd.B:
			other = bd.A
		default:
			continue
		}
		oifc, err := rt.lookup(other)
		if err == nil && oifc.spec.Dir.Sends() {
			out = append(out, other)
		}
	}
	return out, nil
}

// write routes a message from the given endpoint to every bound receiving
// endpoint. Called by Attachment.Write.
//
//archlint:hotpath
func (b *Bus) write(from Endpoint, data []byte) error {
	return b.writeTraced(from, data, TraceContext{})
}

// writeTraced is write carrying a causal parent: the runtime passes the
// context of the message it is responding to, and the bus stamps the
// outgoing message with a child span (or mints a root when parent is zero).
//
// This is the steady-state hot path: one atomic snapshot load, a map
// lookup into the precomputed route set, and one lock per target queue —
// no global lock and no allocation beyond the message itself. The only
// way traffic meets reconfiguration is the stale-route fence: a push
// refused because its route was resolved from a fenced snapshot falls to
// writeSlow, which serializes with the writer lock and re-resolves.
//
//archlint:hotpath
func (b *Bus) writeTraced(from Endpoint, data []byte, parent TraceContext) error {
	rt := b.routing.Load()
	rs, ok := rt.routes[from]
	if !ok {
		return b.writeNoRouteErr(rt, from)
	}
	if len(rs.targets) == 0 {
		return b.writeUnboundErr(from)
	}
	msg := Message{From: from, Data: data}
	if b.tracer != nil {
		msg.Trace = b.tracer.Stamp(parent)
	}
	var delivered int64
	for i, t := range rs.targets {
		var err error
		if t.ifc != nil {
			err = t.ifc.queue.pushRouted(msg, rt.version)
			if err == nil {
				t.ifc.delivered.Inc()
			}
		} else {
			err = b.deliverGroup(t.group, msg, rt.version)
		}
		switch err {
		case nil:
			delivered++
		case errStaleRoute:
			return b.writeSlow(rs.src, from, msg, rs.targets[:i], delivered)
		default:
			// A closed queue means the receiver was deleted mid-write;
			// the message is simply dropped, like a datagram to a dead
			// process.
		}
	}
	if delivered > 0 {
		b.stats.delivered.Add(delivered)
		rs.src.sent.Add(delivered)
	}
	return nil
}

// writeBatchTraced routes a batch of messages from one endpoint, amortizing
// the per-send fixed costs over the whole batch: one routing-snapshot load,
// one route-map lookup, one trace-stamp reservation (a single atomic add
// claims len(batch) consecutive span ids — message i carries SpanID+i, so
// span mint order still equals emission order for replay), and one
// delivered-counter add at the end. Each message still takes the normal
// per-queue lock-free push, so fencing semantics are identical to N
// writeTraced calls: a push refused by a fenced snapshot finishes that
// message on writeSlow and re-enters for the tail of the batch, which
// re-resolves against the successor snapshot.
//
//archlint:hotpath
func (b *Bus) writeBatchTraced(from Endpoint, batch [][]byte, parent TraceContext) error {
	if len(batch) == 0 {
		return nil
	}
	if len(batch) == 1 {
		return b.writeTraced(from, batch[0], parent)
	}
	rt := b.routing.Load()
	rs, ok := rt.routes[from]
	if !ok {
		return b.writeNoRouteErr(rt, from)
	}
	if len(rs.targets) == 0 {
		return b.writeUnboundErr(from)
	}
	var tr TraceContext
	if b.tracer != nil {
		tr = b.tracer.StampBatch(parent, len(batch))
	}
	var delivered int64
	for i, data := range batch {
		msg := Message{From: from, Data: data, Trace: tr}
		if tr.TraceID != 0 {
			msg.Trace.SpanID = tr.SpanID + uint64(i)
		}
		for j, t := range rs.targets {
			var err error
			if t.ifc != nil {
				err = t.ifc.queue.pushRouted(msg, rt.version)
				if err == nil {
					t.ifc.delivered.Inc()
				}
			} else {
				err = b.deliverGroup(t.group, msg, rt.version)
			}
			switch err {
			case nil:
				delivered++
			case errStaleRoute:
				// Fenced mid-batch: finish this message under the writer
				// lock (which also flushes the accumulated stats), then
				// restart the remaining tail against the fresh snapshot.
				if err := b.writeSlow(rs.src, from, msg, rs.targets[:j], delivered); err != nil {
					return err
				}
				return b.writeBatchTraced(from, batch[i+1:], parent)
			default:
				// Closed queue: receiver deleted mid-write, message dropped.
			}
		}
	}
	if delivered > 0 {
		b.stats.delivered.Add(delivered)
		rs.src.sent.Add(delivered)
	}
	return nil
}

// writeNoRouteErr reports a write on an endpoint with no route entry in
// the snapshot — the cold branch of writeTraced, kept in its own function
// so the annotated hot path carries no formatting. It re-resolves through
// the routing layer to report which invariant actually failed.
func (b *Bus) writeNoRouteErr(rt *routingTable, from Endpoint) error {
	ifc, err := rt.lookup(from)
	if err != nil {
		return err
	}
	return fmt.Errorf("%w: write on %s (%s)", ErrDirection, from, ifc.spec.Dir)
}

// writeUnboundErr counts and reports a write on an endpoint with no bound
// receivers — the other cold branch of writeTraced.
func (b *Bus) writeUnboundErr(from Endpoint) error {
	b.stats.dropped.Add(1)
	return fmt.Errorf("%w: %s", ErrUnbound, from)
}

// writeSlow finishes a write whose fast-path route was fenced by a
// concurrent topology change. It serializes with the writers on b.mu —
// by the time the lock is held the change has published its successor
// snapshot — re-resolves the route, and delivers to every current target
// not already reached on the fast path. attempted holds the targets the
// fast path already processed (delivered or dropped-closed); pre counts
// the fast-path deliveries for the stats.
func (b *Bus) writeSlow(src *iface, from Endpoint, msg Message, attempted []target, pre int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	rt := b.routing.Load()
	delivered := pre
	rs, ok := rt.routes[from]
	if ok {
	targets:
		for _, t := range rs.targets {
			for _, done := range attempted {
				if sameTarget(done, t) {
					continue targets
				}
			}
			// Under b.mu no rebind can fence this queue concurrently, so a
			// plain push suffices; the route is current by construction.
			if t.ifc != nil {
				if t.ifc.queue.push(msg, rt.version) == nil {
					t.ifc.delivered.Inc()
					delivered++
				}
			} else if b.deliverGroupLocked(t.group, msg, rt.version) == nil {
				delivered++
			}
		}
	}
	if delivered == 0 {
		if !ok {
			if _, err := rt.lookup(from); err != nil {
				return err
			}
		}
		b.stats.dropped.Add(1)
		return fmt.Errorf("%w: %s", ErrUnbound, from)
	}
	b.stats.delivered.Add(delivered)
	src.sent.Add(delivered)
	return nil
}
