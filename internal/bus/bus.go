// Package bus implements the software-bus substrate of the reproduction: a
// faithful, in-memory-plus-TCP analogue of the POLYLITH software toolbus the
// paper builds on (Section 1.1).
//
// A Bus hosts module *instances*. Each instance owns a set of named,
// directional *interfaces*; *bindings* connect interfaces of different
// instances; message passing is asynchronous, buffered at the bus in
// per-interface FIFO queues. The bus also carries the control plane needed
// for dynamic reconfiguration: reconfiguration signals, state divulge/
// install boxes, dynamic add/delete of instances and bindings, atomic
// rebinding batches, and queue transfer (the "cq"/"rmq" commands of
// Figure 5).
//
// The bus never interprets payloads: messages are opaque byte strings
// produced by a codec.Codec, which is what makes the system heterogeneous in
// the paper's sense — every datum that crosses the bus is in the abstract
// format.
package bus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Direction describes which way messages flow on an interface, derived from
// the MIL role (client/server are bidirectional, define is outgoing, use is
// incoming).
type Direction int

// Interface directions.
const (
	In Direction = iota + 1
	Out
	InOut
)

// String returns "in", "out" or "inout".
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Receives reports whether the interface can consume messages.
func (d Direction) Receives() bool { return d == In || d == InOut }

// Sends reports whether the interface can emit messages.
func (d Direction) Sends() bool { return d == Out || d == InOut }

// Endpoint names one interface of one instance.
type Endpoint struct {
	Instance  string
	Interface string
}

// String renders "instance.interface".
func (e Endpoint) String() string { return e.Instance + "." + e.Interface }

// Message is one datum in flight: who sent it and the codec-encoded payload.
type Message struct {
	From Endpoint
	Data []byte
}

// IfaceSpec declares one interface when registering an instance.
type IfaceSpec struct {
	Name string
	Dir  Direction
}

// InstanceSpec declares a module instance.
type InstanceSpec struct {
	Name       string
	Module     string // module specification name
	Machine    string // logical machine hosting the instance
	Status     string // "add" for an original, "clone" for a restoration
	Interfaces []IfaceSpec
	Attrs      map[string]string
}

// Statuses used by the paper: an original module sees "add"; a module
// created to receive moved state sees "clone" (mh_getstatus in Figure 4).
const (
	StatusAdd   = "add"
	StatusClone = "clone"
)

// Lifecycle phases of an instance on the bus.
type Phase int

// Instance phases. Added instances exist but have no attached runtime;
// Running instances have an attachment; Divulged instances have surrendered
// their state; Deleted instances are gone.
const (
	PhaseAdded Phase = iota + 1
	PhaseRunning
	PhaseDivulged
	PhaseDeleted
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseAdded:
		return "added"
	case PhaseRunning:
		return "running"
	case PhaseDivulged:
		return "divulged"
	case PhaseDeleted:
		return "deleted"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Errors reported by bus operations.
var (
	// ErrNoInstance indicates an operation on an unknown instance.
	ErrNoInstance = errors.New("bus: no such instance")
	// ErrDupInstance indicates AddInstance with a name already in use.
	ErrDupInstance = errors.New("bus: duplicate instance")
	// ErrNoInterface indicates an endpoint naming an undeclared interface.
	ErrNoInterface = errors.New("bus: no such interface")
	// ErrUnbound indicates a write on an interface with no receiving binding.
	ErrUnbound = errors.New("bus: interface not bound")
	// ErrDirection indicates a read on a non-receiving or write on a
	// non-sending interface.
	ErrDirection = errors.New("bus: interface direction does not permit operation")
	// ErrAlreadyAttached indicates a second Attach for one instance.
	ErrAlreadyAttached = errors.New("bus: instance already attached")
	// ErrNoBinding indicates deleting a binding that does not exist.
	ErrNoBinding = errors.New("bus: no such binding")
	// ErrTimeout indicates an await that expired.
	ErrTimeout = errors.New("bus: timed out")
	// ErrStopped indicates the instance was deleted while blocked.
	ErrStopped = errors.New("bus: instance stopped")
)

// Binding connects two endpoints. Routing is symmetric: a message written on
// either endpoint is delivered to the other side if (and only if) the other
// side receives. This matches POLYLITH client/server pairs, where replies
// flow back along the binding that carried the request.
type Binding struct {
	A Endpoint
	B Endpoint
}

type iface struct {
	spec  IfaceSpec
	queue *msgQueue // incoming messages, nil for pure-Out interfaces

	// Telemetry handles resolved once at AddInstance; nil (no-op) when the
	// bus runs with telemetry disabled, so the write path never branches.
	sent      *telemetry.Counter
	delivered *telemetry.Counter
}

type instance struct {
	spec       InstanceSpec
	phase      Phase
	ifaces     map[string]*iface
	attached   bool
	signals    chan Signal
	stateBox   *stateBox
	restoreBox chan error    // restore confirmation (ConfirmRestore/AwaitRestored)
	done       chan struct{} // closed on delete
}

// Bus is the software bus. All methods are safe for concurrent use.
type Bus struct {
	mu        sync.Mutex
	instances map[string]*instance
	bindings  []Binding
	stats     Stats
	clock     func() time.Time
	faults    *faultinject.Set
	telem     *telemetry.Registry

	// Observers have their own lock: emit may run with or without b.mu held,
	// and observer registration must not race the dispatch snapshot.
	obsMu     sync.Mutex
	observers []*observerQueue
}

// Stats counts bus activity, for the benchmark harness.
type Stats struct {
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	Rebinds   int64 `json:"rebinds"`
	Signals   int64 `json:"signals"`
	Moves     int64 `json:"moves"` // queue moves
}

// BusOption configures a Bus at construction.
type BusOption func(*Bus)

// WithTelemetry sets the bus's metrics registry. Passing nil disables bus
// telemetry entirely: every metric handle resolves to nil and the hot paths
// degrade to no-ops (this is how the overhead benchmark measures the
// uninstrumented baseline).
func WithTelemetry(reg *telemetry.Registry) BusOption {
	return func(b *Bus) { b.telem = reg }
}

// New creates an empty bus. Failpoints default to the process-wide set
// configured by the FAULTPOINTS environment variable (usually empty).
// Telemetry is on by default with a fresh registry; override with
// WithTelemetry.
func New(opts ...BusOption) *Bus {
	b := &Bus{
		instances: map[string]*instance{},
		clock:     time.Now,
		faults:    faultinject.Default(),
		telem:     telemetry.NewRegistry(),
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Telemetry returns the bus's metrics registry (nil when disabled).
func (b *Bus) Telemetry() *telemetry.Registry { return b.telem }

// SetFaults overrides the bus's fault-injection set (tests arm their own so
// parallel tests do not share failpoints). A nil set disables injection.
func (b *Bus) SetFaults(s *faultinject.Set) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.faults = s
}

// Faults returns the bus's fault-injection set (possibly nil).
func (b *Bus) Faults() *faultinject.Set {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.faults
}

// fire consults the fault-injection set at a site without holding the bus
// lock (a Delay point sleeps).
func (b *Bus) fire(site string) error {
	b.mu.Lock()
	f := b.faults
	b.mu.Unlock()
	return f.Fire(site)
}

// Observe registers a callback invoked for every bus event. Dispatch is
// asynchronous with per-observer FIFO ordering: each observer gets its own
// mailbox drained by an on-demand goroutine, so a slow observer delays only
// itself — it can never block bus operations or other observers. Call
// SyncObservers to wait for all queued events to be delivered.
func (b *Bus) Observe(fn func(Event)) {
	b.obsMu.Lock()
	defer b.obsMu.Unlock()
	b.observers = append(b.observers, newObserverQueue(fn))
}

// SyncObservers blocks until every event emitted before the call has been
// delivered to every observer. Tests use it to make the asynchronous
// dispatch observable deterministically.
func (b *Bus) SyncObservers() {
	b.obsMu.Lock()
	obs := append([]*observerQueue(nil), b.observers...)
	b.obsMu.Unlock()
	for _, o := range obs {
		o.sync()
	}
}

func (b *Bus) emit(e Event) {
	e.Time = b.clock()
	b.obsMu.Lock()
	obs := b.observers
	b.obsMu.Unlock()
	for _, o := range obs {
		o.enqueue(e)
	}
}

// Stats returns a snapshot of the activity counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// AddInstance registers a module instance. The instance exists (its queues
// accept messages) but has no runtime until Attach.
func (b *Bus) AddInstance(spec InstanceSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("bus: instance with empty name")
	}
	if spec.Status == "" {
		spec.Status = StatusAdd
	}
	if err := b.fire("bus.addinstance"); err != nil {
		return fmt.Errorf("bus: add instance %s: %w", spec.Name, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.instances[spec.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDupInstance, spec.Name)
	}
	in := &instance{
		spec:       spec,
		phase:      PhaseAdded,
		ifaces:     map[string]*iface{},
		signals:    make(chan Signal, 16),
		stateBox:   newStateBox(),
		restoreBox: make(chan error, 1),
		done:       make(chan struct{}),
	}
	for _, is := range spec.Interfaces {
		if is.Name == "" {
			return fmt.Errorf("bus: instance %s declares unnamed interface", spec.Name)
		}
		if _, dup := in.ifaces[is.Name]; dup {
			return fmt.Errorf("bus: instance %s declares interface %s twice", spec.Name, is.Name)
		}
		ifc := &iface{spec: is}
		if is.Dir.Receives() {
			ifc.queue = newMsgQueue()
		}
		in.ifaces[is.Name] = ifc
	}
	// Resolve telemetry handles once, after validation, off the message
	// path. On a telemetry-free bus these stay nil and the counters are
	// no-ops.
	for name, ifc := range in.ifaces {
		prefix := "bus.iface." + spec.Name + "." + name
		if ifc.spec.Dir.Sends() {
			ifc.sent = b.telem.Counter(prefix + ".sent")
		}
		if ifc.spec.Dir.Receives() {
			ifc.delivered = b.telem.Counter(prefix + ".delivered")
			q := ifc.queue
			b.telem.GaugeFunc(prefix+".queue_depth", func() int64 {
				return int64(q.length())
			})
		}
	}
	b.instances[spec.Name] = in
	b.emit(Event{Kind: EventAddInstance, Instance: spec.Name, Detail: spec.Machine})
	return nil
}

// DeleteInstance removes an instance, closing its queues and waking any
// blocked reader with ErrStopped. Bindings touching the instance are
// removed.
func (b *Bus) DeleteInstance(name string) error {
	if err := b.fire("bus.deleteinstance"); err != nil {
		return fmt.Errorf("bus: delete instance %s: %w", name, err)
	}
	b.mu.Lock()
	in, ok := b.instances[name]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	delete(b.instances, name)
	kept := b.bindings[:0]
	for _, bd := range b.bindings {
		if bd.A.Instance != name && bd.B.Instance != name {
			kept = append(kept, bd)
		}
	}
	b.bindings = kept
	in.phase = PhaseDeleted
	close(in.done)
	for _, ifc := range in.ifaces {
		if ifc.queue != nil {
			ifc.queue.close()
		}
	}
	in.stateBox.close()
	b.mu.Unlock()
	b.telem.Unregister("bus.iface." + name + ".")
	b.emit(Event{Kind: EventDeleteInstance, Instance: name})
	return nil
}

// Attach claims the runtime slot of an instance, transitioning it to
// PhaseRunning. Exactly one attachment per instance is allowed.
func (b *Bus) Attach(name string) (*Attachment, error) {
	if err := b.fire("bus.attach"); err != nil {
		return nil, fmt.Errorf("bus: attach %s: %w", name, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	in, ok := b.instances[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	if in.attached {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyAttached, name)
	}
	in.attached = true
	in.phase = PhaseRunning
	return &Attachment{bus: b, inst: in}, nil
}

// AddBinding connects two endpoints. Both must exist, and at least one side
// must send while the other receives.
func (b *Bus) AddBinding(a, c Endpoint) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.addBindingLocked(a, c)
}

func (b *Bus) addBindingLocked(a, c Endpoint) error {
	ia, err := b.lookupLocked(a)
	if err != nil {
		return err
	}
	ic, err := b.lookupLocked(c)
	if err != nil {
		return err
	}
	if !(ia.spec.Dir.Sends() && ic.spec.Dir.Receives()) && !(ic.spec.Dir.Sends() && ia.spec.Dir.Receives()) {
		return fmt.Errorf("%w: %s (%s) <-> %s (%s)", ErrDirection, a, ia.spec.Dir, c, ic.spec.Dir)
	}
	for _, bd := range b.bindings {
		if (bd.A == a && bd.B == c) || (bd.A == c && bd.B == a) {
			return fmt.Errorf("bus: binding %s <-> %s already exists", a, c)
		}
	}
	b.bindings = append(b.bindings, Binding{A: a, B: c})
	b.emit(Event{Kind: EventAddBinding, Detail: a.String() + " <-> " + c.String()})
	return nil
}

// DeleteBinding removes the binding between two endpoints (in either
// orientation).
func (b *Bus) DeleteBinding(a, c Endpoint) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.deleteBindingLocked(a, c)
}

func (b *Bus) deleteBindingLocked(a, c Endpoint) error {
	for i, bd := range b.bindings {
		if (bd.A == a && bd.B == c) || (bd.A == c && bd.B == a) {
			b.bindings = append(b.bindings[:i], b.bindings[i+1:]...)
			b.emit(Event{Kind: EventDeleteBinding, Detail: a.String() + " <-> " + c.String()})
			return nil
		}
	}
	return fmt.Errorf("%w: %s <-> %s", ErrNoBinding, a, c)
}

// MoveQueue transfers all pending messages queued at from to the queue at
// to, preserving order — the "cq" command of Figure 5, which carries
// in-flight messages across a module replacement.
func (b *Bus) MoveQueue(from, to Endpoint) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.moveQueueLocked(from, to)
}

func (b *Bus) moveQueueLocked(from, to Endpoint) error {
	fi, err := b.lookupLocked(from)
	if err != nil {
		return err
	}
	ti, err := b.lookupLocked(to)
	if err != nil {
		return err
	}
	if fi.queue == nil || ti.queue == nil {
		return fmt.Errorf("%w: queue move needs receiving interfaces (%s -> %s)", ErrDirection, from, to)
	}
	moved := fi.queue.drain()
	for _, m := range moved {
		if err := ti.queue.push(m); err != nil {
			return fmt.Errorf("bus: move queue %s -> %s: %w", from, to, err)
		}
	}
	b.stats.Moves += int64(len(moved))
	b.emit(Event{Kind: EventMoveQueue, Detail: fmt.Sprintf("%s -> %s (%d msgs)", from, to, len(moved))})
	return nil
}

// DrainQueue discards all pending messages at the endpoint — the "rmq"
// command. It returns the number discarded.
func (b *Bus) DrainQueue(e Endpoint) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ifc, err := b.lookupLocked(e)
	if err != nil {
		return 0, err
	}
	if ifc.queue == nil {
		return 0, fmt.Errorf("%w: %s does not receive", ErrDirection, e)
	}
	n := len(ifc.queue.drain())
	b.emit(Event{Kind: EventDrainQueue, Detail: fmt.Sprintf("%s (%d msgs)", e, n)})
	return n, nil
}

// BindEdit is one entry of an atomic rebinding batch, mirroring the
// mh_edit_bind commands of Figure 5. Op is "add", "del", "cq" (move queued
// messages From→To) or "rmq" (discard queued messages at From).
type BindEdit struct {
	Op   string
	From Endpoint
	To   Endpoint
}

// Rebind applies a batch of binding edits atomically: either all edits
// apply, or none (the bus state is restored on failure). This is the
// mh_rebind of Figure 5: "the rebinding commands are applied all at once,
// after the old module has divulged its state". Bindings AND queues are
// restored on failure: a cq that moved messages before a later edit failed
// puts them back, so a half-applied batch never strands traffic.
func (b *Bus) Rebind(edits []BindEdit) error {
	if err := b.fire("bus.rebind"); err != nil {
		return fmt.Errorf("bus: rebind: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Snapshot bindings — and the contents of every queue a cq/rmq edit
	// touches — for rollback. Queue moves are also validated up front
	// (both queues must exist).
	saved := make([]Binding, len(b.bindings))
	copy(saved, b.bindings)
	qsaved := map[*msgQueue][]Message{}
	snap := func(e Endpoint) error {
		ifc, err := b.lookupLocked(e)
		if err != nil {
			return err
		}
		if ifc.queue == nil {
			return fmt.Errorf("%w: %s does not receive", ErrDirection, e)
		}
		if _, done := qsaved[ifc.queue]; !done {
			qsaved[ifc.queue] = ifc.queue.snapshot()
		}
		return nil
	}
	for _, e := range edits {
		if e.Op != "cq" && e.Op != "rmq" {
			continue
		}
		if err := snap(e.From); err != nil {
			return fmt.Errorf("bus: rebind %s: %w", e.Op, err)
		}
		if e.Op == "cq" {
			if err := snap(e.To); err != nil {
				return fmt.Errorf("bus: rebind cq: %w", err)
			}
		}
	}
	for i, e := range edits {
		var err error
		switch e.Op {
		case "add":
			err = b.addBindingLocked(e.From, e.To)
		case "del":
			err = b.deleteBindingLocked(e.From, e.To)
		case "cq":
			err = b.moveQueueLocked(e.From, e.To)
		case "rmq":
			_, err = func() (int, error) {
				ifc, lerr := b.lookupLocked(e.From)
				if lerr != nil {
					return 0, lerr
				}
				if ifc.queue == nil {
					return 0, fmt.Errorf("%w: %s does not receive", ErrDirection, e.From)
				}
				return len(ifc.queue.drain()), nil
			}()
		default:
			err = fmt.Errorf("bus: unknown rebind op %q", e.Op)
		}
		if err != nil {
			b.bindings = saved
			for q, items := range qsaved {
				q.restore(items)
			}
			return fmt.Errorf("bus: rebind edit %d (%s %s %s): %w", i, e.Op, e.From, e.To, err)
		}
	}
	b.stats.Rebinds++
	b.emit(Event{Kind: EventRebind, Detail: fmt.Sprintf("%d edits", len(edits))})
	return nil
}

// SignalReconfig delivers a reconfiguration signal to the instance — the
// analogue of the paper's SIGHUP, which sets mh_reconfig in the module's
// signal handler. Extra signals beyond the runtime's buffer are dropped,
// matching UNIX signal coalescing.
func (b *Bus) SignalReconfig(name string) error {
	return b.Signal(name, Signal{Kind: SignalReconfig})
}

// CancelReconfig retracts a pending reconfiguration request: the module's
// runtime clears its mh_reconfig flag when the cancel signal is polled. The
// transaction layer sends it when a reconfiguration aborts before the
// module divulged. The retraction is best-effort, with UNIX-signal
// semantics: a module already past its flag check captures anyway (the
// abort path then restores it from the divulged state instead).
func (b *Bus) CancelReconfig(name string) error {
	return b.Signal(name, Signal{Kind: SignalCancel})
}

// Signal delivers an arbitrary control signal to the instance. The
// "bus.signal" failpoint can drop the delivery (a lost SIGHUP): the caller
// observes success but the module never learns of the request.
func (b *Bus) Signal(name string, s Signal) error {
	dropped := false
	if err := b.fire("bus.signal"); err != nil {
		if !errors.Is(err, faultinject.ErrDropped) {
			return fmt.Errorf("bus: signal %s: %w", name, err)
		}
		dropped = true
	}
	b.mu.Lock()
	in, ok := b.instances[name]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	b.stats.Signals++
	b.mu.Unlock()
	if dropped {
		return nil
	}
	select {
	case in.signals <- s:
	default: // coalesce like a UNIX signal
	}
	b.emit(Event{Kind: EventSignal, Instance: name, Detail: s.Kind.String()})
	return nil
}

// AwaitDivulged blocks until the named instance divulges its state (via its
// attachment) or the timeout expires.
func (b *Bus) AwaitDivulged(name string, timeout time.Duration) (st *stateOwner, err error) {
	if err := b.fire("bus.awaitdivulged"); err != nil {
		return nil, fmt.Errorf("bus: await state of %s: %w", name, err)
	}
	b.mu.Lock()
	in, ok := b.instances[name]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	data, err := in.stateBox.await(timeout, in.done)
	if err != nil {
		return nil, fmt.Errorf("bus: await state of %s: %w", name, err)
	}
	return &stateOwner{data: data}, nil
}

// InstallState hands encoded state to the named (clone) instance; its
// runtime retrieves it with Attachment.AwaitState.
func (b *Bus) InstallState(name string, data []byte) error {
	if err := b.fire("bus.installstate"); err != nil {
		return fmt.Errorf("bus: install state into %s: %w", name, err)
	}
	b.mu.Lock()
	in, ok := b.instances[name]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	if err := in.stateBox.put(data); err != nil {
		return fmt.Errorf("bus: install state into %s: %w", name, err)
	}
	b.emit(Event{Kind: EventInstallState, Instance: name, Detail: fmt.Sprintf("%d bytes", len(data))})
	return nil
}

// AwaitRestored blocks until the named (clone) instance confirms its state
// restoration — nil for success, or the restoration error — or the timeout
// expires. The transaction layer gates the destructive tail of a
// replacement on it: the old module is only deleted once the new one is
// demonstrably live.
func (b *Bus) AwaitRestored(name string, timeout time.Duration) error {
	if err := b.fire("bus.awaitrestored"); err != nil {
		return fmt.Errorf("bus: await restore of %s: %w", name, err)
	}
	b.mu.Lock()
	in, ok := b.instances[name]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-in.restoreBox:
		if err != nil {
			return fmt.Errorf("bus: restore of %s failed: %w", name, err)
		}
		return nil
	case <-in.done:
		return fmt.Errorf("bus: await restore of %s: %w", name, ErrStopped)
	case <-timer.C:
		return fmt.Errorf("bus: await restore of %s: %w", name, ErrTimeout)
	}
}

// ResetForRelaunch prepares a divulged instance to be launched again as a
// clone of itself: its runtime slot is released, its status becomes
// StatusClone so the relaunched program performs a restoration, and its
// state and restore boxes are fresh. The reconfiguration abort path uses it
// to resurrect an old module that already surrendered its state — the
// divulged state is reinstalled and the module resumes from its
// reconfiguration point. Queues and bindings are untouched.
func (b *Bus) ResetForRelaunch(name string) error {
	b.mu.Lock()
	in, ok := b.instances[name]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	in.spec.Status = StatusClone
	in.attached = false
	in.phase = PhaseAdded
	in.stateBox = newStateBox()
	in.restoreBox = make(chan error, 1)
	b.mu.Unlock()
	b.emit(Event{Kind: EventRelaunch, Instance: name})
	return nil
}

// SetStatus rewrites an instance's status attribute. The abort path uses it
// to return a resurrected module to its original "add" status once the
// restoration is confirmed, so the rolled-back configuration matches the
// pre-transaction one.
func (b *Bus) SetStatus(name, status string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	in, ok := b.instances[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	in.spec.Status = status
	return nil
}

// MoveState performs the paper's mh_objstate_move: signal old to divulge its
// state, wait for it, and install the encoded state into new. The srcIface
// and dstIface arguments are kept for fidelity with the primitive's
// signature ("encode"/"decode" in Figure 5) but route through the state box.
func (b *Bus) MoveState(old, srcIface, newName, dstIface string, timeout time.Duration) error {
	if err := b.SignalReconfig(old); err != nil {
		return err
	}
	owner, err := b.AwaitDivulged(old, timeout)
	if err != nil {
		return err
	}
	_ = srcIface
	_ = dstIface
	if err := b.InstallState(newName, owner.data); err != nil {
		return err
	}
	b.emit(Event{Kind: EventMoveState, Instance: old, Detail: "-> " + newName})
	return nil
}

// stateOwner wraps divulged encoded state.
type stateOwner struct{ data []byte }

// Data returns the encoded state bytes.
func (s *stateOwner) Data() []byte { return s.data }

// ---- introspection (mh_struct_* in Figure 5) ----

// InstanceInfo is the bus's current view of an instance, corresponding to
// the module specification mh_obj_cap retrieves.
type InstanceInfo struct {
	Name       string
	Module     string
	Machine    string
	Status     string
	Phase      Phase
	Interfaces []IfaceSpec
	Attrs      map[string]string
	Pending    map[string]int // queued message count per receiving interface
}

// Instances returns the sorted names of all live instances
// (mh_struct_objnames).
func (b *Bus) Instances() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.instances))
	for n := range b.instances {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info returns the current specification of an instance (mh_obj_cap).
func (b *Bus) Info(name string) (InstanceInfo, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	in, ok := b.instances[name]
	if !ok {
		return InstanceInfo{}, fmt.Errorf("%w: %s", ErrNoInstance, name)
	}
	info := InstanceInfo{
		Name:    in.spec.Name,
		Module:  in.spec.Module,
		Machine: in.spec.Machine,
		Status:  in.spec.Status,
		Phase:   in.phase,
		Pending: map[string]int{},
	}
	if len(in.spec.Attrs) > 0 {
		info.Attrs = make(map[string]string, len(in.spec.Attrs))
		for k, v := range in.spec.Attrs {
			info.Attrs[k] = v
		}
	}
	names := make([]string, 0, len(in.ifaces))
	for n := range in.ifaces {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ifc := in.ifaces[n]
		info.Interfaces = append(info.Interfaces, ifc.spec)
		if ifc.queue != nil {
			info.Pending[n] = ifc.queue.length()
		}
	}
	return info, nil
}

// Bindings returns a copy of all current bindings, ordered as created.
func (b *Bus) Bindings() []Binding {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Binding, len(b.bindings))
	copy(out, b.bindings)
	return out
}

// IfDest returns the endpoints that messages written on e are delivered to
// (mh_struct_ifdest).
func (b *Bus) IfDest(e Endpoint) ([]Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.lookupLocked(e); err != nil {
		return nil, err
	}
	var out []Endpoint
	for _, bd := range b.bindings {
		if other, ok := b.routeLocked(bd, e); ok {
			out = append(out, other)
		}
	}
	return out, nil
}

// IfSources returns the endpoints whose writes are delivered to e
// (mh_struct_ifsources).
func (b *Bus) IfSources(e Endpoint) ([]Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ifc, err := b.lookupLocked(e)
	if err != nil {
		return nil, err
	}
	if !ifc.spec.Dir.Receives() {
		return nil, nil
	}
	var out []Endpoint
	for _, bd := range b.bindings {
		var other Endpoint
		switch e {
		case bd.A:
			other = bd.B
		case bd.B:
			other = bd.A
		default:
			continue
		}
		oifc, err := b.lookupLocked(other)
		if err == nil && oifc.spec.Dir.Sends() {
			out = append(out, other)
		}
	}
	return out, nil
}

// routeLocked returns the delivery target when a message is written on from
// and the binding bd is considered: the opposite endpoint, if it receives.
func (b *Bus) routeLocked(bd Binding, from Endpoint) (Endpoint, bool) {
	var other Endpoint
	switch from {
	case bd.A:
		other = bd.B
	case bd.B:
		other = bd.A
	default:
		return Endpoint{}, false
	}
	ifc, err := b.lookupLocked(other)
	if err != nil || !ifc.spec.Dir.Receives() {
		return Endpoint{}, false
	}
	return other, true
}

func (b *Bus) lookupLocked(e Endpoint) (*iface, error) {
	in, ok := b.instances[e.Instance]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInstance, e.Instance)
	}
	ifc, ok := in.ifaces[e.Interface]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInterface, e)
	}
	return ifc, nil
}

// write routes a message from the given endpoint to every bound receiving
// endpoint. Called by Attachment.Write.
func (b *Bus) write(from Endpoint, data []byte) error {
	b.mu.Lock()
	src, err := b.lookupLocked(from)
	if err != nil {
		b.mu.Unlock()
		return err
	}
	if !src.spec.Dir.Sends() {
		b.mu.Unlock()
		return fmt.Errorf("%w: write on %s (%s)", ErrDirection, from, src.spec.Dir)
	}
	var targets []*iface
	for _, bd := range b.bindings {
		if other, ok := b.routeLocked(bd, from); ok {
			ifc, _ := b.lookupLocked(other)
			targets = append(targets, ifc)
		}
	}
	if len(targets) == 0 {
		b.stats.Dropped++
		b.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnbound, from)
	}
	b.stats.Delivered += int64(len(targets))
	b.mu.Unlock()
	src.sent.Add(int64(len(targets)))
	msg := Message{From: from, Data: data}
	for _, ifc := range targets {
		// A closed queue means the receiver was deleted mid-write;
		// the message is simply dropped, like a datagram to a dead
		// process.
		if ifc.queue.push(msg) == nil {
			ifc.delivered.Inc()
		}
	}
	return nil
}
