package bus

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry/trace"
)

// TestTraceStampAndChildPropagation pins the core tracing contract: the bus
// mints a root context on a plain write, extends it across a receive→send
// handoff via WriteTraced, and a fresh plain write opens a new chain.
func TestTraceStampAndChildPropagation(t *testing.T) {
	b := testBus(t)
	sens := attach(t, b, "sensor")
	comp := attach(t, b, "compute")
	disp := attach(t, b, "display")

	if err := sens.Write("out", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	m, err := comp.Read("sensor")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Trace.Valid() {
		t.Fatal("plain write was not stamped with a trace context")
	}
	if m.Trace.Hops != 0 || m.Trace.Parent != 0 {
		t.Errorf("root context = %+v, want hops 0 and no parent", m.Trace)
	}
	if m.Trace.SentNs != 0 {
		t.Error("unsampled context carries a send timestamp — the hot path should skip the clock read")
	}
	if m.Trace.Sampled() {
		t.Error("default tracer must not sample")
	}

	if err := comp.WriteTraced("display", []byte("fwd"), m.Trace); err != nil {
		t.Fatal(err)
	}
	m2, err := disp.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Trace.TraceID != m.Trace.TraceID {
		t.Errorf("handoff changed the trace: %d -> %d", m.Trace.TraceID, m2.Trace.TraceID)
	}
	if m2.Trace.Parent != m.Trace.SpanID {
		t.Errorf("child parent = %d, want causing span %d", m2.Trace.Parent, m.Trace.SpanID)
	}
	if m2.Trace.Hops != 1 {
		t.Errorf("child hops = %d, want 1", m2.Trace.Hops)
	}
	if m2.Trace.SpanID == m.Trace.SpanID {
		t.Error("child reused the parent's span ID")
	}

	if err := comp.Write("display", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	m3, err := disp.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	if m3.Trace.TraceID == m.Trace.TraceID {
		t.Error("plain write continued an old trace instead of minting a root")
	}
}

// TestTraceSampledDeliveryRecorded wires a fully-sampled tracer and checks a
// delivery span lands in the flight recorder with both endpoint names.
func TestTraceSampledDeliveryRecorded(t *testing.T) {
	rec := trace.NewRecorder(32)
	b := New(WithMsgTracer(trace.NewTracer(1, rec)))
	for _, spec := range []InstanceSpec{
		{Name: "src", Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}},
		{Name: "dst", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}},
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddBinding(Endpoint{"src", "out"}, Endpoint{"dst", "in"}); err != nil {
		t.Fatal(err)
	}
	src := attach(t, b, "src")
	dst := attach(t, b, "dst")

	if err := src.Write("out", []byte("x")); err != nil {
		t.Fatal(err)
	}
	m, err := dst.Read("in")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Trace.Sampled() {
		t.Fatal("sample-everything tracer produced an unsampled context")
	}
	if rec.Len() != 1 {
		t.Fatalf("recorder holds %d spans, want 1", rec.Len())
	}
	sp := rec.Snapshot()[0]
	if sp.TraceID != m.Trace.TraceID || sp.SpanID != m.Trace.SpanID {
		t.Errorf("recorded span %+v does not match delivered context %+v", sp, m.Trace)
	}
	if sp.From != "src.out" || sp.To != "dst.in" {
		t.Errorf("span endpoints = %s -> %s", sp.From, sp.To)
	}
	if sp.EndNs < sp.StartNs {
		t.Errorf("span ends (%d) before it starts (%d)", sp.EndNs, sp.StartNs)
	}
}

// TestTraceSurvivesQueueMove pins that queue transfers carry trace contexts
// with the messages and that the MoveQueue/DrainQueue events report the
// trace IDs involved — the correlation handle between the event log and the
// flight recorder.
func TestTraceSurvivesQueueMove(t *testing.T) {
	b := testBus(t)
	sens := attach(t, b, "sensor")
	for _, payload := range []string{"q1", "q2"} {
		if err := sens.Write("out", []byte(payload)); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	var events []Event
	b.Observe(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})

	if err := b.AddInstance(InstanceSpec{
		Name: "compute2", Module: "compute",
		Interfaces: []IfaceSpec{{Name: "sensor", Dir: In}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.MoveQueue(Endpoint{"compute", "sensor"}, Endpoint{"compute2", "sensor"}); err != nil {
		t.Fatal(err)
	}
	b.SyncObservers()

	mu.Lock()
	var moveIDs []uint64
	for _, e := range events {
		if e.Kind == EventMoveQueue {
			moveIDs = e.TraceIDs
		}
	}
	mu.Unlock()
	if len(moveIDs) != 2 || moveIDs[0] == moveIDs[1] {
		t.Fatalf("move-queue event trace IDs = %v, want 2 distinct", moveIDs)
	}

	c2 := attach(t, b, "compute2")
	for i, wantID := range moveIDs {
		m, err := c2.Read("sensor")
		if err != nil {
			t.Fatal(err)
		}
		if m.Trace.TraceID != wantID {
			t.Errorf("moved message %d carries trace %d, event reported %d", i, m.Trace.TraceID, wantID)
		}
	}

	// A drain reports the discarded messages' traces the same way.
	if err := sens.Write("out", []byte("q3")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DrainQueue(Endpoint{"compute", "sensor"}); err != nil {
		t.Fatal(err)
	}
	b.SyncObservers()
	mu.Lock()
	var drainIDs []uint64
	for _, e := range events {
		if e.Kind == EventDrainQueue {
			drainIDs = e.TraceIDs
		}
	}
	mu.Unlock()
	if len(drainIDs) != 1 {
		t.Errorf("drain-queue event trace IDs = %v, want 1", drainIDs)
	}
}

// TestQueuedMessages pins the quiesce-correlation snapshot: per-message
// endpoint, trace context, and age for everything queued toward an
// instance. Ages need a send timestamp, which only sampled contexts carry,
// so the measurable-age arm runs on a rate-1 tracer; on an unsampled bus
// the age degrades to -1 ("unknown"), pinned by the second arm.
func TestQueuedMessages(t *testing.T) {
	b := testBus(t, WithMsgTracer(trace.NewTracer(1, trace.NewRecorder(64))))
	sens := attach(t, b, "sensor")
	for _, payload := range []string{"a", "b"} {
		if err := sens.Write("out", []byte(payload)); err != nil {
			t.Fatal(err)
		}
	}
	qm, err := b.QueuedMessages("compute")
	if err != nil {
		t.Fatal(err)
	}
	if len(qm) != 2 {
		t.Fatalf("QueuedMessages = %d entries, want 2", len(qm))
	}
	for _, m := range qm {
		if m.Endpoint != (Endpoint{"compute", "sensor"}) {
			t.Errorf("queued endpoint = %v", m.Endpoint)
		}
		if !m.Trace.Valid() {
			t.Error("queued message lost its trace context")
		}
		if m.AgeNs < 0 {
			t.Errorf("queued message age = %d", m.AgeNs)
		}
	}
	if _, err := b.QueuedMessages("ghost"); err == nil {
		t.Error("unknown instance accepted")
	}

	// Unsampled bus: no send timestamp, age is reported as unknown (-1).
	plain := testBus(t)
	psens := attach(t, plain, "sensor")
	if err := psens.Write("out", []byte("p")); err != nil {
		t.Fatal(err)
	}
	pqm, err := plain.QueuedMessages("compute")
	if err != nil {
		t.Fatal(err)
	}
	if len(pqm) != 1 || pqm[0].AgeNs != -1 {
		t.Errorf("unsampled queued age = %+v, want AgeNs -1", pqm)
	}
}

// TestCloseStopsObserverGoroutines is the leak check: observer mailboxes
// must drain and their goroutines exit when the bus closes.
func TestCloseStopsObserverGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	b := New()
	var mu sync.Mutex
	seen := 0
	b.Observe(func(Event) {
		mu.Lock()
		seen++
		mu.Unlock()
		time.Sleep(time.Millisecond) // keep the mailbox goroutine busy
	})
	for i := 0; i < 8; i++ {
		if err := b.AddInstance(InstanceSpec{Name: string(rune('a' + i))}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()

	mu.Lock()
	got := seen
	mu.Unlock()
	if got != 8 {
		t.Errorf("observer saw %d events before close, want all 8", got)
	}

	// Events after Close are not delivered and start no goroutines.
	if err := b.AddInstance(InstanceSpec{Name: "late"}); err != nil {
		t.Fatal(err)
	}
	b.Observe(func(Event) { t.Error("observer registered after Close was invoked") })
	b.SyncObservers()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRemoteTracePropagation sends a causal chain across the TCP transport
// in both directions: the wire carries the parent context of a traced write,
// and the server-side bus stamps the child.
func TestRemoteTracePropagation(t *testing.T) {
	_, s := startServer(t)
	disp := dial(t, s, "display")
	comp := dial(t, s, "compute")

	if err := disp.Write("temper", []byte("req")); err != nil {
		t.Fatal(err)
	}
	m, err := comp.Read("display")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Trace.Valid() || m.Trace.Hops != 0 {
		t.Fatalf("remote root context = %+v", m.Trace)
	}

	if err := comp.WriteTraced("display", []byte("resp"), m.Trace); err != nil {
		t.Fatal(err)
	}
	m2, err := disp.Read("temper")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Trace.TraceID != m.Trace.TraceID || m2.Trace.Hops != 1 || m2.Trace.Parent != m.Trace.SpanID {
		t.Fatalf("child over TCP = %+v, want continuation of %+v", m2.Trace, m.Trace)
	}

	if err := disp.WriteTraced("temper", []byte("more"), m2.Trace); err != nil {
		t.Fatal(err)
	}
	m3, err := comp.Read("display")
	if err != nil {
		t.Fatal(err)
	}
	if m3.Trace.TraceID != m.Trace.TraceID || m3.Trace.Hops != 2 {
		t.Fatalf("grandchild over TCP = %+v", m3.Trace)
	}
}
