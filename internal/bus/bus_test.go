package bus

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testBus(t *testing.T, opts ...BusOption) *Bus {
	t.Helper()
	b := New(opts...)
	mustAdd := func(spec InstanceSpec) {
		t.Helper()
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(InstanceSpec{
		Name: "display", Module: "display", Machine: "m1",
		Interfaces: []IfaceSpec{{Name: "temper", Dir: InOut}},
	})
	mustAdd(InstanceSpec{
		Name: "compute", Module: "compute", Machine: "m1",
		Interfaces: []IfaceSpec{{Name: "display", Dir: InOut}, {Name: "sensor", Dir: In}},
	})
	mustAdd(InstanceSpec{
		Name: "sensor", Module: "sensor", Machine: "m1",
		Interfaces: []IfaceSpec{{Name: "out", Dir: Out}},
	})
	mustBind := func(a, c Endpoint) {
		t.Helper()
		if err := b.AddBinding(a, c); err != nil {
			t.Fatal(err)
		}
	}
	mustBind(Endpoint{"display", "temper"}, Endpoint{"compute", "display"})
	mustBind(Endpoint{"sensor", "out"}, Endpoint{"compute", "sensor"})
	return b
}

func attach(t *testing.T, b *Bus, name string) *Attachment {
	t.Helper()
	a, err := b.Attach(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDirectionSemantics(t *testing.T) {
	if !In.Receives() || In.Sends() {
		t.Error("In direction wrong")
	}
	if Out.Receives() || !Out.Sends() {
		t.Error("Out direction wrong")
	}
	if !InOut.Receives() || !InOut.Sends() {
		t.Error("InOut direction wrong")
	}
	names := map[Direction]string{In: "in", Out: "out", InOut: "inout", Direction(9): "direction(9)"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %s", int(d), d)
		}
	}
}

func TestAddInstanceValidation(t *testing.T) {
	b := New()
	if err := b.AddInstance(InstanceSpec{}); err == nil {
		t.Error("empty name accepted")
	}
	spec := InstanceSpec{Name: "x", Interfaces: []IfaceSpec{{Name: "a", Dir: In}}}
	if err := b.AddInstance(spec); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(spec); !errors.Is(err, ErrDupInstance) {
		t.Errorf("dup instance: %v", err)
	}
	if err := b.AddInstance(InstanceSpec{Name: "y", Interfaces: []IfaceSpec{{Dir: In}}}); err == nil {
		t.Error("unnamed interface accepted")
	}
	if err := b.AddInstance(InstanceSpec{
		Name:       "z",
		Interfaces: []IfaceSpec{{Name: "a", Dir: In}, {Name: "a", Dir: Out}},
	}); err == nil {
		t.Error("duplicate interface accepted")
	}
	// Default status is "add".
	info, err := b.Info("x")
	if err != nil || info.Status != StatusAdd {
		t.Errorf("Info = %+v, %v", info, err)
	}
}

func TestMessageRouting(t *testing.T) {
	b := testBus(t)
	disp := attach(t, b, "display")
	comp := attach(t, b, "compute")
	sens := attach(t, b, "sensor")

	// display requests a computation; compute receives it on its
	// "display" interface.
	if err := disp.Write("temper", []byte("req:5")); err != nil {
		t.Fatal(err)
	}
	n, err := comp.Pending("display")
	if err != nil || n != 1 {
		t.Fatalf("Pending = %d, %v", n, err)
	}
	m, err := comp.Read("display")
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "req:5" || m.From != (Endpoint{"display", "temper"}) {
		t.Errorf("message = %+v", m)
	}

	// compute replies on the same binding; display receives.
	if err := comp.Write("display", []byte("resp:68.5")); err != nil {
		t.Fatal(err)
	}
	m, err = disp.Read("temper")
	if err != nil || string(m.Data) != "resp:68.5" {
		t.Fatalf("reply = %+v, %v", m, err)
	}

	// sensor publishes; compute consumes.
	if err := sens.Write("out", []byte("t:70")); err != nil {
		t.Fatal(err)
	}
	m, ok, err := comp.TryRead("sensor")
	if err != nil || !ok || string(m.Data) != "t:70" {
		t.Fatalf("TryRead = %+v, %t, %v", m, ok, err)
	}
	if _, ok, _ := comp.TryRead("sensor"); ok {
		t.Error("TryRead on empty queue returned a message")
	}
}

func TestWriteErrors(t *testing.T) {
	b := testBus(t)
	comp := attach(t, b, "compute")
	sens := attach(t, b, "sensor")

	// compute.sensor is In: cannot write.
	if err := comp.Write("sensor", nil); !errors.Is(err, ErrDirection) {
		t.Errorf("write on In iface: %v", err)
	}
	// sensor.out cannot read.
	if _, err := sens.Read("out"); !errors.Is(err, ErrDirection) {
		t.Errorf("read on Out iface: %v", err)
	}
	if _, _, err := sens.TryRead("out"); !errors.Is(err, ErrDirection) {
		t.Errorf("tryread on Out iface: %v", err)
	}
	if _, err := sens.Pending("out"); !errors.Is(err, ErrDirection) {
		t.Errorf("pending on Out iface: %v", err)
	}
	// Unknown interface.
	if err := comp.Write("nope", nil); !errors.Is(err, ErrNoInterface) {
		t.Errorf("write on unknown iface: %v", err)
	}
	// Unbound write.
	if err := b.AddInstance(InstanceSpec{Name: "lonely", Interfaces: []IfaceSpec{{Name: "o", Dir: Out}}}); err != nil {
		t.Fatal(err)
	}
	lone := attach(t, b, "lonely")
	if err := lone.Write("o", nil); !errors.Is(err, ErrUnbound) {
		t.Errorf("unbound write: %v", err)
	}
	if b.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d", b.Stats().Dropped)
	}
}

func TestBindingValidation(t *testing.T) {
	b := testBus(t)
	// Unknown endpoints.
	if err := b.AddBinding(Endpoint{"ghost", "x"}, Endpoint{"compute", "display"}); !errors.Is(err, ErrNoInstance) {
		t.Errorf("unknown instance: %v", err)
	}
	if err := b.AddBinding(Endpoint{"compute", "ghost"}, Endpoint{"display", "temper"}); !errors.Is(err, ErrNoInterface) {
		t.Errorf("unknown interface: %v", err)
	}
	// In <-> In cannot exchange.
	if err := b.AddInstance(InstanceSpec{Name: "i2", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(Endpoint{"i2", "in"}, Endpoint{"compute", "sensor"}); !errors.Is(err, ErrDirection) {
		t.Errorf("in<->in: %v", err)
	}
	// Duplicate binding (either orientation).
	if err := b.AddBinding(Endpoint{"compute", "display"}, Endpoint{"display", "temper"}); err == nil {
		t.Error("duplicate binding accepted")
	}
	// Delete nonexistent.
	if err := b.DeleteBinding(Endpoint{"sensor", "out"}, Endpoint{"display", "temper"}); !errors.Is(err, ErrNoBinding) {
		t.Errorf("delete missing binding: %v", err)
	}
	// Delete existing, reversed orientation.
	if err := b.DeleteBinding(Endpoint{"compute", "display"}, Endpoint{"display", "temper"}); err != nil {
		t.Errorf("delete reversed: %v", err)
	}
	if got := len(b.Bindings()); got != 1 {
		t.Errorf("bindings = %d, want 1", got)
	}
}

func TestFanOutDelivery(t *testing.T) {
	// One sender bound to two receivers: both get a copy.
	b := New()
	for _, spec := range []InstanceSpec{
		{Name: "pub", Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}},
		{Name: "sub1", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}},
		{Name: "sub2", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}},
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddBinding(Endpoint{"pub", "out"}, Endpoint{"sub1", "in"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(Endpoint{"pub", "out"}, Endpoint{"sub2", "in"}); err != nil {
		t.Fatal(err)
	}
	pub := attach(t, b, "pub")
	if err := pub.Write("out", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sub1", "sub2"} {
		sub := attach(t, b, name)
		if m, err := sub.Read("in"); err != nil || string(m.Data) != "x" {
			t.Errorf("%s read = %v, %v", name, m, err)
		}
	}
	if b.Stats().Delivered != 2 {
		t.Errorf("Delivered = %d", b.Stats().Delivered)
	}
}

func TestAttachSemantics(t *testing.T) {
	b := testBus(t)
	if _, err := b.Attach("ghost"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("attach ghost: %v", err)
	}
	a := attach(t, b, "compute")
	if _, err := b.Attach("compute"); !errors.Is(err, ErrAlreadyAttached) {
		t.Errorf("double attach: %v", err)
	}
	if a.Name() != "compute" || a.Machine() != "m1" || a.Status() != StatusAdd {
		t.Errorf("attachment identity: %s %s %s", a.Name(), a.Machine(), a.Status())
	}
	info, err := b.Info("compute")
	if err != nil || info.Phase != PhaseRunning {
		t.Errorf("phase = %v, %v", info.Phase, err)
	}
}

func TestDeleteInstanceWakesReaders(t *testing.T) {
	b := testBus(t)
	comp := attach(t, b, "compute")
	errCh := make(chan error, 1)
	go func() {
		_, err := comp.Read("display")
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStopped) {
			t.Errorf("blocked read returned %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked read never woke")
	}
	if !comp.Done() {
		t.Error("attachment not Done after delete")
	}
	// Bindings referencing compute are gone.
	for _, bd := range b.Bindings() {
		if bd.A.Instance == "compute" || bd.B.Instance == "compute" {
			t.Errorf("stale binding %v", bd)
		}
	}
	if err := b.DeleteInstance("compute"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("double delete: %v", err)
	}
}

func TestSignalDeliveryAndCoalescing(t *testing.T) {
	b := testBus(t)
	comp := attach(t, b, "compute")
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	s, ok := comp.TakeSignal()
	if !ok || s.Kind != SignalReconfig {
		t.Fatalf("TakeSignal = %+v, %t", s, ok)
	}
	if _, ok := comp.TakeSignal(); ok {
		t.Error("spurious signal")
	}
	// Flooding does not block: extra signals coalesce.
	for i := 0; i < 100; i++ {
		if err := b.SignalReconfig("compute"); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SignalReconfig("ghost"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("signal ghost: %v", err)
	}
	if b.Stats().Signals != 101 {
		t.Errorf("Signals = %d", b.Stats().Signals)
	}
}

func TestDivulgeInstallMoveState(t *testing.T) {
	b := testBus(t)
	comp := attach(t, b, "compute")

	// Register the clone.
	if err := b.AddInstance(InstanceSpec{
		Name: "compute2", Module: "compute", Machine: "m2", Status: StatusClone,
		Interfaces: []IfaceSpec{{Name: "display", Dir: InOut}, {Name: "sensor", Dir: In}},
	}); err != nil {
		t.Fatal(err)
	}
	clone := attach(t, b, "compute2")
	if clone.Status() != StatusClone {
		t.Errorf("clone status = %s", clone.Status())
	}

	// The module reacts to the reconfig signal by divulging.
	go func() {
		for {
			if s, ok := comp.TakeSignal(); ok && s.Kind == SignalReconfig {
				_ = comp.Divulge([]byte("the-state"))
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	if err := b.MoveState("compute", "encode", "compute2", "decode", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	data, err := clone.AwaitState(2 * time.Second)
	if err != nil || string(data) != "the-state" {
		t.Fatalf("AwaitState = %q, %v", data, err)
	}

	info, err := b.Info("compute")
	if err != nil || info.Phase != PhaseDivulged {
		t.Errorf("old phase = %v, %v", info.Phase, err)
	}
}

func TestAwaitTimeouts(t *testing.T) {
	b := testBus(t)
	attach(t, b, "compute")
	if _, err := b.AwaitDivulged("compute", 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("AwaitDivulged: %v", err)
	}
	if _, err := b.AwaitDivulged("ghost", time.Millisecond); !errors.Is(err, ErrNoInstance) {
		t.Errorf("AwaitDivulged ghost: %v", err)
	}
	if err := b.InstallState("ghost", nil); !errors.Is(err, ErrNoInstance) {
		t.Errorf("InstallState ghost: %v", err)
	}
	if err := b.MoveState("ghost", "e", "x", "d", time.Millisecond); !errors.Is(err, ErrNoInstance) {
		t.Errorf("MoveState ghost: %v", err)
	}
}

func TestAwaitStateStopped(t *testing.T) {
	b := testBus(t)
	comp := attach(t, b, "compute")
	errCh := make(chan error, 1)
	go func() {
		_, err := comp.AwaitState(5 * time.Second)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStopped) {
			t.Errorf("AwaitState after delete: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("AwaitState never woke")
	}
}

func TestDoubleDivulgeRejected(t *testing.T) {
	b := testBus(t)
	comp := attach(t, b, "compute")
	if err := comp.Divulge([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := comp.Divulge([]byte("b")); err == nil {
		t.Error("second divulge accepted before collection")
	}
}

func TestMoveQueueAndDrain(t *testing.T) {
	b := testBus(t)
	disp := attach(t, b, "display")
	// Three requests pile up at compute while it is "busy".
	for i := 0; i < 3; i++ {
		if err := disp.Write("temper", []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddInstance(InstanceSpec{
		Name: "compute2", Module: "compute", Status: StatusClone,
		Interfaces: []IfaceSpec{{Name: "display", Dir: InOut}, {Name: "sensor", Dir: In}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.MoveQueue(Endpoint{"compute", "display"}, Endpoint{"compute2", "display"}); err != nil {
		t.Fatal(err)
	}
	clone := attach(t, b, "compute2")
	for i := 0; i < 3; i++ {
		m, err := clone.Read("display")
		if err != nil || m.Data[0] != byte('0'+i) {
			t.Fatalf("moved message %d = %+v, %v (order lost?)", i, m, err)
		}
	}
	if n, _ := attach(t, b, "compute").Pending("display"); n != 0 {
		t.Errorf("source queue still has %d", n)
	}
	if b.Stats().Moves != 3 {
		t.Errorf("Moves = %d", b.Stats().Moves)
	}

	// Drain.
	if err := disp.Write("temper", []byte("x")); err == nil {
		// write went to compute2 or compute depending on bindings; just
		// exercise DrainQueue on both.
		if _, err := b.DrainQueue(Endpoint{"compute", "display"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.DrainQueue(Endpoint{"sensor", "out"}); !errors.Is(err, ErrDirection) {
		t.Errorf("drain on Out iface: %v", err)
	}
	if err := b.MoveQueue(Endpoint{"sensor", "out"}, Endpoint{"compute", "display"}); !errors.Is(err, ErrDirection) {
		t.Errorf("move from Out iface: %v", err)
	}
	if err := b.MoveQueue(Endpoint{"ghost", "x"}, Endpoint{"compute", "display"}); !errors.Is(err, ErrNoInstance) {
		t.Errorf("move from ghost: %v", err)
	}
}

func TestRebindAtomicity(t *testing.T) {
	b := testBus(t)
	if err := b.AddInstance(InstanceSpec{
		Name: "compute2", Module: "compute", Status: StatusClone,
		Interfaces: []IfaceSpec{{Name: "display", Dir: InOut}, {Name: "sensor", Dir: In}},
	}); err != nil {
		t.Fatal(err)
	}

	// A batch whose last edit fails must leave bindings untouched.
	before := b.Bindings()
	err := b.Rebind([]BindEdit{
		{Op: "del", From: Endpoint{"display", "temper"}, To: Endpoint{"compute", "display"}},
		{Op: "add", From: Endpoint{"display", "temper"}, To: Endpoint{"compute2", "display"}},
		{Op: "del", From: Endpoint{"ghost", "x"}, To: Endpoint{"ghost", "y"}},
	})
	if err == nil {
		t.Fatal("failing batch succeeded")
	}
	if !reflect.DeepEqual(before, b.Bindings()) {
		t.Errorf("failed rebind mutated bindings:\nbefore %v\nafter  %v", before, b.Bindings())
	}

	// The full replacement batch, as Figure 5 issues it.
	err = b.Rebind([]BindEdit{
		{Op: "del", From: Endpoint{"display", "temper"}, To: Endpoint{"compute", "display"}},
		{Op: "add", From: Endpoint{"display", "temper"}, To: Endpoint{"compute2", "display"}},
		{Op: "del", From: Endpoint{"sensor", "out"}, To: Endpoint{"compute", "sensor"}},
		{Op: "add", From: Endpoint{"sensor", "out"}, To: Endpoint{"compute2", "sensor"}},
		{Op: "cq", From: Endpoint{"compute", "display"}, To: Endpoint{"compute2", "display"}},
		{Op: "rmq", From: Endpoint{"compute", "sensor"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dest, err := b.IfDest(Endpoint{"display", "temper"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dest) != 1 || dest[0] != (Endpoint{"compute2", "display"}) {
		t.Errorf("after rebind, display.temper routes to %v", dest)
	}
	if b.Stats().Rebinds != 1 {
		t.Errorf("Rebinds = %d", b.Stats().Rebinds)
	}

	// Unknown op and invalid cq/rmq targets are rejected up front.
	if err := b.Rebind([]BindEdit{{Op: "frob"}}); err == nil {
		t.Error("unknown op accepted")
	}
	if err := b.Rebind([]BindEdit{{Op: "cq", From: Endpoint{"ghost", "x"}, To: Endpoint{"compute", "display"}}}); err == nil {
		t.Error("cq from ghost accepted")
	}
	if err := b.Rebind([]BindEdit{{Op: "rmq", From: Endpoint{"sensor", "out"}}}); err == nil {
		t.Error("rmq on Out iface accepted")
	}
}

func TestIntrospection(t *testing.T) {
	b := testBus(t)
	names := b.Instances()
	if !reflect.DeepEqual(names, []string{"compute", "display", "sensor"}) {
		t.Errorf("Instances = %v", names)
	}

	info, err := b.Info("compute")
	if err != nil {
		t.Fatal(err)
	}
	if info.Module != "compute" || info.Machine != "m1" || info.Phase != PhaseAdded {
		t.Errorf("Info = %+v", info)
	}
	wantIfaces := []IfaceSpec{{Name: "display", Dir: InOut}, {Name: "sensor", Dir: In}}
	if !reflect.DeepEqual(info.Interfaces, wantIfaces) {
		t.Errorf("Interfaces = %v", info.Interfaces)
	}
	if _, err := b.Info("ghost"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("Info ghost: %v", err)
	}

	dest, err := b.IfDest(Endpoint{"display", "temper"})
	if err != nil || !reflect.DeepEqual(dest, []Endpoint{{"compute", "display"}}) {
		t.Errorf("IfDest = %v, %v", dest, err)
	}
	src, err := b.IfSources(Endpoint{"compute", "sensor"})
	if err != nil || !reflect.DeepEqual(src, []Endpoint{{"sensor", "out"}}) {
		t.Errorf("IfSources = %v, %v", src, err)
	}
	// sensor.out receives nothing.
	src, err = b.IfSources(Endpoint{"sensor", "out"})
	if err != nil || src != nil {
		t.Errorf("IfSources(out) = %v, %v", src, err)
	}
	if _, err := b.IfDest(Endpoint{"ghost", "x"}); !errors.Is(err, ErrNoInstance) {
		t.Errorf("IfDest ghost: %v", err)
	}
	if _, err := b.IfSources(Endpoint{"ghost", "x"}); !errors.Is(err, ErrNoInstance) {
		t.Errorf("IfSources ghost: %v", err)
	}
}

func TestAttrsCopied(t *testing.T) {
	b := New()
	attrs := map[string]string{"k": "v"}
	if err := b.AddInstance(InstanceSpec{Name: "x", Attrs: attrs}); err != nil {
		t.Fatal(err)
	}
	info, err := b.Info("x")
	if err != nil {
		t.Fatal(err)
	}
	info.Attrs["k"] = "mutated"
	info2, _ := b.Info("x")
	if info2.Attrs["k"] != "v" {
		t.Error("Info exposes internal attr map")
	}
}

func TestEventsRecorded(t *testing.T) {
	b := New()
	rec := NewRecorder()
	b.Observe(rec.Record)
	if err := b.AddInstance(InstanceSpec{Name: "a", Machine: "m9", Interfaces: []IfaceSpec{{Name: "o", Dir: Out}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(InstanceSpec{Name: "b", Interfaces: []IfaceSpec{{Name: "i", Dir: In}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(Endpoint{"a", "o"}, Endpoint{"b", "i"}); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteInstance("b"); err != nil {
		t.Fatal(err)
	}
	b.SyncObservers() // dispatch is async; wait for delivery
	got := rec.Strings()
	want := []string{
		"add-instance a m9",
		"add-instance b",
		"add-binding a.o <-> b.i",
		"delete-instance b",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
	for _, e := range rec.Events() {
		if e.Time.IsZero() {
			t.Error("event with zero time")
		}
	}
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventAddInstance, EventDeleteInstance, EventAddBinding, EventDeleteBinding,
		EventRebind, EventMoveQueue, EventDrainQueue, EventSignal, EventDivulge,
		EventInstallState, EventMoveState,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad name %q", int(k), s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "event(99)" {
		t.Error("unknown kind name")
	}
	if Phase(99).String() != "phase(99)" {
		t.Error("unknown phase name")
	}
	if SignalKind(99).String() != "signal(99)" {
		t.Error("unknown signal name")
	}
	if SignalStop.String() != "stop" {
		t.Error("stop signal name")
	}
}

func TestConcurrentTraffic(t *testing.T) {
	// Many writers and one reader per queue; no message may be lost or
	// duplicated.
	b := New()
	const writers = 8
	const perWriter = 200
	if err := b.AddInstance(InstanceSpec{Name: "sink", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writers; i++ {
		name := fmt.Sprintf("w%d", i)
		if err := b.AddInstance(InstanceSpec{Name: name, Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddBinding(Endpoint{name, "out"}, Endpoint{"sink", "in"}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		a := attach(t, b, fmt.Sprintf("w%d", i))
		wg.Add(1)
		go func(a *Attachment, id int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				if err := a.Write("out", []byte{byte(id)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(a, i)
	}
	sink := attach(t, b, "sink")
	counts := make([]int, writers)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writers*perWriter; i++ {
			m, err := sink.Read("in")
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			counts[m.Data[0]]++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not drain all messages")
	}
	for i, c := range counts {
		if c != perWriter {
			t.Errorf("writer %d delivered %d, want %d", i, c, perWriter)
		}
	}
	if got := b.Stats().Delivered; got != writers*perWriter {
		t.Errorf("Delivered = %d", got)
	}
}

func TestWriteToDeletedReceiverDropsQuietly(t *testing.T) {
	b := testBus(t)
	disp := attach(t, b, "display")
	// Delete compute after binding lookup would target it: simulate the
	// race by deleting, then writing; the binding is already gone so the
	// write errors as unbound, which is the visible behavior.
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
	if err := disp.Write("temper", []byte("x")); !errors.Is(err, ErrUnbound) {
		t.Errorf("write after receiver delete: %v", err)
	}
}
