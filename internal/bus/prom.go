package bus

import (
	"strings"

	"repro/internal/telemetry"
)

// PromLabelRules returns the label rules that turn the repository's flat
// dotted metric names into labeled Prometheus families, giving per-instance
// attribution in a scrape:
//
//	bus.iface.<inst>.<iface>.delivered -> bus_iface_delivered{instance,interface}
//	mh.<inst>.flag_checks              -> mh_flag_checks{instance}
//	selfheal.<group>.members           -> selfheal_members{group}
//
// Instance names may contain dots (replica members are "<group>.<n>"), so
// the rules peel the metric and interface segments — which are dotless by
// construction — off the right-hand side and treat the remainder as the
// instance name. Unrecognized names fall through to flat rendering.
func PromLabelRules() []telemetry.LabelRule {
	return []telemetry.LabelRule{busIfaceRule, mhRule, selfhealRule}
}

// trimKnownSuffix peels the last dotted segment off name and reports it if
// it is one of the known metric segments.
func trimKnownSuffix(name string, known []string) (rest, metric string) {
	for _, m := range known {
		if strings.HasSuffix(name, "."+m) {
			return strings.TrimSuffix(name, "."+m), m
		}
	}
	return "", ""
}

func busIfaceRule(name string) (string, []telemetry.Label) {
	const prefix = "bus.iface."
	if !strings.HasPrefix(name, prefix) {
		return "", nil
	}
	rest, metric := trimKnownSuffix(strings.TrimPrefix(name, prefix),
		[]string{"sent", "delivered", "queue_depth", "delivery_latency_ns"})
	if metric == "" {
		return "", nil
	}
	// rest is "<instance>.<interface>" with a dotless interface segment.
	i := strings.LastIndexByte(rest, '.')
	if i <= 0 || i == len(rest)-1 {
		return "", nil
	}
	return "bus_iface_" + metric, []telemetry.Label{
		{Name: "instance", Value: rest[:i]},
		{Name: "interface", Value: rest[i+1:]},
	}
}

func mhRule(name string) (string, []telemetry.Label) {
	const prefix = "mh."
	if !strings.HasPrefix(name, prefix) {
		return "", nil
	}
	rest, metric := trimKnownSuffix(strings.TrimPrefix(name, prefix),
		[]string{"flag_checks", "capture_ns", "restore_ns", "errors"})
	if metric == "" || rest == "" {
		return "", nil
	}
	return "mh_" + metric, []telemetry.Label{{Name: "instance", Value: rest}}
}

func selfhealRule(name string) (string, []telemetry.Label) {
	const prefix = "selfheal."
	if !strings.HasPrefix(name, prefix) {
		return "", nil
	}
	rest, metric := trimKnownSuffix(strings.TrimPrefix(name, prefix),
		[]string{"members", "pending"})
	if metric == "" || rest == "" {
		return "", nil
	}
	return "selfheal_" + metric, []telemetry.Label{{Name: "group", Value: rest}}
}
