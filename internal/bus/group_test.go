package bus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// addGroupFixture builds a bus with a 3-member replica group "pool" (in/out
// interfaces), a sender bound to the group's in side, and a collector bound
// from the group's out side.
func addGroupFixture(t *testing.T, policy string) (*Bus, []string) {
	t.Helper()
	b := New()
	shape := []IfaceSpec{{Name: "in", Dir: In}, {Name: "out", Dir: Out}}
	if err := b.AddGroup("pool", policy, shape); err != nil {
		t.Fatal(err)
	}
	members := []string{"pool.1", "pool.2", "pool.3"}
	for _, m := range members {
		if err := b.AddInstance(InstanceSpec{Name: m, Interfaces: shape}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddGroupMember("pool", m); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddInstance(InstanceSpec{Name: "feeder", Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(InstanceSpec{Name: "coll", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(Endpoint{"feeder", "out"}, Endpoint{"pool", "in"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(Endpoint{"pool", "out"}, Endpoint{"coll", "in"}); err != nil {
		t.Fatal(err)
	}
	return b, members
}

func TestGroupRoundRobinFanIn(t *testing.T) {
	b, members := addGroupFixture(t, PolicyRoundRobin)
	feeder, err := b.Attach("feeder")
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := feeder.Write("out", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range members {
		info, err := b.Info(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := info.Pending["in"]; got != n/3 {
			t.Errorf("%s pending = %d, want %d", m, got, n/3)
		}
	}
}

func TestGroupLeastQueuePolicy(t *testing.T) {
	b, members := addGroupFixture(t, PolicyLeastQueue)
	// Preload pool.1 and pool.2 so the shallowest queue is pool.3.
	for _, m := range members[:2] {
		in, _ := b.Attach(m)
		_ = in // members just hold their queues; preload via direct binding
	}
	feeder, err := b.Attach("feeder")
	if err != nil {
		t.Fatal(err)
	}
	// First three writes round out evenly under leastqueue too (all empty);
	// drain pool.3 and verify the next write lands there again.
	for i := 0; i < 3; i++ {
		if err := feeder.Write("out", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	third, err := b.Attach(members[2])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := third.TryRead("in"); err != nil || !ok {
		t.Fatalf("pool.3 got no message under leastqueue: ok=%v err=%v", ok, err)
	}
	if err := feeder.Write("out", []byte{99}); err != nil {
		t.Fatal(err)
	}
	m, ok, err := third.TryRead("in")
	if err != nil || !ok || m.Data[0] != 99 {
		t.Errorf("leastqueue did not target the shallowest member: ok=%v err=%v", ok, err)
	}
}

func TestGroupMemberReplyRouting(t *testing.T) {
	// A member writing on its own out interface inherits the group's
	// binding: the message lands at the collector.
	b, members := addGroupFixture(t, "")
	m0, err := b.Attach(members[0])
	if err != nil {
		t.Fatal(err)
	}
	coll, err := b.Attach("coll")
	if err != nil {
		t.Fatal(err)
	}
	if err := m0.Write("out", []byte("reply")); err != nil {
		t.Fatal(err)
	}
	msg, err := coll.Read("in")
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "reply" {
		t.Errorf("collector got %q", msg.Data)
	}
	if msg.From != (Endpoint{members[0], "out"}) {
		t.Errorf("From = %v", msg.From)
	}
}

func TestGroupValidation(t *testing.T) {
	b := New()
	shape := []IfaceSpec{{Name: "in", Dir: In}}
	if err := b.AddGroup("g", "fastest", shape); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := b.AddGroup("", "", shape); err == nil {
		t.Error("empty group name accepted")
	}
	if err := b.AddGroup("g", "", shape); err != nil {
		t.Fatal(err)
	}
	if err := b.AddGroup("g", "", shape); !errors.Is(err, ErrDupInstance) {
		t.Errorf("dup group = %v", err)
	}
	if err := b.AddInstance(InstanceSpec{Name: "g", Interfaces: shape}); !errors.Is(err, ErrDupInstance) {
		t.Errorf("instance shadowing group = %v", err)
	}
	if err := b.AddGroup("h", "", shape); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(Endpoint{"g", "in"}, Endpoint{"h", "in"}); err == nil {
		t.Error("group-to-group binding accepted")
	}
	// Shape mismatch: member lacks the group interface.
	if err := b.AddInstance(InstanceSpec{Name: "odd", Interfaces: []IfaceSpec{{Name: "zzz", Dir: In}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddGroupMember("g", "odd"); err == nil {
		t.Error("shape-mismatched member accepted")
	}
	if err := b.AddGroupMember("nope", "odd"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("unknown group = %v", err)
	}
	if err := b.AddGroupMember("g", "ghost"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("unknown member = %v", err)
	}
	if err := b.RemoveGroupMember("g", "odd"); err == nil {
		t.Error("removing a non-member succeeded")
	}
}

func TestRemoveGroupMemberRequeuesBacklog(t *testing.T) {
	b, members := addGroupFixture(t, PolicyRoundRobin)
	feeder, err := b.Attach("feeder")
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := feeder.Write("out", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ver := b.Routing().Version()
	if err := b.RemoveGroupMember("pool", members[0]); err != nil {
		t.Fatal(err)
	}
	if got := b.Routing().Version(); got != ver+1 {
		t.Errorf("membership change did not publish one epoch: %d -> %d", ver, got)
	}
	// The dead member's 10 messages moved to the survivors; none lost.
	total := 0
	for _, m := range members[1:] {
		info, err := b.Info(m)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Pending["in"]
	}
	if total != n {
		t.Errorf("survivors hold %d messages, want %d", total, n)
	}
	if info, _ := b.Info(members[0]); info.Pending["in"] != 0 {
		t.Errorf("removed member still holds %d messages", info.Pending["in"])
	}
	if ms, _ := b.GroupMembers("pool"); len(ms) != 2 {
		t.Errorf("members = %v", ms)
	}
	// New traffic flows to survivors only.
	for i := 0; i < 10; i++ {
		if err := feeder.Write("out", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if info, _ := b.Info(members[0]); info.Pending["in"] != 0 {
		t.Error("removed member received new traffic")
	}
}

func TestRemoveLastGroupMemberKeepsBacklog(t *testing.T) {
	b := New()
	shape := []IfaceSpec{{Name: "in", Dir: In}}
	if err := b.AddGroup("solo", "", shape); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(InstanceSpec{Name: "solo.1", Interfaces: shape}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddGroupMember("solo", "solo.1"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(InstanceSpec{Name: "src", Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(Endpoint{"src", "out"}, Endpoint{"solo", "in"}); err != nil {
		t.Fatal(err)
	}
	src, err := b.Attach("src")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := src.Write("out", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.RemoveGroupMember("solo", "solo.1"); err != nil {
		t.Fatal(err)
	}
	// No survivor: the backlog stays at the fenced member for a later cq.
	if info, _ := b.Info("solo.1"); info.Pending["in"] != 5 {
		t.Errorf("fenced member holds %d messages, want 5", info.Pending["in"])
	}
}

// TestConcurrentSendVsMembership hammers the group fan-in from 16 senders
// while the membership flips a member out and back in repeatedly. Exactly
// -once delivery must hold: every sent message lands on exactly one member
// (or the removed member's backlog is requeued), with zero loss and zero
// duplication. Run under -race.
func TestConcurrentSendVsMembership(t *testing.T) {
	const (
		senders   = 16
		perSender = 300
		flips     = 30
	)
	b := New()
	shape := []IfaceSpec{{Name: "in", Dir: In}}
	if err := b.AddGroup("pool", PolicyRoundRobin, shape); err != nil {
		t.Fatal(err)
	}
	members := []string{"pool.1", "pool.2", "pool.3"}
	for _, m := range members {
		if err := b.AddInstance(InstanceSpec{Name: m, Interfaces: shape}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddGroupMember("pool", m); err != nil {
			t.Fatal(err)
		}
	}
	sendNames := make([]string, senders)
	atts := make([]*Attachment, senders)
	for i := range sendNames {
		sendNames[i] = fmt.Sprintf("s%d", i)
		if err := b.AddInstance(InstanceSpec{Name: sendNames[i], Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddBinding(Endpoint{sendNames[i], "out"}, Endpoint{"pool", "in"}); err != nil {
			t.Fatal(err)
		}
		a, err := b.Attach(sendNames[i])
		if err != nil {
			t.Fatal(err)
		}
		atts[i] = a
	}

	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(id int, a *Attachment) {
			defer wg.Done()
			for seq := 0; seq < perSender; seq++ {
				payload := make([]byte, 8)
				binary.BigEndian.PutUint32(payload[0:4], uint32(id))
				binary.BigEndian.PutUint32(payload[4:8], uint32(seq))
				if err := a.Write("out", payload); err != nil {
					t.Errorf("sender %d seq %d: %v", id, seq, err)
					return
				}
			}
		}(i, atts[i])
	}
	flipDone := make(chan struct{})
	go func() {
		defer close(flipDone)
		for f := 0; f < flips; f++ {
			victim := members[f%len(members)]
			if err := b.RemoveGroupMember("pool", victim); err != nil {
				t.Errorf("flip %d remove: %v", f, err)
				return
			}
			if err := b.AddGroupMember("pool", victim); err != nil {
				t.Errorf("flip %d re-add: %v", f, err)
				return
			}
		}
	}()
	wg.Wait()
	<-flipDone

	// Drain every member queue and account for exactly-once delivery.
	seen := make(map[uint64]bool, senders*perSender)
	for _, m := range members {
		a, err := b.Attach(m)
		if err != nil {
			t.Fatal(err)
		}
		for {
			msg, ok, err := a.TryRead("in")
			if err != nil || !ok {
				break
			}
			key := binary.BigEndian.Uint64(msg.Data)
			if seen[key] {
				t.Errorf("duplicate delivery of %x", key)
			}
			seen[key] = true
		}
	}
	if len(seen) != senders*perSender {
		t.Errorf("delivered %d distinct messages, want %d (lost %d)",
			len(seen), senders*perSender, senders*perSender-len(seen))
	}
}
