package bus

import (
	"testing"

	"repro/internal/archlint"
)

// TestBusMutexStaysInBusGo pins the layering of the package: the
// control-plane writer lock (Bus.mu) is an implementation detail of bus.go.
// The queueing and transport layers reach the routing layer only through
// the snapshot and the narrow editor, never by grabbing the global lock —
// this is what makes the steady-state Send/Deliver path lock-free. The test
// fails if any non-test file other than bus.go touches the mutex (the
// historical leak was attach.go locking a.bus.mu directly).
//
// The check itself is archlint's AL003 pass, which resolves the mu field to
// the Bus struct through go/types — any receiver spelling is caught, and
// the unrelated msgQueue/stateBox locks stay out of scope by type rather
// than by regex. The related disciplines ride along: nothing blocks while
// Bus.mu is held (AL004), queue locks never wrap Bus.mu (AL005), and the
// routing snapshot is only touched through the atomic protocol (AL006).
func TestBusMutexStaysInBusGo(t *testing.T) {
	report, err := archlint.Run(archlint.Config{Dir: "../.."})
	if err != nil {
		t.Fatalf("archlint: %v", err)
	}
	for _, code := range []string{
		archlint.CodeMuConfine,
		archlint.CodeBlockUnderMu,
		archlint.CodeLockOrder,
		archlint.CodeSnapshot,
	} {
		for _, d := range report.ByCode(code) {
			t.Errorf("%s", d)
		}
	}
}
