package bus

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestBusMutexStaysInBusGo pins the layering of the package: the
// control-plane writer lock (Bus.mu) is an implementation detail of bus.go.
// The queueing and transport layers reach the routing layer only through
// the snapshot and the narrow editor, never by grabbing the global lock —
// this is what makes the steady-state Send/Deliver path lock-free. The test
// fails if any non-test file other than bus.go mentions the mutex (the
// historical leak was attach.go locking a.bus.mu directly).
func TestBusMutexStaysInBusGo(t *testing.T) {
	// Matches b.mu / bus.mu as a field access; \b on the left keeps
	// sb.mu (stateBox) and q.mu (msgQueue) out of scope.
	busMu := regexp.MustCompile(`\b(b|bus)\.mu\b`)
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || name == "bus.go" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(".", name))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if busMu.MatchString(line) {
				t.Errorf("%s:%d: references the global bus mutex outside bus.go: %s", name, i+1, strings.TrimSpace(line))
			}
		}
	}
}
