package bus

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func applyRules(t *testing.T, name string) (string, []telemetry.Label) {
	t.Helper()
	for _, rule := range PromLabelRules() {
		if family, labels := rule(name); family != "" {
			return family, labels
		}
	}
	return "", nil
}

func TestPromLabelRules(t *testing.T) {
	cases := []struct {
		name   string
		family string
		labels map[string]string
	}{
		{"bus.iface.display.temper.delivered", "bus_iface_delivered",
			map[string]string{"instance": "display", "interface": "temper"}},
		{"bus.iface.pool.2.req.queue_depth", "bus_iface_queue_depth",
			map[string]string{"instance": "pool.2", "interface": "req"}},
		{"bus.iface.pool.2.req.delivery_latency_ns", "bus_iface_delivery_latency_ns",
			map[string]string{"instance": "pool.2", "interface": "req"}},
		{"mh.pool.2.errors", "mh_errors", map[string]string{"instance": "pool.2"}},
		{"mh.worker.flag_checks", "mh_flag_checks", map[string]string{"instance": "worker"}},
		{"selfheal.pool.members", "selfheal_members", map[string]string{"group": "pool"}},
		// Unknown metric segments fall through to flat rendering.
		{"bus.iface.display.temper.bogus", "", nil},
		{"selfheal.recovery_ns", "", nil},
		{"tx.commit_ns", "", nil},
	}
	for _, tc := range cases {
		family, labels := applyRules(t, tc.name)
		if family != tc.family {
			t.Errorf("%s: family = %q, want %q", tc.name, family, tc.family)
			continue
		}
		got := map[string]string{}
		for _, l := range labels {
			got[l.Name] = l.Value
		}
		for k, v := range tc.labels {
			if got[k] != v {
				t.Errorf("%s: label %s = %q, want %q", tc.name, k, got[k], v)
			}
		}
	}
}

// TestPromLabeledExposition exercises the rules end to end through
// WritePrometheus: a dotted replica instance renders as one labeled series
// per (instance, interface), not a flat mangled name.
func TestPromLabeledExposition(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("bus.iface.pool.1.req.delivered").Add(5)
	r.Counter("bus.iface.pool.2.req.delivered").Add(8)

	var b strings.Builder
	telemetry.WritePrometheus(&b, r, PromLabelRules()...)
	out := b.String()
	for _, want := range []string{
		"# TYPE bus_iface_delivered counter\n",
		`bus_iface_delivered{instance="pool.1",interface="req"} 5`,
		`bus_iface_delivered{instance="pool.2",interface="req"} 8`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE bus_iface_delivered") != 1 {
		t.Errorf("family TYPE line repeated:\n%s", out)
	}
}
