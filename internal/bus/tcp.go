package bus

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// This file implements the wire protocol that lets a module attach to the
// bus from another OS process — the reproduction's stand-in for POLYLITH's
// heterogeneous hosts. The protocol is a small full-duplex RPC over one TCP
// connection, gob-framed:
//
//	client -> server: clientFrame (hello first, then requests)
//	server -> client: serverFrame (hello ack, responses, pushed signals,
//	                   deletion notice)
//
// Blocking operations (Read, AwaitState) are served in per-request
// goroutines so one blocked read never stalls the connection.

type clientFrame struct {
	ID        uint64
	Op        string // "hello","write","writebatch","read","tryread","pending","divulge","awaitstate","confirmrestore"
	Instance  string // hello only
	Iface     string
	Data      []byte // payload; for confirmrestore, the error text ("" = success)
	TimeoutMs int64
	// Trace carries the causal parent of a "write". Gob omits zero-valued
	// struct fields and drops fields unknown to the receiver, so frames from
	// pre-trace peers decode unchanged and pre-trace peers ignore this field
	// (pinned by the golden-bytes test in tcp_test.go).
	Trace TraceContext
	// Batch carries the payloads of a "writebatch": one frame, one routing
	// pass on the serving bus. Like Trace, gob's zero-field omission keeps
	// plain-write frames byte-identical to pre-batch peers.
	Batch [][]byte
}

// Frame staging buffers and frame structs are pooled so the steady-state
// wire path allocates nothing per message beyond what gob itself needs:
// each Encode stages into a pooled bytes.Buffer (reaching the socket in a
// single Write), and the frame value handed to gob is a pooled pointer so
// the interface conversion does not heap-allocate a fresh frame per call.
var (
	encBufPool      = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	clientFramePool = sync.Pool{New: func() any { return new(clientFrame) }}
	serverFramePool = sync.Pool{New: func() any { return new(serverFrame) }}
)

// connEncoder serializes gob frames onto one connection through a pooled
// staging buffer. The gob encoder must stay bound to the stream for its
// lifetime (type descriptors are sent once), so it is constructed over the
// connEncoder itself; encode() points the writes at a pooled buffer and
// flushes the finished frame to the socket in one Write.
type connEncoder struct {
	mu  sync.Mutex
	enc *gob.Encoder
	dst io.Writer
	buf *bytes.Buffer // staging target, set for the duration of one encode
}

func newConnEncoder(conn io.Writer) *connEncoder {
	ce := &connEncoder{dst: conn}
	ce.enc = gob.NewEncoder(ce)
	return ce
}

// Write implements io.Writer for the inner gob encoder: bytes land in the
// current staging buffer.
func (ce *connEncoder) Write(p []byte) (int, error) { return ce.buf.Write(p) }

func (ce *connEncoder) encode(v any) error {
	ce.mu.Lock()
	defer ce.mu.Unlock()
	buf := encBufPool.Get().(*bytes.Buffer)
	ce.buf = buf
	err := ce.enc.Encode(v)
	ce.buf = nil
	if err == nil {
		_, err = ce.dst.Write(buf.Bytes())
	}
	buf.Reset()
	encBufPool.Put(buf)
	return err
}

type helloAck struct {
	Name    string
	Machine string
	Status  string
}

type serverFrame struct {
	ID      uint64
	Hello   *helloAck
	Err     string
	ErrKind string // sentinel key, see errKind/errFromKind
	Msg     *Message
	OK      bool
	N       int
	Data    []byte
	Signal  *Signal
	Deleted bool
}

// errKind maps bus sentinels to stable wire keys so errors.Is keeps working
// across the connection.
func errKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrStopped):
		return "stopped"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrUnbound):
		return "unbound"
	case errors.Is(err, ErrDirection):
		return "direction"
	case errors.Is(err, ErrNoInterface):
		return "nointerface"
	case errors.Is(err, ErrNoInstance):
		return "noinstance"
	default:
		return "other"
	}
}

func errFromKind(kind, msg string) error {
	var sentinel error
	switch kind {
	case "":
		return nil
	case "stopped":
		sentinel = ErrStopped
	case "timeout":
		sentinel = ErrTimeout
	case "unbound":
		sentinel = ErrUnbound
	case "direction":
		sentinel = ErrDirection
	case "nointerface":
		sentinel = ErrNoInterface
	case "noinstance":
		sentinel = ErrNoInstance
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%w (remote: %s)", sentinel, msg)
}

// rpcOps is the fixed RPC vocabulary, used to pre-resolve per-op counters.
var rpcOps = []string{"write", "writebatch", "read", "tryread", "pending", "divulge", "awaitstate", "confirmrestore"}

// Server accepts TCP attachments for a bus.
type Server struct {
	bus *Bus
	l   net.Listener
	rpc map[string]*telemetry.Counter // per-op request counters (nil values = no-op)

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewServer starts serving attachments on l. Close the server to stop.
func NewServer(b *Bus, l net.Listener) *Server {
	s := &Server{bus: b, l: l, conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
	s.rpc = make(map[string]*telemetry.Counter, len(rpcOps)+1)
	for _, op := range rpcOps {
		s.rpc[op] = b.Telemetry().Counter("bus.rpc." + op)
	}
	s.rpc["unknown"] = b.Telemetry().Counter("bus.rpc.unknown")
	go s.acceptLoop() //archlint:spawn accept loop; exits when the listener closes
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// Close stops accepting and closes all connections. It is idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.l.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn) //archlint:spawn per-connection handler; exits on conn close, tracked in s.conns
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := newConnEncoder(conn)
	send := func(f serverFrame) error {
		pf := serverFramePool.Get().(*serverFrame)
		*pf = f
		err := enc.encode(pf)
		*pf = serverFrame{}
		serverFramePool.Put(pf)
		return err
	}

	// Handshake.
	var hello clientFrame
	if err := dec.Decode(&hello); err != nil {
		return
	}
	if hello.Op != "hello" {
		_ = send(serverFrame{ID: hello.ID, Err: "expected hello", ErrKind: "other"})
		return
	}
	att, err := s.bus.Attach(hello.Instance)
	if err != nil {
		_ = send(serverFrame{ID: hello.ID, Err: err.Error(), ErrKind: errKind(err)})
		return
	}
	if err := send(serverFrame{ID: hello.ID, Hello: &helloAck{
		Name: att.Name(), Machine: att.Machine(), Status: att.Status(),
	}}); err != nil {
		return
	}

	// Push signals and the deletion notice.
	stopPush := make(chan struct{})
	defer close(stopPush)
	go func() { //archlint:spawn signal push pump; exits via stopPush on handshake teardown
		for {
			select {
			case sig, ok := <-att.Signals():
				if !ok {
					return
				}
				if err := send(serverFrame{Signal: &sig}); err != nil {
					return
				}
			case <-att.doneChan():
				_ = send(serverFrame{Deleted: true})
				return
			case <-stopPush:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		var req clientFrame
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection torn down; nothing to report to.
				_ = err
			}
			return
		}
		wg.Add(1)
		go func(req clientFrame) { //archlint:spawn per-request handler; joined via wg before conn teardown
			defer wg.Done()
			_ = send(s.handle(att, req))
		}(req)
	}
}

func (s *Server) handle(att *Attachment, req clientFrame) serverFrame {
	if c, ok := s.rpc[req.Op]; ok {
		c.Inc()
	} else {
		s.rpc["unknown"].Inc()
	}
	resp := serverFrame{ID: req.ID}
	fail := func(err error) serverFrame {
		resp.Err = err.Error()
		resp.ErrKind = errKind(err)
		return resp
	}
	switch req.Op {
	case "write":
		if err := att.WriteTraced(req.Iface, req.Data, req.Trace); err != nil {
			return fail(err)
		}
	case "writebatch":
		if err := att.WriteBatchTraced(req.Iface, req.Batch, req.Trace); err != nil {
			return fail(err)
		}
	case "read":
		m, err := att.Read(req.Iface)
		if err != nil {
			return fail(err)
		}
		resp.Msg = &m
		resp.OK = true
	case "tryread":
		m, ok, err := att.TryRead(req.Iface)
		if err != nil {
			return fail(err)
		}
		resp.OK = ok
		if ok {
			resp.Msg = &m
		}
	case "pending":
		n, err := att.Pending(req.Iface)
		if err != nil {
			return fail(err)
		}
		resp.N = n
	case "divulge":
		if err := att.Divulge(req.Data); err != nil {
			return fail(err)
		}
	case "awaitstate":
		data, err := att.AwaitState(time.Duration(req.TimeoutMs) * time.Millisecond)
		if err != nil {
			return fail(err)
		}
		resp.Data = data
	case "confirmrestore":
		var restoreErr error
		if len(req.Data) > 0 {
			restoreErr = errors.New(string(req.Data))
		}
		if err := att.ConfirmRestore(restoreErr); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("bus: unknown rpc op %q", req.Op))
	}
	return resp
}

// RemotePort is a Port backed by a TCP connection to a bus Server.
type RemotePort struct {
	conn        net.Conn
	enc         *connEncoder
	hello       helloAck
	callTimeout time.Duration
	faults      *faultinject.Set

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan serverFrame
	signals chan Signal
	deleted bool
	closed  bool
	readErr error
}

var _ Port = (*RemotePort)(nil)

// DialOptions tunes the client side of a TCP attachment.
type DialOptions struct {
	// Retries is the number of additional dial attempts after the first
	// fails (connection refused, network error). 0 means dial exactly once.
	Retries int
	// Backoff is the wait before the first retry; it doubles per attempt.
	// Defaults to 50ms when Retries > 0.
	Backoff time.Duration
	// CallTimeout bounds each RPC round trip. 0 disables the bound — the
	// right choice for module data-plane ports, whose Read legitimately
	// blocks until traffic arrives. Control-plane callers set it so a hung
	// or partitioned peer surfaces as ErrTimeout instead of a stall.
	CallTimeout time.Duration
	// Faults is the failpoint set for the tcp.dial and tcp.call sites;
	// nil means faultinject.Default().
	Faults *faultinject.Set
}

// DialPort attaches to the instance name on the bus server at addr.
func DialPort(addr, instance string) (*RemotePort, error) {
	return DialPortWith(addr, instance, DialOptions{})
}

// DialPortWith attaches like DialPort, retrying the dial with exponential
// backoff and applying a per-call timeout per opts.
func DialPortWith(addr, instance string, opts DialOptions) (*RemotePort, error) {
	faults := opts.Faults
	if faults == nil {
		faults = faultinject.Default()
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var conn net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		if ferr := faults.Fire("tcp.dial"); ferr != nil {
			err = ferr
		} else {
			conn, err = net.Dial("tcp", addr)
		}
		if err == nil {
			break
		}
		if attempt >= opts.Retries {
			return nil, fmt.Errorf("bus: dial %s (%d attempts): %w", addr, attempt+1, err)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	p := &RemotePort{
		conn:        conn,
		enc:         newConnEncoder(conn),
		callTimeout: opts.CallTimeout,
		faults:      faults,
		waiting:     map[uint64]chan serverFrame{},
		signals:     make(chan Signal, 16),
	}
	dec := gob.NewDecoder(conn)
	// Handshake synchronously before starting the demux loop.
	if err := p.enc.encode(&clientFrame{ID: 0, Op: "hello", Instance: instance}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("bus: hello: %w", err)
	}
	var ack serverFrame
	if err := dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("bus: hello ack: %w", err)
	}
	if ack.Err != "" {
		conn.Close()
		return nil, fmt.Errorf("bus: attach %s: %w", instance, errFromKind(ack.ErrKind, ack.Err))
	}
	if ack.Hello == nil {
		conn.Close()
		return nil, errors.New("bus: malformed hello ack")
	}
	p.hello = *ack.Hello
	go p.demux(dec) //archlint:spawn client demux; exits when the connection closes
	return p, nil
}

func (p *RemotePort) demux(dec *gob.Decoder) {
	for {
		var f serverFrame
		if err := dec.Decode(&f); err != nil {
			p.mu.Lock()
			p.closed = true
			p.readErr = err
			for _, ch := range p.waiting {
				close(ch)
			}
			p.waiting = map[uint64]chan serverFrame{}
			p.mu.Unlock()
			return
		}
		switch {
		case f.Signal != nil:
			select {
			case p.signals <- *f.Signal:
			default: // coalesce
			}
		case f.Deleted:
			p.mu.Lock()
			p.deleted = true
			p.mu.Unlock()
		default:
			p.mu.Lock()
			ch, ok := p.waiting[f.ID]
			if ok {
				delete(p.waiting, f.ID)
			}
			p.mu.Unlock()
			if ok {
				ch <- f
			}
		}
	}
}

// Close tears down the connection. Blocked calls fail with ErrStopped.
func (p *RemotePort) Close() error { return p.conn.Close() }

func (p *RemotePort) call(req clientFrame) (serverFrame, error) {
	if err := p.faults.Fire("tcp.call"); err != nil {
		return serverFrame{}, fmt.Errorf("bus: rpc %s: %w", req.Op, err)
	}
	ch := make(chan serverFrame, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return serverFrame{}, fmt.Errorf("%w: connection closed", ErrStopped)
	}
	p.nextID++
	req.ID = p.nextID
	p.waiting[req.ID] = ch
	p.mu.Unlock()

	pf := clientFramePool.Get().(*clientFrame)
	*pf = req
	err := p.enc.encode(pf)
	*pf = clientFrame{}
	clientFramePool.Put(pf)
	if err != nil {
		p.mu.Lock()
		delete(p.waiting, req.ID)
		p.mu.Unlock()
		return serverFrame{}, fmt.Errorf("%w: send: %v", ErrStopped, err)
	}
	var timeoutC <-chan time.Time
	if p.callTimeout > 0 {
		timer := time.NewTimer(p.callTimeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return serverFrame{}, fmt.Errorf("%w: connection closed", ErrStopped)
		}
		if f.Err != "" {
			return serverFrame{}, errFromKind(f.ErrKind, f.Err)
		}
		return f, nil
	case <-timeoutC:
		// Abandon the call; ch is buffered so a late response from the
		// demux loop is simply dropped.
		p.mu.Lock()
		delete(p.waiting, req.ID)
		p.mu.Unlock()
		return serverFrame{}, fmt.Errorf("bus: rpc %s: %w after %v", req.Op, ErrTimeout, p.callTimeout)
	}
}

// Name implements Port.
func (p *RemotePort) Name() string { return p.hello.Name }

// Machine implements Port.
func (p *RemotePort) Machine() string { return p.hello.Machine }

// Status implements Port.
func (p *RemotePort) Status() string { return p.hello.Status }

// Write implements Port.
func (p *RemotePort) Write(iface string, data []byte) error {
	_, err := p.call(clientFrame{Op: "write", Iface: iface, Data: data})
	return err
}

// WriteTraced implements TracedWriter: the parent context crosses the wire
// in the frame and the serving bus stamps the child span, so causal chains
// survive the TCP hop.
func (p *RemotePort) WriteTraced(iface string, data []byte, parent TraceContext) error {
	_, err := p.call(clientFrame{Op: "write", Iface: iface, Data: data, Trace: parent})
	return err
}

// SendBatch implements Port: the whole batch crosses the wire in one frame
// and the serving bus routes it in one pass, so the RPC round trip — the
// dominant cost of a remote write — is also amortized over the batch.
func (p *RemotePort) SendBatch(iface string, batch [][]byte) error {
	if len(batch) == 0 {
		return nil
	}
	_, err := p.call(clientFrame{Op: "writebatch", Iface: iface, Batch: batch})
	return err
}

// WriteBatchTraced implements BatchTracedWriter over the wire.
func (p *RemotePort) WriteBatchTraced(iface string, batch [][]byte, parent TraceContext) error {
	if len(batch) == 0 {
		return nil
	}
	_, err := p.call(clientFrame{Op: "writebatch", Iface: iface, Batch: batch, Trace: parent})
	return err
}

// Read implements Port.
func (p *RemotePort) Read(iface string) (Message, error) {
	f, err := p.call(clientFrame{Op: "read", Iface: iface})
	if err != nil {
		return Message{}, err
	}
	if f.Msg == nil {
		return Message{}, errors.New("bus: malformed read response")
	}
	return *f.Msg, nil
}

// TryRead implements Port.
func (p *RemotePort) TryRead(iface string) (Message, bool, error) {
	f, err := p.call(clientFrame{Op: "tryread", Iface: iface})
	if err != nil {
		return Message{}, false, err
	}
	if !f.OK {
		return Message{}, false, nil
	}
	if f.Msg == nil {
		return Message{}, false, errors.New("bus: malformed tryread response")
	}
	return *f.Msg, true, nil
}

// Pending implements Port.
func (p *RemotePort) Pending(iface string) (int, error) {
	f, err := p.call(clientFrame{Op: "pending", Iface: iface})
	if err != nil {
		return 0, err
	}
	return f.N, nil
}

// TakeSignal implements Port.
func (p *RemotePort) TakeSignal() (Signal, bool) {
	select {
	case s := <-p.signals:
		return s, true
	default:
		return Signal{}, false
	}
}

// Divulge implements Port.
func (p *RemotePort) Divulge(data []byte) error {
	_, err := p.call(clientFrame{Op: "divulge", Data: data})
	return err
}

// ConfirmRestore reports the outcome of this clone's restoration to the
// remote bus (see Attachment.ConfirmRestore).
func (p *RemotePort) ConfirmRestore(restoreErr error) error {
	var data []byte
	if restoreErr != nil {
		data = []byte(restoreErr.Error())
	}
	_, err := p.call(clientFrame{Op: "confirmrestore", Data: data})
	return err
}

// AwaitState implements Port.
func (p *RemotePort) AwaitState(timeout time.Duration) ([]byte, error) {
	f, err := p.call(clientFrame{Op: "awaitstate", TimeoutMs: int64(timeout / time.Millisecond)})
	if err != nil {
		return nil, err
	}
	return f.Data, nil
}

// Done implements Port.
func (p *RemotePort) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deleted || p.closed
}
