package bus

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEventNamesExhaustive walks every EventKind up to the numEventKinds
// sentinel and fails if eventNames has drifted: a kind without an entry, a
// duplicate name, or a stale map entry for a removed kind.
func TestEventNamesExhaustive(t *testing.T) {
	seen := map[string]EventKind{}
	for k := EventKind(1); k < numEventKinds; k++ {
		name, ok := eventNames[k]
		if !ok {
			t.Errorf("EventKind %d has no eventNames entry (String() = %q)", int(k), k.String())
			continue
		}
		if name == "" {
			t.Errorf("EventKind %d has empty name", int(k))
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("name %q used by both kind %d and %d", name, int(prev), int(k))
		}
		seen[name] = k
		if strings.HasPrefix(k.String(), "event(") {
			t.Errorf("EventKind %d renders as fallback %q", int(k), k.String())
		}
	}
	if len(eventNames) != int(numEventKinds)-1 {
		t.Errorf("eventNames has %d entries, want %d — stale entry for a removed kind?",
			len(eventNames), int(numEventKinds)-1)
	}
	if !strings.HasPrefix(numEventKinds.String(), "event(") {
		t.Errorf("sentinel numEventKinds should have no name, got %q", numEventKinds.String())
	}
}

// TestSlowObserverDoesNotBlockBus registers an observer that parks on a
// channel, then drives bus operations to completion while the observer is
// stuck. With synchronous dispatch this deadlocks (the test would time out);
// with per-observer mailboxes the bus never waits on an observer.
func TestSlowObserverDoesNotBlockBus(t *testing.T) {
	b := New()
	release := make(chan struct{})
	var mu sync.Mutex
	var slowSeen []string
	first := true
	b.Observe(func(e Event) {
		if first {
			first = false
			<-release // park on the very first event
		}
		mu.Lock()
		slowSeen = append(slowSeen, e.String())
		mu.Unlock()
	})
	rec := NewRecorder()
	b.Observe(rec.Record)

	// Every one of these emits an event while the slow observer is parked.
	done := make(chan error, 1)
	go func() {
		if err := b.AddInstance(InstanceSpec{Name: "a", Interfaces: []IfaceSpec{{Name: "o", Dir: Out}}}); err != nil {
			done <- err
			return
		}
		if err := b.AddInstance(InstanceSpec{Name: "b", Interfaces: []IfaceSpec{{Name: "i", Dir: In}}}); err != nil {
			done <- err
			return
		}
		if err := b.AddBinding(Endpoint{"a", "o"}, Endpoint{"b", "i"}); err != nil {
			done <- err
			return
		}
		if err := b.write(Endpoint{"a", "o"}, []byte("x")); err != nil {
			done <- err
			return
		}
		if err := b.SignalReconfig("b"); err != nil {
			done <- err
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bus operations blocked behind a slow observer")
	}

	// The fast observer got everything already despite its sibling's stall.
	b2 := func() int {
		// Only the recorder can be synced while the slow observer is parked.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := len(rec.Events()); n >= 4 {
				return n
			}
			if time.Now().After(deadline) {
				t.Fatal("fast observer starved by slow sibling")
			}
			time.Sleep(time.Millisecond)
		}
	}()
	if b2 < 4 {
		t.Fatalf("fast observer saw %d events", b2)
	}

	// Unpark; all queued events drain in order.
	close(release)
	b.SyncObservers()
	mu.Lock()
	defer mu.Unlock()
	if len(slowSeen) != len(rec.Events()) {
		t.Fatalf("slow observer saw %d events, fast saw %d", len(slowSeen), len(rec.Events()))
	}
	for i, s := range rec.Strings() {
		if slowSeen[i] != s {
			t.Fatalf("event order diverged at %d: slow %q vs fast %q", i, slowSeen[i], s)
		}
	}
}

// TestObserverOrderingUnderLoad hammers emit from several goroutines and
// checks each observer's per-emitter FIFO ordering is preserved.
func TestObserverOrderingUnderLoad(t *testing.T) {
	b := New()
	if err := b.AddInstance(InstanceSpec{Name: "n", Interfaces: []IfaceSpec{{Name: "i", Dir: In}}}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	b.Observe(func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	const emitters, per = 4, 100
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := b.SignalReconfig("n"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.SyncObservers()
	mu.Lock()
	defer mu.Unlock()
	if count != emitters*per {
		t.Fatalf("observer saw %d events, want %d", count, emitters*per)
	}
}
