package bus

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRebindUnderTraffic: a writer streams messages while the binding is
// atomically flipped between two receivers with queue transfer; every
// message must arrive exactly once, in order.
func TestRebindUnderTraffic(t *testing.T) {
	b := New()
	for _, spec := range []InstanceSpec{
		{Name: "w", Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}},
		{Name: "a", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}},
		{Name: "b", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}},
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddBinding(Endpoint{"w", "out"}, Endpoint{"a", "in"}); err != nil {
		t.Fatal(err)
	}
	w, err := b.Attach("w")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := b.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Attach("b")
	if err != nil {
		t.Fatal(err)
	}

	const total = 5000
	var sent atomic.Int64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < total; i++ {
			payload := []byte(fmt.Sprintf("%06d", i))
			// During the rebind window the write may race binding
			// deletion; retry until routed.
			for {
				if err := w.Write("out", payload); err == nil {
					break
				}
				time.Sleep(10 * time.Microsecond)
			}
			sent.Add(1)
		}
	}()

	// Flip the binding back and forth with queue transfer. In a real
	// replacement the old instance has stopped consuming before cq runs
	// (it divulged its state and returned); the shared mutex models that:
	// a drain's pop+record and a flip's rebind+cq are mutually exclusive,
	// and each drain only consumes while it is the active receiver.
	var mu sync.Mutex
	active := "a"
	received := 0
	last := -1

	flips := 20
	go func() {
		current := "a"
		for i := 0; i < flips; i++ {
			time.Sleep(2 * time.Millisecond)
			next := "b"
			if current == "b" {
				next = "a"
			}
			mu.Lock()
			err := b.Rebind([]BindEdit{
				{Op: "del", From: Endpoint{"w", "out"}, To: Endpoint{current, "in"}},
				{Op: "add", From: Endpoint{"w", "out"}, To: Endpoint{next, "in"}},
				{Op: "cq", From: Endpoint{current, "in"}, To: Endpoint{next, "in"}},
			})
			active = next
			mu.Unlock()
			if err != nil {
				t.Errorf("flip %d: %v", i, err)
				return
			}
			current = next
		}
	}()

	// Order must be globally monotonic because cq preserves FIFO across
	// flips.
	var wg sync.WaitGroup
	drain := func(name string, att *Attachment) {
		defer wg.Done()
		for {
			mu.Lock()
			if received >= total {
				mu.Unlock()
				return
			}
			if active != name {
				mu.Unlock()
				time.Sleep(100 * time.Microsecond)
				continue
			}
			m, ok, err := att.TryRead("in")
			if err != nil {
				mu.Unlock()
				return
			}
			if ok {
				var n int
				fmt.Sscanf(string(m.Data), "%d", &n)
				received++
				if n <= last {
					t.Errorf("message %d after %d (reordered)", n, last)
				}
				last = n
			}
			mu.Unlock()
			if !ok {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	wg.Add(2)
	go drain("a", ra)
	go drain("b", rb)
	<-writerDone
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		mu.Lock()
		t.Fatalf("drain stalled: received %d of %d", received, total)
	}
	if received != total {
		t.Errorf("received %d of %d", received, total)
	}
}

// TestManyTCPClients: dozens of concurrent TCP attachments exchanging
// messages through one bus server.
func TestManyTCPClients(t *testing.T) {
	b := New()
	const pairs = 16
	for i := 0; i < pairs; i++ {
		if err := b.AddInstance(InstanceSpec{
			Name:       fmt.Sprintf("src%d", i),
			Interfaces: []IfaceSpec{{Name: "out", Dir: Out}},
		}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddInstance(InstanceSpec{
			Name:       fmt.Sprintf("dst%d", i),
			Interfaces: []IfaceSpec{{Name: "in", Dir: In}},
		}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddBinding(
			Endpoint{fmt.Sprintf("src%d", i), "out"},
			Endpoint{fmt.Sprintf("dst%d", i), "in"},
		); err != nil {
			t.Fatal(err)
		}
	}
	l, err := netListenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(b, l)
	defer srv.Close()

	const perPair = 50
	var wg sync.WaitGroup
	errs := make(chan error, pairs*2)
	for i := 0; i < pairs; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			p, err := DialPort(srv.Addr().String(), fmt.Sprintf("src%d", i))
			if err != nil {
				errs <- err
				return
			}
			defer p.Close()
			for j := 0; j < perPair; j++ {
				if err := p.Write("out", []byte{byte(j)}); err != nil {
					errs <- err
					return
				}
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			p, err := DialPort(srv.Addr().String(), fmt.Sprintf("dst%d", i))
			if err != nil {
				errs <- err
				return
			}
			defer p.Close()
			for j := 0; j < perPair; j++ {
				m, err := p.Read("in")
				if err != nil {
					errs <- err
					return
				}
				if int(m.Data[0]) != j {
					errs <- fmt.Errorf("pair %d: got %d want %d", i, m.Data[0], j)
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("TCP stress stalled")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func netListenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
