package bus

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// SignalKind enumerates control signals the bus can deliver to a module.
type SignalKind int

// Control signals. SignalReconfig is the analogue of the paper's SIGHUP:
// the module's runtime sets its mh_reconfig flag and execution proceeds to
// the next reconfiguration point. SignalStop asks a module to exit at its
// next convenience. SignalCancel retracts a pending reconfiguration
// request: the runtime clears its mh_reconfig flag, so a module that has
// not yet reached a reconfiguration point resumes undisturbed — the
// transaction layer sends it when a reconfiguration aborts before the
// module divulged.
const (
	SignalReconfig SignalKind = iota + 1
	SignalStop
	SignalCancel
)

// String names the signal.
func (k SignalKind) String() string {
	switch k {
	case SignalReconfig:
		return "reconfig"
	case SignalStop:
		return "stop"
	case SignalCancel:
		return "cancel"
	default:
		return fmt.Sprintf("signal(%d)", int(k))
	}
}

// Signal is one control signal.
type Signal struct {
	Kind SignalKind
}

// Attachment is the runtime handle a module holds on its bus instance — the
// capability behind every mh_* communication primitive. An attachment is
// owned by a single module thread; methods may be called concurrently but
// modules per the paper are single-threaded.
type Attachment struct {
	bus  *Bus
	inst *instance
}

// Name returns the instance name.
func (a *Attachment) Name() string { return a.inst.spec.Name }

// Machine returns the hosting machine label.
func (a *Attachment) Machine() string { return a.inst.spec.Machine }

// Status returns the instance status: StatusAdd for an original module,
// StatusClone for a restoration (mh_getstatus in Figure 4). Unlike the
// other spec attributes, status is rewritten when a rollback resurrects a
// divulged module, so the read synchronizes with the instance.
func (a *Attachment) Status() string {
	return a.inst.status()
}

// Write emits data on the named interface (mh_write).
//
//archlint:hotpath
func (a *Attachment) Write(ifaceName string, data []byte) error {
	return a.bus.write(Endpoint{Instance: a.inst.spec.Name, Interface: ifaceName}, data)
}

// WriteTraced is Write carrying the causal parent context: the module
// runtime passes the TraceContext of the message it is responding to, and
// the bus stamps the outgoing message with a child span. A zero parent is
// equivalent to Write (the bus mints a root).
//
//archlint:hotpath
func (a *Attachment) WriteTraced(ifaceName string, data []byte, parent TraceContext) error {
	return a.bus.writeTraced(Endpoint{Instance: a.inst.spec.Name, Interface: ifaceName}, data, parent)
}

// SendBatch emits a batch of messages on the named interface in one routing
// pass: the snapshot load, route lookup, trace reservation and telemetry
// counters are paid once for the whole batch instead of per message. Batch
// order is emission order. Equivalent to calling Write for each payload.
//
//archlint:hotpath
func (a *Attachment) SendBatch(ifaceName string, batch [][]byte) error {
	return a.bus.writeBatchTraced(Endpoint{Instance: a.inst.spec.Name, Interface: ifaceName}, batch, TraceContext{})
}

// WriteBatchTraced is SendBatch carrying the causal parent context: every
// message of the batch becomes a sibling child span of parent (a zero
// parent opens one fresh chain for the burst).
//
//archlint:hotpath
func (a *Attachment) WriteBatchTraced(ifaceName string, batch [][]byte, parent TraceContext) error {
	return a.bus.writeBatchTraced(Endpoint{Instance: a.inst.spec.Name, Interface: ifaceName}, batch, parent)
}

// Read blocks until a message arrives on the named interface (mh_read).
// It fails with ErrStopped if the instance is deleted while blocked.
//
//archlint:hotpath
func (a *Attachment) Read(ifaceName string) (Message, error) {
	q, err := a.recvQueue(ifaceName)
	if err != nil {
		return Message{}, err
	}
	m, err := q.pop()
	if errors.Is(err, ErrQueueClosed) {
		return Message{}, ErrStopped
	}
	if err == nil {
		a.recordDelivery(ifaceName, m)
	}
	return m, err
}

// TryRead returns a pending message without blocking. The second result is
// false when no message is queued.
//
//archlint:hotpath
func (a *Attachment) TryRead(ifaceName string) (Message, bool, error) {
	q, err := a.recvQueue(ifaceName)
	if err != nil {
		return Message{}, false, err
	}
	m, ok, err := q.tryPop()
	if errors.Is(err, ErrQueueClosed) {
		return Message{}, false, ErrStopped
	}
	if err == nil && ok {
		a.recordDelivery(ifaceName, m)
	}
	return m, ok, err
}

// recordDelivery closes the message's delivery span in the flight recorder
// and attributes the send-to-read latency to this receiving endpoint's
// histogram. A no-op unless the context is sampled (only sampled messages
// carry a send timestamp) — the unsampled read path pays one flag test,
// mirroring the paper's claim about the transformation's steady-state cost.
func (a *Attachment) recordDelivery(ifaceName string, m Message) {
	if !m.Trace.Sampled() {
		return
	}
	to := Endpoint{Instance: a.inst.spec.Name, Interface: ifaceName}
	now := time.Now().UnixNano()
	a.bus.tracer.RecordDelivery(m.Trace, m.From.String(), to.String(), now)
	if m.Trace.SentNs != 0 {
		if ifc := a.inst.ifaces[ifaceName]; ifc != nil {
			ifc.latency.ObserveNs(now - m.Trace.SentNs)
		}
	}
}

// Pending returns the number of messages queued on the named interface
// (mh_query_ifmsgs).
func (a *Attachment) Pending(ifaceName string) (int, error) {
	q, err := a.recvQueue(ifaceName)
	if err != nil {
		return 0, err
	}
	return q.length(), nil
}

func (a *Attachment) recvQueue(ifaceName string) (*msgQueue, error) {
	ifc, ok := a.inst.ifaces[ifaceName]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoInterface, a.inst.spec.Name, ifaceName)
	}
	if ifc.queue == nil {
		return nil, fmt.Errorf("%w: read on %s.%s (%s)", ErrDirection, a.inst.spec.Name, ifaceName, ifc.spec.Dir)
	}
	return ifc.queue, nil
}

// Signals returns the control-signal channel. The module runtime drains it
// opportunistically (TakeSignal) rather than selecting on it, matching the
// paper's flag-polling model.
func (a *Attachment) Signals() <-chan Signal { return a.inst.signals }

// TakeSignal returns a pending control signal without blocking.
func (a *Attachment) TakeSignal() (Signal, bool) {
	select {
	case s := <-a.inst.signals:
		return s, true
	default:
		return Signal{}, false
	}
}

// Divulge surrenders the module's captured, encoded state to the bus
// (mh_encode at the end of capture). The instance transitions to
// PhaseDivulged; the coordinator collects the state with AwaitDivulged.
func (a *Attachment) Divulge(data []byte) error {
	if err := a.bus.fire("bus.divulge"); err != nil {
		return fmt.Errorf("bus: divulge from %s: %w", a.inst.spec.Name, err)
	}
	a.inst.setPhase(PhaseDivulged)
	if err := a.inst.stateBoxRef().put(data); err != nil {
		return fmt.Errorf("bus: divulge from %s: %w", a.inst.spec.Name, err)
	}
	a.bus.emit(Event{Kind: EventDivulge, Instance: a.inst.spec.Name, Detail: fmt.Sprintf("%d bytes", len(data))})
	return nil
}

// AwaitState blocks until state is installed into this (clone) instance
// (mh_decode at the start of restoration), or the timeout expires.
func (a *Attachment) AwaitState(timeout time.Duration) ([]byte, error) {
	data, err := a.inst.stateBoxRef().await(timeout, a.inst.done)
	if err != nil {
		return nil, fmt.Errorf("bus: await installed state for %s: %w", a.inst.spec.Name, err)
	}
	return data, nil
}

// ConfirmRestore reports the outcome of this clone's state restoration to
// the bus: nil when every frame was rebuilt and the module resumed, or the
// restoration error (e.g. a frame mismatch). The reconfiguration
// coordinator observes it through Bus.AwaitRestored before committing the
// destructive tail of a replacement. Repeat confirmations are dropped.
func (a *Attachment) ConfirmRestore(restoreErr error) error {
	box := a.inst.restoreBoxRef()
	select {
	case box <- restoreErr:
	default:
	}
	detail := "ok"
	if restoreErr != nil {
		detail = restoreErr.Error()
	}
	a.bus.emit(Event{Kind: EventRestoreAck, Instance: a.inst.spec.Name, Detail: detail})
	return nil
}

// doneChan exposes the instance's deletion channel to the transport layer
// (the TCP server selects on it while pushing messages to a remote client).
func (a *Attachment) doneChan() <-chan struct{} { return a.inst.done }

// Done reports whether the instance has been deleted from the bus.
func (a *Attachment) Done() bool {
	select {
	case <-a.inst.done:
		return true
	default:
		return false
	}
}

// stateBox is a one-shot mailbox carrying encoded state between the control
// plane and a module runtime, in either direction (divulge or install).
type stateBox struct {
	mu     sync.Mutex
	ch     chan []byte
	closed bool
}

func newStateBox() *stateBox {
	return &stateBox{ch: make(chan []byte, 1)}
}

func (sb *stateBox) put(data []byte) error {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.closed {
		return ErrStopped
	}
	select {
	case sb.ch <- data:
		return nil
	default:
		return errors.New("state already pending")
	}
}

func (sb *stateBox) await(timeout time.Duration, done <-chan struct{}) ([]byte, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case data := <-sb.ch:
		return data, nil
	case <-done:
		// The instance may be deleted after the state was boxed; prefer
		// the state if it is there.
		select {
		case data := <-sb.ch:
			return data, nil
		default:
			return nil, ErrStopped
		}
	case <-timer.C:
		return nil, ErrTimeout
	}
}

func (sb *stateBox) close() {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.closed = true
}
