package bus

import (
	"errors"
	"net"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Bus, *Server) {
	t.Helper()
	b := testBusForTCP(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(b, l)
	t.Cleanup(func() { s.Close() })
	return b, s
}

func testBusForTCP(t *testing.T) *Bus {
	t.Helper()
	b := New()
	specs := []InstanceSpec{
		{Name: "display", Module: "display", Machine: "m1",
			Interfaces: []IfaceSpec{{Name: "temper", Dir: InOut}}},
		{Name: "compute", Module: "compute", Machine: "m2", Status: StatusClone,
			Interfaces: []IfaceSpec{{Name: "display", Dir: InOut}, {Name: "sensor", Dir: In}}},
	}
	for _, s := range specs {
		if err := b.AddInstance(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddBinding(Endpoint{"display", "temper"}, Endpoint{"compute", "display"}); err != nil {
		t.Fatal(err)
	}
	return b
}

func dial(t *testing.T, s *Server, instance string) *RemotePort {
	t.Helper()
	p, err := DialPort(s.Addr().String(), instance)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestRemoteHandshake(t *testing.T) {
	_, s := startServer(t)
	p := dial(t, s, "compute")
	if p.Name() != "compute" || p.Machine() != "m2" || p.Status() != StatusClone {
		t.Errorf("identity = %s %s %s", p.Name(), p.Machine(), p.Status())
	}
}

func TestRemoteAttachUnknownInstance(t *testing.T) {
	_, s := startServer(t)
	if _, err := DialPort(s.Addr().String(), "ghost"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("dial ghost: %v", err)
	}
}

func TestRemoteDoubleAttach(t *testing.T) {
	_, s := startServer(t)
	dial(t, s, "compute")
	if _, err := DialPort(s.Addr().String(), "compute"); err == nil {
		t.Error("second attach accepted")
	}
}

func TestRemoteReadWrite(t *testing.T) {
	_, s := startServer(t)
	disp := dial(t, s, "display")
	comp := dial(t, s, "compute")

	if err := disp.Write("temper", []byte("req")); err != nil {
		t.Fatal(err)
	}
	n, err := comp.Pending("display")
	if err != nil || n != 1 {
		t.Fatalf("Pending = %d, %v", n, err)
	}
	m, err := comp.Read("display")
	if err != nil || string(m.Data) != "req" {
		t.Fatalf("Read = %+v, %v", m, err)
	}
	if m.From != (Endpoint{"display", "temper"}) {
		t.Errorf("From = %v", m.From)
	}
	if err := comp.Write("display", []byte("resp")); err != nil {
		t.Fatal(err)
	}
	m, ok, err := disp.TryRead("temper")
	if err != nil || !ok || string(m.Data) != "resp" {
		t.Fatalf("TryRead = %+v %t %v", m, ok, err)
	}
	if _, ok, err := disp.TryRead("temper"); err != nil || ok {
		t.Errorf("empty TryRead = %t, %v", ok, err)
	}
}

func TestRemoteBlockingRead(t *testing.T) {
	_, s := startServer(t)
	disp := dial(t, s, "display")
	comp := dial(t, s, "compute")

	got := make(chan Message, 1)
	go func() {
		m, err := comp.Read("display")
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got <- m
	}()
	time.Sleep(20 * time.Millisecond)
	// The connection must stay responsive while a read blocks.
	if n, err := comp.Pending("sensor"); err != nil || n != 0 {
		t.Fatalf("Pending during blocked read = %d, %v", n, err)
	}
	if err := disp.Write("temper", []byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Data) != "late" {
			t.Errorf("blocked read got %q", m.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read never completed")
	}
}

func TestRemoteErrorMapping(t *testing.T) {
	_, s := startServer(t)
	comp := dial(t, s, "compute")
	if err := comp.Write("sensor", nil); !errors.Is(err, ErrDirection) {
		t.Errorf("direction error: %v", err)
	}
	if err := comp.Write("ghost", nil); !errors.Is(err, ErrNoInterface) {
		t.Errorf("nointerface error: %v", err)
	}
	if err := comp.Write("display", nil); err != nil {
		// display.temper receives; this should succeed.
		t.Errorf("bound write: %v", err)
	}
	if _, err := comp.AwaitState(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("timeout error: %v", err)
	}
}

func TestRemoteSignalPush(t *testing.T) {
	b, s := startServer(t)
	comp := dial(t, s, "compute")
	if _, ok := comp.TakeSignal(); ok {
		t.Fatal("spurious signal")
	}
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if sig, ok := comp.TakeSignal(); ok {
			if sig.Kind != SignalReconfig {
				t.Errorf("signal = %v", sig.Kind)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("signal never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRemoteDivulgeAndInstall(t *testing.T) {
	b, s := startServer(t)
	comp := dial(t, s, "compute")

	// Divulge travels remote -> bus.
	if err := comp.Divulge([]byte("stately")); err != nil {
		t.Fatal(err)
	}
	owner, err := b.AwaitDivulged("compute", time.Second)
	if err != nil || string(owner.Data()) != "stately" {
		t.Fatalf("AwaitDivulged = %v, %v", owner, err)
	}

	// Install travels bus -> remote.
	if err := b.InstallState("compute", []byte("installed")); err != nil {
		t.Fatal(err)
	}
	data, err := comp.AwaitState(time.Second)
	if err != nil || string(data) != "installed" {
		t.Fatalf("AwaitState = %q, %v", data, err)
	}
}

func TestRemoteDeletionNotice(t *testing.T) {
	b, s := startServer(t)
	comp := dial(t, s, "compute")
	if comp.Done() {
		t.Fatal("Done before delete")
	}
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !comp.Done() {
		if time.Now().After(deadline) {
			t.Fatal("Done never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRemoteConnectionLoss(t *testing.T) {
	_, s := startServer(t)
	comp := dial(t, s, "compute")
	errCh := make(chan error, 1)
	go func() {
		_, err := comp.Read("display")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	comp.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStopped) {
			t.Errorf("read after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read survived connection loss")
	}
	if err := comp.Write("display", nil); !errors.Is(err, ErrStopped) {
		t.Errorf("write after close: %v", err)
	}
	if !comp.Done() {
		t.Error("Done false after close")
	}
}

func TestServerClose(t *testing.T) {
	_, s := startServer(t)
	comp := dial(t, s, "compute")
	if err := s.Close(); err != nil {
		t.Logf("server close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !comp.Done() {
		if time.Now().After(deadline) {
			t.Fatal("port not Done after server close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDialPortBadAddr(t *testing.T) {
	if _, err := DialPort("127.0.0.1:1", "x"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestErrKindRoundTrip(t *testing.T) {
	for _, sentinel := range []error{ErrStopped, ErrTimeout, ErrUnbound, ErrDirection, ErrNoInterface, ErrNoInstance} {
		kind := errKind(sentinel)
		back := errFromKind(kind, sentinel.Error())
		if !errors.Is(back, sentinel) {
			t.Errorf("sentinel %v did not survive the wire (kind %q)", sentinel, kind)
		}
	}
	if errFromKind("", "") != nil {
		t.Error("empty kind should be nil error")
	}
	if err := errFromKind("other", "boom"); err == nil || err.Error() != "boom" {
		t.Errorf("other kind = %v", err)
	}
	if errKind(nil) != "" {
		t.Error("nil error kind")
	}
	if errKind(errors.New("x")) != "other" {
		t.Error("unknown error kind")
	}
}
