package bus

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/replay"
)

func startServer(t *testing.T) (*Bus, *Server) {
	t.Helper()
	b := testBusForTCP(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(b, l)
	t.Cleanup(func() { s.Close() })
	return b, s
}

func testBusForTCP(t *testing.T) *Bus {
	t.Helper()
	b := New()
	specs := []InstanceSpec{
		{Name: "display", Module: "display", Machine: "m1",
			Interfaces: []IfaceSpec{{Name: "temper", Dir: InOut}}},
		{Name: "compute", Module: "compute", Machine: "m2", Status: StatusClone,
			Interfaces: []IfaceSpec{{Name: "display", Dir: InOut}, {Name: "sensor", Dir: In}}},
	}
	for _, s := range specs {
		if err := b.AddInstance(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddBinding(Endpoint{"display", "temper"}, Endpoint{"compute", "display"}); err != nil {
		t.Fatal(err)
	}
	return b
}

func dial(t *testing.T, s *Server, instance string) *RemotePort {
	t.Helper()
	p, err := DialPort(s.Addr().String(), instance)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestRemoteHandshake(t *testing.T) {
	_, s := startServer(t)
	p := dial(t, s, "compute")
	if p.Name() != "compute" || p.Machine() != "m2" || p.Status() != StatusClone {
		t.Errorf("identity = %s %s %s", p.Name(), p.Machine(), p.Status())
	}
}

func TestRemoteAttachUnknownInstance(t *testing.T) {
	_, s := startServer(t)
	if _, err := DialPort(s.Addr().String(), "ghost"); !errors.Is(err, ErrNoInstance) {
		t.Errorf("dial ghost: %v", err)
	}
}

func TestRemoteDoubleAttach(t *testing.T) {
	_, s := startServer(t)
	dial(t, s, "compute")
	if _, err := DialPort(s.Addr().String(), "compute"); err == nil {
		t.Error("second attach accepted")
	}
}

func TestRemoteReadWrite(t *testing.T) {
	_, s := startServer(t)
	disp := dial(t, s, "display")
	comp := dial(t, s, "compute")

	if err := disp.Write("temper", []byte("req")); err != nil {
		t.Fatal(err)
	}
	n, err := comp.Pending("display")
	if err != nil || n != 1 {
		t.Fatalf("Pending = %d, %v", n, err)
	}
	m, err := comp.Read("display")
	if err != nil || string(m.Data) != "req" {
		t.Fatalf("Read = %+v, %v", m, err)
	}
	if m.From != (Endpoint{"display", "temper"}) {
		t.Errorf("From = %v", m.From)
	}
	if err := comp.Write("display", []byte("resp")); err != nil {
		t.Fatal(err)
	}
	m, ok, err := disp.TryRead("temper")
	if err != nil || !ok || string(m.Data) != "resp" {
		t.Fatalf("TryRead = %+v %t %v", m, ok, err)
	}
	if _, ok, err := disp.TryRead("temper"); err != nil || ok {
		t.Errorf("empty TryRead = %t, %v", ok, err)
	}
}

func TestRemoteBlockingRead(t *testing.T) {
	_, s := startServer(t)
	disp := dial(t, s, "display")
	comp := dial(t, s, "compute")

	got := make(chan Message, 1)
	go func() {
		m, err := comp.Read("display")
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got <- m
	}()
	time.Sleep(20 * time.Millisecond)
	// The connection must stay responsive while a read blocks.
	if n, err := comp.Pending("sensor"); err != nil || n != 0 {
		t.Fatalf("Pending during blocked read = %d, %v", n, err)
	}
	if err := disp.Write("temper", []byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Data) != "late" {
			t.Errorf("blocked read got %q", m.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read never completed")
	}
}

func TestRemoteErrorMapping(t *testing.T) {
	_, s := startServer(t)
	comp := dial(t, s, "compute")
	if err := comp.Write("sensor", nil); !errors.Is(err, ErrDirection) {
		t.Errorf("direction error: %v", err)
	}
	if err := comp.Write("ghost", nil); !errors.Is(err, ErrNoInterface) {
		t.Errorf("nointerface error: %v", err)
	}
	if err := comp.Write("display", nil); err != nil {
		// display.temper receives; this should succeed.
		t.Errorf("bound write: %v", err)
	}
	if _, err := comp.AwaitState(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("timeout error: %v", err)
	}
}

func TestRemoteSignalPush(t *testing.T) {
	b, s := startServer(t)
	comp := dial(t, s, "compute")
	if _, ok := comp.TakeSignal(); ok {
		t.Fatal("spurious signal")
	}
	if err := b.SignalReconfig("compute"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if sig, ok := comp.TakeSignal(); ok {
			if sig.Kind != SignalReconfig {
				t.Errorf("signal = %v", sig.Kind)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("signal never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRemoteDivulgeAndInstall(t *testing.T) {
	b, s := startServer(t)
	comp := dial(t, s, "compute")

	// Divulge travels remote -> bus.
	if err := comp.Divulge([]byte("stately")); err != nil {
		t.Fatal(err)
	}
	owner, err := b.AwaitDivulged("compute", time.Second)
	if err != nil || string(owner.Data()) != "stately" {
		t.Fatalf("AwaitDivulged = %v, %v", owner, err)
	}

	// Install travels bus -> remote.
	if err := b.InstallState("compute", []byte("installed")); err != nil {
		t.Fatal(err)
	}
	data, err := comp.AwaitState(time.Second)
	if err != nil || string(data) != "installed" {
		t.Fatalf("AwaitState = %q, %v", data, err)
	}
}

func TestRemoteDeletionNotice(t *testing.T) {
	b, s := startServer(t)
	comp := dial(t, s, "compute")
	if comp.Done() {
		t.Fatal("Done before delete")
	}
	if err := b.DeleteInstance("compute"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !comp.Done() {
		if time.Now().After(deadline) {
			t.Fatal("Done never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRemoteConnectionLoss(t *testing.T) {
	_, s := startServer(t)
	comp := dial(t, s, "compute")
	errCh := make(chan error, 1)
	go func() {
		_, err := comp.Read("display")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	comp.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStopped) {
			t.Errorf("read after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read survived connection loss")
	}
	if err := comp.Write("display", nil); !errors.Is(err, ErrStopped) {
		t.Errorf("write after close: %v", err)
	}
	if !comp.Done() {
		t.Error("Done false after close")
	}
}

func TestServerClose(t *testing.T) {
	_, s := startServer(t)
	comp := dial(t, s, "compute")
	if err := s.Close(); err != nil {
		t.Logf("server close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !comp.Done() {
		if time.Now().After(deadline) {
			t.Fatal("port not Done after server close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDialPortBadAddr(t *testing.T) {
	if _, err := DialPort("127.0.0.1:1", "x"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestErrKindRoundTrip(t *testing.T) {
	for _, sentinel := range []error{ErrStopped, ErrTimeout, ErrUnbound, ErrDirection, ErrNoInterface, ErrNoInstance} {
		kind := errKind(sentinel)
		back := errFromKind(kind, sentinel.Error())
		if !errors.Is(back, sentinel) {
			t.Errorf("sentinel %v did not survive the wire (kind %q)", sentinel, kind)
		}
	}
	if errFromKind("", "") != nil {
		t.Error("empty kind should be nil error")
	}
	if err := errFromKind("other", "boom"); err == nil || err.Error() != "boom" {
		t.Errorf("other kind = %v", err)
	}
	if errKind(nil) != "" {
		t.Error("nil error kind")
	}
	if errKind(errors.New("x")) != "other" {
		t.Error("unknown error kind")
	}
}

// ---- wire-format compatibility ----------------------------------------
//
// The Trace field added to clientFrame and Message must not break framing
// against peers built before it existed. Gob omits zero-valued fields and
// skips fields unknown to the receiver, so compatibility holds in both
// directions; the golden bytes below were captured from the pre-trace
// encoder and pin the backward direction against regression.

// preTrace* mirror the wire structs exactly as they were before the Trace
// field existed (gob matches struct fields by name, not type name).
type preTraceClientFrame struct {
	ID        uint64
	Op        string
	Instance  string
	Iface     string
	Data      []byte
	TimeoutMs int64
}

type preTraceMessage struct {
	From Endpoint
	Data []byte
}

type preTraceServerFrame struct {
	ID      uint64
	Hello   *helloAck
	Err     string
	ErrKind string
	Msg     *preTraceMessage
	OK      bool
	N       int
	Data    []byte
	Signal  *Signal
	Deleted bool
}

// Gob streams of clientFrame{ID: 7, Op: "write", Iface: "out",
// Data: "payload", TimeoutMs: 250} and serverFrame{ID: 7, Msg:
// &Message{From: sensor.out, Data: "payload"}, OK: true, N: 3} as encoded
// before the Trace field existed.
const (
	goldenPreTraceClientWrite = "547f0301010b636c69656e744672616d6501ff800001060102494401060001024f70010c000108496e7374616e6365010c0001054966616365010c00010444617461010a00010954696d656f75744d7301040000001eff8001070105777269746502036f757401077061796c6f616401fe01f400"
	goldenPreTraceServerMsg   = "76ff810301010b7365727665724672616d6501ff8200010a01024944010600010548656c6c6f01ff84000103457272010c0001074572724b696e64010c0001034d736701ff860001024f4b01020001014e010400010444617461010a0001065369676e616c01ff8a00010744656c65746564010200000036ff830301010868656c6c6f41636b01ff8400010301044e616d65010c0001074d616368696e65010c000106537461747573010c00000028ff85030101074d65737361676501ff86000102010446726f6d01ff8800010444617461010a00000031ff8703010108456e64706f696e7401ff880001020108496e7374616e6365010c000109496e74657266616365010c0000001dff89030101065369676e616c01ff8a00010101044b696e64010400000023ff8201070401010673656e736f7201036f75740001077061796c6f6164000101010600"
)

// TestWireFormatBackwardCompat decodes the golden pre-trace byte streams
// under the current types: every field survives and Trace is zero.
func TestWireFormatBackwardCompat(t *testing.T) {
	raw, err := hex.DecodeString(goldenPreTraceClientWrite)
	if err != nil {
		t.Fatal(err)
	}
	var cf clientFrame
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&cf); err != nil {
		t.Fatalf("pre-trace clientFrame no longer decodes: %v", err)
	}
	wantCF := clientFrame{ID: 7, Op: "write", Iface: "out", Data: []byte("payload"), TimeoutMs: 250}
	if !reflect.DeepEqual(cf, wantCF) {
		t.Errorf("decoded clientFrame = %+v, want %+v", cf, wantCF)
	}

	raw, err = hex.DecodeString(goldenPreTraceServerMsg)
	if err != nil {
		t.Fatal(err)
	}
	var sf serverFrame
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&sf); err != nil {
		t.Fatalf("pre-trace serverFrame no longer decodes: %v", err)
	}
	if sf.ID != 7 || !sf.OK || sf.N != 3 {
		t.Errorf("decoded serverFrame = %+v", sf)
	}
	wantMsg := Message{From: Endpoint{"sensor", "out"}, Data: []byte("payload")}
	if sf.Msg == nil || !reflect.DeepEqual(*sf.Msg, wantMsg) {
		t.Errorf("decoded Msg = %+v, want %+v (with zero Trace)", sf.Msg, wantMsg)
	}
}

// TestWireFormatForwardCompat encodes current frames — with and without a
// trace context — and decodes them under the pre-trace mirror types, as an
// old peer would.
func TestWireFormatForwardCompat(t *testing.T) {
	encode := func(v any) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	wantCF := preTraceClientFrame{ID: 7, Op: "write", Iface: "out", Data: []byte("payload"), TimeoutMs: 250}

	for name, frame := range map[string]clientFrame{
		"untraced": {ID: 7, Op: "write", Iface: "out", Data: []byte("payload"), TimeoutMs: 250},
		"traced": {ID: 7, Op: "write", Iface: "out", Data: []byte("payload"), TimeoutMs: 250,
			Trace: TraceContext{TraceID: 9, SpanID: 4, Hops: 2, Flags: 1, SentNs: 123}},
	} {
		var got preTraceClientFrame
		if err := gob.NewDecoder(bytes.NewReader(encode(frame))).Decode(&got); err != nil {
			t.Fatalf("%s frame does not decode for an old peer: %v", name, err)
		}
		if !reflect.DeepEqual(got, wantCF) {
			t.Errorf("%s frame decoded as %+v, want %+v", name, got, wantCF)
		}
	}

	sf := serverFrame{ID: 7, OK: true, N: 3, Msg: &Message{
		From:  Endpoint{"sensor", "out"},
		Data:  []byte("payload"),
		Trace: TraceContext{TraceID: 9, SpanID: 5, SentNs: 456},
	}}
	var got preTraceServerFrame
	if err := gob.NewDecoder(bytes.NewReader(encode(sf))).Decode(&got); err != nil {
		t.Fatalf("traced serverFrame does not decode for an old peer: %v", err)
	}
	wantSF := preTraceServerFrame{ID: 7, OK: true, N: 3,
		Msg: &preTraceMessage{From: Endpoint{"sensor", "out"}, Data: []byte("payload")}}
	if !reflect.DeepEqual(got, wantSF) {
		t.Errorf("traced serverFrame decoded as %+v, want %+v", got, wantSF)
	}
}

// TestRecordedWireDeliveryRoundTrips closes the loop between the wire
// encoders and the record spill: a payload sent over a TCP attachment is
// recorded by the bus byte-identically, and the recorded window survives a
// spill write/read cycle with the payload and trace context intact — a
// frame produced by today's encoders replays tomorrow.
func TestRecordedWireDeliveryRoundTrips(t *testing.T) {
	log := replay.NewLog(64)
	log.Enable()
	b := New(WithRecorder(log))
	for _, spec := range []InstanceSpec{
		{Name: "display", Module: "display", Machine: "m1",
			Interfaces: []IfaceSpec{{Name: "temper", Dir: InOut}}},
		{Name: "compute", Module: "compute", Machine: "m2",
			Interfaces: []IfaceSpec{{Name: "display", Dir: InOut}}},
	} {
		if err := b.AddInstance(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddBinding(Endpoint{"display", "temper"}, Endpoint{"compute", "display"}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(b, l)
	t.Cleanup(func() { s.Close() })
	remote := dial(t, s, "display")
	local := attach(t, b, "compute")

	payload := []byte{0x00, 'w', 'i', 'r', 'e', 0xFF}
	if err := remote.Write("temper", payload); err != nil {
		t.Fatal(err)
	}
	m, err := local.Read("display")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data, payload) {
		t.Fatalf("wire delivery mangled the payload: %x", m.Data)
	}
	recs := log.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("recorded %d deliveries, want 1", len(recs))
	}
	if !bytes.Equal(recs[0].Data, payload) {
		t.Errorf("recorded payload %x, sent %x", recs[0].Data, payload)
	}
	if recs[0].From != "display.temper" || recs[0].To != "compute.display" {
		t.Errorf("recorded endpoints %s -> %s", recs[0].From, recs[0].To)
	}

	// Spill the window and read it back: byte-identical payload, identical
	// trace context.
	var buf bytes.Buffer
	spill := replay.NewLog(64)
	if err := spill.SetSpill(&buf); err != nil {
		t.Fatal(err)
	}
	spill.Enable()
	spill.Queue("compute", "display").Append("display", "temper", recs[0].Data, recs[0].Trace, recs[0].Epoch)
	decoded, err := replay.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || !bytes.Equal(decoded[0].Data, payload) || decoded[0].Trace != recs[0].Trace {
		t.Errorf("spill round trip = %+v, want payload %x trace %+v", decoded, payload, recs[0].Trace)
	}
}
