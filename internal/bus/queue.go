package bus

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/replay"
)

// ErrQueueClosed is returned by queue operations after Close.
var ErrQueueClosed = errors.New("bus: queue closed")

// chunkCap is the slot count of one queue segment. Segments are allocated
// on the (cold) grow path and garbage-collected once consumed, so the value
// trades allocation amortization against retained memory per idle queue.
const chunkCap = 256

// Slot publication states. A slot is claimed by the tail CAS and holds
// slotEmpty until its producer resolves it: slotFull publishes a message,
// slotDead abandons the claim (the producer lost a fence or close race and
// retries via the slow path — the consumer skips the slot).
const (
	slotEmpty = uint32(0)
	slotFull  = uint32(1)
	slotDead  = uint32(2)
)

// qslot is one message cell of a segment. state is the publication flag:
// slotEmpty while the slot is unclaimed or a producer is still writing
// msg/ver, then slotFull or slotDead. The producer protocol (archlint
// AL013) is claim -> write fields -> publish: the state Store must be the
// slot's last touch, and the consumer reads msg/ver only after observing
// slotFull. Consumed slots are not cleared — a payload reference lives
// until its segment is collected, at most chunkCap messages later.
type qslot struct {
	state atomic.Uint32
	ver   uint64
	msg   Message
}

// chunk is one fixed-size segment of the queue: a slice-free array of slots
// claimed left to right through the CAS'd tail, chained through next when
// full. Slots are never reused — total FIFO order across producers is the
// claim (CAS) order, and consumed chunks are dropped for the collector.
type chunk struct {
	base  uint64 // absolute index of slots[0], for occupancy accounting
	tail  atomic.Uint64
	next  atomic.Pointer[chunk]
	slots [chunkCap]qslot
}

// msgQueue is an unbounded FIFO of messages with blocking pop, the backing
// store for one incoming interface. POLYLITH buffers messages at the bus;
// modules poll with mh_query_ifmsgs and read with mh_read, so the queue
// exposes both a non-blocking length and a blocking pop.
//
// The hot path is lock-free: producers claim a slot by CAS on the current
// segment's tail, write the message, and flip the slot's publication flag —
// they take no mutex and signal the consumer only when one is parked. What
// the old queue mutex provided implicitly is rebuilt explicitly:
//
//   - Epoch fencing is the fence word, checked after the claim. detach
//     CAS-raises the fence; because a drain that follows captures the tail
//     after the raise, every producer ordered before the capture has a slot
//     below it (the drain settles those), and every producer ordered after
//     observes the raised fence, abandons its slot (slotDead) and retries
//     through the bus's slow path (errStaleRoute) — no message is lost or
//     delivered twice across a detach-and-drain.
//   - Replay recording moved from producer-side-under-lock to the consumer
//     drain: slot claim order is delivery order, so appending at pop keeps
//     the recorded per-queue sequence the queue's true total order
//     (archlint AL012 pins the append to the record hook below).
//   - Quiesce/move/drain/redistribute are detach-and-drain over the
//     segments under the consumer lock.
type msgQueue struct {
	// prod is the segment producers currently claim slots in. Replaced on
	// the grow path (under growMu) only; readers reach later segments
	// through chunk.next, so a stale load at worst retries.
	prod atomic.Pointer[chunk]

	// fence refuses routed pushes resolved from snapshots with version <=
	// fence. A topology change that invalidates this queue's routes raises
	// it (detach) before publishing the successor snapshot; refused writers
	// retry through the bus's slow path against the new topology. Only
	// detach may advance it (archlint AL013).
	fence atomic.Uint64

	closed atomic.Bool

	// sleeping gates the producer-side wakeup: a consumer sets it before
	// re-checking for work and parking, a producer checks it after
	// publishing. Sequentially consistent atomics make that a Dekker pair —
	// at least one side observes the other, so no wakeup is lost and
	// producers touch the consumer mutex only when someone is parked.
	sleeping atomic.Bool

	// absHead/frontLen mirror consumer progress for the lock-free length:
	// occupancy = frontLen + (producer claim position - absHead).
	absHead  atomic.Uint64
	frontLen atomic.Int64

	growMu sync.Mutex // serializes segment allocation/linking

	mu    sync.Mutex // consumer side: cons/head/front and parking
	cond  *sync.Cond
	cons  *chunk  // segment being consumed
	head  uint64  // next slot index within cons
	front []qitem // restored/re-homed items, consumed before the segments

	// rec is the record/replay append handle for this queue's endpoint,
	// resolved at AddInstance (nil when the bus runs without a recorder —
	// a no-op, like the telemetry counters). Appends happen at consumption,
	// in slot-claim order, which is what makes the recorded per-queue
	// sequence the queue's true total delivery order. This is the only
	// layer allowed to append records (archlint AL012).
	rec *replay.QueueLog
}

// qitem is a queued message paired with the routing-snapshot version it was
// delivered under, carried to the consumer for the record epoch stamp.
type qitem struct {
	msg Message
	ver uint64
}

func newMsgQueue() *msgQueue {
	q := &msgQueue{}
	c := &chunk{}
	q.prod.Store(c)
	q.cons = c
	q.cond = sync.NewCond(&q.mu)
	return q
}

// claim CAS-claims the next slot. Lock-free: the only loop is tail
// contention, and the full-segment case defers to the cold grow path.
//
//archlint:hotpath
func (q *msgQueue) claim() *qslot {
	for {
		c := q.prod.Load()
		pos := c.tail.Load()
		if pos >= chunkCap {
			q.grow(c)
			continue
		}
		if c.tail.CompareAndSwap(pos, pos+1) {
			return &c.slots[pos]
		}
	}
}

// grow links a fresh segment after cur and advances the producer cursor.
// Cold path — runs once per chunkCap messages; the prod re-check makes
// racing growers idempotent. next is linked before prod is replaced so the
// consumer's segment walk can always reach the new tail segment.
func (q *msgQueue) grow(cur *chunk) {
	q.growMu.Lock()
	if q.prod.Load() == cur {
		n := &chunk{base: cur.base + chunkCap}
		cur.next.Store(n)
		q.prod.Store(n)
	}
	q.growMu.Unlock()
}

// wakeReader wakes a parked consumer. Producers call it after publishing;
// the sleeping gate keeps the consumer mutex off the hot path entirely
// unless someone is actually parked.
//
//archlint:hotpath
func (q *msgQueue) wakeReader() {
	if q.sleeping.Load() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

// push appends a message delivered by the slow path (under the bus's
// control-plane lock, which serializes it with close); version is the
// routing snapshot the caller re-resolved against, recorded as the
// delivery's epoch. Pushing to a closed queue reports ErrQueueClosed.
//
//archlint:hotpath
func (q *msgQueue) push(m Message, version uint64) error {
	s := q.claim()
	if q.closed.Load() {
		s.state.Store(slotDead)
		return ErrQueueClosed
	}
	s.msg = m
	s.ver = version
	s.state.Store(slotFull) // publish: must be the slot's last write (AL013)
	q.wakeReader()
	return nil
}

// pushRouted appends a message whose target was resolved from the snapshot
// with the given version. It refuses with errStaleRoute when the queue has
// been fenced at or past that version, so a writer racing a topology change
// can never land traffic on an abandoned route. The fence is checked after
// the claim: a producer ordered before a detach-and-drain's tail capture
// owns a slot the drain settles, one ordered after it observes the raised
// fence and abandons the claim — either way exactly once.
//
//archlint:hotpath
func (q *msgQueue) pushRouted(m Message, version uint64) error {
	s := q.claim()
	if q.closed.Load() {
		s.state.Store(slotDead)
		return ErrQueueClosed
	}
	if version <= q.fence.Load() {
		s.state.Store(slotDead)
		return errStaleRoute
	}
	s.msg = m
	s.ver = version
	s.state.Store(slotFull) // publish: must be the slot's last write (AL013)
	q.wakeReader()
	return nil
}

// detach fences the queue at the given snapshot version: every subsequent
// pushRouted carrying that version or older is refused. Monotonic — a later
// fence never lowers an earlier one. A drain that follows the detach
// observes every pre-fence delivery (see the type comment for the claim
// ordering argument).
func (q *msgQueue) detach(version uint64) {
	for {
		cur := q.fence.Load()
		if version <= cur || q.fence.CompareAndSwap(cur, version) {
			return
		}
	}
}

// take removes the oldest item without blocking: the front (restored)
// items first, then the published prefix of the segments, skipping
// abandoned claims. Returns false on an empty queue or when the head slot
// is claimed but not yet resolved — the producer's wakeup resolves the
// latter for parked consumers. Caller holds q.mu.
//
//archlint:hotpath
func (q *msgQueue) take() (qitem, bool) {
	if len(q.front) > 0 {
		it := q.front[0]
		q.front[0] = qitem{}
		q.front = q.front[1:]
		q.frontLen.Add(-1)
		return it, true
	}
	for {
		c := q.cons
		if q.head == chunkCap {
			next := c.next.Load()
			if next == nil {
				return qitem{}, false
			}
			q.cons = next
			q.head = 0
			continue
		}
		s := &c.slots[q.head]
		switch s.state.Load() {
		case slotEmpty:
			return qitem{}, false
		case slotDead:
			q.head++
			q.absHead.Add(1)
			continue
		}
		q.head++
		q.absHead.Add(1)
		return qitem{msg: s.msg, ver: s.ver}, true
	}
}

// record appends a consumed delivery to the record ring. The single
// consumer-side record hook: slot-claim order is delivery order, so
// appending here keeps recorded QSeq the queue's true total order
// (archlint AL012 pins QueueLog.Append to this function).
//
//archlint:hotpath
func (q *msgQueue) record(it qitem) {
	q.rec.Append(it.msg.From.Instance, it.msg.From.Interface, it.msg.Data, it.msg.Trace, it.ver)
}

// pop removes and returns the oldest message, blocking until one is
// available or the queue closes. A closing queue drains its remaining
// messages before reporting ErrQueueClosed.
//
//archlint:hotpath
func (q *msgQueue) pop() (Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if it, ok := q.take(); ok {
			q.record(it)
			return it.msg, nil
		}
		if q.closed.Load() {
			return Message{}, ErrQueueClosed
		}
		q.sleeping.Store(true)
		if it, ok := q.take(); ok { // Dekker re-check against a racing publish
			q.sleeping.Store(false)
			q.record(it)
			return it.msg, nil
		}
		q.cond.Wait()
		q.sleeping.Store(false)
	}
}

// tryPop removes and returns the oldest message without blocking.
//
//archlint:hotpath
func (q *msgQueue) tryPop() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if it, ok := q.take(); ok {
		q.record(it)
		return it.msg, true, nil
	}
	if q.closed.Load() {
		return Message{}, false, ErrQueueClosed
	}
	return Message{}, false, nil
}

// length returns the number of queued messages from the occupancy
// counters — no locks, so the telemetry gauges and the least-queue group
// policy can read it from the hot path. Claimed-but-unresolved slots count
// as queued; on a quiesced queue the value is exact.
//
//archlint:hotpath
func (q *msgQueue) length() int {
	c := q.prod.Load()
	t := c.tail.Load()
	if t > chunkCap {
		t = chunkCap
	}
	n := q.frontLen.Load() + int64(c.base+t-q.absHead.Load())
	if n < 0 { // torn read: consumer advanced past our tail sample
		n = 0
	}
	return int(n)
}

// drain removes and returns every message claimed before entry (the "cq"
// primitive moves them to another queue). Claimed-but-unresolved slots are
// settled by yielding to their producers; messages claimed after the cut
// keep landing here, preserving the old move semantics for callers that
// drain without fencing first.
func (q *msgQueue) drain() []Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	endC := q.prod.Load()
	endT := endC.tail.Load()
	if endT > chunkCap {
		endT = chunkCap
	}
	end := endC.base + endT
	var out []Message
	for len(q.front) > 0 || q.absHead.Load() < end {
		it, ok := q.take()
		if !ok {
			runtime.Gosched() // head slot claimed, producer mid-publish
			continue
		}
		out = append(out, it.msg)
	}
	return out
}

// snapshot returns a copy of the queued messages without removing them,
// for rollback bookkeeping: the front items plus the published segment
// prefix. Slots are never reused, so the walk is safe against producers.
func (q *msgQueue) snapshot() []Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Message, 0, len(q.front))
	for _, it := range q.front {
		out = append(out, it.msg)
	}
	c, h := q.cons, q.head
	for {
		if h == chunkCap {
			next := c.next.Load()
			if next == nil {
				break
			}
			c, h = next, 0
			continue
		}
		st := c.slots[h].state.Load()
		if st == slotEmpty {
			break
		}
		if st == slotFull {
			out = append(out, c.slots[h].msg)
		}
		h++
	}
	return out
}

// restore replaces the queue contents with a snapshot, waking readers if it
// is non-empty; version is the routing snapshot the restorer publishes,
// stamped as the epoch of any re-consumed delivery. Callers fence the
// queue first and run under the control-plane lock, so the discard loop
// cannot chase live producers. Restoring a closed queue is a no-op.
func (q *msgQueue) restore(items []Message, version uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed.Load() {
		return
	}
	for { // discard current contents, unrecorded
		if _, ok := q.take(); !ok {
			break
		}
	}
	q.front = make([]qitem, len(items))
	for i, m := range items {
		q.front[i] = qitem{msg: m, ver: version}
	}
	q.frontLen.Store(int64(len(items)))
	if len(items) > 0 {
		q.cond.Broadcast()
	}
}

// pushAll appends a batch in order; version stamps each message's epoch
// (the snapshot the mover published). The queue transfer of a rebind uses
// it to land moved messages; unlike the old locked batch append, messages
// from producers racing an unfenced move may interleave with the batch —
// per-producer FIFO order still holds.
func (q *msgQueue) pushAll(items []Message, version uint64) error {
	if len(items) == 0 {
		return nil
	}
	if q.closed.Load() {
		return ErrQueueClosed
	}
	for _, m := range items {
		s := q.claim()
		s.msg = m
		s.ver = version
		s.state.Store(slotFull)
	}
	q.wakeReader()
	return nil
}

// close wakes all blocked readers; subsequent pushes fail. Callers fence
// (routed writers) or hold the control-plane lock (slow-path writers)
// first, so no producer can pass the closed check concurrently with close.
func (q *msgQueue) close() {
	if q.closed.Swap(true) {
		return
	}
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}
