package bus

import (
	"errors"
	"sync"

	"repro/internal/replay"
)

// ErrQueueClosed is returned by queue operations after Close.
var ErrQueueClosed = errors.New("bus: queue closed")

// msgQueue is an unbounded FIFO of messages with blocking pop, the backing
// store for one incoming interface. POLYLITH buffers messages at the bus;
// modules poll with mh_query_ifmsgs and read with mh_read, so the queue
// exposes both a non-blocking length and a blocking pop.
type msgQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	closed bool

	// rec is the record/replay append handle for this queue's endpoint,
	// resolved at AddInstance (nil when the bus runs without a recorder —
	// a no-op, like the telemetry counters). Appends happen under mu, in
	// push order, which is what makes the recorded per-queue sequence the
	// queue's true total delivery order. This is the only layer allowed to
	// append records (archlint AL012).
	rec *replay.QueueLog

	// stale fences routed pushes: pushRouted refuses any push whose route
	// was resolved from a snapshot with version <= stale. A topology change
	// that invalidates this queue's routes (a rebind moving its contents,
	// a binding delete, an instance delete) raises it to the outgoing
	// snapshot's version before publishing the successor; refused writers
	// retry through the bus's slow path against the new topology.
	stale uint64
}

func newMsgQueue() *msgQueue {
	q := &msgQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a message delivered under the writer lock; version is the
// routing snapshot the (slow-path) caller re-resolved against, recorded as
// the delivery's epoch. Pushing to a closed queue reports ErrQueueClosed.
//
//archlint:hotpath
func (q *msgQueue) push(m Message, version uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	q.items = append(q.items, m)
	q.rec.Append(m.From.Instance, m.From.Interface, m.Data, m.Trace, version)
	q.cond.Signal()
	return nil
}

// pushRouted appends a message whose target was resolved from the snapshot
// with the given version. It refuses with errStaleRoute when the queue has
// been fenced at or past that version, so a writer racing a topology change
// can never land traffic on an abandoned route.
//
//archlint:hotpath
func (q *msgQueue) pushRouted(m Message, version uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if version <= q.stale {
		return errStaleRoute
	}
	q.items = append(q.items, m)
	q.rec.Append(m.From.Instance, m.From.Interface, m.Data, m.Trace, version)
	q.cond.Signal()
	return nil
}

// detach fences the queue at the given snapshot version: every subsequent
// pushRouted carrying that version or older is refused. Monotonic — a later
// fence never lowers an earlier one.
func (q *msgQueue) detach(version uint64) {
	q.mu.Lock()
	if version > q.stale {
		q.stale = version
	}
	q.mu.Unlock()
}

// pushAll appends a batch in order, waking all readers once. The queue
// transfer of a rebind uses it to land the moved messages atomically with
// respect to readers. Transfers are not recorded: each message was already
// recorded at its original delivery, and a queue move re-homes rather than
// re-delivers it.
func (q *msgQueue) pushAll(items []Message) error {
	if len(items) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	q.items = append(q.items, items...)
	q.cond.Broadcast()
	return nil
}

// pop removes and returns the oldest message, blocking until one is
// available or the queue closes.
//
//archlint:hotpath
func (q *msgQueue) pop() (Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Message{}, ErrQueueClosed
	}
	m := q.items[0]
	q.items = q.items[1:]
	return m, nil
}

// tryPop removes and returns the oldest message without blocking.
//
//archlint:hotpath
func (q *msgQueue) tryPop() (Message, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		if q.closed {
			return Message{}, false, ErrQueueClosed
		}
		return Message{}, false, nil
	}
	m := q.items[0]
	q.items = q.items[1:]
	return m, true, nil
}

// length returns the number of queued messages.
func (q *msgQueue) length() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// drain removes and returns all queued messages (the "cq" primitive moves
// them to another queue).
func (q *msgQueue) drain() []Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := q.items
	q.items = nil
	return items
}

// snapshot returns a copy of the queued messages without removing them,
// for rollback bookkeeping.
func (q *msgQueue) snapshot() []Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := make([]Message, len(q.items))
	copy(items, q.items)
	return items
}

// restore replaces the queue contents with a snapshot, waking readers if it
// is non-empty. Restoring a closed queue is a no-op.
func (q *msgQueue) restore(items []Message) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items[:0:0], items...)
	if len(q.items) > 0 {
		q.cond.Broadcast()
	}
}

// close wakes all blocked readers; subsequent pushes fail.
func (q *msgQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		q.cond.Broadcast()
	}
}
