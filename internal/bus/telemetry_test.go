package bus

import (
	"strings"
	"testing"
)

func twoNodeBus(t *testing.T, opts ...BusOption) *Bus {
	t.Helper()
	b := New(opts...)
	if err := b.AddInstance(InstanceSpec{Name: "src", Interfaces: []IfaceSpec{{Name: "out", Dir: Out}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInstance(InstanceSpec{Name: "dst", Interfaces: []IfaceSpec{{Name: "in", Dir: In}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddBinding(Endpoint{"src", "out"}, Endpoint{"dst", "in"}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBusTelemetryCounters(t *testing.T) {
	b := twoNodeBus(t)
	for i := 0; i < 7; i++ {
		if err := b.write(Endpoint{"src", "out"}, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	snap := b.Telemetry().Snapshot()
	if got := snap.Counters["bus.iface.src.out.sent"]; got != 7 {
		t.Errorf("sent = %d, want 7", got)
	}
	if got := snap.Counters["bus.iface.dst.in.delivered"]; got != 7 {
		t.Errorf("delivered = %d, want 7", got)
	}
	if got := snap.Gauges["bus.iface.dst.in.queue_depth"]; got != 7 {
		t.Errorf("queue_depth = %d, want 7", got)
	}

	// Draining the queue moves the computed gauge, with no hot-path work.
	if _, err := b.DrainQueue(Endpoint{"dst", "in"}); err != nil {
		t.Fatal(err)
	}
	if got := b.Telemetry().Snapshot().Gauges["bus.iface.dst.in.queue_depth"]; got != 0 {
		t.Errorf("queue_depth after drain = %d, want 0", got)
	}

	// Deleting the instance unregisters its metrics.
	if err := b.DeleteInstance("dst"); err != nil {
		t.Fatal(err)
	}
	for _, name := range b.Telemetry().Names() {
		if strings.HasPrefix(name, "bus.iface.dst.") {
			t.Errorf("metric %q survived DeleteInstance", name)
		}
	}
}

func TestBusTelemetryDisabled(t *testing.T) {
	b := twoNodeBus(t, WithTelemetry(nil))
	if b.Telemetry() != nil {
		t.Fatal("WithTelemetry(nil) did not disable telemetry")
	}
	for i := 0; i < 3; i++ {
		if err := b.write(Endpoint{"src", "out"}, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	if b.Stats().Delivered != 3 {
		t.Fatalf("plain stats broken with telemetry off: %+v", b.Stats())
	}
	// And deletion still works with no registry to unregister from.
	if err := b.DeleteInstance("dst"); err != nil {
		t.Fatal(err)
	}
}

// TestWriteTelemetryAddsNoAllocs compares the allocation count of the write
// path with telemetry on vs. off: the instrumentation must add zero
// allocations per message.
func TestWriteTelemetryAddsNoAllocs(t *testing.T) {
	measure := func(b *Bus) float64 {
		t.Helper()
		ep := Endpoint{"src", "out"}
		sink := Endpoint{"dst", "in"}
		payload := []byte("m")
		// AllocsPerRun counts process-global mallocs, so a straggling
		// goroutine from an earlier test can inflate one sample; take the
		// minimum of three — a real per-message allocation shows up in all.
		best := -1.0
		for i := 0; i < 3; i++ {
			n := testing.AllocsPerRun(200, func() {
				if err := b.write(ep, payload); err != nil {
					t.Fatal(err)
				}
				if _, err := b.DrainQueue(sink); err != nil {
					t.Fatal(err)
				}
			})
			if best < 0 || n < best {
				best = n
			}
		}
		return best
	}
	off := measure(twoNodeBus(t, WithTelemetry(nil)))
	on := measure(twoNodeBus(t))
	if on > off {
		t.Errorf("telemetry adds allocations on the write path: %v with vs %v without", on, off)
	}
}
