package analyze

import (
	"go/ast"
	"go/token"
	"sort"

	"repro/internal/callgraph"
	"repro/internal/flatten"
	"repro/internal/lang"
	"repro/internal/liveness"
	"repro/internal/mil"
	"repro/internal/transform"
)

// checkCapture cross-checks the specification's reconfiguration points
// against the source (MH003–MH005) and, when the configuration uses
// declared state lists, diffs them against the liveness analysis
// (MH006, MH007).
func checkCapture(r *Report, cfg Config, mod *mil.Module, prog *lang.Program, info *lang.Info) {
	srcPoints := map[string]lang.Point{}
	for _, pt := range info.Points {
		if _, dup := srcPoints[pt.Label]; !dup {
			srcPoints[pt.Label] = pt
		}
	}

	for i := range mod.ReconfigPoints {
		spt := &mod.ReconfigPoints[i]
		src, ok := srcPoints[spt.Label]
		if !ok {
			r.Add(CodePointNoMarker, SevError, milPos(cfg.SpecFile, spt.Pos),
				"specification point %s has no mh.ReconfigPoint(%q) marker in the source of module %s",
				spt.Label, spt.Label, mod.Name)
			continue
		}
		names := map[string]bool{}
		for _, v := range info.FuncVars[src.Func] {
			names[v.Name] = true
		}
		for _, v := range spt.Vars {
			if !names[v] {
				r.Add(CodeUnknownStateVar, SevError, milPos(cfg.SpecFile, spt.Pos),
					"state list for point %s names %s, which is not a parameter or local of %s",
					spt.Label, v, src.Func)
			}
		}
	}

	for _, pt := range info.Points {
		if mod.Point(pt.Label) == nil {
			r.Add(CodeMarkerNotInSpec, SevWarning, prog.Fset.Position(pt.Call.Pos()),
				"source reconfiguration point %s is not declared in the specification of module %s",
				pt.Label, mod.Name)
		}
	}

	// Declared capture lists only matter under specification mode; the
	// other modes derive the set and are sound by construction.
	if effectiveMode(cfg, mod) != transform.CaptureSpec || !specHasVars(mod) {
		return
	}
	checkCaptureSoundness(r, cfg, mod)
}

// checkCaptureSoundness re-runs the transform's analysis pipeline — flatten
// the instrumented procedures, rebuild the reconfiguration graph, compute
// liveness — and diffs each procedure's declared capture set against it.
//
// The soundness criterion is asymmetric, mirroring how restoration works
// (Section 3). Restore re-issues the original calls, and each callee
// restores its own frame, so what a frame must carry is exactly what is
// live *after* each of the procedure's reconfiguration-graph edges: a live
// variable missing there is unrecoverable state (MH006, error). A declared
// variable, however, is not waste just because it is dead after an edge —
// at a call edge it may exist to feed the re-issued call — so the dead
// warning (MH007) requires the variable to be dead at the capture
// *instant* of every edge: before each call, after each point marker.
//
// Liveness runs with MHOutParams so that runtime out-parameters
// (mh.Read(iface, &x)) count as definitions: the paper's own Figure 2 list
// {num, n, rp} — which omits temper — checks as sound.
func checkCaptureSoundness(r *Report, cfg Config, mod *mil.Module) {
	prog, err := lang.ParseFiles(cfg.Sources)
	if err != nil {
		return // reported as MH002 by the main pass
	}
	info, err := lang.Check(prog)
	if err != nil {
		return
	}
	g := callgraph.Build(prog)
	rg, err := callgraph.BuildReconfig(g, info)
	if err != nil {
		return // no points / unreachable point: reported by placement
	}
	for _, name := range rg.Nodes {
		if _, err := flatten.Function(prog, info, name); err != nil {
			return
		}
	}
	for _, name := range rg.Nodes {
		flatten.PruneLabels(prog.Funcs[name].Decl, nil)
	}
	prog, info, err = lang.Reload(prog)
	if err != nil {
		return
	}
	g = callgraph.Build(prog)
	rg, err = callgraph.BuildReconfig(g, info)
	if err != nil {
		return
	}

	pvars := pointVars(mod)
	for _, name := range rg.Nodes {
		edges := rg.EdgesFrom(name)

		// The declared set is the union of the state lists of the
		// procedure's specification points — the same rule the weaver
		// applies in spec mode. Procedures without declared lists fall
		// back to all-locals, which is always sound.
		declared := map[string]bool{}
		var order []string
		var anchor token.Position
		for _, e := range edges {
			if !e.IsReconfig() {
				continue
			}
			vars, ok := pvars[e.Point.Label]
			if !ok {
				continue
			}
			if !anchor.IsValid() && anchor.Filename == "" {
				if spt := mod.Point(e.Point.Label); spt != nil {
					anchor = milPos(cfg.SpecFile, spt.Pos)
				}
			}
			for _, v := range vars {
				if !declared[v] {
					declared[v] = true
					order = append(order, v)
				}
			}
		}
		if len(declared) == 0 {
			continue
		}

		a, err := liveness.AnalyzeOpts(prog, info, name, liveness.Options{MHOutParams: true})
		if err != nil {
			continue
		}

		required := map[string]bool{} // must be captured: live after some edge
		useful := map[string]bool{}   // read at some edge's capture instant
		for _, e := range edges {
			idx := edgeStmtIndex(a, prog, e)
			if idx < 0 {
				continue
			}
			for _, v := range a.LiveAfter(idx) {
				required[v] = true
			}
			if e.IsReconfig() {
				for _, v := range a.LiveAfter(idx) {
					useful[v] = true
				}
			} else {
				for _, v := range a.LiveBefore(idx) {
					useful[v] = true
				}
			}
		}

		for _, v := range sortedKeys(required) {
			if !declared[v] {
				r.Add(CodeCaptureMissing, SevError, anchor,
					"procedure %s: variable %s is live at a reconfiguration edge but missing from the declared capture set {%s}; restoring from it would lose state",
					name, v, joinVars(order))
			}
		}

		procVars := map[string]bool{}
		for _, v := range info.FuncVars[name] {
			procVars[v.Name] = true
		}
		for _, v := range order {
			if procVars[v] && !useful[v] {
				r.Add(CodeCaptureDead, SevWarning, anchor,
					"procedure %s: captured variable %s is dead at every reconfiguration edge; capturing it only grows the abstract state",
					name, v)
			}
		}
	}
}

// edgeStmtIndex locates a reconfiguration-graph edge's statement in the
// flattened body, matching the weaver's notion of where capture happens.
func edgeStmtIndex(a *liveness.Analysis, prog *lang.Program, e callgraph.Edge) int {
	if e.IsReconfig() {
		return a.IndexOf(e.Point.Stmt)
	}
	for i, s := range a.Stmts {
		if stmtCall(s, prog) == e.Call {
			return i
		}
	}
	return -1
}

// stmtCall extracts the module-procedure call from a flat statement, if
// any (the same shapes the transform's weaver recognizes).
func stmtCall(s ast.Stmt, prog *lang.Program) *ast.CallExpr {
	switch st := s.(type) {
	case *ast.LabeledStmt:
		return stmtCall(st.Stmt, prog)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if _, isFn := prog.Funcs[id.Name]; isFn {
					return call
				}
			}
		}
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					if _, isFn := prog.Funcs[id.Name]; isFn {
						return call
					}
				}
			}
		}
	}
	return nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func joinVars(vars []string) string {
	s := ""
	for i, v := range vars {
		if i > 0 {
			s += ", "
		}
		s += v
	}
	return s
}
