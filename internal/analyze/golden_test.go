package analyze

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// brokenMonitor is the Monitor configuration sabotaged to trip one
// diagnostic of each spec-vs-source class: an undeclared source marker
// (MH004), a spec point with no marker (MH003), an unknown state variable
// (MH005), a dropped live variable (MH006), and a dead captured one
// (MH007).
func brokenMonitor(t *testing.T) Config {
	t.Helper()
	src := strings.Replace(fixtures.ComputeSource,
		"mh.Read(\"sensor\", &temper)",
		"mh.ReconfigPoint(\"S\")\n\tmh.Read(\"sensor\", &temper)", 1)
	spec := strings.Replace(fixtures.MonitorSpec,
		"reconfiguration point = {R} ::",
		"reconfiguration point = {R, Q} ::", 1)
	spec = strings.Replace(spec,
		"state R = {num, n, rp} ::",
		"state R = {n, rp, temper, ghost} ::", 1)
	return Config{
		Sources:  map[string]string{"compute.go": src},
		Spec:     parseSpec(t, spec),
		SpecFile: "app.mil",
		Module:   "compute",
	}
}

func TestGoldenBrokenMonitorText(t *testing.T) {
	r := runOn(t, brokenMonitor(t))
	for _, c := range []string{CodePointNoMarker, CodeMarkerNotInSpec,
		CodeUnknownStateVar, CodeCaptureMissing, CodeCaptureDead} {
		if !hasCode(r, c) {
			t.Errorf("missing %s in %v", c, codes(r))
		}
	}
	checkGolden(t, "broken_monitor.txt", r.Text())
}

func TestGoldenBrokenMonitorJSON(t *testing.T) {
	r := runOn(t, brokenMonitor(t))
	checkGolden(t, "broken_monitor.json", r.JSON())
}

func TestGoldenCleanMonitor(t *testing.T) {
	r := runOn(t, Config{
		Sources:  map[string]string{"compute.go": fixtures.ComputeSource},
		Spec:     parseSpec(t, fixtures.MonitorSpec),
		SpecFile: "app.mil",
		Module:   "compute",
	})
	checkGolden(t, "clean_monitor.txt", r.Text())
	checkGolden(t, "clean_monitor.json", r.JSON())
}
