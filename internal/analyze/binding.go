package analyze

import (
	"repro/internal/mil"
	"repro/internal/state"
)

// milKinds maps MIL message-type names to abstract-state kinds. The
// specification language inherits POLYLITH's loose type vocabulary, so
// several spellings fold to one kind.
var milKinds = map[string]state.Kind{
	"integer": state.KindInt,
	"int":     state.KindInt,
	"long":    state.KindInt,
	"float":   state.KindFloat,
	"double":  state.KindFloat,
	"real":    state.KindFloat,
	"boolean": state.KindBool,
	"bool":    state.KindBool,
	"string":  state.KindString,
	"list":    state.KindList,
	"struct":  state.KindStruct,
	"record":  state.KindStruct,
}

// checkBindings type-checks the message signatures across every binding of
// every application (MH011), flagging type names outside the analyzer's
// vocabulary (MH012). Structural problems — unknown instances, interfaces,
// direction mismatches — are MH001 findings from mil.Validate, so this
// pass silently skips endpoints it cannot resolve.
func checkBindings(r *Report, spec *mil.Spec, specFile string) {
	for _, app := range spec.Applications {
		insts := map[string]*mil.Instance{}
		for _, in := range app.Instances {
			if _, dup := insts[in.Name]; !dup {
				insts[in.Name] = in
			}
		}
		for _, b := range app.Binds {
			from := bindingInterface(spec, insts, b.From)
			to := bindingInterface(spec, insts, b.To)
			if from == nil || to == nil {
				continue
			}
			if from.Role.Sends() && to.Role.Receives() {
				compareSignature(r, specFile, b, from, to)
			}
			if to.Role.Sends() && from.Role.Receives() {
				compareSignature(r, specFile, b, to, from)
			}
		}
	}
}

// bindingInterface resolves one endpoint to its interface, or nil.
func bindingInterface(spec *mil.Spec, insts map[string]*mil.Instance, e mil.Endpoint) *mil.Interface {
	in, ok := insts[e.Instance]
	if !ok {
		return nil
	}
	mod := spec.Module(in.Module)
	if mod == nil {
		return nil
	}
	return mod.Interface(e.Interface)
}

// sendTypes returns the type set an interface emits along a binding: the
// message pattern for clients and defines, the reply set for servers.
func sendTypes(ifc *mil.Interface) []mil.TypeRef {
	switch ifc.Role {
	case mil.RoleClient, mil.RoleDefine:
		return ifc.Pattern
	case mil.RoleServer:
		return ifc.Returns
	}
	return nil
}

// recvTypes returns the type set an interface consumes from a binding: the
// message pattern for servers and uses, the accept set for clients.
func recvTypes(ifc *mil.Interface) []mil.TypeRef {
	switch ifc.Role {
	case mil.RoleServer, mil.RoleUse:
		return ifc.Pattern
	case mil.RoleClient:
		return ifc.Accepts
	}
	return nil
}

// compareSignature checks one direction of a binding: what sender emits
// against what receiver expects. An empty set on either side means the
// specification left that signature open — nothing to check.
func compareSignature(r *Report, specFile string, b *mil.Bind, sender, receiver *mil.Interface) {
	out := sendTypes(sender)
	in := recvTypes(receiver)
	if len(out) == 0 || len(in) == 0 {
		return
	}
	if len(out) != len(in) {
		r.Add(CodeBindingMismatch, SevError, milPos(specFile, b.Pos),
			"binding %q -> %q: %s sends %d value(s) but %s expects %d",
			b.From, b.To, sender.Name, len(out), receiver.Name, len(in))
		return
	}
	for i := range out {
		sk, sok := typeKind(r, specFile, sender, out[i])
		rk, rok := typeKind(r, specFile, receiver, in[i])
		if !sok || !rok {
			continue
		}
		if sk != rk {
			r.Add(CodeBindingMismatch, SevError, milPos(specFile, b.Pos),
				"binding %q -> %q: message position %d is %s on %s but %s on %s",
				b.From, b.To, i+1, out[i].Name, sender.Name, in[i].Name, receiver.Name)
		}
	}
}

// typeKind folds a MIL type name to its abstract-state kind, reporting
// MH012 at most once per interface.
func typeKind(r *Report, specFile string, ifc *mil.Interface, ref mil.TypeRef) (state.Kind, bool) {
	if k, ok := milKinds[ref.Name]; ok {
		return k, true
	}
	for _, d := range r.Diags {
		if d.Code == CodeUnknownMILType && d.Pos == milPos(specFile, ifc.Pos) {
			return state.KindInvalid, false
		}
	}
	r.Add(CodeUnknownMILType, SevWarning, milPos(specFile, ifc.Pos),
		"interface %s names message type %q, which maps to no abstract-state kind; its bindings are not type-checked",
		ifc.Name, ref.Name)
	return state.KindInvalid, false
}
