// Package analyze is the static reconfiguration-safety analyzer: a
// multi-pass diagnostics engine over a module's source, its configuration
// specification, and (optionally) a proposed replacement module.
//
// The paper leaves two correctness obligations to the programmer: listing
// the variables that comprise the process state at each reconfiguration
// point (Section 3 notes data-flow analysis "could be used" and defers it)
// and placing reconfiguration points so that replacement is not delayed
// indefinitely (the Discussion's delay bounds). This package checks both
// before the transform runs, plus the inter-module obligations the paper's
// runtime would only discover mid-swap: binding type compatibility and
// old/new abstract-state mapping compatibility.
//
// Every finding is a Diagnostic with a stable code, a severity, and a
// source position; a Report renders as human text or JSON.
package analyze

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity int

// Severities. Errors make the configuration unsafe to transform; warnings
// flag waste or delay risks that do not compromise soundness.
const (
	SevWarning Severity = iota + 1
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic codes. Codes are stable across releases: tools may match on
// them, and the README documents each one.
const (
	// CodeSpecInvalid: the MIL specification fails validation.
	CodeSpecInvalid = "MH001"
	// CodeSourceInvalid: the module source fails to parse or check.
	CodeSourceInvalid = "MH002"
	// CodePointNoMarker: a spec reconfiguration point has no source marker.
	CodePointNoMarker = "MH003"
	// CodeMarkerNotInSpec: a source marker is not declared in the spec.
	CodeMarkerNotInSpec = "MH004"
	// CodeUnknownStateVar: a spec state list names no variable of the
	// procedure containing the point.
	CodeUnknownStateVar = "MH005"
	// CodeCaptureMissing: a live variable is missing from the declared
	// capture set (restore would be unsound).
	CodeCaptureMissing = "MH006"
	// CodeCaptureDead: a declared capture variable is dead at every
	// reconfiguration edge (wasted state).
	CodeCaptureDead = "MH007"
	// CodePointUnreachable: a reconfiguration point sits in a procedure
	// unreachable from main.
	CodePointUnreachable = "MH008"
	// CodeCycleNoPoint: a reachable recursive cycle contains no
	// reconfiguration point (unbounded reconfiguration delay).
	CodeCycleNoPoint = "MH009"
	// CodeNoPoints: the module declares no reconfiguration points at all.
	CodeNoPoints = "MH010"
	// CodeBindingMismatch: a binding connects interfaces whose message
	// signatures disagree.
	CodeBindingMismatch = "MH011"
	// CodeUnknownMILType: a MIL interface names a message type the
	// analyzer cannot map to an abstract-state kind.
	CodeUnknownMILType = "MH012"
	// CodeReplacementDropsProc: the replacement module lacks an
	// instrumented procedure of the old module.
	CodeReplacementDropsProc = "MH013"
	// CodeReplacementShape: old and new capture sets for a procedure
	// disagree in arity or type (the AR-stack frames cannot be mapped).
	CodeReplacementShape = "MH014"
	// CodeReplacementEdges: old and new reconfiguration graphs disagree
	// on a procedure's edge numbers or point labels (resume locations
	// would not align).
	CodeReplacementEdges = "MH015"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Code     string         `json:"code"`
	Severity Severity       `json:"severity"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the compiler-style text form.
func (d Diagnostic) String() string {
	if d.Pos.Filename != "" || d.Pos.IsValid() {
		return fmt.Sprintf("%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Message)
	}
	return fmt.Sprintf("%s[%s]: %s", d.Severity, d.Code, d.Message)
}

// diagJSON is the stable wire form of a Diagnostic.
type diagJSON struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

// Report collects the diagnostics of one analyzer run.
type Report struct {
	Diags []Diagnostic
}

func (r *Report) add(code string, sev Severity, pos token.Position, format string, args ...any) {
	r.Diags = append(r.Diags, Diagnostic{
		Code:     code,
		Severity: sev,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Sort orders diagnostics by file, line, column, then code, making both
// renderings deterministic.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any diagnostic is an error.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Counts returns the number of errors and warnings.
func (r *Report) Counts() (errors, warnings int) {
	for _, d := range r.Diags {
		if d.Severity == SevError {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}

// Text renders the report as one line per diagnostic plus a summary line.
func (r *Report) Text() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	errs, warns := r.Counts()
	if len(r.Diags) == 0 {
		b.WriteString("ok: no diagnostics\n")
	} else {
		fmt.Fprintf(&b, "%d error(s), %d warning(s)\n", errs, warns)
	}
	return b.String()
}

// JSON renders the report in the stable machine-readable form.
func (r *Report) JSON() string {
	errs, warns := r.Counts()
	out := struct {
		Diagnostics []diagJSON `json:"diagnostics"`
		Errors      int        `json:"errors"`
		Warnings    int        `json:"warnings"`
	}{Diagnostics: []diagJSON{}, Errors: errs, Warnings: warns}
	for _, d := range r.Diags {
		out.Diagnostics = append(out.Diagnostics, diagJSON{
			Code:     d.Code,
			Severity: d.Severity,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		// The structure contains only marshalable fields; this is
		// unreachable but kept explicit.
		return fmt.Sprintf(`{"error": %q}`, err.Error())
	}
	return string(data) + "\n"
}
