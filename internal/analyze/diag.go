// Package analyze is the static reconfiguration-safety analyzer: a
// multi-pass diagnostics engine over a module's source, its configuration
// specification, and (optionally) a proposed replacement module.
//
// The paper leaves two correctness obligations to the programmer: listing
// the variables that comprise the process state at each reconfiguration
// point (Section 3 notes data-flow analysis "could be used" and defers it)
// and placing reconfiguration points so that replacement is not delayed
// indefinitely (the Discussion's delay bounds). This package checks both
// before the transform runs, plus the inter-module obligations the paper's
// runtime would only discover mid-swap: binding type compatibility and
// old/new abstract-state mapping compatibility.
//
// Every finding is a Diagnostic with a stable code, a severity, and a
// source position; a Report renders as human text or JSON. The diagnostic
// machinery itself lives in internal/diag and is shared with the
// architectural analyzer (internal/archlint); this package re-exports the
// types so existing callers keep working unchanged.
package analyze

import "repro/internal/diag"

// Severity classifies a diagnostic.
type Severity = diag.Severity

// Severities. Errors make the configuration unsafe to transform; warnings
// flag waste or delay risks that do not compromise soundness.
const (
	SevWarning = diag.SevWarning
	SevError   = diag.SevError
)

// Diagnostic codes. Codes are stable across releases: tools may match on
// them, and the README documents each one.
const (
	// CodeSpecInvalid: the MIL specification fails validation.
	CodeSpecInvalid = "MH001"
	// CodeSourceInvalid: the module source fails to parse or check.
	CodeSourceInvalid = "MH002"
	// CodePointNoMarker: a spec reconfiguration point has no source marker.
	CodePointNoMarker = "MH003"
	// CodeMarkerNotInSpec: a source marker is not declared in the spec.
	CodeMarkerNotInSpec = "MH004"
	// CodeUnknownStateVar: a spec state list names no variable of the
	// procedure containing the point.
	CodeUnknownStateVar = "MH005"
	// CodeCaptureMissing: a live variable is missing from the declared
	// capture set (restore would be unsound).
	CodeCaptureMissing = "MH006"
	// CodeCaptureDead: a declared capture variable is dead at every
	// reconfiguration edge (wasted state).
	CodeCaptureDead = "MH007"
	// CodePointUnreachable: a reconfiguration point sits in a procedure
	// unreachable from main.
	CodePointUnreachable = "MH008"
	// CodeCycleNoPoint: a reachable recursive cycle contains no
	// reconfiguration point (unbounded reconfiguration delay).
	CodeCycleNoPoint = "MH009"
	// CodeNoPoints: the module declares no reconfiguration points at all.
	CodeNoPoints = "MH010"
	// CodeBindingMismatch: a binding connects interfaces whose message
	// signatures disagree.
	CodeBindingMismatch = "MH011"
	// CodeUnknownMILType: a MIL interface names a message type the
	// analyzer cannot map to an abstract-state kind.
	CodeUnknownMILType = "MH012"
	// CodeReplacementDropsProc: the replacement module lacks an
	// instrumented procedure of the old module.
	CodeReplacementDropsProc = "MH013"
	// CodeReplacementShape: old and new capture sets for a procedure
	// disagree in arity or type (the AR-stack frames cannot be mapped).
	CodeReplacementShape = "MH014"
	// CodeReplacementEdges: old and new reconfiguration graphs disagree
	// on a procedure's edge numbers or point labels (resume locations
	// would not align).
	CodeReplacementEdges = "MH015"
)

// Diagnostic is one analyzer finding.
type Diagnostic = diag.Diagnostic

// Report collects the diagnostics of one analyzer run.
type Report = diag.Report
