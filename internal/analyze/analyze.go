package analyze

import (
	"errors"
	"fmt"
	"go/token"

	"repro/internal/lang"
	"repro/internal/mil"
	"repro/internal/transform"
)

// Config selects what one analyzer run examines. Sources is required;
// everything else widens the set of passes that can run.
type Config struct {
	// Sources maps file name to module source text.
	Sources map[string]string
	// Spec is the parsed configuration specification, or nil to run the
	// source-only passes.
	Spec *mil.Spec
	// SpecFile names the specification file for diagnostic positions.
	SpecFile string
	// Module names the module specification in Spec that describes
	// Sources. Required when Spec is set.
	Module string
	// Replacement maps file name to the proposed replacement module's
	// sources, or nil to skip the replacement-compatibility pass.
	Replacement map[string]string
	// Mode overrides the capture mode under analysis. Zero means the
	// transform default: spec mode when the module declares state lists,
	// all-locals otherwise.
	Mode transform.CaptureMode
}

// Run executes every applicable pass and returns the sorted report. The
// error return is reserved for configuration misuse (no sources, unknown
// module name); analysis findings — including unparseable input — are
// diagnostics, not errors.
func Run(cfg Config) (*Report, error) {
	if len(cfg.Sources) == 0 {
		return nil, errors.New("analyze: no sources")
	}
	var mod *mil.Module
	if cfg.Spec != nil {
		if cfg.Module == "" {
			return nil, errors.New("analyze: spec given without module name")
		}
		mod = cfg.Spec.Module(cfg.Module)
		if mod == nil {
			return nil, fmt.Errorf("analyze: spec has no module %s", cfg.Module)
		}
	}

	r := &Report{}

	// Pass 0a: specification validity (MH001).
	if cfg.Spec != nil {
		specDiagnostics(r, cfg.Spec, cfg.SpecFile)
	}

	// Pass 0b: source validity (MH002). Later passes need a checked
	// program; stop at the first layer that fails.
	prog, info, ok := checkedProgram(r, cfg.Sources, cfg.SpecFile)

	if ok {
		// Pass 1: reconfiguration-point placement (MH008–MH010).
		checkPlacement(r, prog, info)

		if mod != nil {
			// Pass 2: spec/source point cross-checks (MH003–MH005) and
			// capture-set soundness (MH006, MH007).
			checkCapture(r, cfg, mod, prog, info)
		}
	}

	// Pass 3: binding compatibility (MH011, MH012) — needs only the spec.
	if cfg.Spec != nil {
		checkBindings(r, cfg.Spec, cfg.SpecFile)
	}

	// Pass 4: replacement compatibility (MH013–MH015).
	if ok && len(cfg.Replacement) > 0 {
		checkReplacement(r, cfg, mod)
	}

	r.Sort()
	return r, nil
}

// specDiagnostics converts MIL validation findings into MH001 diagnostics.
func specDiagnostics(r *Report, spec *mil.Spec, specFile string) {
	err := mil.Validate(spec)
	if err == nil {
		return
	}
	var list mil.ErrorList
	if errors.As(err, &list) {
		for _, pe := range list {
			r.Add(CodeSpecInvalid, SevError, milPos(specFile, pe.Pos), "%s", pe.Msg)
		}
		return
	}
	r.Add(CodeSpecInvalid, SevError, token.Position{Filename: specFile}, "%s", err.Error())
}

// checkedProgram parses and checks the module sources, reporting failures
// as MH002. ok is false when later passes cannot run.
func checkedProgram(r *Report, sources map[string]string, specFile string) (*lang.Program, *lang.Info, bool) {
	prog, err := lang.ParseFiles(sources)
	if err != nil {
		r.Add(CodeSourceInvalid, SevError, token.Position{}, "%s", err.Error())
		return nil, nil, false
	}
	info, err := lang.Check(prog)
	if err != nil {
		var list lang.ErrorList
		if errors.As(err, &list) {
			for _, e := range list {
				r.Add(CodeSourceInvalid, SevError, e.Pos, "%s", e.Msg)
			}
		} else {
			r.Add(CodeSourceInvalid, SevError, token.Position{}, "%s", err.Error())
		}
		return nil, nil, false
	}
	return prog, info, true
}

// milPos converts a MIL position into a token.Position anchored at the
// specification file.
func milPos(specFile string, p mil.Pos) token.Position {
	return token.Position{Filename: specFile, Line: p.Line, Column: p.Col}
}

// effectiveMode resolves the capture mode under analysis, mirroring
// cmd/mhgen's default: specification lists when present, all-locals
// otherwise.
func effectiveMode(cfg Config, mod *mil.Module) transform.CaptureMode {
	if cfg.Mode != 0 {
		return cfg.Mode
	}
	if mod != nil && specHasVars(mod) {
		return transform.CaptureSpec
	}
	return transform.CaptureAll
}

// specHasVars reports whether any reconfiguration point declares a state
// list.
func specHasVars(mod *mil.Module) bool {
	for _, pt := range mod.ReconfigPoints {
		if len(pt.Vars) > 0 {
			return true
		}
	}
	return false
}

// pointVars extracts the per-point state lists of a module specification.
func pointVars(mod *mil.Module) map[string][]string {
	out := map[string][]string{}
	for _, pt := range mod.ReconfigPoints {
		if len(pt.Vars) > 0 {
			out[pt.Label] = pt.Vars
		}
	}
	return out
}
