package analyze

import (
	"errors"
	"go/token"

	"repro/internal/lang"
	"repro/internal/mil"
	"repro/internal/transform"
)

// checkReplacement verifies that a proposed replacement module can accept
// the running module's abstract state (Section 4: the new version is
// "prepared for replacement" with the *same* reconfiguration structure).
// It runs the transform's analysis on both versions under the same options
// and compares, procedure by procedure:
//
//   - MH013: every instrumented procedure of the old module must exist in
//     the new one — its activation records name that procedure;
//   - MH014: the capture sets must agree in arity and (deeply) in type, or
//     a captured frame cannot be installed; a pure rename is a warning,
//     because frames carry values positionally;
//   - MH015: the procedure's reconfiguration-graph edge numbers and the
//     module's point labels must match, or resume locations in restored
//     frames would name different program points.
func checkReplacement(r *Report, cfg Config, mod *mil.Module) {
	opts := transform.Options{Mode: effectiveMode(cfg, mod)}
	if mod != nil {
		opts.PointVars = pointVars(mod)
	}

	oldOut, err := transform.Prepare(cfg.Sources, opts)
	if err != nil {
		// The old module's problems are reported by the other passes.
		return
	}
	newOut, err := transform.Prepare(cfg.Replacement, opts)
	if err != nil {
		reportReplacementPrepare(r, err)
		return
	}

	// Fresh parses give diagnostics true source positions; the transform
	// output has flattened, rewoven bodies.
	oldProg, _ := lang.ParseFiles(cfg.Sources)
	newProg, _ := lang.ParseFiles(cfg.Replacement)

	for _, name := range oldOut.Graph.Nodes {
		oldFr := oldOut.Funcs[name]
		newFr := newOut.Funcs[name]
		if newFr == nil {
			r.Add(CodeReplacementDropsProc, SevError, replDeclPos(oldProg, name),
				"replacement module has no instrumented procedure %s; its activation records cannot be mapped", name)
			continue
		}
		pos := replDeclPos(newProg, name)
		if len(oldFr.Captured) != len(newFr.Captured) {
			r.Add(CodeReplacementShape, SevError, pos,
				"procedure %s: capture set has %d variable(s) but the replacement's has %d; frames cannot be installed",
				name, len(oldFr.Captured), len(newFr.Captured))
			continue
		}
		for i := range oldFr.Captured {
			ov, nv := oldFr.Captured[i], newFr.Captured[i]
			if !compatibleTypes(ov.Type, nv.Type) || ov.Pointer != nv.Pointer {
				r.Add(CodeReplacementShape, SevError, pos,
					"procedure %s: capture slot %d is %s %s but %s %s in the replacement; the value cannot be converted",
					name, i+1, ov.Name, describeVar(ov), nv.Name, describeVar(nv))
				continue
			}
			if ov.Name != nv.Name {
				r.Add(CodeReplacementShape, SevWarning, pos,
					"procedure %s: capture slot %d renames %s to %s; values transfer positionally but the mapping deserves review",
					name, i+1, ov.Name, nv.Name)
			}
		}
		if !sameInts(oldFr.Edges, newFr.Edges) {
			r.Add(CodeReplacementEdges, SevError, pos,
				"procedure %s: reconfiguration edges %v differ from the replacement's %v; restored resume locations would not align",
				name, oldFr.Edges, newFr.Edges)
		}
	}

	oldLabels := pointLabels(oldOut)
	newLabels := pointLabels(newOut)
	for _, l := range oldLabels {
		if !containsString(newLabels, l) {
			r.Add(CodeReplacementEdges, SevError, replDeclPos(newProg, "main"),
				"replacement module drops reconfiguration point %s; state captured there has no installation site", l)
		}
	}
}

// reportReplacementPrepare surfaces a replacement module that the
// transform itself rejects: unparseable source is MH002, a missing or
// unreachable reconfiguration structure is MH015.
func reportReplacementPrepare(r *Report, err error) {
	var list lang.ErrorList
	if errors.As(err, &list) {
		for _, e := range list {
			r.Add(CodeSourceInvalid, SevError, e.Pos, "replacement: %s", e.Msg)
		}
		return
	}
	r.Add(CodeReplacementEdges, SevError, token.Position{},
		"replacement module cannot be prepared: %v", err)
}

// compatibleTypes reports deep structural compatibility of two
// module-subset types. lang.Type.Equal compares named structs by name
// only, so replacement checking walks the shape instead: a struct may be
// renamed, but its fields must agree in name, order, and type for the
// captured value to install.
func compatibleTypes(a, b lang.Type) bool {
	switch at := a.(type) {
	case lang.Basic:
		bb, ok := b.(lang.Basic)
		return ok && at.B == bb.B
	case lang.Slice:
		bs, ok := b.(lang.Slice)
		return ok && compatibleTypes(at.Elem, bs.Elem)
	case lang.Pointer:
		bp, ok := b.(lang.Pointer)
		return ok && compatibleTypes(at.Elem, bp.Elem)
	case *lang.Struct:
		bst, ok := b.(*lang.Struct)
		if !ok || len(at.Fields) != len(bst.Fields) {
			return false
		}
		for i := range at.Fields {
			if at.Fields[i].Name != bst.Fields[i].Name ||
				!compatibleTypes(at.Fields[i].Type, bst.Fields[i].Type) {
				return false
			}
		}
		return true
	}
	return false
}

// describeVar renders a captured variable's type for diagnostics. A
// pointer parameter's Type already carries the * (it is captured by
// pointee value, restored through the pointer).
func describeVar(v transform.CapturedVar) string {
	return v.Type.String()
}

// replDeclPos returns a function's declaration position in a freshly
// parsed program, tolerating a nil program (unparseable input).
func replDeclPos(prog *lang.Program, fn string) token.Position {
	if prog == nil {
		return token.Position{}
	}
	return declPos(prog, fn)
}

// pointLabels lists the reconfiguration point labels of a prepared module.
// The woven output replaces the markers, so the labels come from the
// reconfiguration graph's edges.
func pointLabels(out *transform.Output) []string {
	var labels []string
	for _, e := range out.Graph.Edges {
		if e.IsReconfig() && !containsString(labels, e.Point.Label) {
			labels = append(labels, e.Point.Label)
		}
	}
	return labels
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
