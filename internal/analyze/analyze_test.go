package analyze

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/mil"
	"repro/internal/transform"
)

// runOn analyzes one in-memory configuration.
func runOn(t *testing.T, cfg Config) *Report {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// parseSpec parses (without validating — Run validates) a spec text.
func parseSpec(t *testing.T, src string) *mil.Spec {
	t.Helper()
	spec, err := mil.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// codes returns the diagnostic codes of a report, in report order.
func codes(r *Report) []string {
	var out []string
	for _, d := range r.Diags {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(r *Report, code string) bool {
	for _, d := range r.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestMonitorFixtureClean(t *testing.T) {
	r := runOn(t, Config{
		Sources:  map[string]string{"compute.go": fixtures.ComputeSource},
		Spec:     parseSpec(t, fixtures.MonitorSpec),
		SpecFile: "app.mil",
		Module:   "compute",
	})
	if len(r.Diags) != 0 {
		t.Errorf("Monitor fixture not clean:\n%s", r.Text())
	}
	if r.HasErrors() {
		t.Error("HasErrors on clean run")
	}
}

// monitorSpecWithState returns the Monitor spec with compute's state list
// replaced.
func monitorSpecWithState(t *testing.T, stateList string) *mil.Spec {
	t.Helper()
	src := strings.Replace(fixtures.MonitorSpec,
		"state R = {num, n, rp} ::", stateList, 1)
	if src == fixtures.MonitorSpec && stateList != "state R = {num, n, rp} ::" {
		t.Fatal("state clause not found in fixture spec")
	}
	return parseSpec(t, src)
}

func TestCaptureMissingVariable(t *testing.T) {
	// Dropping num from the Figure 2 list loses live state: num feeds the
	// average update after the point.
	r := runOn(t, Config{
		Sources:  map[string]string{"compute.go": fixtures.ComputeSource},
		Spec:     monitorSpecWithState(t, "state R = {n, rp} ::"),
		SpecFile: "app.mil",
		Module:   "compute",
	})
	if !hasCode(r, CodeCaptureMissing) {
		t.Fatalf("no MH006 in %v", codes(r))
	}
	if !r.HasErrors() {
		t.Error("MH006 must be an error")
	}
	d := r.Diags[0]
	if d.Pos.Filename != "app.mil" || d.Pos.Line == 0 {
		t.Errorf("MH006 position = %v, want spec position", d.Pos)
	}
	if !strings.Contains(d.Message, "num") {
		t.Errorf("MH006 message %q does not name num", d.Message)
	}
}

func TestCaptureDeadVariable(t *testing.T) {
	// temper is rewritten by mh.Read before every use after the point:
	// capturing it is pure waste (warning, not error).
	r := runOn(t, Config{
		Sources:  map[string]string{"compute.go": fixtures.ComputeSource},
		Spec:     monitorSpecWithState(t, "state R = {num, n, rp, temper} ::"),
		SpecFile: "app.mil",
		Module:   "compute",
	})
	if !hasCode(r, CodeCaptureDead) {
		t.Fatalf("no MH007 in %v", codes(r))
	}
	if r.HasErrors() {
		t.Errorf("dead capture must be warning-only:\n%s", r.Text())
	}
	if !strings.Contains(r.Diags[0].Message, "temper") {
		t.Errorf("MH007 message %q does not name temper", r.Diags[0].Message)
	}
}

func TestUnknownStateVariable(t *testing.T) {
	r := runOn(t, Config{
		Sources:  map[string]string{"compute.go": fixtures.ComputeSource},
		Spec:     monitorSpecWithState(t, "state R = {num, n, rp, ghost} ::"),
		SpecFile: "app.mil",
		Module:   "compute",
	})
	if !hasCode(r, CodeUnknownStateVar) {
		t.Fatalf("no MH005 in %v", codes(r))
	}
	if !r.HasErrors() {
		t.Error("MH005 must be an error")
	}
}

func TestSpecPointWithoutMarker(t *testing.T) {
	spec := parseSpec(t, strings.Replace(fixtures.MonitorSpec,
		"reconfiguration point = {R} ::",
		"reconfiguration point = {R, Q} ::", 1))
	r := runOn(t, Config{
		Sources:  map[string]string{"compute.go": fixtures.ComputeSource},
		Spec:     spec,
		SpecFile: "app.mil",
		Module:   "compute",
	})
	if !hasCode(r, CodePointNoMarker) {
		t.Fatalf("no MH003 in %v", codes(r))
	}
}

func TestSourceMarkerNotInSpec(t *testing.T) {
	src := strings.Replace(fixtures.ComputeSource,
		"mh.Read(\"sensor\", &temper)",
		"mh.ReconfigPoint(\"S\")\n\tmh.Read(\"sensor\", &temper)", 1)
	r := runOn(t, Config{
		Sources:  map[string]string{"compute.go": src},
		Spec:     parseSpec(t, fixtures.MonitorSpec),
		SpecFile: "app.mil",
		Module:   "compute",
	})
	if !hasCode(r, CodeMarkerNotInSpec) {
		t.Fatalf("no MH004 in %v", codes(r))
	}
	if r.HasErrors() {
		t.Errorf("undeclared marker must be warning-only:\n%s", r.Text())
	}
}

func TestUnreachablePoint(t *testing.T) {
	r := runOn(t, Config{Sources: map[string]string{"m.go": `package m

func main() {
	mh.Init()
	mh.ReconfigPoint("R0")
}

func orphan() {
	mh.ReconfigPoint("R")
}
`}})
	if !hasCode(r, CodePointUnreachable) {
		t.Fatalf("no MH008 in %v", codes(r))
	}
	if !r.HasErrors() {
		t.Error("MH008 must be an error")
	}
	for _, d := range r.Diags {
		if d.Code == CodePointUnreachable && d.Pos.Filename != "m.go" {
			t.Errorf("MH008 position = %v, want source position", d.Pos)
		}
	}
}

func TestRecursiveCycleWithoutPoint(t *testing.T) {
	r := runOn(t, Config{Sources: map[string]string{"m.go": `package m

func main() {
	mh.ReconfigPoint("R")
	spin(3)
}

func spin(n int) {
	if n > 0 {
		spin(n - 1)
	}
}
`}})
	if !hasCode(r, CodeCycleNoPoint) {
		t.Fatalf("no MH009 in %v", codes(r))
	}
	if r.HasErrors() {
		t.Errorf("MH009 must be warning-only:\n%s", r.Text())
	}
	if !strings.Contains(r.Diags[0].Message, "spin") {
		t.Errorf("MH009 message %q does not name the cycle", r.Diags[0].Message)
	}
}

func TestCycleWithPointIsClean(t *testing.T) {
	// The Monitor compute module is itself a recursive cycle containing R.
	r := runOn(t, Config{Sources: map[string]string{"compute.go": fixtures.ComputeSource}})
	if hasCode(r, CodeCycleNoPoint) {
		t.Errorf("MH009 on a cycle that contains a point:\n%s", r.Text())
	}
}

func TestNoPointsWarning(t *testing.T) {
	r := runOn(t, Config{Sources: map[string]string{"m.go": `package m

func main() {
	mh.Init()
}
`}})
	if !hasCode(r, CodeNoPoints) {
		t.Fatalf("no MH010 in %v", codes(r))
	}
	if r.HasErrors() {
		t.Error("MH010 must be warning-only")
	}
}

func TestSourceErrorsReported(t *testing.T) {
	r := runOn(t, Config{Sources: map[string]string{"m.go": `package m

func main() {
	x := undeclared
	_ = x
}
`}})
	if !hasCode(r, CodeSourceInvalid) {
		t.Fatalf("no MH002 in %v", codes(r))
	}
}

func TestSpecErrorsReported(t *testing.T) {
	// A spec whose bind names an unknown instance: every finding becomes
	// an MH001 with a spec position.
	spec := parseSpec(t, `
module m { source = "./m" :: reconfiguration point = {R} :: }
module app { instance m :: bind "ghost out" "m in" }
`)
	r := runOn(t, Config{
		Sources: map[string]string{"m.go": `package m

func main() {
	mh.ReconfigPoint("R")
}
`},
		Spec:     spec,
		SpecFile: "app.mil",
		Module:   "m",
	})
	if !hasCode(r, CodeSpecInvalid) {
		t.Fatalf("no MH001 in %v", codes(r))
	}
	for _, d := range r.Diags {
		if d.Code == CodeSpecInvalid && d.Pos.Filename != "app.mil" {
			t.Errorf("MH001 position = %v", d.Pos)
		}
	}
}

const bindModuleSrc = `package a

func main() {
	mh.ReconfigPoint("R")
}
`

func TestBindingTypeMismatch(t *testing.T) {
	spec := parseSpec(t, `
module a { source = "./a" :: reconfiguration point = {R} :: define interface out pattern = {integer} :: }
module b { source = "./b" :: use interface in pattern = {string} :: }
module app { instance a :: instance b :: bind "a out" "b in" }
`)
	r := runOn(t, Config{
		Sources:  map[string]string{"a.go": bindModuleSrc},
		Spec:     spec,
		SpecFile: "app.mil",
		Module:   "a",
	})
	if !hasCode(r, CodeBindingMismatch) {
		t.Fatalf("no MH011 in %v", codes(r))
	}
	if !r.HasErrors() {
		t.Error("MH011 must be an error")
	}
}

func TestBindingArityMismatch(t *testing.T) {
	spec := parseSpec(t, `
module a { source = "./a" :: reconfiguration point = {R} :: define interface out pattern = {integer, integer} :: }
module b { source = "./b" :: use interface in pattern = {integer} :: }
module app { instance a :: instance b :: bind "a out" "b in" }
`)
	r := runOn(t, Config{
		Sources:  map[string]string{"a.go": bindModuleSrc},
		Spec:     spec,
		SpecFile: "app.mil",
		Module:   "a",
	})
	if !hasCode(r, CodeBindingMismatch) {
		t.Fatalf("no MH011 in %v", codes(r))
	}
}

func TestBindingClientServerRoundTrip(t *testing.T) {
	// A client/server pair checks both directions: request pattern and
	// reply set. The reply here is mistyped.
	spec := parseSpec(t, `
module c { source = "./c" :: reconfiguration point = {R} :: client interface call pattern = {integer} accepts {-string} :: }
module s { source = "./s" :: server interface serve pattern = {^integer} returns {float} :: }
module app { instance c :: instance s :: bind "c call" "s serve" }
`)
	r := runOn(t, Config{
		Sources:  map[string]string{"c.go": strings.Replace(bindModuleSrc, "package a", "package c", 1)},
		Spec:     spec,
		SpecFile: "app.mil",
		Module:   "c",
	})
	if !hasCode(r, CodeBindingMismatch) {
		t.Fatalf("no MH011 in %v", codes(r))
	}
}

func TestUnknownMILType(t *testing.T) {
	spec := parseSpec(t, `
module a { source = "./a" :: reconfiguration point = {R} :: define interface out pattern = {widget} :: }
module b { source = "./b" :: use interface in pattern = {integer} :: }
module app { instance a :: instance b :: bind "a out" "b in" }
`)
	r := runOn(t, Config{
		Sources:  map[string]string{"a.go": bindModuleSrc},
		Spec:     spec,
		SpecFile: "app.mil",
		Module:   "a",
	})
	if !hasCode(r, CodeUnknownMILType) {
		t.Fatalf("no MH012 in %v", codes(r))
	}
	if hasCode(r, CodeBindingMismatch) {
		t.Errorf("unknown type must suppress the kind comparison:\n%s", r.Text())
	}
	if r.HasErrors() {
		t.Error("MH012 must be warning-only")
	}
}

const replOldSrc = `package m

func main() {
	var r float64
	work(3, &r)
	mh.Write("out", r)
}

func work(n int, rp *float64) {
	mh.ReconfigPoint("R")
	*rp = float64(n)
}
`

func replCfg(newSrc string) Config {
	return Config{
		Sources:     map[string]string{"m.go": replOldSrc},
		Replacement: map[string]string{"m.go": newSrc},
	}
}

func TestReplacementCompatible(t *testing.T) {
	// A behavioral change with the same reconfiguration structure is
	// accepted.
	r := runOn(t, replCfg(strings.Replace(replOldSrc,
		"*rp = float64(n)", "*rp = float64(n) * 2.0", 1)))
	if len(r.Diags) != 0 {
		t.Errorf("compatible replacement flagged:\n%s", r.Text())
	}
}

func TestReplacementDropsProcedure(t *testing.T) {
	r := runOn(t, replCfg(`package m

func main() {
	var r float64
	work2(3, &r)
	mh.Write("out", r)
}

func work2(n int, rp *float64) {
	mh.ReconfigPoint("R")
	*rp = float64(n)
}
`))
	if !hasCode(r, CodeReplacementDropsProc) {
		t.Fatalf("no MH013 in %v", codes(r))
	}
	if !r.HasErrors() {
		t.Error("MH013 must be an error")
	}
}

func TestReplacementTypeMismatch(t *testing.T) {
	r := runOn(t, replCfg(`package m

func main() {
	var r float64
	work(3, &r)
	mh.Write("out", r)
}

func work(n float64, rp *float64) {
	mh.ReconfigPoint("R")
	*rp = n
}
`))
	if !hasCode(r, CodeReplacementShape) {
		t.Fatalf("no MH014 in %v", codes(r))
	}
	if !r.HasErrors() {
		t.Error("type mismatch must be an error")
	}
}

func TestReplacementRenameIsWarning(t *testing.T) {
	r := runOn(t, replCfg(`package m

func main() {
	var r float64
	work(3, &r)
	mh.Write("out", r)
}

func work(count int, rp *float64) {
	mh.ReconfigPoint("R")
	*rp = float64(count)
}
`))
	if !hasCode(r, CodeReplacementShape) {
		t.Fatalf("no MH014 in %v", codes(r))
	}
	if r.HasErrors() {
		t.Errorf("a pure rename must be warning-only:\n%s", r.Text())
	}
}

func TestReplacementEdgeMismatch(t *testing.T) {
	r := runOn(t, replCfg(`package m

func main() {
	var r float64
	work(3, &r)
	work(4, &r)
	mh.Write("out", r)
}

func work(n int, rp *float64) {
	mh.ReconfigPoint("R")
	*rp = float64(n)
}
`))
	if !hasCode(r, CodeReplacementEdges) {
		t.Fatalf("no MH015 in %v", codes(r))
	}
}

func TestReplacementDropsPointLabel(t *testing.T) {
	r := runOn(t, replCfg(strings.Replace(replOldSrc,
		`mh.ReconfigPoint("R")`, `mh.ReconfigPoint("S")`, 1)))
	if !hasCode(r, CodeReplacementEdges) {
		t.Fatalf("no MH015 in %v", codes(r))
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("no sources accepted")
	}
	spec := parseSpec(t, `module m { source = "./m" :: }`)
	if _, err := Run(Config{Sources: map[string]string{"m.go": bindModuleSrc}, Spec: spec}); err == nil {
		t.Error("spec without module name accepted")
	}
	if _, err := Run(Config{Sources: map[string]string{"m.go": bindModuleSrc}, Spec: spec, Module: "ghost"}); err == nil {
		t.Error("unknown module accepted")
	}
}

func TestCaptureSoundnessSkippedOutsideSpecMode(t *testing.T) {
	// Under an explicit all-locals mode the declared lists are unused;
	// the dropped-variable error must not fire.
	r := runOn(t, Config{
		Sources:  map[string]string{"compute.go": fixtures.ComputeSource},
		Spec:     monitorSpecWithState(t, "state R = {rp} ::"),
		SpecFile: "app.mil",
		Module:   "compute",
		Mode:     transform.CaptureAll,
	})
	if hasCode(r, CodeCaptureMissing) {
		t.Errorf("MH006 fired in all mode:\n%s", r.Text())
	}
}
