package analyze

import (
	"go/token"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/lang"
)

// checkPlacement verifies reconfiguration-point placement on the original
// (unflattened) program, where every diagnostic has a true source position:
//
//   - MH010: the module declares no points at all — it can never divulge
//     state, so it can never be replaced while running;
//   - MH008: a point sits in a procedure unreachable from main — it will
//     never execute, and the transform refuses such programs;
//   - MH009: a recursive cycle reachable from main contains no point — a
//     computation stuck in that cycle delays reconfiguration indefinitely
//     (the paper's Discussion bounds the delay by the time to the *next*
//     point, which here never comes).
func checkPlacement(r *Report, prog *lang.Program, info *lang.Info) {
	if len(info.Points) == 0 {
		r.Add(CodeNoPoints, SevWarning, declPos(prog, "main"),
			"module declares no reconfiguration points; it cannot be replaced while running")
		return
	}

	g := callgraph.Build(prog)
	reach := g.ReachableFrom("main")
	for _, pt := range info.Points {
		if !reach[pt.Func] {
			r.Add(CodePointUnreachable, SevError, prog.Fset.Position(pt.Call.Pos()),
				"reconfiguration point %s is in %s, which is unreachable from main", pt.Label, pt.Func)
		}
	}

	pointFuncs := map[string]bool{}
	for _, pt := range info.Points {
		pointFuncs[pt.Func] = true
	}
	for _, comp := range g.CyclicSCCs() {
		// A strongly connected component is reachable iff any member is.
		if !reach[comp[0]] {
			continue
		}
		hasPoint := false
		for _, fn := range comp {
			if pointFuncs[fn] {
				hasPoint = true
				break
			}
		}
		if hasPoint {
			continue
		}
		r.Add(CodeCycleNoPoint, SevWarning, declPos(prog, comp[0]),
			"recursive cycle {%s} is reachable from main but contains no reconfiguration point; a computation inside it delays reconfiguration indefinitely",
			strings.Join(comp, ", "))
	}
}

// declPos returns the declaration position of a function, or a zero
// position when it does not exist.
func declPos(prog *lang.Program, fn string) token.Position {
	if f, ok := prog.Funcs[fn]; ok && f.Decl != nil {
		return prog.Fset.Position(f.Decl.Pos())
	}
	return token.Position{}
}
