// Package mil implements the module interconnection language of the
// reproduction: the POLYLITH-style configuration specification language used
// in Figure 2 of the paper. A specification describes each module (its
// interfaces, executable source, reconfiguration points and attributes) and
// the application (module instances plus the bindings between their
// interfaces).
//
// The concrete grammar, cleaned up from the paper's figure:
//
//	spec        = { module } .
//	module      = "module" ident "{" { clause } "}" .
//	clause      = ( attrClause | ifaceClause | reconfClause | stateClause
//	              | instClause | bindClause ) [ "::" ] .
//	attrClause  = ident "=" ( string | ident ) .
//	ifaceClause = role "interface" ident { ifaceAttr } .
//	role        = "client" | "server" | "use" | "define" .
//	ifaceAttr   = "pattern" "=" typeSet | "accepts" typeSet | "returns" typeSet .
//	typeSet     = "{" [ typeRef { "," typeRef } ] "}" .
//	typeRef     = [ "^" | "-" ] ident .
//	reconfClause= "reconfiguration" "point" "=" "{" identList "}" .
//	stateClause = "state" ident "=" "{" [ identList ] "}" .
//	instClause  = "instance" ident [ "as" ident ] [ "on" string ] .
//	bindClause  = "bind" string string .
//	identList   = ident { "," ident } .
//
// A module whose body contains instance/bind clauses is an application
// specification (the paper reuses the "module" keyword for both, as in
// "module monitor { instance display ... }").
//
// Comments run from "#" or "//" to end of line. The "::" clause terminator
// of the paper is accepted and optional.
package mil

import "fmt"

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokLBrace
	tokRBrace
	tokEquals
	tokComma
	tokColons // "::"
	tokCaret  // "^"
	tokDash   // "-"
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokEquals:
		return "'='"
	case tokComma:
		return "','"
	case tokColons:
		return "'::'"
	case tokCaret:
		return "'^'"
	case tokDash:
		return "'-'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// Pos locates a token or AST node in the input.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

type token struct {
	kind tokenKind
	text string
	pos  Pos
}

// ParseError reports a syntax or validation problem with its location. Err,
// when non-nil, is a sentinel (e.g. ErrUnknownModule) matchable with
// errors.Is.
type ParseError struct {
	Pos Pos
	Msg string
	Err error
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("mil: %s: %s", e.Pos, e.Msg) }

// Unwrap exposes the sentinel for errors.Is.
func (e *ParseError) Unwrap() error { return e.Err }

func errAt(pos Pos, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func wrapAt(pos Pos, sentinel error, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: sentinel.Error() + ": " + fmt.Sprintf(format, args...), Err: sentinel}
}
