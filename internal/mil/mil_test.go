package mil

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// monitorSpec is the Figure 2 configuration specification, transliterated
// into the reproduction's MIL dialect (state clause added so the paper's
// "list the variables comprising the process state" is explicit).
const monitorSpec = `
# Figure 2: the Monitor application.
module display {
  source = "./display" ::
  client interface temper pattern = {integer} accepts {-float} ::
}

module compute {
  source = "./compute" ::
  server interface display pattern = {^integer} returns {float} ::
  use interface sensor pattern = {^integer} ::
  reconfiguration point = {R} ::
  state R = {num, n, rp} ::
}

module sensor {
  source = "./sensor" ::
  define interface out pattern = {integer} ::
}

module monitor {
  instance display
  instance compute on "machineA"
  instance sensor
  bind "display temper" "compute display"
  bind "sensor out" "compute sensor"
}
`

func parseMonitor(t *testing.T) *Spec {
	t.Helper()
	spec, err := ParseAndValidate(monitorSpec)
	if err != nil {
		t.Fatalf("parse monitor spec: %v", err)
	}
	return spec
}

func TestParseMonitorSpec(t *testing.T) {
	spec := parseMonitor(t)
	if len(spec.Modules) != 3 {
		t.Fatalf("got %d modules, want 3", len(spec.Modules))
	}
	if len(spec.Applications) != 1 {
		t.Fatalf("got %d applications, want 1", len(spec.Applications))
	}

	compute := spec.Module("compute")
	if compute == nil {
		t.Fatal("no compute module")
	}
	if compute.Source != "./compute" {
		t.Errorf("compute source = %q", compute.Source)
	}
	if !compute.Reconfigurable() {
		t.Error("compute should be reconfigurable")
	}
	pt := compute.Point("R")
	if pt == nil {
		t.Fatal("compute has no point R")
	}
	if !reflect.DeepEqual(pt.Vars, []string{"num", "n", "rp"}) {
		t.Errorf("point R vars = %v", pt.Vars)
	}

	disp := compute.Interface("display")
	if disp == nil || disp.Role != RoleServer {
		t.Fatalf("compute.display = %+v", disp)
	}
	if len(disp.Pattern) != 1 || disp.Pattern[0].Name != "integer" || disp.Pattern[0].Dir != '^' {
		t.Errorf("compute.display pattern = %v", disp.Pattern)
	}
	if len(disp.Returns) != 1 || disp.Returns[0].Name != "float" {
		t.Errorf("compute.display returns = %v", disp.Returns)
	}

	sens := compute.Interface("sensor")
	if sens == nil || sens.Role != RoleUse {
		t.Fatalf("compute.sensor = %+v", sens)
	}

	temper := spec.Module("display").Interface("temper")
	if temper == nil || temper.Role != RoleClient {
		t.Fatalf("display.temper = %+v", temper)
	}
	if len(temper.Accepts) != 1 || temper.Accepts[0].Dir != '-' {
		t.Errorf("display.temper accepts = %v", temper.Accepts)
	}

	out := spec.Module("sensor").Interface("out")
	if out == nil || out.Role != RoleDefine {
		t.Fatalf("sensor.out = %+v", out)
	}

	app := spec.Application("monitor")
	if app == nil {
		t.Fatal("no monitor application")
	}
	if spec.Application("") != app {
		t.Error("sole application not returned for empty name")
	}
	if len(app.Instances) != 3 || len(app.Binds) != 2 {
		t.Fatalf("app has %d instances, %d binds", len(app.Instances), len(app.Binds))
	}
	ci := app.Instance("compute")
	if ci == nil || ci.Machine != "machineA" {
		t.Errorf("compute instance = %+v", ci)
	}
	if app.Instance("nope") != nil {
		t.Error("Instance(nope) should be nil")
	}
	b := app.Binds[0]
	if b.From != (Endpoint{"display", "temper"}) || b.To != (Endpoint{"compute", "display"}) {
		t.Errorf("bind 0 = %+v", b)
	}
	if got := spec.Machines(app); !reflect.DeepEqual(got, []string{"machineA"}) {
		t.Errorf("Machines = %v", got)
	}
}

func TestRoleSemantics(t *testing.T) {
	tests := []struct {
		role     Role
		sends    bool
		receives bool
	}{
		{RoleClient, true, true},
		{RoleServer, true, true},
		{RoleDefine, true, false},
		{RoleUse, false, true},
	}
	for _, tt := range tests {
		if tt.role.Sends() != tt.sends {
			t.Errorf("%v.Sends() = %t", tt.role, tt.role.Sends())
		}
		if tt.role.Receives() != tt.receives {
			t.Errorf("%v.Receives() = %t", tt.role, tt.role.Receives())
		}
	}
	if Role(9).String() != "role(9)" {
		t.Errorf("unknown role String = %s", Role(9))
	}
}

// TestMonitorSpecRoundTrip reproduces experiment F2: the Figure 2 spec
// survives a parse → print → parse cycle structurally intact.
func TestMonitorSpecRoundTrip(t *testing.T) {
	spec := parseMonitor(t)
	printed := Print(spec)
	spec2, err := ParseAndValidate(printed)
	if err != nil {
		t.Fatalf("reparse printed spec: %v\n%s", err, printed)
	}
	if !reflect.DeepEqual(stripPositions(spec), stripPositions(spec2)) {
		t.Errorf("round trip changed the spec.\nfirst: %#v\nsecond: %#v\nprinted:\n%s",
			stripPositions(spec), stripPositions(spec2), printed)
	}
	// Second print must be a fixed point.
	if printed2 := Print(spec2); printed2 != printed {
		t.Errorf("printing is not a fixed point:\n%s\nvs\n%s", printed, printed2)
	}
}

func stripPositions(s *Spec) *Spec {
	out := &Spec{}
	for _, m := range s.Modules {
		mc := *m
		mc.Pos = Pos{}
		mc.Interfaces = nil
		for _, ifc := range m.Interfaces {
			ic := *ifc
			ic.Pos = Pos{}
			mc.Interfaces = append(mc.Interfaces, &ic)
		}
		mc.ReconfigPoints = nil
		for _, pt := range m.ReconfigPoints {
			pt.Pos = Pos{}
			mc.ReconfigPoints = append(mc.ReconfigPoints, pt)
		}
		if len(mc.Attrs) == 0 {
			mc.Attrs = map[string]string{}
		}
		out.Modules = append(out.Modules, &mc)
	}
	for _, a := range s.Applications {
		ac := &Application{Name: a.Name}
		for _, in := range a.Instances {
			inc := *in
			inc.Pos = Pos{}
			ac.Instances = append(ac.Instances, &inc)
		}
		for _, b := range a.Binds {
			bc := *b
			bc.Pos = Pos{}
			ac.Binds = append(ac.Binds, &bc)
		}
		out.Applications = append(out.Applications, ac)
	}
	return out
}

func TestParseEndpoint(t *testing.T) {
	e, err := ParseEndpoint("compute display")
	if err != nil || e.Instance != "compute" || e.Interface != "display" {
		t.Errorf("ParseEndpoint = %+v, %v", e, err)
	}
	if _, err := ParseEndpoint("justone"); err == nil {
		t.Error("single-word endpoint accepted")
	}
	if _, err := ParseEndpoint("a b c"); err == nil {
		t.Error("three-word endpoint accepted")
	}
	if e.String() != "compute display" {
		t.Errorf("Endpoint.String = %q", e.String())
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		`module m { source = "unterminated`,
		"module m { source = \"new\nline\" }",
		`module m { source = "bad \q escape" }`,
		`module m { x : y }`,
		`module m @ {}`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestLexerFeatures(t *testing.T) {
	src := `
/* block comment */
module m { // line comment
  source = "a\t\"b\\c" :: # hash comment
  note = ok ;
}`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Module("m")
	if m.Source != "a\t\"b\\c" {
		t.Errorf("escaped source = %q", m.Source)
	}
	if m.Attrs["note"] != "ok" {
		t.Errorf("attrs = %v", m.Attrs)
	}
}

func TestParserErrors(t *testing.T) {
	cases := map[string]string{
		"missing module kw": `thing m {}`,
		"missing name":      `module {}`,
		"missing brace":     `module m source = "x"`,
		"unclosed body":     `module m { source = "x"`,
		"bad clause":        `module m { 42 }`,
		"dup source":        `module m { source = "a" :: source = "b" }`,
		"dup machine":       `module m { machine = "a" :: machine = "b" }`,
		"dup attr":          `module m { k = "a" :: k = "b" }`,
		"bad attr value":    `module m { k = { } }`,
		"iface no name":     `module m { use interface = {} }`,
		"iface bad typeset": `module m { use interface x pattern = {=} }`,
		"reconf no point":   `module m { reconfiguration = {R} }`,
		"reconf empty":      `module m { source = "s" :: reconfiguration point = {} }`,
		"identset bad":      `module m { reconfiguration point = {R=} }`,
		"bind non-string":   `module app { instance a bind x y }`,
		"bind arity":        `module app { instance a :: bind "a b" "c" }`,
		"instance machine":  `module app { instance a on {} }`,
		"mixed clauses":     `module m { source = "x" :: instance a }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Errorf("no error for %q", src)
			}
		})
	}
}

func TestValidateErrors(t *testing.T) {
	const base = `
module a { source = "a" :: define interface out pattern = {integer} :: }
module b { source = "b" :: use interface in pattern = {integer} :: }
`
	cases := []struct {
		name string
		src  string
		want error
	}{
		{
			"unknown module",
			base + `module app { instance c }`,
			ErrUnknownModule,
		},
		{
			"unknown instance in bind",
			base + `module app { instance a :: instance b :: bind "z out" "b in" }`,
			ErrUnknownInstance,
		},
		{
			"unknown interface in bind",
			base + `module app { instance a :: instance b :: bind "a nope" "b in" }`,
			ErrUnknownInterface,
		},
		{
			"two senders",
			base + `module app { instance a :: instance a as a2 :: bind "a out" "a2 out" }`,
			ErrDirection,
		},
		{
			"two receivers",
			base + `module app { instance b :: instance b as b2 :: bind "b in" "b2 in" }`,
			ErrDirection,
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseAndValidate(tt.src)
			if err == nil {
				t.Fatal("validation passed")
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Errorf("error %v does not match sentinel %v", err, tt.want)
			}
		})
	}
}

func TestValidateModuleErrors(t *testing.T) {
	cases := map[string]string{
		"no source":       `module m { use interface x pattern = {integer} :: }`,
		"dup module":      `module m { source = "a" :: } module m { source = "b" :: }`,
		"dup iface":       `module m { source = "a" :: use interface x :: use interface x :: }`,
		"server no ret":   `module m { source = "a" :: server interface x pattern = {integer} :: }`,
		"client no acc":   `module m { source = "a" :: client interface x pattern = {integer} :: }`,
		"dup point":       `module m { source = "a" :: reconfiguration point = {R, R} :: }`,
		"dup state var":   `module m { source = "a" :: reconfiguration point = {R} :: state R = {x, x} :: }`,
		"dup application": `module x { source = "s" } module app { instance x } module app { instance x }`,
		"app no inst":     `module app { bind "a b" "c d" }`,
		"dup instance":    `module x { source = "s" } module app { instance x :: instance x }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseAndValidate(src); err == nil {
				t.Error("validation passed")
			}
		})
	}
}

func TestStateClauseBeforePoint(t *testing.T) {
	// A state clause may precede its reconfiguration point declaration.
	src := `module m { source = "s" :: state R = {x} :: reconfiguration point = {R} :: }`
	_, err := ParseAndValidate(src)
	if err == nil {
		// The forward clause creates point R; re-declaring it must be a
		// duplicate...
		t.Fatal("expected duplicate point error for redeclared forward state point")
	}
	// ...whereas the canonical order works.
	src = `module m { source = "s" :: reconfiguration point = {R} :: state R = {x} :: }`
	spec, err := ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	if pt := spec.Module("m").Point("R"); pt == nil || len(pt.Vars) != 1 {
		t.Errorf("point R = %+v", pt)
	}
}

func TestPositionsReported(t *testing.T) {
	_, err := Parse("module m {\n  source = bad:\n}")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a ParseError", err)
	}
	if pe.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Pos.Line)
	}
	if !strings.Contains(pe.Error(), "mil: 2:") {
		t.Errorf("Error() = %q lacks position", pe.Error())
	}
}

func TestInstanceAliasAndPlacement(t *testing.T) {
	src := `
module w { source = "w" :: define interface out pattern = {integer} :: use interface in pattern = {integer} :: }
module app {
  instance w as left on "m1"
  instance w as right on m2
  bind "left out" "right in"
}`
	spec, err := ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	app := spec.Application("app")
	left := app.Instance("left")
	if left == nil || left.Module != "w" || left.Machine != "m1" {
		t.Errorf("left = %+v", left)
	}
	right := app.Instance("right")
	if right == nil || right.Machine != "m2" {
		t.Errorf("right = %+v", right)
	}
	if got := spec.Machines(app); !reflect.DeepEqual(got, []string{"m1", "m2"}) {
		t.Errorf("Machines = %v", got)
	}
}

func TestSpecLookupMisses(t *testing.T) {
	spec := parseMonitor(t)
	if spec.Module("nope") != nil {
		t.Error("Module(nope) should be nil")
	}
	if spec.Application("nope") != nil {
		t.Error("Application(nope) should be nil")
	}
	two := &Spec{Applications: []*Application{{Name: "a"}, {Name: "b"}}}
	if two.Application("") != nil {
		t.Error("ambiguous empty lookup should be nil")
	}
	if spec.Module("compute").Interface("nope") != nil {
		t.Error("Interface(nope) should be nil")
	}
	if spec.Module("compute").Point("nope") != nil {
		t.Error("Point(nope) should be nil")
	}
}

func TestMachineDefaultFromModule(t *testing.T) {
	src := `
module w { source = "w" :: machine = "home" :: define interface out pattern = {integer} :: }
module u { source = "u" :: use interface in pattern = {integer} :: }
module app { instance w :: instance u :: bind "w out" "u in" }`
	spec, err := ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Machines(spec.Application("app")); !reflect.DeepEqual(got, []string{"home"}) {
		t.Errorf("Machines = %v", got)
	}
}

func TestValidateReportsAll(t *testing.T) {
	// One pass surfaces every problem: a missing source, a duplicate
	// interface, an unknown module, and an unknown bind instance.
	src := `
module a { use interface x :: use interface x :: }
module app { instance ghost :: bind "nope out" "ghost in" }`
	_, err := ParseAndValidate(src)
	if err == nil {
		t.Fatal("validation passed")
	}
	var list ErrorList
	if !errors.As(err, &list) {
		t.Fatalf("error %T is not an ErrorList", err)
	}
	if len(list) != 4 {
		t.Fatalf("got %d errors, want 4: %v", len(list), list)
	}
	for _, pe := range list {
		if pe.Pos.Line == 0 {
			t.Errorf("error %v has no position", pe)
		}
	}
	// Distinct sentinels from the same run both match.
	if !errors.Is(err, ErrUnknownModule) || !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("sentinels not all matched in %v", err)
	}
	if !strings.Contains(err.Error(), "and 3 more errors") {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestInstanceReplicasAndPolicy(t *testing.T) {
	src := `
module w { source = "w" :: define interface out pattern = {integer} :: use interface in pattern = {integer} :: }
module app {
  instance w as pool replicas 3 policy leastqueue
  instance w as feeder
  bind "feeder out" "pool in"
}`
	spec, err := ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	pool := spec.Application("app").Instance("pool")
	if pool.Replicas != 3 || pool.Policy != PolicyLeastQueue || !pool.Replicated() {
		t.Errorf("pool = %+v", pool)
	}
	feeder := spec.Application("app").Instance("feeder")
	if feeder.Replicas != 0 || feeder.Policy != "" || feeder.Replicated() {
		t.Errorf("feeder = %+v", feeder)
	}

	// replicas 1 is a valid degenerate declaration: a plain instance.
	src1 := `
module w { source = "w" :: define interface out pattern = {integer} :: use interface in pattern = {integer} :: }
module app { instance w replicas 1 }`
	spec1, err := ParseAndValidate(src1)
	if err != nil {
		t.Fatal(err)
	}
	if in := spec1.Application("app").Instance("w"); in.Replicated() {
		t.Errorf("replicas 1 counted as replicated: %+v", in)
	}

	// Round-trip: Print must render replicas/policy and reparse equal.
	printed := Print(spec)
	spec2, err := ParseAndValidate(printed)
	if err != nil {
		t.Fatalf("reparse of %q: %v", printed, err)
	}
	if !reflect.DeepEqual(stripPositions(spec2), stripPositions(spec)) {
		t.Errorf("round trip changed spec:\n%s", printed)
	}
}

func TestValidateReplicaErrors(t *testing.T) {
	header := `module w { source = "w" :: define interface out pattern = {integer} :: use interface in pattern = {integer} :: }`
	tests := []struct {
		name string
		app  string
	}{
		{"unknown policy", `module app { instance w replicas 2 policy fastest }`},
		{"policy without replicas", `module app { instance w policy roundrobin }`},
		{"policy with replicas 1", `module app { instance w replicas 1 policy roundrobin }`},
	}
	for _, tc := range tests {
		if _, err := ParseAndValidate(header + "\n" + tc.app); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Parse-level: replicas needs a number.
	if _, err := Parse(header + "\nmodule app { instance w replicas many }"); err == nil {
		t.Error("non-numeric replica count accepted")
	}
}
