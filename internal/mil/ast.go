package mil

import (
	"fmt"
	"sort"
	"strings"
)

// Role classifies an interface, following the four POLYLITH roles used in
// Figure 2 of the paper.
type Role int

// Interface roles. A client sends requests and accepts replies; a server
// receives requests and returns replies; define is an outgoing (producing)
// interface; use is an incoming (consuming) interface.
const (
	RoleClient Role = iota + 1
	RoleServer
	RoleDefine
	RoleUse
)

var roleNames = map[Role]string{
	RoleClient: "client",
	RoleServer: "server",
	RoleDefine: "define",
	RoleUse:    "use",
}

// String returns the keyword for the role.
func (r Role) String() string {
	if s, ok := roleNames[r]; ok {
		return s
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// Sends reports whether the role emits messages on the interface.
func (r Role) Sends() bool { return r == RoleClient || r == RoleServer || r == RoleDefine }

// Receives reports whether the role consumes messages from the interface.
func (r Role) Receives() bool { return r == RoleClient || r == RoleServer || r == RoleUse }

// TypeRef is one element of a pattern/accepts/returns type set. Dir carries
// the paper's direction sigil ('^' or '-') when present, 0 otherwise.
type TypeRef struct {
	Dir  rune
	Name string
}

// String renders the type ref in source form.
func (t TypeRef) String() string {
	if t.Dir != 0 {
		return string(t.Dir) + t.Name
	}
	return t.Name
}

// Interface describes one named communication port of a module.
type Interface struct {
	Pos     Pos
	Name    string
	Role    Role
	Pattern []TypeRef
	Accepts []TypeRef
	Returns []TypeRef
}

// ReconfigPoint is a programmer-designated safe point, optionally annotated
// with the variables comprising the process state there (Figure 2: "list the
// variables comprising the process state at that reconfiguration point").
// An empty Vars list means "derive automatically" (liveness analysis or
// all-locals fallback).
type ReconfigPoint struct {
	Pos   Pos
	Label string
	Vars  []string
}

// Module is one module specification.
type Module struct {
	Pos            Pos
	Name           string
	Source         string // executable / source location
	Machine        string // default placement
	Interfaces     []*Interface
	ReconfigPoints []ReconfigPoint
	Attrs          map[string]string // any other key = value attributes
}

// Interface returns the named interface, or nil.
func (m *Module) Interface(name string) *Interface {
	for _, ifc := range m.Interfaces {
		if ifc.Name == name {
			return ifc
		}
	}
	return nil
}

// Point returns the reconfiguration point with the given label, or nil.
func (m *Module) Point(label string) *ReconfigPoint {
	for i := range m.ReconfigPoints {
		if m.ReconfigPoints[i].Label == label {
			return &m.ReconfigPoints[i]
		}
	}
	return nil
}

// Reconfigurable reports whether the module declares reconfiguration points.
func (m *Module) Reconfigurable() bool { return len(m.ReconfigPoints) > 0 }

// Load-balancing policies a replicated instance may declare. The bus picks
// a live replica per message: round-robin rotates; least-queue routes to
// the member with the shallowest receive queue.
const (
	PolicyRoundRobin = "roundrobin"
	PolicyLeastQueue = "leastqueue"
)

// Instance places a module in an application. Name defaults to the module
// name ("instance compute"); "instance compute as c2 on \"machineB\"" names
// it and pins a machine. "replicas 3" turns the instance into a replica
// group: bindings to its name fan in to a group endpoint load-balanced
// across the replicas ("policy leastqueue" selects the strategy; default
// round-robin). Replicas 0 and 1 both mean an ordinary single instance.
type Instance struct {
	Pos      Pos
	Name     string
	Module   string
	Machine  string
	Replicas int
	Policy   string
}

// Replicated reports whether the instance declares a replica group.
func (in *Instance) Replicated() bool { return in.Replicas > 1 }

// Endpoint names one side of a binding as "instance interface".
type Endpoint struct {
	Instance  string
	Interface string
}

// String renders the endpoint in binding syntax.
func (e Endpoint) String() string { return e.Instance + " " + e.Interface }

// ParseEndpoint splits a binding endpoint string of the form
// "instance interface".
func ParseEndpoint(s string) (Endpoint, error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return Endpoint{}, fmt.Errorf("mil: endpoint %q must be \"instance interface\"", s)
	}
	return Endpoint{Instance: fields[0], Interface: fields[1]}, nil
}

// Bind connects two endpoints. Messages sent on From are delivered to To;
// for client/server pairs the bus routes replies back along the same
// binding.
type Bind struct {
	Pos  Pos
	From Endpoint
	To   Endpoint
}

// Application is the application specification: module instances and the
// bindings between their interfaces.
type Application struct {
	Pos       Pos
	Name      string
	Instances []*Instance
	Binds     []*Bind
}

// Instance returns the named instance, or nil.
func (a *Application) Instance(name string) *Instance {
	for _, in := range a.Instances {
		if in.Name == name {
			return in
		}
	}
	return nil
}

// Spec is a parsed configuration specification: the module specifications
// plus the application specifications that use them.
type Spec struct {
	Modules      []*Module
	Applications []*Application
}

// Module returns the named module specification, or nil.
func (s *Spec) Module(name string) *Module {
	for _, m := range s.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Application returns the named application, or nil. With the empty name it
// returns the sole application if exactly one exists.
func (s *Spec) Application(name string) *Application {
	if name == "" {
		if len(s.Applications) == 1 {
			return s.Applications[0]
		}
		return nil
	}
	for _, a := range s.Applications {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Machines returns the sorted set of machines referenced by the named
// application (instance placements plus module defaults).
func (s *Spec) Machines(app *Application) []string {
	set := map[string]bool{}
	for _, in := range app.Instances {
		machine := in.Machine
		if machine == "" {
			if m := s.Module(in.Module); m != nil {
				machine = m.Machine
			}
		}
		if machine != "" {
			set[machine] = true
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
