package mil

import (
	"fmt"
	"strings"
)

// Print renders a specification back to MIL source. Parse(Print(spec)) is
// structurally equal to spec (round-trip tested); comments are not
// preserved.
func Print(spec *Spec) string {
	var b strings.Builder
	for i, m := range spec.Modules {
		if i > 0 {
			b.WriteByte('\n')
		}
		printModule(&b, m)
	}
	for _, a := range spec.Applications {
		if len(spec.Modules) > 0 || len(spec.Applications) > 1 {
			b.WriteByte('\n')
		}
		printApplication(&b, a)
	}
	return b.String()
}

func printModule(b *strings.Builder, m *Module) {
	fmt.Fprintf(b, "module %s {\n", m.Name)
	if m.Source != "" {
		fmt.Fprintf(b, "  source = %q ::\n", m.Source)
	}
	if m.Machine != "" {
		fmt.Fprintf(b, "  machine = %q ::\n", m.Machine)
	}
	for _, k := range sortedAttrKeys(m.Attrs) {
		fmt.Fprintf(b, "  %s = %q ::\n", k, m.Attrs[k])
	}
	for _, ifc := range m.Interfaces {
		fmt.Fprintf(b, "  %s interface %s", ifc.Role, ifc.Name)
		if len(ifc.Pattern) > 0 {
			fmt.Fprintf(b, " pattern = %s", typeSet(ifc.Pattern))
		}
		if len(ifc.Accepts) > 0 {
			fmt.Fprintf(b, " accepts %s", typeSet(ifc.Accepts))
		}
		if len(ifc.Returns) > 0 {
			fmt.Fprintf(b, " returns %s", typeSet(ifc.Returns))
		}
		b.WriteString(" ::\n")
	}
	if len(m.ReconfigPoints) > 0 {
		labels := make([]string, len(m.ReconfigPoints))
		for i, pt := range m.ReconfigPoints {
			labels[i] = pt.Label
		}
		fmt.Fprintf(b, "  reconfiguration point = {%s} ::\n", strings.Join(labels, ", "))
		for _, pt := range m.ReconfigPoints {
			if len(pt.Vars) > 0 {
				fmt.Fprintf(b, "  state %s = {%s} ::\n", pt.Label, strings.Join(pt.Vars, ", "))
			}
		}
	}
	b.WriteString("}\n")
}

func printApplication(b *strings.Builder, a *Application) {
	fmt.Fprintf(b, "module %s {\n", a.Name)
	for _, in := range a.Instances {
		fmt.Fprintf(b, "  instance %s", in.Module)
		if in.Name != in.Module {
			fmt.Fprintf(b, " as %s", in.Name)
		}
		if in.Machine != "" {
			fmt.Fprintf(b, " on %q", in.Machine)
		}
		if in.Replicas != 0 {
			fmt.Fprintf(b, " replicas %d", in.Replicas)
		}
		if in.Policy != "" {
			fmt.Fprintf(b, " policy %s", in.Policy)
		}
		b.WriteByte('\n')
	}
	for _, bd := range a.Binds {
		fmt.Fprintf(b, "  bind %q %q\n", bd.From.String(), bd.To.String())
	}
	b.WriteString("}\n")
}

func typeSet(refs []TypeRef) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func sortedAttrKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
