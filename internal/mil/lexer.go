package mil

import (
	"strings"
	"unicode"
)

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			l.skipLine()
		case c == '/' && l.peek2() == '/':
			l.skipLine()
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for l.off < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || c == '.' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token. Lexing is infallible except for unterminated
// strings and stray bytes, which are reported via an error token text.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.peek()
	switch {
	case c == '{':
		l.advance()
		return token{kind: tokLBrace, text: "{", pos: pos}, nil
	case c == '}':
		l.advance()
		return token{kind: tokRBrace, text: "}", pos: pos}, nil
	case c == '=':
		l.advance()
		return token{kind: tokEquals, text: "=", pos: pos}, nil
	case c == ',':
		l.advance()
		return token{kind: tokComma, text: ",", pos: pos}, nil
	case c == '^':
		l.advance()
		return token{kind: tokCaret, text: "^", pos: pos}, nil
	case c == '-':
		l.advance()
		return token{kind: tokDash, text: "-", pos: pos}, nil
	case c == ';':
		// Some Polylith dialects terminate clauses with ';'. Treat it
		// like the paper's "::" separator.
		l.advance()
		return token{kind: tokColons, text: ";", pos: pos}, nil
	case c == ':':
		if l.peek2() != ':' {
			return token{}, errAt(pos, "expected '::', found lone ':'")
		}
		l.advance()
		l.advance()
		return token{kind: tokColons, text: "::", pos: pos}, nil
	case c == '"':
		return l.lexString(pos)
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}, nil
	case unicode.IsDigit(rune(c)):
		start := l.off
		for l.off < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.off], pos: pos}, nil
	default:
		return token{}, errAt(pos, "unexpected character %q", string(rune(c)))
	}
}

func (l *lexer) lexString(pos Pos) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		c := l.advance()
		switch c {
		case '"':
			return token{kind: tokString, text: b.String(), pos: pos}, nil
		case '\\':
			if l.off >= len(l.src) {
				return token{}, errAt(pos, "unterminated string")
			}
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(esc)
			default:
				return token{}, errAt(pos, "unknown escape \\%s in string", string(rune(esc)))
			}
		case '\n':
			return token{}, errAt(pos, "newline in string")
		default:
			b.WriteByte(c)
		}
	}
	return token{}, errAt(pos, "unterminated string")
}

// lexAll tokenizes the whole input (used by the parser, exposed for tests).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
