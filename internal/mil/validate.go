package mil

import (
	"errors"
	"fmt"
)

// Validation errors callers may match on.
var (
	// ErrUnknownModule indicates an instance of an undeclared module.
	ErrUnknownModule = errors.New("mil: unknown module")
	// ErrUnknownInstance indicates a binding endpoint naming no instance.
	ErrUnknownInstance = errors.New("mil: unknown instance")
	// ErrUnknownInterface indicates a binding endpoint naming no interface.
	ErrUnknownInterface = errors.New("mil: unknown interface")
	// ErrDirection indicates a binding whose endpoints cannot exchange
	// messages (sender-to-sender or receiver-to-receiver).
	ErrDirection = errors.New("mil: binding direction mismatch")
)

// ErrorList is every problem found in one Validate run, in source order.
// It satisfies error, and errors.Is / errors.As search all entries, so
// callers matching a single sentinel keep working.
type ErrorList []*ParseError

// Error implements error.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "mil: no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// Unwrap exposes every collected error for errors.Is / errors.As.
func (l ErrorList) Unwrap() []error {
	out := make([]error, len(l))
	for i, e := range l {
		out[i] = e
	}
	return out
}

// Validate checks the structural consistency of a specification:
//
//   - module and application names are unique, instances are unique;
//   - every instance refers to a declared module;
//   - every binding endpoint refers to a declared instance and interface;
//   - at least one side of each binding sends and at least one receives;
//   - interface names are unique within a module; reconfiguration point
//     labels are unique within a module; modules have a source.
//
// All problems are reported in one pass: the returned error, when non-nil,
// is an ErrorList carrying a position for every finding.
func Validate(spec *Spec) error {
	var errs ErrorList
	add := func(err error) {
		var pe *ParseError
		if errors.As(err, &pe) {
			errs = append(errs, pe)
		}
	}
	modNames := map[string]bool{}
	for _, m := range spec.Modules {
		if modNames[m.Name] {
			add(errAt(m.Pos, "duplicate module %s", m.Name))
		}
		modNames[m.Name] = true
		validateModule(m, add)
	}
	appNames := map[string]bool{}
	for _, a := range spec.Applications {
		if appNames[a.Name] || modNames[a.Name] {
			add(errAt(a.Pos, "duplicate application %s", a.Name))
		}
		appNames[a.Name] = true
		validateApplication(spec, a, add)
	}
	if len(errs) == 0 {
		return nil
	}
	return errs
}

func validateModule(m *Module, add func(error)) {
	if m.Source == "" {
		add(errAt(m.Pos, "module %s has no source attribute", m.Name))
	}
	ifaceNames := map[string]bool{}
	for _, ifc := range m.Interfaces {
		if ifaceNames[ifc.Name] {
			add(errAt(ifc.Pos, "module %s: duplicate interface %s", m.Name, ifc.Name))
		}
		ifaceNames[ifc.Name] = true
		if ifc.Role == RoleServer && len(ifc.Returns) == 0 {
			add(errAt(ifc.Pos, "module %s: server interface %s declares no returns", m.Name, ifc.Name))
		}
		if ifc.Role == RoleClient && len(ifc.Accepts) == 0 {
			add(errAt(ifc.Pos, "module %s: client interface %s declares no accepts", m.Name, ifc.Name))
		}
	}
	labels := map[string]bool{}
	for _, pt := range m.ReconfigPoints {
		if labels[pt.Label] {
			add(errAt(pt.Pos, "module %s: duplicate reconfiguration point %s", m.Name, pt.Label))
		}
		labels[pt.Label] = true
		seen := map[string]bool{}
		for _, v := range pt.Vars {
			if seen[v] {
				add(errAt(pt.Pos, "module %s point %s: duplicate state variable %s", m.Name, pt.Label, v))
			}
			seen[v] = true
		}
	}
}

func validateApplication(spec *Spec, a *Application, add func(error)) {
	if len(a.Instances) == 0 {
		add(errAt(a.Pos, "application %s has no instances", a.Name))
	}
	instByName := map[string]*Instance{}
	for _, in := range a.Instances {
		if _, dup := instByName[in.Name]; dup {
			add(errAt(in.Pos, "application %s: duplicate instance %s", a.Name, in.Name))
			continue
		}
		if spec.Module(in.Module) == nil {
			add(wrapAt(in.Pos, ErrUnknownModule, "application %s instance %s uses module %s",
				a.Name, in.Name, in.Module))
		}
		// Record the instance even when its module is unknown so its
		// bindings don't cascade into spurious unknown-instance errors.
		instByName[in.Name] = in
		if in.Replicas < 0 {
			add(errAt(in.Pos, "application %s instance %s: replicas %d < 0",
				a.Name, in.Name, in.Replicas))
		}
		switch in.Policy {
		case "", PolicyRoundRobin, PolicyLeastQueue:
		default:
			add(errAt(in.Pos, "application %s instance %s: unknown policy %q (want %s or %s)",
				a.Name, in.Name, in.Policy, PolicyRoundRobin, PolicyLeastQueue))
		}
		if in.Policy != "" && !in.Replicated() {
			add(errAt(in.Pos, "application %s instance %s: policy %q without replicas >= 2",
				a.Name, in.Name, in.Policy))
		}
	}
	for _, b := range a.Binds {
		fromIfc := resolveEndpoint(spec, a, instByName, b.From, b.Pos, add)
		toIfc := resolveEndpoint(spec, a, instByName, b.To, b.Pos, add)
		if fromIfc == nil || toIfc == nil {
			continue
		}
		if !fromIfc.Role.Sends() && !toIfc.Role.Sends() {
			add(wrapAt(b.Pos, ErrDirection, "neither %s (%s) nor %s (%s) can send",
				b.From, fromIfc.Role, b.To, toIfc.Role))
		}
		if !fromIfc.Role.Receives() && !toIfc.Role.Receives() {
			add(wrapAt(b.Pos, ErrDirection, "neither %s (%s) nor %s (%s) can receive",
				b.From, fromIfc.Role, b.To, toIfc.Role))
		}
	}
}

// resolveEndpoint returns the interface an endpoint names, or nil after
// reporting why it cannot be resolved. An instance whose module is unknown
// resolves to nil silently — the instance declaration already carries the
// error.
func resolveEndpoint(spec *Spec, a *Application, insts map[string]*Instance, e Endpoint, pos Pos, add func(error)) *Interface {
	in, ok := insts[e.Instance]
	if !ok {
		add(wrapAt(pos, ErrUnknownInstance, "application %s binds %q", a.Name, e))
		return nil
	}
	mod := spec.Module(in.Module)
	if mod == nil {
		return nil
	}
	ifc := mod.Interface(e.Interface)
	if ifc == nil {
		add(wrapAt(pos, ErrUnknownInterface, "module %s (instance %s) has no interface %s",
			mod.Name, e.Instance, e.Interface))
		return nil
	}
	return ifc
}
