package mil

import "errors"

// Validation errors callers may match on.
var (
	// ErrUnknownModule indicates an instance of an undeclared module.
	ErrUnknownModule = errors.New("mil: unknown module")
	// ErrUnknownInstance indicates a binding endpoint naming no instance.
	ErrUnknownInstance = errors.New("mil: unknown instance")
	// ErrUnknownInterface indicates a binding endpoint naming no interface.
	ErrUnknownInterface = errors.New("mil: unknown interface")
	// ErrDirection indicates a binding whose endpoints cannot exchange
	// messages (sender-to-sender or receiver-to-receiver).
	ErrDirection = errors.New("mil: binding direction mismatch")
)

// Validate checks the structural consistency of a specification:
//
//   - module and application names are unique, instances are unique;
//   - every instance refers to a declared module;
//   - every binding endpoint refers to a declared instance and interface;
//   - at least one side of each binding sends and at least one receives;
//   - interface names are unique within a module; reconfiguration point
//     labels are unique within a module; modules have a source.
func Validate(spec *Spec) error {
	modNames := map[string]bool{}
	for _, m := range spec.Modules {
		if modNames[m.Name] {
			return errAt(m.Pos, "duplicate module %s", m.Name)
		}
		modNames[m.Name] = true
		if err := validateModule(m); err != nil {
			return err
		}
	}
	appNames := map[string]bool{}
	for _, a := range spec.Applications {
		if appNames[a.Name] || modNames[a.Name] {
			return errAt(a.Pos, "duplicate application %s", a.Name)
		}
		appNames[a.Name] = true
		if err := validateApplication(spec, a); err != nil {
			return err
		}
	}
	return nil
}

func validateModule(m *Module) error {
	if m.Source == "" {
		return errAt(m.Pos, "module %s has no source attribute", m.Name)
	}
	ifaceNames := map[string]bool{}
	for _, ifc := range m.Interfaces {
		if ifaceNames[ifc.Name] {
			return errAt(ifc.Pos, "module %s: duplicate interface %s", m.Name, ifc.Name)
		}
		ifaceNames[ifc.Name] = true
		if ifc.Role == RoleServer && len(ifc.Returns) == 0 {
			return errAt(ifc.Pos, "module %s: server interface %s declares no returns", m.Name, ifc.Name)
		}
		if ifc.Role == RoleClient && len(ifc.Accepts) == 0 {
			return errAt(ifc.Pos, "module %s: client interface %s declares no accepts", m.Name, ifc.Name)
		}
	}
	labels := map[string]bool{}
	for _, pt := range m.ReconfigPoints {
		if labels[pt.Label] {
			return errAt(pt.Pos, "module %s: duplicate reconfiguration point %s", m.Name, pt.Label)
		}
		labels[pt.Label] = true
		seen := map[string]bool{}
		for _, v := range pt.Vars {
			if seen[v] {
				return errAt(pt.Pos, "module %s point %s: duplicate state variable %s", m.Name, pt.Label, v)
			}
			seen[v] = true
		}
	}
	return nil
}

func validateApplication(spec *Spec, a *Application) error {
	if len(a.Instances) == 0 {
		return errAt(a.Pos, "application %s has no instances", a.Name)
	}
	instByName := map[string]*Instance{}
	for _, in := range a.Instances {
		if _, dup := instByName[in.Name]; dup {
			return errAt(in.Pos, "application %s: duplicate instance %s", a.Name, in.Name)
		}
		if spec.Module(in.Module) == nil {
			return wrapAt(in.Pos, ErrUnknownModule, "application %s instance %s uses module %s",
				a.Name, in.Name, in.Module)
		}
		instByName[in.Name] = in
	}
	for _, b := range a.Binds {
		fromIfc, err := resolveEndpoint(spec, a, instByName, b.From, b.Pos)
		if err != nil {
			return err
		}
		toIfc, err := resolveEndpoint(spec, a, instByName, b.To, b.Pos)
		if err != nil {
			return err
		}
		if !fromIfc.Role.Sends() && !toIfc.Role.Sends() {
			return wrapAt(b.Pos, ErrDirection, "neither %s (%s) nor %s (%s) can send",
				b.From, fromIfc.Role, b.To, toIfc.Role)
		}
		if !fromIfc.Role.Receives() && !toIfc.Role.Receives() {
			return wrapAt(b.Pos, ErrDirection, "neither %s (%s) nor %s (%s) can receive",
				b.From, fromIfc.Role, b.To, toIfc.Role)
		}
	}
	return nil
}

func resolveEndpoint(spec *Spec, a *Application, insts map[string]*Instance, e Endpoint, pos Pos) (*Interface, error) {
	in, ok := insts[e.Instance]
	if !ok {
		return nil, wrapAt(pos, ErrUnknownInstance, "application %s binds %q", a.Name, e)
	}
	mod := spec.Module(in.Module)
	ifc := mod.Interface(e.Interface)
	if ifc == nil {
		return nil, wrapAt(pos, ErrUnknownInterface, "module %s (instance %s) has no interface %s",
			mod.Name, e.Instance, e.Interface)
	}
	return ifc, nil
}
