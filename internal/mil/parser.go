package mil

import "strconv"

// Parse parses a configuration specification.
func Parse(src string) (*Spec, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	spec := &Spec{}
	for p.peek().kind != tokEOF {
		if err := p.parseModule(spec); err != nil {
			return nil, err
		}
	}
	return spec, nil
}

// ParseAndValidate parses and then validates the specification.
func ParseAndValidate(src string) (*Spec, error) {
	spec, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Validate(spec); err != nil {
		return nil, err
	}
	return spec, nil
}

type parser struct {
	toks []token
	off  int
}

func (p *parser) peek() token { return p.toks[p.off] }

func (p *parser) next() token {
	t := p.toks[p.off]
	if t.kind != tokEOF {
		p.off++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, errAt(t.pos, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) (token, error) {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return t, errAt(t.pos, "expected %q, found %q", kw, t.text)
	}
	return t, nil
}

// acceptSeparator consumes an optional clause terminator ("::" or ";").
func (p *parser) acceptSeparator() {
	for p.peek().kind == tokColons {
		p.next()
	}
}

// parseModule parses one "module name { ... }" block and appends it to spec
// as either a module specification or an application specification,
// depending on the clauses it contains.
func (p *parser) parseModule(spec *Spec) error {
	kw, err := p.expectKeyword("module")
	if err != nil {
		return err
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}

	mod := &Module{Pos: kw.pos, Name: nameTok.text, Attrs: map[string]string{}}
	app := &Application{Pos: kw.pos, Name: nameTok.text}

	for {
		p.acceptSeparator()
		t := p.peek()
		if t.kind == tokRBrace {
			p.next()
			break
		}
		if t.kind == tokEOF {
			return errAt(t.pos, "unexpected end of input inside module %s", mod.Name)
		}
		if t.kind != tokIdent {
			return errAt(t.pos, "expected clause keyword, found %s %q", t.kind, t.text)
		}
		switch t.text {
		case "client", "server", "define", "use":
			ifc, err := p.parseInterface()
			if err != nil {
				return err
			}
			mod.Interfaces = append(mod.Interfaces, ifc)
		case "reconfiguration":
			pts, err := p.parseReconfigPoints()
			if err != nil {
				return err
			}
			mod.ReconfigPoints = append(mod.ReconfigPoints, pts...)
		case "state":
			if err := p.parseStateClause(mod); err != nil {
				return err
			}
		case "instance":
			inst, err := p.parseInstance()
			if err != nil {
				return err
			}
			app.Instances = append(app.Instances, inst)
		case "bind":
			b, err := p.parseBind()
			if err != nil {
				return err
			}
			app.Binds = append(app.Binds, b)
		default:
			if err := p.parseAttr(mod); err != nil {
				return err
			}
		}
	}

	isApp := len(app.Instances) > 0 || len(app.Binds) > 0
	hasModuleClauses := len(mod.Interfaces) > 0 || len(mod.ReconfigPoints) > 0 ||
		mod.Source != "" || len(mod.Attrs) > 0 || mod.Machine != ""
	if isApp && hasModuleClauses {
		return errAt(mod.Pos, "module %s mixes module clauses with instance/bind clauses", mod.Name)
	}
	if isApp {
		spec.Applications = append(spec.Applications, app)
	} else {
		spec.Modules = append(spec.Modules, mod)
	}
	return nil
}

func (p *parser) parseInterface() (*Interface, error) {
	roleTok := p.next()
	var role Role
	switch roleTok.text {
	case "client":
		role = RoleClient
	case "server":
		role = RoleServer
	case "define":
		role = RoleDefine
	case "use":
		role = RoleUse
	}
	if _, err := p.expectKeyword("interface"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	ifc := &Interface{Pos: roleTok.pos, Name: nameTok.text, Role: role}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return ifc, nil
		}
		switch t.text {
		case "pattern":
			p.next()
			if _, err := p.expect(tokEquals); err != nil {
				return nil, err
			}
			if ifc.Pattern, err = p.parseTypeSet(); err != nil {
				return nil, err
			}
		case "accepts":
			p.next()
			// The paper writes both "accepts{...}" and "accepts = {...}".
			if p.peek().kind == tokEquals {
				p.next()
			}
			if ifc.Accepts, err = p.parseTypeSet(); err != nil {
				return nil, err
			}
		case "returns":
			p.next()
			if p.peek().kind == tokEquals {
				p.next()
			}
			if ifc.Returns, err = p.parseTypeSet(); err != nil {
				return nil, err
			}
		default:
			return ifc, nil
		}
	}
}

func (p *parser) parseTypeSet() ([]TypeRef, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var refs []TypeRef
	for {
		t := p.peek()
		switch t.kind {
		case tokRBrace:
			p.next()
			return refs, nil
		case tokComma:
			p.next()
		case tokCaret, tokDash:
			p.next()
			nameTok, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			dir := '^'
			if t.kind == tokDash {
				dir = '-'
			}
			refs = append(refs, TypeRef{Dir: dir, Name: nameTok.text})
		case tokIdent:
			p.next()
			refs = append(refs, TypeRef{Name: t.text})
		default:
			return nil, errAt(t.pos, "expected type name or '}', found %s %q", t.kind, t.text)
		}
	}
}

func (p *parser) parseReconfigPoints() ([]ReconfigPoint, error) {
	kw := p.next() // "reconfiguration"
	if _, err := p.expectKeyword("point"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEquals); err != nil {
		return nil, err
	}
	labels, err := p.parseIdentSet()
	if err != nil {
		return nil, err
	}
	if len(labels) == 0 {
		return nil, errAt(kw.pos, "reconfiguration point set is empty")
	}
	pts := make([]ReconfigPoint, len(labels))
	for i, l := range labels {
		pts[i] = ReconfigPoint{Pos: kw.pos, Label: l}
	}
	return pts, nil
}

// parseStateClause handles "state R = { v1, v2 }", attaching the variable
// list to the named reconfiguration point (which may be declared before or
// after; Validate checks resolution).
func (p *parser) parseStateClause(mod *Module) error {
	kw := p.next() // "state"
	labelTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokEquals); err != nil {
		return err
	}
	vars, err := p.parseIdentSet()
	if err != nil {
		return err
	}
	if pt := mod.Point(labelTok.text); pt != nil {
		pt.Vars = vars
		return nil
	}
	// Forward state clause: remember it as a point with vars; Validate
	// flags duplicates.
	mod.ReconfigPoints = append(mod.ReconfigPoints, ReconfigPoint{Pos: kw.pos, Label: labelTok.text, Vars: vars})
	return nil
}

func (p *parser) parseIdentSet() ([]string, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var names []string
	for {
		t := p.peek()
		switch t.kind {
		case tokRBrace:
			p.next()
			return names, nil
		case tokComma:
			p.next()
		case tokIdent:
			p.next()
			names = append(names, t.text)
		default:
			return nil, errAt(t.pos, "expected identifier or '}', found %s %q", t.kind, t.text)
		}
	}
}

func (p *parser) parseAttr(mod *Module) error {
	keyTok := p.next()
	if _, err := p.expect(tokEquals); err != nil {
		return err
	}
	valTok := p.next()
	if valTok.kind != tokString && valTok.kind != tokIdent {
		return errAt(valTok.pos, "expected attribute value, found %s %q", valTok.kind, valTok.text)
	}
	switch keyTok.text {
	case "source":
		if mod.Source != "" {
			return errAt(keyTok.pos, "duplicate source attribute")
		}
		mod.Source = valTok.text
	case "machine":
		if mod.Machine != "" {
			return errAt(keyTok.pos, "duplicate machine attribute")
		}
		mod.Machine = valTok.text
	default:
		if _, dup := mod.Attrs[keyTok.text]; dup {
			return errAt(keyTok.pos, "duplicate attribute %q", keyTok.text)
		}
		mod.Attrs[keyTok.text] = valTok.text
	}
	return nil
}

func (p *parser) parseInstance() (*Instance, error) {
	kw := p.next() // "instance"
	modTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Pos: kw.pos, Name: modTok.text, Module: modTok.text}
	for p.peek().kind == tokIdent {
		switch p.peek().text {
		case "as":
			p.next()
			nameTok, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			inst.Name = nameTok.text
		case "on":
			p.next()
			mTok := p.next()
			if mTok.kind != tokString && mTok.kind != tokIdent {
				return nil, errAt(mTok.pos, "expected machine name, found %q", mTok.text)
			}
			inst.Machine = mTok.text
		case "replicas":
			p.next()
			nTok, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(nTok.text)
			if err != nil {
				return nil, errAt(nTok.pos, "bad replica count %q", nTok.text)
			}
			inst.Replicas = n
		case "policy":
			p.next()
			polTok, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			inst.Policy = polTok.text
		default:
			return inst, nil
		}
	}
	return inst, nil
}

func (p *parser) parseBind() (*Bind, error) {
	kw := p.next() // "bind"
	fromTok, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	toTok, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	from, err := ParseEndpoint(fromTok.text)
	if err != nil {
		return nil, errAt(fromTok.pos, "%v", err)
	}
	to, err := ParseEndpoint(toTok.text)
	if err != nil {
		return nil, errAt(toTok.pos, "%v", err)
	}
	return &Bind{Pos: kw.pos, From: from, To: to}, nil
}
