package mil

import (
	"testing"

	"repro/internal/fixtures"
)

// FuzzParse throws arbitrary input at the MIL parser and, when a spec
// parses, at the validator. Neither may panic: every malformed input must
// come back as a positioned error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		fixtures.MonitorSpec,
		`module m { source = "a" :: }`,
		`module m { source = "a" :: define interface out pattern = {integer} :: }`,
		`module m { source = "a" :: reconfiguration point = {R} :: state R = {x, y} :: }`,
		`module app { instance a :: instance b as c on "m1" :: bind "a out" "c in" }`,
		`module m { machine = "host" :: k = v :: }`,
		// Near-miss inputs that historically stress error paths.
		`module m { source = bad:`,
		`module app { instance ghost :: bind "ghost out" "ghost in" }`,
		`module m {`,
		`bind "a b" "c d"`,
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return
		}
		if spec == nil {
			t.Fatal("Parse returned nil spec and nil error")
		}
		// Validation of any parseable spec must not panic either.
		_ = Validate(spec)
	})
}
