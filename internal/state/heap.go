package state

import (
	"fmt"
	"sort"
	"sync"
)

// HeapObject is one programmer-registered datum that travels with the
// abstract state. The paper (Section 1.2) leaves dynamically allocated data
// and file descriptors to the programmer: "the programmer must write code to
// capture and restore heap data structures and to regain access to files".
// The HeapRegistry is the structured form of that obligation: instead of
// hand-writing capture code, the programmer registers a named object with a
// pair of hooks, and the runtime invokes them at capture/restore time.
type HeapObject struct {
	Key   string
	Value Value
}

// CaptureFunc renders a heap object into abstract form at capture time.
type CaptureFunc func() (Value, error)

// RestoreFunc reinstalls a heap object from abstract form at restore time.
type RestoreFunc func(Value) error

type heapEntry struct {
	capture CaptureFunc
	restore RestoreFunc
}

// HeapRegistry holds the capture/restore hooks for programmer-managed data.
// It is safe for concurrent use; modules are single-threaded but the bus
// control plane may trigger capture from another goroutine.
type HeapRegistry struct {
	mu      sync.Mutex
	entries map[string]heapEntry
}

// NewHeapRegistry returns an empty registry.
func NewHeapRegistry() *HeapRegistry {
	return &HeapRegistry{entries: map[string]heapEntry{}}
}

// Register adds (or replaces) the hooks for key. A nil restore hook means
// the object is divulged but silently dropped on restore; a nil capture hook
// is rejected.
func (r *HeapRegistry) Register(key string, capture CaptureFunc, restore RestoreFunc) error {
	if key == "" {
		return fmt.Errorf("state: heap object with empty key")
	}
	if capture == nil {
		return fmt.Errorf("state: heap object %q has no capture hook", key)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[key] = heapEntry{capture: capture, restore: restore}
	return nil
}

// Unregister removes the hooks for key, if present.
func (r *HeapRegistry) Unregister(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, key)
}

// Keys returns the registered keys in sorted order.
func (r *HeapRegistry) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CaptureAll invokes every capture hook and returns the heap objects in
// sorted key order, for deterministic encoding.
func (r *HeapRegistry) CaptureAll() ([]HeapObject, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	objs := make([]HeapObject, 0, len(keys))
	for _, k := range keys {
		v, err := r.entries[k].capture()
		if err != nil {
			return nil, fmt.Errorf("state: capture heap object %q: %w", k, err)
		}
		objs = append(objs, HeapObject{Key: k, Value: v})
	}
	return objs, nil
}

// RestoreAll feeds each heap object to its registered restore hook. Objects
// without a registered hook are reported as an error: losing heap state
// silently would violate the paper's consistency requirement.
func (r *HeapRegistry) RestoreAll(objs []HeapObject) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, o := range objs {
		e, ok := r.entries[o.Key]
		if !ok {
			return fmt.Errorf("state: no restore hook registered for heap object %q", o.Key)
		}
		if e.restore == nil {
			continue
		}
		if err := e.restore(o.Value); err != nil {
			return fmt.Errorf("state: restore heap object %q: %w", o.Key, err)
		}
	}
	return nil
}
