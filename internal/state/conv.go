package state

import (
	"fmt"
	"reflect"
)

// FromGo converts a native Go value into its abstract representation. It
// accepts the module-subset types: booleans, all integer widths, float32/64,
// strings, slices of subset types, and structs whose exported fields are of
// subset types. Pointers are dereferenced — addresses never enter the
// abstract state (Section 3 of the paper: pointers must be translated into
// an abstract format; we capture the pointee).
func FromGo(v any) (Value, error) {
	if v == nil {
		return Value{}, fmt.Errorf("state: cannot capture nil value")
	}
	return fromReflect(reflect.ValueOf(v), 0)
}

func fromReflect(rv reflect.Value, depth int) (Value, error) {
	if depth > maxValueDepth {
		return Value{}, fmt.Errorf("state: value nested too deeply")
	}
	switch rv.Kind() {
	case reflect.Bool:
		return BoolValue(rv.Bool()), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return IntValue(rv.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u := rv.Uint()
		if u > 1<<63-1 {
			return Value{}, fmt.Errorf("state: uint value %d overflows abstract int", u)
		}
		return IntValue(int64(u)), nil
	case reflect.Float32, reflect.Float64:
		return FloatValue(rv.Float()), nil
	case reflect.String:
		return StringValue(rv.String()), nil
	case reflect.Pointer:
		if rv.IsNil() {
			return Value{}, fmt.Errorf("state: cannot capture nil pointer")
		}
		return fromReflect(rv.Elem(), depth+1)
	case reflect.Slice, reflect.Array:
		out := Value{Kind: KindList, List: make([]Value, rv.Len())}
		for i := 0; i < rv.Len(); i++ {
			ev, err := fromReflect(rv.Index(i), depth+1)
			if err != nil {
				return Value{}, fmt.Errorf("elem %d: %w", i, err)
			}
			out.List[i] = ev
		}
		return out, nil
	case reflect.Struct:
		t := rv.Type()
		out := Value{Kind: KindStruct, Type: t.Name()}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return Value{}, fmt.Errorf("state: struct %s has unexported field %s", t.Name(), f.Name)
			}
			fv, err := fromReflect(rv.Field(i), depth+1)
			if err != nil {
				return Value{}, fmt.Errorf("field %s: %w", f.Name, err)
			}
			out.Fields = append(out.Fields, Field{Name: f.Name, Value: fv})
		}
		return out, nil
	default:
		return Value{}, fmt.Errorf("state: unsupported Go kind %s", rv.Kind())
	}
}

// ToGo installs an abstract value into the Go variable pointed to by ptr.
// ptr must be a non-nil pointer to a module-subset type; the abstract value
// must be assignable to it (ints narrow with overflow checking).
func ToGo(val Value, ptr any) error {
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("state: restore target must be a non-nil pointer, got %T", ptr)
	}
	return toReflect(val, rv.Elem(), 0)
}

func toReflect(val Value, dst reflect.Value, depth int) error {
	if depth > maxValueDepth {
		return fmt.Errorf("state: value nested too deeply")
	}
	if !dst.CanSet() {
		return fmt.Errorf("state: restore target is not settable")
	}
	switch dst.Kind() {
	case reflect.Bool:
		if val.Kind != KindBool {
			return kindMismatch(val, "bool")
		}
		dst.SetBool(val.Bool)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if val.Kind != KindInt {
			return kindMismatch(val, "int")
		}
		if dst.OverflowInt(val.Int) {
			return fmt.Errorf("state: int value %d overflows %s", val.Int, dst.Type())
		}
		dst.SetInt(val.Int)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if val.Kind != KindInt {
			return kindMismatch(val, "uint")
		}
		if val.Int < 0 || dst.OverflowUint(uint64(val.Int)) {
			return fmt.Errorf("state: int value %d does not fit %s", val.Int, dst.Type())
		}
		dst.SetUint(uint64(val.Int))
	case reflect.Float32, reflect.Float64:
		if val.Kind != KindFloat {
			return kindMismatch(val, "float")
		}
		dst.SetFloat(val.Float)
	case reflect.String:
		if val.Kind != KindString {
			return kindMismatch(val, "string")
		}
		dst.SetString(val.Str)
	case reflect.Pointer:
		if dst.IsNil() {
			dst.Set(reflect.New(dst.Type().Elem()))
		}
		return toReflect(val, dst.Elem(), depth+1)
	case reflect.Slice:
		if val.Kind != KindList {
			return kindMismatch(val, "list")
		}
		out := reflect.MakeSlice(dst.Type(), len(val.List), len(val.List))
		for i, ev := range val.List {
			if err := toReflect(ev, out.Index(i), depth+1); err != nil {
				return fmt.Errorf("elem %d: %w", i, err)
			}
		}
		dst.Set(out)
	case reflect.Struct:
		if val.Kind != KindStruct {
			return kindMismatch(val, "struct")
		}
		t := dst.Type()
		for _, f := range val.Fields {
			sf, ok := t.FieldByName(f.Name)
			if !ok || len(sf.Index) != 1 {
				return fmt.Errorf("state: struct %s has no field %s", t.Name(), f.Name)
			}
			if err := toReflect(f.Value, dst.Field(sf.Index[0]), depth+1); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
	default:
		return fmt.Errorf("state: unsupported restore target kind %s", dst.Kind())
	}
	return nil
}

func kindMismatch(val Value, want string) error {
	return fmt.Errorf("state: cannot restore %s value into %s target", val.Kind, want)
}
