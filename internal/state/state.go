// Package state models the abstract process state of a module, as defined in
// Section 1.2 of Hofmeister & Purtilo (ICDCS '93): the information a module
// divulges at a reconfiguration point and installs into a dynamically created
// replacement.
//
// The abstract state is deliberately machine-independent. It contains:
//
//   - the captured activation-record stack, bottom-most frame first, where
//     each frame records the procedure name, the resume location (the edge
//     number in the reconfiguration graph), and the values of the captured
//     parameters and locals;
//   - programmer-registered heap objects (the paper leaves heap data and file
//     descriptors to the programmer; the HeapRegistry in heap.go is the API
//     for that obligation);
//   - free-form metadata (module name, source version, machine of origin).
//
// Addresses never appear in the abstract state: pointer-typed parameters are
// captured by pointee value and are re-established during restoration when
// the restore blocks re-issue the original procedure calls (Section 3).
package state

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Version is the abstract state format version. A restoring module refuses
// state whose version it does not understand.
const Version = 1

// Common errors reported while assembling or validating abstract state.
var (
	// ErrEmptyState indicates a state with no captured frames.
	ErrEmptyState = errors.New("state: no frames captured")
	// ErrBadVersion indicates a state written by an incompatible format.
	ErrBadVersion = errors.New("state: unsupported format version")
	// ErrFrameOrder indicates frames that do not form a valid stack.
	ErrFrameOrder = errors.New("state: frames out of stack order")
)

// Kind enumerates the machine-independent value kinds the abstract state can
// carry. The set mirrors what the paper's format strings ("iif", "llF", ...)
// could express, extended with the composite kinds the module subset allows.
type Kind int

// Value kinds. KindInvalid is deliberately the zero value so that an unset
// Value is detectably invalid.
const (
	KindInvalid Kind = iota
	KindBool
	KindInt    // any integer width; carried as int64
	KindFloat  // float64
	KindString // UTF-8
	KindList   // ordered sequence of values (module-subset slices)
	KindStruct // named fields (module-subset structs)
)

var kindNames = map[Kind]string{
	KindInvalid: "invalid",
	KindBool:    "bool",
	KindInt:     "int",
	KindFloat:   "float",
	KindString:  "string",
	KindList:    "list",
	KindStruct:  "struct",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// FormatRune returns the Polylith-style format character for the kind, as
// used in the paper's mh_capture/mh_restore format strings.
func (k Kind) FormatRune() (rune, bool) {
	switch k {
	case KindBool:
		return 'b', true
	case KindInt:
		return 'i', true
	case KindFloat:
		return 'F', true
	case KindString:
		return 's', true
	case KindList:
		return 'L', true
	case KindStruct:
		return 'S', true
	default:
		return 0, false
	}
}

// KindForFormatRune is the inverse of Kind.FormatRune. The paper's examples
// use 'l' (long) and 'i' interchangeably for integers; both are accepted.
func KindForFormatRune(r rune) (Kind, bool) {
	switch r {
	case 'b':
		return KindBool, true
	case 'i', 'l':
		return KindInt, true
	case 'F', 'f':
		return KindFloat, true
	case 's':
		return KindString, true
	case 'L':
		return KindList, true
	case 'S':
		return KindStruct, true
	default:
		return KindInvalid, false
	}
}

// Value is one machine-independent datum. Exactly the fields implied by Kind
// are meaningful; the rest stay zero.
type Value struct {
	Kind   Kind
	Bool   bool
	Int    int64
	Float  float64
	Str    string
	List   []Value
	Fields []Field // for KindStruct, in declaration order
	Type   string  // optional type name (struct name, list elem hint)
}

// Field is a named struct member inside a KindStruct value.
type Field struct {
	Name  string
	Value Value
}

// Constructors for the scalar kinds keep call sites terse.

// BoolValue returns a KindBool value.
func BoolValue(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// IntValue returns a KindInt value.
func IntValue(i int64) Value { return Value{Kind: KindInt, Int: i} }

// FloatValue returns a KindFloat value.
func FloatValue(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// StringValue returns a KindString value.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }

// ListValue returns a KindList value holding elems.
func ListValue(elems ...Value) Value { return Value{Kind: KindList, List: elems} }

// StructValue returns a KindStruct value with the given type name and fields.
func StructValue(typeName string, fields ...Field) Value {
	return Value{Kind: KindStruct, Type: typeName, Fields: fields}
}

// Equal reports deep equality of two values, including kind and type name.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.Type != o.Type {
		return false
	}
	switch v.Kind {
	case KindBool:
		return v.Bool == o.Bool
	case KindInt:
		return v.Int == o.Int
	case KindFloat:
		// Bit-for-bit float equality is intentional: the codec must
		// round-trip exactly, not approximately.
		return v.Float == o.Float || (v.Float != v.Float && o.Float != o.Float)
	case KindString:
		return v.Str == o.Str
	case KindList:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(o.List[i]) {
				return false
			}
		}
		return true
	case KindStruct:
		if len(v.Fields) != len(o.Fields) {
			return false
		}
		for i := range v.Fields {
			if v.Fields[i].Name != o.Fields[i].Name || !v.Fields[i].Value.Equal(o.Fields[i].Value) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the value for debugging and golden tests.
func (v Value) String() string {
	switch v.Kind {
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindFloat:
		return fmt.Sprintf("%g", v.Float)
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindList:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, " ") + "]"
	case KindStruct:
		parts := make([]string, len(v.Fields))
		for i, f := range v.Fields {
			parts[i] = f.Name + ":" + f.Value.String()
		}
		return v.Type + "{" + strings.Join(parts, " ") + "}"
	default:
		return "<invalid>"
	}
}

// Var is a named captured variable within a frame.
type Var struct {
	Name  string
	Value Value
}

// Frame is the abstract image of one activation record: which procedure it
// belongs to, where execution resumes inside it (the reconfiguration-graph
// edge number passed to mh_capture), and the captured variables in capture
// order.
type Frame struct {
	Func     string
	Location int
	Vars     []Var
}

// Var returns the value of the named variable and whether it was captured.
func (f *Frame) Var(name string) (Value, bool) {
	for _, v := range f.Vars {
		if v.Name == name {
			return v.Value, true
		}
	}
	return Value{}, false
}

// Format returns the Polylith-style format string describing this frame's
// captured variables, e.g. "iiF" for (int, int, float). The paper prefixes
// an integer location to every capture; the location is not part of the
// returned format.
func (f *Frame) Format() string {
	var b strings.Builder
	for _, v := range f.Vars {
		if r, ok := v.Value.Kind.FormatRune(); ok {
			b.WriteRune(r)
		} else {
			b.WriteRune('?')
		}
	}
	return b.String()
}

// State is the complete abstract process state divulged by a module. Frames
// run bottom-of-stack (the main procedure) first: index 0 was pushed first
// and is consumed first during restoration, exactly as the paper's restore
// blocks rebuild the stack from main downward.
type State struct {
	Version int
	Module  string            // module instance name that divulged the state
	Machine string            // logical machine of origin
	Frames  []Frame           // bottom-most first
	Heap    []HeapObject      // programmer-registered heap data
	Meta    map[string]string // free-form attributes (source hash, etc.)
}

// New returns an empty state for the named module instance.
func New(module string) *State {
	return &State{Version: Version, Module: module, Meta: map[string]string{}}
}

// PushFrame appends a frame to the state. Capture proceeds top-of-stack
// first (the innermost procedure returns first), so callers typically build
// the frame list in reverse; PushFrame appends and Reverse fixes the order
// once the bottom frame has been captured.
func (s *State) PushFrame(f Frame) { s.Frames = append(s.Frames, f) }

// Reverse reverses the frame order in place. The mh runtime captures frames
// innermost-first as the capture blocks pop the stack; restoration needs
// them outermost-first.
func (s *State) Reverse() {
	for i, j := 0, len(s.Frames)-1; i < j; i, j = i+1, j-1 {
		s.Frames[i], s.Frames[j] = s.Frames[j], s.Frames[i]
	}
}

// Depth returns the number of captured frames.
func (s *State) Depth() int { return len(s.Frames) }

// Top returns the innermost captured frame (the one holding the
// reconfiguration point), or nil if the state is empty.
func (s *State) Top() *Frame {
	if len(s.Frames) == 0 {
		return nil
	}
	return &s.Frames[len(s.Frames)-1]
}

// Validate checks the structural invariants of the state: a known version,
// at least one frame, and every frame named with a nonzero location.
func (s *State) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("%w: got %d want %d", ErrBadVersion, s.Version, Version)
	}
	if len(s.Frames) == 0 {
		return ErrEmptyState
	}
	for i, f := range s.Frames {
		if f.Func == "" {
			return fmt.Errorf("%w: frame %d has no procedure name", ErrFrameOrder, i)
		}
		if f.Location <= 0 {
			return fmt.Errorf("%w: frame %d (%s) has location %d", ErrFrameOrder, i, f.Func, f.Location)
		}
		for _, v := range f.Vars {
			if err := validateValue(v.Value, 0); err != nil {
				return fmt.Errorf("frame %d (%s) var %s: %w", i, f.Func, v.Name, err)
			}
		}
	}
	return nil
}

const maxValueDepth = 64

func validateValue(v Value, depth int) error {
	if depth > maxValueDepth {
		return errors.New("value nested too deeply")
	}
	switch v.Kind {
	case KindBool, KindInt, KindFloat, KindString:
		return nil
	case KindList:
		for i, e := range v.List {
			if err := validateValue(e, depth+1); err != nil {
				return fmt.Errorf("elem %d: %w", i, err)
			}
		}
		return nil
	case KindStruct:
		for _, f := range v.Fields {
			if f.Name == "" {
				return errors.New("struct field with empty name")
			}
			if err := validateValue(f.Value, depth+1); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("invalid value kind %v", v.Kind)
	}
}

// Equal reports deep equality of two states, ignoring metadata ordering.
func (s *State) Equal(o *State) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Version != o.Version || s.Module != o.Module || s.Machine != o.Machine {
		return false
	}
	if len(s.Frames) != len(o.Frames) || len(s.Heap) != len(o.Heap) || len(s.Meta) != len(o.Meta) {
		return false
	}
	for i := range s.Frames {
		a, b := s.Frames[i], o.Frames[i]
		if a.Func != b.Func || a.Location != b.Location || len(a.Vars) != len(b.Vars) {
			return false
		}
		for j := range a.Vars {
			if a.Vars[j].Name != b.Vars[j].Name || !a.Vars[j].Value.Equal(b.Vars[j].Value) {
				return false
			}
		}
	}
	for i := range s.Heap {
		if s.Heap[i].Key != o.Heap[i].Key || !s.Heap[i].Value.Equal(o.Heap[i].Value) {
			return false
		}
	}
	for k, v := range s.Meta {
		if ov, ok := o.Meta[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders a compact, deterministic description of the state, used by
// golden tests and the reconfigctl tool.
func (s *State) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "state v%d module=%s machine=%s depth=%d\n", s.Version, s.Module, s.Machine, len(s.Frames))
	for i, f := range s.Frames {
		fmt.Fprintf(&b, "  frame[%d] %s @%d", i, f.Func, f.Location)
		for _, v := range f.Vars {
			fmt.Fprintf(&b, " %s=%s", v.Name, v.Value.String())
		}
		b.WriteByte('\n')
	}
	for _, h := range s.Heap {
		fmt.Fprintf(&b, "  heap %s=%s\n", h.Key, h.Value.String())
	}
	keys := make([]string, 0, len(s.Meta))
	for k := range s.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  meta %s=%s\n", k, s.Meta[k])
	}
	return b.String()
}
