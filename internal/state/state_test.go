package state

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInvalid: "invalid",
		KindBool:    "bool",
		KindInt:     "int",
		KindFloat:   "float",
		KindString:  "string",
		KindList:    "list",
		KindStruct:  "struct",
		Kind(99):    "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestFormatRuneRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindBool, KindInt, KindFloat, KindString, KindList, KindStruct} {
		r, ok := k.FormatRune()
		if !ok {
			t.Fatalf("kind %v has no format rune", k)
		}
		back, ok := KindForFormatRune(r)
		if !ok || back != k {
			t.Errorf("format rune %q maps to %v, want %v", r, back, k)
		}
	}
	if _, ok := KindInvalid.FormatRune(); ok {
		t.Error("KindInvalid should have no format rune")
	}
	// The paper's examples use both 'l' and 'i' for integers.
	if k, ok := KindForFormatRune('l'); !ok || k != KindInt {
		t.Errorf("'l' should decode to KindInt, got %v %t", k, ok)
	}
	if k, ok := KindForFormatRune('f'); !ok || k != KindFloat {
		t.Errorf("'f' should decode to KindFloat, got %v %t", k, ok)
	}
	if _, ok := KindForFormatRune('?'); ok {
		t.Error("'?' should not decode")
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"bools equal", BoolValue(true), BoolValue(true), true},
		{"bools differ", BoolValue(true), BoolValue(false), false},
		{"ints equal", IntValue(42), IntValue(42), true},
		{"ints differ", IntValue(42), IntValue(43), false},
		{"kind mismatch", IntValue(1), FloatValue(1), false},
		{"floats equal", FloatValue(2.5), FloatValue(2.5), true},
		{"nan equals nan", FloatValue(math.NaN()), FloatValue(math.NaN()), true},
		{"strings equal", StringValue("x"), StringValue("x"), true},
		{"strings differ", StringValue("x"), StringValue("y"), false},
		{"lists equal", ListValue(IntValue(1), IntValue(2)), ListValue(IntValue(1), IntValue(2)), true},
		{"lists differ len", ListValue(IntValue(1)), ListValue(IntValue(1), IntValue(2)), false},
		{"lists differ elem", ListValue(IntValue(1)), ListValue(IntValue(2)), false},
		{
			"structs equal",
			StructValue("P", Field{"X", IntValue(1)}),
			StructValue("P", Field{"X", IntValue(1)}),
			true,
		},
		{
			"structs differ type",
			StructValue("P", Field{"X", IntValue(1)}),
			StructValue("Q", Field{"X", IntValue(1)}),
			false,
		},
		{
			"structs differ field name",
			StructValue("P", Field{"X", IntValue(1)}),
			StructValue("P", Field{"Y", IntValue(1)}),
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal(%v, %v) = %t, want %t", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("Equal is not symmetric for %v, %v", tt.a, tt.b)
			}
		})
	}
}

func TestValueString(t *testing.T) {
	v := StructValue("Pt",
		Field{"X", IntValue(3)},
		Field{"S", StringValue("hi")},
		Field{"L", ListValue(BoolValue(true), FloatValue(1.5))},
	)
	want := `Pt{X:3 S:"hi" L:[true 1.5]}`
	if got := v.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := (Value{}).String(); got != "<invalid>" {
		t.Errorf("invalid String() = %q", got)
	}
}

func TestFrameVarAndFormat(t *testing.T) {
	f := Frame{
		Func:     "compute",
		Location: 3,
		Vars: []Var{
			{"num", IntValue(5)},
			{"n", IntValue(2)},
			{"rp", FloatValue(17.25)},
		},
	}
	if got := f.Format(); got != "iiF" {
		t.Errorf("Format() = %q, want %q", got, "iiF")
	}
	v, ok := f.Var("n")
	if !ok || v.Int != 2 {
		t.Errorf("Var(n) = %v, %t", v, ok)
	}
	if _, ok := f.Var("missing"); ok {
		t.Error("Var(missing) should not be found")
	}
	bad := Frame{Vars: []Var{{"x", Value{}}}}
	if got := bad.Format(); got != "?" {
		t.Errorf("Format of invalid var = %q, want ?", got)
	}
}

func TestStateStackOperations(t *testing.T) {
	s := New("compute")
	if s.Depth() != 0 || s.Top() != nil {
		t.Fatal("fresh state should be empty")
	}
	// Capture order is innermost-first, per the paper's capture blocks
	// popping the AR stack from the top.
	s.PushFrame(Frame{Func: "compute", Location: 4})
	s.PushFrame(Frame{Func: "compute", Location: 3})
	s.PushFrame(Frame{Func: "main", Location: 1})
	s.Reverse()
	if s.Frames[0].Func != "main" {
		t.Errorf("after Reverse, bottom frame is %s, want main", s.Frames[0].Func)
	}
	top := s.Top()
	if top == nil || top.Location != 4 {
		t.Errorf("Top() = %+v, want innermost compute@4", top)
	}
	if s.Depth() != 3 {
		t.Errorf("Depth() = %d, want 3", s.Depth())
	}
}

func TestStateValidate(t *testing.T) {
	valid := func() *State {
		s := New("m")
		s.PushFrame(Frame{Func: "main", Location: 1, Vars: []Var{{"n", IntValue(1)}}})
		return s
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}

	s := valid()
	s.Version = 99
	if err := s.Validate(); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: got %v", err)
	}

	if err := New("m").Validate(); !errors.Is(err, ErrEmptyState) {
		t.Errorf("empty state: got %v", err)
	}

	s = valid()
	s.Frames[0].Func = ""
	if err := s.Validate(); !errors.Is(err, ErrFrameOrder) {
		t.Errorf("unnamed frame: got %v", err)
	}

	s = valid()
	s.Frames[0].Location = 0
	if err := s.Validate(); !errors.Is(err, ErrFrameOrder) {
		t.Errorf("zero location: got %v", err)
	}

	s = valid()
	s.Frames[0].Vars[0].Value = Value{}
	if err := s.Validate(); err == nil {
		t.Error("invalid var kind accepted")
	}

	// Deeply nested value exceeds maxValueDepth.
	v := IntValue(1)
	for i := 0; i < maxValueDepth+2; i++ {
		v = ListValue(v)
	}
	s = valid()
	s.Frames[0].Vars[0].Value = v
	if err := s.Validate(); err == nil {
		t.Error("over-deep value accepted")
	}
}

func TestStateEqual(t *testing.T) {
	mk := func() *State {
		s := New("m")
		s.Machine = "host1"
		s.PushFrame(Frame{Func: "main", Location: 1, Vars: []Var{{"n", IntValue(7)}}})
		s.Heap = []HeapObject{{Key: "buf", Value: ListValue(IntValue(1))}}
		s.Meta["k"] = "v"
		return s
	}
	a, b := mk(), mk()
	if !a.Equal(b) {
		t.Fatal("identical states not Equal")
	}
	b.Frames[0].Vars[0].Value = IntValue(8)
	if a.Equal(b) {
		t.Error("differing var value still Equal")
	}
	b = mk()
	b.Meta["k"] = "w"
	if a.Equal(b) {
		t.Error("differing meta still Equal")
	}
	b = mk()
	b.Machine = "host2"
	if a.Equal(b) {
		t.Error("differing machine still Equal")
	}
	if a.Equal(nil) {
		t.Error("state Equal(nil) should be false")
	}
	var nilState *State
	if !nilState.Equal(nil) {
		t.Error("nil.Equal(nil) should be true")
	}
}

func TestStateString(t *testing.T) {
	s := New("compute")
	s.Machine = "m2"
	s.PushFrame(Frame{Func: "main", Location: 1, Vars: []Var{{"n", IntValue(3)}}})
	s.Heap = []HeapObject{{Key: "cache", Value: StringValue("warm")}}
	s.Meta["origin"] = "m1"
	out := s.String()
	for _, want := range []string{"module=compute", "machine=m2", "frame[0] main @1 n=3", `heap cache="warm"`, "meta origin=m1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
}

func TestFromGoScalars(t *testing.T) {
	tests := []struct {
		in   any
		want Value
	}{
		{true, BoolValue(true)},
		{int(5), IntValue(5)},
		{int8(-3), IntValue(-3)},
		{int64(1 << 40), IntValue(1 << 40)},
		{uint16(9), IntValue(9)},
		{3.5, FloatValue(3.5)},
		{float32(0.5), FloatValue(0.5)},
		{"hi", StringValue("hi")},
	}
	for _, tt := range tests {
		got, err := FromGo(tt.in)
		if err != nil {
			t.Errorf("FromGo(%v): %v", tt.in, err)
			continue
		}
		if !got.Equal(tt.want) {
			t.Errorf("FromGo(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestFromGoComposite(t *testing.T) {
	type Point struct {
		X int
		Y float64
	}
	got, err := FromGo([]Point{{1, 2.5}, {3, 4.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := ListValue(
		StructValue("Point", Field{"X", IntValue(1)}, Field{"Y", FloatValue(2.5)}),
		StructValue("Point", Field{"X", IntValue(3)}, Field{"Y", FloatValue(4.5)}),
	)
	if !got.Equal(want) {
		t.Errorf("FromGo = %v, want %v", got, want)
	}

	// Pointers dereference.
	n := 42
	got, err = FromGo(&n)
	if err != nil || !got.Equal(IntValue(42)) {
		t.Errorf("FromGo(&int) = %v, %v", got, err)
	}
}

func TestFromGoRejects(t *testing.T) {
	if _, err := FromGo(nil); err == nil {
		t.Error("nil accepted")
	}
	var p *int
	if _, err := FromGo(p); err == nil {
		t.Error("nil pointer accepted")
	}
	if _, err := FromGo(make(chan int)); err == nil {
		t.Error("chan accepted")
	}
	if _, err := FromGo(uint64(math.MaxUint64)); err == nil {
		t.Error("overflowing uint accepted")
	}
	type hidden struct{ x int } //nolint:unused
	if _, err := FromGo(hidden{}); err == nil {
		t.Error("unexported field accepted")
	}
}

func TestToGoRoundTrip(t *testing.T) {
	type Point struct {
		X int
		Y float64
	}
	var (
		b  bool
		i  int
		i8 int8
		u  uint32
		f  float64
		s  string
		sl []int
		pt Point
		pp *int
	)
	check := func(v Value, ptr any) {
		t.Helper()
		if err := ToGo(v, ptr); err != nil {
			t.Fatalf("ToGo(%v): %v", v, err)
		}
	}
	check(BoolValue(true), &b)
	check(IntValue(-7), &i)
	check(IntValue(100), &i8)
	check(IntValue(9), &u)
	check(FloatValue(2.25), &f)
	check(StringValue("ok"), &s)
	check(ListValue(IntValue(1), IntValue(2)), &sl)
	check(StructValue("Point", Field{"X", IntValue(4)}, Field{"Y", FloatValue(0.5)}), &pt)
	check(IntValue(11), &pp)
	if !b || i != -7 || i8 != 100 || u != 9 || f != 2.25 || s != "ok" {
		t.Errorf("scalar restore wrong: %v %v %v %v %v %v", b, i, i8, u, f, s)
	}
	if !reflect.DeepEqual(sl, []int{1, 2}) {
		t.Errorf("slice restore = %v", sl)
	}
	if pt != (Point{4, 0.5}) {
		t.Errorf("struct restore = %+v", pt)
	}
	if pp == nil || *pp != 11 {
		t.Errorf("pointer restore = %v", pp)
	}
}

func TestToGoErrors(t *testing.T) {
	var i int
	if err := ToGo(IntValue(1), i); err == nil {
		t.Error("non-pointer target accepted")
	}
	if err := ToGo(IntValue(1), (*int)(nil)); err == nil {
		t.Error("nil pointer target accepted")
	}
	if err := ToGo(StringValue("x"), &i); err == nil {
		t.Error("kind mismatch accepted")
	}
	var i8 int8
	if err := ToGo(IntValue(1000), &i8); err == nil {
		t.Error("overflow accepted")
	}
	var u uint8
	if err := ToGo(IntValue(-1), &u); err == nil {
		t.Error("negative into uint accepted")
	}
	var ch chan int
	if err := ToGo(IntValue(1), &ch); err == nil {
		t.Error("chan target accepted")
	}
	type P struct{ X int }
	var p P
	if err := ToGo(StructValue("P", Field{"Nope", IntValue(1)}), &p); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestFromToGoProperty: FromGo then ToGo must reproduce the original value
// for randomly generated subset values.
func TestFromToGoProperty(t *testing.T) {
	type Inner struct {
		A int64
		B string
	}
	type Outer struct {
		N  int
		F  float64
		S  string
		L  []Inner
		OK bool
	}
	f := func(o Outer) bool {
		if o.L == nil {
			o.L = []Inner{}
		}
		av, err := FromGo(o)
		if err != nil {
			return false
		}
		var back Outer
		if err := ToGo(av, &back); err != nil {
			return false
		}
		if back.L == nil {
			back.L = []Inner{}
		}
		return reflect.DeepEqual(o, back)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHeapRegistry(t *testing.T) {
	r := NewHeapRegistry()
	if err := r.Register("", func() (Value, error) { return IntValue(1), nil }, nil); err == nil {
		t.Error("empty key accepted")
	}
	if err := r.Register("x", nil, nil); err == nil {
		t.Error("nil capture accepted")
	}

	cache := []int{1, 2, 3}
	var restored []int
	err := r.Register("cache",
		func() (Value, error) { return FromGo(cache) },
		func(v Value) error { return ToGo(v, &restored) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register("drop", func() (Value, error) { return IntValue(9), nil }, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.Keys(); !reflect.DeepEqual(got, []string{"cache", "drop"}) {
		t.Errorf("Keys() = %v", got)
	}

	objs, err := r.CaptureAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Key != "cache" || objs[1].Key != "drop" {
		t.Fatalf("CaptureAll = %+v", objs)
	}
	if err := r.RestoreAll(objs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored, []int{1, 2, 3}) {
		t.Errorf("restored = %v", restored)
	}

	// Restoring an object nobody registered for must fail loudly.
	if err := r.RestoreAll([]HeapObject{{Key: "ghost", Value: IntValue(1)}}); err == nil {
		t.Error("unregistered heap object restored silently")
	}

	r.Unregister("cache")
	if got := r.Keys(); !reflect.DeepEqual(got, []string{"drop"}) {
		t.Errorf("Keys after Unregister = %v", got)
	}
}

func TestHeapRegistryErrors(t *testing.T) {
	r := NewHeapRegistry()
	boom := errors.New("boom")
	if err := r.Register("bad", func() (Value, error) { return Value{}, boom }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CaptureAll(); !errors.Is(err, boom) {
		t.Errorf("CaptureAll error = %v, want wrapped boom", err)
	}

	r2 := NewHeapRegistry()
	if err := r2.Register("x", func() (Value, error) { return IntValue(1), nil }, func(Value) error { return boom }); err != nil {
		t.Fatal(err)
	}
	if err := r2.RestoreAll([]HeapObject{{Key: "x", Value: IntValue(1)}}); !errors.Is(err, boom) {
		t.Errorf("RestoreAll error = %v, want wrapped boom", err)
	}
}
