// Package core names the paper's primary contribution — the automatic
// source transformation that prepares a module for reconfiguration
// participation — and re-exports its API from internal/transform, where the
// implementation lives alongside its supporting passes (internal/callgraph,
// internal/flatten, internal/liveness).
package core

import "repro/internal/transform"

// Re-exported types of the transformation API.
type (
	// Options configures Prepare (capture mode, specification variable
	// lists).
	Options = transform.Options
	// Output is the instrumented program plus its reconfiguration graph
	// and per-procedure reports.
	Output = transform.Output
	// CaptureMode selects how capture sets are derived.
	CaptureMode = transform.CaptureMode
	// CapturedVar is one variable of a procedure's capture set.
	CapturedVar = transform.CapturedVar
	// FuncReport describes the instrumentation of one procedure.
	FuncReport = transform.FuncReport
)

// Capture modes.
const (
	CaptureAll  = transform.CaptureAll
	CaptureLive = transform.CaptureLive
	CaptureSpec = transform.CaptureSpec
)

// Prepare transforms a module program for reconfiguration participation
// (Section 3 of the paper).
var Prepare = transform.Prepare

// PrepareSource is Prepare for a single-file module.
var PrepareSource = transform.PrepareSource
