package core

import (
	"testing"

	"repro/internal/fixtures"
)

// TestAliasesResolve pins the re-exported API to the implementation: the
// paper's contribution is reachable as internal/core.Prepare.
func TestAliasesResolve(t *testing.T) {
	out, err := PrepareSource("compute.go", fixtures.ComputeSource, Options{Mode: CaptureLive})
	if err != nil {
		t.Fatal(err)
	}
	var o *Output = out
	if len(o.Funcs) != 2 {
		t.Errorf("Funcs = %d", len(o.Funcs))
	}
	var mode CaptureMode = CaptureAll
	if mode.String() != "all" || CaptureSpec.String() != "spec" {
		t.Error("mode aliases wrong")
	}
	var cv CapturedVar = o.Funcs["compute"].Captured[0]
	if cv.Name == "" {
		t.Error("empty captured var")
	}
	var fr *FuncReport = o.Funcs["main"]
	if fr.Format == "" {
		t.Error("empty format")
	}
}
