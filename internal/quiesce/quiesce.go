// Package quiesce implements the module-level-atomicity baseline: dynamic
// reconfiguration WITHOUT module participation, as in the authors' earlier
// work ([9], and SURGEON [5]).
//
// "If the reconfiguration is atomic at the module level, it means that
// modules execute atomically with respect to reconfiguration; a module
// cannot be updated while it is executing."
//
// A Guard brackets the module's units of work. The coordinator asks for
// quiescence and waits until the module is between units; only then may it
// be replaced — and because there is no state capture, any in-progress
// computation must first run to completion. Experiment C4 measures the
// resulting reconfiguration latency against the paper's reconfiguration-
// point approach, where capture can happen *inside* a unit of work at the
// next point.
package quiesce

import (
	"errors"
	"sync"
	"time"
)

// ErrTimeout indicates quiescence was not reached in time.
var ErrTimeout = errors.New("quiesce: timed out waiting for quiescence")

// Guard tracks whether a module is inside a unit of work. The module calls
// Enter/Exit around each unit; the coordinator calls Quiesce.
type Guard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	busy    bool
	wanted  bool // a quiesce request is pending; new units yield to it
	holding bool // quiescence granted; module blocked out of new work

	// Units counts completed units of work.
	Units int64
}

// NewGuard returns an idle guard.
func NewGuard() *Guard {
	g := &Guard{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Enter marks the start of a unit of work. If the coordinator holds the
// module quiescent — or is waiting to — Enter blocks until Release.
func (g *Guard) Enter() {
	g.mu.Lock()
	for g.holding || g.wanted {
		g.cond.Wait()
	}
	g.busy = true
	g.mu.Unlock()
}

// Exit marks the end of a unit of work.
func (g *Guard) Exit() {
	g.mu.Lock()
	g.busy = false
	g.Units++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Busy reports whether a unit of work is in progress.
func (g *Guard) Busy() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.busy
}

// Quiesce blocks until the module is between units of work (or the timeout
// expires), then holds it there. On success the module is frozen: Enter
// blocks until Release is called. This is the "passivate" of Conic and the
// no-participation model of [9].
func (g *Guard) Quiesce(timeout time.Duration) error {
	done := make(chan struct{})
	abandoned := false
	g.mu.Lock()
	g.wanted = true
	g.mu.Unlock()
	go func() { //archlint:spawn quiescence waiter; closes done when the guard settles or ctx ends
		defer close(done)
		g.mu.Lock()
		defer g.mu.Unlock()
		for g.busy && !abandoned {
			g.cond.Wait()
		}
		if !abandoned {
			g.holding = true
		}
		g.wanted = false
		g.cond.Broadcast()
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		g.mu.Lock()
		abandoned = true
		g.cond.Broadcast()
		g.mu.Unlock()
		<-done
		g.mu.Lock()
		took := g.holding
		g.mu.Unlock()
		if took {
			// The module went idle in the race window; honor the hold.
			return nil
		}
		return ErrTimeout
	}
}

// Holding reports whether the coordinator currently holds the module
// quiescent. The reconfiguration transaction layer checks it on abort so a
// failed script never leaves a module frozen.
func (g *Guard) Holding() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.holding
}

// Release lifts the quiescence hold.
func (g *Guard) Release() {
	g.mu.Lock()
	g.holding = false
	g.cond.Broadcast()
	g.mu.Unlock()
}
