package quiesce

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestQuiesceIdleModule(t *testing.T) {
	g := NewGuard()
	if err := g.Quiesce(time.Second); err != nil {
		t.Fatalf("idle quiesce: %v", err)
	}
	// The module is held: Enter must block until Release.
	entered := make(chan struct{})
	go func() {
		g.Enter()
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("Enter proceeded while held")
	case <-time.After(50 * time.Millisecond):
	}
	g.Release()
	select {
	case <-entered:
	case <-time.After(time.Second):
		t.Fatal("Enter never proceeded after Release")
	}
	g.Exit()
	if g.Units != 1 {
		t.Errorf("Units = %d", g.Units)
	}
}

func TestQuiesceWaitsForUnitCompletion(t *testing.T) {
	g := NewGuard()
	g.Enter()
	if !g.Busy() {
		t.Fatal("not busy inside unit")
	}
	start := time.Now()
	go func() {
		time.Sleep(100 * time.Millisecond)
		g.Exit()
	}()
	if err := g.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("quiesce returned after %v, before the unit finished", elapsed)
	}
	g.Release()
}

func TestQuiesceTimeout(t *testing.T) {
	g := NewGuard()
	g.Enter() // never exits
	err := g.Quiesce(50 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	// The failed quiesce must not hold the module.
	g.Exit()
	done := make(chan struct{})
	go func() {
		g.Enter()
		g.Exit()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("module blocked after abandoned quiesce")
	}
}

func TestManyUnitsUnderContention(t *testing.T) {
	g := NewGuard()
	var stop atomic.Bool
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		for !stop.Load() {
			g.Enter()
			time.Sleep(time.Millisecond)
			g.Exit()
		}
	}()
	// Repeatedly quiesce and release while the worker churns, leaving the
	// worker a window to make progress between holds.
	for i := 0; i < 10; i++ {
		if err := g.Quiesce(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		if g.Busy() {
			t.Fatal("busy while quiescent")
		}
		g.Release()
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	select {
	case <-workerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("worker stuck")
	}
	if g.Units == 0 {
		t.Error("no units completed")
	}
}
